// Command deepfleet runs the multi-tenant deployment service under open-loop
// load and prints a throughput/latency/cache report.
//
// Usage:
//
//	deepfleet -workers 8 -arrivals poisson -rate 200 -requests 2000
//	deepfleet -workers 4 -arrivals bursty -rate 100 -duration 5s -mix synthetic -tenants 8
//	deepfleet -workers 8 -arrivals diurnal -rate 150 -requests 1000 -cluster 4 -scheduler min-ct
//	deepfleet -workers 8 -rate 200 -requests 2000 -cluster 4 -churn -churn-crash-rate 5
//
// With -debug-addr a debug HTTP listener serves live observability while the
// run is in flight:
//
//	deepfleet -debug-addr :9090 -duration 30s ...
//	curl localhost:9090/metrics      # Prometheus text exposition
//	curl localhost:9090/debug/vars   # expvar JSON (registry under "deepfleet")
//	curl localhost:9090/debug/slow   # slow-request ring with stage breakdowns
//	go tool pprof localhost:9090/debug/pprof/profile
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"time"

	"deep"
)

// debugListener serves the observability surface on its own mux (the default
// mux would expose pprof on any future listener by side effect).
func debugListener(addr string, f *deep.Fleet) *http.Server {
	reg := f.Metrics().Obs()
	reg.PublishExpvar("deepfleet")
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.MetricsHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(f.SlowRequests())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Addr: addr, Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "deepfleet: debug listener:", err)
		}
	}()
	return srv
}

func main() {
	workers := flag.Int("workers", 4, "scheduler/simulator worker pool size")
	queue := flag.Int("queue", 256, "admission queue depth")
	cacheSize := flag.Int("cache", 1024, "placement cache entries (0 disables)")
	arrivals := flag.String("arrivals", "poisson", "arrival process: poisson|bursty|diurnal")
	rate := flag.Float64("rate", 100, "mean arrival rate in requests per second")
	requests := flag.Int("requests", 1000, "stop after this many submission attempts (0 = unbounded)")
	duration := flag.Duration("duration", 0, "stop after this wall time (0 = unbounded)")
	speedup := flag.Float64("speedup", 1, "replay arrivals this many times faster than real time")
	scheduler := flag.String("scheduler", "deep", "scheduling method: deep|exclusive-hub|exclusive-regional|greedy-energy|min-ct|round-robin|random")
	cold := flag.Bool("cold", false, "flush device layer caches before every simulation (opt out of the long-lived-service warm default)")
	clusterSize := flag.Int("cluster", 1, "testbed device pairs (1 = the paper's two-device testbed)")
	mixKind := flag.String("mix", "casestudy", "application mix: casestudy|synthetic")
	tenants := flag.Int("tenants", 4, "synthetic mix: number of tenants")
	appsPer := flag.Int("apps-per-tenant", 2, "synthetic mix: distinct app shapes per tenant")
	appSize := flag.Int("app-size", 6, "synthetic mix: microservices per app")
	seed := flag.Int64("seed", 1, "randomness seed (arrivals, mix sampling, synthetic DAGs)")
	churn := flag.Bool("churn", false, "inject a seeded fault schedule (device crashes, registry outages, link degradation) during the run")
	crashRate := flag.Float64("churn-crash-rate", 2, "churn: mean device crashes per second")
	downtime := flag.Duration("churn-downtime", 500*time.Millisecond, "churn: mean device downtime")
	outageRate := flag.Float64("churn-outage-rate", 0.5, "churn: mean registry outages per second")
	degradeRate := flag.Float64("churn-degrade-rate", 0.5, "churn: mean link degradations per second")
	debugAddr := flag.String("debug-addr", "", "serve /metrics (Prometheus), /debug/vars, /debug/pprof, and /debug/slow on this address (empty disables)")
	slowThreshold := flag.Duration("slow-threshold", 0, "capture requests slower than this in the slow ring (0 = rolling p99)")
	slowRing := flag.Int("slow-ring", 0, "slow-request ring capacity (0 = default 64, negative disables)")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "deepfleet:", err)
		os.Exit(1)
	}

	if *requests <= 0 && *duration <= 0 {
		fail(fmt.Errorf("need -requests or -duration"))
	}
	if *cacheSize <= 0 {
		// Config treats 0 as "use the default"; the flag promises 0
		// disables.
		*cacheSize = -1
	}

	schedulerByName := func() deep.Scheduler {
		for _, s := range deep.AllSchedulers(*seed) {
			if s.Name() == *scheduler {
				return s
			}
		}
		return nil
	}
	if schedulerByName() == nil {
		fail(fmt.Errorf("unknown scheduler %q", *scheduler))
	}

	proc, err := deep.NewArrivals(*arrivals, *rate)
	if err != nil {
		fail(err)
	}

	var mix []deep.MixEntry
	switch *mixKind {
	case "casestudy":
		mix = deep.CaseStudyMix()
	case "synthetic":
		mix, err = deep.SyntheticMix(*tenants, *appsPer, *appSize, *seed)
		if err != nil {
			fail(err)
		}
	default:
		fail(fmt.Errorf("unknown mix %q (want casestudy|synthetic)", *mixKind))
	}

	// The chaos schedule is generated against the same cluster shape the
	// fleet will build, so every event names real hardware. The horizon
	// covers the session: the -duration bound (scaled back to schedule time
	// under -speedup), or the expected length of a -requests bound.
	var chaosSchedule *deep.ChaosSchedule
	if *churn {
		sample := deep.ScaledTestbed(*clusterSize)
		var devs []string
		var links [][2]string
		for _, d := range sample.Devices {
			devs = append(devs, d.Name)
			links = append(links, [2]string{"hub", d.Name})
		}
		horizon := *duration
		if horizon > 0 {
			horizon = time.Duration(float64(horizon) * *speedup)
		} else {
			horizon = time.Duration(float64(*requests) / *rate * float64(time.Second))
		}
		chaosSchedule, err = deep.GenerateChaos(deep.ChaosConfig{
			Seed:           *seed,
			Horizon:        horizon,
			Devices:        devs,
			MinLiveDevices: (len(devs) + 1) / 2,
			CrashRate:      *crashRate,
			MeanDowntime:   *downtime,
			Registries:     []string{"regional"},
			OutageRate:     *outageRate,
			MeanOutage:     *downtime,
			Links:          links,
			DegradeRate:    *degradeRate,
			MeanDegrade:    *downtime,
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("deepfleet: churn enabled: %d chaos events over %s (seed %d)\n",
			chaosSchedule.Len(), horizon, *seed)
	}

	f := deep.NewFleet(deep.FleetConfig{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheSize:    *cacheSize,
		NewScheduler: schedulerByName,
		NewCluster:   func() *deep.Cluster { return deep.ScaledTestbed(*clusterSize) },
		// The fleet defaults to warm simulation caches (a long-lived
		// service keeps its image caches); -cold restores per-request
		// flushing for one-shot-style measurements.
		ColdCaches:    *cold,
		SlowThreshold: *slowThreshold,
		SlowRingSize:  *slowRing,
	})
	defer f.Close()

	if *debugAddr != "" {
		srv := debugListener(*debugAddr, f)
		defer srv.Close()
		fmt.Printf("deepfleet: debug listener on %s (/metrics, /debug/vars, /debug/pprof, /debug/slow)\n", *debugAddr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cacheLabel := strconv.Itoa(*cacheSize)
	if *cacheSize < 0 {
		cacheLabel = "off"
	}
	simLabel := "warm"
	if *cold {
		simLabel = "cold"
	}
	fmt.Printf("deepfleet: workers=%d queue=%d cache=%s arrivals=%s cluster-pairs=%d scheduler=%s sim=%s\n",
		*workers, *queue, cacheLabel, *arrivals, *clusterSize, *scheduler, simLabel)
	start := time.Now()
	report, err := deep.DriveFleet(ctx, f, deep.TrafficConfig{
		Arrivals: proc,
		Mix:      mix,
		Requests: *requests,
		Duration: *duration,
		Speedup:  *speedup,
		Seed:     *seed,
		Chaos:    chaosSchedule,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("drive finished in %s\n\n%s", time.Since(start).Round(time.Millisecond), report)
}
