// Command deepstore serves the MinIO-like S3-compatible object store on its
// own endpoint, as the paper's lab deployed MinIO at dcloud2.itec.aau.at.
//
// Usage:
//
//	deepstore -addr :9000 -quota 107374182400
//	deepstore -addr :9000 -erasure 4
package main

import (
	"flag"
	"log"
	"net"
	"net/http"

	"deep/internal/objectstore"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9000", "listen address")
	quota := flag.Int64("quota", 100<<30, "byte quota (0 = unlimited)")
	erasure := flag.Int("erasure", 0, "stripe objects over N data drives + parity (0 = plain store)")
	buckets := flag.String("buckets", "registry", "comma-separated buckets to create on startup")
	flag.Parse()

	var store objectstore.Store
	if *erasure > 0 {
		es, err := objectstore.NewErasureStore(*erasure)
		if err != nil {
			log.Fatalf("deepstore: %v", err)
		}
		store = es
	} else {
		store = objectstore.NewMemStore(*quota)
	}

	start := 0
	for i := 0; i <= len(*buckets); i++ {
		if i == len(*buckets) || (*buckets)[i] == ',' {
			if name := (*buckets)[start:i]; name != "" {
				if err := store.MakeBucket(name); err != nil {
					log.Printf("deepstore: bucket %q: %v", name, err)
				}
			}
			start = i + 1
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("deepstore: %v", err)
	}
	log.Printf("object store listening on %s (buckets: %s)", ln.Addr(), *buckets)
	log.Fatal(http.Serve(ln, objectstore.NewServer(store)))
}
