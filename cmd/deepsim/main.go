// Command deepsim schedules and simulates one case-study application on the
// calibrated testbed with a chosen method, printing the placement and the
// per-microservice timing/energy rows.
//
// Usage:
//
//	deepsim -app text -method deep
//	deepsim -app video -method exclusive-hub -seed 3 -jitter 0.02
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"deep"
)

func main() {
	appName := flag.String("app", "text", "application: video|text")
	method := flag.String("method", "deep", "scheduler: deep|exclusive-hub|exclusive-regional|greedy-energy|min-ct|round-robin|random")
	seed := flag.Int64("seed", 0, "measurement jitter seed")
	jitter := flag.Float64("jitter", 0, "jitter half-width (e.g. 0.02 for ±2%)")
	flag.Parse()

	var app *deep.App
	switch *appName {
	case "video":
		app = deep.VideoProcessing()
	case "text":
		app = deep.TextProcessing()
	default:
		fmt.Fprintf(os.Stderr, "deepsim: unknown app %q\n", *appName)
		os.Exit(1)
	}

	var scheduler deep.Scheduler
	for _, s := range deep.AllSchedulers(*seed) {
		if s.Name() == *method {
			scheduler = s
		}
	}
	if scheduler == nil {
		fmt.Fprintf(os.Stderr, "deepsim: unknown method %q\n", *method)
		os.Exit(1)
	}

	cluster := deep.Testbed()
	placement, err := deep.Schedule(scheduler, app, cluster)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepsim:", err)
		os.Exit(1)
	}
	res, err := deep.Run(app, cluster, placement, deep.Options{Seed: *seed, Jitter: *jitter})
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepsim:", err)
		os.Exit(1)
	}

	fmt.Printf("app=%s method=%s\n\n", app.Name, scheduler.Name())
	fmt.Printf("%-18s %-8s %-9s %8s %8s %8s %9s %10s\n",
		"microservice", "device", "registry", "Td[s]", "Tc[s]", "Tp[s]", "CT[s]", "EC[J]")
	rows := res.Sorted()
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].Start < rows[j].Start })
	for _, m := range rows {
		fmt.Printf("%-18s %-8s %-9s %8.1f %8.1f %8.1f %9.1f %10.1f\n",
			m.Name, m.Device, m.Registry, m.DeployTime, m.TransferTime, m.ProcessTime, m.CT, float64(m.TotalEnergy()))
	}
	fmt.Printf("\nmakespan: %.1f s\ntotal energy: %s\n", res.Makespan, res.TotalEnergy)
	for reg, bytes := range res.BytesFromRegistry {
		fmt.Printf("pulled from %s: %s\n", reg, bytes)
	}
}
