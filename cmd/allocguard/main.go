// Command allocguard is CI's allocation-regression gate: it parses `go test
// -bench -benchmem` output (stdin or files), compares each benchmark's
// allocs/op against the baselines recorded in BENCH_*.json, and exits
// non-zero when any case exceeds the budget ratio.
//
//	go test -run '^$' -bench 'BenchmarkSchedule$' -benchtime 100x -benchmem . | \
//	    go run ./cmd/allocguard -baselines BENCH_sched.json,BENCH_fleet.json -max-ratio 2
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"deep/internal/bench"
)

func main() {
	baselines := flag.String("baselines", "BENCH_sched.json,BENCH_fleet.json",
		"comma-separated BENCH_*.json files holding recorded allocs/op")
	maxRatio := flag.Float64("max-ratio", 2, "fail when measured allocs/op exceeds ratio × baseline")
	flag.Parse()

	base, err := bench.LoadAllocBaselines(strings.Split(*baselines, ",")...)
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if args := flag.Args(); len(args) > 0 {
		readers := make([]io.Reader, 0, len(args))
		for _, path := range args {
			f, err := os.Open(path)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			readers = append(readers, f)
		}
		in = io.MultiReader(readers...)
	}
	measured, err := bench.ParseBenchAllocs(in)
	if err != nil {
		fatal(err)
	}
	if len(measured) == 0 {
		fatal(fmt.Errorf("no benchmark results found in input"))
	}

	checked := 0
	for name := range measured {
		if _, ok := base[name]; ok {
			checked++
		}
	}
	fmt.Printf("allocguard: %d benchmark(s) measured, %d with recorded baselines, budget %.1fx\n",
		len(measured), checked, *maxRatio)
	if checked == 0 {
		fatal(fmt.Errorf("no measured benchmark matches a recorded baseline; case names drifted?"))
	}

	regs := bench.CheckAllocRegressions(measured, base, *maxRatio)
	if len(regs) == 0 {
		fmt.Println("allocguard: ok")
		return
	}
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "allocguard: REGRESSION %s\n", r)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allocguard:", err)
	os.Exit(1)
}
