// Command deepreg serves the regional Docker registry: a Registry HTTP API
// V2 endpoint backed by the MinIO-like object store (optionally
// erasure-striped), seeded with the paper's Table I image catalog at a
// configurable scale.
//
// Usage:
//
//	deepreg -addr :5000 -seed-catalog -scale 100000
//	deepreg -addr :5000 -erasure 4
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/httptest"

	"deep/internal/objectstore"
	"deep/internal/registry"
	"deep/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:5000", "listen address")
	quota := flag.Int64("quota", 100<<30, "object store quota in bytes (the paper provisions 100 GB)")
	erasure := flag.Int("erasure", 0, "stripe blobs over N data drives + parity (0 = plain store)")
	seedCatalog := flag.Bool("seed-catalog", true, "push the Table I catalog on startup")
	scale := flag.Int64("scale", 100000, "image size divisor for seeded payloads")
	flag.Parse()

	var store objectstore.Store
	if *erasure > 0 {
		es, err := objectstore.NewErasureStore(*erasure)
		if err != nil {
			log.Fatalf("deepreg: %v", err)
		}
		store = es
		log.Printf("object store: erasure-striped over %d data drives + parity", *erasure)
	} else {
		store = objectstore.NewMemStore(*quota)
		log.Printf("object store: in-memory, quota %d bytes", *quota)
	}

	driver, err := registry.NewObjectStoreDriver(store, "registry")
	if err != nil {
		log.Fatalf("deepreg: %v", err)
	}
	reg := registry.New(driver)
	srv := registry.NewServer(reg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("deepreg: %v", err)
	}
	log.Printf("regional registry listening on %s", ln.Addr())

	if *seedCatalog {
		// Seed through the HTTP front door so the full upload path runs.
		ts := httptest.NewServer(srv)
		client := registry.NewClient(ts.URL, ts.Client())
		refs, err := workload.SeedCatalog(client, "regional", *scale)
		if err != nil {
			log.Fatalf("deepreg: seed: %v", err)
		}
		ts.Close()
		log.Printf("seeded %d images (scale 1/%d)", len(refs), *scale)
		repos, _ := reg.Repositories()
		for _, r := range repos {
			tags, _ := reg.Tags(r)
			fmt.Printf("  %s tags=%v\n", r, tags)
		}
	}

	log.Fatal(http.Serve(ln, srv))
}
