// Command deepfleetd serves the multi-tenant deployment API over HTTP: wire
// spec in, placement and simulated cost out, with the robustness contract a
// network front-end owes its callers — per-tenant rate limits and in-flight
// quotas, 429 backpressure with Retry-After, body-size and decode limits,
// health/readiness probes, and SIGTERM graceful drain that completes every
// accepted request before exit.
//
// Usage:
//
//	deepfleetd -addr :8080 -admin-addr 127.0.0.1:9091 -workers 8 -queue 256
//	deepfleetd -addr :0 -cluster 4 -rate 50 -burst 100 -max-inflight 32
//
//	curl -s localhost:8080/readyz
//	curl -s -X POST localhost:8080/v1/deploy -d @deploy.json
//	curl -s localhost:8080/v1/stats
//	curl -s -X POST localhost:9091/v1/drain
//
// The public address serves only deploy, read-only introspection, and
// probes. Operator endpoints — /v1/churn, /v1/drain, /debug/vars,
// /debug/pprof/*, /debug/slow — live on -admin-addr (keep it loopback-only;
// empty disables them entirely), so an internet-facing deployment cannot be
// drained, churned, or profile-pinned by its clients.
//
// On SIGTERM (or POST /v1/drain on the admin listener) the daemon stops
// admission (/readyz goes
// 503, deploys are shed with 503 draining), waits for every in-flight
// handler, closes the fleet (completing every accepted request), and exits —
// all bounded by -drain-timeout.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"deep/internal/fleet"
	"deep/internal/fleetd"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (:0 picks a random port, printed on stdout)")
	adminAddr := flag.String("admin-addr", "", "admin listener for /v1/churn, /v1/drain, and /debug/* — keep it loopback-only (empty disables)")
	workers := flag.Int("workers", 4, "scheduler/simulator worker pool size")
	queue := flag.Int("queue", 256, "admission queue depth")
	queueShards := flag.Int("queue-shards", 0, "admission queue shards (0 = min(workers, GOMAXPROCS))")
	cacheSize := flag.Int("cache", 1024, "placement cache entries (0 disables)")
	scheduler := flag.String("scheduler", "deep", "scheduling method: deep|exclusive-hub|exclusive-regional|greedy-energy|min-ct|round-robin|random")
	clusterSize := flag.Int("cluster", 1, "testbed device pairs (1 = the paper's two-device testbed)")
	seed := flag.Int64("seed", 1, "randomness seed for randomized baseline schedulers")
	rate := flag.Float64("rate", 0, "per-tenant sustained deploys per second (0 = unlimited)")
	burst := flag.Int("burst", 0, "per-tenant token bucket size (default max(rate, 1))")
	maxInFlight := flag.Int("max-inflight", 0, "per-tenant concurrent deploy quota (0 = unlimited)")
	maxBody := flag.Int64("max-body", 0, "request body limit in bytes (0 = 1 MiB default)")
	maxDeadline := flag.Duration("max-deadline", 30*time.Second, "cap on client-requested deploy deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "hard bound on graceful drain; exceeded means exit 1")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "deepfleetd:", err)
		os.Exit(1)
	}

	newScheduler := func() sched.Scheduler {
		for _, s := range sched.All(*seed) {
			if s.Name() == *scheduler {
				return s
			}
		}
		return nil
	}
	if newScheduler() == nil {
		fail(fmt.Errorf("unknown scheduler %q", *scheduler))
	}
	if *cacheSize <= 0 {
		*cacheSize = -1 // Config treats 0 as default; the flag promises 0 disables
	}

	f := fleet.New(fleet.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		QueueShards:  *queueShards,
		CacheSize:    *cacheSize,
		NewScheduler: newScheduler,
		NewCluster:   func() *sim.Cluster { return workload.ScaledTestbed(*clusterSize) },
	})

	srv, err := fleetd.New(fleetd.Config{
		Backend:      f,
		Registry:     f.Metrics().Obs(),
		Cluster:      workload.ScaledTestbed(*clusterSize),
		RatePerSec:   *rate,
		Burst:        *burst,
		MaxInFlight:  *maxInFlight,
		MaxBodyBytes: *maxBody,
		MaxDeadline:  *maxDeadline,
		ExpvarName:   "deepfleetd",
	})
	if err != nil {
		fail(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	// The smoke harness parses this line to discover a :0 port; keep the
	// format stable.
	fmt.Printf("deepfleetd: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	var adminSrv *http.Server
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fail(err)
		}
		// Parsed by the smoke harness like the public line; keep the format.
		fmt.Printf("deepfleetd: admin on %s\n", aln.Addr())
		adminSrv = &http.Server{Handler: srv.AdminHandler()}
		go func() { _ = adminSrv.Serve(aln) }()
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigCh:
		fmt.Printf("deepfleetd: %s: draining\n", sig)
	case <-srv.Draining():
		fmt.Println("deepfleetd: drain requested: draining")
	case err := <-serveErr:
		fail(err)
	}

	// Drain sequence, bounded end to end by -drain-timeout:
	//  1. stop admission (readyz 503, deploys shed),
	//  2. wait for every in-flight handler — each holds an accepted fleet
	//     request and blocks until its response arrives,
	//  3. close the fleet, completing anything still queued.
	hardDeadline := time.Now().Add(*drainTimeout)
	srv.StartDrain()
	ctx, cancel := context.WithDeadline(context.Background(), hardDeadline)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fail(fmt.Errorf("drain exceeded %s waiting for in-flight requests: %w", *drainTimeout, err))
	}
	if adminSrv != nil {
		_ = adminSrv.Shutdown(ctx)
	}
	closed := make(chan struct{})
	go func() { f.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(time.Until(hardDeadline)):
		fail(fmt.Errorf("drain exceeded %s waiting for fleet close", *drainTimeout))
	}
	st := f.Stats()
	fmt.Printf("deepfleetd: drained cleanly (%d completed, %d failed, %d rejected)\n",
		st.Completed, st.Failed, st.Rejected)
}
