// Command deepbench regenerates every table and figure of the paper's
// evaluation section, plus the ablation studies.
//
// Usage:
//
//	deepbench -experiment all
//	deepbench -experiment table2 -trials 10
//	deepbench -experiment fig3b
package main

import (
	"flag"
	"fmt"
	"os"

	"deep/internal/bench"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: table1|table2|table3|fig3a|fig3b|ablations|all")
	trials := flag.Int("trials", 10, "jittered trials per Table II configuration")
	flag.Parse()

	run := func(name string) error {
		switch name {
		case "table1":
			fmt.Println(bench.FormatTable1(bench.Table1()))
		case "table2":
			rows, err := bench.Table2(*trials)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatTable2(rows))
		case "table3":
			rows, err := bench.Table3()
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatTable3(rows))
		case "fig3a":
			rows, err := bench.Fig3a()
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatFig3a(rows))
		case "fig3b":
			rows, err := bench.Fig3b()
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatFig3b(rows))
		case "ablations":
			sc, err := bench.SchedulerComparison(1)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatSchedulerComparison(sc))
			bw, err := bench.BandwidthSweep("text", []float64{0.25, 0.5, 1, 2, 4})
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatBandwidthSweep(bw))
			ca, err := bench.CacheAblation("video", 3)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatCacheAblation(ca))
			co, err := bench.ContentionAblation()
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatContentionAblation(co))
			sw, err := bench.ScaleSweep([]int{6, 12, 24, 48}, 1)
			if err != nil {
				return err
			}
			fmt.Println(bench.FormatScaleSweep(sw))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "table2", "table3", "fig3a", "fig3b", "ablations"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "deepbench:", err)
			os.Exit(1)
		}
	}
}
