package deep_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus micro-benchmarks for the core substrates. Each
// table/figure bench regenerates the corresponding experiment end to end;
// run with:
//
//	go test -bench=. -benchmem
//
// The printed rows/series (via -v or cmd/deepbench) mirror the paper's.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"deep"
	"deep/internal/appgraph"
	"deep/internal/bench"
	"deep/internal/costmodel"
	"deep/internal/game"
	"deep/internal/obs"
	"deep/internal/registry"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/workload"
)

// BenchmarkTable1Catalog regenerates Table I (the image catalog).
func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1()
		if len(rows) != 12 {
			b.Fatal("catalog incomplete")
		}
	}
}

// BenchmarkTable2Microservices regenerates Table II: every microservice
// benchmarked from both registries on both devices over jittered trials.
func BenchmarkTable2Microservices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(3)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatal("table incomplete")
		}
	}
}

// BenchmarkTable3Placement regenerates Table III: the DEEP Nash scheduler's
// deployment distribution on both case studies.
func BenchmarkTable3Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.MatchesPaper {
				b.Fatalf("%s deviates from the paper", r.App)
			}
		}
	}
}

// BenchmarkFig3aEnergyPerMicroservice regenerates Figure 3a.
func BenchmarkFig3aEnergyPerMicroservice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3a()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 12 {
			b.Fatal("figure incomplete")
		}
	}
}

// BenchmarkFig3bMethods regenerates Figure 3b: DEEP vs the two exclusive
// deployment methods on both applications.
func BenchmarkFig3bMethods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig3b()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.DeltaVsDEEP < 0 {
				b.Fatalf("%s/%s beat DEEP", r.App, r.Method)
			}
		}
	}
}

// Benchmark_AblationSchedulers compares every scheduling method.
func Benchmark_AblationSchedulers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.SchedulerComparison(1); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark_AblationBandwidthSweep sweeps the regional registry bandwidth.
func Benchmark_AblationBandwidthSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.BandwidthSweep("text", []float64{0.5, 1, 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark_AblationLayerCache measures warm-vs-cold deployments.
func Benchmark_AblationLayerCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.CacheAblation("video", 2); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmark_AblationContention measures the value of congestion-aware
// registry selection.
func Benchmark_AblationContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.ContentionAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks -----------------------------------------

// BenchmarkNashSchedulerVideo times one full Nash scheduling pass.
func BenchmarkNashSchedulerVideo(b *testing.B) {
	cluster := workload.Testbed()
	app := workload.VideoProcessing()
	s := sched.NewDEEP()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(app, cluster); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSchedule times the DEEP scheduling hot path end to end: the
// paper's case-study applications on the calibrated testbed, plus a wider
// synthetic application (stages of up to four microservices exercise the
// best-response dynamics) on a 50-node scaled testbed. Each case runs both
// cold (Schedule: compile the cost model, then play the games) and warm
// (ScheduleModel on a precompiled model — the fleet workers' steady state,
// where compiled models are memoized per request fingerprint). The CI bench
// smoke step runs this with -benchtime=1x; BENCH_sched.json records ns/op
// and allocs/op for the DEEP path.
func BenchmarkSchedule(b *testing.B) {
	cfg := workload.DefaultGeneratorConfig(12, 42)
	cfg.StageWidth = 4
	synth, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		app     *deep.App
		cluster *deep.Cluster
	}{
		{"deep/video/testbed", workload.VideoProcessing(), workload.Testbed()},
		{"deep/text/testbed", workload.TextProcessing(), workload.Testbed()},
		{"deep/synthetic12/scaled50", synth, workload.ScaledTestbed(25)},
	}
	for _, c := range cases {
		b.Run(c.name+"/cold", func(b *testing.B) {
			s := sched.NewDEEP()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Schedule(c.app, c.cluster); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/warm", func(b *testing.B) {
			s := sched.NewDEEP()
			model := costmodel.Compile(c.app, c.cluster)
			if _, err := model.Stages(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.ScheduleModel(model); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulatorRun times one dataflow-processing simulation.
func BenchmarkSimulatorRun(b *testing.B) {
	cluster := workload.Testbed()
	app := workload.TextProcessing()
	p := workload.PaperPlacement("text")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(app, cluster, p, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRun times the compiled simulator under the fleet request
// path: the paper's case-study applications on the calibrated testbed plus
// a wider synthetic app on a 50-node scaled testbed, each placed by DEEP.
// cold runs sim.Run end to end (compile the plan, fresh Exec, flushed layer
// caches — the one-shot path); warm runs a reusable Exec over a precompiled
// Plan with warm caches — the fleet workers' steady state, which allocates
// nothing (pinned by TestWarmExecAllocationFree and the BENCH_sim.json
// baseline gated in CI).
func BenchmarkSimRun(b *testing.B) {
	cfg := workload.DefaultGeneratorConfig(12, 42)
	cfg.StageWidth = 4
	synth, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		app     *deep.App
		cluster *deep.Cluster
	}{
		{"sim/video/testbed", workload.VideoProcessing(), workload.Testbed()},
		{"sim/text/testbed", workload.TextProcessing(), workload.Testbed()},
		{"sim/synthetic12/scaled50", synth, workload.ScaledTestbed(25)},
	}
	for _, c := range cases {
		placement, err := sched.NewDEEP().Schedule(c.app, c.cluster)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name+"/cold", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(c.app, c.cluster, placement, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(c.name+"/warm", func(b *testing.B) {
			plan := sim.CompilePlan(c.app, c.cluster)
			exec := sim.NewExec()
			// Prime: fill the layer caches and size the Exec scratch.
			if _, err := exec.Run(plan, placement, sim.Options{}); err != nil {
				b.Fatal(err)
			}
			opts := sim.Options{WarmCaches: true}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := exec.Run(plan, placement, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileShape times the cold (app, cluster) compile path — the
// first sight of a request shape — in four forms. legacy builds the cost
// model and the simulator plan from scratch (each rebuilding the cluster's
// name tables and dense link tables). shared compiles both on a warm
// topo.ClusterTable but still runs the two app-side passes split, each
// re-walking the DAG (validation, stages, topo order, per-microservice
// scalars). fused compiles one appgraph.AppTable and then emits the model
// and plan in a single walk (costmodel.CompileShapeOn) — the fleet's cold
// path since the app substrate landed. fused_warmapp starts from a cached
// AppTable — what a known app arriving on a new cluster pays, the fleet's
// app-digest cache hit. BENCH_compile.json records ns/op and allocs/op;
// CI's allocguard gates the alloc counts.
func BenchmarkCompileShape(b *testing.B) {
	cfg := workload.DefaultGeneratorConfig(12, 42)
	cfg.StageWidth = 4
	synth, err := workload.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		app     *deep.App
		cluster *deep.Cluster
	}{
		{"compile/video/testbed", workload.VideoProcessing(), workload.Testbed()},
		{"compile/synthetic12/scaled50", synth, workload.ScaledTestbed(25)},
	}
	for _, c := range cases {
		b.Run(c.name+"/legacy", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model := costmodel.Compile(c.app, c.cluster)
				plan := sim.CompilePlan(c.app, c.cluster)
				if model == nil || plan == nil {
					b.Fatal("compile failed")
				}
			}
		})
		b.Run(c.name+"/shared", func(b *testing.B) {
			table := sim.CompileClusterTable(c.cluster)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model := costmodel.CompileOn(c.app, c.cluster, table)
				plan := sim.CompilePlanOn(c.app, c.cluster, table)
				if model == nil || plan == nil {
					b.Fatal("compile failed")
				}
			}
		})
		b.Run(c.name+"/fused", func(b *testing.B) {
			table := sim.CompileClusterTable(c.cluster)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at := appgraph.Compile(c.app)
				model, plan := costmodel.CompileShapeOn(at, c.cluster, table)
				if model == nil || plan == nil {
					b.Fatal("compile failed")
				}
			}
		})
		b.Run(c.name+"/fused_warmapp", func(b *testing.B) {
			table := sim.CompileClusterTable(c.cluster)
			at := appgraph.Compile(c.app)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				model, plan := costmodel.CompileShapeOn(at, c.cluster, table)
				if model == nil || plan == nil {
					b.Fatal("compile failed")
				}
			}
		})
	}
}

// BenchmarkCompileAppTable times appgraph.Compile alone on the paper's
// video case study: the one-time per-app-digest cost the fleet pays before
// every per-cluster fused compile becomes a cache hit. The app is rebuilt
// each iteration so the dag memo cannot amortize the structural walks the
// table compile is meant to capture.
func BenchmarkCompileAppTable(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		app := workload.VideoProcessing()
		if at := appgraph.Compile(app); at.NumMicroservices() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkLemkeHowson4x4 times the Lemke-Howson pivot on the pair games
// DEEP solves per stage.
func BenchmarkLemkeHowson4x4(b *testing.B) {
	a := game.NewMatrix(4, 4)
	bb := game.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64((i*7+j*3)%11))
			bb.Set(i, j, float64((i*5+j*11)%13))
		}
	}
	g := game.New(a, bb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.LemkeHowsonAny(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSupportEnumeration4x4 times exhaustive equilibrium enumeration.
func BenchmarkSupportEnumeration4x4(b *testing.B) {
	a := game.NewMatrix(4, 4)
	bb := game.NewMatrix(4, 4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			a.Set(i, j, float64((i*7+j*3)%11))
			bb.Set(i, j, float64((i*5+j*11)%13))
		}
	}
	g := game.New(a, bb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if eqs := g.SupportEnumeration(); len(eqs) == 0 {
			b.Fatal("no equilibria")
		}
	}
}

// BenchmarkRegistryPushPull times an in-memory V2 push+pull round trip.
func BenchmarkRegistryPushPull(b *testing.B) {
	reg := registry.New(registry.NewMemDriver())
	layer := make([]byte, 64<<10)
	d := registry.DigestOf(layer)
	b.SetBytes(int64(len(layer)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := reg.PutBlob(d, layer); err != nil {
			b.Fatal(err)
		}
		if _, err := reg.GetBlob(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullPipeline times the complete Figure 1 pipeline (analysis,
// scheduling, simulation) for the text application.
func BenchmarkFullPipeline(b *testing.B) {
	cluster := deep.Testbed()
	for i := 0; i < b.N; i++ {
		sys := deep.NewSystem(cluster)
		if _, err := sys.Deploy(deep.TextProcessing()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterPatch measures incremental recompilation under churn on
// the scaled50 testbed (100 devices): compiling the post-crash cluster table
// from scratch versus patching the pre-crash table for a single-device
// removal. Patch recompiles only the crashed device's incident link rows
// (O(Δ·devices)) and copies everything else, so it must beat the full
// O(devices²) topology scan by a wide margin — the property that makes live
// churn affordable (BENCH_churn.json records the ratio).
func BenchmarkClusterPatch(b *testing.B) {
	cluster := workload.ScaledTestbed(50)
	base := sim.CompileClusterTable(cluster)
	regs := make([]topo.Registry, len(cluster.Registries))
	for i, r := range cluster.Registries {
		regs[i] = topo.Registry{Name: r.Name, Node: r.Node, Shared: r.Shared}
	}
	// The post-crash view: the first device removed, everything else as-is.
	after := topo.View{
		Devices:    cluster.Devices[1:],
		Registries: regs,
		Topology:   cluster.Topology,
		SourceNode: cluster.SourceNode,
	}
	b.Run("full-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if topo.Compile(after) == nil {
				b.Fatal("nil table")
			}
		}
	})
	b.Run("patch-single-device", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if base.Patch(after, topo.Delta{}) == nil {
				b.Fatal("nil table")
			}
		}
	})
}

// BenchmarkFleetChurn measures the request path with churn machinery live:
// the steady row is the warm cached path on a quiet cluster (it must stay at
// the BENCH_fleet.json pooled-path baseline — churn awareness is one atomic
// load and one pointer compare); the churning row runs the same closed loop while
// a background goroutine crashes and recovers devices continuously, forcing
// epoch adoptions, cache invalidations, and re-schedules.
func BenchmarkFleetChurn(b *testing.B) {
	apps := []*deep.App{deep.VideoProcessing(), deep.TextProcessing()}
	for _, churning := range []bool{false, true} {
		name := "steady"
		if churning {
			name = "churning"
		}
		b.Run(name, func(b *testing.B) {
			f := deep.NewFleet(deep.FleetConfig{
				Workers:    4,
				QueueDepth: 256,
				NewCluster: func() *deep.Cluster { return deep.ScaledTestbed(4) },
			})
			defer f.Close()
			stop := make(chan struct{})
			var wg sync.WaitGroup
			if churning {
				wg.Add(1)
				go func() {
					defer wg.Done()
					devs := []string{"medium-01", "small-01", "medium-02", "small-02"}
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						d := devs[i%len(devs)]
						if _, _, err := f.ApplyChurn(deep.ChurnDelta{FailDevices: []string{d}}); err != nil {
							b.Error(err)
							return
						}
						// Hold the down window open so in-flight placements
						// can actually go stale before the recovery.
						time.Sleep(100 * time.Microsecond)
						if _, _, err := f.ApplyChurn(deep.ChurnDelta{RecoverDevices: []string{d}}); err != nil {
							b.Error(err)
							return
						}
						time.Sleep(100 * time.Microsecond)
					}
				}()
			}
			failed := 0
			b.ResetTimer()
			pending := make([]<-chan *deep.FleetResponse, 0, b.N)
			for i := 0; i < b.N; i++ {
				req := deep.FleetRequest{App: apps[i%len(apps)], Seed: int64(i)}
				for {
					ch, err := f.Submit(req)
					if err == nil {
						pending = append(pending, ch)
						break
					}
					if !errors.Is(err, deep.ErrFleetQueueFull) {
						b.Fatal(err)
					}
					resp := <-pending[0]
					if resp.Err != nil {
						failed++
					}
					resp.Release()
					pending = pending[1:]
				}
			}
			for _, ch := range pending {
				resp := <-ch
				if resp.Err != nil {
					failed++
				}
				resp.Release()
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
			if !churning && failed > 0 {
				b.Fatalf("%d requests failed on a quiet cluster", failed)
			}
			// Bounded-retry exhaustion under saturation churn is legal but
			// must stay rare.
			if failed*100 > b.N {
				b.Fatalf("%d of %d requests failed under churn", failed, b.N)
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
			st := f.Stats().Churn
			b.ReportMetric(float64(st.EpochsApplied), "epochs")
			b.ReportMetric(float64(st.Reschedules), "reschedules")
		})
	}
}

// BenchmarkFleetThroughput measures sustained deployment throughput through
// the fleet service across worker-pool sizes with the placement cache on
// and off. Each iteration pushes one request through the closed feedback
// loop: submit until the admission queue fills, then drain the oldest
// in-flight response before retrying, so the queue stays saturated and the
// pool is never idle. The req/s metric (and the BENCH_fleet.json baseline —
// see README) comes from b.N over wall time.
func BenchmarkFleetThroughput(b *testing.B) {
	apps := []*deep.App{deep.VideoProcessing(), deep.TextProcessing()}
	for _, workers := range []int{1, 2, 4, 8} {
		for _, cached := range []bool{false, true} {
			for _, warmSim := range []bool{false, true} {
				cacheSize := -1
				if cached {
					cacheSize = 1024
				}
				simName := "cold"
				if warmSim {
					simName = "warm"
				}
				name := fmt.Sprintf("workers=%d/cache=%v/sim=%s", workers, cached, simName)
				b.Run(name, func(b *testing.B) {
					f := deep.NewFleet(deep.FleetConfig{
						Workers:    workers,
						QueueDepth: 256,
						CacheSize:  cacheSize,
						// sim=warm is the fleet default; the cold rows opt
						// out to keep the per-request-flush dimension.
						ColdCaches: !warmSim,
					})
					defer f.Close()
					b.ResetTimer()
					pending := make([]<-chan *deep.FleetResponse, 0, b.N)
					for i := 0; i < b.N; i++ {
						req := deep.FleetRequest{App: apps[i%len(apps)], Seed: int64(i)}
						for {
							ch, err := f.Submit(req)
							if err == nil {
								pending = append(pending, ch)
								break
							}
							if !errors.Is(err, deep.ErrFleetQueueFull) {
								b.Fatal(err)
							}
							resp := <-pending[0]
							if resp.Err != nil {
								b.Fatal(resp.Err)
							}
							resp.Release()
							pending = pending[1:]
						}
					}
					for _, ch := range pending {
						resp := <-ch
						if resp.Err != nil {
							b.Fatal(resp.Err)
						}
						resp.Release()
					}
					b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
				})
			}
		}
	}
}

// BenchmarkSubmitBatch measures the amortized admission path: requests enter
// 16 at a time through Fleet.SubmitBatch, which charges one handoff, one
// time.Now(), and one shard slot per batch instead of per request. b.N counts
// requests, so allocs/op here is allocs *per request* and is directly
// comparable to the single-submit rows — the BENCH_fleet.json baseline pins
// it at the amortized (≤2 allocs/req) level.
func BenchmarkSubmitBatch(b *testing.B) {
	const batchSize = 16
	apps := []*deep.App{deep.VideoProcessing(), deep.TextProcessing()}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d/batch=%d", workers, batchSize), func(b *testing.B) {
			f := deep.NewFleet(deep.FleetConfig{
				Workers:    workers,
				QueueDepth: 64,
				CacheSize:  1024,
			})
			defer f.Close()
			ctx := context.Background()
			reqs := make([]deep.FleetRequest, batchSize)
			type inflight struct {
				ch <-chan *deep.FleetResponse
				n  int
			}
			b.ResetTimer()
			pending := make([]inflight, 0, b.N/batchSize+1)
			for submitted := 0; submitted < b.N; {
				n := batchSize
				if rest := b.N - submitted; rest < n {
					n = rest
				}
				for i := 0; i < n; i++ {
					reqs[i] = deep.FleetRequest{App: apps[(submitted+i)%len(apps)], Seed: int64(submitted + i)}
				}
				for {
					ch, err := f.SubmitBatch(ctx, reqs[:n])
					if err == nil {
						pending = append(pending, inflight{ch, n})
						break
					}
					if !errors.Is(err, deep.ErrFleetQueueFull) {
						b.Fatal(err)
					}
					head := pending[0]
					for j := 0; j < head.n; j++ {
						resp := <-head.ch
						if resp.Err != nil {
							b.Fatal(resp.Err)
						}
						resp.Release()
					}
					pending = pending[1:]
				}
				submitted += n
			}
			for _, fl := range pending {
				for j := 0; j < fl.n; j++ {
					resp := <-fl.ch
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
					resp.Release()
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkShardedQueue compares admission-queue sharding levels under the
// same closed feedback loop as BenchmarkFleetThroughput: shards=1 is the
// pre-sharding single-channel queue, shards=4 spreads the same capacity over
// four channels keyed by tenant so producers and the work-stealing consumers
// contend on disjoint locks. Eight tenants keep every shard populated.
func BenchmarkShardedQueue(b *testing.B) {
	apps := []*deep.App{deep.VideoProcessing(), deep.TextProcessing()}
	tenants := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			f := deep.NewFleet(deep.FleetConfig{
				Workers:     4,
				QueueDepth:  256,
				QueueShards: shards,
				CacheSize:   1024,
			})
			defer f.Close()
			b.ResetTimer()
			pending := make([]<-chan *deep.FleetResponse, 0, b.N)
			for i := 0; i < b.N; i++ {
				req := deep.FleetRequest{
					Tenant: tenants[i%len(tenants)],
					App:    apps[i%len(apps)],
					Seed:   int64(i),
				}
				for {
					ch, err := f.Submit(req)
					if err == nil {
						pending = append(pending, ch)
						break
					}
					if !errors.Is(err, deep.ErrFleetQueueFull) {
						b.Fatal(err)
					}
					resp := <-pending[0]
					if resp.Err != nil {
						b.Fatal(resp.Err)
					}
					resp.Release()
					pending = pending[1:]
				}
			}
			for _, ch := range pending {
				resp := <-ch
				if resp.Err != nil {
					b.Fatal(resp.Err)
				}
				resp.Release()
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
		})
	}
}

// BenchmarkStageRecord isolates the fleet's per-request instrumentation
// cost: folding a full stage trace into the six per-stage histograms, the
// end-to-end latency observation, and the slow ring's fast path — exactly
// what a fleet worker adds per request since the observability layer landed.
// The allocguard baseline pins this at zero allocations.
func BenchmarkStageRecord(b *testing.B) {
	reg := obs.NewRegistry()
	stages := obs.NewStageSet(reg, "fleet_stage_seconds")
	latency := reg.Histogram("fleet_request_latency_s")
	ring := obs.NewSlowRing(64, time.Hour, latency) // fixed bar nothing reaches
	var tr obs.StageTrace
	for s := obs.Stage(0); s < obs.NumStages; s++ {
		tr.D[s] = time.Duration(s+1) * time.Microsecond
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shard := i & (obs.NumShards - 1)
		stages.RecordAt(shard, &tr)
		latency.ObserveAt(shard, 1e-4)
		ring.Observe("tenant", "app", 100*time.Microsecond, &tr, true, false)
	}
}
