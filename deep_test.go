package deep_test

import (
	"testing"

	"deep"
)

func TestPublicQuickstart(t *testing.T) {
	sys := deep.NewSystem(deep.Testbed())
	dep, err := sys.Deploy(deep.TextProcessing())
	if err != nil {
		t.Fatal(err)
	}
	if dep.Result.TotalEnergy <= 0 {
		t.Error("no energy")
	}
}

func TestPublicCustomApp(t *testing.T) {
	app := deep.NewApp("custom")
	if err := app.AddMicroservice(&deep.Microservice{
		Name:      "stage1",
		ImageSize: 100 * deep.MB,
		Req:       deep.Requirements{Cores: 1, CPU: 30000, Memory: deep.GB},
		Arches:    []deep.Arch{deep.AMD64, deep.ARM64},
	}); err != nil {
		t.Fatal(err)
	}
	if err := app.AddMicroservice(&deep.Microservice{
		Name:      "stage2",
		ImageSize: 200 * deep.MB,
		Req:       deep.Requirements{Cores: 1, CPU: 60000, Memory: deep.GB},
		Arches:    []deep.Arch{deep.AMD64, deep.ARM64},
	}); err != nil {
		t.Fatal(err)
	}
	if err := app.AddDataflow("stage1", "stage2", 50*deep.MB); err != nil {
		t.Fatal(err)
	}
	cluster := deep.Testbed()
	p, err := deep.Schedule(deep.NewDEEPScheduler(), app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	res, err := deep.Run(app, cluster, p, deep.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Microservices) != 2 {
		t.Errorf("results = %d", len(res.Microservices))
	}
}

func TestPublicSchedulers(t *testing.T) {
	if got := len(deep.AllSchedulers(0)); got != 7 {
		t.Errorf("schedulers = %d", got)
	}
	if deep.NewExclusiveScheduler("hub").Name() != "exclusive-hub" {
		t.Error("wrong exclusive scheduler")
	}
}

func TestPublicMethodsComparison(t *testing.T) {
	sys := deep.NewSystem(deep.Testbed())
	out, err := sys.Compare(deep.VideoProcessing(), deep.AllSchedulers(1))
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Result.TotalEnergy > out[len(out)-1].Result.TotalEnergy {
		t.Error("not sorted")
	}
}
