module deep

go 1.24
