// Registryserver runs the full emulation stack end to end over real HTTP:
// it starts the MinIO-like object store, layers the regional Docker
// registry on top of it, starts a Docker Hub simulator, seeds both with the
// paper's Table I catalog (scaled), then rolls the text-processing
// application out onto two emulated edge nodes through the orchestrator,
// pulling every image through the V2 protocol with digest verification and
// layer-cache reuse.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/hub"
	"deep/internal/objectstore"
	"deep/internal/orchestrator"
	"deep/internal/registry"
	"deep/internal/sched"
	"deep/internal/units"
	"deep/internal/workload"
)

func main() {
	const scale = 1_000_000 // shrink multi-GB images to a few KB

	// 1. Object store (MinIO stand-in), erasure-striped across 4 drives.
	store, err := objectstore.NewErasureStore(4)
	if err != nil {
		log.Fatal(err)
	}
	storeSrv := httptest.NewServer(objectstore.NewServer(store))
	defer storeSrv.Close()
	fmt.Println("object store:     ", storeSrv.URL)

	// 2. Regional registry over the object store.
	driver, err := registry.NewObjectStoreDriver(store, "registry")
	if err != nil {
		log.Fatal(err)
	}
	regionalReg := registry.New(driver)
	regionalSrv := httptest.NewServer(registry.NewServer(regionalReg))
	defer regionalSrv.Close()
	fmt.Println("regional registry:", regionalSrv.URL)

	// 3. Docker Hub simulator with two CDN PoPs and the anonymous pull
	// limit.
	h := hub.New(registry.New(registry.NewMemDriver()), hub.Config{
		PoPs: []hub.PoP{
			{Name: "eu-west", Bandwidth: 500 * units.MBps},
			{Name: "us-east", Bandwidth: 400 * units.MBps},
		},
		RateLimit: 100,
		Window:    6 * time.Hour,
	})
	hubSrvs := map[string]*httptest.Server{}
	for _, node := range []string{"medium", "small"} {
		srv := httptest.NewServer(h.Server(node))
		defer srv.Close()
		hubSrvs[node] = srv
	}
	fmt.Println("hub (medium PoP): ", hubSrvs["medium"].URL, "->", h.AssignPoP("medium").Name)
	fmt.Println("hub (small PoP):  ", hubSrvs["small"].URL, "->", h.AssignPoP("small").Name)

	// 4. Seed both registries with the Table I catalog.
	seedStart := time.Now()
	hubSeed := registry.NewClient(hubSrvs["medium"].URL, nil)
	hubRefs, err := workload.SeedCatalog(hubSeed, "hub", scale)
	if err != nil {
		log.Fatal(err)
	}
	regionalSeed := registry.NewClient(regionalSrv.URL, nil)
	regionalRefs, err := workload.SeedCatalog(regionalSeed, "regional", scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeded %d images into each registry in %v\n", len(hubRefs), time.Since(seedStart).Round(time.Millisecond))

	// 5. An orchestrator over two emulated nodes.
	cluster := orchestrator.New(func(node, regName string) (*registry.Client, error) {
		switch regName {
		case "hub":
			return registry.NewClient(hubSrvs[node].URL, nil), nil
		case "regional":
			return registry.NewClient(regionalSrv.URL, nil), nil
		}
		return nil, fmt.Errorf("unknown registry %q", regName)
	})
	pmMed := energy.LinearModel{StaticW: 0.25, ProcessingW: 20}
	pmSmall := energy.LinearModel{StaticW: 0.9, ProcessingW: 5}
	medium := device.New("medium", dag.AMD64, 8, 30000, 16*units.GB, 64*units.GB, pmMed)
	small := device.New("small", dag.ARM64, 4, 10000, 8*units.GB, 32*units.GB, pmSmall)
	for _, n := range []*orchestrator.Node{
		{Name: "medium", Arch: dag.AMD64, Device: medium},
		{Name: "small", Arch: dag.ARM64, Device: small},
	} {
		if err := cluster.AddNode(n); err != nil {
			log.Fatal(err)
		}
	}

	// 6. Schedule with the Nash game and roll out over real HTTP pulls.
	app := workload.TextProcessing()
	placement, err := sched.NewDEEP().Schedule(app, workload.Testbed())
	if err != nil {
		log.Fatal(err)
	}
	images := map[string]map[string]registry.Reference{}
	for _, m := range app.Microservices {
		images[m.Name] = map[string]registry.Reference{
			"hub":      hubRefs[m.Name],
			"regional": regionalRefs[m.Name],
		}
	}
	rolloutStart := time.Now()
	pods, err := cluster.Rollout(app, placement, images)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrollout finished in %v:\n", time.Since(rolloutStart).Round(time.Millisecond))
	for _, p := range pods {
		fmt.Printf("  %-22s %-9s node=%-7s registry=%-9s pulled=%s\n",
			p.Name, p.Phase, p.Node, p.Registry, units.Bytes(p.BytesPulled))
	}

	m := cluster.Metrics()
	fmt.Printf("\npulls: %.0f  cache hits: %.0f\n", m.Counter("pulls_total"), m.Counter("cache_hits_total"))
	fmt.Printf("bytes from hub: %s, from regional: %s\n",
		units.Bytes(m.Counter("bytes_pulled_hub")), units.Bytes(m.Counter("bytes_pulled_regional")))
	fmt.Printf("medium cache: %d layers (%s); small cache: %d layers (%s)\n",
		medium.Cache().Len(), medium.Cache().Used(), small.Cache().Len(), small.Cache().Used())
}
