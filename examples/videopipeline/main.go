// Videopipeline compares the three deployment methods of the paper's
// Figure 3b — DEEP (hybrid), exclusively regional, exclusively Docker Hub —
// on the video-processing application, printing per-method totals and the
// per-microservice energy breakdown under DEEP (Figure 3a's video half).
package main

import (
	"fmt"
	"log"
	"strings"

	"deep"
)

func main() {
	cluster := deep.Testbed()
	app := deep.VideoProcessing()
	sys := deep.NewSystem(cluster)

	methods := []deep.Scheduler{
		deep.NewDEEPScheduler(),
		deep.NewExclusiveScheduler("regional"),
		deep.NewExclusiveScheduler("hub"),
	}
	results, err := sys.Compare(app, methods)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Energy by deployment method (video processing):")
	var deepEnergy float64
	for _, r := range results {
		if r.Method == "deep" {
			deepEnergy = float64(r.Result.TotalEnergy)
		}
	}
	for _, r := range results {
		delta := float64(r.Result.TotalEnergy) - deepEnergy
		fmt.Printf("  %-20s %10.3f kJ   (+%.1f J vs DEEP)\n",
			r.Method, r.Result.TotalEnergy.Kilojoules(), delta)
	}

	// The Figure 3a view: which microservices dominate.
	fmt.Println("\nPer-microservice energy under DEEP:")
	for _, r := range results {
		if r.Method != "deep" {
			continue
		}
		var max float64
		for _, m := range r.Result.Microservices {
			if e := float64(m.TotalEnergy()); e > max {
				max = e
			}
		}
		for _, m := range r.Result.Microservices {
			bar := int(30 * float64(m.TotalEnergy()) / max)
			fmt.Printf("  %-18s %8.0f J |%s\n", m.Name, float64(m.TotalEnergy()), strings.Repeat("#", bar))
		}
	}
}
