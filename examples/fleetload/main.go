// Example fleetload: run the multi-tenant deployment service under a bursty
// open-loop load of synthetic tenants plus the paper's two case studies, and
// print the throughput/latency/cache report and per-tenant metrics.
package main

import (
	"context"
	"fmt"
	"log"

	"deep"
)

func main() {
	// Four tenants of synthetic 8-microservice pipelines, plus the two
	// paper case studies, all sharing one fleet.
	mix, err := deep.SyntheticMix(4, 2, 8, 42)
	if err != nil {
		log.Fatal(err)
	}
	mix = append(mix, deep.CaseStudyMix()...)

	// Simulation runs with warm device layer caches by default — the fleet
	// models a long-lived service whose clusters keep their image caches
	// across requests. Set ColdCaches: true to flush before every run.
	f := deep.NewFleet(deep.FleetConfig{
		Workers:    4,
		QueueDepth: 128,
		CacheSize:  256,
	})
	defer f.Close()

	arrivals, err := deep.NewArrivals("bursty", 300)
	if err != nil {
		log.Fatal(err)
	}
	report, err := deep.DriveFleet(context.Background(), f, deep.TrafficConfig{
		Arrivals: arrivals,
		Mix:      mix,
		Requests: 500,
		Speedup:  10, // replay the arrival sequence 10x faster than real time
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	// The fleet also aggregated everything into a monitor.Metrics registry.
	snapshot, err := f.Metrics().ExportJSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("metrics snapshot: %d bytes of JSON\n", len(snapshot))
}
