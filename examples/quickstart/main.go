// Quickstart: run the full DEEP pipeline — requirement analysis, dependency
// analysis, Nash-game scheduling, and dataflow processing — on the paper's
// text-processing application and print the energy outcome.
package main

import (
	"fmt"
	"log"

	"deep"
)

func main() {
	// The calibrated two-device testbed: the medium Intel i7-7700, the
	// small Raspberry Pi 4, Docker Hub, and the regional registry.
	cluster := deep.Testbed()

	sys := deep.NewSystem(cluster)
	dep, err := sys.Deploy(deep.TextProcessing())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("DEEP placement (device / registry per microservice):")
	for _, m := range dep.Result.Sorted() {
		fmt.Printf("  %-18s -> %-7s from %s\n", m.Name, m.Device, m.Registry)
	}
	fmt.Printf("\ntotal energy:  %s\n", dep.Result.TotalEnergy)
	fmt.Printf("makespan:      %.1f s\n", dep.Result.Makespan)
	for reg, b := range dep.Result.BytesFromRegistry {
		fmt.Printf("pulled from %-9s %s\n", reg+":", b)
	}
}
