// Customapp shows how a downstream user brings their own dataflow
// application and infrastructure: a five-stage IoT analytics pipeline on a
// three-device cluster, swept across regional-registry bandwidths to find
// where the hybrid strategy stops mattering — then deploys several
// application variants onto one cluster over a single compiled
// deep.ClusterTable (the multi-app-per-cluster fast path), and finally one
// application across several sites over a single compiled deep.AppTable
// (the mirror image: one-app-many-clusters).
package main

import (
	"fmt"
	"log"

	"deep"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/units"
)

func buildApp() *deep.App { return buildAppScaled("iot-analytics", 1) }

// buildAppScaled builds the pipeline with its processing loads scaled —
// lighter and heavier variants of the same shape, as one tenant might deploy
// across editions.
func buildAppScaled(name string, mult float64) *deep.App {
	app := deep.NewApp(name)
	stages := []struct {
		name  string
		image deep.Bytes
		cpu   float64 // MI
		input deep.Bytes
	}{
		{"ingest", 120 * deep.MB, 300000, 900 * deep.MB},
		{"clean", 350 * deep.MB, 600000, 0},
		{"features", 900 * deep.MB, 1500000, 0},
		{"model", 2200 * deep.MB, 4200000, 0},
		{"publish", 150 * deep.MB, 150000, 0},
	}
	for _, s := range stages {
		m := &deep.Microservice{
			Name:      s.name,
			ImageSize: s.image,
			Req: deep.Requirements{
				Cores: 1, CPU: units.MI(s.cpu * mult), Memory: deep.GB,
			},
			Arches:        []deep.Arch{deep.AMD64, deep.ARM64},
			ExternalInput: s.input,
		}
		if err := app.AddMicroservice(m); err != nil {
			log.Fatal(err)
		}
	}
	edges := [][2]string{{"ingest", "clean"}, {"clean", "features"}, {"features", "model"}, {"model", "publish"}}
	for _, e := range edges {
		if err := app.AddDataflow(e[0], e[1], 400*deep.MB); err != nil {
			log.Fatal(err)
		}
	}
	return app
}

func buildCluster(regionalBW units.Bandwidth) *deep.Cluster {
	pmBig := energy.LinearModel{StaticW: 2, PullW: 1, ReceiveW: 1, ProcessingW: 35}
	pmMid := energy.LinearModel{StaticW: 1, PullW: 1, ReceiveW: 1, ProcessingW: 12}
	pmPi := energy.LinearModel{StaticW: 0.9, PullW: 1.1, ReceiveW: 1.1, ProcessingW: 4}

	big := device.New("gateway", deep.AMD64, 16, 60000, 32*deep.GB, 256*deep.GB, pmBig)
	mid := device.New("cabinet", deep.AMD64, 8, 25000, 16*deep.GB, 128*deep.GB, pmMid)
	pi := device.New("sensor-hub", deep.ARM64, 4, 8000, 8*deep.GB, 32*deep.GB, pmPi)

	topo := netsim.NewTopology()
	for _, n := range []string{"hub", "regional", "gateway", "cabinet", "sensor-hub", "source"} {
		topo.AddNode(n)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	for _, dev := range []string{"gateway", "cabinet", "sensor-hub"} {
		must(topo.AddLink(netsim.Link{From: "hub", To: dev, BW: 30 * units.MBps, RTT: 1.2}))
		must(topo.AddLink(netsim.Link{From: "regional", To: dev, BW: regionalBW, RTT: 0.1, SharedCapacity: true}))
		must(topo.AddLink(netsim.Link{From: "source", To: dev, BW: 15 * units.MBps}))
	}
	must(topo.AddDuplex("gateway", "cabinet", 40*units.MBps))
	must(topo.AddDuplex("cabinet", "sensor-hub", 15*units.MBps))
	must(topo.AddDuplex("gateway", "sensor-hub", 15*units.MBps))

	return &deep.Cluster{
		Devices: []*device.Device{big, mid, pi},
		Registries: []deep.RegistryInfo{
			{Name: "hub", Node: "hub"},
			{Name: "regional", Node: "regional", Shared: true},
		},
		Topology:   topo,
		SourceNode: "source",
	}
}

func main() {
	app := buildApp()
	fmt.Println("Sweep: regional registry bandwidth vs deployment method energy")
	fmt.Printf("%-14s %12s %14s %12s %s\n", "regional BW", "DEEP [kJ]", "regional [kJ]", "hub [kJ]", "DEEP placement uses")
	for _, bw := range []units.Bandwidth{5 * units.MBps, 15 * units.MBps, 30 * units.MBps, 60 * units.MBps} {
		cluster := buildCluster(bw)
		sys := deep.NewSystem(cluster)
		results, err := sys.Compare(app, []deep.Scheduler{
			deep.NewDEEPScheduler(),
			deep.NewExclusiveScheduler("regional"),
			deep.NewExclusiveScheduler("hub"),
		})
		if err != nil {
			log.Fatal(err)
		}
		var deepKJ, regKJ, hubKJ float64
		usage := map[string]int{}
		for _, r := range results {
			switch r.Method {
			case "deep":
				deepKJ = r.Result.TotalEnergy.Kilojoules()
				for _, a := range r.Placement {
					usage[a.Registry]++
				}
			case "exclusive-regional":
				regKJ = r.Result.TotalEnergy.Kilojoules()
			case "exclusive-hub":
				hubKJ = r.Result.TotalEnergy.Kilojoules()
			}
		}
		fmt.Printf("%-14s %12.3f %14.3f %12.3f hub=%d regional=%d\n",
			bw, deepKJ, regKJ, hubKJ, usage["hub"], usage["regional"])
	}

	multiAppOneCluster()
	oneAppManyClusters()
}

// multiAppOneCluster deploys several application variants onto one cluster
// over a single compiled ClusterTable: the cluster-side substrate (sorted
// name tables, interned devices, the dense link tables) is compiled once,
// and each app pays only its own app-side plan compile — the same reuse the
// fleet gets automatically from its cluster-digest-keyed table cache.
func multiAppOneCluster() {
	cluster := buildCluster(15 * units.MBps)
	table := deep.CompileClusterTable(cluster)
	exec := deep.NewSimExec()

	fmt.Println("\nMulti-app reuse: one ClusterTable, three pipeline variants")
	fmt.Printf("%-16s %12s %12s\n", "app", "makespan [s]", "energy [kJ]")
	scheduler := deep.NewDEEPScheduler()
	for _, scale := range []struct {
		name string
		mult float64
	}{
		{"iot-analytics", 1},
		{"iot-lite", 0.5},
		{"iot-heavy", 2},
	} {
		app := buildAppScaled(scale.name, scale.mult)
		// Both the scheduler's cost model and the simulator's plan compile
		// only their app-side passes here — the cluster topology scan
		// happened once, in CompileClusterTable above.
		placement, err := deep.ScheduleOn(scheduler, app, cluster, table)
		if err != nil {
			log.Fatal(err)
		}
		plan := deep.CompileSimPlanOn(app, cluster, table)
		// Cold runs (the default flushes layer caches first) keep the rows
		// comparable as standalone per-variant costs, whatever the order.
		res, err := exec.Run(plan, placement, deep.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %12.1f %12.3f\n", scale.name, res.Makespan, res.TotalEnergy.Kilojoules())
	}
}

// oneAppManyClusters is the mirror of multiAppOneCluster: one pipeline
// rolled out across several sites. The application-side substrate —
// validated structure, interned names, topo/stage/edge rows, per-service
// scalars — is compiled once with CompileAppTable; each site then pays only
// its own cluster-side compile, and scheduling plus simulation run as thin
// passes over the (AppTable, ClusterTable) pair. The fleet gets the same
// reuse automatically from its app-digest-keyed table cache.
func oneAppManyClusters() {
	at := deep.CompileAppTable(buildApp())
	exec := deep.NewSimExec()
	scheduler := deep.NewDEEPScheduler()

	fmt.Println("\nMulti-cluster reuse: one AppTable, four sites")
	fmt.Printf("%-14s %12s %12s\n", "site BW", "makespan [s]", "energy [kJ]")
	for _, bw := range []units.Bandwidth{5 * units.MBps, 15 * units.MBps, 30 * units.MBps, 60 * units.MBps} {
		cluster := buildCluster(bw)
		table := deep.CompileClusterTable(cluster)
		placement, err := deep.ScheduleOnTables(scheduler, at, cluster, table)
		if err != nil {
			log.Fatal(err)
		}
		plan := deep.CompileSimPlanOnTables(at, cluster, table)
		res, err := exec.Run(plan, placement, deep.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %12.1f %12.3f\n", bw, res.Makespan, res.TotalEnergy.Kilojoules())
	}
}
