// Package deep is the public API of the DEEP reproduction: edge-based
// dataflow processing with hybrid Docker Hub and regional registries
// (Mehran et al., IPDPS Workshops 2025).
//
// The package re-exports the pieces a downstream user composes:
//
//   - Application modeling: NewApp / Microservice / Dataflow (package dag).
//   - The calibrated two-device testbed and the paper's two case-study
//     applications: Testbed, VideoProcessing, TextProcessing.
//   - Scheduling: the Nash-game DEEP scheduler and every baseline.
//   - Dataflow processing: Run simulates a placed application and returns
//     per-microservice completion times and energy.
//   - The Figure 1 pipeline: NewSystem(...).Deploy(app).
//
// Quickstart:
//
//	sys := deep.NewSystem(deep.Testbed())
//	dep, err := sys.Deploy(deep.TextProcessing())
//	if err != nil { ... }
//	fmt.Println(dep.Result.TotalEnergy)
package deep

import (
	"deep/internal/core"
	"deep/internal/dag"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

// Re-exported model types.
type (
	// App is a dataflow application DAG.
	App = dag.App
	// Microservice is one containerized vertex of an App.
	Microservice = dag.Microservice
	// Dataflow is one edge of an App.
	Dataflow = dag.Dataflow
	// Requirements is the resource-requirement tuple req(m_i).
	Requirements = dag.Requirements
	// Arch is a CPU architecture tag.
	Arch = dag.Arch

	// Cluster is the infrastructure a simulation runs against.
	Cluster = sim.Cluster
	// Placement assigns each microservice a device and registry.
	Placement = sim.Placement
	// Assignment is one (device, registry) pair.
	Assignment = sim.Assignment
	// Result is a simulated application run.
	Result = sim.Result
	// MicroserviceResult is one row of a Result.
	MicroserviceResult = sim.MicroserviceResult
	// Options tune a simulation run.
	Options = sim.Options
	// RegistryInfo describes one registry in a Cluster.
	RegistryInfo = sim.RegistryInfo

	// Scheduler produces placements.
	Scheduler = sched.Scheduler
	// System is the Figure 1 pipeline.
	System = core.System
	// Deployment is a completed pipeline run.
	Deployment = core.Deployment
	// MethodResult pairs a scheduler with its outcome.
	MethodResult = core.MethodResult

	// Bytes is a size in bytes.
	Bytes = units.Bytes
	// Joules is energy.
	Joules = units.Joules
)

// Architectures supported by the testbed.
const (
	AMD64 = dag.AMD64
	ARM64 = dag.ARM64
)

// Size units.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
)

// NewApp returns an empty application.
func NewApp(name string) *App { return dag.NewApp(name) }

// Testbed builds the paper's calibrated two-device cluster: the medium
// Intel i7-7700 device, the small Raspberry Pi 4 device, Docker Hub, and
// the MinIO-backed regional registry.
func Testbed() *Cluster { return workload.Testbed() }

// VideoProcessing builds the paper's video case-study application.
func VideoProcessing() *App { return workload.VideoProcessing() }

// TextProcessing builds the paper's text case-study application.
func TextProcessing() *App { return workload.TextProcessing() }

// NewSystem returns a DEEP system (Nash scheduler) bound to a cluster.
func NewSystem(cluster *Cluster) *System { return core.NewSystem(cluster) }

// NewDEEPScheduler returns the paper's Nash-game scheduler.
func NewDEEPScheduler() Scheduler { return sched.NewDEEP() }

// NewExclusiveScheduler pins every deployment to one registry ("hub" or
// "regional"), the paper's two baseline methods.
func NewExclusiveScheduler(registry string) Scheduler { return sched.NewExclusive(registry) }

// AllSchedulers returns DEEP plus every baseline, seeding the randomized
// one.
func AllSchedulers(seed int64) []Scheduler { return sched.All(seed) }

// Run simulates a placed application on a cluster.
func Run(app *App, cluster *Cluster, placement Placement, opts Options) (*Result, error) {
	return sim.Run(app, cluster, placement, opts)
}

// Schedule computes a placement with the given scheduler.
func Schedule(s Scheduler, app *App, cluster *Cluster) (Placement, error) {
	return s.Schedule(app, cluster)
}
