// Package deep is the public API of the DEEP reproduction: edge-based
// dataflow processing with hybrid Docker Hub and regional registries
// (Mehran et al., IPDPS Workshops 2025).
//
// The package re-exports the pieces a downstream user composes:
//
//   - Application modeling: NewApp / Microservice / Dataflow (package dag).
//   - The calibrated two-device testbed and the paper's two case-study
//     applications: Testbed, VideoProcessing, TextProcessing.
//   - Scheduling: the Nash-game DEEP scheduler and every baseline. All
//     schedulers run on a compiled, integer-indexed cost model
//     (internal/costmodel) so the best-response hot path is allocation-free;
//     the signatures below are unchanged — placements stay string-keyed.
//   - Dataflow processing: Run simulates a placed application and returns
//     per-microservice completion times and energy.
//   - The Figure 1 pipeline: NewSystem(...).Deploy(app).
//   - The multi-tenant deployment service: NewFleet(...) runs concurrent
//     deployment requests through a scheduler worker pool with memoized
//     placements, and DriveFleet generates open-loop load against it.
//   - Robustness: GenerateChaos builds seeded fault schedules (device
//     crashes, registry outages, link degradation) that TrafficConfig.Chaos
//     replays against a live fleet; Fleet.ApplyChurn patches the compiled
//     cluster substrate incrementally, stale placements are detected and
//     re-scheduled, and deadline-pressed requests degrade to best-response
//     dynamics instead of failing.
//   - Observability: every fleet carries a Metrics registry of sharded
//     lock-free instruments (NewMetrics), per-request stage timing
//     (StageTrace on each FleetResponse, per-stage quantiles in the
//     FleetReport), a bounded slow-request ring (Fleet.SlowRequests), and
//     Prometheus/expvar exposition via Telemetry (Metrics.Obs).
//
// Quickstart:
//
//	sys := deep.NewSystem(deep.Testbed())
//	dep, err := sys.Deploy(deep.TextProcessing())
//	if err != nil { ... }
//	fmt.Println(dep.Result.TotalEnergy)
package deep

import (
	"context"

	"deep/internal/appgraph"
	"deep/internal/chaos"
	"deep/internal/core"
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/fleet"
	"deep/internal/monitor"
	"deep/internal/obs"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/units"
	"deep/internal/workload"
)

// Re-exported model types.
type (
	// App is a dataflow application DAG.
	App = dag.App
	// Microservice is one containerized vertex of an App.
	Microservice = dag.Microservice
	// Dataflow is one edge of an App.
	Dataflow = dag.Dataflow
	// Requirements is the resource-requirement tuple req(m_i).
	Requirements = dag.Requirements
	// Arch is a CPU architecture tag.
	Arch = dag.Arch

	// Cluster is the infrastructure a simulation runs against.
	Cluster = sim.Cluster
	// Placement assigns each microservice a device and registry.
	Placement = sim.Placement
	// Assignment is one (device, registry) pair.
	Assignment = sim.Assignment
	// Result is a simulated application run.
	Result = sim.Result
	// MicroserviceResult is one row of a Result.
	MicroserviceResult = sim.MicroserviceResult
	// Options tune a simulation run.
	Options = sim.Options
	// RegistryInfo describes one registry in a Cluster.
	RegistryInfo = sim.RegistryInfo
	// SimPlan is a compiled (app, cluster) simulation plan; compile once
	// with CompileSimPlan, execute many times with a SimExec.
	SimPlan = sim.Plan
	// SimExec is the reusable zero-steady-state-allocation simulator
	// executor.
	SimExec = sim.Exec
	// ClusterTable is the compiled cluster-side substrate (sorted name
	// tables, interned devices, dense link tables) shared by every
	// per-application compile against one cluster; build it once with
	// CompileClusterTable and feed it to CompileSimPlanOn.
	ClusterTable = topo.ClusterTable
	// AppTable is the compiled application-side substrate: validated
	// structure, interned microservice names, dense topo order / stage
	// partition / dataflow edge rows, and per-microservice scalars
	// (image sizes, external inputs, architecture masks). Build it once
	// per application with CompileAppTable and compile against any number
	// of clusters — the fleet caches one per app digest.
	AppTable = appgraph.AppTable

	// Scheduler produces placements.
	Scheduler = sched.Scheduler
	// System is the Figure 1 pipeline.
	System = core.System
	// Deployment is a completed pipeline run.
	Deployment = core.Deployment
	// MethodResult pairs a scheduler with its outcome.
	MethodResult = core.MethodResult

	// Bytes is a size in bytes.
	Bytes = units.Bytes
	// Joules is energy.
	Joules = units.Joules

	// Fleet is the concurrent multi-tenant deployment service.
	Fleet = fleet.Fleet
	// FleetConfig tunes a Fleet (workers, queue depth, cache size, ...).
	FleetConfig = fleet.Config
	// FleetRequest is one tenant's deployment request.
	FleetRequest = fleet.Request
	// FleetResponse is the outcome of one deployment request. Responses are
	// pooled: call Release once done reading one (see fleet.Response).
	FleetResponse = fleet.Response
	// FleetPlacementView is the indexed, read-only placement carried by a
	// FleetResponse (Materialize copies it into a mutable Placement).
	FleetPlacementView = fleet.PlacementView
	// FleetStats snapshots the fleet's admission/cache counters.
	FleetStats = fleet.Stats
	// FleetReport aggregates one open-loop load-generation session.
	FleetReport = fleet.Report
	// ArrivalProcess generates open-loop inter-arrival gaps.
	ArrivalProcess = fleet.ArrivalProcess
	// MixEntry is one application population in a traffic mix.
	MixEntry = fleet.MixEntry
	// TrafficConfig drives an open-loop load-generation run.
	TrafficConfig = fleet.TrafficConfig

	// ChaosSchedule is a deterministic seeded fault-injection schedule,
	// replayed against a fleet during a DriveFleet session via
	// TrafficConfig.Chaos (or manually with Fleet.ApplyChaosEvent).
	ChaosSchedule = chaos.Schedule
	// ChaosEvent is one fault-injection event (device crash/recover,
	// registry outage/recover, link degrade/restore).
	ChaosEvent = chaos.Event
	// ChaosConfig parameterizes GenerateChaos: per-fault-class Poisson
	// rates, mean downtimes, and minimum-liveness floors.
	ChaosConfig = chaos.Config
	// ChurnDelta is one batch of live cluster changes for Fleet.ApplyChurn:
	// devices and registries failing or recovering, links degrading.
	ChurnDelta = fleet.ChurnDelta
	// LinkChange is one link-bandwidth change inside a ChurnDelta.
	LinkChange = fleet.LinkChange
	// ChurnStats snapshots the fleet's churn machinery (current epoch, down
	// sets, invalidation/re-schedule/downgrade counters); part of FleetStats.
	ChurnStats = fleet.ChurnStats
	// ChurnReport summarizes one chaos session inside a FleetReport.
	ChurnReport = fleet.ChurnReport

	// Metrics is the string-keyed instrument registry a Fleet reports into
	// (counters, gauges, histograms, a bounded event log, JSON export).
	Metrics = monitor.Metrics
	// Telemetry is the lock-free instrument registry backing a Metrics
	// (Metrics.Obs): sharded counters and histograms plus Prometheus text
	// (WritePrometheus, MetricsHandler) and expvar exposition.
	Telemetry = obs.Registry
	// Stage identifies one fleet pipeline stage (queue, fingerprint,
	// compile, cache lookup, schedule, sim-exec).
	Stage = obs.Stage
	// StageTrace is one request's per-stage wall-time breakdown.
	StageTrace = obs.StageTrace
	// SlowRequest is one captured tail outlier: who, when, how slow, and
	// the full stage breakdown.
	SlowRequest = obs.SlowRequest
	// FleetStageStat is one pipeline stage's mean/p99/max in a FleetReport.
	FleetStageStat = fleet.StageStat
)

// Architectures supported by the testbed.
const (
	AMD64 = dag.AMD64
	ARM64 = dag.ARM64
)

// Size units.
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
)

// NewApp returns an empty application.
func NewApp(name string) *App { return dag.NewApp(name) }

// Testbed builds the paper's calibrated two-device cluster: the medium
// Intel i7-7700 device, the small Raspberry Pi 4 device, Docker Hub, and
// the MinIO-backed regional registry.
func Testbed() *Cluster { return workload.Testbed() }

// VideoProcessing builds the paper's video case-study application.
func VideoProcessing() *App { return workload.VideoProcessing() }

// TextProcessing builds the paper's text case-study application.
func TextProcessing() *App { return workload.TextProcessing() }

// NewSystem returns a DEEP system (Nash scheduler) bound to a cluster.
func NewSystem(cluster *Cluster) *System { return core.NewSystem(cluster) }

// NewDEEPScheduler returns the paper's Nash-game scheduler with the default
// pair-game cap (sched.DefaultMaxPairCells): two-microservice stages whose
// bimatrix game would exceed the cap fall back to best-response dynamics,
// which converge for these congestion-style payoffs.
func NewDEEPScheduler() Scheduler { return sched.NewDEEP() }

// NewDEEPSchedulerWithPairCap returns the Nash scheduler with an explicit
// pair-game cap in payoff cells; 0 disables the cap (always play the exact
// bimatrix game, however large the scaled cluster makes it).
func NewDEEPSchedulerWithPairCap(cells int) Scheduler { return &sched.DEEP{MaxPairCells: cells} }

// NewExclusiveScheduler pins every deployment to one registry ("hub" or
// "regional"), the paper's two baseline methods.
func NewExclusiveScheduler(registry string) Scheduler { return sched.NewExclusive(registry) }

// AllSchedulers returns DEEP plus every baseline, seeding the randomized
// one.
func AllSchedulers(seed int64) []Scheduler { return sched.All(seed) }

// Run simulates a placed application on a cluster. It compiles a SimPlan
// and runs a fresh SimExec under the hood; callers that replay the same
// (app, cluster) shape repeatedly should compile once with CompileSimPlan
// and reuse a SimExec — that steady state allocates nothing.
func Run(app *App, cluster *Cluster, placement Placement, opts Options) (*Result, error) {
	return sim.Run(app, cluster, placement, opts)
}

// CompileSimPlan compiles an (app, cluster) pair for repeated simulation.
// The plan is immutable and safe to share across goroutines, each driving
// its own SimExec. Compiling several apps against one cluster? Use
// CompileClusterTable once plus CompileSimPlanOn per app, so the cluster's
// topology scan isn't repeated per application.
func CompileSimPlan(app *App, cluster *Cluster) *SimPlan {
	return sim.CompilePlan(app, cluster)
}

// CompileClusterTable compiles the cluster-side substrate every
// per-application compile builds on: sorted+compacted device/registry name
// tables, interned device handles, the dense registry→device /
// device→device / source link tables, and idle power. It is immutable, safe
// to share across goroutines, and reusable for any number of applications
// on the same cluster — the fleet caches one per cluster digest.
func CompileClusterTable(cluster *Cluster) *ClusterTable {
	return sim.CompileClusterTable(cluster)
}

// CompileSimPlanOn compiles an application's simulation plan over a shared
// cluster table, skipping the per-cluster topology scan — the multi-app-per
// cluster fast path (see examples/customapp). The table must have been
// compiled from an identically-shaped cluster (normally the same one).
func CompileSimPlanOn(app *App, cluster *Cluster, table *ClusterTable) *SimPlan {
	return sim.CompilePlanOn(app, cluster, table)
}

// CompileAppTable compiles the application-side substrate every per-cluster
// compile builds on: validated structure, interned microservice names, dense
// topo/stage/edge rows, and per-microservice scalars. It is immutable, safe
// to share across goroutines, and reusable for any number of clusters — the
// one-app-many-clusters mirror of CompileClusterTable (see
// examples/customapp). Validation errors are captured, not returned: a table
// compiled from a broken DAG reports them through the compiled model and
// plan exactly as the direct compile paths do.
func CompileAppTable(app *App) *AppTable { return appgraph.Compile(app) }

// CompileSimPlanOnTables compiles a simulation plan over both substrates —
// a shared AppTable and a shared ClusterTable — so neither side of the
// (app, cluster) pair is re-derived. This is the fleet's cold compile path.
func CompileSimPlanOnTables(at *AppTable, cluster *Cluster, table *ClusterTable) *SimPlan {
	return sim.CompilePlanOnTables(at, cluster, table)
}

// NewSimExec returns a reusable simulator executor. Exec.Run(plan,
// placement, opts) returns a Result owned by the executor (valid until the
// next Run; Clone it to keep it), and allocates nothing once the layer
// caches are warm. Not safe for concurrent use — one per worker.
func NewSimExec() *SimExec { return sim.NewExec() }

// Schedule computes a placement with the given scheduler.
func Schedule(s Scheduler, app *App, cluster *Cluster) (Placement, error) {
	return s.Schedule(app, cluster)
}

// ScheduleOn computes a placement over a shared cluster table: every shipped
// scheduler runs on a compiled cost model, so only the application-side pass
// compiles — the cluster's topology scan is skipped, same as
// CompileSimPlanOn on the simulation side. Schedulers that cannot read a
// model fall back to Schedule.
func ScheduleOn(s Scheduler, app *App, cluster *Cluster, table *ClusterTable) (Placement, error) {
	if ms, ok := s.(sched.ModelScheduler); ok {
		return ms.ScheduleModel(costmodel.CompileOn(app, cluster, table))
	}
	return s.Schedule(app, cluster)
}

// ScheduleOnTables computes a placement over both shared substrates: the
// cost model compiles as a thin pass over (AppTable, ClusterTable) with no
// DAG or topology re-derivation — the cheapest cold path for scheduling one
// app across many clusters (or many apps on one cluster). Schedulers that
// cannot read a model fall back to Schedule. The tables must come from the
// same app and an identically-shaped cluster.
func ScheduleOnTables(s Scheduler, at *AppTable, cluster *Cluster, table *ClusterTable) (Placement, error) {
	if ms, ok := s.(sched.ModelScheduler); ok {
		return ms.ScheduleModel(costmodel.CompileOnTables(at, cluster, table))
	}
	return s.Schedule(at.App(), cluster)
}

// Fleet errors, re-exported for errors.Is checks against Submit results.
var (
	// ErrFleetQueueFull reports a rejected (not enqueued) request.
	ErrFleetQueueFull = fleet.ErrQueueFull
	// ErrFleetClosed reports a submission after Close.
	ErrFleetClosed = fleet.ErrClosed
	// ErrFleetDeadline reports a request whose deadline expired before it
	// could be scheduled or simulated (FleetRequest.Deadline).
	ErrFleetDeadline = fleet.ErrDeadline
)

// NewFleet starts a multi-tenant deployment service: a bounded admission
// queue feeding a pool of scheduler/simulator workers with an LRU of
// memoized placements. Close it to drain.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.New(cfg) }

// NewFleetPlacementView compiles a placement map into the indexed read-only
// form FleetResponse carries.
func NewFleetPlacementView(p Placement) FleetPlacementView { return fleet.NewPlacementView(p) }

// NewMetrics returns an empty instrument registry (pass it to several
// fleets via FleetConfig.Metrics to aggregate them into one exposition).
func NewMetrics() *Metrics { return monitor.NewMetrics() }

// DriveFleet generates open-loop traffic against a fleet and blocks until
// every accepted request completed, returning the aggregated report.
func DriveFleet(ctx context.Context, f *Fleet, cfg TrafficConfig) (*FleetReport, error) {
	return fleet.Drive(ctx, f, cfg)
}

// NewArrivals builds an arrival process by name ("poisson", "bursty", or
// "diurnal") at the given mean rate in requests per second.
func NewArrivals(name string, rate float64) (ArrivalProcess, error) {
	return fleet.NewArrivals(name, rate)
}

// CaseStudyMix returns the paper's two case studies as a two-tenant traffic
// mix.
func CaseStudyMix() []MixEntry { return fleet.CaseStudyMix() }

// SyntheticMix generates a deterministic multi-tenant mix of random DAGs
// sized `size`, `appsPerTenant` distinct shapes per tenant.
func SyntheticMix(tenants, appsPerTenant, size int, seed int64) ([]MixEntry, error) {
	return fleet.SyntheticMix(tenants, appsPerTenant, size, seed)
}

// ScaledTestbed replicates the calibrated testbed's device pair n times
// behind the shared hub and regional registries.
func ScaledTestbed(n int) *Cluster { return workload.ScaledTestbed(n) }

// GenerateChaos builds a deterministic fault-injection schedule from
// per-class Poisson rates; the same config and seed always yield the same
// schedule, so chaos runs are exactly reproducible.
func GenerateChaos(cfg ChaosConfig) (*ChaosSchedule, error) { return chaos.Generate(cfg) }
