#!/usr/bin/env bash
# End-to-end smoke for cmd/deepfleetd: boot the daemon on a random port with
# a tiny queue and a 1 req/s tenant budget, deploy a testbed app and assert a
# placement, force a 429 with Retry-After, scrape the per-tenant HTTP
# counters off /metrics, then SIGTERM and require a clean bounded drain.
#
# Deterministic by construction: the second deploy trades on an empty token
# bucket (rate=1 burst=1), so the 429 does not depend on timing. The
# queue-full and quota 429 paths are pinned by internal/fleetd's Go tests;
# this script proves the same contract end to end over a real socket.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'kill -9 "$pid" 2>/dev/null || true; rm -rf "$workdir"' EXIT

go build -o "$workdir/deepfleetd" ./cmd/deepfleetd

log="$workdir/daemon.log"
"$workdir/deepfleetd" -addr 127.0.0.1:0 -admin-addr 127.0.0.1:0 -workers 1 -queue 1 \
  -rate 1 -burst 1 -drain-timeout 20s >"$log" 2>&1 &
pid=$!

# The daemon prints "deepfleetd: listening on HOST:PORT" (format pinned in
# cmd/deepfleetd/main.go) — poll for it to learn the random port.
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^deepfleetd: listening on //p' "$log" | head -1)
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "daemon died at startup:" >&2; cat "$log" >&2; exit 1; }
  sleep 0.1
done
[ -n "$addr" ] || { echo "daemon never printed its address" >&2; cat "$log" >&2; exit 1; }
base="http://$addr"
echo "smoke: daemon at $base"

admin_addr=""
for _ in $(seq 1 100); do
  admin_addr=$(sed -n 's/^deepfleetd: admin on //p' "$log" | head -1)
  [ -n "$admin_addr" ] && break
  sleep 0.1
done
[ -n "$admin_addr" ] || { echo "daemon never printed its admin address" >&2; cat "$log" >&2; exit 1; }
admin="http://$admin_addr"
echo "smoke: admin at $admin"

curl -fsS "$base/readyz" >/dev/null
curl -fsS "$base/healthz" >/dev/null

# The operator surface must be absent from the public port and live on the
# admin one: clients cannot drain, churn, or profile-pin the daemon.
for path in /v1/drain /v1/churn /debug/pprof/ /debug/slow /debug/vars; do
  status=$(curl -sS -o /dev/null -w '%{http_code}' -X POST "$base$path")
  [ "$status" = 404 ] || { echo "public $path returned $status, want 404" >&2; exit 1; }
done
curl -fsS "$admin/debug/vars" >/dev/null
curl -fsS "$admin/debug/slow" >/dev/null
echo "smoke: admin endpoints split off the public port"

deploy="$workdir/deploy.json"
cat >"$deploy" <<'EOF'
{
  "tenant": "smoke",
  "app": {
    "version": 1,
    "name": "smoke-pipeline",
    "microservices": [
      {"name": "ingest", "image_size_bytes": 50000000, "cpu_mi": 500, "external_input_bytes": 1000000},
      {"name": "infer", "image_size_bytes": 80000000, "cpu_mi": 800}
    ],
    "dataflows": [
      {"from": "ingest", "to": "infer", "size_bytes": 500000}
    ]
  }
}
EOF

# First deploy: the token bucket is full, so this must succeed and return a
# placement for every microservice.
resp=$(curl -fsS -X POST "$base/v1/deploy" -d @"$deploy")
echo "smoke: deploy -> $resp"
for ms in ingest infer; do
  device=$(echo "$resp" | jq -re ".placement[\"$ms\"].device")
  [ -n "$device" ] || { echo "no placement for $ms" >&2; exit 1; }
done

# Second deploy, immediately: the bucket is empty (rate=1 burst=1), so the
# daemon must shed with 429 rate_limited and a Retry-After hint.
headers="$workdir/reject.headers"
status=$(curl -sS -o "$workdir/reject.json" -D "$headers" -w '%{http_code}' \
  -X POST "$base/v1/deploy" -d @"$deploy")
[ "$status" = 429 ] || { echo "second deploy returned $status, want 429" >&2; cat "$workdir/reject.json" >&2; exit 1; }
code=$(jq -re '.error.code' <"$workdir/reject.json")
[ "$code" = rate_limited ] || { echo "429 code $code, want rate_limited" >&2; exit 1; }
grep -qi '^retry-after: [0-9]' "$headers" || { echo "429 without Retry-After:" >&2; cat "$headers" >&2; exit 1; }
echo "smoke: second deploy shed with 429 rate_limited, Retry-After present"

# The per-tenant HTTP counters must be live on /metrics.
metrics=$(curl -fsS "$base/metrics")
echo "$metrics" | grep -q 'fleetd_http_accepted{tenant="smoke"} 1' || {
  echo "missing accepted counter for tenant smoke:" >&2
  echo "$metrics" | grep fleetd_http >&2 || true
  exit 1
}
echo "$metrics" | grep -q 'fleetd_http_rejected{tenant="smoke"} 1' || {
  echo "missing rejected counter for tenant smoke:" >&2
  echo "$metrics" | grep fleetd_http >&2 || true
  exit 1
}
echo "smoke: per-tenant counters present on /metrics"

# Batched admission, on a fresh tenant so the exact-count greps above stay
# untouched. A 2-item batch needs 2 tokens against burst=1, so it can NEVER
# pass — a deterministic whole-batch 429 rate_limited regardless of timing —
# and because a rejected batch consumes nothing, the 1-item batch right after
# still finds the tenant's single token and must deploy.
batch2="$workdir/batch2.json"
jq '{tenant: "smoke-batch", items: [{app: .app}, {app: .app}]}' "$deploy" >"$batch2"
bheaders="$workdir/batch_reject.headers"
status=$(curl -sS -o "$workdir/batch_reject.json" -D "$bheaders" -w '%{http_code}' \
  -X POST "$base/v1/deploy:batch" -d @"$batch2")
[ "$status" = 429 ] || { echo "2-item batch returned $status, want 429" >&2; cat "$workdir/batch_reject.json" >&2; exit 1; }
code=$(jq -re '.error.code' <"$workdir/batch_reject.json")
[ "$code" = rate_limited ] || { echo "batch 429 code $code, want rate_limited" >&2; exit 1; }
grep -qi '^retry-after: [0-9]' "$bheaders" || { echo "batch 429 without Retry-After:" >&2; cat "$bheaders" >&2; exit 1; }

batch1="$workdir/batch1.json"
jq '{tenant: "smoke-batch", items: [{app: .app}]}' "$deploy" >"$batch1"
bresp=$(curl -fsS -X POST "$base/v1/deploy:batch" -d @"$batch1")
echo "smoke: batch deploy -> $bresp"
count=$(echo "$bresp" | jq -re '.results | length')
[ "$count" = 1 ] || { echo "batch returned $count results, want 1" >&2; exit 1; }
idx=$(echo "$bresp" | jq -re '.results[0].index')
[ "$idx" = 0 ] || { echo "batch result index $idx, want 0" >&2; exit 1; }
for ms in ingest infer; do
  device=$(echo "$bresp" | jq -re ".results[0].deploy.placement[\"$ms\"].device")
  [ -n "$device" ] || { echo "batch result has no placement for $ms" >&2; exit 1; }
done
echo "smoke: oversized batch shed atomically, 1-item batch deployed per-item"

# SIGTERM must drain cleanly well inside -drain-timeout: readiness flips,
# accepted work completes, the process exits 0 and says so.
kill -TERM "$pid"
for _ in $(seq 1 200); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "daemon still running 20s after SIGTERM" >&2
  cat "$log" >&2
  exit 1
fi
set +e
wait "$pid"
exit_code=$?
set -e
[ "$exit_code" = 0 ] || { echo "daemon exited $exit_code after SIGTERM" >&2; cat "$log" >&2; exit 1; }
grep -q 'drained cleanly' "$log" || { echo "no clean-drain line in log:" >&2; cat "$log" >&2; exit 1; }
echo "smoke: SIGTERM drained cleanly"
echo "smoke: OK"
