package sched

import (
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/game"
	"deep/internal/sim"
)

// DEEP is the paper's Nash-game-based scheduler. The application is
// processed stage by stage (between synchronization barriers). Within a
// stage:
//
//   - A lone microservice plays a two-player cooperation game against the
//     infrastructure: its strategies are the candidate devices, the
//     infrastructure's are the candidate registries, and both players'
//     payoff is the negated energy EC(m_i, r_g, d_j) — the
//     prisoner's-dilemma-style framing of Section III-E where cooperation
//     (joint energy minimization) is the desired equilibrium. The
//     welfare-maximal Nash equilibrium is selected.
//
//   - A pair of microservices (the HA/LA train and infer/score stages)
//     plays a bimatrix game whose strategies are full (device, registry)
//     assignments; the payoff coupling captures shared-registry contention.
//     All equilibria are found by support enumeration and the
//     welfare-maximal pure equilibrium is chosen.
//
//   - Larger stages fall back to best-response dynamics, which converge for
//     these congestion-style payoffs. Candidates are evaluated in place
//     against the compiled cost model — the per-candidate map copies of the
//     original implementation are gone.
type DEEP struct{}

// NewDEEP returns the Nash scheduler.
func NewDEEP() *DEEP { return &DEEP{} }

// Name implements Scheduler.
func (*DEEP) Name() string { return "deep" }

// Schedule implements Scheduler.
func (s *DEEP) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (*DEEP) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	stages, err := model.Stages()
	if err != nil {
		return nil, err
	}
	st := model.NewState()
	placement := make(sim.Placement, model.NumMicroservices())
	width := model.MaxStageWidth()
	cur := make([]costmodel.Option, width)
	optsBuf := make([][]costmodel.Option, width)

	for _, stage := range stages {
		assigned := cur[:len(stage)]
		switch len(stage) {
		case 1:
			assigned[0], err = scheduleSolo(model, st, stage[0])
		case 2:
			assigned[0], assigned[1], err = schedulePair(model, st, stage[0], stage[1])
		default:
			opts := optsBuf[:len(stage)]
			for k, ms := range stage {
				o := model.Options(ms)
				if len(o) == 0 {
					return nil, infeasibleError{ms: model.MSName(ms)}
				}
				opts[k] = o
				assigned[k] = o[0]
			}
			bestResponse(st, stage, opts, assigned)
		}
		if err != nil {
			return nil, err
		}
		for k, ms := range stage {
			placement[model.MSName(ms)] = model.Assignment(assigned[k])
			st.Commit(ms, assigned[k])
		}
	}
	return placement, nil
}

// scheduleSolo solves the one-microservice device×registry cooperation game.
func scheduleSolo(model *costmodel.Model, st *costmodel.State, ms int32) (costmodel.Option, error) {
	opts := model.Options(ms)
	if len(opts) == 0 {
		return costmodel.Option{}, infeasibleError{ms: model.MSName(ms)}
	}
	// Distinct devices become row strategies, registries column strategies.
	devices, registries := model.SoloAxes(ms)
	nr := len(registries)
	costs := make([]float64, len(devices)*nr)
	feasible := make([]bool, len(costs))
	worst := 0.0
	for i, d := range devices {
		for j, r := range registries {
			if !model.LinkOK(r, d) {
				continue
			}
			c := st.Energy(ms, costmodel.Option{Device: d, Registry: r}, nil, nil)
			costs[i*nr+j] = c
			feasible[i*nr+j] = true
			if c > worst {
				worst = c
			}
		}
	}
	a := game.NewMatrix(len(devices), nr)
	b := game.NewMatrix(len(devices), nr)
	for i := range devices {
		for j := range registries {
			c := costs[i*nr+j]
			if !feasible[i*nr+j] {
				c = worst * 10 // heavily penalize infeasible combinations
			}
			a.Set(i, j, -c)
			b.Set(i, j, -c)
		}
	}
	g := game.New(a, b)
	best, ok := g.SelectEquilibrium(g.PureNash())
	if !ok {
		// A common-interest game always has a pure equilibrium at its
		// argmax; reaching here means every entry was penalized.
		return costmodel.Option{}, infeasibleError{ms: model.MSName(ms)}
	}
	i := best.RowSupport()[0]
	j := best.ColSupport()[0]
	if !feasible[i*nr+j] {
		return costmodel.Option{}, infeasibleError{ms: model.MSName(ms)}
	}
	return costmodel.Option{Device: devices[i], Registry: registries[j]}, nil
}

// schedulePair solves the two-microservice bimatrix game over full
// assignments.
func schedulePair(model *costmodel.Model, st *costmodel.State, m1, m2 int32) (costmodel.Option, costmodel.Option, error) {
	o1 := model.Options(m1)
	o2 := model.Options(m2)
	if len(o1) == 0 {
		return costmodel.Option{}, costmodel.Option{}, infeasibleError{ms: model.MSName(m1)}
	}
	if len(o2) == 0 {
		return costmodel.Option{}, costmodel.Option{}, infeasibleError{ms: model.MSName(m2)}
	}
	a := game.NewMatrix(len(o1), len(o2))
	b := game.NewMatrix(len(o1), len(o2))
	coMS := [2]int32{m1, m2}
	var coOpt [2]costmodel.Option
	for i, x := range o1 {
		coOpt[0] = x
		for j, y := range o2 {
			coOpt[1] = y
			a.Set(i, j, -st.Energy(m1, x, coMS[:], coOpt[:]))
			b.Set(i, j, -st.Energy(m2, y, coMS[:], coOpt[:]))
		}
	}
	g := game.New(a, b)
	// Prefer pure equilibria (deployable directly); among them take the
	// welfare-maximal one, i.e. minimum combined energy.
	if best, ok := g.SelectEquilibrium(g.PureNash()); ok {
		return o1[best.RowSupport()[0]], o2[best.ColSupport()[0]], nil
	}
	// Degenerate case: take any equilibrium and round each player to the
	// highest-probability strategy.
	p, err := g.LemkeHowsonAny()
	if err != nil {
		return costmodel.Option{}, costmodel.Option{}, err
	}
	return o1[argmax(p.Row)], o2[argmax(p.Col)], nil
}

// bestResponse runs synchronous best-response dynamics over a stage until a
// fixed point or the iteration budget. opts holds each member's candidate
// options and cur its current assignment (parallel to stage); cur is
// updated in place. Candidates are evaluated by setting cur[k] and
// restoring afterwards — exact, because the contention scan skips the
// deciding microservice's own entry — so no per-candidate copies of the
// stage assignment are made.
func bestResponse(st *costmodel.State, stage []int32, opts [][]costmodel.Option, cur []costmodel.Option) {
	for iter := 0; iter < 100; iter++ {
		changed := false
		for k, ms := range stage {
			prev := cur[k]
			best := prev
			bestC := st.Energy(ms, prev, stage, cur)
			for _, o := range opts[k] {
				cur[k] = o
				if c := st.Energy(ms, o, stage, cur); c < bestC-1e-9 {
					best, bestC = o, c
				}
			}
			cur[k] = best
			if best != prev {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	// Best effort after the iteration budget.
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
