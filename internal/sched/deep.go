package sched

import (
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/game"
	"deep/internal/sim"
)

// DEEP is the paper's Nash-game-based scheduler. The application is
// processed stage by stage (between synchronization barriers). Within a
// stage:
//
//   - A lone microservice plays a two-player cooperation game against the
//     infrastructure: its strategies are the candidate devices, the
//     infrastructure's are the candidate registries, and both players'
//     payoff is the negated energy EC(m_i, r_g, d_j) — the
//     prisoner's-dilemma-style framing of Section III-E where cooperation
//     (joint energy minimization) is the desired equilibrium. The
//     welfare-maximal Nash equilibrium is selected.
//
//   - A pair of microservices (the HA/LA train and infer/score stages)
//     plays a bimatrix game whose strategies are full (device, registry)
//     assignments; the payoff coupling captures shared-registry contention.
//     The welfare-maximal pure equilibrium is chosen. Pair games larger
//     than MaxPairCells payoff cells first get one rescue attempt up to
//     DominancePairCells: price the full bimatrix and shrink it by iterated
//     elimination of strictly dominated strategies (IESDS, which never
//     removes a Nash equilibrium) — if the survivors fit under the cap the
//     reduced game is solved exactly, matching the uncapped answer. Games
//     that stay over the cap fall back to best-response dynamics — on
//     scaled clusters the full O(|o1|·|o2|) game prices tens of thousands
//     of cells for the same congestion-style potential game whose iterative
//     dynamics converge to an equilibrium directly.
//
//   - Larger stages run best-response dynamics, which converge for these
//     congestion-style payoffs.
//
// The whole game layer is batch-priced and allocation-free in steady state:
// payoff matrices are priced one option row at a time by
// costmodel.State.EnergyRow over the compiled dense tables, and every
// matrix, price row, and mask comes from the pass's GameArena. A reusable
// Pass makes repeated warm passes allocate nothing at all.
type DEEP struct {
	// MaxPairCells caps the two-microservice bimatrix game at |o1|·|o2|
	// payoff cells; larger pair stages are solved by best-response dynamics.
	// Zero means uncapped (always play the full pair game — the historical
	// behavior); NewDEEP sets DefaultMaxPairCells.
	MaxPairCells int

	// DominancePairCells widens the exact window for pair games over
	// MaxPairCells: a game of at most this many cells is priced in full and
	// reduced by IESDS; if the survivors fit under MaxPairCells the reduced
	// game is solved exactly — strict dominance never removes a Nash
	// equilibrium and the reduction preserves strategy order, so the answer
	// is the uncapped game's — and otherwise best-response dynamics run as
	// before. Zero disables the window (the pure cap/fallback split), which
	// is also the right setting for latency-critical degraded modes like the
	// fleet's MaxPairCells=1 fallback rung.
	DominancePairCells int
}

// DefaultMaxPairCells is the pair-game cap NewDEEP installs: testbed-sized
// clusters (a few dozen options per microservice) keep the exact game, while
// scaled clusters — where the quadratic blowup dominates the whole
// scheduling pass — take the convergent dynamics instead.
const DefaultMaxPairCells = 4096

// DefaultDominancePairCells is the IESDS rescue window NewDEEP installs:
// pair games up to 2x the cap try dominance reduction before surrendering to
// best-response dynamics. The factor is deliberately modest — pricing the
// full bimatrix plus the elimination sweeps is O(cells) + O((|o1|+|o2|)·
// cells) worst case, and the biggest scaled-cluster games (100x100 options,
// 10k cells) are exactly the ones whose best-response routing bought the
// game layer its throughput, so they stay on the dynamics.
const DefaultDominancePairCells = 2 * DefaultMaxPairCells

// DEEP supports the fleet's pooled-pass scheduling path.
var _ PassScheduler = (*DEEP)(nil)

// NewDEEP returns the Nash scheduler with the default pair-game cap and
// IESDS rescue window.
func NewDEEP() *DEEP {
	return &DEEP{
		MaxPairCells:       DefaultMaxPairCells,
		DominancePairCells: DefaultDominancePairCells,
	}
}

// NewDEEPUncapped returns the Nash scheduler with the pair-game cap
// disabled: every two-microservice stage plays the exact bimatrix game
// regardless of size.
func NewDEEPUncapped() *DEEP { return &DEEP{} }

// Name implements Scheduler.
func (*DEEP) Name() string { return "deep" }

// Schedule implements Scheduler.
func (s *DEEP) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (s *DEEP) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	p := NewPass(model)
	if err := s.ScheduleInto(p); err != nil {
		return nil, err
	}
	return p.Placement(), nil
}

// Pass is the reusable scratch for repeated warm DEEP passes over one
// compiled model: the cost-model state (which owns the game arena), the
// per-stage option and assignment buffers, and the compiled placement of
// the last run. Reusing a Pass across ScheduleInto calls makes the whole
// scheduling pass — game layer included — allocation-free. Not safe for
// concurrent use.
type Pass struct {
	model  *costmodel.Model
	st     *costmodel.State
	cur    []costmodel.Option
	opts   [][]costmodel.Option
	placed []costmodel.Option
}

// NewPass allocates scratch sized for the model.
func NewPass(model *costmodel.Model) *Pass {
	width := model.MaxStageWidth()
	return &Pass{
		model:  model,
		st:     model.NewState(),
		cur:    make([]costmodel.Option, width),
		opts:   make([][]costmodel.Option, width),
		placed: make([]costmodel.Option, model.NumMicroservices()),
	}
}

// Assigned returns the last run's compiled assignment for a microservice.
func (p *Pass) Assigned(ms int32) costmodel.Option { return p.placed[ms] }

// Placement materializes the last run's placement as a string-keyed map
// (this is the one allocating step of a warm pass).
func (p *Pass) Placement() sim.Placement {
	placement := make(sim.Placement, len(p.placed))
	for ms, o := range p.placed {
		placement[p.model.MSName(int32(ms))] = p.model.Assignment(o)
	}
	return placement
}

// ScheduleInto runs one scheduling pass over the pass's model, writing the
// compiled placement into the pass's scratch (read it back via Placement or
// Assigned). On a reused Pass it does not allocate.
func (s *DEEP) ScheduleInto(p *Pass) error {
	model, st := p.model, p.st
	stages, err := model.Stages()
	if err != nil {
		return err
	}
	st.Reset()
	for _, stage := range stages {
		assigned := p.cur[:len(stage)]
		opts := p.opts[:len(stage)]
		for k, ms := range stage {
			o := model.Options(ms)
			if len(o) == 0 {
				return infeasibleError{ms: model.MSName(ms)}
			}
			opts[k] = o
		}
		switch {
		case len(stage) == 1:
			assigned[0], err = scheduleSolo(model, st, stage[0])
			if err != nil {
				return err
			}
		case len(stage) == 2 && (s.MaxPairCells <= 0 || len(opts[0])*len(opts[1]) <= s.MaxPairCells):
			assigned[0], assigned[1], err = schedulePair(model, st, stage[0], stage[1])
			if err != nil {
				return err
			}
		case len(stage) == 2 && s.DominancePairCells > 0 && len(opts[0])*len(opts[1]) <= s.DominancePairCells:
			// Mid-size pair games (over the cap, within the dominance
			// window): try IESDS reduction for an exact answer; games that
			// stay over the cap join the best-response fallback below.
			var solved bool
			assigned[0], assigned[1], solved, err = schedulePairReduced(model, st, stage[0], stage[1], s.MaxPairCells)
			if err != nil {
				return err
			}
			if !solved {
				for k := range stage {
					assigned[k] = opts[k][0]
				}
				bestResponse(st, stage, opts, assigned)
			}
		default:
			// Wide stages — and pair stages over the cap — converge by
			// best-response dynamics.
			for k := range stage {
				assigned[k] = opts[k][0]
			}
			bestResponse(st, stage, opts, assigned)
		}
		for k, ms := range stage {
			p.placed[ms] = assigned[k]
			st.Commit(ms, assigned[k])
		}
	}
	return nil
}

// scheduleSolo solves the one-microservice device×registry cooperation game.
// The whole option row is priced by one EnergyRow call and scattered into
// the arena-backed payoff matrix via the model's precomputed solo cells.
func scheduleSolo(model *costmodel.Model, st *costmodel.State, ms int32) (costmodel.Option, error) {
	opts := model.Options(ms)
	if len(opts) == 0 {
		return costmodel.Option{}, infeasibleError{ms: model.MSName(ms)}
	}
	// Distinct devices become row strategies, registries column strategies.
	devices, registries := model.SoloAxes(ms)
	cells := model.SoloCells(ms)
	nr := len(registries)
	ar := st.Arena()
	ar.Reset()

	prices := ar.Floats(len(opts))
	st.EnergyRow(ms, opts, nil, nil, prices)
	g := game.NewFromArena(ar, len(devices), nr)
	feasible := ar.Mask(len(devices) * nr)
	worst := 0.0
	for k := range opts {
		c := prices[k]
		g.A.Data[cells[k]] = -c
		feasible.Set(int(cells[k]))
		if c > worst {
			worst = c
		}
	}
	// Infeasible (link-broken) cells get a penalty strictly worse than every
	// feasible entry. worst*10 preserves the historical payoffs whenever
	// worst > 0; when every feasible cost is 0 it would tie infeasible cells
	// with feasible ones, so fall back to worst+1.
	pen := worst * 10
	if pen <= worst {
		pen = worst + 1
	}
	for c := range g.A.Data {
		if !feasible.Has(c) {
			g.A.Data[c] = -pen
		}
	}
	copy(g.B.Data, g.A.Data) // common-interest game: both players pay the energy

	best, ok := g.BestPureNash()
	if !ok {
		// A common-interest game always has a pure equilibrium at its
		// argmax; reaching here means the matrix was empty.
		return costmodel.Option{}, infeasibleError{ms: model.MSName(ms)}
	}
	if !feasible.Has(best.Row*nr + best.Col) {
		return costmodel.Option{}, infeasibleError{ms: model.MSName(ms)}
	}
	return costmodel.Option{Device: devices[best.Row], Registry: registries[best.Col]}, nil
}

// schedulePair solves the two-microservice bimatrix game over full
// assignments. The row player's payoffs are priced one column at a time and
// the column player's one row at a time, each by a single EnergyRow call —
// the entry for the microservice being priced is ignored by the contention
// scan, so the co-assignment only needs the opponent's strategy filled in.
func schedulePair(model *costmodel.Model, st *costmodel.State, m1, m2 int32) (costmodel.Option, costmodel.Option, error) {
	o1 := model.Options(m1)
	o2 := model.Options(m2)
	if len(o1) == 0 {
		return costmodel.Option{}, costmodel.Option{}, infeasibleError{ms: model.MSName(m1)}
	}
	if len(o2) == 0 {
		return costmodel.Option{}, costmodel.Option{}, infeasibleError{ms: model.MSName(m2)}
	}
	ar := st.Arena()
	ar.Reset()
	g := game.NewFromArena(ar, len(o1), len(o2))
	pricePairGame(st, g, m1, m2, o1, o2)

	// Prefer pure equilibria (deployable directly); among them take the
	// welfare-maximal one, i.e. minimum combined energy.
	if best, ok := g.BestPureNash(); ok {
		return o1[best.Row], o2[best.Col], nil
	}
	// Degenerate case: take any equilibrium and round each player to the
	// highest-probability strategy.
	p, err := g.LemkeHowsonAny()
	if err != nil {
		return costmodel.Option{}, costmodel.Option{}, err
	}
	return o1[argmax(p.Row)], o2[argmax(p.Col)], nil
}

// pricePairGame fills g's bimatrix for the (m1, m2) pair game over option
// sets o1 x o2: the row player's payoffs one column at a time and the column
// player's one row at a time, each by a single EnergyRow call. The price
// scratch comes from the state's arena, which must own g.
func pricePairGame(st *costmodel.State, g *game.Game, m1, m2 int32, o1, o2 []costmodel.Option) {
	coMS := [2]int32{m1, m2}
	var coOpt [2]costmodel.Option

	cols := len(o2)
	colBuf := st.Arena().Floats(len(o1))
	for j, y := range o2 {
		coOpt[1] = y
		st.EnergyRow(m1, o1, coMS[:], coOpt[:], colBuf)
		for i, c := range colBuf {
			g.A.Data[i*cols+j] = -c
		}
	}
	for i, x := range o1 {
		coOpt[0] = x
		row := g.B.RowView(i)
		st.EnergyRow(m2, o2, coMS[:], coOpt[:], row)
		for k, c := range row {
			row[k] = -c
		}
	}
}

// schedulePairReduced is the mid-size rung between the exact pair game and
// best-response dynamics: price the full bimatrix, shrink it by iterated
// elimination of strictly dominated strategies, and if the survivors fit
// under maxCells solve the reduced game exactly, translating the equilibrium
// back through the surviving-index maps. IESDS never removes a Nash
// equilibrium and the in-place compaction preserves strategy order, so a
// solved=true result is exactly what the uncapped game would return.
// solved=false means the game stayed over the cap; the caller falls back to
// best-response dynamics (which reset the arena and reprice from the dense
// tables — nothing priced here is reused).
func schedulePairReduced(model *costmodel.Model, st *costmodel.State, m1, m2 int32, maxCells int) (costmodel.Option, costmodel.Option, bool, error) {
	o1 := model.Options(m1)
	o2 := model.Options(m2)
	if len(o1) == 0 {
		return costmodel.Option{}, costmodel.Option{}, false, infeasibleError{ms: model.MSName(m1)}
	}
	if len(o2) == 0 {
		return costmodel.Option{}, costmodel.Option{}, false, infeasibleError{ms: model.MSName(m2)}
	}
	ar := st.Arena()
	ar.Reset()
	g := game.NewFromArena(ar, len(o1), len(o2))
	rowOrig := ar.Ints(len(o1))
	colOrig := ar.Ints(len(o2))
	fscratch := ar.Floats(2 * (len(o1) + len(o2)))
	pricePairGame(st, g, m1, m2, o1, o2)

	if nr, nc := g.ReduceDominatedPrefiltered(rowOrig, colOrig, fscratch); nr*nc > maxCells {
		return costmodel.Option{}, costmodel.Option{}, false, nil
	}
	if best, ok := g.BestPureNash(); ok {
		return o1[rowOrig[best.Row]], o2[colOrig[best.Col]], true, nil
	}
	p, err := g.LemkeHowsonAny()
	if err != nil {
		return costmodel.Option{}, costmodel.Option{}, false, err
	}
	return o1[rowOrig[argmax(p.Row)]], o2[colOrig[argmax(p.Col)]], true, nil
}

// bestResponse runs synchronous best-response dynamics over a stage until a
// fixed point or the iteration budget. opts holds each member's candidate
// options and cur its current assignment (parallel to stage); cur is
// updated in place and MUST start at opts[k][0] for every member. Each
// member's whole candidate row is priced by one EnergyRow call against the
// current profile — exact, because the contention scan skips the deciding
// microservice's own entry — with the price row and index scratch drawn
// from the state's arena.
func bestResponse(st *costmodel.State, stage []int32, opts [][]costmodel.Option, cur []costmodel.Option) {
	ar := st.Arena()
	ar.Reset()
	maxOpts := 0
	for _, o := range opts {
		if len(o) > maxOpts {
			maxOpts = len(o)
		}
	}
	prices := ar.Floats(maxOpts)
	curIdx := ar.Ints(len(stage)) // zeroed: cur[k] == opts[k][0]

	for iter := 0; iter < 100; iter++ {
		changed := false
		for k, ms := range stage {
			row := prices[:len(opts[k])]
			st.EnergyRow(ms, opts[k], stage, cur, row)
			prev := curIdx[k]
			best, bestC := prev, row[prev]
			for x, c := range row {
				if c < bestC-1e-9 {
					best, bestC = x, c
				}
			}
			if best != prev {
				curIdx[k] = best
				cur[k] = opts[k][best]
				changed = true
			}
		}
		if !changed {
			return
		}
	}
	// Best effort after the iteration budget.
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}
