package sched

import (
	"sort"

	"deep/internal/dag"
	"deep/internal/game"
	"deep/internal/sim"
)

// DEEP is the paper's Nash-game-based scheduler. The application is
// processed stage by stage (between synchronization barriers). Within a
// stage:
//
//   - A lone microservice plays a two-player cooperation game against the
//     infrastructure: its strategies are the candidate devices, the
//     infrastructure's are the candidate registries, and both players'
//     payoff is the negated energy EC(m_i, r_g, d_j) — the
//     prisoner's-dilemma-style framing of Section III-E where cooperation
//     (joint energy minimization) is the desired equilibrium. The
//     welfare-maximal Nash equilibrium is selected.
//
//   - A pair of microservices (the HA/LA train and infer/score stages)
//     plays a bimatrix game whose strategies are full (device, registry)
//     assignments; the payoff coupling captures shared-registry contention.
//     All equilibria are found by support enumeration and the
//     welfare-maximal pure equilibrium is chosen.
//
//   - Larger stages fall back to best-response dynamics, which converge for
//     these congestion-style payoffs.
type DEEP struct{}

// NewDEEP returns the Nash scheduler.
func NewDEEP() *DEEP { return &DEEP{} }

// Name implements Scheduler.
func (*DEEP) Name() string { return "deep" }

// Schedule implements Scheduler.
func (*DEEP) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	stages, err := stagesOf(app)
	if err != nil {
		return nil, err
	}
	est := NewEstimator(app, cluster)
	placement := make(sim.Placement, len(app.Microservices))

	for _, stage := range stages {
		names := append([]string(nil), stage...)
		sort.Strings(names)
		var assigned map[string]sim.Assignment
		switch len(names) {
		case 1:
			assigned, err = scheduleSolo(est, app.Microservice(names[0]))
		case 2:
			assigned, err = schedulePair(est, app.Microservice(names[0]), app.Microservice(names[1]))
		default:
			assigned, err = scheduleBestResponse(est, app, names)
		}
		if err != nil {
			return nil, err
		}
		for name, a := range assigned {
			placement[name] = a
			est.Commit(name, a)
		}
	}
	return placement, nil
}

// scheduleSolo solves the one-microservice device×registry cooperation game.
func scheduleSolo(est *Estimator, m *dag.Microservice) (map[string]sim.Assignment, error) {
	opts := est.Options(m)
	if len(opts) == 0 {
		return nil, infeasibleError{ms: m.Name}
	}
	// Distinct devices become row strategies, registries column strategies.
	devices, registries := axes(opts)
	feasible := make(map[sim.Assignment]bool, len(opts))
	for _, o := range opts {
		feasible[o] = true
	}
	worst := 0.0
	costs := make(map[sim.Assignment]float64, len(opts))
	for _, o := range opts {
		c := float64(est.Energy(m, o, nil))
		costs[o] = c
		if c > worst {
			worst = c
		}
	}
	a := game.NewMatrix(len(devices), len(registries))
	b := game.NewMatrix(len(devices), len(registries))
	for i, d := range devices {
		for j, r := range registries {
			o := sim.Assignment{Device: d, Registry: r}
			c, ok := costs[o]
			if !ok || !feasible[o] {
				c = worst * 10 // heavily penalize infeasible combinations
			}
			a.Set(i, j, -c)
			b.Set(i, j, -c)
		}
	}
	g := game.New(a, b)
	eqs := g.PureNash()
	best, ok := g.SelectEquilibrium(eqs)
	if !ok {
		// A common-interest game always has a pure equilibrium at its
		// argmax; reaching here means every entry was penalized.
		return nil, infeasibleError{ms: m.Name}
	}
	i := best.RowSupport()[0]
	j := best.ColSupport()[0]
	choice := sim.Assignment{Device: devices[i], Registry: registries[j]}
	if !feasible[choice] {
		return nil, infeasibleError{ms: m.Name}
	}
	return map[string]sim.Assignment{m.Name: choice}, nil
}

// schedulePair solves the two-microservice bimatrix game over full
// assignments.
func schedulePair(est *Estimator, m1, m2 *dag.Microservice) (map[string]sim.Assignment, error) {
	o1 := est.Options(m1)
	o2 := est.Options(m2)
	if len(o1) == 0 {
		return nil, infeasibleError{ms: m1.Name}
	}
	if len(o2) == 0 {
		return nil, infeasibleError{ms: m2.Name}
	}
	a := game.NewMatrix(len(o1), len(o2))
	b := game.NewMatrix(len(o1), len(o2))
	for i, x := range o1 {
		for j, y := range o2 {
			co := map[string]sim.Assignment{m1.Name: x, m2.Name: y}
			a.Set(i, j, -float64(est.Energy(m1, x, co)))
			b.Set(i, j, -float64(est.Energy(m2, y, co)))
		}
	}
	g := game.New(a, b)
	// Prefer pure equilibria (deployable directly); among them take the
	// welfare-maximal one, i.e. minimum combined energy.
	if best, ok := g.SelectEquilibrium(g.PureNash()); ok {
		return map[string]sim.Assignment{
			m1.Name: o1[best.RowSupport()[0]],
			m2.Name: o2[best.ColSupport()[0]],
		}, nil
	}
	// Degenerate case: take any equilibrium and round each player to the
	// highest-probability strategy.
	p, err := g.LemkeHowsonAny()
	if err != nil {
		return nil, err
	}
	return map[string]sim.Assignment{
		m1.Name: o1[argmax(p.Row)],
		m2.Name: o2[argmax(p.Col)],
	}, nil
}

// scheduleBestResponse runs synchronous best-response dynamics over stages
// with three or more microservices.
func scheduleBestResponse(est *Estimator, app *dag.App, names []string) (map[string]sim.Assignment, error) {
	cur := make(map[string]sim.Assignment, len(names))
	optsOf := make(map[string][]sim.Assignment, len(names))
	for _, n := range names {
		m := app.Microservice(n)
		opts := est.Options(m)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: n}
		}
		optsOf[n] = opts
		cur[n] = opts[0]
	}
	for iter := 0; iter < 100; iter++ {
		changed := false
		for _, n := range names {
			m := app.Microservice(n)
			best := cur[n]
			bestC := float64(est.Energy(m, best, cur))
			for _, o := range optsOf[n] {
				trial := cloneAssignments(cur)
				trial[n] = o
				if c := float64(est.Energy(m, o, trial)); c < bestC-1e-9 {
					best, bestC = o, c
				}
			}
			if best != cur[n] {
				cur[n] = best
				changed = true
			}
		}
		if !changed {
			return cur, nil
		}
	}
	return cur, nil // best effort after the iteration budget
}

// axes extracts the sorted distinct devices and registries from options.
func axes(opts []sim.Assignment) (devices, registries []string) {
	dset := map[string]bool{}
	rset := map[string]bool{}
	for _, o := range opts {
		dset[o.Device] = true
		rset[o.Registry] = true
	}
	for d := range dset {
		devices = append(devices, d)
	}
	for r := range rset {
		registries = append(registries, r)
	}
	sort.Strings(devices)
	sort.Strings(registries)
	return devices, registries
}

func argmax(v []float64) int {
	best := 0
	for i, x := range v {
		if x > v[best] {
			best = i
		}
	}
	return best
}

func cloneAssignments(m map[string]sim.Assignment) map[string]sim.Assignment {
	c := make(map[string]sim.Assignment, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
