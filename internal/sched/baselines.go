package sched

import (
	"math/rand"
	"sort"

	"deep/internal/dag"
	"deep/internal/sim"
)

// Exclusive restricts every deployment to a single registry (the paper's
// "exclusively Docker Hub" and "exclusively regional registry" baselines);
// devices are still chosen energy-optimally via the same game as DEEP.
type Exclusive struct{ registry string }

// NewExclusive returns an exclusive-registry scheduler.
func NewExclusive(registry string) *Exclusive { return &Exclusive{registry: registry} }

// Name implements Scheduler.
func (s *Exclusive) Name() string { return "exclusive-" + s.registry }

// Schedule implements Scheduler.
func (s *Exclusive) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	stages, err := stagesOf(app)
	if err != nil {
		return nil, err
	}
	est := NewEstimator(app, cluster)
	placement := make(sim.Placement, len(app.Microservices))
	for _, stage := range stages {
		names := append([]string(nil), stage...)
		sort.Strings(names)
		// Iterate to a fixed point of best responses with the registry
		// pinned; within a stage co-assignments couple through contention.
		cur := make(map[string]sim.Assignment, len(names))
		optsOf := make(map[string][]sim.Assignment, len(names))
		for _, n := range names {
			m := app.Microservice(n)
			var opts []sim.Assignment
			for _, o := range est.Options(m) {
				if o.Registry == s.registry {
					opts = append(opts, o)
				}
			}
			if len(opts) == 0 {
				return nil, infeasibleError{ms: n}
			}
			optsOf[n] = opts
			cur[n] = opts[0]
		}
		for iter := 0; iter < 100; iter++ {
			changed := false
			for _, n := range names {
				m := app.Microservice(n)
				best := cur[n]
				bestC := float64(est.Energy(m, best, cur))
				for _, o := range optsOf[n] {
					trial := cloneAssignments(cur)
					trial[n] = o
					if c := float64(est.Energy(m, o, trial)); c < bestC-1e-9 {
						best, bestC = o, c
					}
				}
				if best != cur[n] {
					cur[n] = best
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		for n, a := range cur {
			placement[n] = a
			est.Commit(n, a)
		}
	}
	return placement, nil
}

// GreedyEnergy assigns each microservice, in topological order, the
// (device, registry) pair minimizing its own estimated energy, ignoring
// same-stage contention — the myopic baseline DEEP's game improves on.
type GreedyEnergy struct{}

// NewGreedyEnergy returns the greedy baseline.
func NewGreedyEnergy() *GreedyEnergy { return &GreedyEnergy{} }

// Name implements Scheduler.
func (*GreedyEnergy) Name() string { return "greedy-energy" }

// Schedule implements Scheduler.
func (*GreedyEnergy) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	order, err := topoOrder(app)
	if err != nil {
		return nil, err
	}
	est := NewEstimator(app, cluster)
	placement := make(sim.Placement, len(order))
	for _, name := range order {
		m := app.Microservice(name)
		opts := est.Options(m)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: name}
		}
		best := opts[0]
		bestC := float64(est.Energy(m, best, nil))
		for _, o := range opts[1:] {
			if c := float64(est.Energy(m, o, nil)); c < bestC {
				best, bestC = o, c
			}
		}
		placement[name] = best
		est.Commit(name, best)
	}
	return placement, nil
}

// MinCompletionTime is a HEFT-flavored baseline minimizing each
// microservice's estimated completion time instead of energy.
type MinCompletionTime struct{}

// NewMinCompletionTime returns the completion-time baseline.
func NewMinCompletionTime() *MinCompletionTime { return &MinCompletionTime{} }

// Name implements Scheduler.
func (*MinCompletionTime) Name() string { return "min-ct" }

// Schedule implements Scheduler.
func (*MinCompletionTime) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	order, err := topoOrder(app)
	if err != nil {
		return nil, err
	}
	est := NewEstimator(app, cluster)
	placement := make(sim.Placement, len(order))
	for _, name := range order {
		m := app.Microservice(name)
		opts := est.Options(m)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: name}
		}
		best := opts[0]
		bestC := est.CompletionTime(m, best, nil)
		for _, o := range opts[1:] {
			if c := est.CompletionTime(m, o, nil); c < bestC {
				best, bestC = o, c
			}
		}
		placement[name] = best
		est.Commit(name, best)
	}
	return placement, nil
}

// RoundRobin cycles microservices across devices in topological order and
// always deploys from the first registry — the naive load-spreading
// baseline.
type RoundRobin struct{}

// NewRoundRobin returns the round-robin baseline.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Schedule implements Scheduler.
func (*RoundRobin) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	order, err := topoOrder(app)
	if err != nil {
		return nil, err
	}
	est := NewEstimator(app, cluster)
	placement := make(sim.Placement, len(order))
	next := 0
	for _, name := range order {
		m := app.Microservice(name)
		opts := est.Options(m)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: name}
		}
		// Group options by device, then rotate device choice.
		devices, _ := axes(opts)
		dev := devices[next%len(devices)]
		next++
		for _, o := range opts {
			if o.Device == dev {
				placement[name] = o
				est.Commit(name, o)
				break
			}
		}
	}
	return placement, nil
}

// Random picks uniformly among feasible assignments with a fixed seed.
type Random struct{ seed int64 }

// NewRandom returns the seeded random baseline.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name implements Scheduler.
func (*Random) Name() string { return "random" }

// Schedule implements Scheduler.
func (s *Random) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	order, err := topoOrder(app)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.seed))
	est := NewEstimator(app, cluster)
	placement := make(sim.Placement, len(order))
	for _, name := range order {
		m := app.Microservice(name)
		opts := est.Options(m)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: name}
		}
		o := opts[rng.Intn(len(opts))]
		placement[name] = o
		est.Commit(name, o)
	}
	return placement, nil
}

func topoOrder(app *dag.App) ([]string, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app.TopoOrder()
}
