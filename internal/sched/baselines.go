package sched

import (
	"math/rand"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
)

// Exclusive restricts every deployment to a single registry (the paper's
// "exclusively Docker Hub" and "exclusively regional registry" baselines);
// devices are still chosen energy-optimally via the same game as DEEP.
type Exclusive struct{ registry string }

// NewExclusive returns an exclusive-registry scheduler.
func NewExclusive(registry string) *Exclusive { return &Exclusive{registry: registry} }

// Name implements Scheduler.
func (s *Exclusive) Name() string { return "exclusive-" + s.registry }

// Schedule implements Scheduler.
func (s *Exclusive) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (s *Exclusive) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	stages, err := model.Stages()
	if err != nil {
		return nil, err
	}
	regID, regOK := model.RegistryID(s.registry)
	st := model.NewState()
	placement := make(sim.Placement, model.NumMicroservices())
	width := model.MaxStageWidth()
	cur := make([]costmodel.Option, width)
	optsBuf := make([][]costmodel.Option, width)

	for _, stage := range stages {
		// Iterate to a fixed point of best responses with the registry
		// pinned; within a stage co-assignments couple through contention.
		assigned := cur[:len(stage)]
		opts := optsBuf[:len(stage)]
		for k, ms := range stage {
			var filtered []costmodel.Option
			if regOK {
				for _, o := range model.Options(ms) {
					if o.Registry == regID {
						filtered = append(filtered, o)
					}
				}
			}
			if len(filtered) == 0 {
				return nil, infeasibleError{ms: model.MSName(ms)}
			}
			opts[k] = filtered
			assigned[k] = filtered[0]
		}
		bestResponse(st, stage, opts, assigned)
		for k, ms := range stage {
			placement[model.MSName(ms)] = model.Assignment(assigned[k])
			st.Commit(ms, assigned[k])
		}
	}
	return placement, nil
}

// GreedyEnergy assigns each microservice, in topological order, the
// (device, registry) pair minimizing its own estimated energy, ignoring
// same-stage contention — the myopic baseline DEEP's game improves on.
type GreedyEnergy struct{}

// NewGreedyEnergy returns the greedy baseline.
func NewGreedyEnergy() *GreedyEnergy { return &GreedyEnergy{} }

// Name implements Scheduler.
func (*GreedyEnergy) Name() string { return "greedy-energy" }

// Schedule implements Scheduler.
func (s *GreedyEnergy) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (*GreedyEnergy) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	return scheduleMyopic(model, (*costmodel.State).Energy)
}

// MinCompletionTime is a HEFT-flavored baseline minimizing each
// microservice's estimated completion time instead of energy.
type MinCompletionTime struct{}

// NewMinCompletionTime returns the completion-time baseline.
func NewMinCompletionTime() *MinCompletionTime { return &MinCompletionTime{} }

// Name implements Scheduler.
func (*MinCompletionTime) Name() string { return "min-ct" }

// Schedule implements Scheduler.
func (s *MinCompletionTime) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (*MinCompletionTime) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	return scheduleMyopic(model, (*costmodel.State).CompletionTime)
}

// scheduleMyopic places microservices in topological order, each at its own
// cost-minimal option under the given objective, ignoring stage contention.
func scheduleMyopic(model *costmodel.Model, objective func(*costmodel.State, int32, costmodel.Option, []int32, []costmodel.Option) float64) (sim.Placement, error) {
	order, err := model.Topo()
	if err != nil {
		return nil, err
	}
	st := model.NewState()
	placement := make(sim.Placement, len(order))
	for _, ms := range order {
		opts := model.Options(ms)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: model.MSName(ms)}
		}
		best := opts[0]
		bestC := objective(st, ms, best, nil, nil)
		for _, o := range opts[1:] {
			if c := objective(st, ms, o, nil, nil); c < bestC {
				best, bestC = o, c
			}
		}
		placement[model.MSName(ms)] = model.Assignment(best)
		st.Commit(ms, best)
	}
	return placement, nil
}

// RoundRobin cycles microservices across devices in topological order and
// always deploys from the first registry — the naive load-spreading
// baseline.
type RoundRobin struct{}

// NewRoundRobin returns the round-robin baseline.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (*RoundRobin) Name() string { return "round-robin" }

// Schedule implements Scheduler.
func (s *RoundRobin) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (*RoundRobin) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	order, err := model.Topo()
	if err != nil {
		return nil, err
	}
	st := model.NewState()
	placement := make(sim.Placement, len(order))
	next := 0
	for _, ms := range order {
		opts := model.Options(ms)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: model.MSName(ms)}
		}
		// Rotate over the microservice's distinct feasible devices.
		devices, _ := model.SoloAxes(ms)
		dev := devices[next%len(devices)]
		next++
		for _, o := range opts {
			if o.Device == dev {
				placement[model.MSName(ms)] = model.Assignment(o)
				st.Commit(ms, o)
				break
			}
		}
	}
	return placement, nil
}

// Random picks uniformly among feasible assignments with a fixed seed.
type Random struct{ seed int64 }

// NewRandom returns the seeded random baseline.
func NewRandom(seed int64) *Random { return &Random{seed: seed} }

// Name implements Scheduler.
func (*Random) Name() string { return "random" }

// Schedule implements Scheduler.
func (s *Random) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	return s.ScheduleModel(costmodel.Compile(app, cluster))
}

// ScheduleModel implements ModelScheduler.
func (s *Random) ScheduleModel(model *costmodel.Model) (sim.Placement, error) {
	order, err := model.Topo()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(s.seed))
	st := model.NewState()
	placement := make(sim.Placement, len(order))
	for _, ms := range order {
		opts := model.Options(ms)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: model.MSName(ms)}
		}
		o := opts[rng.Intn(len(opts))]
		placement[model.MSName(ms)] = model.Assignment(o)
		st.Commit(ms, o)
	}
	return placement, nil
}
