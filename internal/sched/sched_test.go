package sched

import (
	"testing"

	"deep/internal/sim"
	"deep/internal/workload"
)

func TestDEEPReproducesTableIII(t *testing.T) {
	cluster := workload.Testbed()
	s := NewDEEP()
	for _, app := range workload.Apps() {
		got, err := s.Schedule(app, cluster)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		want := workload.PaperPlacement(app.Name)
		for name, w := range want {
			g, ok := got[name]
			if !ok {
				t.Errorf("%s: %s unplaced", app.Name, name)
				continue
			}
			if g != w {
				t.Errorf("%s: %s placed on %s/%s, paper reports %s/%s",
					app.Name, name, g.Device, g.Registry, w.Device, w.Registry)
			}
		}
	}
}

func TestDEEPPlacementIsFeasible(t *testing.T) {
	cluster := workload.Testbed()
	s := NewDEEP()
	for _, app := range workload.Apps() {
		p, err := s.Schedule(app, cluster)
		if err != nil {
			t.Fatal(err)
		}
		if err := cluster.Validate(app, p); err != nil {
			t.Errorf("%s: infeasible placement: %v", app.Name, err)
		}
	}
}

func TestAllSchedulersProduceFeasiblePlacements(t *testing.T) {
	cluster := workload.Testbed()
	for _, s := range All(1) {
		for _, app := range workload.Apps() {
			p, err := s.Schedule(app, cluster)
			if err != nil {
				t.Errorf("%s on %s: %v", s.Name(), app.Name, err)
				continue
			}
			if err := cluster.Validate(app, p); err != nil {
				t.Errorf("%s on %s: %v", s.Name(), app.Name, err)
			}
		}
	}
}

func TestExclusivePinsRegistry(t *testing.T) {
	cluster := workload.Testbed()
	for _, reg := range []string{"hub", "regional"} {
		s := NewExclusive(reg)
		for _, app := range workload.Apps() {
			p, err := s.Schedule(app, cluster)
			if err != nil {
				t.Fatal(err)
			}
			for name, a := range p {
				if a.Registry != reg {
					t.Errorf("%s: %s deployed from %s, want %s", s.Name(), name, a.Registry, reg)
				}
			}
		}
	}
}

// DEEP must beat (or tie) both exclusive methods on simulated energy — the
// Figure 3b ordering.
func TestDEEPBeatsExclusiveMethods(t *testing.T) {
	cluster := workload.Testbed()
	for _, app := range workload.Apps() {
		energies := map[string]float64{}
		for _, s := range []Scheduler{NewDEEP(), NewExclusive("hub"), NewExclusive("regional")} {
			p, err := s.Schedule(app, cluster)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(app, cluster, p, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			energies[s.Name()] = float64(res.TotalEnergy)
		}
		deep := energies["deep"]
		for name, e := range energies {
			if deep > e+1e-6 {
				t.Errorf("%s: deep %.1fJ exceeds %s %.1fJ", app.Name, deep, name, e)
			}
		}
		// The margins must be small (sub-2%%): the paper's core observation
		// is that the regional registry is competitive.
		for _, other := range []string{"exclusive-hub", "exclusive-regional"} {
			margin := (energies[other] - deep) / energies[other]
			if margin > 0.02 {
				t.Errorf("%s: margin vs %s = %.2f%%, expected sub-2%% (registry competitive)",
					app.Name, other, 100*margin)
			}
			if margin < 0 {
				t.Errorf("%s: deep worse than %s", app.Name, other)
			}
		}
	}
}

func TestDEEPBeatsOrMatchesGreedy(t *testing.T) {
	cluster := workload.Testbed()
	for _, app := range workload.Apps() {
		var deepE, greedyE float64
		for _, s := range []Scheduler{NewDEEP(), NewGreedyEnergy()} {
			p, err := s.Schedule(app, cluster)
			if err != nil {
				t.Fatal(err)
			}
			res, err := sim.Run(app, cluster, p, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if s.Name() == "deep" {
				deepE = float64(res.TotalEnergy)
			} else {
				greedyE = float64(res.TotalEnergy)
			}
		}
		if deepE > greedyE*1.001 {
			t.Errorf("%s: deep %.1fJ worse than greedy %.1fJ", app.Name, deepE, greedyE)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cluster := workload.Testbed()
	app := workload.TextProcessing()
	p1, err := NewRandom(7).Schedule(app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := NewRandom(7).Schedule(workload.TextProcessing(), cluster)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range p1 {
		if p2[k] != v {
			t.Fatalf("seeded random differs at %s", k)
		}
	}
}

func TestRoundRobinSpreadsDevices(t *testing.T) {
	cluster := workload.Testbed()
	app := workload.VideoProcessing()
	p, err := NewRoundRobin().Schedule(app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	used := map[string]int{}
	for _, a := range p {
		used[a.Device]++
	}
	if len(used) < 2 {
		t.Errorf("round robin used only %v", used)
	}
}

func TestSchedulerNames(t *testing.T) {
	want := map[string]bool{
		"deep": true, "exclusive-hub": true, "exclusive-regional": true,
		"greedy-energy": true, "min-ct": true, "round-robin": true, "random": true,
	}
	for _, s := range All(0) {
		if !want[s.Name()] {
			t.Errorf("unexpected scheduler %q", s.Name())
		}
		delete(want, s.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing schedulers: %v", want)
	}
}

func TestEstimatorOptionsDeterministic(t *testing.T) {
	cluster := workload.Testbed()
	app := workload.VideoProcessing()
	est := NewEstimator(app, cluster)
	m := app.Microservice("video/transcode")
	o1 := est.Options(m)
	o2 := est.Options(m)
	if len(o1) != 4 {
		t.Fatalf("want 4 options (2 devices × 2 registries), got %d", len(o1))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatal("options not deterministic")
		}
	}
}

func TestEstimatorSharedContention(t *testing.T) {
	cluster := workload.Testbed()
	app := workload.VideoProcessing()
	est := NewEstimator(app, cluster)
	m := app.Microservice("video/ha-train")
	solo := sim.Assignment{Device: "medium", Registry: "regional"}
	alone := float64(est.Energy(m, solo, nil))
	co := map[string]sim.Assignment{
		"video/la-train": {Device: "small", Registry: "regional"},
	}
	contended := float64(est.Energy(m, solo, co))
	if contended <= alone {
		t.Errorf("cross-device shared pulls should cost more: %v vs %v", contended, alone)
	}
	// Same-device co-pull does not split the uplink (pulls serialize).
	coSame := map[string]sim.Assignment{
		"video/la-train": {Device: "medium", Registry: "regional"},
	}
	sameDev := float64(est.Energy(m, solo, coSame))
	if sameDev != alone {
		t.Errorf("same-device pulls should not split capacity: %v vs %v", sameDev, alone)
	}
}

// The estimator's energy must track the simulator's within a small margin,
// since the games are only as good as their payoffs.
func TestEstimatorMatchesSimulator(t *testing.T) {
	cluster := workload.Testbed()
	for _, app := range workload.Apps() {
		p := workload.PaperPlacement(app.Name)
		res, err := sim.Run(app, cluster, p, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		est := NewEstimator(app, cluster)
		stages, _ := app.Stages()
		for _, stage := range stages {
			co := map[string]sim.Assignment{}
			for _, n := range stage {
				co[n] = p[n]
			}
			for _, n := range stage {
				m := app.Microservice(n)
				predicted := float64(est.Energy(m, p[n], co))
				simRow, _ := res.ByName(n)
				actual := float64(simRow.TotalEnergy())
				if diff := abs(predicted-actual) / actual; diff > 0.02 {
					t.Errorf("%s/%s: estimator %.1fJ vs simulator %.1fJ (%.1f%%)",
						app.Name, n, predicted, actual, 100*diff)
				}
			}
			for _, n := range stage {
				est.Commit(n, p[n])
			}
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
