package sched

// Equivalence corpus: the compiled cost model (internal/costmodel) replaced
// the original string-keyed estimator under every scheduler. This file
// keeps a faithful port of that original implementation — map-based
// co-assignments, linear option enumeration per call — and proves on a
// seeded corpus of case-study and synthetic applications over testbed and
// scaled clusters that
//
//  1. the estimator's Energy and CompletionTime are bit-identical, and
//  2. all seven schedulers emit byte-identical placements
//
// before vs. after the refactor. The one deliberate change kept here: the
// legacy best-response loop evaluates candidates in place with set/restore
// instead of cloning the whole stage assignment map per candidate (the
// contention scan skips the deciding microservice's own entry, so the clone
// never influenced a payoff).

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"deep/internal/dag"
	"deep/internal/game"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

// --- legacy estimator (pre-costmodel), verbatim semantics ----------------

type legacyEstimator struct {
	App     *dag.App
	Cluster *sim.Cluster
	Placed  sim.Placement
}

func newLegacyEstimator(app *dag.App, cluster *sim.Cluster) *legacyEstimator {
	return &legacyEstimator{App: app, Cluster: cluster, Placed: make(sim.Placement)}
}

func (e *legacyEstimator) Options(m *dag.Microservice) []sim.Assignment {
	var out []sim.Assignment
	for _, d := range e.Cluster.Devices {
		if d.CanRun(m) != nil {
			continue
		}
		for _, r := range e.Cluster.Registries {
			if _, ok := e.Cluster.Topology.LinkBetween(r.Node, d.Name); !ok {
				continue
			}
			out = append(out, sim.Assignment{Device: d.Name, Registry: r.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Registry < out[j].Registry
	})
	return out
}

type legacyBreakdown struct{ Td, Tc, Tp float64 }

func (e *legacyEstimator) estimate(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) legacyBreakdown {
	reg, _ := e.Cluster.Registry(a.Registry)
	dev := e.Cluster.Device(a.Device)

	var b legacyBreakdown
	link, ok := e.Cluster.Topology.LinkBetween(reg.Node, a.Device)
	if ok {
		bw := link.BW
		if reg.Shared {
			devs := map[string]bool{a.Device: true}
			for other, oa := range co {
				if other == m.Name {
					continue
				}
				if oa.Registry == a.Registry {
					devs[oa.Device] = true
				}
			}
			if n := len(devs); n > 1 {
				bw = link.BW / units.Bandwidth(n)
			}
		}
		b.Td = link.RTT + bw.Seconds(m.ImageSize)
	}

	for _, in := range e.App.Inputs(m.Name) {
		fromDev := a.Device
		if pa, ok := e.Placed[in.From]; ok {
			fromDev = pa.Device
		}
		b.Tc += e.Cluster.Topology.TransferTime(fromDev, a.Device, in.Size)
	}
	if m.ExternalInput > 0 && e.Cluster.SourceNode != "" {
		b.Tc += e.Cluster.Topology.TransferTime(e.Cluster.SourceNode, a.Device, m.ExternalInput)
	}

	b.Tp = dev.ProcessingTime(m.Req.CPU)
	return b
}

func (e *legacyEstimator) Energy(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) units.Joules {
	b := e.estimate(m, a, co)
	dev := e.Cluster.Device(a.Device)
	pullW := dev.Power.Power("pulling", m.Name)
	recvW := dev.Power.Power("receiving", m.Name)
	procW := dev.Power.Power("processing", m.Name)
	return pullW.Over(b.Td) + recvW.Over(b.Tc) + procW.Over(b.Tp)
}

func (e *legacyEstimator) CompletionTime(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) float64 {
	b := e.estimate(m, a, co)
	return b.Td + b.Tc + b.Tp
}

func (e *legacyEstimator) Commit(name string, a sim.Assignment) { e.Placed[name] = a }

// --- legacy schedulers ---------------------------------------------------

type legacyScheduler struct {
	name     string
	schedule func(app *dag.App, cluster *sim.Cluster) (sim.Placement, error)
}

func legacyAll(seed int64) []legacyScheduler {
	return []legacyScheduler{
		{"deep", legacyDEEP},
		{"exclusive-hub", legacyExclusive("hub")},
		{"exclusive-regional", legacyExclusive("regional")},
		{"greedy-energy", legacyMyopic(func(e *legacyEstimator, m *dag.Microservice, a sim.Assignment) float64 {
			return float64(e.Energy(m, a, nil))
		})},
		{"min-ct", legacyMyopic(func(e *legacyEstimator, m *dag.Microservice, a sim.Assignment) float64 {
			return e.CompletionTime(m, a, nil)
		})},
		{"round-robin", legacyRoundRobin},
		{"random", legacyRandom(seed)},
	}
}

func legacyStages(app *dag.App) ([][]string, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app.Stages()
}

func legacyDEEP(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	stages, err := legacyStages(app)
	if err != nil {
		return nil, err
	}
	est := newLegacyEstimator(app, cluster)
	placement := make(sim.Placement, len(app.Microservices))
	for _, stage := range stages {
		names := append([]string(nil), stage...)
		sort.Strings(names)
		var assigned map[string]sim.Assignment
		switch len(names) {
		case 1:
			assigned, err = legacySolo(est, app.Microservice(names[0]))
		case 2:
			assigned, err = legacyPair(est, app.Microservice(names[0]), app.Microservice(names[1]))
		default:
			assigned, err = legacyBestResponse(est, app, names, nil)
		}
		if err != nil {
			return nil, err
		}
		for name, a := range assigned {
			placement[name] = a
			est.Commit(name, a)
		}
	}
	return placement, nil
}

func legacySolo(est *legacyEstimator, m *dag.Microservice) (map[string]sim.Assignment, error) {
	opts := est.Options(m)
	if len(opts) == 0 {
		return nil, infeasibleError{ms: m.Name}
	}
	devices, registries := legacyAxes(opts)
	feasible := make(map[sim.Assignment]bool, len(opts))
	for _, o := range opts {
		feasible[o] = true
	}
	worst := 0.0
	costs := make(map[sim.Assignment]float64, len(opts))
	for _, o := range opts {
		c := float64(est.Energy(m, o, nil))
		costs[o] = c
		if c > worst {
			worst = c
		}
	}
	a := game.NewMatrix(len(devices), len(registries))
	b := game.NewMatrix(len(devices), len(registries))
	for i, d := range devices {
		for j, r := range registries {
			o := sim.Assignment{Device: d, Registry: r}
			c, ok := costs[o]
			if !ok || !feasible[o] {
				c = worst * 10
			}
			a.Set(i, j, -c)
			b.Set(i, j, -c)
		}
	}
	g := game.New(a, b)
	best, ok := g.SelectEquilibrium(g.PureNash())
	if !ok {
		return nil, infeasibleError{ms: m.Name}
	}
	choice := sim.Assignment{Device: devices[best.RowSupport()[0]], Registry: registries[best.ColSupport()[0]]}
	if !feasible[choice] {
		return nil, infeasibleError{ms: m.Name}
	}
	return map[string]sim.Assignment{m.Name: choice}, nil
}

func legacyPair(est *legacyEstimator, m1, m2 *dag.Microservice) (map[string]sim.Assignment, error) {
	o1 := est.Options(m1)
	o2 := est.Options(m2)
	if len(o1) == 0 {
		return nil, infeasibleError{ms: m1.Name}
	}
	if len(o2) == 0 {
		return nil, infeasibleError{ms: m2.Name}
	}
	a := game.NewMatrix(len(o1), len(o2))
	b := game.NewMatrix(len(o1), len(o2))
	for i, x := range o1 {
		for j, y := range o2 {
			co := map[string]sim.Assignment{m1.Name: x, m2.Name: y}
			a.Set(i, j, -float64(est.Energy(m1, x, co)))
			b.Set(i, j, -float64(est.Energy(m2, y, co)))
		}
	}
	g := game.New(a, b)
	if best, ok := g.SelectEquilibrium(g.PureNash()); ok {
		return map[string]sim.Assignment{
			m1.Name: o1[best.RowSupport()[0]],
			m2.Name: o2[best.ColSupport()[0]],
		}, nil
	}
	p, err := g.LemkeHowsonAny()
	if err != nil {
		return nil, err
	}
	return map[string]sim.Assignment{
		m1.Name: o1[argmax(p.Row)],
		m2.Name: o2[argmax(p.Col)],
	}, nil
}

// legacyBestResponse runs the original synchronous best-response dynamics.
// Candidates are evaluated in place with set/restore — the satellite fix:
// the original cloned the whole co-assignment map per candidate, but the
// clone's only difference (the deciding microservice's own entry) is
// skipped by the contention scan, so the copy never changed a payoff.
// filter restricts each microservice's options (nil keeps all).
func legacyBestResponse(est *legacyEstimator, app *dag.App, names []string, filter func(sim.Assignment) bool) (map[string]sim.Assignment, error) {
	cur := make(map[string]sim.Assignment, len(names))
	optsOf := make(map[string][]sim.Assignment, len(names))
	for _, n := range names {
		m := app.Microservice(n)
		var opts []sim.Assignment
		for _, o := range est.Options(m) {
			if filter == nil || filter(o) {
				opts = append(opts, o)
			}
		}
		if len(opts) == 0 {
			return nil, infeasibleError{ms: n}
		}
		optsOf[n] = opts
		cur[n] = opts[0]
	}
	for iter := 0; iter < 100; iter++ {
		changed := false
		for _, n := range names {
			m := app.Microservice(n)
			prev := cur[n]
			best := prev
			bestC := float64(est.Energy(m, best, cur))
			for _, o := range optsOf[n] {
				cur[n] = o // in place; restored below
				if c := float64(est.Energy(m, o, cur)); c < bestC-1e-9 {
					best, bestC = o, c
				}
			}
			cur[n] = best
			if best != prev {
				changed = true
			}
		}
		if !changed {
			return cur, nil
		}
	}
	return cur, nil
}

func legacyExclusive(registry string) func(*dag.App, *sim.Cluster) (sim.Placement, error) {
	return func(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
		stages, err := legacyStages(app)
		if err != nil {
			return nil, err
		}
		est := newLegacyEstimator(app, cluster)
		placement := make(sim.Placement, len(app.Microservices))
		for _, stage := range stages {
			names := append([]string(nil), stage...)
			sort.Strings(names)
			cur, err := legacyBestResponse(est, app, names, func(o sim.Assignment) bool {
				return o.Registry == registry
			})
			if err != nil {
				return nil, err
			}
			for n, a := range cur {
				placement[n] = a
				est.Commit(n, a)
			}
		}
		return placement, nil
	}
}

func legacyTopo(app *dag.App) ([]string, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app.TopoOrder()
}

func legacyMyopic(cost func(*legacyEstimator, *dag.Microservice, sim.Assignment) float64) func(*dag.App, *sim.Cluster) (sim.Placement, error) {
	return func(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
		order, err := legacyTopo(app)
		if err != nil {
			return nil, err
		}
		est := newLegacyEstimator(app, cluster)
		placement := make(sim.Placement, len(order))
		for _, name := range order {
			m := app.Microservice(name)
			opts := est.Options(m)
			if len(opts) == 0 {
				return nil, infeasibleError{ms: name}
			}
			best := opts[0]
			bestC := cost(est, m, best)
			for _, o := range opts[1:] {
				if c := cost(est, m, o); c < bestC {
					best, bestC = o, c
				}
			}
			placement[name] = best
			est.Commit(name, best)
		}
		return placement, nil
	}
}

func legacyRoundRobin(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	order, err := legacyTopo(app)
	if err != nil {
		return nil, err
	}
	est := newLegacyEstimator(app, cluster)
	placement := make(sim.Placement, len(order))
	next := 0
	for _, name := range order {
		m := app.Microservice(name)
		opts := est.Options(m)
		if len(opts) == 0 {
			return nil, infeasibleError{ms: name}
		}
		devices, _ := legacyAxes(opts)
		dev := devices[next%len(devices)]
		next++
		for _, o := range opts {
			if o.Device == dev {
				placement[name] = o
				est.Commit(name, o)
				break
			}
		}
	}
	return placement, nil
}

func legacyRandom(seed int64) func(*dag.App, *sim.Cluster) (sim.Placement, error) {
	return func(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
		order, err := legacyTopo(app)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed))
		est := newLegacyEstimator(app, cluster)
		placement := make(sim.Placement, len(order))
		for _, name := range order {
			m := app.Microservice(name)
			opts := est.Options(m)
			if len(opts) == 0 {
				return nil, infeasibleError{ms: name}
			}
			o := opts[rng.Intn(len(opts))]
			placement[name] = o
			est.Commit(name, o)
		}
		return placement, nil
	}
}

func legacyAxes(opts []sim.Assignment) (devices, registries []string) {
	dset := map[string]bool{}
	rset := map[string]bool{}
	for _, o := range opts {
		dset[o.Device] = true
		rset[o.Registry] = true
	}
	for d := range dset {
		devices = append(devices, d)
	}
	for r := range rset {
		registries = append(registries, r)
	}
	sort.Strings(devices)
	sort.Strings(registries)
	return devices, registries
}

// --- the corpus ----------------------------------------------------------

type corpusCase struct {
	name    string
	app     *dag.App
	cluster *sim.Cluster
}

func equivalenceCorpus(t *testing.T) []corpusCase {
	t.Helper()
	var cases []corpusCase
	clusters := []struct {
		name string
		mk   func() *sim.Cluster
	}{
		{"testbed", workload.Testbed},
		{"scaled4", func() *sim.Cluster { return workload.ScaledTestbed(4) }},
	}
	for _, cl := range clusters {
		cases = append(cases,
			corpusCase{"video/" + cl.name, workload.VideoProcessing(), cl.mk()},
			corpusCase{"text/" + cl.name, workload.TextProcessing(), cl.mk()},
		)
		for _, size := range []int{5, 9, 13} {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := workload.DefaultGeneratorConfig(size, seed)
				cfg.StageWidth = 4 // stages wide enough to hit best-response
				app, err := workload.Generate(cfg)
				if err != nil {
					t.Fatalf("generate size=%d seed=%d: %v", size, seed, err)
				}
				cases = append(cases, corpusCase{
					fmt.Sprintf("synthetic%d-%d/%s", size, seed, cl.name), app, cl.mk(),
				})
			}
		}
	}
	return cases
}

// TestEquivalenceCorpusPlacements: every scheduler, on every corpus case,
// must produce a placement byte-identical to the legacy implementation's.
func TestEquivalenceCorpusPlacements(t *testing.T) {
	const seed = 1
	for _, c := range equivalenceCorpus(t) {
		legacy := legacyAll(seed)
		for i, s := range All(seed) {
			ref := legacy[i]
			if ref.name != s.Name() {
				t.Fatalf("scheduler order mismatch: %s vs %s", ref.name, s.Name())
			}
			want, wantErr := ref.schedule(c.app, c.cluster)
			got, gotErr := s.Schedule(c.app, c.cluster)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%s: error mismatch: legacy=%v new=%v", c.name, s.Name(), wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("%s/%s: placement size %d, legacy %d", c.name, s.Name(), len(got), len(want))
			}
			for name, w := range want {
				if g, ok := got[name]; !ok || g != w {
					t.Errorf("%s/%s: %s placed on %s/%s, legacy %s/%s",
						c.name, s.Name(), name, g.Device, g.Registry, w.Device, w.Registry)
				}
			}
		}
	}
}

// TestEquivalenceCorpusEstimator: Energy and CompletionTime must be
// bit-identical to the legacy estimator for every option — solo, under full
// stage co-assignment, and with earlier stages committed.
func TestEquivalenceCorpusEstimator(t *testing.T) {
	for _, c := range equivalenceCorpus(t) {
		ref := newLegacyEstimator(c.app, c.cluster)
		est := NewEstimator(c.app, c.cluster)
		stages, err := legacyStages(c.app)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		placement, err := legacyDEEP(c.app, c.cluster)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		for _, stage := range stages {
			co := make(map[string]sim.Assignment, len(stage))
			for _, n := range stage {
				co[n] = placement[n]
			}
			for _, n := range stage {
				m := c.app.Microservice(n)
				refOpts := ref.Options(m)
				gotOpts := est.Options(m)
				if len(refOpts) != len(gotOpts) {
					t.Fatalf("%s/%s: %d options, legacy %d", c.name, n, len(gotOpts), len(refOpts))
				}
				for i, o := range refOpts {
					if gotOpts[i] != o {
						t.Fatalf("%s/%s: option %d = %v, legacy %v", c.name, n, i, gotOpts[i], o)
					}
					if w, g := ref.Energy(m, o, nil), est.Energy(m, o, nil); w != g {
						t.Errorf("%s/%s/%v: solo energy %v, legacy %v", c.name, n, o, g, w)
					}
					if w, g := ref.Energy(m, o, co), est.Energy(m, o, co); w != g {
						t.Errorf("%s/%s/%v: staged energy %v, legacy %v", c.name, n, o, g, w)
					}
					if w, g := ref.CompletionTime(m, o, co), est.CompletionTime(m, o, co); w != g {
						t.Errorf("%s/%s/%v: CT %v, legacy %v", c.name, n, o, g, w)
					}
				}
			}
			for _, n := range stage {
				ref.Commit(n, placement[n])
				est.Commit(n, placement[n])
			}
		}
	}
}
