package sched

import (
	"fmt"

	"deep/internal/dag"
	"deep/internal/sim"
)

// Scheduler produces a placement — a (device, registry) assignment per
// microservice — for an application on a cluster.
type Scheduler interface {
	// Name identifies the scheduling method in reports.
	Name() string
	// Schedule computes the placement. Implementations must be
	// deterministic for a fixed input (randomized baselines take a seed at
	// construction).
	Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error)
}

// ErrInfeasible is wrapped by schedulers when a microservice has no feasible
// (device, registry) option.
type infeasibleError struct{ ms string }

func (e infeasibleError) Error() string {
	return fmt.Sprintf("sched: no feasible assignment for microservice %q", e.ms)
}

// stagesOf returns the barrier stages, surfacing validation errors.
func stagesOf(app *dag.App) ([][]string, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app.Stages()
}

// All returns every scheduler the benchmark harness compares, with the given
// seed for the randomized baseline.
func All(seed int64) []Scheduler {
	return []Scheduler{
		NewDEEP(),
		NewExclusive("hub"),
		NewExclusive("regional"),
		NewGreedyEnergy(),
		NewMinCompletionTime(),
		NewRoundRobin(),
		NewRandom(seed),
	}
}
