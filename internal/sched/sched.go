package sched

import (
	"fmt"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
)

// Scheduler produces a placement — a (device, registry) assignment per
// microservice — for an application on a cluster.
type Scheduler interface {
	// Name identifies the scheduling method in reports.
	Name() string
	// Schedule computes the placement. Implementations must be
	// deterministic for a fixed input (randomized baselines take a seed at
	// construction).
	Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error)
}

// ModelScheduler is a Scheduler that can run directly on a pre-compiled
// cost model, skipping the per-request compilation step for repeated
// (app, cluster) shapes — the fleet's workers memoize compiled models per
// request fingerprint and take this path. Every scheduler in this package
// implements it; Schedule(app, cluster) is always equivalent to
// ScheduleModel(costmodel.Compile(app, cluster)).
type ModelScheduler interface {
	Scheduler
	// ScheduleModel computes the placement on a compiled model. The model
	// is read-only during the call and may be shared across sequential
	// calls (each call allocates its own scratch State).
	ScheduleModel(model *costmodel.Model) (sim.Placement, error)
}

// PassScheduler is a ModelScheduler that can additionally run on a
// caller-owned reusable Pass, writing the placement into the pass's scratch
// instead of allocating fresh state per call. The fleet's workers pool one
// Pass per compiled model and take this path, making repeated warm
// scheduling passes allocation-free (placement materialization aside).
type PassScheduler interface {
	ModelScheduler
	// ScheduleInto runs one pass over the Pass's model. Read the placement
	// back via Pass.Placement or Pass.Assigned.
	ScheduleInto(p *Pass) error
}

// ErrInfeasible is wrapped by schedulers when a microservice has no feasible
// (device, registry) option.
type infeasibleError struct{ ms string }

func (e infeasibleError) Error() string {
	return fmt.Sprintf("sched: no feasible assignment for microservice %q", e.ms)
}

// All returns every scheduler the benchmark harness compares, with the given
// seed for the randomized baseline.
func All(seed int64) []Scheduler {
	return []Scheduler{
		NewDEEP(),
		NewExclusive("hub"),
		NewExclusive("regional"),
		NewGreedyEnergy(),
		NewMinCompletionTime(),
		NewRoundRobin(),
		NewRandom(seed),
	}
}
