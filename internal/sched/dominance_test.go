package sched

import (
	"testing"

	"deep/internal/costmodel"
	"deep/internal/sim"
	"deep/internal/workload"
)

// TestDominanceWindowMatchesExactPerStage walks the pair-cap corpus stage by
// stage (committing the exact scheduler's choices so both paths see the same
// upstream contention) and checks the IESDS contract at every over-cap pair
// stage: whenever schedulePairReduced reports solved, its assignment must be
// exactly the full game's — dominance elimination never removes a Nash
// equilibrium and the compaction preserves the welfare-max scan order.
func TestDominanceWindowMatchesExactPerStage(t *testing.T) {
	apps, cluster := pairCapCorpus(t)
	const cap = 32 // scaled4 pair games are 16x16 = 256 cells, so this trips
	solved, fellBack := 0, 0
	for _, app := range apps {
		model := costmodel.Compile(app, cluster)
		stages, err := model.Stages()
		if err != nil {
			t.Fatal(err)
		}
		st := model.NewState()
		st.Reset()
		for _, stage := range stages {
			assigned := make([]costmodel.Option, len(stage))
			opts := make([][]costmodel.Option, len(stage))
			for k, ms := range stage {
				opts[k] = model.Options(ms)
			}
			switch {
			case len(stage) == 1:
				if assigned[0], err = scheduleSolo(model, st, stage[0]); err != nil {
					t.Fatalf("%s: solo: %v", app.Name, err)
				}
			case len(stage) == 2:
				if len(opts[0])*len(opts[1]) > cap {
					r1, r2, ok, err := schedulePairReduced(model, st, stage[0], stage[1], cap)
					if err != nil {
						t.Fatalf("%s: reduced pair: %v", app.Name, err)
					}
					e1, e2, err := schedulePair(model, st, stage[0], stage[1])
					if err != nil {
						t.Fatalf("%s: exact pair: %v", app.Name, err)
					}
					if ok {
						solved++
						if r1 != e1 || r2 != e2 {
							t.Errorf("%s: stage (%s, %s): reduced game picked (%v, %v), exact game (%v, %v)",
								app.Name, model.MSName(stage[0]), model.MSName(stage[1]), r1, r2, e1, e2)
						}
					} else {
						fellBack++
					}
					assigned[0], assigned[1] = e1, e2
				} else if assigned[0], assigned[1], err = schedulePair(model, st, stage[0], stage[1]); err != nil {
					t.Fatalf("%s: pair: %v", app.Name, err)
				}
			default:
				for k := range stage {
					assigned[k] = opts[k][0]
				}
				bestResponse(st, stage, opts, assigned)
			}
			for k, ms := range stage {
				st.Commit(ms, assigned[k])
			}
		}
	}
	if solved == 0 {
		t.Fatalf("no over-cap pair stage reduced under the cap (%d fell back); test is vacuous", fellBack)
	}
	t.Logf("dominance window solved %d over-cap pair stages exactly, %d fell back to dynamics", solved, fellBack)
}

// TestDominanceWindowFeasibleAndBounded runs the full scheduler with a tiny
// cap and the window open over it: placements must validate against the
// cluster and stay within the same simulated-energy envelope the pure
// best-response fallback is held to — the window can only replace fallback
// answers with exact ones, never worse.
func TestDominanceWindowFeasibleAndBounded(t *testing.T) {
	apps, cluster := pairCapCorpus(t)
	windowed := &DEEP{MaxPairCells: 32, DominancePairCells: 4096}
	exact := NewDEEPUncapped()
	for _, app := range apps {
		model := costmodel.Compile(app, cluster)
		got, err := windowed.ScheduleModel(model)
		if err != nil {
			t.Fatalf("%s: windowed: %v", app.Name, err)
		}
		if err := cluster.Validate(app, got); err != nil {
			t.Errorf("%s: windowed placement infeasible: %v", app.Name, err)
			continue
		}
		want, err := exact.ScheduleModel(model)
		if err != nil {
			t.Fatalf("%s: uncapped: %v", app.Name, err)
		}
		gotRes, err := sim.Run(app, cluster, got, sim.Options{})
		if err != nil {
			t.Fatalf("%s: simulating windowed placement: %v", app.Name, err)
		}
		wantRes, err := sim.Run(app, cluster, want, sim.Options{})
		if err != nil {
			t.Fatalf("%s: simulating exact placement: %v", app.Name, err)
		}
		ratio := float64(gotRes.TotalEnergy) / float64(wantRes.TotalEnergy)
		if ratio > 1.10 {
			t.Errorf("%s: windowed energy %.1fJ is %.3fx the exact game's %.1fJ",
				app.Name, float64(gotRes.TotalEnergy), ratio, float64(wantRes.TotalEnergy))
		}
	}
}

// TestDominanceWindowWarmPassAllocationFree extends the zero-alloc warm-pass
// guarantee to the IESDS rescue path: pricing the full bimatrix, reducing it
// in place, and solving the survivors all run on arena scratch.
func TestDominanceWindowWarmPassAllocationFree(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig(9, 7)
	cfg.StageWidth = 2
	app, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := &DEEP{MaxPairCells: 32, DominancePairCells: 4096}
	model := costmodel.Compile(app, workload.ScaledTestbed(4))
	p := NewPass(model)
	if err := s.ScheduleInto(p); err != nil { // warm up arena and scratch
		t.Fatal(err)
	}
	want := p.Placement()
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.ScheduleInto(p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm windowed pass allocates %.1f objects per run", allocs)
	}
	for name, w := range want {
		if got := p.Placement()[name]; got != w {
			t.Errorf("repeated windowed pass moved %s", name)
		}
	}
}
