package sched

// Fused-compile equivalence: costmodel.CompileShapeOn emits the cost model
// and the simulator plan in one walk over the shared (AppTable,
// ClusterTable) substrates, with the model's per-(microservice, device)
// rows aliased to the plan's. This file pins that fusion bit-identical to
// the legacy wrappers (costmodel.Compile, sim.CompilePlan) — which the
// corpora in this package and internal/sim in turn pin to the original
// string-keyed implementations — so the fleet's fused cold path provably
// changes nothing but time: byte-identical placements from all seven
// schedulers, bit-identical simulation results (exact float equality),
// and verbatim error parity on structurally invalid applications.

import (
	"fmt"
	"reflect"
	"testing"

	"deep/internal/appgraph"
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
	"deep/internal/workload"
)

// fusedCorpus mirrors equivalenceCorpus but keeps the cluster constructor:
// simulation mutates device layer caches, so the legacy and fused sides
// must each run on a private, identically-built cluster.
func fusedCorpus(t *testing.T) []struct {
	name string
	app  *dag.App
	mk   func() *sim.Cluster
} {
	t.Helper()
	type tc = struct {
		name string
		app  *dag.App
		mk   func() *sim.Cluster
	}
	var cases []tc
	clusters := []struct {
		name string
		mk   func() *sim.Cluster
	}{
		{"testbed", workload.Testbed},
		{"scaled4", func() *sim.Cluster { return workload.ScaledTestbed(4) }},
	}
	for _, cl := range clusters {
		cases = append(cases,
			tc{"video/" + cl.name, workload.VideoProcessing(), cl.mk},
			tc{"text/" + cl.name, workload.TextProcessing(), cl.mk},
		)
		for _, size := range []int{5, 9, 13} {
			for seed := int64(1); seed <= 2; seed++ {
				cfg := workload.DefaultGeneratorConfig(size, seed)
				cfg.StageWidth = 4
				app, err := workload.Generate(cfg)
				if err != nil {
					t.Fatalf("generate size=%d seed=%d: %v", size, seed, err)
				}
				cases = append(cases, tc{fmt.Sprintf("synthetic%d-%d/%s", size, seed, cl.name), app, cl.mk})
			}
		}
	}
	return cases
}

// TestFusedCompileMatchesLegacyWrappers pins the fused compile against the
// legacy wrappers across the corpus: every scheduler's placement
// byte-identical on the fused model, and the simulator bit-identical on the
// fused plan over jitter-off, jitter-on, and warm-cache runs.
func TestFusedCompileMatchesLegacyWrappers(t *testing.T) {
	const seed = 99
	for _, c := range fusedCorpus(t) {
		t.Run(c.name, func(t *testing.T) {
			clusterL, clusterF := c.mk(), c.mk()

			legacyModel := costmodel.Compile(c.app, clusterL)
			legacyPlan := sim.CompilePlan(c.app, clusterL)

			at := appgraph.Compile(c.app)
			fusedModel, fusedPlan := costmodel.CompileShapeOn(at, clusterF, sim.CompileClusterTable(clusterF))

			legacyScheds, fusedScheds := All(seed), All(seed)
			var placement sim.Placement
			for i, ls := range legacyScheds {
				lm, ok := ls.(ModelScheduler)
				if !ok {
					t.Fatalf("%s is not a ModelScheduler", ls.Name())
				}
				fm := fusedScheds[i].(ModelScheduler)
				want, errL := lm.ScheduleModel(legacyModel)
				got, errF := fm.ScheduleModel(fusedModel)
				if (errL == nil) != (errF == nil) {
					t.Fatalf("%s: error mismatch: legacy %v, fused %v", ls.Name(), errL, errF)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s: fused placement diverges\nlegacy: %v\nfused:  %v", ls.Name(), want, got)
				}
				if placement == nil {
					placement = want
				}
			}

			execL, execF := sim.NewExec(), sim.NewExec()
			for run, opts := range []sim.Options{
				{},
				{Seed: 7, Jitter: 0.02},
				{Seed: 7, Jitter: 0.02, WarmCaches: true},
			} {
				want, errL := execL.Run(legacyPlan, placement, opts)
				got, errF := execF.Run(fusedPlan, placement, opts)
				if errL != nil || errF != nil {
					t.Fatalf("run %d: legacy err %v, fused err %v", run, errL, errF)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("run %d (opts %+v): fused result diverges\nlegacy: %+v\nfused:  %+v", run, opts, want, got)
				}
			}
		})
	}
}

// TestFusedCompileInvalidAppParity: structurally broken applications surface
// the same error values from the fused compile as from the legacy wrappers
// — schedulers and simulator alike.
func TestFusedCompileInvalidAppParity(t *testing.T) {
	mkCyclic := func() *dag.App {
		a := dag.NewApp("cyclic")
		for _, n := range []string{"x", "y"} {
			if err := a.AddMicroservice(&dag.Microservice{Name: n}); err != nil {
				t.Fatal(err)
			}
		}
		for _, e := range [][2]string{{"x", "y"}, {"y", "x"}} {
			if err := a.AddDataflow(e[0], e[1], 0); err != nil {
				t.Fatal(err)
			}
		}
		return a
	}
	mkDisconnected := func() *dag.App {
		a := dag.NewApp("split")
		for _, n := range []string{"a", "b", "c"} {
			if err := a.AddMicroservice(&dag.Microservice{Name: n}); err != nil {
				t.Fatal(err)
			}
		}
		if err := a.AddDataflow("a", "b", 0); err != nil {
			t.Fatal(err)
		}
		return a
	}
	mkDupNames := func() *dag.App {
		return &dag.App{Name: "dups", Microservices: []*dag.Microservice{
			{Name: "dup"}, {Name: "dup"},
		}}
	}

	for _, bad := range []struct {
		name string
		mk   func() *dag.App
	}{
		{"cyclic", mkCyclic},
		{"disconnected", mkDisconnected},
		{"duplicate-names", mkDupNames},
	} {
		t.Run(bad.name, func(t *testing.T) {
			app := bad.mk()
			cluster := workload.Testbed()

			legacyModel := costmodel.Compile(app, cluster)
			legacyPlan := sim.CompilePlan(app, cluster)
			fusedModel, fusedPlan := costmodel.CompileShapeOn(
				appgraph.Compile(app), cluster, sim.CompileClusterTable(cluster))

			_, wantStagesErr := legacyModel.Stages()
			_, gotStagesErr := fusedModel.Stages()
			if wantStagesErr == nil || gotStagesErr != wantStagesErr {
				t.Fatalf("Stages error not verbatim: legacy %v, fused %v", wantStagesErr, gotStagesErr)
			}
			_, wantTopoErr := legacyModel.Topo()
			_, gotTopoErr := fusedModel.Topo()
			if wantTopoErr == nil || gotTopoErr != wantTopoErr {
				t.Fatalf("Topo error not verbatim: legacy %v, fused %v", wantTopoErr, gotTopoErr)
			}

			for i, s := range All(1) {
				ms := s.(ModelScheduler)
				_, errL := ms.ScheduleModel(legacyModel)
				_, errF := All(1)[i].(ModelScheduler).ScheduleModel(fusedModel)
				if errL == nil || errF == nil {
					t.Fatalf("%s scheduled a broken app: legacy %v, fused %v", s.Name(), errL, errF)
				}
				if errL.Error() != errF.Error() {
					t.Fatalf("%s error diverges: legacy %q, fused %q", s.Name(), errL, errF)
				}
			}

			exec := sim.NewExec()
			_, errL := exec.Run(legacyPlan, sim.Placement{}, sim.Options{})
			_, errF := exec.Run(fusedPlan, sim.Placement{}, sim.Options{})
			if errL == nil || errF != errL {
				t.Fatalf("sim error not verbatim: legacy %v, fused %v", errL, errF)
			}
		})
	}
}
