package sched

import (
	"testing"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
	"deep/internal/workload"
)

// TestUncappedDEEPMatchesLegacy pins that MaxPairCells=0 (uncapped)
// reproduces the historical placements byte-for-byte on the whole
// equivalence corpus — the batch-priced, arena-backed game layer changed
// the mechanics, not the math.
func TestUncappedDEEPMatchesLegacy(t *testing.T) {
	for _, c := range equivalenceCorpus(t) {
		want, wantErr := legacyDEEP(c.app, c.cluster)
		got, gotErr := NewDEEPUncapped().Schedule(c.app, c.cluster)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: error mismatch: legacy=%v uncapped=%v", c.name, wantErr, gotErr)
		}
		if wantErr != nil {
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: placement size %d, legacy %d", c.name, len(got), len(want))
		}
		for name, w := range want {
			if g := got[name]; g != w {
				t.Errorf("%s: %s placed on %s/%s, legacy %s/%s",
					c.name, name, g.Device, g.Registry, w.Device, w.Registry)
			}
		}
	}
}

// pairCapCorpus generates seeded synthetic apps whose stages are at most
// pairs, on a scaled cluster big enough that a small cap forces the
// fallback.
func pairCapCorpus(t *testing.T) ([]*dag.App, *sim.Cluster) {
	t.Helper()
	var apps []*dag.App
	for _, size := range []int{6, 9, 13} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg := workload.DefaultGeneratorConfig(size, seed)
			cfg.StageWidth = 2 // force solo and pair stages only
			app, err := workload.Generate(cfg)
			if err != nil {
				t.Fatalf("generate size=%d seed=%d: %v", size, seed, err)
			}
			apps = append(apps, app)
		}
	}
	return apps, workload.ScaledTestbed(4)
}

// TestPairCapFallbackFeasibleAndBounded: with the cap forcing every pair
// stage onto best-response dynamics, placements must still validate against
// the cluster and land within a bounded simulated-energy ratio of the exact
// pair game's placements.
func TestPairCapFallbackFeasibleAndBounded(t *testing.T) {
	apps, cluster := pairCapCorpus(t)
	const cap = 32 // scaled4 pair games are 16×16 = 256 cells, so this trips
	capped := &DEEP{MaxPairCells: cap}
	exact := NewDEEPUncapped()

	tripped := false
	for _, app := range apps {
		model := costmodel.Compile(app, cluster)
		stages, err := model.Stages()
		if err != nil {
			t.Fatal(err)
		}
		for _, stage := range stages {
			if len(stage) == 2 &&
				len(model.Options(stage[0]))*len(model.Options(stage[1])) > cap {
				tripped = true
			}
		}

		got, err := capped.ScheduleModel(model)
		if err != nil {
			t.Fatalf("%s: capped: %v", app.Name, err)
		}
		if err := cluster.Validate(app, got); err != nil {
			t.Errorf("%s: capped placement infeasible: %v", app.Name, err)
			continue
		}
		want, err := exact.ScheduleModel(model)
		if err != nil {
			t.Fatalf("%s: uncapped: %v", app.Name, err)
		}

		gotRes, err := sim.Run(app, cluster, got, sim.Options{})
		if err != nil {
			t.Fatalf("%s: simulating capped placement: %v", app.Name, err)
		}
		wantRes, err := sim.Run(app, cluster, want, sim.Options{})
		if err != nil {
			t.Fatalf("%s: simulating exact placement: %v", app.Name, err)
		}
		ratio := float64(gotRes.TotalEnergy) / float64(wantRes.TotalEnergy)
		if ratio > 1.10 {
			t.Errorf("%s: capped fallback energy %.1fJ is %.3fx the exact game's %.1fJ",
				app.Name, float64(gotRes.TotalEnergy), ratio, float64(wantRes.TotalEnergy))
		}
	}
	if !tripped {
		t.Fatal("corpus never exceeded the pair-game cap; test is vacuous")
	}
}

// TestDefaultCapLeavesTestbedExact: on the paper's testbed the default cap
// never trips, so NewDEEP and NewDEEPUncapped agree exactly.
func TestDefaultCapLeavesTestbedExact(t *testing.T) {
	cluster := workload.Testbed()
	for _, app := range workload.Apps() {
		want, err := NewDEEPUncapped().Schedule(app, cluster)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewDEEP().Schedule(app, cluster)
		if err != nil {
			t.Fatal(err)
		}
		for name, w := range want {
			if got[name] != w {
				t.Errorf("%s: %s differs under default cap", app.Name, name)
			}
		}
	}
}

// TestWarmPassAllocationFree extends the costmodel steady-state guarantee
// to a full DEEP warm pass — solo games, pair games, and best-response
// dynamics included: scheduling the case-study apps (and a wide synthetic
// one) on a reused Pass allocates nothing.
func TestWarmPassAllocationFree(t *testing.T) {
	cfg := workload.DefaultGeneratorConfig(12, 42)
	cfg.StageWidth = 4
	synth, err := workload.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		app     *dag.App
		cluster *sim.Cluster
	}{
		{"video/testbed", workload.VideoProcessing(), workload.Testbed()},
		{"text/testbed", workload.TextProcessing(), workload.Testbed()},
		{"synthetic12/scaled4", synth, workload.ScaledTestbed(4)},
	}
	for _, c := range cases {
		s := NewDEEP()
		model := costmodel.Compile(c.app, c.cluster)
		p := NewPass(model)
		if err := s.ScheduleInto(p); err != nil { // warm up arena and scratch
			t.Fatalf("%s: %v", c.name, err)
		}
		want := p.Placement()
		allocs := testing.AllocsPerRun(50, func() {
			if err := s.ScheduleInto(p); err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: warm pass allocates %.1f objects per run", c.name, allocs)
		}
		for name, w := range want {
			if got := p.Placement()[name]; got != w {
				t.Errorf("%s: repeated pass moved %s", c.name, name)
			}
		}
	}
}
