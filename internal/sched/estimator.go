// Package sched implements DEEP's scheduling layer: the Nash-game-based
// scheduler of the paper's Section III-E, which jointly picks the executing
// device sched(m_i) and the source registry regist(m_i) for every
// microservice to minimize total energy, plus the baselines the evaluation
// compares against (exclusively Docker Hub, exclusively regional, greedy,
// HEFT-like, round-robin, random).
//
// All schedulers run on the compiled, integer-indexed cost model of
// internal/costmodel: Schedule compiles the (app, cluster) pair and
// delegates to ScheduleModel, which works entirely in dense arrays — fleet
// workers cache compiled models per request fingerprint and skip the
// compilation step for repeated shapes.
package sched

import (
	"fmt"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sim"
	"deep/internal/units"
)

// Estimator prices candidate assignments using the same models the
// simulator executes: deployment time from the registry link (with setup
// cost and shared-capacity contention), dataflow transfer from the upstream
// devices, processing time from the device speed, and energy from the
// device's power model.
//
// It is a thin string-keyed front-end over the compiled cost model:
// construction compiles the (app, cluster) pair once, and every query
// translates names to integer indices before delegating to the
// allocation-free core. Microservices, devices, and registries named in
// queries must belong to the app and cluster the estimator was built for.
type Estimator struct {
	App     *dag.App
	Cluster *sim.Cluster

	model *costmodel.Model
	state *costmodel.State
	coMS  []int32
	coOpt []costmodel.Option
}

// NewEstimator compiles the pair and returns an estimator with an empty
// partial placement.
func NewEstimator(app *dag.App, cluster *sim.Cluster) *Estimator {
	return NewEstimatorFor(costmodel.Compile(app, cluster))
}

// NewEstimatorFor wraps an already-compiled model, sharing its immutable
// tables (fleet workers reuse one model across many requests).
func NewEstimatorFor(m *costmodel.Model) *Estimator {
	return &Estimator{App: m.App, Cluster: m.Cluster, model: m, state: m.NewState()}
}

// Model exposes the compiled cost model backing this estimator.
func (e *Estimator) Model() *costmodel.Model { return e.model }

// Options enumerates the feasible (device, registry) assignments for a
// microservice, ordered deterministically (device name, then registry
// name). The order is fixed at compile time, so repeated calls return the
// same cached slice — callers must not mutate it.
func (e *Estimator) Options(m *dag.Microservice) []sim.Assignment {
	id, ok := e.model.MSID(m.Name)
	if !ok {
		return nil
	}
	return e.model.Assignments(id)
}

// intern translates a query to compiled form, panicking on a microservice
// outside the compiled app — the legacy estimator failed loudly there too
// (nil-device dereference) rather than returning a plausible wrong number.
// Co-assignment entries naming unknown microservices or devices are
// ignored.
func (e *Estimator) intern(m *dag.Microservice, co map[string]sim.Assignment) (int32, []int32, []costmodel.Option) {
	id, ok := e.model.MSID(m.Name)
	if !ok {
		panic(fmt.Sprintf("sched: estimator query for microservice %q outside the compiled app", m.Name))
	}
	e.coMS = e.coMS[:0]
	e.coOpt = e.coOpt[:0]
	for name, oa := range co {
		cid, ok := e.model.MSID(name)
		if !ok {
			continue
		}
		io, ok := e.model.Intern(oa)
		if !ok {
			continue
		}
		e.coMS = append(e.coMS, cid)
		e.coOpt = append(e.coOpt, io)
	}
	return id, e.coMS, e.coOpt
}

// Energy estimates EC(m_i, r_g, d_j): the device's total draw across the
// deployment, transfer, and processing phases. co gives the same-stage
// assignments of the other microservices (used for shared-registry
// contention).
func (e *Estimator) Energy(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) units.Joules {
	id, coMS, coOpt := e.intern(m, co)
	return units.Joules(e.state.Energy(id, e.internAssignment(a), coMS, coOpt))
}

// CompletionTime estimates CT(m_i, r_g, d_j) = Td + Tc + Tp.
func (e *Estimator) CompletionTime(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) float64 {
	id, coMS, coOpt := e.intern(m, co)
	return e.state.CompletionTime(id, e.internAssignment(a), coMS, coOpt)
}

// internAssignment converts the queried assignment, panicking on names
// outside the compiled cluster (the legacy equivalent was a nil-device
// dereference).
func (e *Estimator) internAssignment(a sim.Assignment) costmodel.Option {
	o, ok := e.model.Intern(a)
	if !ok {
		panic(fmt.Sprintf("sched: estimator query for assignment %s/%s outside the compiled cluster", a.Device, a.Registry))
	}
	return o
}

// Commit fixes the assignment of a microservice for later stages.
func (e *Estimator) Commit(name string, a sim.Assignment) {
	id, ok := e.model.MSID(name)
	if !ok {
		return
	}
	o, ok := e.model.Intern(a)
	if !ok {
		return
	}
	e.state.Commit(id, o)
}
