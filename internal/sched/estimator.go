// Package sched implements DEEP's scheduling layer: the Nash-game-based
// scheduler of the paper's Section III-E, which jointly picks the executing
// device sched(m_i) and the source registry regist(m_i) for every
// microservice to minimize total energy, plus the baselines the evaluation
// compares against (exclusively Docker Hub, exclusively regional, greedy,
// HEFT-like, round-robin, random).
package sched

import (
	"sort"

	"deep/internal/dag"
	"deep/internal/energy"
	"deep/internal/sim"
	"deep/internal/units"
)

// Estimator prices candidate assignments using the same models the
// simulator executes: deployment time from the registry link (with setup
// cost and shared-capacity contention), dataflow transfer from the upstream
// devices, processing time from the device speed, and energy from the
// device's power model.
type Estimator struct {
	App     *dag.App
	Cluster *sim.Cluster
	// Placed holds the assignments fixed so far (all earlier stages).
	Placed sim.Placement
}

// NewEstimator returns an estimator with an empty partial placement.
func NewEstimator(app *dag.App, cluster *sim.Cluster) *Estimator {
	return &Estimator{App: app, Cluster: cluster, Placed: make(sim.Placement)}
}

// Options enumerates the feasible (device, registry) assignments for a
// microservice, ordered deterministically (device name, then registry name).
func (e *Estimator) Options(m *dag.Microservice) []sim.Assignment {
	var out []sim.Assignment
	for _, d := range e.Cluster.Devices {
		if d.CanRun(m) != nil {
			continue
		}
		for _, r := range e.Cluster.Registries {
			if _, ok := e.Cluster.Topology.LinkBetween(r.Node, d.Name); !ok {
				continue
			}
			out = append(out, sim.Assignment{Device: d.Name, Registry: r.Name})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Device != out[j].Device {
			return out[i].Device < out[j].Device
		}
		return out[i].Registry < out[j].Registry
	})
	return out
}

// breakdown carries the phase estimates for one candidate assignment.
type breakdown struct {
	Td, Tc, Tp float64
}

// estimate computes the phase times for m under assignment a, with co
// giving the same-stage assignments of the other microservices (used for
// shared-registry contention).
func (e *Estimator) estimate(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) breakdown {
	reg, _ := e.Cluster.Registry(a.Registry)
	dev := e.Cluster.Device(a.Device)

	var b breakdown
	link, ok := e.Cluster.Topology.LinkBetween(reg.Node, a.Device)
	if ok {
		bw := link.BW
		if reg.Shared {
			// Count the distinct devices pulling from this registry in the
			// stage, including ourselves.
			devs := map[string]bool{a.Device: true}
			for other, oa := range co {
				if other == m.Name {
					continue
				}
				if oa.Registry == a.Registry {
					devs[oa.Device] = true
				}
			}
			if n := len(devs); n > 1 {
				bw = link.BW / units.Bandwidth(n)
			}
		}
		b.Td = link.RTT + bw.Seconds(m.ImageSize)
	}

	for _, in := range e.App.Inputs(m.Name) {
		fromDev := a.Device // unplaced upstream defaults to co-location
		if pa, ok := e.Placed[in.From]; ok {
			fromDev = pa.Device
		}
		b.Tc += e.Cluster.Topology.TransferTime(fromDev, a.Device, in.Size)
	}
	if m.ExternalInput > 0 && e.Cluster.SourceNode != "" {
		b.Tc += e.Cluster.Topology.TransferTime(e.Cluster.SourceNode, a.Device, m.ExternalInput)
	}

	b.Tp = dev.ProcessingTime(m.Req.CPU)
	return b
}

// Energy estimates EC(m_i, r_g, d_j): the device's total draw across the
// deployment, transfer, and processing phases.
func (e *Estimator) Energy(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) units.Joules {
	b := e.estimate(m, a, co)
	dev := e.Cluster.Device(a.Device)
	pullW := dev.Power.Power(energy.Pulling, m.Name)
	recvW := dev.Power.Power(energy.Receiving, m.Name)
	procW := dev.Power.Power(energy.Processing, m.Name)
	return pullW.Over(b.Td) + recvW.Over(b.Tc) + procW.Over(b.Tp)
}

// CompletionTime estimates CT(m_i, r_g, d_j) = Td + Tc + Tp.
func (e *Estimator) CompletionTime(m *dag.Microservice, a sim.Assignment, co map[string]sim.Assignment) float64 {
	b := e.estimate(m, a, co)
	return b.Td + b.Tc + b.Tp
}

// Commit fixes the assignment of a microservice for later stages.
func (e *Estimator) Commit(name string, a sim.Assignment) { e.Placed[name] = a }
