// Package netsim models the network channels of the paper's Section III-B:
// nodes interconnected by bandwidth-limited links (RTT neglected, as in the
// paper), including a fair-share model for concurrent transfers over a
// shared capacity — the congestion effect that makes hybrid registry
// selection a non-trivial game.
package netsim

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"deep/internal/units"
)

// Link is a directed network channel h_kj with a bandwidth.
type Link struct {
	From, To string
	BW       units.Bandwidth
	// SharedCapacity marks the link's source as a shared uplink: all
	// concurrent transfers from the same source divide BW fairly. This
	// models a single regional registry server's NIC.
	SharedCapacity bool
	// RTT in seconds; the paper neglects it (default 0), but the model
	// supports it for sensitivity studies.
	RTT float64
}

// Topology is a set of named nodes and directed links.
type Topology struct {
	mu    sync.RWMutex
	nodes map[string]bool
	links map[[2]string]Link
}

// NewTopology returns an empty topology.
func NewTopology() *Topology {
	return &Topology{nodes: make(map[string]bool), links: make(map[[2]string]Link)}
}

// AddNode registers a node; re-adding is a no-op.
func (t *Topology) AddNode(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[name] = true
}

// Nodes returns the sorted node names.
func (t *Topology) Nodes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// AddLink registers a directed link between existing nodes.
func (t *Topology) AddLink(l Link) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.nodes[l.From] {
		return fmt.Errorf("netsim: unknown node %q", l.From)
	}
	if !t.nodes[l.To] {
		return fmt.Errorf("netsim: unknown node %q", l.To)
	}
	if l.BW <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth on %s->%s", l.From, l.To)
	}
	t.links[[2]string{l.From, l.To}] = l
	return nil
}

// AddDuplex registers links in both directions with the same bandwidth.
func (t *Topology) AddDuplex(a, b string, bw units.Bandwidth) error {
	if err := t.AddLink(Link{From: a, To: b, BW: bw}); err != nil {
		return err
	}
	return t.AddLink(Link{From: b, To: a, BW: bw})
}

// LinkBetween returns the link from a to b. Transfers within one node use an
// implicit infinite-bandwidth loopback.
func (t *Topology) LinkBetween(a, b string) (Link, bool) {
	if a == b {
		return Link{From: a, To: b, BW: units.Bandwidth(math.Inf(1))}, true
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	l, ok := t.links[[2]string{a, b}]
	return l, ok
}

// Bandwidth returns BW_kj between two nodes, 0 when no link exists, and +Inf
// for loopback.
func (t *Topology) Bandwidth(a, b string) units.Bandwidth {
	l, ok := t.LinkBetween(a, b)
	if !ok {
		return 0
	}
	return l.BW
}

// TransferTime returns the seconds to move size bytes from a to b over an
// otherwise idle network, +Inf when unreachable.
func (t *Topology) TransferTime(a, b string, size units.Bytes) float64 {
	l, ok := t.LinkBetween(a, b)
	if !ok {
		return math.Inf(1)
	}
	return l.RTT + l.BW.Seconds(size)
}

// FairShareTime returns the transfer time when `concurrent` transfers share
// the link's source capacity. Non-shared links are unaffected by
// concurrency. concurrent < 1 is treated as 1.
func (t *Topology) FairShareTime(a, b string, size units.Bytes, concurrent int) float64 {
	l, ok := t.LinkBetween(a, b)
	if !ok {
		return math.Inf(1)
	}
	if concurrent < 1 {
		concurrent = 1
	}
	bw := l.BW
	if l.SharedCapacity && concurrent > 1 {
		bw = l.BW / units.Bandwidth(concurrent)
	}
	return l.RTT + bw.Seconds(size)
}

// Clone returns a deep copy of the topology; useful for what-if analyses.
func (t *Topology) Clone() *Topology {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := NewTopology()
	for n := range t.nodes {
		c.nodes[n] = true
	}
	for k, l := range t.links {
		c.links[k] = l
	}
	return c
}

// SetBandwidth rescales an existing link's bandwidth, for sweeps.
func (t *Topology) SetBandwidth(a, b string, bw units.Bandwidth) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	k := [2]string{a, b}
	l, ok := t.links[k]
	if !ok {
		return fmt.Errorf("netsim: no link %s->%s", a, b)
	}
	if bw <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidth")
	}
	l.BW = bw
	t.links[k] = l
	return nil
}
