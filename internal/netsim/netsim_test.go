package netsim

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"deep/internal/units"
)

func topo(t *testing.T) *Topology {
	t.Helper()
	tp := NewTopology()
	for _, n := range []string{"hub", "regional", "medium", "small"} {
		tp.AddNode(n)
	}
	if err := tp.AddLink(Link{From: "hub", To: "medium", BW: 22 * units.MBps}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddLink(Link{From: "regional", To: "medium", BW: 25 * units.MBps, SharedCapacity: true}); err != nil {
		t.Fatal(err)
	}
	if err := tp.AddDuplex("medium", "small", 12*units.MBps); err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestTopologyBasics(t *testing.T) {
	tp := topo(t)
	if got := tp.Nodes(); len(got) != 4 || got[0] != "hub" {
		t.Errorf("nodes = %v", got)
	}
	if bw := tp.Bandwidth("hub", "medium"); bw != 22*units.MBps {
		t.Errorf("bw = %v", bw)
	}
	if bw := tp.Bandwidth("medium", "hub"); bw != 0 {
		t.Errorf("reverse link should not exist, bw = %v", bw)
	}
	if bw := tp.Bandwidth("medium", "medium"); !math.IsInf(float64(bw), 1) {
		t.Errorf("loopback should be infinite, got %v", bw)
	}
}

func TestAddLinkValidation(t *testing.T) {
	tp := NewTopology()
	tp.AddNode("a")
	if err := tp.AddLink(Link{From: "a", To: "b", BW: 1}); err == nil {
		t.Error("unknown node should error")
	}
	if err := tp.AddLink(Link{From: "nope", To: "a", BW: 1}); err == nil {
		t.Error("unknown node should error")
	}
	tp.AddNode("b")
	if err := tp.AddLink(Link{From: "a", To: "b", BW: 0}); err == nil {
		t.Error("zero bandwidth should error")
	}
}

func TestTransferTime(t *testing.T) {
	tp := topo(t)
	got := tp.TransferTime("hub", "medium", 220*units.MB)
	if math.Abs(got-10) > 1e-9 {
		t.Errorf("220MB at 22MB/s = %v, want 10", got)
	}
	if got := tp.TransferTime("small", "hub", units.MB); !math.IsInf(got, 1) {
		t.Errorf("unreachable should be +Inf, got %v", got)
	}
	if got := tp.TransferTime("medium", "medium", units.GB); got != 0 {
		t.Errorf("loopback transfer should be 0, got %v", got)
	}
}

func TestFairShareTime(t *testing.T) {
	tp := topo(t)
	base := tp.FairShareTime("regional", "medium", 100*units.MB, 1)
	double := tp.FairShareTime("regional", "medium", 100*units.MB, 2)
	if math.Abs(double-2*base) > 1e-9 {
		t.Errorf("shared link with 2 transfers should halve bandwidth: %v vs %v", double, base)
	}
	// Hub link is not shared: concurrency does not matter.
	h1 := tp.FairShareTime("hub", "medium", 100*units.MB, 1)
	h4 := tp.FairShareTime("hub", "medium", 100*units.MB, 4)
	if h1 != h4 {
		t.Errorf("non-shared link should ignore concurrency: %v vs %v", h1, h4)
	}
	if got := tp.FairShareTime("regional", "medium", 100*units.MB, 0); got != base {
		t.Errorf("concurrent<1 should clamp to 1: %v", got)
	}
}

func TestRTTIncluded(t *testing.T) {
	tp := NewTopology()
	tp.AddNode("a")
	tp.AddNode("b")
	_ = tp.AddLink(Link{From: "a", To: "b", BW: units.MBps, RTT: 0.5})
	got := tp.TransferTime("a", "b", units.MB)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("transfer time with RTT = %v, want 1.5", got)
	}
}

func TestCloneAndSetBandwidth(t *testing.T) {
	tp := topo(t)
	c := tp.Clone()
	if err := c.SetBandwidth("hub", "medium", 44*units.MBps); err != nil {
		t.Fatal(err)
	}
	if tp.Bandwidth("hub", "medium") != 22*units.MBps {
		t.Error("clone mutation leaked into original")
	}
	if c.Bandwidth("hub", "medium") != 44*units.MBps {
		t.Error("SetBandwidth did not apply")
	}
	if err := c.SetBandwidth("x", "y", units.MBps); err == nil {
		t.Error("missing link should error")
	}
	if err := c.SetBandwidth("hub", "medium", 0); err == nil {
		t.Error("non-positive bandwidth should error")
	}
}

func TestSharedLinkSchedulerSingle(t *testing.T) {
	s := SharedLinkScheduler{Capacity: 10 * units.MBps}
	out := s.Schedule([]Transfer{{ID: "a", Start: 0, Size: 100 * units.MB}})
	if len(out) != 1 {
		t.Fatalf("len = %d", len(out))
	}
	if math.Abs(out[0].Finish-10) > 1e-6 {
		t.Errorf("finish = %v, want 10", out[0].Finish)
	}
}

func TestSharedLinkSchedulerTwoOverlapping(t *testing.T) {
	s := SharedLinkScheduler{Capacity: 10 * units.MBps}
	// Both start at 0, equal sizes: both should finish at 2*size/capacity.
	out := s.Schedule([]Transfer{
		{ID: "a", Start: 0, Size: 50 * units.MB},
		{ID: "b", Start: 0, Size: 50 * units.MB},
	})
	for _, c := range out {
		if math.Abs(c.Finish-10) > 1e-6 {
			t.Errorf("%s finish = %v, want 10", c.ID, c.Finish)
		}
	}
}

func TestSharedLinkSchedulerStaggered(t *testing.T) {
	s := SharedLinkScheduler{Capacity: 10 * units.MBps}
	// a: 100MB at t=0. b: 30MB at t=5.
	// t in [0,5): a alone at 10MB/s -> 50MB done, 50MB left.
	// t in [5,11): both at 5MB/s. b finishes its 30MB at t=11; a transfers
	// 30MB, leaving 20MB, then runs alone: 2 more seconds -> 13.
	out := s.Schedule([]Transfer{
		{ID: "a", Start: 0, Size: 100 * units.MB},
		{ID: "b", Start: 5, Size: 30 * units.MB},
	})
	byID := map[string]Completion{}
	for _, c := range out {
		byID[c.ID] = c
	}
	if math.Abs(byID["b"].Finish-11) > 1e-6 {
		t.Errorf("b finish = %v, want 11", byID["b"].Finish)
	}
	if math.Abs(byID["a"].Finish-13) > 1e-6 {
		t.Errorf("a finish = %v, want 13", byID["a"].Finish)
	}
}

func TestSharedLinkSchedulerConservation(t *testing.T) {
	// Property: total bytes / capacity = busy time; makespan >= that when
	// all arrive at 0 and >= longest solo transfer.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		s := SharedLinkScheduler{Capacity: units.Bandwidth(1 + rng.Float64()*100)}
		n := 1 + rng.Intn(8)
		var transfers []Transfer
		var total float64
		for i := 0; i < n; i++ {
			size := units.Bytes(1 + rng.Intn(1000))
			transfers = append(transfers, Transfer{ID: string(rune('a' + i)), Start: 0, Size: size})
			total += float64(size)
		}
		out := s.Schedule(transfers)
		if len(out) != n {
			t.Fatalf("trial %d: %d completions for %d transfers", trial, len(out), n)
		}
		want := total / float64(s.Capacity)
		got := MakespanOf(out)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("trial %d: makespan %v, want %v (work conservation)", trial, got, want)
		}
	}
}

func TestSharedLinkSchedulerZeroCapacity(t *testing.T) {
	s := SharedLinkScheduler{}
	out := s.Schedule([]Transfer{{ID: "a", Size: 1}})
	if !math.IsInf(out[0].Finish, 1) {
		t.Errorf("zero capacity should never finish, got %v", out[0].Finish)
	}
}

func TestMakespanEmpty(t *testing.T) {
	if MakespanOf(nil) != 0 {
		t.Error("empty makespan should be 0")
	}
}

func TestRateLimitedReaderUnlimited(t *testing.T) {
	r := NewRateLimitedReader(strings.NewReader("hello"), 0)
	out, err := io.ReadAll(r)
	if err != nil || string(out) != "hello" {
		t.Fatalf("unlimited read: %q %v", out, err)
	}
}

func TestRateLimitedReaderThrottles(t *testing.T) {
	// Inject a fake clock: each sleep advances it.
	data := bytes.Repeat([]byte("x"), 1000)
	rl := NewRateLimitedReader(bytes.NewReader(data), 100) // 100 B/s
	var fake time.Time
	var slept time.Duration
	rl.now = func() time.Time { return fake }
	rl.sleep = func(d time.Duration) { slept += d; fake = fake.Add(d) }
	rl.burst = 100
	rl.bucket = 100

	out, err := io.ReadAll(rl)
	if err != nil || len(out) != 1000 {
		t.Fatalf("read: %d bytes, %v", len(out), err)
	}
	// 1000 bytes at 100 B/s with 100-byte burst: about 9 seconds of sleep.
	if slept < 8*time.Second || slept > 11*time.Second {
		t.Errorf("slept %v, want ≈9s", slept)
	}
}
