package netsim

import (
	"math"
	"sort"

	"deep/internal/units"
)

// SharedLinkScheduler computes exact completion times for a set of transfers
// that start at given times and fairly share one capacity (processor-sharing
// / TCP-fair model). It replays the piecewise-constant rate allocation:
// whenever the set of active transfers changes, the per-transfer rate is
// capacity / active.
//
// This is the reference model for the regional registry's uplink; the
// coarse FairShareTime approximation assumes all transfers overlap fully,
// while this scheduler handles arbitrary start times.
type SharedLinkScheduler struct {
	Capacity units.Bandwidth
}

// Transfer is one demand on the shared link.
type Transfer struct {
	ID    string
	Start float64 // seconds
	Size  units.Bytes
}

// Completion holds the computed finish time of one transfer.
type Completion struct {
	ID     string
	Start  float64
	Finish float64
}

// Schedule returns the completion time of every transfer under fair
// sharing. The result is sorted by finish time (ties by ID).
func (s SharedLinkScheduler) Schedule(transfers []Transfer) []Completion {
	if s.Capacity <= 0 {
		out := make([]Completion, len(transfers))
		for i, tr := range transfers {
			out[i] = Completion{ID: tr.ID, Start: tr.Start, Finish: math.Inf(1)}
		}
		return out
	}
	type active struct {
		id        string
		start     float64
		remaining float64 // bytes
	}
	// Event-driven replay: events are transfer arrivals and completions.
	pending := make([]Transfer, len(transfers))
	copy(pending, transfers)
	sort.Slice(pending, func(i, j int) bool {
		if pending[i].Start != pending[j].Start {
			return pending[i].Start < pending[j].Start
		}
		return pending[i].ID < pending[j].ID
	})

	var actives []*active
	var done []Completion
	now := 0.0
	if len(pending) > 0 {
		now = pending[0].Start
	}
	for len(pending) > 0 || len(actives) > 0 {
		// Next arrival time, if any.
		nextArrival := math.Inf(1)
		if len(pending) > 0 {
			nextArrival = pending[0].Start
		}
		if len(actives) == 0 {
			// Jump to the next arrival.
			now = nextArrival
			for len(pending) > 0 && pending[0].Start <= now {
				tr := pending[0]
				pending = pending[1:]
				actives = append(actives, &active{id: tr.ID, start: tr.Start, remaining: float64(tr.Size)})
			}
			continue
		}
		rate := float64(s.Capacity) / float64(len(actives))
		// Time until the first active completes at the current rate.
		minFinish := math.Inf(1)
		for _, a := range actives {
			f := a.remaining / rate
			if f < minFinish {
				minFinish = f
			}
		}
		horizon := now + minFinish
		if nextArrival < horizon {
			// Advance to the arrival, draining proportionally.
			dt := nextArrival - now
			for _, a := range actives {
				a.remaining -= rate * dt
				if a.remaining < 0 {
					a.remaining = 0
				}
			}
			now = nextArrival
			for len(pending) > 0 && pending[0].Start <= now {
				tr := pending[0]
				pending = pending[1:]
				actives = append(actives, &active{id: tr.ID, start: tr.Start, remaining: float64(tr.Size)})
			}
			continue
		}
		// Advance to the first completion(s).
		dt := minFinish
		for _, a := range actives {
			a.remaining -= rate * dt
		}
		now = horizon
		var still []*active
		for _, a := range actives {
			if a.remaining <= 1e-9 {
				done = append(done, Completion{ID: a.id, Start: a.start, Finish: now})
			} else {
				still = append(still, a)
			}
		}
		actives = still
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Finish != done[j].Finish {
			return done[i].Finish < done[j].Finish
		}
		return done[i].ID < done[j].ID
	})
	return done
}

// MakespanOf returns the latest finish time among the completions, or 0 for
// an empty slice.
func MakespanOf(cs []Completion) float64 {
	m := 0.0
	for _, c := range cs {
		if c.Finish > m {
			m = c.Finish
		}
	}
	return m
}
