package netsim

import (
	"io"
	"time"

	"deep/internal/units"
)

// RateLimitedReader throttles an io.Reader to a target bandwidth using a
// token bucket. It is used by the HTTP emulation path (the real registry and
// object-store servers) so that wall-clock pull times reflect the modeled
// link speeds.
type RateLimitedReader struct {
	r      io.Reader
	bw     units.Bandwidth
	bucket float64 // available bytes
	last   time.Time
	burst  float64
	// now and sleep are injectable for tests.
	now   func() time.Time
	sleep func(time.Duration)
}

// NewRateLimitedReader wraps r, limiting throughput to bw. A non-positive
// bandwidth means unlimited.
func NewRateLimitedReader(r io.Reader, bw units.Bandwidth) *RateLimitedReader {
	rl := &RateLimitedReader{
		r:     r,
		bw:    bw,
		burst: float64(64 * units.KiB),
		now:   time.Now,
		sleep: time.Sleep,
	}
	rl.bucket = rl.burst
	return rl
}

// Read implements io.Reader with throttling.
func (rl *RateLimitedReader) Read(p []byte) (int, error) {
	if rl.bw <= 0 {
		return rl.r.Read(p)
	}
	if rl.last.IsZero() {
		rl.last = rl.now()
	}
	// Refill.
	t := rl.now()
	rl.bucket += t.Sub(rl.last).Seconds() * float64(rl.bw)
	if rl.bucket > rl.burst {
		rl.bucket = rl.burst
	}
	rl.last = t

	if rl.bucket < 1 {
		// Sleep until at least one chunk of tokens is available.
		need := (1 - rl.bucket) / float64(rl.bw)
		rl.sleep(time.Duration(need * float64(time.Second)))
		t = rl.now()
		rl.bucket += t.Sub(rl.last).Seconds() * float64(rl.bw)
		rl.last = t
	}
	max := int(rl.bucket)
	if max < 1 {
		max = 1
	}
	if len(p) > max {
		p = p[:max]
	}
	n, err := rl.r.Read(p)
	rl.bucket -= float64(n)
	return n, err
}
