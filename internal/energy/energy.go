// Package energy models the power draw and energy accounting of edge
// devices, replacing the paper's pyRAPL (Intel RAPL counters) and Ketotek
// wall-socket power meter with virtual-time meters. Energy is always the
// integral of power over (virtual) time.
package energy

import (
	"fmt"
	"sort"
	"sync"

	"deep/internal/units"
)

// State describes what a device is doing, which determines its power draw.
type State string

// Device activity states.
const (
	Idle       State = "idle"       // background tasks only (static power)
	Pulling    State = "pulling"    // downloading an image (network + disk)
	Receiving  State = "receiving"  // receiving an input dataflow
	Processing State = "processing" // executing a microservice
)

// PowerModel yields the instantaneous power a device draws in a given state
// while running a given microservice ("" when none).
type PowerModel interface {
	Power(state State, microservice string) units.Watts
}

// LinearModel is a simple affine power model: static power plus a per-state
// increment. It ignores which microservice runs.
type LinearModel struct {
	StaticW     units.Watts // E_s: keeping the device on
	PullW       units.Watts // increment while pulling images
	ReceiveW    units.Watts // increment while receiving dataflows
	ProcessingW units.Watts // increment while executing
}

// Power implements PowerModel.
func (m LinearModel) Power(state State, _ string) units.Watts {
	switch state {
	case Pulling:
		return m.StaticW + m.PullW
	case Receiving:
		return m.StaticW + m.ReceiveW
	case Processing:
		return m.StaticW + m.ProcessingW
	default:
		return m.StaticW
	}
}

// TableModel draws per-(microservice, state) power calibrated from
// benchmarks — the Table II route the paper takes. Unknown microservices
// fall back to a LinearModel.
type TableModel struct {
	Fallback LinearModel
	// ProcessW maps microservice name to its measured processing power.
	ProcessW map[string]units.Watts
	// TransferW maps microservice name to its power while its image or
	// dataflow is in flight (the device mostly waits).
	TransferW map[string]units.Watts
}

// Power implements PowerModel.
func (m TableModel) Power(state State, ms string) units.Watts {
	switch state {
	case Processing:
		if w, ok := m.ProcessW[ms]; ok {
			return w
		}
	case Pulling, Receiving:
		if w, ok := m.TransferW[ms]; ok {
			return w
		}
	}
	return m.Fallback.Power(state, ms)
}

// Sample is one entry of a meter's time series.
type Sample struct {
	At           float64 // virtual time, seconds
	Duration     float64 // seconds spent in this state
	State        State
	Microservice string
	Power        units.Watts
	Energy       units.Joules
}

// Meter integrates a device's power over virtual time. It is safe for
// concurrent use.
type Meter struct {
	mu      sync.Mutex
	model   PowerModel
	total   units.Joules
	byState map[State]units.Joules
	byMS    map[string]units.Joules
	series  []Sample
}

// NewMeter returns a meter that prices intervals using the model.
func NewMeter(model PowerModel) *Meter {
	return &Meter{
		model:   model,
		byState: make(map[State]units.Joules),
		byMS:    make(map[string]units.Joules),
	}
}

// Record accounts for `seconds` of virtual time spent in the given state on
// behalf of the given microservice and returns the energy consumed by the
// interval. Negative durations are an error.
func (m *Meter) Record(at, seconds float64, state State, microservice string) (units.Joules, error) {
	if seconds < 0 {
		return 0, fmt.Errorf("energy: negative duration %v", seconds)
	}
	w := m.model.Power(state, microservice)
	e := w.Over(seconds)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total += e
	m.byState[state] += e
	if microservice != "" {
		m.byMS[microservice] += e
	}
	m.series = append(m.series, Sample{
		At: at, Duration: seconds, State: state,
		Microservice: microservice, Power: w, Energy: e,
	})
	return e, nil
}

// Total returns the total energy recorded so far.
func (m *Meter) Total() units.Joules {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// ByState returns a copy of the per-state energy accounting.
func (m *Meter) ByState() map[State]units.Joules {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[State]units.Joules, len(m.byState))
	for k, v := range m.byState {
		out[k] = v
	}
	return out
}

// ByMicroservice returns a copy of the per-microservice energy accounting.
func (m *Meter) ByMicroservice() map[string]units.Joules {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]units.Joules, len(m.byMS))
	for k, v := range m.byMS {
		out[k] = v
	}
	return out
}

// Series returns a copy of the sample time series ordered by time.
func (m *Meter) Series() []Sample {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Sample, len(m.series))
	copy(out, m.series)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// Reset clears all recorded energy.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.total = 0
	m.byState = make(map[State]units.Joules)
	m.byMS = make(map[string]units.Joules)
	m.series = nil
}

// Report summarizes the energy consumption of one device run.
type Report struct {
	Device         string
	Total          units.Joules
	ByState        map[State]units.Joules
	ByMicroservice map[string]units.Joules
}

// Snapshot produces a report for the device name.
func (m *Meter) Snapshot(device string) Report {
	return Report{
		Device:         device,
		Total:          m.Total(),
		ByState:        m.ByState(),
		ByMicroservice: m.ByMicroservice(),
	}
}
