package energy

import (
	"math"
	"sync"
	"testing"

	"deep/internal/units"
)

func TestLinearModel(t *testing.T) {
	m := LinearModel{StaticW: 3, PullW: 2, ReceiveW: 1, ProcessingW: 20}
	cases := []struct {
		state State
		want  units.Watts
	}{
		{Idle, 3},
		{Pulling, 5},
		{Receiving, 4},
		{Processing, 23},
	}
	for _, c := range cases {
		if got := m.Power(c.state, "x"); got != c.want {
			t.Errorf("Power(%s) = %v, want %v", c.state, got, c.want)
		}
	}
}

func TestTableModelLookupAndFallback(t *testing.T) {
	m := TableModel{
		Fallback:  LinearModel{StaticW: 2, ProcessingW: 8},
		ProcessW:  map[string]units.Watts{"train": 40},
		TransferW: map[string]units.Watts{"train": 6},
	}
	if got := m.Power(Processing, "train"); got != 40 {
		t.Errorf("table process power = %v", got)
	}
	if got := m.Power(Pulling, "train"); got != 6 {
		t.Errorf("table transfer power = %v", got)
	}
	if got := m.Power(Processing, "unknown"); got != 10 {
		t.Errorf("fallback process power = %v", got)
	}
	if got := m.Power(Idle, "train"); got != 2 {
		t.Errorf("idle power = %v", got)
	}
}

func TestMeterIntegration(t *testing.T) {
	m := NewMeter(LinearModel{StaticW: 2, ProcessingW: 8})
	e, err := m.Record(0, 10, Processing, "ms1")
	if err != nil {
		t.Fatal(err)
	}
	if e != 100 { // (2+8) W * 10 s
		t.Errorf("interval energy = %v, want 100J", e)
	}
	if _, err := m.Record(10, 5, Idle, ""); err != nil {
		t.Fatal(err)
	}
	if got := m.Total(); got != 110 {
		t.Errorf("total = %v, want 110J", got)
	}
	by := m.ByState()
	if by[Processing] != 100 || by[Idle] != 10 {
		t.Errorf("by state = %v", by)
	}
	byMS := m.ByMicroservice()
	if byMS["ms1"] != 100 {
		t.Errorf("by microservice = %v", byMS)
	}
	if _, ok := byMS[""]; ok {
		t.Error("empty microservice should not be tracked")
	}
}

func TestMeterNegativeDuration(t *testing.T) {
	m := NewMeter(LinearModel{})
	if _, err := m.Record(0, -1, Idle, ""); err == nil {
		t.Error("negative duration should error")
	}
}

func TestMeterSeriesOrdered(t *testing.T) {
	m := NewMeter(LinearModel{StaticW: 1})
	_, _ = m.Record(5, 1, Idle, "")
	_, _ = m.Record(1, 1, Idle, "")
	_, _ = m.Record(3, 1, Idle, "")
	s := m.Series()
	if len(s) != 3 {
		t.Fatalf("series len = %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].At < s[i-1].At {
			t.Errorf("series not ordered: %v", s)
		}
	}
}

func TestMeterReset(t *testing.T) {
	m := NewMeter(LinearModel{StaticW: 1})
	_, _ = m.Record(0, 10, Idle, "")
	m.Reset()
	if m.Total() != 0 || len(m.Series()) != 0 {
		t.Error("reset did not clear")
	}
}

func TestMeterConcurrentSafety(t *testing.T) {
	m := NewMeter(LinearModel{StaticW: 1})
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = m.Record(float64(i), 1, Processing, "ms")
		}(i)
	}
	wg.Wait()
	if got := m.Total(); math.Abs(float64(got)-50) > 1e-9 {
		t.Errorf("concurrent total = %v, want 50", got)
	}
}

func TestSnapshot(t *testing.T) {
	m := NewMeter(LinearModel{StaticW: 2})
	_, _ = m.Record(0, 3, Idle, "")
	r := m.Snapshot("dev0")
	if r.Device != "dev0" || r.Total != 6 {
		t.Errorf("snapshot = %+v", r)
	}
}

// Property: total equals the sum of per-state totals and (>=) per-
// microservice totals.
func TestMeterAccountingConsistency(t *testing.T) {
	m := NewMeter(LinearModel{StaticW: 1, ProcessingW: 3, PullW: 2})
	intervals := []struct {
		d     float64
		state State
		ms    string
	}{
		{5, Processing, "a"}, {3, Pulling, "a"}, {2, Idle, ""},
		{7, Processing, "b"}, {1, Receiving, "b"},
	}
	for i, iv := range intervals {
		if _, err := m.Record(float64(i), iv.d, iv.state, iv.ms); err != nil {
			t.Fatal(err)
		}
	}
	var stateSum units.Joules
	for _, v := range m.ByState() {
		stateSum += v
	}
	if math.Abs(float64(stateSum-m.Total())) > 1e-9 {
		t.Errorf("state sum %v != total %v", stateSum, m.Total())
	}
	var msSum units.Joules
	for _, v := range m.ByMicroservice() {
		msSum += v
	}
	if msSum > m.Total() {
		t.Errorf("microservice sum %v exceeds total %v", msSum, m.Total())
	}
}
