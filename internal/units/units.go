// Package units provides the physical and information-theoretic quantities
// used throughout DEEP: byte sizes, bandwidths, processing loads (millions of
// instructions), processing speeds, power, and energy. All quantities are
// strongly typed so that a bandwidth cannot be confused with a size, and all
// support parsing and human-readable formatting.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Bytes is a size in bytes.
type Bytes int64

// Common byte sizes.
const (
	Byte Bytes = 1
	KB         = 1000 * Byte
	MB         = 1000 * KB
	GB         = 1000 * MB
	TB         = 1000 * GB

	KiB = 1024 * Byte
	MiB = 1024 * KiB
	GiB = 1024 * MiB
)

// Megabytes returns the size expressed in (decimal) megabytes.
func (b Bytes) Megabytes() float64 { return float64(b) / float64(MB) }

// Gigabytes returns the size expressed in (decimal) gigabytes.
func (b Bytes) Gigabytes() float64 { return float64(b) / float64(GB) }

// String formats the size with an adaptive decimal unit.
func (b Bytes) String() string {
	abs := b
	if abs < 0 {
		abs = -abs
	}
	switch {
	case abs >= TB:
		return trimFloat(float64(b)/float64(TB)) + "TB"
	case abs >= GB:
		return trimFloat(float64(b)/float64(GB)) + "GB"
	case abs >= MB:
		return trimFloat(float64(b)/float64(MB)) + "MB"
	case abs >= KB:
		return trimFloat(float64(b)/float64(KB)) + "KB"
	}
	return strconv.FormatInt(int64(b), 10) + "B"
}

func trimFloat(v float64) string {
	s := strconv.FormatFloat(v, 'f', 2, 64)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	return s
}

// ParseBytes parses strings such as "5.78GB", "700MB", "64GiB", or "1024".
// A bare number is interpreted as bytes.
func ParseBytes(s string) (Bytes, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("units: empty size")
	}
	units := []struct {
		suffix string
		mult   Bytes
	}{
		{"TB", TB}, {"GiB", GiB}, {"GB", GB}, {"MiB", MiB}, {"MB", MB},
		{"KiB", KiB}, {"KB", KB}, {"B", Byte},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			num := strings.TrimSpace(strings.TrimSuffix(s, u.suffix))
			v, err := strconv.ParseFloat(num, 64)
			if err != nil {
				return 0, fmt.Errorf("units: parse %q: %v", s, err)
			}
			return Bytes(math.Round(v * float64(u.mult))), nil
		}
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parse %q: %v", s, err)
	}
	return Bytes(math.Round(v)), nil
}

// Bandwidth is a transfer rate in bytes per second.
type Bandwidth float64

// Common bandwidths.
const (
	BytePerSecond Bandwidth = 1
	KBps                    = 1000 * BytePerSecond
	MBps                    = 1000 * KBps
	GBps                    = 1000 * MBps
)

// Seconds returns the time, in seconds, to transfer size at bandwidth bw.
// Transferring anything over a zero or negative bandwidth yields +Inf.
func (bw Bandwidth) Seconds(size Bytes) float64 {
	if size <= 0 {
		return 0
	}
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(size) / float64(bw)
}

// String formats the bandwidth with an adaptive unit.
func (bw Bandwidth) String() string {
	switch {
	case bw >= GBps:
		return trimFloat(float64(bw/GBps)) + "GB/s"
	case bw >= MBps:
		return trimFloat(float64(bw/MBps)) + "MB/s"
	case bw >= KBps:
		return trimFloat(float64(bw/KBps)) + "KB/s"
	}
	return trimFloat(float64(bw)) + "B/s"
}

// MI is a processing load in millions of instructions, the unit the paper
// uses for CPU(m_i).
type MI float64

// MIPS is a processing speed in millions of instructions per second, the
// unit the paper uses for device speed CPU_j.
type MIPS float64

// Seconds returns the time, in seconds, to process load mi at speed s.
func (s MIPS) Seconds(mi MI) float64 {
	if mi <= 0 {
		return 0
	}
	if s <= 0 {
		return math.Inf(1)
	}
	return float64(mi) / float64(s)
}

// Watts is instantaneous power.
type Watts float64

// Joules is energy.
type Joules float64

// Kilojoules returns the energy in kJ.
func (j Joules) Kilojoules() float64 { return float64(j) / 1000 }

// String formats energy in J or kJ.
func (j Joules) String() string {
	if math.Abs(float64(j)) >= 1000 {
		return trimFloat(float64(j)/1000) + "kJ"
	}
	return trimFloat(float64(j)) + "J"
}

// Over returns the energy consumed by drawing power w for d seconds.
func (w Watts) Over(seconds float64) Joules {
	return Joules(float64(w) * seconds)
}

// String formats power.
func (w Watts) String() string { return trimFloat(float64(w)) + "W" }
