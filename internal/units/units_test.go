package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{1000, "1KB"},
		{1500, "1.5KB"},
		{5 * GB, "5GB"},
		{Bytes(5.78 * float64(GB)), "5.78GB"},
		{170 * MB, "170MB"},
		{2 * TB, "2TB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want Bytes
	}{
		{"5.78GB", Bytes(5.78 * float64(GB))},
		{"700MB", 700 * MB},
		{"64GiB", 64 * GiB},
		{"1024", 1024},
		{"0B", 0},
		{" 2KB ", 2 * KB},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if err != nil {
			t.Fatalf("ParseBytes(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestParseBytesErrors(t *testing.T) {
	for _, in := range []string{"", "abc", "12XB", "GB"} {
		if _, err := ParseBytes(in); err == nil {
			t.Errorf("ParseBytes(%q): expected error", in)
		}
	}
}

func TestParseBytesRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		b := Bytes(raw % (10 * int64(TB)))
		if b < 0 {
			b = -b
		}
		parsed, err := ParseBytes(b.String())
		if err != nil {
			return false
		}
		// Adaptive formatting rounds to 2 decimals of the unit, so allow
		// 1% relative error.
		diff := math.Abs(float64(parsed - b))
		return diff <= 0.01*float64(b)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthSeconds(t *testing.T) {
	if got := (10 * MBps).Seconds(100 * MB); math.Abs(got-10) > 1e-9 {
		t.Errorf("100MB over 10MB/s = %v, want 10s", got)
	}
	if got := Bandwidth(0).Seconds(1); !math.IsInf(got, 1) {
		t.Errorf("zero bandwidth should give +Inf, got %v", got)
	}
	if got := (10 * MBps).Seconds(0); got != 0 {
		t.Errorf("zero size should take 0s, got %v", got)
	}
	if got := (10 * MBps).Seconds(-5); got != 0 {
		t.Errorf("negative size should take 0s, got %v", got)
	}
}

func TestMIPSSeconds(t *testing.T) {
	if got := MIPS(1000).Seconds(MI(5000)); math.Abs(got-5) > 1e-9 {
		t.Errorf("5000MI at 1000MI/s = %v, want 5", got)
	}
	if got := MIPS(0).Seconds(MI(1)); !math.IsInf(got, 1) {
		t.Errorf("zero speed should give +Inf, got %v", got)
	}
	if got := MIPS(100).Seconds(0); got != 0 {
		t.Errorf("zero load should take 0s, got %v", got)
	}
}

func TestEnergy(t *testing.T) {
	e := Watts(10).Over(60)
	if e != 600 {
		t.Errorf("10W over 60s = %v, want 600J", e)
	}
	if e.Kilojoules() != 0.6 {
		t.Errorf("Kilojoules = %v, want 0.6", e.Kilojoules())
	}
	if got := Joules(18).String(); got != "18J" {
		t.Errorf("Joules(18).String() = %q", got)
	}
	if got := Joules(3264).String(); got != "3.26kJ" {
		t.Errorf("Joules(3264).String() = %q", got)
	}
	if got := Watts(10.5).String(); got != "10.5W" {
		t.Errorf("Watts(10.5).String() = %q", got)
	}
}

func TestBandwidthString(t *testing.T) {
	cases := []struct {
		in   Bandwidth
		want string
	}{
		{25 * MBps, "25MB/s"},
		{1.5 * GBps, "1.5GB/s"},
		{800 * KBps, "800KB/s"},
		{500, "500B/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bandwidth(%v).String() = %q, want %q", float64(c.in), got, c.want)
		}
	}
}

func TestMegaGigabytes(t *testing.T) {
	b := Bytes(5.78 * float64(GB))
	if math.Abs(b.Gigabytes()-5.78) > 1e-9 {
		t.Errorf("Gigabytes = %v", b.Gigabytes())
	}
	if math.Abs(b.Megabytes()-5780) > 1e-6 {
		t.Errorf("Megabytes = %v", b.Megabytes())
	}
}
