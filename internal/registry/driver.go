package registry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"deep/internal/objectstore"
)

// BlobStore is the storage driver interface the registry core writes
// through: content-addressed blob payloads plus small metadata documents
// (manifest links and tag pointers).
type BlobStore interface {
	// PutBlob stores content under its digest. Re-putting an existing
	// digest is a cheap no-op.
	PutBlob(d Digest, r io.Reader) error
	// GetBlob opens a blob for reading.
	GetBlob(d Digest) (io.ReadCloser, int64, error)
	// StatBlob returns the blob size.
	StatBlob(d Digest) (int64, error)
	// DeleteBlob removes a blob.
	DeleteBlob(d Digest) error

	// PutMeta stores a small metadata document at a hierarchical key.
	PutMeta(key string, data []byte) error
	// GetMeta loads a metadata document.
	GetMeta(key string) ([]byte, error)
	// ListMeta lists metadata keys under a prefix, sorted.
	ListMeta(prefix string) ([]string, error)
	// DeleteMeta removes a metadata document.
	DeleteMeta(key string) error
}

// MemDriver is an in-memory BlobStore.
type MemDriver struct {
	mu    sync.RWMutex
	blobs map[Digest][]byte
	meta  map[string][]byte
}

// NewMemDriver returns an empty in-memory driver.
func NewMemDriver() *MemDriver {
	return &MemDriver{blobs: make(map[Digest][]byte), meta: make(map[string][]byte)}
}

// PutBlob implements BlobStore.
func (m *MemDriver) PutBlob(d Digest, r io.Reader) error {
	m.mu.RLock()
	_, exists := m.blobs[d]
	m.mu.RUnlock()
	if exists {
		_, err := io.Copy(io.Discard, r)
		return err
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[d] = data
	return nil
}

// GetBlob implements BlobStore.
func (m *MemDriver) GetBlob(d Digest) (io.ReadCloser, int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.blobs[d]
	if !ok {
		return nil, 0, ErrBlobNotFound
	}
	return io.NopCloser(bytes.NewReader(data)), int64(len(data)), nil
}

// StatBlob implements BlobStore.
func (m *MemDriver) StatBlob(d Digest) (int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.blobs[d]
	if !ok {
		return 0, ErrBlobNotFound
	}
	return int64(len(data)), nil
}

// DeleteBlob implements BlobStore.
func (m *MemDriver) DeleteBlob(d Digest) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.blobs[d]; !ok {
		return ErrBlobNotFound
	}
	delete(m.blobs, d)
	return nil
}

// PutMeta implements BlobStore.
func (m *MemDriver) PutMeta(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.meta[key] = append([]byte(nil), data...)
	return nil
}

// GetMeta implements BlobStore.
func (m *MemDriver) GetMeta(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.meta[key]
	if !ok {
		return nil, ErrBlobNotFound
	}
	return append([]byte(nil), data...), nil
}

// ListMeta implements BlobStore.
func (m *MemDriver) ListMeta(prefix string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var out []string
	for k := range m.meta {
		if len(k) >= len(prefix) && k[:len(prefix)] == prefix {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out, nil
}

// DeleteMeta implements BlobStore.
func (m *MemDriver) DeleteMeta(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.meta, key)
	return nil
}

// ObjectStoreDriver stores registry state in a MinIO-like object store — the
// paper's regional-registry layering (Docker registry over S3-compatible
// storage). Blobs go under "blobs/sha256/<hex>", metadata under "meta/...".
type ObjectStoreDriver struct {
	store  objectstore.Store
	bucket string
}

// NewObjectStoreDriver binds the driver to a bucket, creating it if needed.
func NewObjectStoreDriver(store objectstore.Store, bucket string) (*ObjectStoreDriver, error) {
	if !store.BucketExists(bucket) {
		if err := store.MakeBucket(bucket); err != nil && !errors.Is(err, objectstore.ErrBucketExists) {
			return nil, fmt.Errorf("registry: create bucket: %w", err)
		}
	}
	return &ObjectStoreDriver{store: store, bucket: bucket}, nil
}

func blobKey(d Digest) string { return "blobs/sha256/" + d.Hex() }

// PutBlob implements BlobStore.
func (o *ObjectStoreDriver) PutBlob(d Digest, r io.Reader) error {
	if _, err := o.store.Stat(o.bucket, blobKey(d)); err == nil {
		_, err := io.Copy(io.Discard, r)
		return err
	}
	_, err := o.store.Put(o.bucket, blobKey(d), r, "application/octet-stream", map[string]string{"digest": string(d)})
	return err
}

// GetBlob implements BlobStore.
func (o *ObjectStoreDriver) GetBlob(d Digest) (io.ReadCloser, int64, error) {
	obj, err := o.store.Get(o.bucket, blobKey(d))
	if errors.Is(err, objectstore.ErrNoSuchKey) {
		return nil, 0, ErrBlobNotFound
	}
	if err != nil {
		return nil, 0, err
	}
	return obj.Body, obj.Size, nil
}

// StatBlob implements BlobStore.
func (o *ObjectStoreDriver) StatBlob(d Digest) (int64, error) {
	info, err := o.store.Stat(o.bucket, blobKey(d))
	if errors.Is(err, objectstore.ErrNoSuchKey) {
		return 0, ErrBlobNotFound
	}
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// DeleteBlob implements BlobStore.
func (o *ObjectStoreDriver) DeleteBlob(d Digest) error {
	if _, err := o.store.Stat(o.bucket, blobKey(d)); errors.Is(err, objectstore.ErrNoSuchKey) {
		return ErrBlobNotFound
	}
	return o.store.Delete(o.bucket, blobKey(d))
}

// PutMeta implements BlobStore.
func (o *ObjectStoreDriver) PutMeta(key string, data []byte) error {
	_, err := o.store.Put(o.bucket, "meta/"+key, bytes.NewReader(data), "application/json", nil)
	return err
}

// GetMeta implements BlobStore.
func (o *ObjectStoreDriver) GetMeta(key string) ([]byte, error) {
	obj, err := o.store.Get(o.bucket, "meta/"+key)
	if errors.Is(err, objectstore.ErrNoSuchKey) {
		return nil, ErrBlobNotFound
	}
	if err != nil {
		return nil, err
	}
	defer obj.Body.Close()
	return io.ReadAll(obj.Body)
}

// ListMeta implements BlobStore.
func (o *ObjectStoreDriver) ListMeta(prefix string) ([]string, error) {
	objs, err := o.store.List(o.bucket, "meta/"+prefix)
	if err != nil {
		return nil, err
	}
	out := make([]string, 0, len(objs))
	for _, obj := range objs {
		out = append(out, obj.Key[len("meta/"):])
	}
	return out, nil
}

// DeleteMeta implements BlobStore.
func (o *ObjectStoreDriver) DeleteMeta(key string) error {
	return o.store.Delete(o.bucket, "meta/"+key)
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
