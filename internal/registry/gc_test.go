package registry

import (
	"errors"
	"testing"
)

func TestGCKeepsReferencedBlobs(t *testing.T) {
	r := New(NewMemDriver())
	pushTestImage(t, r, "repo/live", "latest", []byte("live-layer"))
	res, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.BlobsDeleted != 0 {
		t.Errorf("GC deleted %d referenced blobs", res.BlobsDeleted)
	}
	if _, ok := r.HasBlob(DigestOf([]byte("live-layer"))); !ok {
		t.Error("referenced layer removed")
	}
}

func TestGCDeletesOrphans(t *testing.T) {
	r := New(NewMemDriver())
	pushTestImage(t, r, "repo/live", "latest", []byte("live-layer"))
	orphan := []byte("orphaned upload")
	if err := r.PutBlob(DigestOf(orphan), orphan); err != nil {
		t.Fatal(err)
	}
	res, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.BlobsDeleted != 1 {
		t.Fatalf("deleted = %d, want 1", res.BlobsDeleted)
	}
	if res.BytesFreed != int64(len(orphan)) {
		t.Errorf("freed = %d", res.BytesFreed)
	}
	if _, ok := r.HasBlob(DigestOf(orphan)); ok {
		t.Error("orphan survived GC")
	}
	if _, ok := r.HasBlob(DigestOf([]byte("live-layer"))); !ok {
		t.Error("live layer collected")
	}
}

func TestGCAfterManifestDelete(t *testing.T) {
	r := New(NewMemDriver())
	d := pushTestImage(t, r, "repo/x", "latest", []byte("layer-a"), []byte("layer-b"))
	if err := r.DeleteManifest("repo/x", d); err != nil {
		t.Fatal(err)
	}
	res, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	// Config + two layers become unreferenced.
	if res.BlobsDeleted != 3 {
		t.Errorf("deleted = %d, want 3", res.BlobsDeleted)
	}
	if _, err := r.GetBlob(DigestOf([]byte("layer-a"))); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("layer-a should be gone: %v", err)
	}
}

func TestGCSharedLayerSurvivesPartialDelete(t *testing.T) {
	r := New(NewMemDriver())
	shared := []byte("shared-base")
	d1 := pushTestImage(t, r, "repo/a", "latest", shared, []byte("a-top"))
	pushTestImage(t, r, "repo/b", "latest", shared, []byte("b-top"))
	if err := r.DeleteManifest("repo/a", d1); err != nil {
		t.Fatal(err)
	}
	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}
	// The shared base is still referenced by repo/b.
	if _, ok := r.HasBlob(DigestOf(shared)); !ok {
		t.Error("shared base collected while still referenced")
	}
	// a-top is gone.
	if _, ok := r.HasBlob(DigestOf([]byte("a-top"))); ok {
		t.Error("a-top survived")
	}
}

func TestGCIdempotent(t *testing.T) {
	r := New(NewMemDriver())
	pushTestImage(t, r, "repo/x", "latest", []byte("l"))
	orphan := []byte("o")
	_ = r.PutBlob(DigestOf(orphan), orphan)
	if _, err := r.GC(); err != nil {
		t.Fatal(err)
	}
	res, err := r.GC()
	if err != nil {
		t.Fatal(err)
	}
	if res.BlobsDeleted != 0 {
		t.Errorf("second GC deleted %d blobs", res.BlobsDeleted)
	}
}
