package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Server exposes a Registry over the Docker Registry HTTP API V2:
//
//	GET  /v2/                                   ping
//	GET  /v2/_catalog                           repository list
//	GET  /v2/{name}/tags/list                   tag list
//	GET  /v2/{name}/manifests/{ref}             fetch manifest
//	HEAD /v2/{name}/manifests/{ref}             probe manifest
//	PUT  /v2/{name}/manifests/{ref}             push manifest
//	GET  /v2/{name}/blobs/{digest}              fetch blob
//	HEAD /v2/{name}/blobs/{digest}              probe blob
//	POST /v2/{name}/blobs/uploads/              start upload session
//	PATCH /v2/{name}/blobs/uploads/{uuid}       append chunk
//	PUT  /v2/{name}/blobs/uploads/{uuid}?digest= complete upload
type Server struct {
	reg *Registry

	mu      sync.Mutex
	uploads map[string][]byte
	nextID  int

	// Throttle optionally wraps blob response bodies (used by the hub
	// simulator for bandwidth emulation). It receives the repository name.
	Throttle func(repo string, r io.Reader) io.Reader
	// PullGate optionally rejects a pull before serving it (rate limits);
	// return a non-nil error to answer 429.
	PullGate func(repo string) error
}

// NewServer wraps a registry.
func NewServer(reg *Registry) *Server {
	return &Server{reg: reg, uploads: make(map[string][]byte)}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if !strings.HasPrefix(path, "/v2/") {
		writeRegError(w, http.StatusNotFound, "UNSUPPORTED", "registry API lives under /v2/")
		return
	}
	rest := strings.TrimPrefix(path, "/v2/")
	switch {
	case rest == "":
		w.Header().Set("Docker-Distribution-Api-Version", "registry/2.0")
		w.WriteHeader(http.StatusOK)
	case rest == "_catalog":
		s.catalog(w)
	case strings.HasSuffix(rest, "/tags/list"):
		s.tags(w, strings.TrimSuffix(rest, "/tags/list"))
	case strings.Contains(rest, "/manifests/"):
		i := strings.LastIndex(rest, "/manifests/")
		s.manifests(w, r, rest[:i], rest[i+len("/manifests/"):])
	case strings.Contains(rest, "/blobs/uploads/"):
		i := strings.LastIndex(rest, "/blobs/uploads/")
		s.uploadsOp(w, r, rest[:i], rest[i+len("/blobs/uploads/"):])
	case strings.Contains(rest, "/blobs/"):
		i := strings.LastIndex(rest, "/blobs/")
		s.blobs(w, r, rest[:i], rest[i+len("/blobs/"):])
	default:
		writeRegError(w, http.StatusNotFound, "UNSUPPORTED", "unknown route")
	}
}

func (s *Server) catalog(w http.ResponseWriter) {
	repos, err := s.reg.Repositories()
	if err != nil {
		writeRegError(w, http.StatusInternalServerError, "UNKNOWN", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"repositories": repos})
}

func (s *Server) tags(w http.ResponseWriter, repo string) {
	tags, err := s.reg.Tags(repo)
	if err != nil {
		if errors.Is(err, ErrRepoNotFound) {
			writeRegError(w, http.StatusNotFound, "NAME_UNKNOWN", err.Error())
			return
		}
		writeRegError(w, http.StatusInternalServerError, "UNKNOWN", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"name": repo, "tags": tags})
}

func (s *Server) manifests(w http.ResponseWriter, r *http.Request, repo, ref string) {
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		if err := s.gate(w, repo); err != nil {
			return
		}
		mt, raw, d, err := s.reg.GetManifest(repo, ref)
		if err != nil {
			writeRegError(w, http.StatusNotFound, "MANIFEST_UNKNOWN", err.Error())
			return
		}
		w.Header().Set("Content-Type", mt)
		w.Header().Set("Docker-Content-Digest", string(d))
		w.Header().Set("Content-Length", strconv.Itoa(len(raw)))
		w.WriteHeader(http.StatusOK)
		if r.Method == http.MethodGet {
			_, _ = w.Write(raw)
		}
	case http.MethodPut:
		raw, err := io.ReadAll(r.Body)
		if err != nil {
			writeRegError(w, http.StatusBadRequest, "MANIFEST_INVALID", err.Error())
			return
		}
		mt := r.Header.Get("Content-Type")
		tag := ""
		if !strings.HasPrefix(ref, "sha256:") {
			tag = ref
		}
		d, err := s.reg.PutManifest(repo, tag, mt, raw)
		if err != nil {
			switch {
			case errors.Is(err, ErrBlobNotFound), errors.Is(err, ErrManifestNotFound):
				writeRegError(w, http.StatusBadRequest, "MANIFEST_BLOB_UNKNOWN", err.Error())
			case errors.Is(err, ErrInvalidName):
				writeRegError(w, http.StatusBadRequest, "NAME_INVALID", err.Error())
			default:
				writeRegError(w, http.StatusBadRequest, "MANIFEST_INVALID", err.Error())
			}
			return
		}
		w.Header().Set("Docker-Content-Digest", string(d))
		w.WriteHeader(http.StatusCreated)
	case http.MethodDelete:
		d := Digest(ref)
		if !d.Valid() {
			writeRegError(w, http.StatusBadRequest, "DIGEST_INVALID", "manifest deletes require a digest reference")
			return
		}
		if err := s.reg.DeleteManifest(repo, d); err != nil {
			writeRegError(w, http.StatusNotFound, "MANIFEST_UNKNOWN", err.Error())
			return
		}
		w.WriteHeader(http.StatusAccepted)
	default:
		writeRegError(w, http.StatusMethodNotAllowed, "UNSUPPORTED", "unsupported method")
	}
}

func (s *Server) blobs(w http.ResponseWriter, r *http.Request, repo, digest string) {
	d := Digest(digest)
	if !d.Valid() {
		writeRegError(w, http.StatusBadRequest, "DIGEST_INVALID", "malformed digest")
		return
	}
	switch r.Method {
	case http.MethodHead:
		n, ok := s.reg.HasBlob(d)
		if !ok {
			writeRegError(w, http.StatusNotFound, "BLOB_UNKNOWN", "blob unknown")
			return
		}
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.Header().Set("Docker-Content-Digest", string(d))
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		if err := s.gate(w, repo); err != nil {
			return
		}
		rc, n, err := s.reg.OpenBlob(d)
		if err != nil {
			writeRegError(w, http.StatusNotFound, "BLOB_UNKNOWN", err.Error())
			return
		}
		defer rc.Close()
		w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Docker-Content-Digest", string(d))
		w.WriteHeader(http.StatusOK)
		var src io.Reader = rc
		if s.Throttle != nil {
			src = s.Throttle(repo, rc)
		}
		_, _ = io.Copy(w, src)
	case http.MethodDelete:
		if err := s.reg.DeleteBlob(d); err != nil {
			writeRegError(w, http.StatusNotFound, "BLOB_UNKNOWN", err.Error())
			return
		}
		w.WriteHeader(http.StatusAccepted)
	default:
		writeRegError(w, http.StatusMethodNotAllowed, "UNSUPPORTED", "unsupported method")
	}
}

func (s *Server) uploadsOp(w http.ResponseWriter, r *http.Request, repo, uuid string) {
	switch {
	case r.Method == http.MethodPost && uuid == "":
		s.mu.Lock()
		s.nextID++
		id := fmt.Sprintf("upload-%d", s.nextID)
		s.uploads[id] = nil
		s.mu.Unlock()
		w.Header().Set("Location", "/v2/"+repo+"/blobs/uploads/"+id)
		w.Header().Set("Docker-Upload-UUID", id)
		w.WriteHeader(http.StatusAccepted)
	case r.Method == http.MethodPatch:
		chunk, err := io.ReadAll(r.Body)
		if err != nil {
			writeRegError(w, http.StatusBadRequest, "BLOB_UPLOAD_INVALID", err.Error())
			return
		}
		s.mu.Lock()
		buf, ok := s.uploads[uuid]
		if ok {
			s.uploads[uuid] = append(buf, chunk...)
		}
		size := len(s.uploads[uuid])
		s.mu.Unlock()
		if !ok {
			writeRegError(w, http.StatusNotFound, "BLOB_UPLOAD_UNKNOWN", "unknown session")
			return
		}
		w.Header().Set("Location", "/v2/"+repo+"/blobs/uploads/"+uuid)
		w.Header().Set("Range", fmt.Sprintf("0-%d", size-1))
		w.WriteHeader(http.StatusAccepted)
	case r.Method == http.MethodPut:
		digest := Digest(r.URL.Query().Get("digest"))
		if !digest.Valid() {
			writeRegError(w, http.StatusBadRequest, "DIGEST_INVALID", "missing or malformed digest parameter")
			return
		}
		final, err := io.ReadAll(r.Body)
		if err != nil {
			writeRegError(w, http.StatusBadRequest, "BLOB_UPLOAD_INVALID", err.Error())
			return
		}
		s.mu.Lock()
		buf, ok := s.uploads[uuid]
		delete(s.uploads, uuid)
		s.mu.Unlock()
		if !ok {
			writeRegError(w, http.StatusNotFound, "BLOB_UPLOAD_UNKNOWN", "unknown session")
			return
		}
		data := append(buf, final...)
		if err := s.reg.PutBlob(digest, data); err != nil {
			if errors.Is(err, ErrDigestMismatch) {
				writeRegError(w, http.StatusBadRequest, "DIGEST_INVALID", err.Error())
				return
			}
			writeRegError(w, http.StatusInternalServerError, "UNKNOWN", err.Error())
			return
		}
		w.Header().Set("Docker-Content-Digest", string(digest))
		w.WriteHeader(http.StatusCreated)
	case r.Method == http.MethodDelete:
		s.mu.Lock()
		delete(s.uploads, uuid)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	default:
		writeRegError(w, http.StatusMethodNotAllowed, "UNSUPPORTED", "unsupported method")
	}
}

// gate applies the PullGate, answering 429 on rejection.
func (s *Server) gate(w http.ResponseWriter, repo string) error {
	if s.PullGate == nil {
		return nil
	}
	if err := s.PullGate(repo); err != nil {
		w.Header().Set("Retry-After", "60")
		writeRegError(w, http.StatusTooManyRequests, "TOOMANYREQUESTS", err.Error())
		return err
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// regErrorBody follows the distribution error envelope.
type regErrorBody struct {
	Errors []struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"errors"`
}

func writeRegError(w http.ResponseWriter, status int, code, msg string) {
	var body regErrorBody
	body.Errors = append(body.Errors, struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	}{Code: code, Message: msg})
	writeJSON(w, status, body)
}
