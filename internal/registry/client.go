package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client pulls and pushes images against a V2 registry endpoint with full
// digest verification, retrying on 429 rate limits with the server's
// Retry-After hint (capped), as Docker clients do against Docker Hub.
type Client struct {
	base string
	http *http.Client
	// MaxRetries bounds 429 retries per request (default 3).
	MaxRetries int
	// Backoff overrides the retry sleep for tests.
	Backoff func(attempt int)
}

// NewClient returns a client for an endpoint like "http://127.0.0.1:5000".
func NewClient(endpoint string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 5 * time.Minute}
	}
	return &Client{base: strings.TrimRight(endpoint, "/"), http: hc, MaxRetries: 3}
}

// Ping checks the /v2/ endpoint.
func (c *Client) Ping() error {
	resp, err := c.http.Get(c.base + "/v2/")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("registry: ping: HTTP %d", resp.StatusCode)
	}
	return nil
}

// Image is a fully materialized image: manifest plus blob payloads.
type Image struct {
	Manifest       Manifest
	ManifestDigest Digest
	Config         []byte
	Layers         map[Digest][]byte
}

// TotalLayerBytes returns the pulled payload size.
func (i *Image) TotalLayerBytes() int64 {
	var n int64
	for _, l := range i.Layers {
		n += int64(len(l))
	}
	return n
}

// Pull fetches an image for an architecture: manifest (following manifest
// lists), config, and every layer, verifying all digests. have reports
// layers the caller already caches; they are skipped and absent from the
// result. Pass nil to pull everything.
func (c *Client) Pull(ref Reference, arch string, have func(Digest) bool) (*Image, error) {
	mt, raw, d, err := c.getManifest(ref.Repository, ref.referenceString())
	if err != nil {
		return nil, err
	}
	if mt == MediaTypeManifestList {
		var list ManifestList
		if err := json.Unmarshal(raw, &list); err != nil {
			return nil, fmt.Errorf("registry: decode manifest list: %w", err)
		}
		pm, ok := list.ForArch(arch)
		if !ok {
			return nil, fmt.Errorf("%w: no %s entry in %s", ErrManifestNotFound, arch, ref)
		}
		mt, raw, d, err = c.getManifest(ref.Repository, string(pm.Digest))
		if err != nil {
			return nil, err
		}
	}
	if mt != MediaTypeManifest {
		return nil, fmt.Errorf("registry: unexpected media type %q", mt)
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("registry: decode manifest: %w", err)
	}
	img := &Image{Manifest: m, ManifestDigest: d, Layers: make(map[Digest][]byte)}

	img.Config, err = c.PullBlob(ref.Repository, m.Config.Digest)
	if err != nil {
		return nil, err
	}
	for _, l := range m.Layers {
		if have != nil && have(l.Digest) {
			continue
		}
		data, err := c.PullBlob(ref.Repository, l.Digest)
		if err != nil {
			return nil, err
		}
		img.Layers[l.Digest] = data
	}
	return img, nil
}

func (r Reference) referenceString() string {
	if r.Digest != "" {
		return string(r.Digest)
	}
	if r.Tag != "" {
		return r.Tag
	}
	return "latest"
}

// PullBlob downloads and verifies one blob.
func (c *Client) PullBlob(repo string, d Digest) ([]byte, error) {
	resp, err := c.doRetry(http.MethodGet, "/v2/"+repo+"/blobs/"+string(d), nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeRegError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if got := DigestOf(data); got != d {
		return nil, fmt.Errorf("%w: pulled %s, got %s", ErrDigestMismatch, d, got)
	}
	return data, nil
}

// HasBlob probes a blob with HEAD.
func (c *Client) HasBlob(repo string, d Digest) (bool, error) {
	resp, err := c.doRetry(http.MethodHead, "/v2/"+repo+"/blobs/"+string(d), nil, "")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

// PushBlob uploads one blob through the chunked upload session flow.
func (c *Client) PushBlob(repo string, data []byte) (Digest, error) {
	d := DigestOf(data)
	// Skip when present.
	if ok, err := c.HasBlob(repo, d); err == nil && ok {
		return d, nil
	}
	resp, err := c.doRetry(http.MethodPost, "/v2/"+repo+"/blobs/uploads/", nil, "")
	if err != nil {
		return "", err
	}
	loc := resp.Header.Get("Location")
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || loc == "" {
		return "", fmt.Errorf("registry: start upload: HTTP %d", resp.StatusCode)
	}
	// Upload in two chunks to exercise the PATCH path for larger payloads.
	if len(data) > 1<<20 {
		half := len(data) / 2
		resp, err = c.doRetry(http.MethodPatch, loc, bytes.NewReader(data[:half]), "application/octet-stream")
		if err != nil {
			return "", err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return "", fmt.Errorf("registry: patch upload: HTTP %d", resp.StatusCode)
		}
		data = data[half:]
	}
	sep := "?"
	if strings.Contains(loc, "?") {
		sep = "&"
	}
	resp, err = c.doRetry(http.MethodPut, loc+sep+"digest="+string(d), bytes.NewReader(data), "application/octet-stream")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", decodeRegError(resp)
	}
	return d, nil
}

// PushManifest uploads manifest JSON under a tag or digest reference.
func (c *Client) PushManifest(repo, reference, mediaType string, raw []byte) (Digest, error) {
	resp, err := c.doRetry(http.MethodPut, "/v2/"+repo+"/manifests/"+reference, bytes.NewReader(raw), mediaType)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", decodeRegError(resp)
	}
	return Digest(resp.Header.Get("Docker-Content-Digest")), nil
}

// Push uploads a complete image (config, layers, manifest) under a tag.
func (c *Client) Push(repo, tag string, config []byte, layers [][]byte) (Digest, error) {
	cfgD, err := c.PushBlob(repo, config)
	if err != nil {
		return "", fmt.Errorf("registry: push config: %w", err)
	}
	m := Manifest{
		SchemaVersion: 2,
		MediaType:     MediaTypeManifest,
		Config:        Descriptor{MediaType: MediaTypeConfig, Size: int64(len(config)), Digest: cfgD},
	}
	for _, l := range layers {
		d, err := c.PushBlob(repo, l)
		if err != nil {
			return "", fmt.Errorf("registry: push layer: %w", err)
		}
		m.Layers = append(m.Layers, Descriptor{MediaType: MediaTypeLayer, Size: int64(len(l)), Digest: d})
	}
	raw, err := MarshalCanonical(m)
	if err != nil {
		return "", err
	}
	return c.PushManifest(repo, tag, MediaTypeManifest, raw)
}

// Tags lists a repository's tags.
func (c *Client) Tags(repo string) ([]string, error) {
	resp, err := c.doRetry(http.MethodGet, "/v2/"+repo+"/tags/list", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeRegError(resp)
	}
	var body struct {
		Tags []string `json:"tags"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Tags, nil
}

// Catalog lists all repositories.
func (c *Client) Catalog() ([]string, error) {
	resp, err := c.doRetry(http.MethodGet, "/v2/_catalog", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeRegError(resp)
	}
	var body struct {
		Repositories []string `json:"repositories"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	return body.Repositories, nil
}

func (c *Client) getManifest(repo, reference string) (string, []byte, Digest, error) {
	resp, err := c.doRetry(http.MethodGet, "/v2/"+repo+"/manifests/"+reference, nil, "")
	if err != nil {
		return "", nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", nil, "", decodeRegError(resp)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", nil, "", err
	}
	d := Digest(resp.Header.Get("Docker-Content-Digest"))
	if d != "" && DigestOf(raw) != d {
		return "", nil, "", fmt.Errorf("%w: manifest %s", ErrDigestMismatch, reference)
	}
	return resp.Header.Get("Content-Type"), raw, d, nil
}

// doRetry issues a request, retrying on 429 (the body must be re-readable;
// we buffer it once).
func (c *Client) doRetry(method, path string, body io.Reader, contentType string) (*http.Response, error) {
	var buf []byte
	if body != nil {
		var err error
		buf, err = io.ReadAll(body)
		if err != nil {
			return nil, err
		}
	}
	max := c.MaxRetries
	if max < 0 {
		max = 0
	}
	for attempt := 0; ; attempt++ {
		var rdr io.Reader
		if buf != nil {
			rdr = bytes.NewReader(buf)
		}
		req, err := http.NewRequest(method, c.base+path, rdr)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		resp, err := c.http.Do(req)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusTooManyRequests || attempt >= max {
			return resp, nil
		}
		resp.Body.Close()
		if c.Backoff != nil {
			c.Backoff(attempt)
		} else {
			time.Sleep(time.Duration(attempt+1) * 50 * time.Millisecond)
		}
	}
}

func decodeRegError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var body regErrorBody
	if err := json.Unmarshal(data, &body); err == nil && len(body.Errors) > 0 {
		e := body.Errors[0]
		base := fmt.Errorf("registry: %s: %s (HTTP %d)", e.Code, e.Message, resp.StatusCode)
		switch e.Code {
		case "BLOB_UNKNOWN":
			return fmt.Errorf("%w: %v", ErrBlobNotFound, base)
		case "MANIFEST_UNKNOWN":
			return fmt.Errorf("%w: %v", ErrManifestNotFound, base)
		case "TOOMANYREQUESTS":
			return fmt.Errorf("%w: %v", ErrRateLimited, base)
		}
		return base
	}
	return fmt.Errorf("registry: HTTP %d", resp.StatusCode)
}

// Unwrap support for errors.Is on wrapped sentinel errors.
var _ = errors.Is
