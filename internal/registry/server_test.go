package registry

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"testing"

	"deep/internal/netsim"
	"deep/internal/units"
)

func newHTTPRegistry(t *testing.T) (*Client, *Server) {
	t.Helper()
	srv := NewServer(New(NewMemDriver()))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client()), srv
}

func TestHTTPPing(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestHTTPPushPullRoundTrip(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	config := []byte(`{"arch":"amd64"}`)
	layers := [][]byte{bytes.Repeat([]byte("base"), 1000), []byte("app-layer")}
	d, err := c.Push("sina88/vp-frame", "amd64", config, layers)
	if err != nil {
		t.Fatal(err)
	}
	if d == "" {
		t.Fatal("empty manifest digest")
	}
	ref, _ := ParseReference("sina88/vp-frame:amd64")
	img, err := c.Pull(ref, "amd64", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Config, config) {
		t.Error("config corrupted")
	}
	if len(img.Layers) != 2 {
		t.Fatalf("layers = %d", len(img.Layers))
	}
	for _, l := range layers {
		if got := img.Layers[DigestOf(l)]; !bytes.Equal(got, l) {
			t.Error("layer corrupted")
		}
	}
	if img.TotalLayerBytes() != int64(len(layers[0])+len(layers[1])) {
		t.Errorf("total = %d", img.TotalLayerBytes())
	}
}

func TestHTTPPullSkipsCachedLayers(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	base := bytes.Repeat([]byte("base"), 500)
	app := []byte("app")
	if _, err := c.Push("repo/img", "latest", []byte("{}"), [][]byte{base, app}); err != nil {
		t.Fatal(err)
	}
	ref, _ := ParseReference("repo/img:latest")
	img, err := c.Pull(ref, "amd64", func(d Digest) bool { return d == DigestOf(base) })
	if err != nil {
		t.Fatal(err)
	}
	if _, pulled := img.Layers[DigestOf(base)]; pulled {
		t.Error("cached layer was re-pulled")
	}
	if _, pulled := img.Layers[DigestOf(app)]; !pulled {
		t.Error("uncached layer missing")
	}
}

func TestHTTPMultiArchPull(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	amdLayer := []byte("amd payload")
	armLayer := []byte("arm payload")
	amdD, err := c.Push("repo/multi", "amd64-only", []byte(`{"a":"amd"}`), [][]byte{amdLayer})
	if err != nil {
		t.Fatal(err)
	}
	armD, err := c.Push("repo/multi", "arm64-only", []byte(`{"a":"arm"}`), [][]byte{armLayer})
	if err != nil {
		t.Fatal(err)
	}
	list := ManifestList{SchemaVersion: 2, MediaType: MediaTypeManifestList,
		Manifests: []PlatformManifest{
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: amdD}, Platform: Platform{Architecture: "amd64", OS: "linux"}},
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: armD}, Platform: Platform{Architecture: "arm64", OS: "linux"}},
		}}
	raw, _ := MarshalCanonical(list)
	if _, err := c.PushManifest("repo/multi", "latest", MediaTypeManifestList, raw); err != nil {
		t.Fatal(err)
	}
	ref, _ := ParseReference("repo/multi:latest")
	img, err := c.Pull(ref, "arm64", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := img.Layers[DigestOf(armLayer)]; !ok {
		t.Error("arm64 pull fetched wrong layers")
	}
}

func TestHTTPCatalogAndTags(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	for _, repo := range []string{"aau/tp-retrieve", "aau/tp-decompress"} {
		for _, tag := range []string{"amd64", "arm64"} {
			if _, err := c.Push(repo, tag, []byte("{}"), [][]byte{[]byte(repo + tag)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	repos, err := c.Catalog()
	if err != nil || len(repos) != 2 {
		t.Fatalf("catalog = %v, %v", repos, err)
	}
	tags, err := c.Tags("aau/tp-retrieve")
	if err != nil || len(tags) != 2 {
		t.Fatalf("tags = %v, %v", tags, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	ref, _ := ParseReference("ghost/repo:latest")
	if _, err := c.Pull(ref, "amd64", nil); !errors.Is(err, ErrManifestNotFound) {
		t.Errorf("pull missing: %v", err)
	}
	if _, err := c.PullBlob("ghost/repo", DigestOf([]byte("x"))); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("blob missing: %v", err)
	}
	if _, err := c.Tags("ghost/repo"); err == nil {
		t.Error("tags of missing repo should error")
	}
}

func TestHTTPRateLimitRetry(t *testing.T) {
	c, srv := newHTTPRegistry(t)
	if _, err := c.Push("repo/x", "latest", []byte("{}"), [][]byte{[]byte("l")}); err != nil {
		t.Fatal(err)
	}
	// Gate: fail the first two pull attempts, then allow.
	var calls int
	srv.PullGate = func(string) error {
		calls++
		if calls <= 2 {
			return fmt.Errorf("anonymous pull limit")
		}
		return nil
	}
	var backoffs int
	c.Backoff = func(int) { backoffs++ }
	ref, _ := ParseReference("repo/x:latest")
	if _, err := c.Pull(ref, "amd64", nil); err != nil {
		t.Fatalf("pull should survive transient 429s: %v", err)
	}
	if backoffs == 0 {
		t.Error("client never backed off")
	}

	// Permanent limiting surfaces ErrRateLimited.
	calls = 0
	srv.PullGate = func(string) error { return fmt.Errorf("hard limit") }
	if _, err := c.Pull(ref, "amd64", nil); !errors.Is(err, ErrRateLimited) {
		t.Errorf("hard limit: %v", err)
	}
}

func TestHTTPThrottleBandwidth(t *testing.T) {
	c, srv := newHTTPRegistry(t)
	payload := bytes.Repeat([]byte("z"), 64<<10)
	if _, err := c.Push("repo/throttled", "latest", []byte("{}"), [][]byte{payload}); err != nil {
		t.Fatal(err)
	}
	// Wire the netsim rate limiter in as the hub simulator does; a huge
	// bandwidth keeps the test fast while exercising the path.
	srv.Throttle = func(repo string, r io.Reader) io.Reader {
		return netsim.NewRateLimitedReader(r, 1000*units.MBps)
	}
	ref, _ := ParseReference("repo/throttled:latest")
	img, err := c.Pull(ref, "amd64", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(img.Layers[DigestOf(payload)], payload) {
		t.Error("throttled payload corrupted")
	}
}

func TestHTTPDigestMismatchRejectedOnUpload(t *testing.T) {
	c, _ := newHTTPRegistry(t)
	// PushManifest referencing blobs that do not exist must fail.
	m := Manifest{SchemaVersion: 2, MediaType: MediaTypeManifest,
		Config: Descriptor{MediaType: MediaTypeConfig, Size: 2, Digest: DigestOf([]byte("no"))}}
	raw, _ := MarshalCanonical(m)
	if _, err := c.PushManifest("repo/x", "latest", MediaTypeManifest, raw); err == nil {
		t.Error("manifest with missing blobs accepted")
	}
}
