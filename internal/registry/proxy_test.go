package registry

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

func unmarshalTestHelper(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatal(err)
	}
}

func newProxyFixture(t *testing.T) (*Proxy, *Client) {
	t.Helper()
	upstream := registryOverHTTP(t)
	local := New(NewMemDriver())
	return NewProxy(local, upstream), upstream
}

func registryOverHTTP(t *testing.T) *Client {
	t.Helper()
	ts := httptest.NewServer(NewServer(New(NewMemDriver())))
	t.Cleanup(ts.Close)
	return NewClient(ts.URL, ts.Client())
}

func TestProxyPullThroughManifest(t *testing.T) {
	proxy, upstream := newProxyFixture(t)
	layer := bytes.Repeat([]byte("payload"), 100)
	if _, err := upstream.Push("lib/app", "v1", []byte("{}"), [][]byte{layer}); err != nil {
		t.Fatal(err)
	}

	// First fetch: miss, populated from upstream.
	mt, raw, _, err := proxy.GetManifest("lib/app", "v1")
	if err != nil {
		t.Fatal(err)
	}
	if mt != MediaTypeManifest || len(raw) == 0 {
		t.Fatalf("mt=%q", mt)
	}
	_, misses := proxy.Stats()
	if misses == 0 {
		t.Error("first fetch should miss")
	}

	// Second fetch: served locally.
	before, _ := proxy.Stats()
	if _, _, _, err := proxy.GetManifest("lib/app", "v1"); err != nil {
		t.Fatal(err)
	}
	after, _ := proxy.Stats()
	if after != before+1 {
		t.Error("second fetch should hit the cache")
	}

	// The layer is now local too.
	var m Manifest
	unmarshalTestHelper(t, raw, &m)
	if _, err := proxy.GetBlob("lib/app", m.Layers[0].Digest); err != nil {
		t.Fatal(err)
	}
	h, _ := proxy.Stats()
	if h < 2 {
		t.Errorf("blob should be cached: hits=%d", h)
	}
}

func TestProxyBlobPullThrough(t *testing.T) {
	proxy, upstream := newProxyFixture(t)
	blob := []byte("standalone blob")
	d, err := upstream.PushBlob("lib/app", blob)
	if err != nil {
		t.Fatal(err)
	}
	got, err := proxy.GetBlob("lib/app", d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Error("blob corrupted through proxy")
	}
	if r := proxy.HitRatio(); r != 0 {
		t.Errorf("hit ratio after one miss = %v", r)
	}
	if _, err := proxy.GetBlob("lib/app", d); err != nil {
		t.Fatal(err)
	}
	if r := proxy.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", r)
	}
}

func TestProxyManifestListPullThrough(t *testing.T) {
	proxy, upstream := newProxyFixture(t)
	amdD, err := upstream.Push("lib/multi", "amd", []byte(`{"a":1}`), [][]byte{[]byte("amd-l")})
	if err != nil {
		t.Fatal(err)
	}
	armD, err := upstream.Push("lib/multi", "arm", []byte(`{"a":2}`), [][]byte{[]byte("arm-l")})
	if err != nil {
		t.Fatal(err)
	}
	list := ManifestList{SchemaVersion: 2, MediaType: MediaTypeManifestList,
		Manifests: []PlatformManifest{
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: amdD}, Platform: Platform{Architecture: "amd64"}},
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: armD}, Platform: Platform{Architecture: "arm64"}},
		}}
	raw, _ := MarshalCanonical(list)
	if _, err := upstream.PushManifest("lib/multi", "latest", MediaTypeManifestList, raw); err != nil {
		t.Fatal(err)
	}

	mt, _, _, err := proxy.GetManifest("lib/multi", "latest")
	if err != nil {
		t.Fatal(err)
	}
	if mt != MediaTypeManifestList {
		t.Errorf("mt = %q", mt)
	}
	// Both architectures' layers must now be local.
	for _, l := range [][]byte{[]byte("amd-l"), []byte("arm-l")} {
		if _, ok := proxy.local.HasBlob(DigestOf(l)); !ok {
			t.Errorf("layer %q not cached", l)
		}
	}
}

func TestProxyUpstreamMissSurfaces(t *testing.T) {
	proxy, _ := newProxyFixture(t)
	if _, _, _, err := proxy.GetManifest("ghost/repo", "latest"); err == nil {
		t.Error("missing upstream manifest should error")
	}
	if _, err := proxy.GetBlob("ghost/repo", DigestOf([]byte("x"))); err == nil {
		t.Error("missing upstream blob should error")
	}
}
