package registry

import (
	"encoding/json"
	"strings"
)

// Garbage collection, mirroring `registry garbage-collect` in the
// distribution registry: blobs unreferenced by any stored manifest are
// deleted. The paper's regional registry runs on a 100 GB quota, so space
// reclamation is part of operating it.

// GCResult summarizes one collection pass.
type GCResult struct {
	// BlobsScanned is how many blobs were examined.
	BlobsScanned int
	// BlobsDeleted is how many unreferenced blobs were removed.
	BlobsDeleted int
	// BytesFreed is the total size of the deleted blobs.
	BytesFreed int64
}

// GC deletes every blob that no manifest references. Manifest links (and
// the tags pointing at them) are the GC roots; config and layer digests
// reachable from them are retained.
func (r *Registry) GC() (GCResult, error) {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Mark: collect referenced digests from every stored manifest.
	live := make(map[Digest]bool)
	keys, err := r.driver.ListMeta("repos/")
	if err != nil {
		return GCResult{}, err
	}
	for _, key := range keys {
		if !strings.Contains(key, "/manifests/") {
			continue
		}
		doc, err := r.driver.GetMeta(key)
		if err != nil {
			continue // racing delete; skip
		}
		var sm storedManifest
		if err := json.Unmarshal(doc, &sm); err != nil {
			continue
		}
		switch sm.MediaType {
		case MediaTypeManifest:
			var m Manifest
			if err := json.Unmarshal(sm.Raw, &m); err != nil {
				continue
			}
			live[m.Config.Digest] = true
			for _, l := range m.Layers {
				live[l.Digest] = true
			}
		case MediaTypeManifestList:
			// Child manifests are metadata, not blobs; nothing to mark.
		}
	}

	// Sweep: enumerate blobs via the driver. The blob namespace is not
	// directly listable through BlobStore, so drivers expose blobs through
	// ListMeta when they can; we instead sweep candidates recorded in the
	// blob index.
	res := GCResult{}
	for _, d := range r.blobIndexLocked() {
		res.BlobsScanned++
		if live[d] {
			continue
		}
		size, err := r.driver.StatBlob(d)
		if err != nil {
			continue
		}
		if err := r.driver.DeleteBlob(d); err != nil {
			continue
		}
		r.dropFromIndexLocked(d)
		res.BlobsDeleted++
		res.BytesFreed += size
	}
	return res, nil
}

// The registry tracks blob digests it has stored so GC can enumerate them
// regardless of driver capabilities.

func (r *Registry) recordBlobLocked(d Digest) {
	if r.blobIndex == nil {
		r.blobIndex = make(map[Digest]bool)
	}
	r.blobIndex[d] = true
}

func (r *Registry) blobIndexLocked() []Digest {
	out := make([]Digest, 0, len(r.blobIndex))
	for d := range r.blobIndex {
		out = append(out, d)
	}
	// Deterministic order for reproducible GC accounting.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (r *Registry) dropFromIndexLocked(d Digest) { delete(r.blobIndex, d) }
