package registry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Registry is the core V2 registry: repositories of manifests and tags over
// a content-addressed blob store.
type Registry struct {
	driver BlobStore
	mu     sync.Mutex // serializes tag/manifest link updates
	// blobIndex tracks stored blob digests so GC can enumerate them.
	blobIndex map[Digest]bool
}

// New returns a registry over the driver.
func New(driver BlobStore) *Registry { return &Registry{driver: driver} }

// PutBlob stores content after verifying it matches the digest.
func (r *Registry) PutBlob(d Digest, data []byte) error {
	if !d.Valid() {
		return fmt.Errorf("%w: %q", ErrInvalidDigest, d)
	}
	if got := DigestOf(data); got != d {
		return fmt.Errorf("%w: want %s, got %s", ErrDigestMismatch, d, got)
	}
	if err := r.driver.PutBlob(d, bytes.NewReader(data)); err != nil {
		return err
	}
	r.mu.Lock()
	r.recordBlobLocked(d)
	r.mu.Unlock()
	return nil
}

// GetBlob reads a blob fully, verifying content addressability.
func (r *Registry) GetBlob(d Digest) ([]byte, error) {
	rc, _, err := r.driver.GetBlob(d)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		return nil, err
	}
	if got := DigestOf(data); got != d {
		return nil, fmt.Errorf("%w: stored blob %s hashes to %s", ErrDigestMismatch, d, got)
	}
	return data, nil
}

// OpenBlob returns a streaming reader and the blob size without verifying
// (the HTTP server streams and lets the client verify).
func (r *Registry) OpenBlob(d Digest) (io.ReadCloser, int64, error) {
	return r.driver.GetBlob(d)
}

// HasBlob reports whether a blob exists and its size.
func (r *Registry) HasBlob(d Digest) (int64, bool) {
	n, err := r.driver.StatBlob(d)
	return n, err == nil
}

// DeleteBlob removes a blob.
func (r *Registry) DeleteBlob(d Digest) error { return r.driver.DeleteBlob(d) }

// PutManifest stores manifest JSON for repo, verifying every referenced
// blob already exists, records the manifest link, and (when tag is
// non-empty) points the tag at it. The manifest digest is returned.
func (r *Registry) PutManifest(repo, tag string, mediaType string, raw []byte) (Digest, error) {
	if !ValidRepoName(repo) {
		return "", fmt.Errorf("%w: %q", ErrInvalidName, repo)
	}
	if tag != "" && !ValidTag(tag) {
		return "", fmt.Errorf("registry: invalid tag %q", tag)
	}
	d := DigestOf(raw)

	switch mediaType {
	case MediaTypeManifest:
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return "", fmt.Errorf("registry: bad manifest: %w", err)
		}
		if _, ok := r.HasBlob(m.Config.Digest); !ok {
			return "", fmt.Errorf("%w: config %s", ErrBlobNotFound, m.Config.Digest)
		}
		for _, l := range m.Layers {
			if _, ok := r.HasBlob(l.Digest); !ok {
				return "", fmt.Errorf("%w: layer %s", ErrBlobNotFound, l.Digest)
			}
		}
	case MediaTypeManifestList:
		var l ManifestList
		if err := json.Unmarshal(raw, &l); err != nil {
			return "", fmt.Errorf("registry: bad manifest list: %w", err)
		}
		for _, pm := range l.Manifests {
			if _, err := r.driver.GetMeta(manifestKey(repo, pm.Digest)); err != nil {
				return "", fmt.Errorf("%w: child manifest %s", ErrManifestNotFound, pm.Digest)
			}
		}
	default:
		return "", fmt.Errorf("registry: unsupported media type %q", mediaType)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	doc, err := json.Marshal(storedManifest{MediaType: mediaType, Raw: raw})
	if err != nil {
		return "", err
	}
	if err := r.driver.PutMeta(manifestKey(repo, d), doc); err != nil {
		return "", err
	}
	if tag != "" {
		if err := r.driver.PutMeta(tagKey(repo, tag), []byte(d)); err != nil {
			return "", err
		}
	}
	return d, nil
}

// storedManifest wraps manifest bytes with their media type.
type storedManifest struct {
	MediaType string          `json:"mediaType"`
	Raw       json.RawMessage `json:"raw"`
}

// GetManifest fetches manifest JSON by tag or digest, returning the media
// type, the raw bytes, and the manifest digest.
func (r *Registry) GetManifest(repo, reference string) (mediaType string, raw []byte, d Digest, err error) {
	if !ValidRepoName(repo) {
		return "", nil, "", fmt.Errorf("%w: %q", ErrInvalidName, repo)
	}
	if strings.HasPrefix(reference, "sha256:") {
		d = Digest(reference)
		if !d.Valid() {
			return "", nil, "", fmt.Errorf("%w: %q", ErrInvalidDigest, reference)
		}
	} else {
		data, err := r.driver.GetMeta(tagKey(repo, reference))
		if err != nil {
			return "", nil, "", fmt.Errorf("%w: %s:%s", ErrManifestNotFound, repo, reference)
		}
		d = Digest(data)
	}
	doc, err := r.driver.GetMeta(manifestKey(repo, d))
	if err != nil {
		return "", nil, "", fmt.Errorf("%w: %s@%s", ErrManifestNotFound, repo, d)
	}
	var sm storedManifest
	if err := json.Unmarshal(doc, &sm); err != nil {
		return "", nil, "", err
	}
	if got := DigestOf(sm.Raw); got != d {
		return "", nil, "", fmt.Errorf("%w: manifest %s hashes to %s", ErrDigestMismatch, d, got)
	}
	return sm.MediaType, sm.Raw, d, nil
}

// DeleteManifest removes a manifest link (tags pointing at it dangle, as in
// the distribution registry).
func (r *Registry) DeleteManifest(repo string, d Digest) error {
	if _, err := r.driver.GetMeta(manifestKey(repo, d)); err != nil {
		return fmt.Errorf("%w: %s@%s", ErrManifestNotFound, repo, d)
	}
	return r.driver.DeleteMeta(manifestKey(repo, d))
}

// Tags lists a repository's tags, sorted.
func (r *Registry) Tags(repo string) ([]string, error) {
	if !ValidRepoName(repo) {
		return nil, fmt.Errorf("%w: %q", ErrInvalidName, repo)
	}
	keys, err := r.driver.ListMeta(tagPrefix(repo))
	if err != nil {
		return nil, err
	}
	var out []string
	for _, k := range keys {
		out = append(out, k[len(tagPrefix(repo)):])
	}
	sort.Strings(out)
	if len(out) == 0 {
		// Distinguish empty repo from unknown repo via manifests.
		ms, err := r.driver.ListMeta(manifestPrefix(repo))
		if err != nil || len(ms) == 0 {
			return nil, fmt.Errorf("%w: %q", ErrRepoNotFound, repo)
		}
	}
	return out, nil
}

// Repositories lists all repositories with at least one manifest, sorted.
func (r *Registry) Repositories() ([]string, error) {
	keys, err := r.driver.ListMeta("repos/")
	if err != nil {
		return nil, err
	}
	seen := map[string]bool{}
	for _, k := range keys {
		rest := k[len("repos/"):]
		// Keys look like "<repo>/manifests/<digest>" or "<repo>/tags/<tag>".
		if i := strings.Index(rest, "/manifests/"); i > 0 {
			seen[rest[:i]] = true
		} else if i := strings.Index(rest, "/tags/"); i > 0 {
			seen[rest[:i]] = true
		}
	}
	out := make([]string, 0, len(seen))
	for repo := range seen {
		out = append(out, repo)
	}
	sort.Strings(out)
	return out, nil
}

// ResolveForArch resolves a reference to the concrete schema2 manifest for
// an architecture, traversing a manifest list when present.
func (r *Registry) ResolveForArch(repo, reference, arch string) (Manifest, Digest, error) {
	mt, raw, d, err := r.GetManifest(repo, reference)
	if err != nil {
		return Manifest{}, "", err
	}
	switch mt {
	case MediaTypeManifest:
		var m Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			return Manifest{}, "", err
		}
		return m, d, nil
	case MediaTypeManifestList:
		var l ManifestList
		if err := json.Unmarshal(raw, &l); err != nil {
			return Manifest{}, "", err
		}
		pm, ok := l.ForArch(arch)
		if !ok {
			return Manifest{}, "", fmt.Errorf("%w: no %s manifest in list %s", ErrManifestNotFound, arch, d)
		}
		return r.ResolveForArch(repo, string(pm.Digest), arch)
	default:
		return Manifest{}, "", fmt.Errorf("registry: unsupported media type %q", mt)
	}
}

func manifestKey(repo string, d Digest) string { return "repos/" + repo + "/manifests/" + string(d) }
func manifestPrefix(repo string) string        { return "repos/" + repo + "/manifests/" }
func tagKey(repo, tag string) string           { return "repos/" + repo + "/tags/" + tag }
func tagPrefix(repo string) string             { return "repos/" + repo + "/tags/" }
