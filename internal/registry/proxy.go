package registry

import (
	"errors"
	"fmt"
	"sync"
)

// Proxy is a pull-through cache registry: misses are fetched from an
// upstream registry (Docker Hub, in the paper's setting) and persisted
// locally, so subsequent pulls are served from the edge. This is the
// behaviour of the edge-driven registry caches in the paper's related work
// (Makris et al.; Dragonfly/Kraken-style mirrors) and the operational mode
// `registry serve` calls a pull-through cache.
type Proxy struct {
	local    *Registry
	upstream *Client

	mu     sync.Mutex
	hits   int64
	misses int64
}

// NewProxy returns a pull-through cache over the local registry, backed by
// the upstream client.
func NewProxy(local *Registry, upstream *Client) *Proxy {
	return &Proxy{local: local, upstream: upstream}
}

// Stats returns cumulative (hits, misses) over blobs and manifests.
func (p *Proxy) Stats() (hits, misses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits, p.misses
}

func (p *Proxy) hit()  { p.mu.Lock(); p.hits++; p.mu.Unlock() }
func (p *Proxy) miss() { p.mu.Lock(); p.misses++; p.mu.Unlock() }

// GetBlob serves a blob, fetching and caching it from upstream on a miss.
func (p *Proxy) GetBlob(repo string, d Digest) ([]byte, error) {
	if data, err := p.local.GetBlob(d); err == nil {
		p.hit()
		return data, nil
	}
	p.miss()
	data, err := p.upstream.PullBlob(repo, d)
	if err != nil {
		return nil, fmt.Errorf("registry: proxy upstream: %w", err)
	}
	if err := p.local.PutBlob(d, data); err != nil {
		return nil, err
	}
	return data, nil
}

// GetManifest serves a manifest by tag or digest, populating the local
// registry (including all referenced blobs) on a miss so later pulls are
// fully local.
func (p *Proxy) GetManifest(repo, reference string) (mediaType string, raw []byte, d Digest, err error) {
	mt, raw, dig, err := p.local.GetManifest(repo, reference)
	if err == nil {
		p.hit()
		return mt, raw, dig, nil
	}
	if !errors.Is(err, ErrManifestNotFound) {
		return "", nil, "", err
	}
	p.miss()

	ref := Reference{Repository: repo, Tag: reference}
	if Digest(reference).Valid() {
		ref = Reference{Repository: repo, Digest: Digest(reference)}
	}
	// Pull through for both architectures present upstream; cache whatever
	// exists. We fetch the raw manifest first to preserve media type.
	mt, raw, dig, err = p.upstream.getManifest(repo, ref.referenceString())
	if err != nil {
		return "", nil, "", fmt.Errorf("registry: proxy upstream: %w", err)
	}
	switch mt {
	case MediaTypeManifest:
		if err := p.cacheImage(repo, raw); err != nil {
			return "", nil, "", err
		}
	case MediaTypeManifestList:
		var list ManifestList
		if err := unmarshal(raw, &list); err != nil {
			return "", nil, "", err
		}
		for _, pm := range list.Manifests {
			_, childRaw, _, err := p.upstream.getManifest(repo, string(pm.Digest))
			if err != nil {
				return "", nil, "", fmt.Errorf("registry: proxy child %s: %w", pm.Digest, err)
			}
			if err := p.cacheImage(repo, childRaw); err != nil {
				return "", nil, "", err
			}
		}
	default:
		return "", nil, "", fmt.Errorf("registry: proxy: unsupported media type %q", mt)
	}
	tag := ""
	if ref.Digest == "" {
		tag = ref.Tag
	}
	if _, err := p.local.PutManifest(repo, tag, mt, raw); err != nil {
		return "", nil, "", err
	}
	return mt, raw, dig, nil
}

// cacheImage stores a schema2 manifest's blobs and the manifest itself
// locally (untagged).
func (p *Proxy) cacheImage(repo string, raw []byte) error {
	var m Manifest
	if err := unmarshal(raw, &m); err != nil {
		return err
	}
	for _, desc := range append([]Descriptor{m.Config}, m.Layers...) {
		if _, ok := p.local.HasBlob(desc.Digest); ok {
			continue
		}
		data, err := p.upstream.PullBlob(repo, desc.Digest)
		if err != nil {
			return fmt.Errorf("registry: proxy blob %s: %w", desc.Digest, err)
		}
		if err := p.local.PutBlob(desc.Digest, data); err != nil {
			return err
		}
	}
	_, err := p.local.PutManifest(repo, "", MediaTypeManifest, raw)
	return err
}

// HitRatio returns hits/(hits+misses), or 0 before any request.
func (p *Proxy) HitRatio() float64 {
	h, m := p.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
