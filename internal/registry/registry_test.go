package registry

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"deep/internal/objectstore"
)

func TestDigest(t *testing.T) {
	d := DigestOf([]byte("hello"))
	if !d.Valid() {
		t.Errorf("digest %q invalid", d)
	}
	if d != DigestOf([]byte("hello")) {
		t.Error("digest not deterministic")
	}
	if d == DigestOf([]byte("world")) {
		t.Error("collision?!")
	}
	if Digest("sha256:xyz").Valid() {
		t.Error("malformed digest accepted")
	}
	if d.Hex() == "" || len(d.Hex()) != 64 {
		t.Errorf("hex = %q", d.Hex())
	}
}

func TestParseReference(t *testing.T) {
	cases := []struct {
		in        string
		repo, tag string
		wantErr   bool
	}{
		{"sina88/vp-transcode:amd64", "sina88/vp-transcode", "amd64", false},
		{"sina88/vp-transcode", "sina88/vp-transcode", "latest", false},
		{"aau/tp-retrieve:arm64", "aau/tp-retrieve", "arm64", false},
		{"UPPER/bad:tag", "", "", true},
		{"", "", "", true},
		{"repo:bad tag", "", "", true},
	}
	for _, c := range cases {
		ref, err := ParseReference(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("ParseReference(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseReference(%q): %v", c.in, err)
			continue
		}
		if ref.Repository != c.repo || ref.Tag != c.tag {
			t.Errorf("ParseReference(%q) = %+v", c.in, ref)
		}
	}
	// Digest references.
	d := DigestOf([]byte("x"))
	ref, err := ParseReference("repo/name@" + string(d))
	if err != nil || ref.Digest != d {
		t.Errorf("digest ref: %+v, %v", ref, err)
	}
	if _, err := ParseReference("repo@sha256:short"); err == nil {
		t.Error("bad digest accepted")
	}
}

func TestBlobRoundTripBothDrivers(t *testing.T) {
	store := objectstore.NewMemStore(0)
	osd, err := NewObjectStoreDriver(store, "registry")
	if err != nil {
		t.Fatal(err)
	}
	for name, driver := range map[string]BlobStore{"mem": NewMemDriver(), "objectstore": osd} {
		r := New(driver)
		data := []byte("layer payload")
		d := DigestOf(data)
		if err := r.PutBlob(d, data); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := r.GetBlob(d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("%s: corrupted", name)
		}
		if n, ok := r.HasBlob(d); !ok || n != int64(len(data)) {
			t.Errorf("%s: HasBlob = %d,%v", name, n, ok)
		}
		if err := r.PutBlob(DigestOf([]byte("other")), data); !errors.Is(err, ErrDigestMismatch) {
			t.Errorf("%s: digest mismatch not caught: %v", name, err)
		}
		if _, err := r.GetBlob(DigestOf([]byte("missing"))); !errors.Is(err, ErrBlobNotFound) {
			t.Errorf("%s: missing blob: %v", name, err)
		}
		if err := r.DeleteBlob(d); err != nil {
			t.Fatalf("%s: delete: %v", name, err)
		}
		if _, ok := r.HasBlob(d); ok {
			t.Errorf("%s: blob survived delete", name)
		}
	}
}

func pushTestImage(t *testing.T, r *Registry, repo, tag string, layers ...[]byte) Digest {
	t.Helper()
	config := []byte(`{"architecture":"amd64"}`)
	if err := r.PutBlob(DigestOf(config), config); err != nil {
		t.Fatal(err)
	}
	m := Manifest{SchemaVersion: 2, MediaType: MediaTypeManifest,
		Config: Descriptor{MediaType: MediaTypeConfig, Size: int64(len(config)), Digest: DigestOf(config)}}
	for _, l := range layers {
		if err := r.PutBlob(DigestOf(l), l); err != nil {
			t.Fatal(err)
		}
		m.Layers = append(m.Layers, Descriptor{MediaType: MediaTypeLayer, Size: int64(len(l)), Digest: DigestOf(l)})
	}
	raw, err := MarshalCanonical(m)
	if err != nil {
		t.Fatal(err)
	}
	d, err := r.PutManifest(repo, tag, MediaTypeManifest, raw)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestManifestLifecycle(t *testing.T) {
	r := New(NewMemDriver())
	d := pushTestImage(t, r, "sina88/vp-transcode", "amd64", []byte("l1"), []byte("l2"))

	mt, raw, got, err := r.GetManifest("sina88/vp-transcode", "amd64")
	if err != nil {
		t.Fatal(err)
	}
	if mt != MediaTypeManifest || got != d || len(raw) == 0 {
		t.Errorf("GetManifest = %q %q", mt, got)
	}
	// By digest too.
	_, _, got2, err := r.GetManifest("sina88/vp-transcode", string(d))
	if err != nil || got2 != d {
		t.Errorf("by digest: %v %v", got2, err)
	}
	tags, err := r.Tags("sina88/vp-transcode")
	if err != nil || len(tags) != 1 || tags[0] != "amd64" {
		t.Errorf("tags = %v, %v", tags, err)
	}
	repos, err := r.Repositories()
	if err != nil || len(repos) != 1 || repos[0] != "sina88/vp-transcode" {
		t.Errorf("repos = %v, %v", repos, err)
	}
	if err := r.DeleteManifest("sina88/vp-transcode", d); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.GetManifest("sina88/vp-transcode", string(d)); !errors.Is(err, ErrManifestNotFound) {
		t.Errorf("deleted manifest still there: %v", err)
	}
}

func TestPutManifestRejectsMissingBlobs(t *testing.T) {
	r := New(NewMemDriver())
	m := Manifest{SchemaVersion: 2, MediaType: MediaTypeManifest,
		Config: Descriptor{MediaType: MediaTypeConfig, Size: 1, Digest: DigestOf([]byte("missing"))}}
	raw, _ := MarshalCanonical(m)
	if _, err := r.PutManifest("repo", "latest", MediaTypeManifest, raw); !errors.Is(err, ErrBlobNotFound) {
		t.Errorf("missing config: %v", err)
	}
}

func TestManifestListMultiArch(t *testing.T) {
	r := New(NewMemDriver())
	amd := pushTestImage(t, r, "repo", "", []byte("amd-layer"))
	arm := pushTestImage(t, r, "repo", "", []byte("arm-layer"))
	list := ManifestList{SchemaVersion: 2, MediaType: MediaTypeManifestList,
		Manifests: []PlatformManifest{
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: amd}, Platform: Platform{Architecture: "amd64", OS: "linux"}},
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: arm}, Platform: Platform{Architecture: "arm64", OS: "linux"}},
		}}
	raw, _ := MarshalCanonical(list)
	if _, err := r.PutManifest("repo", "latest", MediaTypeManifestList, raw); err != nil {
		t.Fatal(err)
	}
	m, d, err := r.ResolveForArch("repo", "latest", "arm64")
	if err != nil {
		t.Fatal(err)
	}
	if d != arm {
		t.Errorf("resolved %v, want %v", d, arm)
	}
	if len(m.Layers) != 1 || m.Layers[0].Digest != DigestOf([]byte("arm-layer")) {
		t.Errorf("wrong layers: %+v", m)
	}
	if _, _, err := r.ResolveForArch("repo", "latest", "riscv"); !errors.Is(err, ErrManifestNotFound) {
		t.Errorf("unknown arch: %v", err)
	}
}

func TestManifestListRejectsMissingChildren(t *testing.T) {
	r := New(NewMemDriver())
	list := ManifestList{SchemaVersion: 2, MediaType: MediaTypeManifestList,
		Manifests: []PlatformManifest{
			{Descriptor: Descriptor{MediaType: MediaTypeManifest, Digest: DigestOf([]byte("ghost"))}, Platform: Platform{Architecture: "amd64"}},
		}}
	raw, _ := MarshalCanonical(list)
	if _, err := r.PutManifest("repo", "latest", MediaTypeManifestList, raw); !errors.Is(err, ErrManifestNotFound) {
		t.Errorf("missing child: %v", err)
	}
}

func TestTagsUnknownRepo(t *testing.T) {
	r := New(NewMemDriver())
	if _, err := r.Tags("ghost/repo"); !errors.Is(err, ErrRepoNotFound) {
		t.Errorf("unknown repo: %v", err)
	}
}

func TestValidNames(t *testing.T) {
	for _, good := range []string{"sina88/vp-transcode", "aau/tp-retrieve", "library/alpine", "a/b/c"} {
		if !ValidRepoName(good) {
			t.Errorf("%q should be valid", good)
		}
	}
	for _, bad := range []string{"", "UPPER", "/lead", "trail/", "a//b"} {
		if ValidRepoName(bad) {
			t.Errorf("%q should be invalid", bad)
		}
	}
	for _, good := range []string{"latest", "amd64", "v1.2.3", "_tmp"} {
		if !ValidTag(good) {
			t.Errorf("tag %q should be valid", good)
		}
	}
	for _, bad := range []string{"", "-lead", "has space"} {
		if ValidTag(bad) {
			t.Errorf("tag %q should be invalid", bad)
		}
	}
}

func TestBlobContentAddressProperty(t *testing.T) {
	r := New(NewMemDriver())
	f := func(data []byte) bool {
		d := DigestOf(data)
		if err := r.PutBlob(d, data); err != nil {
			return false
		}
		got, err := r.GetBlob(d)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObjectStoreDriverPersistsAcrossRegistryInstances(t *testing.T) {
	store := objectstore.NewMemStore(0)
	d1, err := NewObjectStoreDriver(store, "registry")
	if err != nil {
		t.Fatal(err)
	}
	r1 := New(d1)
	manifestDigest := pushTestImage(t, r1, "aau/tp-retrieve", "arm64", []byte("layer"))

	// A second registry instance over the same bucket sees everything —
	// the object store is the source of truth, as with MinIO-backed
	// distribution.
	d2, err := NewObjectStoreDriver(store, "registry")
	if err != nil {
		t.Fatal(err)
	}
	r2 := New(d2)
	_, _, got, err := r2.GetManifest("aau/tp-retrieve", "arm64")
	if err != nil || got != manifestDigest {
		t.Fatalf("manifest not persisted: %v %v", got, err)
	}
	if _, ok := r2.HasBlob(DigestOf([]byte("layer"))); !ok {
		t.Error("blob not persisted")
	}
}
