// Package registry implements a Docker Registry HTTP API V2 service:
// content-addressed blobs, schema2 image manifests and multi-arch manifest
// lists, tags, and a catalog, over pluggable storage drivers (in-memory or
// the MinIO-like object store — the paper's regional registry layering). It
// also provides the pull/push client used by the emulated edge devices.
package registry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strings"
)

// Media types, matching the Docker distribution spec.
const (
	MediaTypeManifest     = "application/vnd.docker.distribution.manifest.v2+json"
	MediaTypeManifestList = "application/vnd.docker.distribution.manifest.list.v2+json"
	MediaTypeConfig       = "application/vnd.docker.container.image.v1+json"
	MediaTypeLayer        = "application/vnd.docker.image.rootfs.diff.tar.gzip"
)

// Digest is a content address of the form "sha256:<hex>".
type Digest string

// DigestOf computes the canonical sha256 digest of data.
func DigestOf(data []byte) Digest {
	sum := sha256.Sum256(data)
	return Digest("sha256:" + hex.EncodeToString(sum[:]))
}

var digestRE = regexp.MustCompile(`^sha256:[a-f0-9]{64}$`)

// Valid reports whether the digest is well-formed.
func (d Digest) Valid() bool { return digestRE.MatchString(string(d)) }

// Hex returns the hex portion of the digest.
func (d Digest) Hex() string {
	if i := strings.IndexByte(string(d), ':'); i >= 0 {
		return string(d)[i+1:]
	}
	return string(d)
}

// Descriptor references a blob by digest, size, and media type.
type Descriptor struct {
	MediaType string `json:"mediaType"`
	Size      int64  `json:"size"`
	Digest    Digest `json:"digest"`
}

// Manifest is a schema2 image manifest: a config blob plus ordered layers.
type Manifest struct {
	SchemaVersion int          `json:"schemaVersion"`
	MediaType     string       `json:"mediaType"`
	Config        Descriptor   `json:"config"`
	Layers        []Descriptor `json:"layers"`
}

// TotalSize returns the sum of the layer sizes (the pullable payload).
func (m Manifest) TotalSize() int64 {
	var n int64
	for _, l := range m.Layers {
		n += l.Size
	}
	return n
}

// Platform identifies an architecture/OS pair in a manifest list.
type Platform struct {
	Architecture string `json:"architecture"`
	OS           string `json:"os"`
}

// PlatformManifest is one entry of a manifest list.
type PlatformManifest struct {
	Descriptor
	Platform Platform `json:"platform"`
}

// ManifestList is a multi-arch image index.
type ManifestList struct {
	SchemaVersion int                `json:"schemaVersion"`
	MediaType     string             `json:"mediaType"`
	Manifests     []PlatformManifest `json:"manifests"`
}

// ForArch returns the child manifest descriptor for an architecture.
func (l ManifestList) ForArch(arch string) (PlatformManifest, bool) {
	for _, m := range l.Manifests {
		if m.Platform.Architecture == arch {
			return m, true
		}
	}
	return PlatformManifest{}, false
}

// MarshalCanonical encodes a manifest deterministically so its digest is
// stable.
func MarshalCanonical(v any) ([]byte, error) {
	return json.Marshal(v)
}

// Well-known registry errors.
var (
	ErrBlobNotFound     = errors.New("registry: blob unknown")
	ErrManifestNotFound = errors.New("registry: manifest unknown")
	ErrTagNotFound      = errors.New("registry: tag unknown")
	ErrRepoNotFound     = errors.New("registry: repository unknown")
	ErrDigestMismatch   = errors.New("registry: digest verification failed")
	ErrInvalidName      = errors.New("registry: invalid repository name")
	ErrInvalidDigest    = errors.New("registry: invalid digest")
	ErrUploadNotFound   = errors.New("registry: upload session unknown")
	ErrRateLimited      = errors.New("registry: too many requests")
)

var repoNameRE = regexp.MustCompile(`^[a-z0-9]+(?:[._/-][a-z0-9]+)*$`)

// ValidRepoName reports whether the repository name is acceptable (e.g.
// "sina88/vp-transcode" or "aau/tp-retrieve").
func ValidRepoName(name string) bool {
	return name != "" && len(name) <= 255 && repoNameRE.MatchString(name)
}

var tagRE = regexp.MustCompile(`^[A-Za-z0-9_][A-Za-z0-9._-]{0,127}$`)

// ValidTag reports whether the tag is acceptable (e.g. "amd64", "latest").
func ValidTag(tag string) bool { return tagRE.MatchString(tag) }

// Reference is a parsed "repo:tag" or "repo@sha256:..." image reference.
type Reference struct {
	Repository string
	Tag        string
	Digest     Digest
}

// ParseReference parses an image reference. A bare repository defaults to
// tag "latest".
func ParseReference(s string) (Reference, error) {
	if i := strings.Index(s, "@"); i >= 0 {
		repo, dig := s[:i], Digest(s[i+1:])
		if !ValidRepoName(repo) {
			return Reference{}, fmt.Errorf("%w: %q", ErrInvalidName, repo)
		}
		if !dig.Valid() {
			return Reference{}, fmt.Errorf("%w: %q", ErrInvalidDigest, dig)
		}
		return Reference{Repository: repo, Digest: dig}, nil
	}
	repo, tag := s, "latest"
	if i := strings.LastIndex(s, ":"); i >= 0 && !strings.Contains(s[i+1:], "/") {
		repo, tag = s[:i], s[i+1:]
	}
	if !ValidRepoName(repo) {
		return Reference{}, fmt.Errorf("%w: %q", ErrInvalidName, repo)
	}
	if !ValidTag(tag) {
		return Reference{}, fmt.Errorf("registry: invalid tag %q", tag)
	}
	return Reference{Repository: repo, Tag: tag}, nil
}

// String renders the reference.
func (r Reference) String() string {
	if r.Digest != "" {
		return r.Repository + "@" + string(r.Digest)
	}
	return r.Repository + ":" + r.Tag
}

// unmarshal decodes JSON, shared by the proxy.
func unmarshal(raw []byte, v any) error { return json.Unmarshal(raw, v) }
