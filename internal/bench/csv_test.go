package bench

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteTable2CSV(t *testing.T) {
	rows, err := Table2(2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteTable2CSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 13 { // header + 12 rows
		t.Fatalf("records = %d", len(records))
	}
	if records[0][0] != "app" || len(records[1]) != 15 {
		t.Errorf("unexpected CSV shape: %v", records[0])
	}
}

func TestWriteFig3bCSV(t *testing.T) {
	rows, err := Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteFig3bCSV(&sb, rows); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 7 { // header + 6
		t.Fatalf("records = %d", len(records))
	}
}

func TestScaleSweep(t *testing.T) {
	rows, err := ScaleSweep([]int{4, 8, 16}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DeepEnergy <= 0 || r.RandomEnergy <= 0 {
			t.Errorf("n=%d: degenerate energies %+v", r.Microservices, r)
		}
		// DEEP must not lose to random placement.
		if r.DeepEnergy > r.RandomEnergy*1.001 {
			t.Errorf("n=%d: DEEP %.0f worse than random %.0f", r.Microservices, r.DeepEnergy, r.RandomEnergy)
		}
	}
	if out := FormatScaleSweep(rows); !strings.Contains(out, "saving") {
		t.Error("format broken")
	}
}
