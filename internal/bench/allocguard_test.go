package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: deep
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSchedule/deep/video/testbed/cold-8         	   72714	     17066 ns/op	    9232 B/op	     175 allocs/op
BenchmarkSchedule/deep/video/testbed/warm-8         	  451887	      2754 ns/op	    2184 B/op	      18 allocs/op
BenchmarkFleetThroughput/workers=4/cache=false-8    	    3000	     72966 ns/op	 13706 req/s	   26416 B/op	     414 allocs/op
BenchmarkFingerprintPerRequest 	  300000	      3900 ns/op	     120 B/op	       3 allocs/op
PASS
ok  	deep	7.856s
`

func TestParseBenchAllocs(t *testing.T) {
	got, err := ParseBenchAllocs(strings.NewReader(sampleBenchOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"deep/video/testbed/cold": 175,
		"deep/video/testbed/warm": 18,
		"workers=4/cache=false":   414,
		"FingerprintPerRequest":   3,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d cases, want %d: %v", len(got), len(want), got)
	}
	for name, allocs := range want {
		if got[name] != allocs {
			t.Errorf("%s = %v allocs/op, want %v", name, got[name], allocs)
		}
	}
}

func TestCheckAllocRegressions(t *testing.T) {
	baselines := map[string]float64{
		"deep/video/testbed/warm": 18,
		"workers=4/cache=false":   414,
		"not/measured":            5,
	}
	measured := map[string]float64{
		"deep/video/testbed/warm": 50,  // 2.8x: regression
		"workers=4/cache=false":   500, // 1.2x: within budget
		"unknown/case":            9999,
	}
	regs := CheckAllocRegressions(measured, baselines, 2)
	if len(regs) != 1 {
		t.Fatalf("got %d regressions, want 1: %v", len(regs), regs)
	}
	if regs[0].Case != "deep/video/testbed/warm" || regs[0].Measured != 50 {
		t.Fatalf("unexpected regression: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "2.78x") {
		t.Errorf("severity missing from %q", regs[0].String())
	}
	if regs := CheckAllocRegressions(measured, baselines, 3); len(regs) != 0 {
		t.Errorf("ratio 3 should pass, got %v", regs)
	}
}

func TestLoadAllocBaselines(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	os.WriteFile(a, []byte(`{"results":[
		{"case":"x/warm","ns_per_op":10,"allocs_per_op":7},
		{"case":"throughput-only","req_per_s":1000}
	]}`), 0o644)
	os.WriteFile(b, []byte(`{"results":[{"case":"x/warm","allocs_per_op":9}]}`), 0o644)
	got, err := LoadAllocBaselines(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["x/warm"] != 9 {
		t.Fatalf("baselines = %v, want x/warm=9 (later file wins)", got)
	}
}

// TestRecordedBaselinesParse keeps the guard honest against the real
// recorded files: both BENCH JSONs must load and cover the cases CI runs.
func TestRecordedBaselinesParse(t *testing.T) {
	root := "../.."
	got, err := LoadAllocBaselines(
		filepath.Join(root, "BENCH_sched.json"),
		filepath.Join(root, "BENCH_sim.json"),
		filepath.Join(root, "BENCH_fleet.json"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"deep/video/testbed/warm",
		"deep/synthetic12/scaled50/warm",
		"sim/video/testbed/warm",
		"sim/synthetic12/scaled50/cold",
		"workers=4/cache=false/sim=cold",
		"workers=4/cache=true/sim=warm",
		"StageRecord",
	} {
		if _, ok := got[want]; !ok {
			t.Errorf("recorded baselines missing %q (have %d cases)", want, len(got))
		}
	}
}
