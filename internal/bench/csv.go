package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/workload"
)

// CSV emitters so the regenerated experiment data can be plotted with
// external tooling.

// WriteTable2CSV emits the simulated Table II with the paper's ranges.
func WriteTable2CSV(w io.Writer, rows []Table2Row) error {
	cw := csv.NewWriter(w)
	header := []string{
		"app", "microservice", "size_bytes",
		"tp_min", "tp_max", "ct_min", "ct_max",
		"ec_medium_min", "ec_medium_max", "ec_small_min", "ec_small_max",
		"paper_ec_medium_min", "paper_ec_medium_max", "paper_ec_small_min", "paper_ec_small_max",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{
			r.App, r.Name, strconv.FormatInt(int64(r.Size), 10),
			f(r.Tp.Min), f(r.Tp.Max), f(r.CT.Min), f(r.CT.Max),
			f(r.ECMedium.Min), f(r.ECMedium.Max), f(r.ECSmall.Min), f(r.ECSmall.Max),
			f(r.Paper.ECMedMin), f(r.Paper.ECMedMax), f(r.Paper.ECSmallMin), f(r.Paper.ECSmallMax),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFig3bCSV emits the method-comparison series.
func WriteFig3bCSV(w io.Writer, rows []Fig3bRow) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"app", "method", "energy_j", "delta_vs_deep_j"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.App, r.Method, f(float64(r.Energy)), f(r.DeltaVsDEEP)}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// ScaleRow is one point of the scalability sweep: how scheduling time and
// outcome quality evolve as applications grow beyond the paper's
// six-microservice pipelines.
type ScaleRow struct {
	Microservices int
	DeepEnergy    float64 // J
	RandomEnergy  float64 // J
	// Improvement is the fraction of random's energy DEEP saves.
	Improvement float64
}

// ScaleSweep schedules synthetic applications of growing size on the
// calibrated testbed and compares DEEP with the random baseline.
func ScaleSweep(sizes []int, seed int64) ([]ScaleRow, error) {
	cluster := workload.Testbed()
	var rows []ScaleRow
	for _, n := range sizes {
		app, err := workload.Generate(workload.DefaultGeneratorConfig(n, seed))
		if err != nil {
			return nil, err
		}
		pDeep, err := sched.NewDEEP().Schedule(app, cluster)
		if err != nil {
			return nil, err
		}
		rDeep, err := sim.Run(app, cluster, pDeep, sim.Options{})
		if err != nil {
			return nil, err
		}
		pRand, err := sched.NewRandom(seed).Schedule(app, cluster)
		if err != nil {
			return nil, err
		}
		rRand, err := sim.Run(app, cluster, pRand, sim.Options{})
		if err != nil {
			return nil, err
		}
		row := ScaleRow{
			Microservices: n,
			DeepEnergy:    float64(rDeep.TotalEnergy),
			RandomEnergy:  float64(rRand.TotalEnergy),
		}
		if row.RandomEnergy > 0 {
			row.Improvement = 1 - row.DeepEnergy/row.RandomEnergy
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatScaleSweep renders the sweep.
func FormatScaleSweep(rows []ScaleRow) string {
	out := "Ablation: scalability on synthetic applications\n"
	out += fmt.Sprintf("%-6s %14s %14s %12s\n", "n", "DEEP [kJ]", "random [kJ]", "saving")
	for _, r := range rows {
		out += fmt.Sprintf("%-6d %14.3f %14.3f %11.1f%%\n",
			r.Microservices, r.DeepEnergy/1000, r.RandomEnergy/1000, 100*r.Improvement)
	}
	return out
}
