package bench

import (
	"fmt"
	"strings"

	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

// SchedulerComparisonRow is one line of the scheduler ablation.
type SchedulerComparisonRow struct {
	App      string
	Method   string
	Energy   units.Joules
	Makespan float64
}

// SchedulerComparison runs every scheduler (DEEP, exclusives, greedy,
// HEFT-like, round-robin, random) on both apps.
func SchedulerComparison(seed int64) ([]SchedulerComparisonRow, error) {
	cluster := workload.Testbed()
	var rows []SchedulerComparisonRow
	for _, app := range workload.Apps() {
		for _, s := range sched.All(seed) {
			p, err := s.Schedule(app, cluster)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(app, cluster, p, sim.Options{})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SchedulerComparisonRow{
				App: app.Name, Method: s.Name(),
				Energy: res.TotalEnergy, Makespan: res.Makespan,
			})
		}
	}
	return rows, nil
}

// FormatSchedulerComparison renders the scheduler ablation.
func FormatSchedulerComparison(rows []SchedulerComparisonRow) string {
	var b strings.Builder
	b.WriteString("Ablation: scheduling methods\n")
	fmt.Fprintf(&b, "%-18s %-20s %12s %14s\n", "App", "Method", "Energy [kJ]", "Makespan [s]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-20s %12.3f %14.1f\n", r.App, r.Method, r.Energy.Kilojoules(), r.Makespan)
	}
	return b.String()
}

// BandwidthSweepRow is one point of the regional-bandwidth sweep: where does
// exclusively-regional overtake exclusively-hub?
type BandwidthSweepRow struct {
	App              string
	RegionalBW       units.Bandwidth
	DeepEnergy       units.Joules
	RegionalEnergy   units.Joules
	HubEnergy        units.Joules
	RegionalBeatsHub bool
}

// BandwidthSweep scales the regional registry's links from 0.25× to 4× of
// the calibrated values and reports the crossover.
func BandwidthSweep(app string, factors []float64) ([]BandwidthSweepRow, error) {
	var rows []BandwidthSweepRow
	for _, f := range factors {
		cluster := workload.Testbed()
		for _, dev := range []string{workload.MediumNode, workload.SmallNode} {
			bw := cluster.Topology.Bandwidth(workload.RegionalNode, dev)
			if err := cluster.Topology.SetBandwidth(workload.RegionalNode, dev, bw*units.Bandwidth(f)); err != nil {
				return nil, err
			}
		}
		theApp := workload.VideoProcessing()
		if app == "text" {
			theApp = workload.TextProcessing()
		}
		row := BandwidthSweepRow{App: theApp.Name,
			RegionalBW: cluster.Topology.Bandwidth(workload.RegionalNode, workload.MediumNode)}
		for _, s := range []sched.Scheduler{sched.NewDEEP(), sched.NewExclusive("regional"), sched.NewExclusive("hub")} {
			p, err := s.Schedule(theApp, cluster)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(theApp, cluster, p, sim.Options{})
			if err != nil {
				return nil, err
			}
			switch s.Name() {
			case "deep":
				row.DeepEnergy = res.TotalEnergy
			case "exclusive-regional":
				row.RegionalEnergy = res.TotalEnergy
			case "exclusive-hub":
				row.HubEnergy = res.TotalEnergy
			}
		}
		row.RegionalBeatsHub = row.RegionalEnergy < row.HubEnergy
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatBandwidthSweep renders the sweep.
func FormatBandwidthSweep(rows []BandwidthSweepRow) string {
	var b strings.Builder
	b.WriteString("Ablation: regional registry bandwidth sweep\n")
	fmt.Fprintf(&b, "%-18s %-14s %12s %14s %12s %s\n", "App", "Regional BW", "DEEP [kJ]", "Regional [kJ]", "Hub [kJ]", "regional wins")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-14s %12.3f %14.3f %12.3f %v\n",
			r.App, r.RegionalBW, r.DeepEnergy.Kilojoules(), r.RegionalEnergy.Kilojoules(), r.HubEnergy.Kilojoules(), r.RegionalBeatsHub)
	}
	return b.String()
}

// CacheAblationRow reports warm-vs-cold deployment cost.
type CacheAblationRow struct {
	App        string
	Run        int
	BytesCold  units.Bytes // bytes pulled this run
	DeployTime float64     // summed T_d
}

// CacheAblation runs the DEEP placement repeatedly with warm caches: the
// second run should pull nothing.
func CacheAblation(appName string, runs int) ([]CacheAblationRow, error) {
	cluster := workload.Testbed()
	app := workload.VideoProcessing()
	if appName == "text" {
		app = workload.TextProcessing()
	}
	s := sched.NewDEEP()
	p, err := s.Schedule(app, cluster)
	if err != nil {
		return nil, err
	}
	var rows []CacheAblationRow
	for run := 0; run < runs; run++ {
		res, err := sim.Run(app, cluster, p, sim.Options{WarmCaches: run > 0})
		if err != nil {
			return nil, err
		}
		var pulled units.Bytes
		var td float64
		for _, m := range res.Microservices {
			pulled += m.BytesPulled
			td += m.DeployTime
		}
		rows = append(rows, CacheAblationRow{App: app.Name, Run: run, BytesCold: pulled, DeployTime: td})
	}
	return rows, nil
}

// FormatCacheAblation renders the cache study.
func FormatCacheAblation(rows []CacheAblationRow) string {
	var b strings.Builder
	b.WriteString("Ablation: layer cache across repeated deployments\n")
	fmt.Fprintf(&b, "%-18s %-5s %-12s %s\n", "App", "Run", "Pulled", "ΣT_d [s]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-5d %-12s %.1f\n", r.App, r.Run, r.BytesCold, r.DeployTime)
	}
	return b.String()
}

// ContentionRow quantifies what shared-uplink awareness buys: the energy of
// a placement that ignores contention versus the Nash placement, on a
// cluster whose regional uplink is heavily shared.
type ContentionRow struct {
	App            string
	NashEnergy     units.Joules
	BlindEnergy    units.Joules
	PenaltyOfBlind float64 // percent
}

// ContentionAblation makes contention matter (regional links scaled down to
// a single busy server) and compares the Nash scheduler with greedy (which
// prices options as if it always pulled alone).
func ContentionAblation() ([]ContentionRow, error) {
	var rows []ContentionRow
	for _, appName := range []string{"video", "text"} {
		cluster := workload.Testbed()
		// A slow shared regional server makes concurrent pulls painful.
		for _, dev := range []string{workload.MediumNode, workload.SmallNode} {
			if err := cluster.Topology.SetBandwidth(workload.RegionalNode, dev, 4*units.MBps); err != nil {
				return nil, err
			}
		}
		app := workload.VideoProcessing()
		if appName == "text" {
			app = workload.TextProcessing()
		}
		nashP, err := sched.NewDEEP().Schedule(app, cluster)
		if err != nil {
			return nil, err
		}
		nashRes, err := sim.Run(app, cluster, nashP, sim.Options{})
		if err != nil {
			return nil, err
		}
		blindP, err := sched.NewGreedyEnergy().Schedule(app, cluster)
		if err != nil {
			return nil, err
		}
		blindRes, err := sim.Run(app, cluster, blindP, sim.Options{})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ContentionRow{
			App:         app.Name,
			NashEnergy:  nashRes.TotalEnergy,
			BlindEnergy: blindRes.TotalEnergy,
			PenaltyOfBlind: 100 * (float64(blindRes.TotalEnergy) - float64(nashRes.TotalEnergy)) /
				float64(nashRes.TotalEnergy),
		})
	}
	return rows, nil
}

// FormatContentionAblation renders the contention study.
func FormatContentionAblation(rows []ContentionRow) string {
	var b strings.Builder
	b.WriteString("Ablation: congestion-aware (Nash) vs congestion-blind (greedy) registry selection\n")
	fmt.Fprintf(&b, "%-18s %12s %12s %10s\n", "App", "Nash [kJ]", "Blind [kJ]", "penalty")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %12.3f %12.3f %9.2f%%\n", r.App, r.NashEnergy.Kilojoules(), r.BlindEnergy.Kilojoules(), r.PenaltyOfBlind)
	}
	return b.String()
}
