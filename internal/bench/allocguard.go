package bench

// Alloc-regression guard: CI's bench smoke step pipes `go test -bench
// -benchmem` output through this checker, which compares each benchmark's
// allocs/op against the baselines recorded in BENCH_sched.json /
// BENCH_fleet.json and fails on a configurable blow-up (the CI wiring uses
// 2x). ns/op is deliberately not guarded — CI machines vary too much — but
// allocation counts are deterministic for this codebase's benchmarks, so a
// doubling always means someone put allocations back on a hot path.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// AllocBaseline is one recorded benchmark case.
type AllocBaseline struct {
	// Case is the benchmark sub-name: the benchmark's name with the
	// top-level Benchmark* function and the trailing -GOMAXPROCS stripped,
	// e.g. "deep/video/testbed/warm" or "workers=4/cache=false".
	Case        string  `json:"case"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// benchFile is the subset of BENCH_*.json the guard reads.
type benchFile struct {
	Results []AllocBaseline `json:"results"`
}

// LoadAllocBaselines reads the recorded allocs/op per case from one or more
// BENCH_*.json files. Later files win on duplicate case names. Rows without
// an allocs_per_op (e.g. throughput-only entries) are skipped.
func LoadAllocBaselines(paths ...string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, path := range paths {
		raw, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f benchFile
		if err := json.Unmarshal(raw, &f); err != nil {
			return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
		}
		for _, r := range f.Results {
			if r.Case != "" && r.AllocsPerOp > 0 {
				out[r.Case] = r.AllocsPerOp
			}
		}
	}
	return out, nil
}

// ParseBenchAllocs scans `go test -bench -benchmem` output and returns
// allocs/op keyed by normalized benchmark sub-name (top-level function name
// and -GOMAXPROCS suffix stripped, so lines match baseline case names).
// Lines that are not benchmark results are ignored.
func ParseBenchAllocs(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, allocs, ok := parseBenchLine(sc.Text())
		if ok {
			out[name] = allocs
		}
	}
	return out, sc.Err()
}

// parseBenchLine extracts (normalized name, allocs/op) from one output
// line, e.g.
//
//	BenchmarkSchedule/deep/video/testbed/warm-8  43862  26329 ns/op  9512 B/op  23 allocs/op
func parseBenchLine(line string) (string, float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", 0, false
	}
	allocs := -1.0
	for i := 1; i < len(fields); i++ {
		if fields[i] == "allocs/op" {
			v, err := strconv.ParseFloat(fields[i-1], 64)
			if err != nil {
				return "", 0, false
			}
			allocs = v
		}
	}
	if allocs < 0 {
		return "", 0, false
	}
	return normalizeBenchName(fields[0]), allocs, true
}

// normalizeBenchName strips the top-level Benchmark* component and the
// trailing -GOMAXPROCS: "BenchmarkSchedule/deep/video/testbed/warm-8" →
// "deep/video/testbed/warm". A benchmark without sub-names keeps its
// function name (minus the Benchmark prefix).
func normalizeBenchName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[i+1:]
	}
	return strings.TrimPrefix(name, "Benchmark")
}

// AllocRegression is one measured case exceeding its alloc budget.
type AllocRegression struct {
	Case     string
	Baseline float64
	Measured float64
}

func (r AllocRegression) String() string {
	return fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f (%.2fx)",
		r.Case, r.Measured, r.Baseline, r.Measured/r.Baseline)
}

// CheckAllocRegressions compares measured allocs/op against baselines and
// returns every case whose measurement exceeds maxRatio × baseline, sorted
// by severity. Measured cases without a baseline (and vice versa) are
// ignored: the guard only pins cases someone deliberately recorded.
func CheckAllocRegressions(measured, baselines map[string]float64, maxRatio float64) []AllocRegression {
	var out []AllocRegression
	for name, base := range baselines {
		got, ok := measured[name]
		if !ok {
			continue
		}
		if got > base*maxRatio {
			out = append(out, AllocRegression{Case: name, Baseline: base, Measured: got})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		ri := out[i].Measured / out[i].Baseline
		rj := out[j].Measured / out[j].Baseline
		if ri != rj {
			return ri > rj
		}
		return out[i].Case < out[j].Case
	})
	return out
}
