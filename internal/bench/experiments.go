// Package bench is the experiment harness: one runner per table and figure
// of the paper's evaluation (Tables I-III, Figures 3a/3b) plus the ablation
// studies DESIGN.md calls out. Each runner returns structured rows and can
// render the same text layout the paper reports, so `cmd/deepbench`
// regenerates the entire evaluation section.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"deep/internal/core"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

// Table1Row is one line of the image catalog.
type Table1Row struct {
	App, Name, Hub, Regional string
	Size                     units.Bytes
}

// Table1 reproduces the paper's Table I: the images of both applications on
// both registries.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, r := range workload.TableI {
		b, _ := workload.Row(r.App, r.Name)
		rows = append(rows, Table1Row{
			App: r.App, Name: r.Name, Hub: r.Hub, Regional: r.Regional,
			Size: units.Bytes(math.Round(b.SizeGB * float64(units.GB))),
		})
	}
	return rows
}

// FormatTable1 renders Table I.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I: Docker images of microservices\n")
	fmt.Fprintf(&b, "%-6s %-11s %-9s %-22s %s\n", "App", "Service", "Size", "Docker Hub", "Regional Registry")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-11s %-9s %-22s %s\n", r.App, r.Name, r.Size, r.Hub, r.Regional)
	}
	return b.String()
}

// Range is a [min, max] measurement interval.
type Range struct{ Min, Max float64 }

func (r Range) String() string { return fmt.Sprintf("%.0f–%.0f", r.Min, r.Max) }

// widen folds a sample into the range.
func (r *Range) widen(v float64) {
	if r.Min == 0 && r.Max == 0 {
		r.Min, r.Max = v, v
		return
	}
	if v < r.Min {
		r.Min = v
	}
	if v > r.Max {
		r.Max = v
	}
}

// Table2Row is one simulated benchmark row next to the paper's.
type Table2Row struct {
	App, Name string
	Size      units.Bytes
	Tp, CT    Range // simulated, across registries and trials (medium device)
	ECMedium  Range
	ECSmall   Range
	Paper     workload.BenchRow
}

// Table2 reproduces the paper's Table II by benchmarking every microservice
// standalone from both registries on both devices over `trials` jittered
// runs.
func Table2(trials int) ([]Table2Row, error) {
	if trials < 1 {
		trials = 1
	}
	var rows []Table2Row
	for _, r := range workload.TableII {
		row := Table2Row{App: r.App, Name: r.Name, Paper: r,
			Size: units.Bytes(math.Round(r.SizeGB * float64(units.GB)))}
		for _, reg := range []string{"hub", "regional"} {
			for trial := 0; trial < trials; trial++ {
				med, err := workload.BenchmarkRun(r.App, r.Name, "medium", reg, int64(trial), 0.015)
				if err != nil {
					return nil, err
				}
				mr := med.Microservices[0]
				row.Tp.widen(mr.ProcessTime)
				row.CT.widen(mr.CT)
				row.ECMedium.widen(float64(mr.TotalEnergy()))

				small, err := workload.BenchmarkRun(r.App, r.Name, "small", reg, int64(trial), 0.015)
				if err != nil {
					return nil, err
				}
				sr := small.Microservices[0]
				row.ECSmall.widen(float64(sr.TotalEnergy()))
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable2 renders the simulated Table II next to the published ranges.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table II: Benchmarks of microservices (simulated | paper)\n")
	fmt.Fprintf(&b, "%-6s %-11s %-8s %-12s %-12s %-22s %-22s\n",
		"App", "Service", "Size", "Tp [s]", "CT [s]", "EC medium [J]", "EC small [J]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-11s %-8s %-12s %-12s %-10s | %-9s %-10s | %s\n",
			r.App, r.Name, r.Size,
			r.Tp.String(), r.CT.String(),
			r.ECMedium.String(), fmt.Sprintf("%.0f–%.0f", r.Paper.ECMedMin, r.Paper.ECMedMax),
			r.ECSmall.String(), fmt.Sprintf("%.0f–%.0f", r.Paper.ECSmallMin, r.Paper.ECSmallMax))
	}
	return b.String()
}

// Table3Row reports the deployment distribution for one app.
type Table3Row struct {
	App       string
	Fractions core.Distribution // device -> registry -> fraction
	Placement sim.Placement
	// MatchesPaper is true when every microservice landed exactly where
	// Table III reports.
	MatchesPaper bool
}

// Table3 runs the DEEP scheduler on both case studies and reports the
// distribution of image deployments and executions, the paper's Table III.
func Table3() ([]Table3Row, error) {
	cluster := workload.Testbed()
	s := sched.NewDEEP()
	var rows []Table3Row
	for _, app := range workload.Apps() {
		p, err := s.Schedule(app, cluster)
		if err != nil {
			return nil, err
		}
		matches := true
		for ms, want := range workload.PaperPlacement(app.Name) {
			if p[ms] != want {
				matches = false
			}
		}
		rows = append(rows, Table3Row{
			App:          app.Name,
			Fractions:    core.DistributionOf(p),
			Placement:    p,
			MatchesPaper: matches,
		})
	}
	return rows, nil
}

// FormatTable3 renders the distribution as Table III does (percentages per
// device × registry).
func FormatTable3(rows []Table3Row) string {
	var b strings.Builder
	b.WriteString("Table III: Distribution (%) of image deployments and executions\n")
	fmt.Fprintf(&b, "%-18s %-8s %-11s %-17s %s\n", "App", "Device", "Docker Hub", "Regional Registry", "matches paper")
	for _, r := range rows {
		devices := make([]string, 0, len(r.Fractions))
		for d := range r.Fractions {
			devices = append(devices, d)
		}
		sort.Strings(devices)
		for i, d := range devices {
			app := ""
			match := ""
			if i == 0 {
				app = r.App
				match = fmt.Sprintf("%v", r.MatchesPaper)
			}
			fmt.Fprintf(&b, "%-18s %-8s %-11s %-17s %s\n", app, d,
				pct(r.Fractions[d]["hub"]), pct(r.Fractions[d]["regional"]), match)
		}
	}
	return b.String()
}

func pct(f float64) string {
	if f == 0 {
		return "–"
	}
	return fmt.Sprintf("%.0f%%", 100*f)
}

// Fig3aRow is one bar of Figure 3a: energy per microservice under DEEP.
type Fig3aRow struct {
	App, Name string
	Energy    units.Joules
}

// Fig3a simulates the DEEP placement and reports per-microservice energy.
func Fig3a() ([]Fig3aRow, error) {
	cluster := workload.Testbed()
	s := sched.NewDEEP()
	var rows []Fig3aRow
	for _, app := range workload.Apps() {
		p, err := s.Schedule(app, cluster)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(app, cluster, p, sim.Options{})
		if err != nil {
			return nil, err
		}
		for _, m := range res.Microservices {
			name := strings.TrimPrefix(m.Name, app.Name+"/")
			rows = append(rows, Fig3aRow{App: app.Name, Name: name, Energy: m.TotalEnergy()})
		}
	}
	return rows, nil
}

// FormatFig3a renders the per-microservice energies as an ASCII bar chart.
func FormatFig3a(rows []Fig3aRow) string {
	var b strings.Builder
	b.WriteString("Figure 3a: Energy consumed by each microservice under DEEP\n")
	var max float64
	for _, r := range rows {
		if float64(r.Energy) > max {
			max = float64(r.Energy)
		}
	}
	for _, r := range rows {
		bar := int(40 * float64(r.Energy) / max)
		fmt.Fprintf(&b, "%-6s %-11s %8.0f J |%s\n", r.App, r.Name, float64(r.Energy), strings.Repeat("#", bar))
	}
	return b.String()
}

// Fig3bRow is one bar group of Figure 3b: one deployment method's total
// energy for one application.
type Fig3bRow struct {
	App    string
	Method string
	Energy units.Joules
	// DeltaVsDEEP is this method's extra energy relative to DEEP (J).
	DeltaVsDEEP float64
}

// Fig3b compares DEEP against the exclusive methods on both applications.
func Fig3b() ([]Fig3bRow, error) {
	cluster := workload.Testbed()
	methods := []sched.Scheduler{
		sched.NewDEEP(),
		sched.NewExclusive("regional"),
		sched.NewExclusive("hub"),
	}
	var rows []Fig3bRow
	for _, app := range workload.Apps() {
		var deepE float64
		for _, m := range methods {
			p, err := m.Schedule(app, cluster)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(app, cluster, p, sim.Options{})
			if err != nil {
				return nil, err
			}
			e := float64(res.TotalEnergy)
			if m.Name() == "deep" {
				deepE = e
			}
			rows = append(rows, Fig3bRow{App: app.Name, Method: m.Name(), Energy: res.TotalEnergy, DeltaVsDEEP: e - deepE})
		}
	}
	return rows, nil
}

// FormatFig3b renders the method comparison.
func FormatFig3b(rows []Fig3bRow) string {
	var b strings.Builder
	b.WriteString("Figure 3b: Energy by deployment method\n")
	fmt.Fprintf(&b, "%-18s %-20s %12s %14s\n", "App", "Method", "Energy [kJ]", "Δ vs DEEP [J]")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %-20s %12.3f %14.1f\n", r.App, r.Method, r.Energy.Kilojoules(), r.DeltaVsDEEP)
	}
	return b.String()
}
