package bench

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatTable1(rows)
	for _, frag := range []string{"sina88/vp-transcode", "dcloud2.itec.aau.at/aau/tp-retrieve", "5.78GB"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Table I missing %q", frag)
		}
	}
}

func TestTable2RangesOverlapPaper(t *testing.T) {
	rows, err := Table2(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Simulated EC ranges must overlap the published ranges (both
		// devices) — the calibration contract.
		if r.ECMedium.Max < r.Paper.ECMedMin || r.ECMedium.Min > r.Paper.ECMedMax {
			t.Errorf("%s/%s: EC medium %v does not overlap paper %v–%v",
				r.App, r.Name, r.ECMedium, r.Paper.ECMedMin, r.Paper.ECMedMax)
		}
		if r.ECSmall.Max < r.Paper.ECSmallMin || r.ECSmall.Min > r.Paper.ECSmallMax {
			t.Errorf("%s/%s: EC small %v does not overlap paper %v–%v",
				r.App, r.Name, r.ECSmall, r.Paper.ECSmallMin, r.Paper.ECSmallMax)
		}
		// Tp must sit inside the published range (it is calibrated).
		if r.Tp.Max < r.Paper.TpMin || r.Tp.Min > r.Paper.TpMax {
			t.Errorf("%s/%s: Tp %v vs paper %v–%v", r.App, r.Name, r.Tp, r.Paper.TpMin, r.Paper.TpMax)
		}
	}
	if out := FormatTable2(rows); !strings.Contains(out, "transcode") {
		t.Error("format lost rows")
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if !r.MatchesPaper {
			t.Errorf("%s: placement deviates from Table III: %v", r.App, r.Placement)
		}
	}
	out := FormatTable3(rows)
	if !strings.Contains(out, "83%") {
		t.Errorf("video row should report 83%% hub on medium:\n%s", out)
	}
	if !strings.Contains(out, "67%") && !strings.Contains(out, "66%") {
		t.Errorf("text row should report ≈66%% regional on small:\n%s", out)
	}
}

func TestFig3aTrainingDominates(t *testing.T) {
	rows, err := Fig3a()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows = %d", len(rows))
	}
	byApp := map[string][]Fig3aRow{}
	for _, r := range rows {
		byApp[r.App] = append(byApp[r.App], r)
	}
	for app, rs := range byApp {
		var maxName string
		var maxE float64
		for _, r := range rs {
			if float64(r.Energy) > maxE {
				maxE, maxName = float64(r.Energy), r.Name
			}
		}
		if maxName != "ha-train" {
			t.Errorf("%s: dominant microservice = %s, want ha-train", app, maxName)
		}
	}
	if out := FormatFig3a(rows); !strings.Contains(out, "#") {
		t.Error("bar chart empty")
	}
}

func TestFig3bOrdering(t *testing.T) {
	rows, err := Fig3b()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Method == "deep" {
			continue
		}
		if r.DeltaVsDEEP < 0 {
			t.Errorf("%s/%s: beats DEEP by %.1f J", r.App, r.Method, -r.DeltaVsDEEP)
		}
		// The paper's margins are tens of joules — sub-1.5% of multi-kJ
		// totals. Keep the same order of magnitude.
		if frac := r.DeltaVsDEEP / float64(r.Energy); frac > 0.015 {
			t.Errorf("%s/%s: margin %.2f%% too large for the paper's shape", r.App, r.Method, 100*frac)
		}
	}
	if out := FormatFig3b(rows); !strings.Contains(out, "exclusive-hub") {
		t.Error("format lost methods")
	}
}

func TestSchedulerComparison(t *testing.T) {
	rows, err := SchedulerComparison(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 { // 7 schedulers × 2 apps
		t.Fatalf("rows = %d", len(rows))
	}
	// DEEP must be the energy minimum per app.
	best := map[string]float64{}
	deep := map[string]float64{}
	for _, r := range rows {
		e := float64(r.Energy)
		if b, ok := best[r.App]; !ok || e < b {
			best[r.App] = e
		}
		if r.Method == "deep" {
			deep[r.App] = e
		}
	}
	for app := range deep {
		if deep[app] > best[app]*1.0001 {
			t.Errorf("%s: deep %.1f J is not minimal (best %.1f J)", app, deep[app], best[app])
		}
	}
	_ = FormatSchedulerComparison(rows)
}

func TestBandwidthSweepCrossover(t *testing.T) {
	rows, err := BandwidthSweep("text", []float64{0.25, 1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// With a much faster regional registry, exclusively-regional must beat
	// exclusively-hub; with a much slower one it must lose.
	if rows[0].RegionalBeatsHub {
		t.Error("0.25× regional bandwidth should lose to the hub")
	}
	if !rows[2].RegionalBeatsHub {
		t.Error("4× regional bandwidth should beat the hub")
	}
	// DEEP never loses to either exclusive method at any point.
	for _, r := range rows {
		if float64(r.DeepEnergy) > float64(r.RegionalEnergy)+1e-6 || float64(r.DeepEnergy) > float64(r.HubEnergy)+1e-6 {
			t.Errorf("DEEP not optimal at %v: %+v", r.RegionalBW, r)
		}
	}
	_ = FormatBandwidthSweep(rows)
}

func TestCacheAblation(t *testing.T) {
	rows, err := CacheAblation("video", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].BytesCold == 0 {
		t.Error("cold run pulled nothing")
	}
	for _, r := range rows[1:] {
		if r.BytesCold != 0 || r.DeployTime != 0 {
			t.Errorf("warm run %d still pulled %v over %.1fs", r.Run, r.BytesCold, r.DeployTime)
		}
	}
	_ = FormatCacheAblation(rows)
}

func TestContentionAblation(t *testing.T) {
	rows, err := ContentionAblation()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.PenaltyOfBlind < -0.01 {
			t.Errorf("%s: congestion-blind greedy beat the Nash scheduler by %.2f%%", r.App, -r.PenaltyOfBlind)
		}
	}
	_ = FormatContentionAblation(rows)
}
