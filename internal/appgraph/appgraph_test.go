package appgraph

import (
	"reflect"
	"testing"

	"deep/internal/dag"
	"deep/internal/units"
)

func buildApp(t *testing.T) *dag.App {
	t.Helper()
	a := dag.NewApp("vid")
	add := func(m *dag.Microservice) {
		t.Helper()
		if err := a.AddMicroservice(m); err != nil {
			t.Fatal(err)
		}
	}
	add(&dag.Microservice{Name: "src", ImageSize: 10 * units.MB, ExternalInput: 2 * units.MB, Arches: []dag.Arch{dag.AMD64}})
	add(&dag.Microservice{Name: "det", ImageSize: 30 * units.MB, Arches: []dag.Arch{dag.AMD64, dag.ARM64}})
	add(&dag.Microservice{Name: "agg", ImageSize: 5 * units.MB})
	flow := func(from, to string, size units.Bytes) {
		t.Helper()
		if err := a.AddDataflow(from, to, size); err != nil {
			t.Fatal(err)
		}
	}
	flow("src", "det", 1*units.MB)
	flow("src", "agg", 3*units.MB)
	flow("det", "agg", 2*units.MB)
	return a
}

func TestCompileTable(t *testing.T) {
	a := buildApp(t)
	tab := Compile(a)

	if tab.App() != a {
		t.Fatal("App() does not round-trip")
	}
	// Sorted name table, ids by position.
	wantNames := []string{"agg", "det", "src"}
	if !reflect.DeepEqual(tab.MSNames(), wantNames) {
		t.Fatalf("MSNames %v, want %v", tab.MSNames(), wantNames)
	}
	if tab.NumMicroservices() != 3 {
		t.Fatalf("NumMicroservices %d, want 3", tab.NumMicroservices())
	}
	for i, n := range wantNames {
		id, ok := tab.MSID(n)
		if !ok || id != int32(i) {
			t.Fatalf("MSID(%q) = %d,%v, want %d,true", n, id, ok, i)
		}
		if tab.MS(id).Name != n {
			t.Fatalf("MS(%d).Name = %q, want %q", id, tab.MS(id).Name, n)
		}
	}

	// Scalars follow the interned handles.
	if got := tab.ImageSizes()[2]; got != 10*units.MB {
		t.Fatalf("ImageSizes[src] = %v, want 10MB", got)
	}
	if got := tab.ExtInputs()[2]; got != 2*units.MB {
		t.Fatalf("ExtInputs[src] = %v, want 2MB", got)
	}

	// Arch bitmasks: src amd64-only, det both, agg (no list) supports all.
	srcID, _ := tab.MSID("src")
	detID, _ := tab.MSID("det")
	aggID, _ := tab.MSID("agg")
	if !tab.SupportsArch(srcID, dag.AMD64) || tab.SupportsArch(srcID, dag.ARM64) {
		t.Fatalf("src arch mask wrong: %08b", tab.ArchMasks()[srcID])
	}
	if !tab.SupportsArch(detID, dag.AMD64) || !tab.SupportsArch(detID, dag.ARM64) {
		t.Fatalf("det arch mask wrong: %08b", tab.ArchMasks()[detID])
	}
	if !tab.SupportsArch(aggID, dag.AMD64) || !tab.SupportsArch(aggID, dag.ARM64) {
		t.Fatalf("agg arch mask wrong: %08b", tab.ArchMasks()[aggID])
	}
	// Unknown arch falls back to the handle (empty list supports anything).
	if !tab.SupportsArch(aggID, dag.Arch("riscv")) {
		t.Fatal("agg should support unknown arch via handle fallback")
	}
	if tab.SupportsArch(srcID, dag.Arch("riscv")) {
		t.Fatal("src must not support unknown arch")
	}

	// Edge rows in declaration order.
	wantIn := make([][]Edge, 3)
	wantIn[aggID] = []Edge{{MS: srcID, Size: 3 * units.MB}, {MS: detID, Size: 2 * units.MB}}
	wantIn[detID] = []Edge{{MS: srcID, Size: 1 * units.MB}}
	if !reflect.DeepEqual(tab.Inputs(), wantIn) {
		t.Fatalf("Inputs %v, want %v", tab.Inputs(), wantIn)
	}
	wantOut := make([][]Edge, 3)
	wantOut[detID] = []Edge{{MS: aggID, Size: 2 * units.MB}}
	wantOut[srcID] = []Edge{{MS: detID, Size: 1 * units.MB}, {MS: aggID, Size: 3 * units.MB}}
	if !reflect.DeepEqual(tab.Outputs(), wantOut) {
		t.Fatalf("Outputs %v, want %v", tab.Outputs(), wantOut)
	}

	// Structure mirrors the dag walks exactly.
	if err := tab.ValidateErr(); err != nil {
		t.Fatalf("ValidateErr = %v, want nil", err)
	}
	topo, err := tab.Topo()
	if err != nil {
		t.Fatal(err)
	}
	if want := []int32{srcID, detID, aggID}; !reflect.DeepEqual(topo, want) {
		t.Fatalf("Topo %v, want %v", topo, want)
	}
	stages, err := tab.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]int32{{srcID}, {detID}, {aggID}}; !reflect.DeepEqual(stages, want) {
		t.Fatalf("Stages %v, want %v", stages, want)
	}
	if tab.MaxStageWidth() != 1 {
		t.Fatalf("MaxStageWidth %d, want 1", tab.MaxStageWidth())
	}

	// Jitter tags match the simulator's historical byte stream.
	tags := tab.PhaseTags()
	if got, want := string(tags[PhaseDeploy][srcID]), "|vid|src|deploy"; got != want {
		t.Fatalf("deploy tag %q, want %q", got, want)
	}
	if got, want := string(tags[PhaseTransfer][detID]), "|vid|det|transfer"; got != want {
		t.Fatalf("transfer tag %q, want %q", got, want)
	}
	if got, want := string(tags[PhaseProcess][aggID]), "|vid|agg|process"; got != want {
		t.Fatalf("process tag %q, want %q", got, want)
	}
}

// TestCompileErrorParity pins that compile captures the dag walks' errors
// verbatim — same error values a direct call returns (the memo guarantees
// value identity).
func TestCompileErrorParity(t *testing.T) {
	a := dag.NewApp("cyclic")
	for _, n := range []string{"x", "y"} {
		if err := a.AddMicroservice(&dag.Microservice{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]string{{"x", "y"}, {"y", "x"}} {
		if err := a.AddDataflow(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}

	tab := Compile(a)
	if tab.ValidateErr() == nil {
		t.Fatal("cycle compiled without a validation error")
	}
	if got := a.Validate(); got != tab.ValidateErr() {
		t.Fatalf("ValidateErr %v is not the verbatim dag error %v", tab.ValidateErr(), got)
	}
	if _, err := tab.Topo(); err == nil {
		t.Fatal("cycle produced a topo order")
	} else if direct, derr := a.TopoOrder(); derr != err || direct != nil {
		t.Fatalf("Topo error %v not verbatim (%v)", err, derr)
	}
	if _, err := tab.Stages(); err == nil {
		t.Fatal("cycle produced stages")
	}
	if tab.MaxStageWidth() != 0 {
		t.Fatalf("MaxStageWidth on broken app = %d, want 0", tab.MaxStageWidth())
	}
}

// TestCompileDuplicateNames: first occurrence wins in the handle table and
// validation still reports the duplicate.
func TestCompileDuplicateNames(t *testing.T) {
	first := &dag.Microservice{Name: "dup", ImageSize: 1 * units.MB}
	second := &dag.Microservice{Name: "dup", ImageSize: 9 * units.MB}
	a := &dag.App{Name: "dups", Microservices: []*dag.Microservice{first, second}}

	tab := Compile(a)
	if tab.NumMicroservices() != 1 {
		t.Fatalf("NumMicroservices %d, want 1 after compaction", tab.NumMicroservices())
	}
	id, _ := tab.MSID("dup")
	if tab.MS(id) != first {
		t.Fatal("duplicate interning did not keep the first occurrence")
	}
	if tab.ImageSizes()[id] != 1*units.MB {
		t.Fatalf("ImageSizes[dup] = %v, want the first occurrence's 1MB", tab.ImageSizes()[id])
	}
	if tab.ValidateErr() == nil {
		t.Fatal("duplicate names must still fail validation")
	}
}
