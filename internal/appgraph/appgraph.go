// Package appgraph is the compiled application-side substrate shared by
// every per-cluster compiler in the system — the app-side mirror of
// internal/topo. The DEEP pipeline prices (costmodel.CompileOn) and
// simulates (sim.CompilePlanOn) every (app, cluster) pair; before this
// package each compiler independently re-ran the DAG's structural
// validation, topological ordering, and barrier-stage partition
// (map-allocating graph walks) and rebuilt identical sorted name tables and
// dataflow rows for the same application. An AppTable is everything in those
// compilers that depends only on the application — compiled once per app
// (the fleet keys it by app digest) and shared across clusters and across
// both compilers.
//
// An AppTable is immutable after Compile and safe for any number of
// concurrent readers. It snapshots the application's structure; mutating the
// app afterwards is not supported (the same contract as topo.ClusterTable).
// Accessors returning slices return the table's own backing arrays — callers
// must treat them as read-only.
//
// Duplicate names: the name table is sorted and compacted, and on duplicate
// microservice names the first occurrence (in the app's declaration order)
// wins everywhere — matching both compilers' historical interning. (A
// duplicate name still fails Validate, and that error is preserved verbatim
// in ValidateErr; the table's rows exist so the compilers can keep reporting
// the error exactly where the legacy paths did.)
package appgraph

import (
	"slices"
	"sort"

	"deep/internal/dag"
	"deep/internal/units"
)

// Arch-support bitmask bits, one per architecture the testbed ships.
const (
	ArchBitAMD64 uint8 = 1 << iota
	ArchBitARM64
)

// Edge is one compiled dataflow endpoint: for in-edge rows MS is the source
// microservice id, for out-edge rows the sink id. Rows preserve the DAG's
// declaration order — the order the estimator accumulates transfer times in.
type Edge struct {
	MS   int32
	Size units.Bytes
}

// Phase indices into PhaseTags, matching the simulator's jitter phases.
const (
	PhaseDeploy = iota
	PhaseTransfer
	PhaseProcess
	numPhases
)

// AppTable is the compiled application-side substrate: sorted + compacted
// microservice name table and index map, interned microservice handles,
// dense topological-order and barrier-stage rows, in-edge and out-edge
// dataflow rows, per-microservice image sizes, external inputs, and
// arch-support bitmasks, the structural-validation results both compilers
// previously re-derived, and the simulator's per-phase jitter tags.
// Per-cluster compilers (costmodel.CompileOnTables, sim.CompilePlanOnTables)
// layer their per-(microservice, device) tables on top of it.
type AppTable struct {
	app *dag.App

	// Name table; ids are positions, sorted and compacted so ascending id
	// order is ascending name order (the compilers' canonical order).
	msNames []string
	msIndex map[string]int32

	// ms[i] is the microservice with id i (first occurrence on duplicate
	// names, matching the name-table compaction).
	ms []*dag.Microservice

	imageSize []units.Bytes // per microservice
	extInput  []units.Bytes // per microservice
	archMask  []uint8       // per microservice (bits over the shipped arches)

	inputs  [][]Edge // per microservice: incoming dataflows, DAG order
	outputs [][]Edge // per microservice: outgoing dataflows, DAG order

	// Structural validation, captured once at compile time. validErr is
	// App.Validate's result verbatim; stages/topo carry App.Stages and
	// App.TopoOrder translated to dense id rows with their own errors, so
	// each consumer can keep surfacing exactly the error its legacy path
	// reported.
	validErr  error
	stages    [][]int32
	stagesErr error
	topo      []int32
	topoErr   error

	// jitterTag[phase][ms] is the byte suffix "|app|ms|phase" the
	// simulator's jitterer hashes after the run seed.
	jitterTag [numPhases][][]byte
}

// Compile builds the app table. It performs the full set of DAG graph walks
// — validation, topological order, barrier stages — which is exactly the
// work sharing the table avoids repeating per cluster and per compiler. It
// never fails: structural problems are captured (errors verbatim) and
// surface from the consumers exactly where they always did.
func Compile(app *dag.App) *AppTable {
	t := &AppTable{app: app}

	t.msNames = make([]string, 0, len(app.Microservices))
	for _, m := range app.Microservices {
		t.msNames = append(t.msNames, m.Name)
	}
	sort.Strings(t.msNames)
	t.msNames = slices.Compact(t.msNames)
	t.msIndex = indexOf(t.msNames)

	nm := len(t.msNames)
	t.ms = make([]*dag.Microservice, nm)
	for _, m := range app.Microservices {
		if i, ok := t.msIndex[m.Name]; ok && t.ms[i] == nil {
			t.ms[i] = m
		}
	}

	t.imageSize = make([]units.Bytes, nm)
	t.extInput = make([]units.Bytes, nm)
	t.archMask = make([]uint8, nm)
	for i, m := range t.ms {
		t.imageSize[i] = m.ImageSize
		t.extInput[i] = m.ExternalInput
		var mask uint8
		if m.SupportsArch(dag.AMD64) {
			mask |= ArchBitAMD64
		}
		if m.SupportsArch(dag.ARM64) {
			mask |= ArchBitARM64
		}
		t.archMask[i] = mask
	}

	t.inputs = make([][]Edge, nm)
	t.outputs = make([][]Edge, nm)
	for _, e := range app.Dataflows {
		to, okTo := t.msIndex[e.To]
		from, okFrom := t.msIndex[e.From]
		if !okTo || !okFrom {
			// A dangling edge cannot alter costs: the legacy compilers
			// skipped it identically.
			continue
		}
		t.inputs[to] = append(t.inputs[to], Edge{MS: from, Size: e.Size})
		t.outputs[from] = append(t.outputs[from], Edge{MS: to, Size: e.Size})
	}

	// One round of graph walks for the whole table's lifetime. The dag-level
	// memo makes the nested TopoOrder calls inside Validate and Stages hit
	// the same computation, so this is ~one walk per distinct result.
	t.validErr = app.Validate()
	if stages, err := app.Stages(); err != nil {
		t.stagesErr = err
	} else {
		t.stages = make([][]int32, len(stages))
		for i, stage := range stages {
			ids := make([]int32, len(stage))
			for k, n := range stage {
				ids[k] = t.msIndex[n]
			}
			// Stage names are sorted lexicographically and ids ascend in
			// name order, so ids are already ascending; the sort is a cheap
			// invariant guard.
			sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
			t.stages[i] = ids
		}
	}
	if order, err := app.TopoOrder(); err != nil {
		t.topoErr = err
	} else {
		t.topo = make([]int32, len(order))
		for i, n := range order {
			t.topo[i] = t.msIndex[n]
		}
	}

	for phase, tag := range []string{"deploy", "transfer", "process"} {
		t.jitterTag[phase] = make([][]byte, nm)
		for i, name := range t.msNames {
			t.jitterTag[phase][i] = []byte("|" + app.Name + "|" + name + "|" + tag)
		}
	}
	return t
}

func indexOf(names []string) map[string]int32 {
	idx := make(map[string]int32, len(names))
	for i, n := range names {
		idx[n] = int32(i)
	}
	return idx
}

// App returns the application the table was compiled from.
func (t *AppTable) App() *dag.App { return t.app }

// NumMicroservices returns the number of compiled (distinct) microservices.
func (t *AppTable) NumMicroservices() int { return len(t.msNames) }

// MSNames returns the sorted, compacted microservice name table (shared
// slice; positions are microservice ids).
func (t *AppTable) MSNames() []string { return t.msNames }

// MSIndex returns the microservice name→id map (shared; read-only).
func (t *AppTable) MSIndex() map[string]int32 { return t.msIndex }

// MSID returns the id of a microservice name.
func (t *AppTable) MSID(name string) (int32, bool) {
	id, ok := t.msIndex[name]
	return id, ok
}

// MS returns the interned microservice handle for an id.
func (t *AppTable) MS(i int32) *dag.Microservice { return t.ms[i] }

// Microservices returns the interned handles (shared slice, parallel to
// MSNames).
func (t *AppTable) Microservices() []*dag.Microservice { return t.ms }

// ImageSizes returns the per-microservice image sizes (shared slice).
func (t *AppTable) ImageSizes() []units.Bytes { return t.imageSize }

// ExtInputs returns the per-microservice external inputs (shared slice).
func (t *AppTable) ExtInputs() []units.Bytes { return t.extInput }

// ArchMasks returns the per-microservice arch-support bitmasks (shared
// slice; bits are the ArchBit* constants).
func (t *AppTable) ArchMasks() []uint8 { return t.archMask }

// SupportsArch reports whether microservice i has an image for the
// architecture — the bitmask fast path for the shipped arches, falling back
// to the handle for anything else.
func (t *AppTable) SupportsArch(i int32, a dag.Arch) bool {
	switch a {
	case dag.AMD64:
		return t.archMask[i]&ArchBitAMD64 != 0
	case dag.ARM64:
		return t.archMask[i]&ArchBitARM64 != 0
	default:
		return t.ms[i].SupportsArch(a)
	}
}

// Inputs returns the per-microservice in-edge rows (shared slices, DAG
// declaration order).
func (t *AppTable) Inputs() [][]Edge { return t.inputs }

// Outputs returns the per-microservice out-edge rows (shared slices, DAG
// declaration order).
func (t *AppTable) Outputs() [][]Edge { return t.outputs }

// ValidateErr returns App.Validate's result, captured verbatim at compile
// time (nil for a structurally valid app).
func (t *AppTable) ValidateErr() error { return t.validErr }

// Stages returns the barrier stages as microservice ids (each stage
// ascending = lexicographic name order) with App.Stages' own error.
func (t *AppTable) Stages() ([][]int32, error) { return t.stages, t.stagesErr }

// Topo returns the deterministic topological order as microservice ids with
// App.TopoOrder's own error.
func (t *AppTable) Topo() ([]int32, error) { return t.topo, t.topoErr }

// MaxStageWidth returns the widest barrier stage (0 when stages are
// unavailable), for sizing per-stage scratch once.
func (t *AppTable) MaxStageWidth() int {
	if t.stagesErr != nil {
		return 0
	}
	w := 0
	for _, s := range t.stages {
		if len(s) > w {
			w = len(s)
		}
	}
	return w
}

// PhaseTags returns the simulator's jitter-hash byte suffixes, indexed
// [Phase*][ms id] (shared slices): "|app|ms|deploy" and friends, hashed
// after the run seed.
func (t *AppTable) PhaseTags() [3][][]byte { return t.jitterTag }
