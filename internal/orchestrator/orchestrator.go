// Package orchestrator emulates the container orchestrator of the paper's
// architecture (Figure 1 couples DEEP loosely to Kubernetes): nodes wrap
// edge devices with layer caches, pods progress through a
// Pending→Pulling→Running→Succeeded lifecycle, and an application rollout
// deploys stage by stage between synchronization barriers, pulling images
// over real registry clients with digest verification and cache reuse.
//
// The placements it executes come from the scheduling layer — internal/sched
// running on the compiled cost model of internal/costmodel — as plain
// string-keyed sim.Placement maps: the integer-indexed representation stays
// inside the scheduling core, and the orchestrator's API is unchanged by it.
package orchestrator

import (
	"fmt"
	"sort"
	"sync"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/monitor"
	"deep/internal/registry"
	"deep/internal/sim"
	"deep/internal/units"
)

// PodPhase is the lifecycle state of a pod.
type PodPhase string

// Pod lifecycle phases.
const (
	PodPending   PodPhase = "Pending"
	PodPulling   PodPhase = "Pulling"
	PodRunning   PodPhase = "Running"
	PodSucceeded PodPhase = "Succeeded"
	PodFailed    PodPhase = "Failed"
)

// Pod is one scheduled microservice instance.
type Pod struct {
	Name     string
	Image    registry.Reference
	Registry string
	Node     string
	Phase    PodPhase
	// BytesPulled counts the layer bytes actually downloaded (cache
	// misses only).
	BytesPulled int64
	Err         error
}

// Node is one cluster member backed by a device model.
type Node struct {
	Name   string
	Arch   dag.Arch
	Device *device.Device
}

// Clients resolves a registry client for pulls issued by a node; the hub
// simulator returns per-client throttled endpoints, so resolution depends
// on both names.
type Clients func(node, registryName string) (*registry.Client, error)

// Cluster is the emulated orchestration domain.
type Cluster struct {
	mu      sync.Mutex
	nodes   map[string]*Node
	clients Clients
	pods    map[string]*Pod
	metrics *monitor.Metrics
}

// New returns a cluster resolving registry clients through the callback.
func New(clients Clients) *Cluster {
	return &Cluster{
		nodes:   make(map[string]*Node),
		clients: clients,
		pods:    make(map[string]*Pod),
		metrics: monitor.NewMetrics(),
	}
}

// Metrics exposes the cluster's monitoring registry.
func (c *Cluster) Metrics() *monitor.Metrics { return c.metrics }

// AddNode registers a node.
func (c *Cluster) AddNode(n *Node) error {
	if n.Name == "" || n.Device == nil {
		return fmt.Errorf("orchestrator: invalid node")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.nodes[n.Name]; dup {
		return fmt.Errorf("orchestrator: duplicate node %q", n.Name)
	}
	c.nodes[n.Name] = n
	return nil
}

// Nodes lists node names, sorted.
func (c *Cluster) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.nodes))
	for n := range c.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Pod returns a copy of the named pod.
func (c *Cluster) Pod(name string) (Pod, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.pods[name]
	if !ok {
		return Pod{}, false
	}
	return *p, true
}

// Pods lists all pods sorted by name.
func (c *Cluster) Pods() []Pod {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Pod, 0, len(c.pods))
	for _, p := range c.pods {
		out = append(out, *p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Rollout deploys an application stage by stage: every pod of a stage is
// pulled and run before the next stage starts (the synchronization
// barriers). images maps microservice names to their registry references
// per registry name. It returns the pods in deployment order.
func (c *Cluster) Rollout(app *dag.App, placement sim.Placement, images map[string]map[string]registry.Reference) ([]Pod, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	stages, err := app.Stages()
	if err != nil {
		return nil, err
	}
	var order []string
	for _, stage := range stages {
		names := append([]string(nil), stage...)
		sort.Strings(names)

		// Launch the stage: every pod pulls (possibly concurrently), then
		// runs; the barrier is the join at the end of the stage.
		var wg sync.WaitGroup
		errs := make([]error, len(names))
		for i, name := range names {
			pod, err := c.createPod(app, name, placement, images)
			if err != nil {
				return nil, err
			}
			order = append(order, pod.Name)
			wg.Add(1)
			go func(i int, podName string) {
				defer wg.Done()
				errs[i] = c.runPod(podName)
			}(i, pod.Name)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return c.Pods(), err
			}
		}
	}
	out := make([]Pod, 0, len(order))
	for _, name := range order {
		p, _ := c.Pod(name)
		out = append(out, p)
	}
	return out, nil
}

func (c *Cluster) createPod(app *dag.App, msName string, placement sim.Placement, images map[string]map[string]registry.Reference) (*Pod, error) {
	a, ok := placement[msName]
	if !ok {
		return nil, fmt.Errorf("orchestrator: no placement for %q", msName)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	node, ok := c.nodes[a.Device]
	if !ok {
		return nil, fmt.Errorf("orchestrator: unknown node %q", a.Device)
	}
	m := app.Microservice(msName)
	if m == nil {
		return nil, fmt.Errorf("orchestrator: unknown microservice %q", msName)
	}
	if !m.SupportsArch(node.Arch) {
		return nil, fmt.Errorf("orchestrator: %s has no %s image for node %s", msName, node.Arch, node.Name)
	}
	refs, ok := images[msName]
	if !ok {
		return nil, fmt.Errorf("orchestrator: no image references for %q", msName)
	}
	ref, ok := refs[a.Registry]
	if !ok {
		return nil, fmt.Errorf("orchestrator: %q has no image on registry %q", msName, a.Registry)
	}
	pod := &Pod{
		Name:     "pod-" + msName,
		Image:    ref,
		Registry: a.Registry,
		Node:     a.Device,
		Phase:    PodPending,
	}
	if _, dup := c.pods[pod.Name]; dup {
		return nil, fmt.Errorf("orchestrator: pod %q already exists", pod.Name)
	}
	c.pods[pod.Name] = pod
	return pod, nil
}

// runPod advances one pod through its lifecycle synchronously.
func (c *Cluster) runPod(name string) error {
	c.mu.Lock()
	pod := c.pods[name]
	node := c.nodes[pod.Node]
	pod.Phase = PodPulling
	c.mu.Unlock()
	c.metrics.Log(0, "pull-start", map[string]string{"pod": name, "node": pod.Node, "registry": pod.Registry})

	client, err := c.clients(pod.Node, pod.Registry)
	if err != nil {
		return c.fail(name, err)
	}
	cache := node.Device.Cache()
	img, err := client.Pull(pod.Image, string(node.Arch), func(d registry.Digest) bool {
		return cache.Has(string(d))
	})
	if err != nil {
		return c.fail(name, err)
	}
	var pulled int64
	for d, data := range img.Layers {
		cache.Put(string(d), units.Bytes(len(data)))
		pulled += int64(len(data))
	}
	c.metrics.Inc("bytes_pulled_"+pod.Registry, float64(pulled))
	c.metrics.Inc("pulls_total", 1)
	if pulled == 0 {
		c.metrics.Inc("cache_hits_total", 1)
	}

	c.mu.Lock()
	pod.BytesPulled = pulled
	pod.Phase = PodRunning
	c.mu.Unlock()
	c.metrics.Log(0, "running", map[string]string{"pod": name})

	// Processing is modeled by the simulator; the orchestrator records
	// completion.
	c.mu.Lock()
	pod.Phase = PodSucceeded
	c.mu.Unlock()
	c.metrics.Log(0, "succeeded", map[string]string{"pod": name})
	return nil
}

func (c *Cluster) fail(name string, err error) error {
	c.mu.Lock()
	pod := c.pods[name]
	pod.Phase = PodFailed
	pod.Err = err
	c.mu.Unlock()
	c.metrics.Log(0, "failed", map[string]string{"pod": name, "error": err.Error()})
	return fmt.Errorf("orchestrator: pod %s: %w", name, err)
}
