package orchestrator

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/registry"
	"deep/internal/sim"
	"deep/internal/units"
)

// fixture builds two in-process registries (hub + regional) seeded with a
// two-microservice app's images, and an orchestrator cluster over two nodes.
func fixture(t *testing.T) (*Cluster, *dag.App, sim.Placement, map[string]map[string]registry.Reference) {
	t.Helper()

	endpoints := map[string]string{}
	for _, name := range []string{"hub", "regional"} {
		reg := registry.New(registry.NewMemDriver())
		ts := httptest.NewServer(registry.NewServer(reg))
		t.Cleanup(ts.Close)
		endpoints[name] = ts.URL
	}

	app := dag.NewApp("mini")
	mustAdd := func(m *dag.Microservice) {
		if err := app.AddMicroservice(m); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(&dag.Microservice{Name: "front", ImageSize: 4096})
	mustAdd(&dag.Microservice{Name: "back", ImageSize: 8192})
	if err := app.AddDataflow("front", "back", 1024); err != nil {
		t.Fatal(err)
	}

	// Seed both registries with both images (shared base layer).
	images := map[string]map[string]registry.Reference{}
	base := bytes.Repeat([]byte("base"), 512)
	for _, ms := range []string{"front", "back"} {
		images[ms] = map[string]registry.Reference{}
		for regName, url := range endpoints {
			c := registry.NewClient(url, nil)
			repo := "test/" + ms
			top := bytes.Repeat([]byte(ms), 256)
			if _, err := c.Push(repo, "latest", []byte("{}"), [][]byte{base, top}); err != nil {
				t.Fatal(err)
			}
			ref, err := registry.ParseReference(repo + ":latest")
			if err != nil {
				t.Fatal(err)
			}
			images[ms][regName] = ref
		}
	}

	cluster := New(func(node, regName string) (*registry.Client, error) {
		url, ok := endpoints[regName]
		if !ok {
			return nil, fmt.Errorf("no registry %q", regName)
		}
		return registry.NewClient(url, nil), nil
	})
	pm := energy.LinearModel{StaticW: 1}
	for _, n := range []string{"alpha", "beta"} {
		dev := device.New(n, dag.AMD64, 4, 1000, units.GB, units.GB, pm)
		if err := cluster.AddNode(&Node{Name: n, Arch: dag.AMD64, Device: dev}); err != nil {
			t.Fatal(err)
		}
	}

	placement := sim.Placement{
		"front": {Device: "alpha", Registry: "hub"},
		"back":  {Device: "alpha", Registry: "regional"},
	}
	return cluster, app, placement, images
}

func TestRolloutSucceeds(t *testing.T) {
	cluster, app, placement, images := fixture(t)
	pods, err := cluster.Rollout(app, placement, images)
	if err != nil {
		t.Fatal(err)
	}
	if len(pods) != 2 {
		t.Fatalf("pods = %d", len(pods))
	}
	for _, p := range pods {
		if p.Phase != PodSucceeded {
			t.Errorf("%s phase = %s (%v)", p.Name, p.Phase, p.Err)
		}
	}
	// front deployed first (topological order).
	if pods[0].Name != "pod-front" || pods[1].Name != "pod-back" {
		t.Errorf("order = %v, %v", pods[0].Name, pods[1].Name)
	}
}

func TestRolloutSharedLayerCached(t *testing.T) {
	cluster, app, placement, images := fixture(t)
	pods, err := cluster.Rollout(app, placement, images)
	if err != nil {
		t.Fatal(err)
	}
	// Both pods land on alpha and share a 2048-byte base layer: the second
	// pull must skip it.
	if pods[0].BytesPulled <= pods[1].BytesPulled {
		t.Errorf("second pod should pull less: %d vs %d", pods[0].BytesPulled, pods[1].BytesPulled)
	}
	if pods[1].BytesPulled != int64(256*len("back")) {
		t.Logf("note: back pulled %d bytes", pods[1].BytesPulled)
	}
	m := cluster.Metrics()
	if m.Counter("pulls_total") != 2 {
		t.Errorf("pulls_total = %v", m.Counter("pulls_total"))
	}
	if m.Counter("bytes_pulled_hub") <= 0 || m.Counter("bytes_pulled_regional") <= 0 {
		t.Error("per-registry byte counters missing")
	}
}

func TestRolloutUnknownRegistryFails(t *testing.T) {
	cluster, app, placement, images := fixture(t)
	placement["back"] = sim.Assignment{Device: "alpha", Registry: "ghost"}
	if _, err := cluster.Rollout(app, placement, images); err == nil {
		t.Fatal("expected failure for unknown registry")
	}
}

func TestRolloutMissingPlacement(t *testing.T) {
	cluster, app, _, images := fixture(t)
	if _, err := cluster.Rollout(app, sim.Placement{}, images); err == nil || !strings.Contains(err.Error(), "no placement") {
		t.Fatalf("err = %v", err)
	}
}

func TestRolloutArchMismatch(t *testing.T) {
	cluster, app, placement, images := fixture(t)
	app.Microservice("front").Arches = []dag.Arch{dag.ARM64}
	if _, err := cluster.Rollout(app, placement, images); err == nil {
		t.Fatal("amd64 node must reject arm64-only image")
	}
}

func TestPodLookup(t *testing.T) {
	cluster, app, placement, images := fixture(t)
	if _, ok := cluster.Pod("pod-front"); ok {
		t.Error("pod should not exist before rollout")
	}
	if _, err := cluster.Rollout(app, placement, images); err != nil {
		t.Fatal(err)
	}
	p, ok := cluster.Pod("pod-front")
	if !ok || p.Phase != PodSucceeded {
		t.Errorf("pod = %+v %v", p, ok)
	}
}

func TestAddNodeValidation(t *testing.T) {
	c := New(func(string, string) (*registry.Client, error) { return nil, nil })
	if err := c.AddNode(&Node{}); err == nil {
		t.Error("empty node accepted")
	}
	pm := energy.LinearModel{}
	dev := device.New("n", dag.AMD64, 1, 1, 1, 1, pm)
	if err := c.AddNode(&Node{Name: "n", Arch: dag.AMD64, Device: dev}); err != nil {
		t.Fatal(err)
	}
	if err := c.AddNode(&Node{Name: "n", Arch: dag.AMD64, Device: dev}); err == nil {
		t.Error("duplicate node accepted")
	}
	if got := c.Nodes(); len(got) != 1 || got[0] != "n" {
		t.Errorf("nodes = %v", got)
	}
}
