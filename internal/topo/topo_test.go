package topo

import (
	"testing"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/units"
)

func fixture(t *testing.T) View {
	t.Helper()
	top := netsim.NewTopology()
	for _, n := range []string{"regnode", "src", "a", "b"} {
		top.AddNode(n)
	}
	for _, l := range []netsim.Link{
		{From: "regnode", To: "a", BW: 10 * units.MBps, RTT: 0.5, SharedCapacity: true},
		{From: "regnode", To: "b", BW: 20 * units.MBps, RTT: 0.25},
		{From: "src", To: "a", BW: 5 * units.MBps},
	} {
		if err := top.AddLink(l); err != nil {
			t.Fatal(err)
		}
	}
	if err := top.AddDuplex("a", "b", 50*units.MBps); err != nil {
		t.Fatal(err)
	}
	pmA := energy.LinearModel{StaticW: 1, PullW: 2, ReceiveW: 3, ProcessingW: 4}
	pmB := energy.LinearModel{StaticW: 2, PullW: 2, ReceiveW: 3, ProcessingW: 4}
	return View{
		Devices: []*device.Device{
			device.New("b", dag.AMD64, 4, 1000, units.GB, 8*units.GB, pmB),
			device.New("a", dag.ARM64, 2, 500, units.GB, 8*units.GB, pmA),
			// Duplicate of "a" with a different spec: must lose to the
			// first occurrence.
			device.New("a", dag.AMD64, 8, 9000, 4*units.GB, 32*units.GB, pmB),
		},
		Registries: []Registry{
			{Name: "reg", Node: "regnode", Shared: true},
			{Name: "reg", Node: "src"}, // duplicate: must lose
		},
		Topology:   top,
		SourceNode: "src",
	}
}

func TestCompileTable(t *testing.T) {
	v := fixture(t)
	tab := Compile(v)

	if got := tab.NumDevices(); got != 2 {
		t.Fatalf("NumDevices = %d, want 2 (duplicates compacted)", got)
	}
	if got := tab.NumRegistries(); got != 1 {
		t.Fatalf("NumRegistries = %d, want 1 (duplicates compacted)", got)
	}
	// Sorted name order: a < b.
	if names := tab.DevNames(); names[0] != "a" || names[1] != "b" {
		t.Fatalf("DevNames = %v, want [a b]", names)
	}
	aID, ok := tab.DevID("a")
	if !ok || aID != 0 {
		t.Fatalf("DevID(a) = %d,%v", aID, ok)
	}
	// First occurrence wins: device "a" is the ARM one, and the duplicate
	// registry's src node lost to regnode.
	if dev := tab.Device(aID); dev.Arch != dag.ARM64 || dev != v.Devices[1] {
		t.Fatalf("interned device a = %v, want the first occurrence", dev)
	}
	if !tab.RegShared()[0] {
		t.Fatal("registry lost its Shared flag to the duplicate")
	}

	nd := tab.NumDevices()
	regA := tab.RegLinks()[0*nd+int(aID)]
	if !regA.OK || regA.BW != 10*units.MBps || regA.RTT != 0.5 {
		t.Fatalf("reg->a link = %+v", regA)
	}
	// Loopback device link exists with infinite effective bandwidth
	// semantics (netsim reports it OK).
	if loop := tab.DevLinks()[int(aID)*nd+int(aID)]; !loop.OK {
		t.Fatalf("missing loopback link: %+v", loop)
	}
	if !tab.HasSource() {
		t.Fatal("source node lost")
	}
	if src := tab.SrcLinks()[aID]; !src.OK || src.BW != 5*units.MBps {
		t.Fatalf("src->a link = %+v", src)
	}
	bID, _ := tab.DevID("b")
	if src := tab.SrcLinks()[bID]; src.OK {
		t.Fatalf("src->b should be unroutable, got %+v", src)
	}

	// Idle power comes from the interned (first) device's model.
	if w := tab.IdleW()[aID]; w != 1 {
		t.Fatalf("idle power of a = %v, want 1 (first occurrence's model)", w)
	}

	// Feasibility predicate delegates to the interned device.
	ms := &dag.Microservice{Name: "m", ImageSize: units.MB, Req: dag.Requirements{Cores: 4, CPU: 100}}
	if tab.Feasible(aID, ms) {
		t.Fatal("4-core microservice should not fit the 2-core first device a")
	}
	if !tab.Feasible(bID, ms) {
		t.Fatal("4-core microservice should fit device b")
	}
}
