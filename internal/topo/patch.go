package topo

import (
	"slices"
	"sort"

	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/units"
)

// Delta narrows an incremental recompile (Patch). Patch discovers joined,
// departed, and renamed-node devices and registries on its own by diffing
// the old table against the new view; Delta only needs to name the topology
// nodes whose links changed *in place* — bandwidth degradation or
// restoration on routes between nodes that exist in both views — because an
// in-place link change is invisible to a name-set diff.
type Delta struct {
	// TouchedNodes lists topology nodes whose incident links changed since
	// the table being patched was compiled. Every link row or column
	// involving a touched node is recompiled from the view's topology;
	// everything else is copied from the old table.
	TouchedNodes []string
}

// Patch compiles the view incrementally against this table: link rows that
// cannot have changed — both endpoints present in the old table, neither
// listed in the delta — are copied instead of re-derived, so a churn step
// that adds, removes, or fails Δ devices costs O(Δ·devices) topology
// lookups plus memory copies, not the full O(devices²) LinkBetween scan of
// Compile. The result is a fresh immutable table, element-for-element equal
// to Compile(v) (pinned by the equivalence test in patch_test.go); the old
// table is not modified, so readers of previous epochs are never disturbed.
//
// Correctness depends on the caller's honesty: a link mutated between the
// two compiles whose endpoints are absent from delta.TouchedNodes is served
// stale from the old table.
func (t *ClusterTable) Patch(v View, delta Delta) *ClusterTable {
	n := &ClusterTable{}

	n.devNames = make([]string, 0, len(v.Devices))
	for _, d := range v.Devices {
		n.devNames = append(n.devNames, d.Name)
	}
	sort.Strings(n.devNames)
	n.devNames = slices.Compact(n.devNames)
	n.devIndex = indexOf(n.devNames)

	n.regNames = make([]string, 0, len(v.Registries))
	for _, r := range v.Registries {
		n.regNames = append(n.regNames, r.Name)
	}
	sort.Strings(n.regNames)
	n.regNames = slices.Compact(n.regNames)
	n.regIndex = indexOf(n.regNames)

	nd, nr := len(n.devNames), len(n.regNames)

	touched := make(map[string]bool, len(delta.TouchedNodes))
	for _, node := range delta.TouchedNodes {
		touched[node] = true
	}

	n.devices = make([]*device.Device, nd)
	for _, d := range v.Devices {
		if i, ok := n.devIndex[d.Name]; ok && n.devices[i] == nil {
			n.devices[i] = d
		}
	}

	// oldDev[d] is the old table's id for new device d, or -1 when the
	// device joined (or was renamed) since the old compile. A device whose
	// interned handle changed is treated as new: its idle power (and only
	// its own rows) must be re-derived.
	oldDev := make([]int32, nd)
	for d := 0; d < nd; d++ {
		if od, ok := t.devIndex[n.devNames[d]]; ok && t.devices[od] == n.devices[d] {
			oldDev[d] = od
		} else {
			oldDev[d] = -1
		}
	}
	// devReusable[d]: every link incident to this device is unchanged.
	devReusable := make([]bool, nd)
	for d := 0; d < nd; d++ {
		devReusable[d] = oldDev[d] >= 0 && !touched[n.devNames[d]]
	}

	n.regShared = make([]bool, nr)
	n.regNodes = make([]string, nr)
	regSet := make([]bool, nr)
	for _, r := range v.Registries {
		if i, ok := n.regIndex[r.Name]; ok && !regSet[i] {
			regSet[i] = true
			n.regShared[i] = r.Shared
			n.regNodes[i] = r.Node
		}
	}
	// oldReg[r] is the old table's id for new registry r when its node is
	// unchanged and untouched — the condition for copying its link row.
	oldReg := make([]int32, nr)
	for r := 0; r < nr; r++ {
		oldReg[r] = -1
		if or, ok := t.regIndex[n.regNames[r]]; ok &&
			t.regNodes[or] == n.regNodes[r] && !touched[n.regNodes[r]] {
			oldReg[r] = or
		}
	}

	ond := len(t.devNames)
	n.regLink = make([]Link, nr*nd)
	for r := 0; r < nr; r++ {
		for d := 0; d < nd; d++ {
			if or := oldReg[r]; or >= 0 && devReusable[d] {
				n.regLink[r*nd+d] = t.regLink[int(or)*ond+int(oldDev[d])]
			} else {
				n.regLink[r*nd+d] = compileLink(v.Topology, n.regNodes[r], n.devNames[d])
			}
		}
	}
	n.devLink = make([]Link, nd*nd)
	for f := 0; f < nd; f++ {
		for d := 0; d < nd; d++ {
			if devReusable[f] && devReusable[d] {
				n.devLink[f*nd+d] = t.devLink[int(oldDev[f])*ond+int(oldDev[d])]
			} else {
				n.devLink[f*nd+d] = compileLink(v.Topology, n.devNames[f], n.devNames[d])
			}
		}
	}
	n.hasSource = v.SourceNode != ""
	n.srcNode = v.SourceNode
	n.srcLink = make([]Link, nd)
	if n.hasSource {
		srcReusable := t.srcNode == v.SourceNode && !touched[v.SourceNode]
		for d := 0; d < nd; d++ {
			if srcReusable && devReusable[d] {
				n.srcLink[d] = t.srcLink[oldDev[d]]
			} else {
				n.srcLink[d] = compileLink(v.Topology, v.SourceNode, n.devNames[d])
			}
		}
	}

	n.idleW = make([]units.Watts, nd)
	for d := 0; d < nd; d++ {
		if oldDev[d] >= 0 {
			n.idleW[d] = t.idleW[oldDev[d]]
		} else {
			n.idleW[d] = n.devices[d].Power.Power(energy.Idle, "")
		}
	}
	return n
}
