// Package topo is the compiled cluster-side substrate shared by every
// per-application compiler in the system. The DEEP pipeline prices
// (costmodel.Compile) and simulates (sim.CompilePlan) every (app, cluster)
// pair over the same cluster topology; before this package each compiler
// rebuilt identical sorted name tables, dense link tables, device interning,
// and idle-power rows from scratch on every cold (app, cluster) shape. A
// ClusterTable is everything in those compilers that depends only on the
// cluster — compiled once per cluster (the fleet keys it by cluster digest)
// and shared across applications and across both compilers.
//
// A ClusterTable is immutable after Compile and safe for any number of
// concurrent readers. It snapshots the topology's routes and the devices'
// idle power; mutating the cluster afterwards is not supported (the same
// contract as costmodel.Model and sim.Plan). Accessors returning slices
// return the table's own backing arrays — callers must treat them as
// read-only.
//
// Duplicate names: the name tables are sorted and compacted, and on
// duplicate device or registry names the first occurrence (in the cluster's
// declaration order) wins everywhere — the semantics sim.Cluster's interning
// and both legacy compilers converged on, pinned by the duplicate-name
// corpus test in internal/costmodel.
package topo

import (
	"slices"
	"sort"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/units"
)

// Link is a precomputed topology route: OK is false when no route exists.
// The zero value is "no route".
type Link struct {
	BW  units.Bandwidth
	RTT float64
	OK  bool
}

// Registry is the cluster-side view of one image registry (the fields of
// sim.RegistryInfo, redeclared here so the sim package can build on this one
// without an import cycle).
type Registry struct {
	Name   string
	Node   string
	Shared bool
}

// View is the cluster-shaped input Compile consumes. sim.CompileClusterTable
// adapts a *sim.Cluster into one; anything else with devices, registries,
// and a topology can compile a table directly.
type View struct {
	Devices    []*device.Device
	Registries []Registry
	Topology   *netsim.Topology
	// SourceNode is the node external inputs arrive from; empty disables
	// the source link table.
	SourceNode string
}

// ClusterTable is the compiled cluster-side substrate: sorted + compacted
// name tables and index maps, interned device handles, the dense
// registry→device / device→device / source→device link tables, per-registry
// shared-uplink flags, and per-device idle power. Application-side compilers
// (costmodel.CompileOn, sim.CompilePlanOn) layer their per-microservice
// tables on top of it.
type ClusterTable struct {
	devNames []string
	regNames []string
	devIndex map[string]int32
	regIndex map[string]int32

	// devices[d] is the interned device handle for devNames[d] (first
	// occurrence wins on duplicate names). Device handles carry the
	// feasibility predicate (device.CanRun: architecture + static
	// resources) and the layer cache the simulator drives.
	devices []*device.Device

	regShared []bool

	// regLink[r*numDev+d] is the route from registry r's node to device d;
	// devLink[f*numDev+t] between devices (including netsim's implicit
	// infinite-bandwidth loopback for f == t); srcLink[d] from the
	// external-input source node (unused when HasSource is false).
	regLink   []Link
	devLink   []Link
	srcLink   []Link
	hasSource bool

	idleW []units.Watts

	// regNodes[r] is registry r's topology node and srcNode the compiled
	// source node — recorded so Patch can tell which of this table's link
	// rows are still valid for an incrementally changed cluster view.
	regNodes []string
	srcNode  string
}

// Compile builds the cluster table. It performs the full topology scan —
// O(numReg·numDev + numDev²) LinkBetween lookups — which is exactly the work
// sharing the table avoids repeating per application.
func Compile(v View) *ClusterTable {
	t := &ClusterTable{}

	t.devNames = make([]string, 0, len(v.Devices))
	for _, d := range v.Devices {
		t.devNames = append(t.devNames, d.Name)
	}
	sort.Strings(t.devNames)
	t.devNames = slices.Compact(t.devNames)
	t.devIndex = indexOf(t.devNames)

	t.regNames = make([]string, 0, len(v.Registries))
	for _, r := range v.Registries {
		t.regNames = append(t.regNames, r.Name)
	}
	sort.Strings(t.regNames)
	t.regNames = slices.Compact(t.regNames)
	t.regIndex = indexOf(t.regNames)

	nd, nr := len(t.devNames), len(t.regNames)

	t.devices = make([]*device.Device, nd)
	for _, d := range v.Devices {
		if i, ok := t.devIndex[d.Name]; ok && t.devices[i] == nil {
			t.devices[i] = d
		}
	}

	t.regShared = make([]bool, nr)
	t.regNodes = make([]string, nr)
	regNodes := t.regNodes
	regSet := make([]bool, nr)
	for _, r := range v.Registries {
		// First occurrence wins on duplicate names, matching
		// sim.Cluster.Registry and both legacy compilers.
		if i, ok := t.regIndex[r.Name]; ok && !regSet[i] {
			regSet[i] = true
			t.regShared[i] = r.Shared
			regNodes[i] = r.Node
		}
	}

	t.regLink = make([]Link, nr*nd)
	for r := 0; r < nr; r++ {
		for d := 0; d < nd; d++ {
			t.regLink[r*nd+d] = compileLink(v.Topology, regNodes[r], t.devNames[d])
		}
	}
	t.devLink = make([]Link, nd*nd)
	for f := 0; f < nd; f++ {
		for d := 0; d < nd; d++ {
			t.devLink[f*nd+d] = compileLink(v.Topology, t.devNames[f], t.devNames[d])
		}
	}
	t.hasSource = v.SourceNode != ""
	t.srcNode = v.SourceNode
	t.srcLink = make([]Link, nd)
	if t.hasSource {
		for d := 0; d < nd; d++ {
			t.srcLink[d] = compileLink(v.Topology, v.SourceNode, t.devNames[d])
		}
	}

	t.idleW = make([]units.Watts, nd)
	for d := 0; d < nd; d++ {
		t.idleW[d] = t.devices[d].Power.Power(energy.Idle, "")
	}
	return t
}

// compileLink snapshots the route from node a to node b, including netsim's
// implicit infinite-bandwidth loopback for a == b.
func compileLink(top *netsim.Topology, a, b string) Link {
	l, ok := top.LinkBetween(a, b)
	if !ok {
		return Link{}
	}
	return Link{BW: l.BW, RTT: l.RTT, OK: true}
}

func indexOf(names []string) map[string]int32 {
	idx := make(map[string]int32, len(names))
	for i, n := range names {
		idx[n] = int32(i)
	}
	return idx
}

// NumDevices returns the number of compiled (distinct) devices.
func (t *ClusterTable) NumDevices() int { return len(t.devNames) }

// NumRegistries returns the number of compiled (distinct) registries.
func (t *ClusterTable) NumRegistries() int { return len(t.regNames) }

// DevNames returns the sorted, compacted device name table (shared slice;
// positions are device ids).
func (t *ClusterTable) DevNames() []string { return t.devNames }

// RegNames returns the sorted, compacted registry name table (shared slice).
func (t *ClusterTable) RegNames() []string { return t.regNames }

// DevIndex returns the device name→id map (shared; read-only).
func (t *ClusterTable) DevIndex() map[string]int32 { return t.devIndex }

// RegIndex returns the registry name→id map (shared; read-only).
func (t *ClusterTable) RegIndex() map[string]int32 { return t.regIndex }

// DevID returns the id of a device name.
func (t *ClusterTable) DevID(name string) (int32, bool) {
	id, ok := t.devIndex[name]
	return id, ok
}

// RegID returns the id of a registry name.
func (t *ClusterTable) RegID(name string) (int32, bool) {
	id, ok := t.regIndex[name]
	return id, ok
}

// Devices returns the interned device handles (shared slice, parallel to
// DevNames).
func (t *ClusterTable) Devices() []*device.Device { return t.devices }

// Device returns the interned handle for a device id.
func (t *ClusterTable) Device(d int32) *device.Device { return t.devices[d] }

// Feasible reports whether device d can run the microservice — the
// architecture and static-resource predicate costmodel's option enumeration
// evaluates per (microservice, device) cell. The simulator plan evaluates
// the same predicate on its own re-interned device handles instead, because
// its feasibility table must describe the cluster the plan executes against.
func (t *ClusterTable) Feasible(d int32, m *dag.Microservice) bool {
	return t.devices[d].CanRun(m) == nil
}

// RegShared returns the per-registry shared-uplink flags (shared slice).
func (t *ClusterTable) RegShared() []bool { return t.regShared }

// RegLinks returns the dense registry→device link table, indexed
// r*NumDevices()+d (shared slice).
func (t *ClusterTable) RegLinks() []Link { return t.regLink }

// DevLinks returns the dense device→device link table, indexed
// f*NumDevices()+d (shared slice).
func (t *ClusterTable) DevLinks() []Link { return t.devLink }

// SrcLinks returns the source→device link table (shared slice; meaningful
// only when HasSource reports true).
func (t *ClusterTable) SrcLinks() []Link { return t.srcLink }

// HasSource reports whether the cluster has an external-input source node.
func (t *ClusterTable) HasSource() bool { return t.hasSource }

// IdleW returns the per-device idle power draws (shared slice).
func (t *ClusterTable) IdleW() []units.Watts { return t.idleW }
