package topo

import (
	"fmt"
	"reflect"
	"testing"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/units"
)

// churnFixture builds an n-device, two-registry view with a full device mesh
// — big enough that every Patch copy path (registry rows, device rows,
// source rows, idle power) carries real data.
func churnFixture(t *testing.T, n int) View {
	t.Helper()
	top := netsim.NewTopology()
	for _, node := range []string{"hub", "regional", "src"} {
		top.AddNode(node)
	}
	pm := energy.LinearModel{StaticW: 1, PullW: 2, ReceiveW: 3, ProcessingW: 4}
	var devices []*device.Device
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("dev-%02d", i)
		devices = append(devices, device.New(name, dag.AMD64, 4, 1000, units.GB, 8*units.GB, pm))
		top.AddNode(name)
		mustAdd(t, top, netsim.Link{From: "hub", To: name, BW: units.Bandwidth(10+i) * units.MBps})
		mustAdd(t, top, netsim.Link{From: "regional", To: name, BW: units.Bandwidth(20+i) * units.MBps, SharedCapacity: true})
		mustAdd(t, top, netsim.Link{From: "src", To: name, BW: 5 * units.MBps})
		for j := 0; j < i; j++ {
			other := fmt.Sprintf("dev-%02d", j)
			if err := top.AddDuplex(name, other, units.Bandwidth(50+i+j)*units.MBps); err != nil {
				t.Fatal(err)
			}
		}
	}
	return View{
		Devices: devices,
		Registries: []Registry{
			{Name: "hub", Node: "hub"},
			{Name: "regional", Node: "regional", Shared: true},
		},
		Topology:   top,
		SourceNode: "src",
	}
}

func mustAdd(t *testing.T, top *netsim.Topology, l netsim.Link) {
	t.Helper()
	if err := top.AddLink(l); err != nil {
		t.Fatal(err)
	}
}

// without filters a view down to the devices and registries not named.
func without(v View, devNames, regNames []string) View {
	drop := make(map[string]bool)
	for _, n := range devNames {
		drop[n] = true
	}
	rdrop := make(map[string]bool)
	for _, n := range regNames {
		rdrop[n] = true
	}
	out := v
	out.Devices = nil
	for _, d := range v.Devices {
		if !drop[d.Name] {
			out.Devices = append(out.Devices, d)
		}
	}
	out.Registries = nil
	for _, r := range v.Registries {
		if !rdrop[r.Name] {
			out.Registries = append(out.Registries, r)
		}
	}
	return out
}

// TestPatchEquivalence pins the delta-patch contract: a table patched to a
// mutated view is reflect.DeepEqual to a from-scratch Compile of that view,
// across device and registry add/remove/fail in every combination (a crash
// and a removal are the same table-level operation: the device leaves the
// compiled view). Interned device handles come from the shared view, so
// DeepEqual compares them by pointer identity — pointer-distinct but
// value-equal handles would still fail, which is exactly the sharing
// contract the fleet relies on.
func TestPatchEquivalence(t *testing.T) {
	base := churnFixture(t, 8)
	baseTab := Compile(base)

	cases := []struct {
		name string
		view func() View
	}{
		{"fail one device", func() View { return without(base, []string{"dev-03"}, nil) }},
		{"fail several devices", func() View { return without(base, []string{"dev-00", "dev-05", "dev-07"}, nil) }},
		{"fail a registry", func() View { return without(base, nil, []string{"regional"}) }},
		{"fail devices and a registry", func() View { return without(base, []string{"dev-02"}, []string{"hub"}) }},
		{"identity", func() View { return base }},
		{"add a device", func() View {
			v := base
			pm := energy.LinearModel{StaticW: 9, PullW: 2, ReceiveW: 3, ProcessingW: 4}
			joined := device.New("dev-99", dag.ARM64, 2, 500, units.GB, 4*units.GB, pm)
			top := v.Topology.Clone()
			top.AddNode("dev-99")
			mustAdd(t, top, netsim.Link{From: "hub", To: "dev-99", BW: 7 * units.MBps})
			mustAdd(t, top, netsim.Link{From: "dev-99", To: "dev-01", BW: 3 * units.MBps})
			v.Topology = top
			v.Devices = append(append([]*device.Device{}, v.Devices...), joined)
			return v
		}},
		{"add a registry", func() View {
			v := base
			top := v.Topology.Clone()
			top.AddNode("mirror")
			mustAdd(t, top, netsim.Link{From: "mirror", To: "dev-04", BW: 11 * units.MBps})
			v.Topology = top
			v.Registries = append(append([]Registry{}, v.Registries...), Registry{Name: "mirror", Node: "mirror"})
			return v
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := tc.view()
			patched := baseTab.Patch(v, Delta{})
			full := Compile(v)
			if !reflect.DeepEqual(patched, full) {
				t.Fatalf("patched table != full compile\npatched: %+v\nfull:    %+v", patched, full)
			}
		})
	}
}

// TestPatchChained pins that patches compose: crash, then crash again, then
// recover both — each step patched from the previous table — lands exactly
// where a cold Compile of the final view lands, including the round trip
// back to the original view.
func TestPatchChained(t *testing.T) {
	base := churnFixture(t, 6)
	tab := Compile(base)

	step1 := without(base, []string{"dev-01"}, nil)
	tab1 := tab.Patch(step1, Delta{})
	if !reflect.DeepEqual(tab1, Compile(step1)) {
		t.Fatal("step 1 diverged from full compile")
	}
	step2 := without(base, []string{"dev-01", "dev-04"}, []string{"regional"})
	tab2 := tab1.Patch(step2, Delta{})
	if !reflect.DeepEqual(tab2, Compile(step2)) {
		t.Fatal("step 2 diverged from full compile")
	}
	// Full recovery: patching back to the base view must reproduce the
	// original table exactly.
	tab3 := tab2.Patch(base, Delta{})
	if !reflect.DeepEqual(tab3, Compile(base)) {
		t.Fatal("recovery diverged from full compile")
	}
	if !reflect.DeepEqual(tab3, tab) {
		t.Fatal("recovery diverged from the original table")
	}
}

// TestPatchTouchedNodes pins the in-place link-change contract: bandwidth
// degradation is invisible to the name-set diff, so the patched table serves
// stale rows unless the delta names the touched node — and recompiles
// exactly the incident rows when it does.
func TestPatchTouchedNodes(t *testing.T) {
	base := churnFixture(t, 5)
	tab := Compile(base)

	v := base
	v.Topology = base.Topology.Clone()
	if err := v.Topology.SetBandwidth("regional", "dev-02", 1*units.MBps); err != nil {
		t.Fatal(err)
	}
	if err := v.Topology.SetBandwidth("dev-02", "dev-03", 2*units.MBps); err != nil {
		t.Fatal(err)
	}

	full := Compile(v)
	stale := tab.Patch(v, Delta{})
	if reflect.DeepEqual(stale, full) {
		t.Fatal("degradation without TouchedNodes should serve stale link rows (negative control)")
	}
	patched := tab.Patch(v, Delta{TouchedNodes: []string{"dev-02"}})
	if !reflect.DeepEqual(patched, full) {
		t.Fatal("degradation with TouchedNodes diverged from full compile")
	}
}

// TestPatchReplacedDeviceHandle pins that swapping a device's handle (same
// name, new object — a reprovisioned node) re-derives that device's idle
// power instead of serving the old handle's.
func TestPatchReplacedDeviceHandle(t *testing.T) {
	base := churnFixture(t, 3)
	tab := Compile(base)

	v := base
	pm := energy.LinearModel{StaticW: 42, PullW: 2, ReceiveW: 3, ProcessingW: 4}
	v.Devices = append([]*device.Device{}, base.Devices...)
	v.Devices[1] = device.New("dev-01", dag.AMD64, 8, 2000, units.GB, 8*units.GB, pm)

	patched := tab.Patch(v, Delta{})
	full := Compile(v)
	if !reflect.DeepEqual(patched, full) {
		t.Fatal("replaced handle diverged from full compile")
	}
	id, _ := patched.DevID("dev-01")
	if patched.IdleW()[id] != 42 {
		t.Fatalf("idle power not re-derived for replaced handle: %v", patched.IdleW()[id])
	}
}
