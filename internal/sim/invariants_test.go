package sim

import (
	"math"
	"math/rand"
	"testing"

	"deep/internal/dag"
	"deep/internal/units"
)

// Simulation invariants checked over randomized placements of randomized
// applications on the test cluster:
//
//  1. CT = Td + Tc + Tp for every microservice.
//  2. All phase times and energies are non-negative and finite.
//  3. The result's total equals the sum of per-microservice totals.
//  4. Makespan is at least the largest per-microservice finish time.
//  5. Bytes pulled never exceed the total image bytes.
func TestSimulatorInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 40; trial++ {
		app := randomApp(t, rng, 2+rng.Intn(6))
		cluster := testCluster()
		placement := Placement{}
		for _, m := range app.Microservices {
			dev := "devA"
			if rng.Intn(2) == 1 {
				dev = "devB"
			}
			reg := "hub"
			if rng.Intn(2) == 1 {
				reg = "regional"
			}
			placement[m.Name] = Assignment{Device: dev, Registry: reg}
		}
		res, err := Run(app, cluster, placement, Options{Seed: int64(trial), Jitter: 0.02})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		var sum units.Joules
		var maxFinish float64
		var totalPulled, totalImages units.Bytes
		for _, m := range res.Microservices {
			if got := m.DeployTime + m.TransferTime + m.ProcessTime; math.Abs(got-m.CT) > 1e-9 {
				t.Errorf("trial %d %s: CT %v != Td+Tc+Tp %v", trial, m.Name, m.CT, got)
			}
			for _, v := range []float64{m.DeployTime, m.TransferTime, m.ProcessTime, m.WaitTime, m.CT, float64(m.Energy), float64(m.StaticShare)} {
				if v < -1e-9 || math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("trial %d %s: bad value %v in %+v", trial, m.Name, v, m)
				}
			}
			sum += m.TotalEnergy()
			if m.Finish > maxFinish {
				maxFinish = m.Finish
			}
			totalPulled += m.BytesPulled
		}
		for _, m := range app.Microservices {
			totalImages += m.ImageSize
		}
		if math.Abs(float64(sum-res.TotalEnergy)) > 1e-6 {
			t.Errorf("trial %d: sum %v != total %v", trial, sum, res.TotalEnergy)
		}
		if res.Makespan < maxFinish-1e-9 {
			t.Errorf("trial %d: makespan %v < max finish %v", trial, res.Makespan, maxFinish)
		}
		if totalPulled > totalImages {
			t.Errorf("trial %d: pulled %v > images %v", trial, totalPulled, totalImages)
		}
	}
}

// randomApp builds a random layered DAG compatible with testCluster.
func randomApp(t *testing.T, rng *rand.Rand, n int) *dag.App {
	t.Helper()
	app := dag.NewApp("rand")
	names := make([]string, n)
	for i := 0; i < n; i++ {
		names[i] = string(rune('a' + i))
		err := app.AddMicroservice(&dag.Microservice{
			Name:      names[i],
			ImageSize: units.Bytes(1+rng.Intn(500)) * units.MB,
			Req:       dag.Requirements{CPU: units.MI(100 + rng.Intn(5000))},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Chain backbone keeps the DAG connected; extra forward edges add
	// fan-out.
	for i := 1; i < n; i++ {
		if err := app.AddDataflow(names[i-1], names[i], units.Bytes(rng.Intn(100))*units.MB); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 2; j < n; j++ {
			if rng.Float64() < 0.15 {
				_ = app.AddDataflow(names[i], names[j], units.Bytes(rng.Intn(50))*units.MB)
			}
		}
	}
	if err := app.Validate(); err != nil {
		t.Fatal(err)
	}
	return app
}

// Energy is monotone in registry link speed: slowing every registry link
// down can only increase total energy (longer pulls at transfer power).
func TestSimulatorEnergyMonotoneInBandwidth(t *testing.T) {
	app := chainApp(t)
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	fast := testCluster()
	resFast, err := Run(app, fast, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	slow := testCluster()
	for _, pair := range [][2]string{{"hubNode", "devA"}, {"hubNode", "devB"}, {"regNode", "devA"}, {"regNode", "devB"}} {
		bw := slow.Topology.Bandwidth(pair[0], pair[1])
		if err := slow.Topology.SetBandwidth(pair[0], pair[1], bw/4); err != nil {
			t.Fatal(err)
		}
	}
	resSlow, err := Run(app, slow, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resSlow.TotalEnergy <= resFast.TotalEnergy {
		t.Errorf("slower links should cost more energy: %v vs %v", resSlow.TotalEnergy, resFast.TotalEnergy)
	}
	if resSlow.Makespan <= resFast.Makespan {
		t.Errorf("slower links should lengthen the makespan: %v vs %v", resSlow.Makespan, resFast.Makespan)
	}
}
