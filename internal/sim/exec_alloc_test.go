package sim

import (
	"testing"

	"deep/internal/device"
)

// TestCompilePlanDuplicateNames: duplicate device, registry, or
// microservice names (possible through the exported Cluster fields) must
// not crash the compiled path — first occurrence wins, as it always did in
// Cluster.Device / Cluster.Registry.
func TestCompilePlanDuplicateNames(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	// Duplicate the first device and registry under their existing names.
	d0 := cluster.Devices[0]
	cluster.Devices = append(cluster.Devices,
		device.New(d0.Name, d0.Arch, d0.Cores, d0.Speed, d0.Memory, d0.Storage, d0.Power))
	cluster.Registries = append(cluster.Registries, cluster.Registries[0])

	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	res, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Microservices) != 2 || res.Makespan <= 0 {
		t.Fatalf("degenerate result on duplicate names: %+v", res)
	}
	if _, ok := res.EnergyByDevice["devA"]; !ok {
		t.Fatal("duplicate-named device missing from energy accounting")
	}
}

// TestWarmExecAllocationFree pins the compiled simulator's steady state at
// zero allocations: once the plan is compiled, the Exec scratch is sized,
// and the device layer caches are warm, repeated Exec.Run calls — jitter
// included — allocate nothing. This is the simulator-side counterpart of
// the scheduler's TestWarmPassAllocationFree.
func TestWarmExecAllocationFree(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	plan := CompilePlan(app, cluster)
	exec := NewExec()

	// Prime: one cold run fills the layer caches and sizes the scratch.
	if _, err := exec.Run(plan, placement, Options{}); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{WarmCaches: true},
		{WarmCaches: true, Jitter: 0.05, Seed: 42},
	} {
		opts := opts
		if _, err := exec.Run(plan, placement, opts); err != nil {
			t.Fatal(err)
		}
		if allocs := testing.AllocsPerRun(50, func() {
			if _, err := exec.Run(plan, placement, opts); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("warm Exec.Run (jitter=%v) allocates %v times per call, want 0", opts.Jitter, allocs)
		}
	}
}
