// Package sim contains DEEP's discrete-event simulation substrate: a
// virtual-clock event engine and the dataflow executor that replays a placed
// application (deploy → receive dataflows → process) against the device,
// network, and energy models, producing the per-microservice completion-time
// and energy figures of the paper's Section III-D.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled at a virtual time.
type Event struct {
	At  float64
	Fn  func(*Engine)
	seq int64 // FIFO tie-breaking
	idx int
}

// Engine is a minimal discrete-event simulation kernel: a priority queue of
// events and a virtual clock. It is deliberately single-threaded; all
// concurrency in the simulated world is expressed through event ordering,
// which keeps runs perfectly deterministic.
type Engine struct {
	now   float64
	queue eventQueue
	seq   int64
	steps int64
	// MaxSteps guards against runaway event loops; 0 means no limit.
	MaxSteps int64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Steps returns how many events have executed.
func (e *Engine) Steps() int64 { return e.steps }

// Schedule enqueues fn to run at the given absolute virtual time. Scheduling
// in the past panics — it would silently corrupt causality.
func (e *Engine) Schedule(at float64, fn func(*Engine)) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &Event{At: at, Fn: fn, seq: e.seq})
}

// After enqueues fn to run delay seconds from now.
func (e *Engine) After(delay float64, fn func(*Engine)) {
	if delay < 0 {
		panic("sim: negative delay")
	}
	e.Schedule(e.now+delay, fn)
}

// Run executes events until the queue drains, returning the final clock.
func (e *Engine) Run() float64 {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.At
		e.steps++
		if e.MaxSteps > 0 && e.steps > e.MaxSteps {
			panic("sim: MaxSteps exceeded (runaway event loop?)")
		}
		ev.Fn(e)
	}
	return e.now
}

// RunUntil executes events with At <= deadline, leaving later events queued.
// The clock is advanced to the deadline.
func (e *Engine) RunUntil(deadline float64) {
	for e.queue.Len() > 0 && e.queue[0].At <= deadline {
		ev := heap.Pop(&e.queue).(*Event)
		e.now = ev.At
		e.steps++
		if e.MaxSteps > 0 && e.steps > e.MaxSteps {
			panic("sim: MaxSteps exceeded (runaway event loop?)")
		}
		ev.Fn(e)
	}
	if deadline > e.now {
		e.now = deadline
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// eventQueue is a min-heap on (At, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.idx = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
