package sim

import (
	"fmt"
	"hash/fnv"
	"strconv"
	"testing"
)

// referenceFactor is the historical fmt.Fprintf + hash/fnv implementation
// the allocation-free jitterer replaced; the produced factors must stay
// bit-identical.
func referenceFactor(seed int64, width float64, app, ms, phase string) float64 {
	if width == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s", seed, app, ms, phase)
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0
	return 1 - width + 2*width*u
}

func TestJitterFactorBitIdentical(t *testing.T) {
	apps := []string{"video", "text", "app|with|pipes", ""}
	mss := []string{"encode", "ocr", "a"}
	phases := []string{"deploy", "transfer", "process"}
	seeds := []int64{0, 1, -1, 42, -9000000000000000000, 9000000000000000000}
	widths := []float64{0, 0.02, 0.5, 1.5}
	for _, app := range apps {
		for _, ms := range mss {
			for _, phase := range phases {
				for _, seed := range seeds {
					for _, width := range widths {
						j := jitterer{seed: seed, width: width, app: app}
						got := j.factor(ms, phase)
						want := referenceFactor(seed, width, app, ms, phase)
						if got != want {
							t.Fatalf("factor(%d,%v,%q,%q,%q) = %v, reference %v",
								seed, width, app, ms, phase, got, want)
						}
					}
				}
			}
		}
	}
}

// TestJitterFactorMatchesCompiledPath pins the executor's precomputed-tag
// hashing (seed state + tag continuation) against the jitterer.
func TestJitterFactorMatchesCompiledPath(t *testing.T) {
	const width = 0.07
	for _, seed := range []int64{0, 5, -31, 1 << 40} {
		j := jitterer{seed: seed, width: width, app: "corpus"}
		var digits [20]byte
		seedH := fnvAdd(fnvOffset64, strconv.AppendInt(digits[:0], seed, 10))
		for _, ms := range []string{"encode", "detect"} {
			for _, phase := range []string{"deploy", "transfer", "process"} {
				tag := []byte("|corpus|" + ms + "|" + phase)
				if got, want := jitterFactor(seedH, tag, width), j.factor(ms, phase); got != want {
					t.Fatalf("compiled factor %v != jitterer %v for seed %d %s/%s", got, want, seed, ms, phase)
				}
			}
		}
	}
}

func TestJitterFactorAllocationFree(t *testing.T) {
	j := jitterer{seed: 42, width: 0.05, app: "video"}
	var sink float64
	if allocs := testing.AllocsPerRun(200, func() {
		sink += j.factor("encode", "process")
	}); allocs != 0 {
		t.Fatalf("jitterer.factor allocates %v times per call", allocs)
	}
	tag := []byte("|video|encode|process")
	if allocs := testing.AllocsPerRun(200, func() {
		sink += jitterFactor(12345, tag, 0.05)
	}); allocs != 0 {
		t.Fatalf("jitterFactor allocates %v times per call", allocs)
	}
	_ = sink
}
