package sim

import (
	"math"
	"testing"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/units"
)

// testCluster builds a two-device, two-registry cluster with simple numbers:
// hub link 10 MB/s, regional link 20 MB/s (shared), device interconnect
// 5 MB/s, devices at 1000 and 500 MI/s.
func testCluster() *Cluster {
	pmA := energy.LinearModel{StaticW: 2, PullW: 3, ReceiveW: 1, ProcessingW: 18}
	pmB := energy.LinearModel{StaticW: 1, PullW: 2, ReceiveW: 1, ProcessingW: 6}
	devA := device.New("devA", dag.AMD64, 8, 1000, 16*units.GB, 64*units.GB, pmA)
	devB := device.New("devB", dag.ARM64, 4, 500, 8*units.GB, 32*units.GB, pmB)

	topo := netsim.NewTopology()
	for _, n := range []string{"hubNode", "regNode", "devA", "devB"} {
		topo.AddNode(n)
	}
	mustLink := func(l netsim.Link) {
		if err := topo.AddLink(l); err != nil {
			panic(err)
		}
	}
	mustLink(netsim.Link{From: "hubNode", To: "devA", BW: 10 * units.MBps})
	mustLink(netsim.Link{From: "hubNode", To: "devB", BW: 10 * units.MBps})
	mustLink(netsim.Link{From: "regNode", To: "devA", BW: 20 * units.MBps, SharedCapacity: true})
	mustLink(netsim.Link{From: "regNode", To: "devB", BW: 20 * units.MBps, SharedCapacity: true})
	if err := topo.AddDuplex("devA", "devB", 5*units.MBps); err != nil {
		panic(err)
	}

	return &Cluster{
		Devices: []*device.Device{devA, devB},
		Registries: []RegistryInfo{
			{Name: "hub", Node: "hubNode"},
			{Name: "regional", Node: "regNode", Shared: true},
		},
		Topology: topo,
	}
}

// chainApp builds a -> b with the given sizes.
func chainApp(t *testing.T) *dag.App {
	t.Helper()
	app := dag.NewApp("chain")
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(app.AddMicroservice(&dag.Microservice{
		Name: "a", ImageSize: 100 * units.MB,
		Req: dag.Requirements{CPU: 2000},
	}))
	must(app.AddMicroservice(&dag.Microservice{
		Name: "b", ImageSize: 200 * units.MB,
		Req: dag.Requirements{CPU: 1000},
	}))
	must(app.AddDataflow("a", "b", 50*units.MB))
	return app
}

func TestRunChainTimings(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	res, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := res.ByName("a")
	// a: pull 100MB at 10MB/s = 10s; no inputs; 2000MI at 1000MI/s = 2s.
	if math.Abs(ra.DeployTime-10) > 1e-9 || ra.TransferTime != 0 || math.Abs(ra.ProcessTime-2) > 1e-9 {
		t.Errorf("a = %+v", ra)
	}
	if math.Abs(ra.CT-12) > 1e-9 {
		t.Errorf("a.CT = %v", ra.CT)
	}
	rb, _ := res.ByName("b")
	// b (stage 1, barrier at 12): pull 200MB at 20MB/s = 10s (alone on the
	// shared link); dataflow 50MB from devA at 5MB/s = 10s; 1000MI at
	// 500MI/s = 2s.
	if math.Abs(rb.DeployTime-10) > 1e-9 || math.Abs(rb.TransferTime-10) > 1e-9 || math.Abs(rb.ProcessTime-2) > 1e-9 {
		t.Errorf("b = %+v", rb)
	}
	if math.Abs(rb.Start-12) > 1e-9 {
		t.Errorf("b.Start = %v, want barrier at 12", rb.Start)
	}
	if math.Abs(res.Makespan-34) > 1e-9 {
		t.Errorf("makespan = %v, want 34", res.Makespan)
	}
}

func TestRunEnergyAccounting(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	res, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ra, _ := res.ByName("a")
	// a on devA: pull 10s at (2+3)W, process 2s at (2+18)W.
	// active (above idle): 10*3 + 2*18 = 66 J; static: 12s * 2W = 24 J.
	if math.Abs(float64(ra.Energy)-66) > 1e-6 {
		t.Errorf("a active energy = %v, want 66", ra.Energy)
	}
	if math.Abs(float64(ra.StaticShare)-24) > 1e-6 {
		t.Errorf("a static share = %v, want 24", ra.StaticShare)
	}
	if math.Abs(float64(ra.TotalEnergy())-90) > 1e-6 {
		t.Errorf("a total = %v, want 90", ra.TotalEnergy())
	}
	// Device meter must agree with the per-microservice totals.
	if math.Abs(float64(res.EnergyByDevice["devA"]-ra.TotalEnergy())) > 1e-6 {
		t.Errorf("device meter %v != ms energy %v", res.EnergyByDevice["devA"], ra.TotalEnergy())
	}
	rb, _ := res.ByName("b")
	wantTotal := ra.TotalEnergy() + rb.TotalEnergy()
	if math.Abs(float64(res.TotalEnergy-wantTotal)) > 1e-6 {
		t.Errorf("total = %v, want %v", res.TotalEnergy, wantTotal)
	}
}

func TestRunSharedRegistryContention(t *testing.T) {
	// Two microservices in the same stage pulling from the shared regional
	// registry must split its capacity; from the hub they would not.
	app := dag.NewApp("par")
	for _, n := range []string{"src", "x", "y"} {
		err := app.AddMicroservice(&dag.Microservice{Name: n, ImageSize: 100 * units.MB, Req: dag.Requirements{CPU: 500}})
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = app.AddDataflow("src", "x", 0)
	_ = app.AddDataflow("src", "y", 0)

	cluster := testCluster()
	regional := Placement{
		"src": {Device: "devA", Registry: "hub"},
		"x":   {Device: "devA", Registry: "regional"},
		"y":   {Device: "devB", Registry: "regional"},
	}
	res, err := Run(app, cluster, regional, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rx, _ := res.ByName("x")
	ry, _ := res.ByName("y")
	// Both pull 100MB concurrently over a 20MB/s shared uplink: 10s each.
	if math.Abs(rx.DeployTime-10) > 1e-9 || math.Abs(ry.DeployTime-10) > 1e-9 {
		t.Errorf("shared pulls: x=%v y=%v, want 10 each", rx.DeployTime, ry.DeployTime)
	}

	hub := Placement{
		"src": {Device: "devA", Registry: "hub"},
		"x":   {Device: "devA", Registry: "hub"},
		"y":   {Device: "devB", Registry: "hub"},
	}
	res2, err := Run(app, cluster, hub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	hx, _ := res2.ByName("x")
	hy, _ := res2.ByName("y")
	// Hub links are independent CDN paths: 100MB at 10MB/s = 10s each too,
	// but without contention scaling; compare against a single regional pull
	// (5s at full 20MB/s) to see the game's tension.
	if math.Abs(hx.DeployTime-10) > 1e-9 || math.Abs(hy.DeployTime-10) > 1e-9 {
		t.Errorf("hub pulls: x=%v y=%v", hx.DeployTime, hy.DeployTime)
	}
	solo := Placement{
		"src": {Device: "devA", Registry: "hub"},
		"x":   {Device: "devA", Registry: "regional"},
		"y":   {Device: "devB", Registry: "hub"},
	}
	res3, err := Run(app, cluster, solo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sx, _ := res3.ByName("x")
	if math.Abs(sx.DeployTime-5) > 1e-9 {
		t.Errorf("solo regional pull = %v, want 5", sx.DeployTime)
	}
}

func TestRunLayerCacheSkipsPull(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	// Both microservices share a base layer.
	cluster.Layers = map[string][]Layer{
		"a": {{Digest: "base", Size: 80 * units.MB}, {Digest: "a-top", Size: 20 * units.MB}},
		"b": {{Digest: "base", Size: 80 * units.MB}, {Digest: "b-top", Size: 120 * units.MB}},
	}
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devA", Registry: "hub"},
	}
	res, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rb, _ := res.ByName("b")
	// b shares the 80MB base with a (same device): pulls only 120MB.
	if rb.BytesPulled != 120*units.MB {
		t.Errorf("b pulled %v, want 120MB", rb.BytesPulled)
	}
	if math.Abs(rb.DeployTime-12) > 1e-9 {
		t.Errorf("b deploy = %v, want 12", rb.DeployTime)
	}

	// A second warm run should pull nothing at all.
	res2, err := Run(app, cluster, placement, Options{WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res2.Microservices {
		if !r.CacheHit || r.BytesPulled != 0 || r.DeployTime != 0 {
			t.Errorf("warm run should be fully cached: %+v", r)
		}
	}
}

func TestRunDeviceSerialization(t *testing.T) {
	// Two same-stage microservices on one device execute one after another.
	app := dag.NewApp("par")
	for _, n := range []string{"x", "y"} {
		err := app.AddMicroservice(&dag.Microservice{Name: n, ImageSize: 10 * units.MB, Req: dag.Requirements{CPU: 1000}})
		if err != nil {
			t.Fatal(err)
		}
	}
	_ = app.AddDataflow("x", "y", 0) // chain to keep the graph connected
	cluster := testCluster()
	placement := Placement{
		"x": {Device: "devA", Registry: "hub"},
		"y": {Device: "devA", Registry: "hub"},
	}
	res, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rx, _ := res.ByName("x")
	ry, _ := res.ByName("y")
	if ry.Start < rx.Finish-1e-9 && ry.WaitTime == 0 {
		t.Errorf("expected serialization between x and y: %+v %+v", rx, ry)
	}
	// WaitTime never counts into CT (the paper's CT is Td+Tc+Tp).
	if math.Abs(ry.CT-(ry.DeployTime+ry.TransferTime+ry.ProcessTime)) > 1e-9 {
		t.Errorf("CT must be Td+Tc+Tp: %+v", ry)
	}
}

func TestRunValidatesPlacement(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	cases := []Placement{
		{"a": {Device: "devA", Registry: "hub"}}, // missing b
		{"a": {Device: "nope", Registry: "hub"}, "b": {Device: "devB", Registry: "regional"}},
		{"a": {Device: "devA", Registry: "nope"}, "b": {Device: "devB", Registry: "regional"}},
	}
	for i, p := range cases {
		if _, err := Run(app, cluster, p, Options{}); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestRunArchConstraint(t *testing.T) {
	app := dag.NewApp("archy")
	err := app.AddMicroservice(&dag.Microservice{
		Name: "amdonly", ImageSize: units.MB,
		Arches: []dag.Arch{dag.AMD64},
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster := testCluster()
	p := Placement{"amdonly": {Device: "devB", Registry: "hub"}} // devB is arm64
	if _, err := Run(app, cluster, p, Options{}); err == nil {
		t.Error("arm64 device must reject amd64-only image")
	}
}

func TestRunDeterminism(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	r1, err := Run(app, cluster, placement, Options{Seed: 42, Jitter: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(app, cluster, placement, Options{Seed: 42, Jitter: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalEnergy != r2.TotalEnergy || r1.Makespan != r2.Makespan {
		t.Errorf("same seed must reproduce: %v/%v vs %v/%v", r1.TotalEnergy, r1.Makespan, r2.TotalEnergy, r2.Makespan)
	}
	r3, err := Run(app, cluster, placement, Options{Seed: 43, Jitter: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if r1.TotalEnergy == r3.TotalEnergy {
		t.Error("different seeds should perturb results")
	}
}

func TestRunJitterBounded(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	base, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 20; seed++ {
		r, err := Run(app, cluster, placement, Options{Seed: seed, Jitter: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		for i, m := range r.Microservices {
			b := base.Microservices[i]
			if m.ProcessTime < b.ProcessTime*0.98-1e-9 || m.ProcessTime > b.ProcessTime*1.02+1e-9 {
				t.Errorf("seed %d: %s Tp %v outside ±2%% of %v", seed, m.Name, m.ProcessTime, b.ProcessTime)
			}
		}
	}
}

func TestResultSortedAndLookup(t *testing.T) {
	app := chainApp(t)
	cluster := testCluster()
	placement := Placement{
		"a": {Device: "devA", Registry: "hub"},
		"b": {Device: "devB", Registry: "regional"},
	}
	res, err := Run(app, cluster, placement, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sorted()
	if s[0].Name != "a" || s[1].Name != "b" {
		t.Errorf("sorted = %v", s)
	}
	if _, ok := res.ByName("nope"); ok {
		t.Error("unknown lookup should fail")
	}
	if got := res.BytesFromRegistry["hub"]; got != 100*units.MB {
		t.Errorf("hub bytes = %v", got)
	}
}

func TestPlacementClone(t *testing.T) {
	p := Placement{"a": {Device: "d", Registry: "r"}}
	c := p.Clone()
	c["a"] = Assignment{Device: "x", Registry: "y"}
	if p["a"].Device != "d" {
		t.Error("clone aliases original")
	}
}
