package sim

import (
	"fmt"
	"math"
	"strconv"

	"deep/internal/units"
)

// Exec is the reusable scratch for repeated compiled simulation runs: flat
// pull records, finish times, device serialization horizons, per-device
// energy accumulators, and a reusable Result buffer, all sized to the
// largest plan seen so far. Repeated Exec.Run calls on a warm layer cache
// allocate nothing at all; the returned Result is bit-identical to what the
// legacy map-based executor produced for the same inputs.
//
// An Exec is not safe for concurrent use; give each worker its own. It may
// be shared sequentially across plans of any shape.
type Exec struct {
	// Per-microservice scratch (indexed by plan ms id).
	assignDev []int32
	assignReg []int32
	pulls     []execPull
	finish    []float64
	msRes     []MicroserviceResult

	// Per-device scratch. pullEnd is valid only when pullEndEp matches the
	// current epoch (one epoch per stage), mirroring the legacy executor's
	// per-stage pullEnd map; devFree and devEnergy span the whole run.
	devFree   []float64
	devEnergy []units.Joules
	pullEnd   []float64
	pullEndEp []uint64

	// Shared-registry contention scratch: pullSeen marks (registry, device)
	// cells, nPull counts distinct pulling devices per registry, both
	// epoch-validated per stage.
	pullSeen []uint64
	nPull    []int32
	nPullEp  []uint64
	epoch    uint64

	// Per-registry byte accounting; regUsed marks registries named by the
	// placement (the legacy executor created a map entry even for 0 bytes).
	regBytes []units.Bytes
	regUsed  []bool

	seedBuf []byte
	res     Result
}

// execPull is one microservice's deployment record within the current stage.
type execPull struct {
	missing units.Bytes
	td      float64
	start   float64
	done    float64
}

// NewExec returns an empty executor; its scratch grows to fit the first
// plan it runs.
func NewExec() *Exec { return &Exec{} }

// size grows the scratch to the plan's dimensions. Growing never shrinks,
// so an Exec shared across plans settles at the largest shape.
func (e *Exec) size(p *Plan) {
	nm, nd, nr := len(p.msNames), len(p.devNames), len(p.regNames)
	e.assignDev = growInt32(e.assignDev, nm)
	e.assignReg = growInt32(e.assignReg, nm)
	e.pulls = growPulls(e.pulls, nm)
	e.finish = growFloats(e.finish, nm)
	e.msRes = growResults(e.msRes, nm)
	e.devFree = growFloats(e.devFree, nd)
	e.devEnergy = growJoules(e.devEnergy, nd)
	e.pullEnd = growFloats(e.pullEnd, nd)
	e.pullEndEp = growUints(e.pullEndEp, nd)
	e.pullSeen = growUints(e.pullSeen, nr*nd)
	e.nPull = growInt32(e.nPull, nr)
	e.nPullEp = growUints(e.nPullEp, nr)
	e.regBytes = growBytes(e.regBytes, nr)
	e.regUsed = growBools(e.regUsed, nr)
}

// Run replays the plan under the placement and returns per-microservice
// timing and energy, exactly as sim.Run does. The returned Result (its
// slices and maps included) is owned by the Exec and valid only until the
// next Run call; callers that hand it off should Clone it.
func (e *Exec) Run(p *Plan, placement Placement, opts Options) (*Result, error) {
	if err := p.validate(placement); err != nil {
		return nil, err
	}
	if p.stagesErr != nil {
		return nil, p.stagesErr
	}
	e.size(p)
	for i, name := range p.msNames {
		a := placement[name]
		e.assignDev[i] = p.devIndex[a.Device]
		e.assignReg[i] = p.regIndex[a.Registry]
	}
	return e.run(p, opts)
}

// RunIndexed is Run for a placement already in compiled parallel-slice form
// (names sorted ascending, assigns parallel) — the shape placements take in
// the fleet's memo and response views. Semantics and the returned Result are
// identical to Run on the materialized map; the point is that no map has to
// be materialized at all.
func (e *Exec) RunIndexed(p *Plan, names []string, assigns []Assignment, opts Options) (*Result, error) {
	if err := p.validateIndexed(names, assigns); err != nil {
		return nil, err
	}
	if p.stagesErr != nil {
		return nil, p.stagesErr
	}
	e.size(p)
	for i, name := range p.msNames {
		k := searchSortedNames(names, name)
		if k < 0 {
			return nil, fmt.Errorf("sim: placement missing microservice %q", name)
		}
		a := assigns[k]
		e.assignDev[i] = p.devIndex[a.Device]
		e.assignReg[i] = p.regIndex[a.Registry]
	}
	return e.run(p, opts)
}

// run replays the plan with assignDev/assignReg already filled.
func (e *Exec) run(p *Plan, opts Options) (*Result, error) {
	nd := len(p.devNames)
	if !opts.WarmCaches {
		for _, d := range p.cluster.Devices {
			d.Cache().Flush()
		}
	}
	for d := 0; d < nd; d++ {
		e.devFree[d] = 0
		e.devEnergy[d] = 0
	}
	for r := range p.regNames {
		e.regBytes[r] = 0
		e.regUsed[r] = false
	}

	// Deterministic jitter: the legacy jitterer FNV-1a-hashed
	// "seed|app|ms|phase"; the compiled path hashes the seed's digits once
	// and continues per (ms, phase) from the plan's precomputed tag bytes —
	// the same byte stream, so the factors are bit-identical.
	jw := opts.Jitter
	seedH := uint64(fnvOffset64)
	if jw != 0 {
		e.seedBuf = strconv.AppendInt(e.seedBuf[:0], opts.Seed, 10)
		seedH = fnvAdd(seedH, e.seedBuf)
	}

	barrier := 0.0
	for _, stage := range p.stages {
		e.epoch++

		// --- Deployment phase: cache-aware pull sizing ------------------
		// Pulls on one device are serialized; pulls from a shared registry
		// to several distinct devices at once divide its uplink capacity.
		for _, ms := range stage {
			d := e.assignDev[ms]
			dev := p.devices[d]
			var missing units.Bytes
			for _, layer := range p.layers[ms] {
				if !dev.Cache().Has(layer.Digest) {
					missing += layer.Size
					dev.Cache().Put(layer.Digest, layer.Size)
				}
			}
			e.pulls[ms].missing = missing
			if missing > 0 {
				r := e.assignReg[ms]
				cell := int(r)*nd + int(d)
				if e.pullSeen[cell] != e.epoch {
					e.pullSeen[cell] = e.epoch
					if e.nPullEp[r] != e.epoch {
						e.nPullEp[r] = e.epoch
						e.nPull[r] = 0
					}
					e.nPull[r]++
				}
			}
		}
		for _, ms := range stage {
			pl := &e.pulls[ms]
			if pl.missing == 0 {
				pl.start, pl.done, pl.td = barrier, barrier, 0
				continue
			}
			d, r := e.assignDev[ms], e.assignReg[ms]
			l := p.regLink[int(r)*nd+int(d)]
			if !l.OK {
				return nil, fmt.Errorf("sim: no route from registry %s to device %s", p.regNames[r], p.devNames[d])
			}
			bw := l.BW
			if p.regShared[r] && e.nPullEp[r] == e.epoch {
				if n := e.nPull[r]; n > 1 {
					bw = l.BW / units.Bandwidth(n)
				}
			}
			td := l.RTT + bw.Seconds(pl.missing)
			if jw != 0 {
				td *= jitterFactor(seedH, p.jitterTag[phaseDeploy][ms], jw)
			}
			pl.td = td
			start := barrier
			if e.pullEndEp[d] == e.epoch && e.pullEnd[d] > start {
				start = e.pullEnd[d]
			}
			pl.start = start
			pl.done = start + td
			e.pullEnd[d] = pl.done
			e.pullEndEp[d] = e.epoch
		}

		// --- Transfer + processing phases -------------------------------
		for _, ms := range stage {
			d, r := e.assignDev[ms], e.assignReg[ms]
			pl := &e.pulls[ms]
			td := pl.td

			tc := 0.0
			for _, in := range p.inputs[ms] {
				dl := p.devLink[int(e.assignDev[in.MS])*nd+int(d)]
				if dl.OK {
					tc += dl.RTT + dl.BW.Seconds(in.Size)
				} else {
					tc += math.Inf(1)
				}
			}
			if p.extInput[ms] > 0 && p.hasSource {
				if sl := p.srcLink[d]; sl.OK {
					tc += sl.RTT + sl.BW.Seconds(p.extInput[ms])
				} else {
					tc += math.Inf(1)
				}
			}
			if jw != 0 {
				tc *= jitterFactor(seedH, p.jitterTag[phaseTransfer][ms], jw)
			}

			base := int(ms)*nd + int(d)
			tp := p.tp[base]
			if jw != 0 {
				tp *= jitterFactor(seedH, p.jitterTag[phaseProcess][ms], jw)
			}

			readyAt := pl.done + tc
			startProc := readyAt
			if e.devFree[d] > startProc {
				startProc = e.devFree[d]
			}
			wait := (pl.start - barrier) + (startProc - readyAt)
			finish := startProc + tp
			e.devFree[d] = finish
			e.finish[ms] = finish

			// Energy accounting, in the legacy meter's record order (pull,
			// receive, process) so per-device totals accumulate in the same
			// floating-point sequence. Negative durations (a jitter width
			// over 1) fail exactly where energy.Meter.Record did.
			if td < 0 {
				return nil, fmt.Errorf("energy: negative duration %v", td)
			}
			if tc < 0 {
				return nil, fmt.Errorf("energy: negative duration %v", tc)
			}
			if tp < 0 {
				return nil, fmt.Errorf("energy: negative duration %v", tp)
			}
			e.devEnergy[d] += p.pullW[base].Over(td)
			e.devEnergy[d] += p.recvW[base].Over(tc)
			e.devEnergy[d] += p.procW[base].Over(tp)

			ct := td + tc + tp
			active := p.actPullW[base].Over(td) + p.actRecvW[base].Over(tc) + p.actProcW[base].Over(tp)
			static := p.idleW[d].Over(ct)

			e.regBytes[r] += pl.missing
			e.regUsed[r] = true
			e.msRes[ms] = MicroserviceResult{
				Name: p.msNames[ms], Device: p.devNames[d], Registry: p.regNames[r],
				DeployTime: td, TransferTime: tc, ProcessTime: tp,
				WaitTime: wait, CT: ct,
				Start: barrier, Finish: finish,
				Energy: active, StaticShare: static,
				BytesPulled: pl.missing, CacheHit: pl.missing == 0,
			}
		}

		// Barrier: the next stage starts once every microservice of this
		// stage has finished.
		for _, ms := range stage {
			if e.finish[ms] > barrier {
				barrier = e.finish[ms]
			}
		}
	}

	res := &e.res
	res.App = p.app.Name
	res.Makespan = barrier
	res.TotalEnergy = 0
	res.Microservices = res.Microservices[:0]
	if res.EnergyByDevice == nil {
		res.EnergyByDevice = make(map[string]units.Joules, nd)
	} else {
		clear(res.EnergyByDevice)
	}
	if res.BytesFromRegistry == nil {
		res.BytesFromRegistry = make(map[string]units.Bytes, len(p.regNames))
	} else {
		clear(res.BytesFromRegistry)
	}
	for _, ms := range p.topo {
		r := &e.msRes[ms]
		res.Microservices = append(res.Microservices, *r)
		res.TotalEnergy += r.TotalEnergy()
	}
	for d, name := range p.devNames {
		res.EnergyByDevice[name] = e.devEnergy[d]
	}
	for r, name := range p.regNames {
		if e.regUsed[r] {
			res.BytesFromRegistry[name] = e.regBytes[r]
		}
	}
	return res, nil
}

// grow helpers: reslice within capacity, reallocate otherwise. Zeroing is
// the caller's job where run-spanning state requires it.

func growInt32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growUints(s []uint64, n int) []uint64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]uint64, n)
}

func growJoules(s []units.Joules, n int) []units.Joules {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]units.Joules, n)
}

func growBytes(s []units.Bytes, n int) []units.Bytes {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]units.Bytes, n)
}

func growBools(s []bool, n int) []bool {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]bool, n)
}

func growPulls(s []execPull, n int) []execPull {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]execPull, n)
}

func growResults(s []MicroserviceResult, n int) []MicroserviceResult {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]MicroserviceResult, n)
}
