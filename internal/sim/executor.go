package sim

import (
	"fmt"
	"hash/fnv"
	"sort"

	"deep/internal/dag"
	"deep/internal/energy"
	"deep/internal/units"
)

// Options tune one simulation run.
type Options struct {
	// Seed drives the deterministic measurement jitter; runs with equal
	// seeds are bit-identical.
	Seed int64
	// Jitter is the half-width of the multiplicative noise applied to each
	// phase duration (e.g. 0.02 → ±2 %), reproducing the min–max ranges the
	// paper reports over repeated measurements. Zero disables noise.
	Jitter float64
	// WarmCaches skips pre-run cache flushing, letting earlier deployments
	// on the same devices be reused.
	WarmCaches bool
}

// Run simulates the application under the placement on the cluster and
// returns per-microservice timing and energy. The execution model follows
// the paper: microservices advance stage by stage between synchronization
// barriers; within a stage each microservice deploys its image from its
// assigned registry (cache-aware, with fair sharing of a shared registry
// uplink), receives its input dataflows, and then executes; executions on
// one device are serialized (the paper's non-concurrent execution).
func Run(app *dag.App, cluster *Cluster, placement Placement, opts Options) (*Result, error) {
	if err := cluster.Validate(app, placement); err != nil {
		return nil, err
	}
	stages, err := app.Stages()
	if err != nil {
		return nil, err
	}
	if !opts.WarmCaches {
		for _, d := range cluster.Devices {
			d.Cache().Flush()
		}
	}

	meters := metersFor(cluster)
	jit := jitterer{seed: opts.Seed, width: opts.Jitter, app: app.Name}

	results := make(map[string]*MicroserviceResult, len(app.Microservices))
	finishOf := make(map[string]float64, len(app.Microservices)) // processing finish per ms
	deviceFree := make(map[string]float64)                       // per-device serialization horizon
	bytesFromRegistry := make(map[string]units.Bytes)

	barrier := 0.0
	for _, stage := range stages {
		// --- Deployment phase -------------------------------------------
		// Compute the cache-aware bytes each microservice must pull. Pulls
		// on one device are serialized (Docker deploys images sequentially
		// per host); pulls from a shared registry to several devices at
		// once divide its uplink capacity.
		type pull struct {
			ms      string
			reg     RegistryInfo
			devName string
			missing units.Bytes
			td      float64 // the pull's own transfer time (T_d)
			start   float64
			done    float64
		}
		order := append([]string(nil), stage...)
		sort.Strings(order)
		pulls := make(map[string]*pull, len(order))
		devsPulling := make(map[string]map[string]bool) // registry -> devices
		for _, name := range order {
			m := app.Microservice(name)
			a := placement[name]
			reg, _ := cluster.Registry(a.Registry)
			dev := cluster.Device(a.Device)
			var missing units.Bytes
			for _, layer := range cluster.LayersOf(m) {
				if !dev.Cache().Has(layer.Digest) {
					missing += layer.Size
					dev.Cache().Put(layer.Digest, layer.Size)
				}
			}
			pulls[name] = &pull{ms: name, reg: reg, devName: a.Device, missing: missing}
			if missing > 0 {
				if devsPulling[reg.Name] == nil {
					devsPulling[reg.Name] = make(map[string]bool)
				}
				devsPulling[reg.Name][a.Device] = true
			}
		}
		pullEnd := make(map[string]float64) // device -> last pull finish
		for _, name := range order {
			p := pulls[name]
			if p.missing == 0 {
				p.start, p.done, p.td = barrier, barrier, 0
				continue
			}
			link, ok := cluster.Topology.LinkBetween(p.reg.Node, p.devName)
			if !ok {
				return nil, fmt.Errorf("sim: no route from registry %s to device %s", p.reg.Name, p.devName)
			}
			bw := link.BW
			if p.reg.Shared {
				if n := len(devsPulling[p.reg.Name]); n > 1 {
					bw = link.BW / units.Bandwidth(n)
				}
			}
			p.td = (link.RTT + bw.Seconds(p.missing)) * jit.factor(name, "deploy")
			p.start = barrier
			if pullEnd[p.devName] > p.start {
				p.start = pullEnd[p.devName]
			}
			p.done = p.start + p.td
			pullEnd[p.devName] = p.done
		}

		// --- Transfer + processing phases -------------------------------
		for _, name := range order {
			m := app.Microservice(name)
			a := placement[name]
			dev := cluster.Device(a.Device)
			p := pulls[name]
			td := p.td

			// Input dataflows arrive from the devices hosting the upstage
			// microservices; external inputs arrive from the source node.
			tc := 0.0
			for _, e := range app.Inputs(name) {
				fromDev := placement[e.From].Device
				tc += cluster.Topology.TransferTime(fromDev, a.Device, e.Size)
			}
			if m.ExternalInput > 0 && cluster.SourceNode != "" {
				tc += cluster.Topology.TransferTime(cluster.SourceNode, a.Device, m.ExternalInput)
			}
			tc *= jit.factor(name, "transfer")

			tp := dev.ProcessingTime(m.Req.CPU) * jit.factor(name, "process")

			readyAt := p.done + tc
			startProc := readyAt
			if deviceFree[a.Device] > startProc {
				startProc = deviceFree[a.Device]
			}
			wait := (p.start - barrier) + (startProc - readyAt)
			finish := startProc + tp
			deviceFree[a.Device] = finish
			finishOf[name] = finish

			// Energy accounting: phases priced at the device's per-state
			// draw; the static (idle) share over the CT window is split out
			// so EC = E_a + E_s as in the paper.
			meter := meters[a.Device]
			idleW := dev.Power.Power(energy.Idle, "")
			pullW := dev.Power.Power(energy.Pulling, name)
			recvW := dev.Power.Power(energy.Receiving, name)
			procW := dev.Power.Power(energy.Processing, name)
			if _, err := meter.Record(p.start, td, energy.Pulling, name); err != nil {
				return nil, err
			}
			if _, err := meter.Record(p.done, tc, energy.Receiving, name); err != nil {
				return nil, err
			}
			if _, err := meter.Record(startProc, tp, energy.Processing, name); err != nil {
				return nil, err
			}
			ct := td + tc + tp
			active := (pullW - idleW).Over(td) + (recvW - idleW).Over(tc) + (procW - idleW).Over(tp)
			static := idleW.Over(ct)

			bytesFromRegistry[a.Registry] += p.missing
			results[name] = &MicroserviceResult{
				Name: name, Device: a.Device, Registry: a.Registry,
				DeployTime: td, TransferTime: tc, ProcessTime: tp,
				WaitTime: wait, CT: ct,
				Start: barrier, Finish: finish,
				Energy: active, StaticShare: static,
				BytesPulled: p.missing, CacheHit: p.missing == 0,
			}
		}

		// Barrier: the next stage starts once every microservice of this
		// stage has finished.
		for _, name := range stage {
			if finishOf[name] > barrier {
				barrier = finishOf[name]
			}
		}
	}

	res := &Result{
		App:               app.Name,
		Makespan:          barrier,
		EnergyByDevice:    make(map[string]units.Joules),
		BytesFromRegistry: bytesFromRegistry,
	}
	order, _ := app.TopoOrder()
	for _, name := range order {
		r := results[name]
		res.Microservices = append(res.Microservices, *r)
		res.TotalEnergy += r.TotalEnergy()
	}
	for name, meter := range meters {
		res.EnergyByDevice[name] = meter.Total()
	}
	return res, nil
}

// jitterer derives deterministic multiplicative noise per (microservice,
// phase) from the run seed.
type jitterer struct {
	seed  int64
	width float64
	app   string
}

// factor returns a value in [1-width, 1+width], stable for a given key.
func (j jitterer) factor(ms, phase string) float64 {
	if j.width == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s", j.seed, j.app, ms, phase)
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0 // uniform in [0,1)
	return 1 - j.width + 2*j.width*u
}
