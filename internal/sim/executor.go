package sim

import (
	"strconv"

	"deep/internal/dag"
)

// Options tune one simulation run.
type Options struct {
	// Seed drives the deterministic measurement jitter; runs with equal
	// seeds are bit-identical.
	Seed int64
	// Jitter is the half-width of the multiplicative noise applied to each
	// phase duration (e.g. 0.02 → ±2 %), reproducing the min–max ranges the
	// paper reports over repeated measurements. Zero disables noise.
	Jitter float64
	// WarmCaches skips pre-run cache flushing, letting earlier deployments
	// on the same devices be reused.
	WarmCaches bool
}

// Run simulates the application under the placement on the cluster and
// returns per-microservice timing and energy. The execution model follows
// the paper: microservices advance stage by stage between synchronization
// barriers; within a stage each microservice deploys its image from its
// assigned registry (cache-aware, with fair sharing of a shared registry
// uplink), receives its input dataflows, and then executes; executions on
// one device are serialized (the paper's non-concurrent execution).
//
// Run is a thin wrapper over the compiled path — CompilePlan once, then a
// fresh Exec — and produces bit-identical results to the historical
// map-based executor (pinned by the equivalence corpus). Callers that
// simulate the same (app, cluster) repeatedly should hold the Plan and a
// reusable Exec themselves: the compiled warm path allocates nothing.
func Run(app *dag.App, cluster *Cluster, placement Placement, opts Options) (*Result, error) {
	return NewExec().Run(CompilePlan(app, cluster), placement, opts)
}

// FNV-1a, the hash the jitterer has always keyed its noise from. The
// helpers below fold bytes into a running state without the hash.Hash
// allocation and fmt formatting of the original implementation; the byte
// stream — "%d|%s|%s|%s" of (seed, app, microservice, phase) — is
// unchanged, so every factor is bit-identical to the historical ones.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvAdd folds bytes into an FNV-1a state.
func fnvAdd(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// fnvAddString folds a string into an FNV-1a state.
func fnvAddString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// jitterFactor maps a hashed key to a value in [1-width, 1+width]. seedH is
// the FNV-1a state after the seed's decimal digits; tag is the precomputed
// "|app|ms|phase" suffix.
func jitterFactor(seedH uint64, tag []byte, width float64) float64 {
	u := float64(fnvAdd(seedH, tag)%1_000_003) / 1_000_003.0 // uniform in [0,1)
	return 1 - width + 2*width*u
}

// jitterer derives deterministic multiplicative noise per (microservice,
// phase) from the run seed. The zero width disables it.
type jitterer struct {
	seed  int64
	width float64
	app   string
}

// factor returns a value in [1-width, 1+width], stable for a given key.
// It allocates nothing.
func (j jitterer) factor(ms, phase string) float64 {
	if j.width == 0 {
		return 1
	}
	var digits [20]byte
	h := fnvAdd(fnvOffset64, strconv.AppendInt(digits[:0], j.seed, 10))
	h = fnvAddString(h, "|")
	h = fnvAddString(h, j.app)
	h = fnvAddString(h, "|")
	h = fnvAddString(h, ms)
	h = fnvAddString(h, "|")
	h = fnvAddString(h, phase)
	u := float64(h%1_000_003) / 1_000_003.0 // uniform in [0,1)
	return 1 - j.width + 2*j.width*u
}
