package sim

import (
	"fmt"

	"deep/internal/appgraph"
	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/topo"
	"deep/internal/units"
)

// Plan is the compiled form of one (application, cluster) pair for the
// executor: integer-indexed barrier stages in canonical order, pre-resolved
// registry→device and inter-device routes, interned image layers, per-phase
// power draws, and precomputed jitter hash tags. Compiling once and
// executing many times removes every string-keyed map, sort, and fmt call
// from the simulation hot path; an Exec replays a Plan under any placement
// with zero steady-state allocations.
//
// The cluster-side tables (name tables, link tables, idle power) live in a
// topo.ClusterTable; CompilePlanOn layers the application-side pass over a
// caller-supplied table so N applications on one cluster share one topology
// scan, and CompilePlan compiles a private table on the fly.
//
// A Plan is immutable after CompilePlan and safe for concurrent Exec.Run
// calls on separate Execs. It snapshots the cluster's topology, power
// models, and layer decomposition; mutating the cluster afterwards is not
// supported (the same contract as costmodel.Model). The paired Exec still
// drives the cluster's real per-device layer caches, so warm-cache state
// keeps flowing between compiled runs, legacy sim.Run calls, and any other
// observer of device.LayerCache.
type Plan struct {
	app     *dag.App
	cluster *Cluster
	tab     *topo.ClusterTable

	// Application-side name table; ids are positions, sorted and compacted
	// so ascending id order is ascending name order (the executor's
	// canonical stage order). Device and registry tables are the cluster
	// table's, referenced here for the executor's hot path.
	msNames  []string
	devNames []string
	regNames []string
	msIndex  map[string]int32
	devIndex map[string]int32
	regIndex map[string]int32

	// ms[i] is the microservice with id i (first occurrence on duplicate
	// names, matching the name-table compaction); devices[d] the device
	// handle interned from the plan's own cluster, so an Exec drives this
	// cluster's layer caches even when the table was compiled from a
	// digest-identical sibling.
	ms      []*dag.Microservice
	devices []*device.Device

	regShared []bool

	// Cluster-side dense link tables, shared with the topo.ClusterTable:
	// regLink[r*numDev+d], devLink[f*numDev+t] (loopback when f == t),
	// srcLink[d] from the external-input source node.
	regLink   []topo.Link
	devLink   []topo.Link
	srcLink   []topo.Link
	hasSource bool

	// feasible[i*numDev+d] reports device d can run microservice i
	// (architecture + static resources), precomputed so per-run placement
	// validation is allocation-free.
	feasible []bool

	layers   [][]Layer         // per ms: interned image layers (LayersOf order)
	inputs   [][]appgraph.Edge // per ms: incoming dataflows in DAG order
	extInput []units.Bytes     // per ms

	// Per-(microservice, device) tables, indexed ms*numDev+dev. The act*
	// tables hold the draw above idle, precomputed so the executor prices
	// active energy without per-run subtractions.
	tp       []float64
	pullW    []units.Watts
	recvW    []units.Watts
	procW    []units.Watts
	actPullW []units.Watts
	actRecvW []units.Watts
	actProcW []units.Watts
	idleW    []units.Watts // per device (the cluster table's)

	// Barrier stages (each ascending = lexicographic name order, the order
	// the legacy executor sorted into per call) and topological order, with
	// the structural validation errors captured at compile time.
	stages    [][]int32
	topo      []int32
	appErr    error
	stagesErr error

	// jitterTag[phase][ms] is the byte suffix "|app|ms|phase" the jitterer
	// hashes after the run seed; precomputing it makes the per-phase factor
	// a pure FNV-1a continuation.
	jitterTag [3][][]byte
}

// Jitter phase indices into Plan.jitterTag (the app table's layout).
const (
	phaseDeploy   = appgraph.PhaseDeploy
	phaseTransfer = appgraph.PhaseTransfer
	phaseProcess  = appgraph.PhaseProcess
)

// CompileClusterTable compiles the cluster-side substrate shared by this
// package's CompilePlanOn and costmodel.CompileOn: name tables, interned
// devices, dense link tables, and idle power. Compile it once per cluster
// (the fleet caches one per cluster digest) and feed it to every
// application-side compile against that cluster.
func CompileClusterTable(cluster *Cluster) *topo.ClusterTable {
	regs := make([]topo.Registry, len(cluster.Registries))
	for i, r := range cluster.Registries {
		regs[i] = topo.Registry{Name: r.Name, Node: r.Node, Shared: r.Shared}
	}
	return topo.Compile(topo.View{
		Devices:    cluster.Devices,
		Registries: regs,
		Topology:   cluster.Topology,
		SourceNode: cluster.SourceNode,
	})
}

// CompilePlan builds the compiled executor plan, compiling a private cluster
// table on the fly. It never fails: structural problems in the DAG (cycles,
// disconnection) are captured and surface from Exec.Run exactly where the
// legacy executor reported them. Callers compiling several applications
// against one cluster should CompileClusterTable once and use CompilePlanOn.
func CompilePlan(app *dag.App, cluster *Cluster) *Plan {
	return CompilePlanOn(app, cluster, CompileClusterTable(cluster))
}

// CompilePlanOn builds the plan's application-side pass over a shared
// cluster table, compiling a private app table on the fly. Callers that hold
// both substrates (the fleet, the fused shape compile) should use
// CompilePlanOnTables.
func CompilePlanOn(app *dag.App, cluster *Cluster, tab *topo.ClusterTable) *Plan {
	return CompilePlanOnTables(appgraph.Compile(app), cluster, tab)
}

// CompilePlanOnTables is the real compile: a thin per-(microservice, device)
// pricing pass over the app-side substrate (at) and the cluster-side
// substrate (tab). Everything app-only — name table, edge rows, stages,
// topological order, validation errors, jitter tags — is referenced from the
// app table; everything cluster-only from the cluster table; only the cross
// product is computed here. tab must describe cluster's shape (same devices,
// registries, topology routes — the fleet guarantees this by keying tables
// on the cluster digest); the plan's device handles are re-interned from
// cluster itself, so a table compiled from a digest-identical sibling
// cluster never leaks that sibling's layer caches into this plan's runs.
func CompilePlanOnTables(at *appgraph.AppTable, cluster *Cluster, tab *topo.ClusterTable) *Plan {
	app := at.App()
	p := &Plan{app: app, cluster: cluster, tab: tab}

	p.msNames = at.MSNames()
	p.msIndex = at.MSIndex()
	p.devNames = tab.DevNames()
	p.devIndex = tab.DevIndex()
	p.regNames = tab.RegNames()
	p.regIndex = tab.RegIndex()

	nm, nd := len(p.msNames), len(p.devNames)

	p.ms = at.Microservices()
	// Re-intern device handles from the plan's own cluster (first
	// occurrence wins, matching Cluster.Device). A name the cluster cannot
	// resolve falls back to the table's handle — only reachable when the
	// caller pairs a table with a differently-shaped cluster, which the
	// digest keying rules out.
	p.devices = make([]*device.Device, nd)
	for i, name := range p.devNames {
		if d := cluster.Device(name); d != nil {
			p.devices[i] = d
		} else {
			p.devices[i] = tab.Device(int32(i))
		}
	}

	p.regShared = tab.RegShared()
	p.regLink = tab.RegLinks()
	p.devLink = tab.DevLinks()
	p.srcLink = tab.SrcLinks()
	p.hasSource = tab.HasSource()
	p.idleW = tab.IdleW()

	p.inputs = at.Inputs()
	p.extInput = at.ExtInputs()
	p.jitterTag = at.PhaseTags()

	p.feasible = make([]bool, nm*nd)
	p.layers = make([][]Layer, nm)
	p.tp = make([]float64, nm*nd)
	p.pullW = make([]units.Watts, nm*nd)
	p.recvW = make([]units.Watts, nm*nd)
	p.procW = make([]units.Watts, nm*nd)
	p.actPullW = make([]units.Watts, nm*nd)
	p.actRecvW = make([]units.Watts, nm*nd)
	p.actProcW = make([]units.Watts, nm*nd)

	for i := 0; i < nm; i++ {
		m := p.ms[i]
		p.layers[i] = cluster.LayersOf(m)
		for d := 0; d < nd; d++ {
			dev := p.devices[d]
			base := i*nd + d
			p.feasible[base] = dev.CanRun(m) == nil
			p.tp[base] = dev.ProcessingTime(m.Req.CPU)
			p.pullW[base] = dev.Power.Power(energy.Pulling, m.Name)
			p.recvW[base] = dev.Power.Power(energy.Receiving, m.Name)
			p.procW[base] = dev.Power.Power(energy.Processing, m.Name)
			p.actPullW[base] = p.pullW[base] - p.idleW[d]
			p.actRecvW[base] = p.recvW[base] - p.idleW[d]
			p.actProcW[base] = p.procW[base] - p.idleW[d]
		}
	}

	// Structural validation was captured when the app table compiled, so
	// runs never re-walk the DAG. The errors surface from Exec.Run in the
	// same order the legacy executor reported them: app validation,
	// placement checks, then stages.
	p.appErr = at.ValidateErr()
	p.stages, p.stagesErr = at.Stages()
	if order, err := at.Topo(); err == nil {
		p.topo = order
	}
	return p
}

// Rebind returns a view of the plan that executes against an equivalent
// cluster: same device, registry, topology, and layer shape (callers
// sharing plans across workers guarantee this by keying them on a cluster
// digest). The immutable compiled tables are shared between the views; only
// the device handles — and with them the layer caches the Exec drives and
// flushes — are swapped, so one fleet-wide plan can execute against each
// worker's private cache state without workers mutating one another's
// clusters. Returns false when the cluster does not resolve every device
// name (the shapes differ; compile a fresh plan instead).
func (p *Plan) Rebind(cluster *Cluster) (*Plan, bool) {
	if cluster == p.cluster {
		return p, true
	}
	devices := make([]*device.Device, len(p.devNames))
	for i, name := range p.devNames {
		d := cluster.Device(name)
		if d == nil {
			return nil, false
		}
		devices[i] = d
	}
	q := *p
	q.cluster = cluster
	q.devices = devices
	return &q, true
}

// NumMicroservices returns the number of compiled microservices.
func (p *Plan) NumMicroservices() int { return len(p.msNames) }

// NumDevices returns the number of compiled devices.
func (p *Plan) NumDevices() int { return len(p.devNames) }

// NumRegistries returns the number of compiled registries.
func (p *Plan) NumRegistries() int { return len(p.regNames) }

// App returns the application the plan was compiled from.
func (p *Plan) App() *dag.App { return p.app }

// Cluster returns the cluster the plan was compiled against.
func (p *Plan) Cluster() *Cluster { return p.cluster }

// Table returns the cluster-side table the plan was compiled on.
func (p *Plan) Table() *topo.ClusterTable { return p.tab }

// MSRows exposes the plan's per-(microservice, device) base tables —
// feasibility, processing time, and the three phase power draws, all
// indexed ms*NumDevices()+dev — so the fused cost-model compile can layer
// the scheduler's option tables over the same rows instead of re-pricing
// the identical pure-function lookups. Shared slices; read-only.
func (p *Plan) MSRows() (feasible []bool, tp []float64, pullW, recvW, procW []units.Watts) {
	return p.feasible, p.tp, p.pullW, p.recvW, p.procW
}

// validate checks the placement the way the legacy executor's
// cluster.Validate did — same walk order, same errors — but against the
// precomputed feasibility table, so a valid placement validates with zero
// allocations.
func (p *Plan) validate(placement Placement) error {
	if p.appErr != nil {
		return p.appErr
	}
	nd := len(p.devNames)
	for _, m := range p.app.Microservices {
		a, ok := placement[m.Name]
		if !ok {
			return fmt.Errorf("sim: placement missing microservice %q", m.Name)
		}
		d, okD := p.devIndex[a.Device]
		if !okD {
			return fmt.Errorf("sim: placement of %q names unknown device %q", m.Name, a.Device)
		}
		if _, okR := p.regIndex[a.Registry]; !okR {
			return fmt.Errorf("sim: placement of %q names unknown registry %q", m.Name, a.Registry)
		}
		if i, okM := p.msIndex[m.Name]; okM && !p.feasible[int(i)*nd+int(d)] {
			return fmt.Errorf("sim: infeasible placement: %w", p.devices[d].CanRun(m))
		}
	}
	return nil
}

// validateIndexed is validate against a placement already in compiled
// parallel-slice form (names sorted ascending, assigns parallel): same walk
// order, same errors, but lookups are binary searches instead of map hits,
// so no placement map ever has to exist.
func (p *Plan) validateIndexed(names []string, assigns []Assignment) error {
	if p.appErr != nil {
		return p.appErr
	}
	nd := len(p.devNames)
	for _, m := range p.app.Microservices {
		k := searchSortedNames(names, m.Name)
		if k < 0 {
			return fmt.Errorf("sim: placement missing microservice %q", m.Name)
		}
		a := assigns[k]
		d, okD := p.devIndex[a.Device]
		if !okD {
			return fmt.Errorf("sim: placement of %q names unknown device %q", m.Name, a.Device)
		}
		if _, okR := p.regIndex[a.Registry]; !okR {
			return fmt.Errorf("sim: placement of %q names unknown registry %q", m.Name, a.Registry)
		}
		if i, okM := p.msIndex[m.Name]; okM && !p.feasible[int(i)*nd+int(d)] {
			return fmt.Errorf("sim: infeasible placement: %w", p.devices[d].CanRun(m))
		}
	}
	return nil
}

// searchSortedNames binary-searches a sorted name slice, returning the index
// of name or -1. Hand-rolled so the hot path pays no closure allocation.
func searchSortedNames(names []string, name string) int {
	lo, hi := 0, len(names)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if names[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(names) && names[lo] == name {
		return lo
	}
	return -1
}
