package sim

import (
	"fmt"
	"sort"
	"sync/atomic"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/netsim"
	"deep/internal/units"
)

// Assignment places one microservice: which device executes it and which
// registry its image is deployed from — the paper's (sched(m_i),
// regist(m_i)) pair.
type Assignment struct {
	Device   string
	Registry string
}

// Placement maps every microservice of an application to its assignment.
type Placement map[string]Assignment

// Clone returns a copy of the placement.
func (p Placement) Clone() Placement {
	c := make(Placement, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// RegistryInfo describes one image registry available to the cluster.
type RegistryInfo struct {
	Name string // e.g. "hub", "regional"
	Node string // topology node the registry is reachable at
	// Shared marks pulls from this registry as sharing its uplink capacity
	// (set for the regional registry's single server).
	Shared bool
}

// Layer is one content-addressed image layer.
type Layer struct {
	Digest string
	Size   units.Bytes
}

// Cluster bundles the infrastructure a simulation runs against.
type Cluster struct {
	Devices    []*device.Device
	Registries []RegistryInfo
	Topology   *netsim.Topology
	// SourceNode is the topology node external inputs (camera feeds, S3
	// datasets) are delivered from. Empty disables external inputs.
	SourceNode string
	// Layers optionally decomposes each microservice's image into layers
	// (keyed by microservice name). Microservices without an entry are
	// treated as a single layer covering the whole image. Layer digests
	// shared between images enable cache reuse.
	Layers map[string][]Layer

	// idx interns device and registry names to positions, built lazily on
	// first lookup so Device and Registry are O(1) on the scheduling and
	// simulation hot paths. It is rebuilt when Devices or Registries
	// change length, so append-then-lookup construction patterns stay
	// correct; replacing elements in place after the first lookup is not
	// supported.
	idx atomic.Pointer[clusterIndex]
}

// clusterIndex is the interned name→position view of a cluster. Duplicate
// names keep their first occurrence, matching the former linear scans.
// nDev/nReg record the slice lengths the index was built from, so the
// staleness check stays correct when duplicates shrink the maps.
type clusterIndex struct {
	device   map[string]*device.Device
	registry map[string]int
	nDev     int
	nReg     int
}

func (c *Cluster) index() *clusterIndex {
	idx := c.idx.Load()
	if idx != nil && idx.nDev == len(c.Devices) && idx.nReg == len(c.Registries) {
		return idx
	}
	idx = &clusterIndex{
		device:   make(map[string]*device.Device, len(c.Devices)),
		registry: make(map[string]int, len(c.Registries)),
		nDev:     len(c.Devices),
		nReg:     len(c.Registries),
	}
	for _, d := range c.Devices {
		if _, dup := idx.device[d.Name]; !dup {
			idx.device[d.Name] = d
		}
	}
	for i, r := range c.Registries {
		if _, dup := idx.registry[r.Name]; !dup {
			idx.registry[r.Name] = i
		}
	}
	c.idx.Store(idx)
	return idx
}

// Device returns the named device, or nil.
func (c *Cluster) Device(name string) *device.Device {
	return c.index().device[name]
}

// Registry returns the named registry and whether it exists.
func (c *Cluster) Registry(name string) (RegistryInfo, bool) {
	i, ok := c.index().registry[name]
	if !ok {
		return RegistryInfo{}, false
	}
	return c.Registries[i], true
}

// LayersOf returns the image layers of a microservice, defaulting to a
// single synthetic layer spanning the image.
func (c *Cluster) LayersOf(m *dag.Microservice) []Layer {
	if ls, ok := c.Layers[m.Name]; ok {
		return ls
	}
	return []Layer{{Digest: "sha256:" + m.Name, Size: m.ImageSize}}
}

// Validate checks that the placement is complete and feasible for the app on
// this cluster.
func (c *Cluster) Validate(app *dag.App, p Placement) error {
	if err := app.Validate(); err != nil {
		return err
	}
	for _, m := range app.Microservices {
		a, ok := p[m.Name]
		if !ok {
			return fmt.Errorf("sim: placement missing microservice %q", m.Name)
		}
		d := c.Device(a.Device)
		if d == nil {
			return fmt.Errorf("sim: placement of %q names unknown device %q", m.Name, a.Device)
		}
		if _, ok := c.Registry(a.Registry); !ok {
			return fmt.Errorf("sim: placement of %q names unknown registry %q", m.Name, a.Registry)
		}
		if err := d.CanRun(m); err != nil {
			return fmt.Errorf("sim: infeasible placement: %w", err)
		}
	}
	return nil
}

// MicroserviceResult is the simulated outcome for one microservice: the
// paper's CT decomposition and energy.
type MicroserviceResult struct {
	Name     string
	Device   string
	Registry string

	DeployTime   float64 // T_d: image pull (0 on a warm cache)
	TransferTime float64 // T_c: input dataflow transmission
	ProcessTime  float64 // T_p: execution
	WaitTime     float64 // serialization delay behind other microservices
	CT           float64 // T_d + T_c + T_p (the paper's completion time)

	Start  float64 // virtual time the microservice's pipeline began
	Finish float64 // virtual time processing completed

	Energy      units.Joules // E_a: active energy over the CT phases
	StaticShare units.Joules // E_s: static-energy share attributed to CT

	BytesPulled units.Bytes // actual bytes downloaded (cache-aware)
	CacheHit    bool        // true when every layer was already cached
}

// TotalEnergy returns Ea + Es for the microservice.
func (r MicroserviceResult) TotalEnergy() units.Joules { return r.Energy + r.StaticShare }

// Result is the outcome of simulating one application run.
type Result struct {
	App           string
	Microservices []MicroserviceResult
	Makespan      float64

	// TotalEnergy is the paper's EC_total: the sum over microservices of
	// active plus attributed static energy.
	TotalEnergy units.Joules

	// EnergyByDevice reports each device's metered energy.
	EnergyByDevice map[string]units.Joules

	// BytesFromRegistry aggregates downloaded bytes per registry.
	BytesFromRegistry map[string]units.Bytes
}

// Clone returns a deep copy of the result. The compiled executor reuses its
// Result buffer across runs; callers that hand a result to another goroutine
// or keep it past the next run clone it first.
func (r *Result) Clone() *Result {
	c := *r
	c.Microservices = append([]MicroserviceResult(nil), r.Microservices...)
	if r.EnergyByDevice != nil {
		c.EnergyByDevice = make(map[string]units.Joules, len(r.EnergyByDevice))
		for k, v := range r.EnergyByDevice {
			c.EnergyByDevice[k] = v
		}
	}
	if r.BytesFromRegistry != nil {
		c.BytesFromRegistry = make(map[string]units.Bytes, len(r.BytesFromRegistry))
		for k, v := range r.BytesFromRegistry {
			c.BytesFromRegistry[k] = v
		}
	}
	return &c
}

// CloneInto deep-copies the result into dst, reusing dst's slice and map
// capacity where possible. It is the allocation-free counterpart of Clone
// for callers that own a reusable Result buffer (the fleet's pooled response
// path): after the call dst compares reflect.DeepEqual to Clone's output,
// but a warm dst allocates nothing.
func (r *Result) CloneInto(dst *Result) {
	dst.App = r.App
	dst.Makespan = r.Makespan
	dst.TotalEnergy = r.TotalEnergy
	dst.Microservices = append(dst.Microservices[:0], r.Microservices...)
	if r.EnergyByDevice == nil {
		dst.EnergyByDevice = nil
	} else {
		if dst.EnergyByDevice == nil {
			dst.EnergyByDevice = make(map[string]units.Joules, len(r.EnergyByDevice))
		} else {
			clear(dst.EnergyByDevice)
		}
		for k, v := range r.EnergyByDevice {
			dst.EnergyByDevice[k] = v
		}
	}
	if r.BytesFromRegistry == nil {
		dst.BytesFromRegistry = nil
	} else {
		if dst.BytesFromRegistry == nil {
			dst.BytesFromRegistry = make(map[string]units.Bytes, len(r.BytesFromRegistry))
		} else {
			clear(dst.BytesFromRegistry)
		}
		for k, v := range r.BytesFromRegistry {
			dst.BytesFromRegistry[k] = v
		}
	}
}

// ByName returns the result row for a microservice and whether it exists.
func (r *Result) ByName(name string) (MicroserviceResult, bool) {
	for _, m := range r.Microservices {
		if m.Name == name {
			return m, true
		}
	}
	return MicroserviceResult{}, false
}

// Sorted returns the microservice results ordered by name.
func (r *Result) Sorted() []MicroserviceResult {
	out := make([]MicroserviceResult, len(r.Microservices))
	copy(out, r.Microservices)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
