package sim_test

// Equivalence corpus for the compiled simulator: legacyRun is a direct port
// of the historical map-based executor (string-keyed maps, per-stage sorts,
// energy.Meter accounting, fmt-hashed jitter), kept here as the reference
// implementation. Every scenario — case-study and synthetic apps, scaled
// clusters, layered images with shared digests, shared-registry contention,
// jitter on and off, cold and warm cache sequences — must produce
// bit-identical Results (exact float equality, not tolerances) from the
// compiled Plan/Exec path, from the sim.Run wrapper, and from a reused Exec.

import (
	"fmt"
	"hash/fnv"
	"reflect"
	"sort"
	"testing"

	"deep/internal/dag"
	"deep/internal/energy"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

// legacyJitterer is the historical fmt.Fprintf-based jitter hash.
type legacyJitterer struct {
	seed  int64
	width float64
	app   string
}

func (j legacyJitterer) factor(ms, phase string) float64 {
	if j.width == 0 {
		return 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s", j.seed, j.app, ms, phase)
	u := float64(h.Sum64()%1_000_003) / 1_000_003.0
	return 1 - j.width + 2*j.width*u
}

// legacyRun is the pre-compilation executor, ported verbatim.
func legacyRun(app *dag.App, cluster *sim.Cluster, placement sim.Placement, opts sim.Options) (*sim.Result, error) {
	if err := cluster.Validate(app, placement); err != nil {
		return nil, err
	}
	stages, err := app.Stages()
	if err != nil {
		return nil, err
	}
	if !opts.WarmCaches {
		for _, d := range cluster.Devices {
			d.Cache().Flush()
		}
	}

	meters := make(map[string]*energy.Meter, len(cluster.Devices))
	for _, d := range cluster.Devices {
		meters[d.Name] = energy.NewMeter(d.Power)
	}
	jit := legacyJitterer{seed: opts.Seed, width: opts.Jitter, app: app.Name}

	results := make(map[string]*sim.MicroserviceResult, len(app.Microservices))
	finishOf := make(map[string]float64, len(app.Microservices))
	deviceFree := make(map[string]float64)
	bytesFromRegistry := make(map[string]units.Bytes)

	barrier := 0.0
	for _, stage := range stages {
		type pull struct {
			ms      string
			reg     sim.RegistryInfo
			devName string
			missing units.Bytes
			td      float64
			start   float64
			done    float64
		}
		order := append([]string(nil), stage...)
		sort.Strings(order)
		pulls := make(map[string]*pull, len(order))
		devsPulling := make(map[string]map[string]bool)
		for _, name := range order {
			m := app.Microservice(name)
			a := placement[name]
			reg, _ := cluster.Registry(a.Registry)
			dev := cluster.Device(a.Device)
			var missing units.Bytes
			for _, layer := range cluster.LayersOf(m) {
				if !dev.Cache().Has(layer.Digest) {
					missing += layer.Size
					dev.Cache().Put(layer.Digest, layer.Size)
				}
			}
			pulls[name] = &pull{ms: name, reg: reg, devName: a.Device, missing: missing}
			if missing > 0 {
				if devsPulling[reg.Name] == nil {
					devsPulling[reg.Name] = make(map[string]bool)
				}
				devsPulling[reg.Name][a.Device] = true
			}
		}
		pullEnd := make(map[string]float64)
		for _, name := range order {
			p := pulls[name]
			if p.missing == 0 {
				p.start, p.done, p.td = barrier, barrier, 0
				continue
			}
			link, ok := cluster.Topology.LinkBetween(p.reg.Node, p.devName)
			if !ok {
				return nil, fmt.Errorf("sim: no route from registry %s to device %s", p.reg.Name, p.devName)
			}
			bw := link.BW
			if p.reg.Shared {
				if n := len(devsPulling[p.reg.Name]); n > 1 {
					bw = link.BW / units.Bandwidth(n)
				}
			}
			p.td = (link.RTT + bw.Seconds(p.missing)) * jit.factor(name, "deploy")
			p.start = barrier
			if pullEnd[p.devName] > p.start {
				p.start = pullEnd[p.devName]
			}
			p.done = p.start + p.td
			pullEnd[p.devName] = p.done
		}

		for _, name := range order {
			m := app.Microservice(name)
			a := placement[name]
			dev := cluster.Device(a.Device)
			p := pulls[name]
			td := p.td

			tc := 0.0
			for _, e := range app.Inputs(name) {
				fromDev := placement[e.From].Device
				tc += cluster.Topology.TransferTime(fromDev, a.Device, e.Size)
			}
			if m.ExternalInput > 0 && cluster.SourceNode != "" {
				tc += cluster.Topology.TransferTime(cluster.SourceNode, a.Device, m.ExternalInput)
			}
			tc *= jit.factor(name, "transfer")

			tp := dev.ProcessingTime(m.Req.CPU) * jit.factor(name, "process")

			readyAt := p.done + tc
			startProc := readyAt
			if deviceFree[a.Device] > startProc {
				startProc = deviceFree[a.Device]
			}
			wait := (p.start - barrier) + (startProc - readyAt)
			finish := startProc + tp
			deviceFree[a.Device] = finish
			finishOf[name] = finish

			meter := meters[a.Device]
			idleW := dev.Power.Power(energy.Idle, "")
			pullW := dev.Power.Power(energy.Pulling, name)
			recvW := dev.Power.Power(energy.Receiving, name)
			procW := dev.Power.Power(energy.Processing, name)
			if _, err := meter.Record(p.start, td, energy.Pulling, name); err != nil {
				return nil, err
			}
			if _, err := meter.Record(p.done, tc, energy.Receiving, name); err != nil {
				return nil, err
			}
			if _, err := meter.Record(startProc, tp, energy.Processing, name); err != nil {
				return nil, err
			}
			ct := td + tc + tp
			active := (pullW - idleW).Over(td) + (recvW - idleW).Over(tc) + (procW - idleW).Over(tp)
			static := idleW.Over(ct)

			bytesFromRegistry[a.Registry] += p.missing
			results[name] = &sim.MicroserviceResult{
				Name: name, Device: a.Device, Registry: a.Registry,
				DeployTime: td, TransferTime: tc, ProcessTime: tp,
				WaitTime: wait, CT: ct,
				Start: barrier, Finish: finish,
				Energy: active, StaticShare: static,
				BytesPulled: p.missing, CacheHit: p.missing == 0,
			}
		}

		for _, name := range stage {
			if finishOf[name] > barrier {
				barrier = finishOf[name]
			}
		}
	}

	res := &sim.Result{
		App:               app.Name,
		Makespan:          barrier,
		EnergyByDevice:    make(map[string]units.Joules),
		BytesFromRegistry: bytesFromRegistry,
	}
	order, _ := app.TopoOrder()
	for _, name := range order {
		r := results[name]
		res.Microservices = append(res.Microservices, *r)
		res.TotalEnergy += r.TotalEnergy()
	}
	for name, meter := range meters {
		res.EnergyByDevice[name] = meter.Total()
	}
	return res, nil
}

// corpusCase is one (app, cluster constructor, placement) scenario.
type corpusCase struct {
	name    string
	app     *dag.App
	cluster func() *sim.Cluster
	place   func(*dag.App, *sim.Cluster) (sim.Placement, error)
}

func deepPlace(app *dag.App, c *sim.Cluster) (sim.Placement, error) {
	return sched.NewDEEP().Schedule(app, c)
}

// layeredTestbed is the calibrated testbed with every case-study image
// decomposed into layers sharing a common base digest, exercising
// cache-aware pulls and cross-microservice layer reuse.
func layeredTestbed() *sim.Cluster {
	c := workload.Testbed()
	c.Layers = map[string][]sim.Layer{}
	for _, app := range workload.Apps() {
		for _, m := range app.Microservices {
			base := m.ImageSize / 3
			c.Layers[m.Name] = []sim.Layer{
				{Digest: "base-common", Size: base},
				{Digest: "top-" + m.Name, Size: m.ImageSize - base},
			}
		}
	}
	return c
}

func corpus(t *testing.T) []corpusCase {
	t.Helper()
	synth, err := workload.Generate(workload.DefaultGeneratorConfig(12, 42))
	if err != nil {
		t.Fatal(err)
	}
	wide := workload.DefaultGeneratorConfig(10, 7)
	wide.StageWidth = 4
	synthWide, err := workload.Generate(wide)
	if err != nil {
		t.Fatal(err)
	}
	return []corpusCase{
		{"video/testbed/paper", workload.VideoProcessing(), workload.Testbed,
			func(*dag.App, *sim.Cluster) (sim.Placement, error) { return workload.PaperPlacement("video"), nil }},
		{"text/testbed/paper", workload.TextProcessing(), workload.Testbed,
			func(*dag.App, *sim.Cluster) (sim.Placement, error) { return workload.PaperPlacement("text"), nil }},
		{"video/testbed/deep", workload.VideoProcessing(), workload.Testbed, deepPlace},
		{"text/layered/deep", workload.TextProcessing(), layeredTestbed, deepPlace},
		{"video/layered/deep", workload.VideoProcessing(), layeredTestbed, deepPlace},
		{"synthetic12/scaled5/deep", synth, func() *sim.Cluster { return workload.ScaledTestbed(5) }, deepPlace},
		{"synthetic10wide/scaled3/deep", synthWide, func() *sim.Cluster { return workload.ScaledTestbed(3) }, deepPlace},
	}
}

// requireIdentical fails unless the two results are bit-identical.
func requireIdentical(t *testing.T, label string, want, got *sim.Result) {
	t.Helper()
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: compiled result diverges from legacy\nlegacy:   %+v\ncompiled: %+v", label, want, got)
	}
}

// TestCompiledExecMatchesLegacy pins the compiled executor bit-identical to
// the legacy port across the corpus, for jitter off and on, over a
// cold-then-warm-then-warm cache sequence. Legacy and compiled runs drive
// separate but identically constructed clusters, since both mutate device
// layer caches.
func TestCompiledExecMatchesLegacy(t *testing.T) {
	for _, c := range corpus(t) {
		for _, jitter := range []float64{0, 0.03} {
			name := fmt.Sprintf("%s/jitter=%v", c.name, jitter)
			t.Run(name, func(t *testing.T) {
				legacyCluster := c.cluster()
				compiledCluster := c.cluster()
				placement, err := c.place(c.app, legacyCluster)
				if err != nil {
					t.Fatal(err)
				}
				plan := sim.CompilePlan(c.app, compiledCluster)
				exec := sim.NewExec()
				for run, opts := range []sim.Options{
					{Seed: 7, Jitter: jitter},
					{Seed: 7, Jitter: jitter, WarmCaches: true},
					{Seed: 11, Jitter: jitter, WarmCaches: true},
				} {
					want, err := legacyRun(c.app, legacyCluster, placement, opts)
					if err != nil {
						t.Fatal(err)
					}
					got, err := exec.Run(plan, placement, opts)
					if err != nil {
						t.Fatal(err)
					}
					requireIdentical(t, fmt.Sprintf("run %d", run), want, got)
				}
			})
		}
	}
}

// TestRunWrapperMatchesLegacy pins the sim.Run wrapper itself (fresh Plan
// and Exec per call) against the legacy port.
func TestRunWrapperMatchesLegacy(t *testing.T) {
	for _, c := range corpus(t) {
		t.Run(c.name, func(t *testing.T) {
			legacyCluster := c.cluster()
			wrapperCluster := c.cluster()
			placement, err := c.place(c.app, legacyCluster)
			if err != nil {
				t.Fatal(err)
			}
			opts := sim.Options{Seed: 3, Jitter: 0.02}
			want, err := legacyRun(c.app, legacyCluster, placement, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sim.Run(c.app, wrapperCluster, placement, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, c.name, want, got)
		})
	}
}

// TestExecSharedAcrossPlans reuses one Exec across different (app, cluster)
// shapes interleaved — the fleet worker's exact usage — and checks every
// run against a legacy run on a matching cluster.
func TestExecSharedAcrossPlans(t *testing.T) {
	cases := corpus(t)
	exec := sim.NewExec()

	type fixture struct {
		c             corpusCase
		legacyCluster *sim.Cluster
		plan          *sim.Plan
		placement     sim.Placement
	}
	var fixtures []fixture
	for _, c := range cases {
		lc := c.cluster()
		cc := c.cluster()
		placement, err := c.place(c.app, lc)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{c: c, legacyCluster: lc, plan: sim.CompilePlan(c.app, cc), placement: placement})
	}
	// Interleave: each round runs every fixture once, warm after round 0.
	for round := 0; round < 3; round++ {
		opts := sim.Options{Seed: int64(round), Jitter: 0.01, WarmCaches: round > 0}
		for _, f := range fixtures {
			want, err := legacyRun(f.c.app, f.legacyCluster, f.placement, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := exec.Run(f.plan, f.placement, opts)
			if err != nil {
				t.Fatal(err)
			}
			requireIdentical(t, fmt.Sprintf("%s round %d", f.c.name, round), want, got)
		}
	}
}

// TestExecResultReuseRequiresClone documents the Exec result-buffer
// contract: the next Run overwrites the previous result, and Clone detaches
// it.
func TestExecResultReuseRequiresClone(t *testing.T) {
	app := workload.TextProcessing()
	cluster := workload.Testbed()
	placement := workload.PaperPlacement("text")
	plan := sim.CompilePlan(app, cluster)
	exec := sim.NewExec()

	first, err := exec.Run(plan, placement, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := first.Clone()
	if _, err := exec.Run(plan, placement, sim.Options{WarmCaches: true}); err != nil {
		t.Fatal(err)
	}
	// The clone must be unaffected by the second (warm, hence different) run.
	want, err := legacyRun(app, workload.Testbed(), placement, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "clone", want, snapshot)
}
