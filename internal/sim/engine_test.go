package sim

import (
	"math/rand"
	"sort"
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func(*Engine) { got = append(got, at) })
	}
	end := e.Run()
	if end != 5 {
		t.Errorf("final clock = %v", end)
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("events out of order: %v", got)
	}
}

func TestEngineFIFOTies(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1, func(*Engine) { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken out of FIFO order: %v", got)
		}
	}
}

func TestEngineAfterAndCascade(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.After(1, func(en *Engine) {
		times = append(times, en.Now())
		en.After(2, func(en2 *Engine) {
			times = append(times, en2.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("cascade times = %v", times)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func(en *Engine) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for past scheduling")
			}
		}()
		en.Schedule(1, func(*Engine) {})
	})
	e.Run()
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine().After(-1, func(*Engine) {})
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func(*Engine) { fired = append(fired, at) })
	}
	e.RunUntil(2.5)
	if len(fired) != 2 {
		t.Errorf("fired %v, want first two", fired)
	}
	if e.Now() != 2.5 {
		t.Errorf("clock = %v, want 2.5", e.Now())
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d", e.Pending())
	}
	e.Run()
	if len(fired) != 4 {
		t.Errorf("remaining events did not run: %v", fired)
	}
}

func TestEngineMaxSteps(t *testing.T) {
	e := NewEngine()
	e.MaxSteps = 10
	var loop func(*Engine)
	loop = func(en *Engine) { en.After(1, loop) }
	e.After(0, loop)
	defer func() {
		if recover() == nil {
			t.Error("expected runaway-loop panic")
		}
	}()
	e.Run()
}

func TestEngineStepsCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(float64(i), func(*Engine) {})
	}
	e.Run()
	if e.Steps() != 7 {
		t.Errorf("steps = %d", e.Steps())
	}
}

func TestEngineRandomizedOrderProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		n := 100
		var got []float64
		for i := 0; i < n; i++ {
			at := rng.Float64() * 1000
			e.Schedule(at, func(en *Engine) { got = append(got, en.Now()) })
		}
		e.Run()
		if len(got) != n || !sort.Float64sAreSorted(got) {
			t.Fatalf("trial %d: out of order", trial)
		}
	}
}
