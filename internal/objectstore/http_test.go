package objectstore

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*Client, *MemStore) {
	t.Helper()
	store := NewMemStore(0)
	srv := httptest.NewServer(NewServer(store))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL, srv.Client()), store
}

func TestHTTPBucketLifecycle(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.MakeBucket("images"); err != nil {
		t.Fatal(err)
	}
	ok, err := c.BucketExists("images")
	if err != nil || !ok {
		t.Fatalf("exists = %v, %v", ok, err)
	}
	buckets, err := c.ListBuckets()
	if err != nil || len(buckets) != 1 || buckets[0] != "images" {
		t.Fatalf("buckets = %v, %v", buckets, err)
	}
	if err := c.MakeBucket("images"); err == nil {
		t.Error("duplicate bucket should error over HTTP")
	}
	if err := c.RemoveBucket("images"); err != nil {
		t.Fatal(err)
	}
	ok, _ = c.BucketExists("images")
	if ok {
		t.Error("bucket should be gone")
	}
}

func TestHTTPObjectRoundTrip(t *testing.T) {
	c, _ := newTestServer(t)
	if err := c.MakeBucket("registry"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("layer-data "), 1000)
	etag, err := c.PutObject("registry", "blobs/sha256/abc", payload, "application/octet-stream")
	if err != nil {
		t.Fatal(err)
	}
	if etag == "" {
		t.Error("empty etag")
	}
	data, info, err := c.GetObject("registry", "blobs/sha256/abc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("payload corrupted over HTTP")
	}
	if info.ETag != etag {
		t.Errorf("etag mismatch: %q vs %q", info.ETag, etag)
	}
	if info.ContentType != "application/octet-stream" {
		t.Errorf("content type = %q", info.ContentType)
	}
	stat, err := c.StatObject("registry", "blobs/sha256/abc")
	if err != nil {
		t.Fatal(err)
	}
	if stat.Size != int64(len(payload)) {
		t.Errorf("stat size = %d, want %d", stat.Size, len(payload))
	}
}

func TestHTTPListWithPrefix(t *testing.T) {
	c, _ := newTestServer(t)
	_ = c.MakeBucket("reg")
	for _, k := range []string{"blobs/a", "blobs/c", "manifests/m"} {
		if _, err := c.PutObject("reg", k, []byte("x"), ""); err != nil {
			t.Fatal(err)
		}
	}
	objs, err := c.ListObjects("reg", "blobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Key != "blobs/a" {
		t.Errorf("list = %+v", objs)
	}
	all, _ := c.ListObjects("reg", "")
	if len(all) != 3 {
		t.Errorf("all = %d", len(all))
	}
}

func TestHTTPErrors(t *testing.T) {
	c, _ := newTestServer(t)
	if _, _, err := c.GetObject("nobucket", "k"); err == nil || !strings.Contains(err.Error(), "NoSuchBucket") {
		t.Errorf("missing bucket error = %v", err)
	}
	_ = c.MakeBucket("bkt")
	if _, _, err := c.GetObject("bkt", "missing"); err == nil || !strings.Contains(err.Error(), "NoSuchKey") {
		t.Errorf("missing key error = %v", err)
	}
	if err := c.RemoveBucket("ghost"); err == nil {
		t.Error("removing ghost bucket should error")
	}
}

func TestHTTPDelete(t *testing.T) {
	c, _ := newTestServer(t)
	_ = c.MakeBucket("bkt")
	_, _ = c.PutObject("bkt", "k", []byte("x"), "")
	if err := c.RemoveObject("bkt", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetObject("bkt", "k"); err == nil {
		t.Error("object should be deleted")
	}
	// Idempotent, as S3.
	if err := c.RemoveObject("bkt", "k"); err != nil {
		t.Errorf("second delete: %v", err)
	}
}

func TestHTTPMetadataRoundTrip(t *testing.T) {
	store := NewMemStore(0)
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	_ = store.MakeBucket("bkt")
	_, err := store.Put("bkt", "k", strings.NewReader("v"), "text/plain", map[string]string{"digest": "sha256:abc"})
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(srv.URL, srv.Client())
	_, info, err := c.GetObject("bkt", "k")
	if err != nil {
		t.Fatal(err)
	}
	if info.Metadata["digest"] != "sha256:abc" {
		t.Errorf("metadata = %v", info.Metadata)
	}
}

func TestHTTPServerAgainstErasureStore(t *testing.T) {
	store, _ := NewErasureStore(3)
	srv := httptest.NewServer(NewServer(store))
	defer srv.Close()
	c := NewClient(srv.URL, srv.Client())
	if err := c.MakeBucket("bkt"); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("shard"), 500)
	if _, err := c.PutObject("bkt", "obj", payload, ""); err != nil {
		t.Fatal(err)
	}
	_ = store.FailDrive(1)
	data, _, err := c.GetObject("bkt", "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("erasure-backed HTTP read corrupted")
	}
}
