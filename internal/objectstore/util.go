package objectstore

import (
	"crypto/md5"
	"encoding/hex"
	"sort"
	"strings"
)

func md5sum(data []byte) string {
	sum := md5.Sum(data)
	return hex.EncodeToString(sum[:])
}

func sortStrings(s []string) { sort.Strings(s) }

func hasPrefix(s, prefix string) bool { return strings.HasPrefix(s, prefix) }

func sortObjects(objs []ObjectInfo) {
	sort.Slice(objs, func(i, j int) bool { return objs[i].Key < objs[j].Key })
}
