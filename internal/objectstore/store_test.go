package objectstore

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMemStoreBucketLifecycle(t *testing.T) {
	s := NewMemStore(0)
	if err := s.MakeBucket("images"); err != nil {
		t.Fatal(err)
	}
	if err := s.MakeBucket("images"); !errors.Is(err, ErrBucketExists) {
		t.Errorf("duplicate bucket: %v", err)
	}
	if err := s.MakeBucket("BAD NAME"); !errors.Is(err, ErrInvalidBucket) {
		t.Errorf("invalid name: %v", err)
	}
	if !s.BucketExists("images") {
		t.Error("bucket should exist")
	}
	if got := s.ListBuckets(); len(got) != 1 || got[0] != "images" {
		t.Errorf("buckets = %v", got)
	}
	if err := s.RemoveBucket("images"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveBucket("images"); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("remove missing: %v", err)
	}
}

func TestMemStorePutGet(t *testing.T) {
	s := NewMemStore(0)
	_ = s.MakeBucket("bkt")
	info, err := s.Put("bkt", "k/1", strings.NewReader("hello"), "text/plain", map[string]string{"who": "me"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 5 || info.ETag == "" {
		t.Errorf("info = %+v", info)
	}
	obj, err := s.Get("bkt", "k/1")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(obj.Body)
	obj.Body.Close()
	if string(data) != "hello" {
		t.Errorf("data = %q", data)
	}
	if obj.Metadata["who"] != "me" || obj.ContentType != "text/plain" {
		t.Errorf("metadata lost: %+v", obj.ObjectInfo)
	}
	if _, err := s.Get("bkt", "missing"); !errors.Is(err, ErrNoSuchKey) {
		t.Errorf("missing key: %v", err)
	}
	if _, err := s.Get("nope", "k"); !errors.Is(err, ErrNoSuchBucket) {
		t.Errorf("missing bucket: %v", err)
	}
}

func TestMemStoreOverwriteAccounting(t *testing.T) {
	s := NewMemStore(0)
	_ = s.MakeBucket("bkt")
	_, _ = s.Put("bkt", "k", strings.NewReader("12345"), "", nil)
	if s.Used() != 5 {
		t.Errorf("used = %d", s.Used())
	}
	_, _ = s.Put("bkt", "k", strings.NewReader("123"), "", nil)
	if s.Used() != 3 {
		t.Errorf("used after overwrite = %d", s.Used())
	}
	_ = s.Delete("bkt", "k")
	if s.Used() != 0 {
		t.Errorf("used after delete = %d", s.Used())
	}
}

func TestMemStoreQuota(t *testing.T) {
	s := NewMemStore(10)
	_ = s.MakeBucket("bkt")
	if _, err := s.Put("bkt", "a", strings.NewReader("123456"), "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("bkt", "c", strings.NewReader("123456"), "", nil); !errors.Is(err, ErrQuotaExceeded) {
		t.Errorf("quota: %v", err)
	}
	// Overwriting within quota is fine.
	if _, err := s.Put("bkt", "a", strings.NewReader("1234567890"), "", nil); err != nil {
		t.Errorf("overwrite within quota: %v", err)
	}
}

func TestMemStoreList(t *testing.T) {
	s := NewMemStore(0)
	_ = s.MakeBucket("bkt")
	for _, k := range []string{"blobs/a", "blobs/b", "manifests/x"} {
		_, _ = s.Put("bkt", k, strings.NewReader("x"), "", nil)
	}
	objs, err := s.List("bkt", "blobs/")
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 || objs[0].Key != "blobs/a" || objs[1].Key != "blobs/b" {
		t.Errorf("list = %+v", objs)
	}
	all, _ := s.List("bkt", "")
	if len(all) != 3 {
		t.Errorf("all = %d", len(all))
	}
}

func TestMemStoreDeleteIdempotent(t *testing.T) {
	s := NewMemStore(0)
	_ = s.MakeBucket("bkt")
	if err := s.Delete("bkt", "never-existed"); err != nil {
		t.Errorf("S3 delete semantics: %v", err)
	}
}

func TestRemoveNonEmptyBucket(t *testing.T) {
	s := NewMemStore(0)
	_ = s.MakeBucket("bkt")
	_, _ = s.Put("bkt", "k", strings.NewReader("x"), "", nil)
	if err := s.RemoveBucket("bkt"); !errors.Is(err, ErrBucketNotEmpty) {
		t.Errorf("non-empty removal: %v", err)
	}
}

func TestValidNames(t *testing.T) {
	valid := []string{"images", "my-bucket", "a.b.c", "abc"}
	for _, n := range valid {
		if !ValidBucketName(n) {
			t.Errorf("%q should be valid", n)
		}
	}
	invalid := []string{"", "A", "ab", "UPPER", "-lead", "trail-", strings.Repeat("x", 64)}
	for _, n := range invalid {
		if ValidBucketName(n) {
			t.Errorf("%q should be invalid", n)
		}
	}
	if ValidKey("") || ValidKey("/lead") || ValidKey(strings.Repeat("k", 1025)) {
		t.Error("invalid keys accepted")
	}
	if !ValidKey("a/b/c.txt") {
		t.Error("normal key rejected")
	}
}

func TestPutGetRoundTripProperty(t *testing.T) {
	s := NewMemStore(0)
	_ = s.MakeBucket("bkt")
	f := func(data []byte) bool {
		_, err := s.Put("bkt", "k", bytes.NewReader(data), "", nil)
		if err != nil {
			return false
		}
		obj, err := s.Get("bkt", "k")
		if err != nil {
			return false
		}
		got, _ := io.ReadAll(obj.Body)
		obj.Body.Close()
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestErasureRoundTrip(t *testing.T) {
	s, err := NewErasureStore(4)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.MakeBucket("bkt")
	data := []byte("the quick brown fox jumps over the lazy dog")
	if _, err := s.Put("bkt", "k", bytes.NewReader(data), "", nil); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get("bkt", "k")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(obj.Body)
	if !bytes.Equal(got, data) {
		t.Errorf("round trip: %q", got)
	}
}

func TestErasureSingleDriveFailure(t *testing.T) {
	s, _ := NewErasureStore(3)
	_ = s.MakeBucket("bkt")
	data := bytes.Repeat([]byte("0123456789"), 100)
	_, _ = s.Put("bkt", "k", bytes.NewReader(data), "", nil)

	for dead := 0; dead < 4; dead++ {
		s2, _ := NewErasureStore(3)
		_ = s2.MakeBucket("bkt")
		_, _ = s2.Put("bkt", "k", bytes.NewReader(data), "", nil)
		if err := s2.FailDrive(dead); err != nil {
			t.Fatal(err)
		}
		obj, err := s2.Get("bkt", "k")
		if err != nil {
			t.Fatalf("drive %d failed: read: %v", dead, err)
		}
		got, _ := io.ReadAll(obj.Body)
		if !bytes.Equal(got, data) {
			t.Errorf("drive %d failed: data corrupted", dead)
		}
	}
}

func TestErasureHeal(t *testing.T) {
	s, _ := NewErasureStore(2)
	_ = s.MakeBucket("bkt")
	data := []byte("important blob payload")
	_, _ = s.Put("bkt", "k", bytes.NewReader(data), "", nil)
	_ = s.FailDrive(1)
	if got := s.FailedDrives(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("failed drives = %v", got)
	}
	if err := s.Heal(); err != nil {
		t.Fatal(err)
	}
	if got := s.FailedDrives(); len(got) != 0 {
		t.Fatalf("drives not healed: %v", got)
	}
	// Fail a different drive: the healed drive must carry valid data.
	_ = s.FailDrive(0)
	obj, err := s.Get("bkt", "k")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(obj.Body)
	if !bytes.Equal(got, data) {
		t.Error("healed shard is wrong")
	}
}

func TestErasureTwoFailuresFatal(t *testing.T) {
	s, _ := NewErasureStore(3)
	_ = s.MakeBucket("bkt")
	_, _ = s.Put("bkt", "k", strings.NewReader("x"), "", nil)
	_ = s.FailDrive(0)
	_ = s.FailDrive(1)
	if _, err := s.Get("bkt", "k"); !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("double failure: %v", err)
	}
	if err := s.Heal(); !errors.Is(err, ErrTooManyFailures) {
		t.Errorf("heal with two failures: %v", err)
	}
}

func TestErasureWriteDuringFailureThenHeal(t *testing.T) {
	s, _ := NewErasureStore(2)
	_ = s.MakeBucket("bkt")
	_ = s.FailDrive(2) // parity drive down
	data := []byte("written while degraded")
	if _, err := s.Put("bkt", "k", bytes.NewReader(data), "", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Heal(); err != nil {
		t.Fatal(err)
	}
	// Now lose a data drive; parity must reconstruct.
	_ = s.FailDrive(0)
	obj, err := s.Get("bkt", "k")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(obj.Body)
	if !bytes.Equal(got, data) {
		t.Error("degraded write not recoverable after heal")
	}
}

func TestErasureRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(5)
		s, _ := NewErasureStore(n)
		_ = s.MakeBucket("bkt")
		data := make([]byte, 1+rng.Intn(5000))
		rng.Read(data)
		_, _ = s.Put("bkt", "k", bytes.NewReader(data), "", nil)
		dead := rng.Intn(n + 1)
		_ = s.FailDrive(dead)
		obj, err := s.Get("bkt", "k")
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, _ := io.ReadAll(obj.Body)
		if !bytes.Equal(got, data) {
			t.Fatalf("trial %d: corruption with drive %d dead (n=%d, len=%d)", trial, dead, n, len(data))
		}
	}
}

func TestErasureMinDrives(t *testing.T) {
	if _, err := NewErasureStore(1); err == nil {
		t.Error("1 data drive should be rejected")
	}
}

func TestErasureStoreInterface(t *testing.T) {
	var _ Store = (*MemStore)(nil)
	var _ Store = (*ErasureStore)(nil)
}
