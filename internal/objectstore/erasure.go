package objectstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"
)

// ErasureStore stripes every object across N data drives plus one XOR
// parity drive, MinIO-style (simplified to single-parity). It tolerates the
// loss of any single drive: reads reconstruct the missing stripe from
// parity, and Heal rewrites a replaced drive's shards.
type ErasureStore struct {
	mu     sync.RWMutex
	drives []*drive
	// index maps bucket -> key -> object metadata; shard payloads live on
	// the drives.
	index map[string]map[string]ObjectInfo
	clock func() time.Time
}

// drive is one failure domain.
type drive struct {
	failed bool
	shards map[string][]byte // object id -> shard payload
}

// ErrTooManyFailures is returned when more drives have failed than the
// parity can compensate for.
var ErrTooManyFailures = errors.New("objectstore: too many failed drives")

// NewErasureStore returns a store striped over dataDrives+1 drives.
// dataDrives must be at least 2.
func NewErasureStore(dataDrives int) (*ErasureStore, error) {
	if dataDrives < 2 {
		return nil, fmt.Errorf("objectstore: need at least 2 data drives, got %d", dataDrives)
	}
	drives := make([]*drive, dataDrives+1)
	for i := range drives {
		drives[i] = &drive{shards: make(map[string][]byte)}
	}
	return &ErasureStore{
		drives: drives,
		index:  make(map[string]map[string]ObjectInfo),
		clock:  time.Now,
	}, nil
}

// DataDrives returns the number of data drives (excluding parity).
func (s *ErasureStore) DataDrives() int { return len(s.drives) - 1 }

// FailDrive simulates the loss of drive i: all its shards are dropped.
func (s *ErasureStore) FailDrive(i int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.drives) {
		return fmt.Errorf("objectstore: no drive %d", i)
	}
	s.drives[i].failed = true
	s.drives[i].shards = make(map[string][]byte)
	return nil
}

// FailedDrives returns the indices of failed drives.
func (s *ErasureStore) FailedDrives() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []int
	for i, d := range s.drives {
		if d.failed {
			out = append(out, i)
		}
	}
	return out
}

// Heal reconstructs the shards of every failed drive from the surviving
// drives and marks it healthy again. It fails when two or more drives are
// down.
func (s *ErasureStore) Heal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var failed []int
	for i, d := range s.drives {
		if d.failed {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 {
		return nil
	}
	if len(failed) > 1 {
		return ErrTooManyFailures
	}
	dead := failed[0]
	// Rebuild every object's missing shard by XORing the others.
	for bucket, keys := range s.index {
		for key := range keys {
			id := bucket + "/" + key
			var rebuilt []byte
			for i, d := range s.drives {
				if i == dead {
					continue
				}
				shard := d.shards[id]
				if rebuilt == nil {
					rebuilt = append([]byte(nil), shard...)
					continue
				}
				rebuilt = xorPad(rebuilt, shard)
			}
			s.drives[dead].shards[id] = rebuilt
		}
	}
	s.drives[dead].failed = false
	return nil
}

// shardSplit cuts data into n equal-length shards (zero-padded) plus a
// parity shard.
func shardSplit(data []byte, n int) [][]byte {
	shardLen := (len(data) + n - 1) / n
	if shardLen == 0 {
		shardLen = 1
	}
	shards := make([][]byte, n+1)
	for i := 0; i < n; i++ {
		shards[i] = make([]byte, shardLen)
		start := i * shardLen
		if start < len(data) {
			end := start + shardLen
			if end > len(data) {
				end = len(data)
			}
			copy(shards[i], data[start:end])
		}
	}
	parity := make([]byte, shardLen)
	for i := 0; i < n; i++ {
		for j, b := range shards[i] {
			parity[j] ^= b
		}
	}
	shards[n] = parity
	return shards
}

func xorPad(a, b []byte) []byte {
	if len(b) > len(a) {
		a, b = b, a
	}
	out := append([]byte(nil), a...)
	for i, x := range b {
		out[i] ^= x
	}
	return out
}

// MakeBucket implements Store.
func (s *ErasureStore) MakeBucket(name string) error {
	if !ValidBucketName(name) {
		return ErrInvalidBucket
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[name]; ok {
		return ErrBucketExists
	}
	s.index[name] = make(map[string]ObjectInfo)
	return nil
}

// RemoveBucket implements Store.
func (s *ErasureStore) RemoveBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.index[name]
	if !ok {
		return ErrNoSuchBucket
	}
	if len(b) > 0 {
		return ErrBucketNotEmpty
	}
	delete(s.index, name)
	return nil
}

// ListBuckets implements Store.
func (s *ErasureStore) ListBuckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for b := range s.index {
		out = append(out, b)
	}
	sortStrings(out)
	return out
}

// BucketExists implements Store.
func (s *ErasureStore) BucketExists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[name]
	return ok
}

// Put implements Store.
func (s *ErasureStore) Put(bucket, key string, r io.Reader, contentType string, meta map[string]string) (ObjectInfo, error) {
	if !ValidKey(key) {
		return ObjectInfo{}, ErrInvalidKey
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return ObjectInfo{}, err
	}
	info := ObjectInfo{
		Bucket: bucket, Key: key,
		Size: int64(len(data)), ETag: etagOf(data),
		ContentType:  contentType,
		LastModified: s.clock(),
		Metadata:     copyMeta(meta),
	}

	n := s.DataDrives()
	shards := shardSplit(data, n)

	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.index[bucket]
	if !ok {
		return ObjectInfo{}, ErrNoSuchBucket
	}
	id := bucket + "/" + key
	for i, d := range s.drives {
		if d.failed {
			continue // shard lost until Heal
		}
		d.shards[id] = shards[i]
	}
	b[key] = info
	return info, nil
}

// Get implements Store, reconstructing from parity when one drive is down.
func (s *ErasureStore) Get(bucket, key string) (*Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.index[bucket]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	info, ok := b[key]
	if !ok {
		return nil, ErrNoSuchKey
	}
	id := bucket + "/" + key
	n := s.DataDrives()

	var failed []int
	for i, d := range s.drives {
		if d.failed {
			failed = append(failed, i)
		}
	}
	if len(failed) > 1 {
		return nil, ErrTooManyFailures
	}

	shards := make([][]byte, len(s.drives))
	for i, d := range s.drives {
		if !d.failed {
			shards[i] = d.shards[id]
		}
	}
	if len(failed) == 1 {
		dead := failed[0]
		var rebuilt []byte
		for i, sh := range shards {
			if i == dead {
				continue
			}
			if rebuilt == nil {
				rebuilt = append([]byte(nil), sh...)
				continue
			}
			rebuilt = xorPad(rebuilt, sh)
		}
		shards[dead] = rebuilt
	}
	data := make([]byte, 0, info.Size)
	for i := 0; i < n; i++ {
		data = append(data, shards[i]...)
	}
	data = data[:info.Size]
	return &Object{ObjectInfo: info, Body: io.NopCloser(bytes.NewReader(data))}, nil
}

// Stat implements Store.
func (s *ErasureStore) Stat(bucket, key string) (ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.index[bucket]
	if !ok {
		return ObjectInfo{}, ErrNoSuchBucket
	}
	info, ok := b[key]
	if !ok {
		return ObjectInfo{}, ErrNoSuchKey
	}
	return info, nil
}

// Delete implements Store.
func (s *ErasureStore) Delete(bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.index[bucket]
	if !ok {
		return ErrNoSuchBucket
	}
	if _, ok := b[key]; ok {
		id := bucket + "/" + key
		for _, d := range s.drives {
			delete(d.shards, id)
		}
		delete(b, key)
	}
	return nil
}

// List implements Store.
func (s *ErasureStore) List(bucket, prefix string) ([]ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.index[bucket]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	var out []ObjectInfo
	for k, info := range b {
		if hasPrefix(k, prefix) {
			out = append(out, info)
		}
	}
	sortObjects(out)
	return out, nil
}

func etagOf(data []byte) string {
	sum := md5sum(data)
	return sum
}
