package objectstore

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client talks to an objectstore.Server (or any S3-subset endpoint) over
// HTTP, mirroring the MinIO Go client's core surface.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the endpoint (e.g. "http://127.0.0.1:9000").
func NewClient(endpoint string, hc *http.Client) *Client {
	if hc == nil {
		hc = &http.Client{Timeout: 30 * time.Second}
	}
	return &Client{base: strings.TrimRight(endpoint, "/"), http: hc}
}

// MakeBucket creates a bucket.
func (c *Client) MakeBucket(bucket string) error {
	return c.simple(http.MethodPut, "/"+bucket, nil, http.StatusOK)
}

// RemoveBucket deletes an empty bucket.
func (c *Client) RemoveBucket(bucket string) error {
	return c.simple(http.MethodDelete, "/"+bucket, nil, http.StatusNoContent)
}

// BucketExists probes a bucket with a HEAD request.
func (c *Client) BucketExists(bucket string) (bool, error) {
	resp, err := c.do(http.MethodHead, "/"+bucket, nil, "")
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK, nil
}

// PutObject uploads data under bucket/key and returns its ETag.
func (c *Client) PutObject(bucket, key string, data []byte, contentType string) (string, error) {
	resp, err := c.do(http.MethodPut, "/"+bucket+"/"+key, bytes.NewReader(data), contentType)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	return strings.Trim(resp.Header.Get("ETag"), `"`), nil
}

// GetObject downloads bucket/key.
func (c *Client) GetObject(bucket, key string) ([]byte, ObjectInfo, error) {
	resp, err := c.do(http.MethodGet, "/"+bucket+"/"+key, nil, "")
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, ObjectInfo{}, decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, ObjectInfo{}, err
	}
	return data, infoFromHeaders(bucket, key, resp), nil
}

// StatObject returns object metadata without the body.
func (c *Client) StatObject(bucket, key string) (ObjectInfo, error) {
	resp, err := c.do(http.MethodHead, "/"+bucket+"/"+key, nil, "")
	if err != nil {
		return ObjectInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ObjectInfo{}, fmt.Errorf("objectstore: stat %s/%s: HTTP %d", bucket, key, resp.StatusCode)
	}
	return infoFromHeaders(bucket, key, resp), nil
}

// RemoveObject deletes bucket/key.
func (c *Client) RemoveObject(bucket, key string) error {
	return c.simple(http.MethodDelete, "/"+bucket+"/"+key, nil, http.StatusNoContent)
}

// ListObjects lists keys under a prefix.
func (c *Client) ListObjects(bucket, prefix string) ([]ObjectInfo, error) {
	path := "/" + bucket
	if prefix != "" {
		path += "?prefix=" + url.QueryEscape(prefix)
	}
	resp, err := c.do(http.MethodGet, path, nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var lr xmlListResult
	if err := xml.NewDecoder(resp.Body).Decode(&lr); err != nil {
		return nil, fmt.Errorf("objectstore: decode list: %w", err)
	}
	out := make([]ObjectInfo, 0, len(lr.Contents))
	for _, c := range lr.Contents {
		out = append(out, ObjectInfo{
			Bucket: bucket, Key: c.Key, Size: c.Size,
			ETag: strings.Trim(c.ETag, `"`),
		})
	}
	return out, nil
}

// ListBuckets lists all buckets.
func (c *Client) ListBuckets() ([]string, error) {
	resp, err := c.do(http.MethodGet, "/", nil, "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var lb xmlBuckets
	if err := xml.NewDecoder(resp.Body).Decode(&lb); err != nil {
		return nil, err
	}
	var out []string
	for _, b := range lb.Buckets {
		out = append(out, b.Name)
	}
	return out, nil
}

func (c *Client) simple(method, path string, body io.Reader, wantStatus int) error {
	resp, err := c.do(method, path, body, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return decodeError(resp)
	}
	return nil
}

func (c *Client) do(method, path string, body io.Reader, contentType string) (*http.Response, error) {
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	return c.http.Do(req)
}

func infoFromHeaders(bucket, key string, resp *http.Response) ObjectInfo {
	info := ObjectInfo{
		Bucket: bucket, Key: key,
		ETag:        strings.Trim(resp.Header.Get("ETag"), `"`),
		ContentType: resp.Header.Get("Content-Type"),
		Size:        resp.ContentLength,
	}
	meta := map[string]string{}
	for h, vs := range resp.Header {
		lower := strings.ToLower(h)
		if strings.HasPrefix(lower, "x-amz-meta-") && len(vs) > 0 {
			meta[strings.TrimPrefix(lower, "x-amz-meta-")] = vs[0]
		}
	}
	if len(meta) > 0 {
		info.Metadata = meta
	}
	return info
}

func decodeError(resp *http.Response) error {
	var e xmlError
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if err := xml.Unmarshal(data, &e); err == nil && e.Code != "" {
		return fmt.Errorf("objectstore: %s: %s (HTTP %d)", e.Code, e.Message, resp.StatusCode)
	}
	return fmt.Errorf("objectstore: HTTP %d", resp.StatusCode)
}
