package objectstore

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Server exposes a Store over an S3-compatible HTTP API subset:
//
//	GET    /                    list buckets (XML)
//	PUT    /{bucket}            create bucket
//	DELETE /{bucket}            remove bucket
//	GET    /{bucket}?prefix=p   list objects (XML)
//	PUT    /{bucket}/{key}      put object
//	GET    /{bucket}/{key}      get object
//	HEAD   /{bucket}/{key}      stat object
//	DELETE /{bucket}/{key}      delete object
type Server struct {
	store Store
}

// NewServer wraps a store.
func NewServer(store Store) *Server { return &Server{store: store} }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := strings.TrimPrefix(r.URL.Path, "/")
	if path == "" {
		if r.Method != http.MethodGet {
			writeS3Error(w, http.StatusMethodNotAllowed, "MethodNotAllowed", "unsupported method")
			return
		}
		s.listBuckets(w)
		return
	}
	bucket, key, hasKey := strings.Cut(path, "/")
	if !hasKey || key == "" {
		s.bucketOp(w, r, bucket)
		return
	}
	s.objectOp(w, r, bucket, key)
}

// xml payloads, mirroring the S3 wire format.
type xmlBuckets struct {
	XMLName xml.Name    `xml:"ListAllMyBucketsResult"`
	Buckets []xmlBucket `xml:"Buckets>Bucket"`
}
type xmlBucket struct {
	Name string `xml:"Name"`
}
type xmlListResult struct {
	XMLName  xml.Name     `xml:"ListBucketResult"`
	Name     string       `xml:"Name"`
	Prefix   string       `xml:"Prefix"`
	Contents []xmlContent `xml:"Contents"`
}
type xmlContent struct {
	Key          string `xml:"Key"`
	Size         int64  `xml:"Size"`
	ETag         string `xml:"ETag"`
	LastModified string `xml:"LastModified"`
}
type xmlError struct {
	XMLName xml.Name `xml:"Error"`
	Code    string   `xml:"Code"`
	Message string   `xml:"Message"`
}

func (s *Server) listBuckets(w http.ResponseWriter) {
	var out xmlBuckets
	for _, b := range s.store.ListBuckets() {
		out.Buckets = append(out.Buckets, xmlBucket{Name: b})
	}
	writeXML(w, http.StatusOK, out)
}

func (s *Server) bucketOp(w http.ResponseWriter, r *http.Request, bucket string) {
	switch r.Method {
	case http.MethodPut:
		switch err := s.store.MakeBucket(bucket); {
		case err == nil:
			w.WriteHeader(http.StatusOK)
		case errors.Is(err, ErrBucketExists):
			writeS3Error(w, http.StatusConflict, "BucketAlreadyExists", err.Error())
		case errors.Is(err, ErrInvalidBucket):
			writeS3Error(w, http.StatusBadRequest, "InvalidBucketName", err.Error())
		default:
			writeS3Error(w, http.StatusInternalServerError, "InternalError", err.Error())
		}
	case http.MethodDelete:
		switch err := s.store.RemoveBucket(bucket); {
		case err == nil:
			w.WriteHeader(http.StatusNoContent)
		case errors.Is(err, ErrNoSuchBucket):
			writeS3Error(w, http.StatusNotFound, "NoSuchBucket", err.Error())
		case errors.Is(err, ErrBucketNotEmpty):
			writeS3Error(w, http.StatusConflict, "BucketNotEmpty", err.Error())
		default:
			writeS3Error(w, http.StatusInternalServerError, "InternalError", err.Error())
		}
	case http.MethodGet:
		prefix := r.URL.Query().Get("prefix")
		objs, err := s.store.List(bucket, prefix)
		if errors.Is(err, ErrNoSuchBucket) {
			writeS3Error(w, http.StatusNotFound, "NoSuchBucket", err.Error())
			return
		}
		if err != nil {
			writeS3Error(w, http.StatusInternalServerError, "InternalError", err.Error())
			return
		}
		out := xmlListResult{Name: bucket, Prefix: prefix}
		for _, o := range objs {
			out.Contents = append(out.Contents, xmlContent{
				Key: o.Key, Size: o.Size, ETag: `"` + o.ETag + `"`,
				LastModified: o.LastModified.UTC().Format(time.RFC3339),
			})
		}
		writeXML(w, http.StatusOK, out)
	case http.MethodHead:
		if s.store.BucketExists(bucket) {
			w.WriteHeader(http.StatusOK)
		} else {
			w.WriteHeader(http.StatusNotFound)
		}
	default:
		writeS3Error(w, http.StatusMethodNotAllowed, "MethodNotAllowed", "unsupported method")
	}
}

func (s *Server) objectOp(w http.ResponseWriter, r *http.Request, bucket, key string) {
	switch r.Method {
	case http.MethodPut:
		meta := map[string]string{}
		for h, vs := range r.Header {
			lower := strings.ToLower(h)
			if strings.HasPrefix(lower, "x-amz-meta-") && len(vs) > 0 {
				meta[strings.TrimPrefix(lower, "x-amz-meta-")] = vs[0]
			}
		}
		info, err := s.store.Put(bucket, key, r.Body, r.Header.Get("Content-Type"), meta)
		if err != nil {
			writeStoreError(w, err)
			return
		}
		w.Header().Set("ETag", `"`+info.ETag+`"`)
		w.WriteHeader(http.StatusOK)
	case http.MethodGet:
		obj, err := s.store.Get(bucket, key)
		if err != nil {
			writeStoreError(w, err)
			return
		}
		defer obj.Body.Close()
		setObjectHeaders(w, obj.ObjectInfo)
		w.WriteHeader(http.StatusOK)
		_, _ = io.Copy(w, obj.Body)
	case http.MethodHead:
		info, err := s.store.Stat(bucket, key)
		if err != nil {
			writeStoreError(w, err)
			return
		}
		setObjectHeaders(w, info)
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		if err := s.store.Delete(bucket, key); err != nil {
			writeStoreError(w, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		writeS3Error(w, http.StatusMethodNotAllowed, "MethodNotAllowed", "unsupported method")
	}
}

func setObjectHeaders(w http.ResponseWriter, info ObjectInfo) {
	w.Header().Set("ETag", `"`+info.ETag+`"`)
	w.Header().Set("Content-Length", fmt.Sprint(info.Size))
	if info.ContentType != "" {
		w.Header().Set("Content-Type", info.ContentType)
	}
	w.Header().Set("Last-Modified", info.LastModified.UTC().Format(http.TimeFormat))
	for k, v := range info.Metadata {
		w.Header().Set("x-amz-meta-"+k, v)
	}
}

func writeStoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrNoSuchBucket):
		writeS3Error(w, http.StatusNotFound, "NoSuchBucket", err.Error())
	case errors.Is(err, ErrNoSuchKey):
		writeS3Error(w, http.StatusNotFound, "NoSuchKey", err.Error())
	case errors.Is(err, ErrInvalidKey):
		writeS3Error(w, http.StatusBadRequest, "InvalidKey", err.Error())
	case errors.Is(err, ErrQuotaExceeded):
		writeS3Error(w, http.StatusInsufficientStorage, "QuotaExceeded", err.Error())
	default:
		writeS3Error(w, http.StatusInternalServerError, "InternalError", err.Error())
	}
}

func writeS3Error(w http.ResponseWriter, status int, code, msg string) {
	writeXML(w, status, xmlError{Code: code, Message: msg})
}

func writeXML(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/xml")
	w.WriteHeader(status)
	_, _ = w.Write([]byte(xml.Header))
	enc := xml.NewEncoder(w)
	_ = enc.Encode(v)
}
