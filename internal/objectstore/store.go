// Package objectstore implements a MinIO-flavored, S3-compatible object
// storage service: buckets and objects with MD5 ETags and metadata, an
// erasure-striped multi-drive backend with parity healing, and an HTTP
// server plus client speaking an S3 API subset (XML list responses,
// PUT/GET/HEAD/DELETE objects). The paper's regional Docker registry stores
// its blobs in exactly such a service.
package objectstore

import (
	"bytes"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"
)

// Well-known errors.
var (
	ErrNoSuchBucket     = errors.New("objectstore: no such bucket")
	ErrNoSuchKey        = errors.New("objectstore: no such key")
	ErrBucketExists     = errors.New("objectstore: bucket already exists")
	ErrBucketNotEmpty   = errors.New("objectstore: bucket not empty")
	ErrInvalidBucket    = errors.New("objectstore: invalid bucket name")
	ErrInvalidKey       = errors.New("objectstore: invalid object key")
	ErrQuotaExceeded    = errors.New("objectstore: storage quota exceeded")
	ErrPreconditionETag = errors.New("objectstore: etag precondition failed")
)

// ObjectInfo describes a stored object.
type ObjectInfo struct {
	Bucket       string
	Key          string
	Size         int64
	ETag         string // hex MD5 of the content, as S3 does for simple puts
	ContentType  string
	LastModified time.Time
	Metadata     map[string]string
}

// Object couples object info with a reader over its content.
type Object struct {
	ObjectInfo
	Body io.ReadCloser
}

// Store is the object storage API used by the registry and the HTTP server.
type Store interface {
	MakeBucket(name string) error
	RemoveBucket(name string) error
	ListBuckets() []string
	BucketExists(name string) bool

	Put(bucket, key string, r io.Reader, contentType string, meta map[string]string) (ObjectInfo, error)
	Get(bucket, key string) (*Object, error)
	Stat(bucket, key string) (ObjectInfo, error)
	Delete(bucket, key string) error
	// List returns objects whose keys start with prefix, sorted by key.
	List(bucket, prefix string) ([]ObjectInfo, error)
}

// bucketNameRE follows the S3 naming rules closely enough for our use.
var bucketNameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9.-]{1,61}[a-z0-9]$`)

// ValidBucketName reports whether the name satisfies the S3 naming rules.
func ValidBucketName(name string) bool { return bucketNameRE.MatchString(name) }

// ValidKey reports whether the object key is acceptable.
func ValidKey(key string) bool {
	return key != "" && len(key) <= 1024 && !strings.HasPrefix(key, "/")
}

// MemStore is an in-memory Store with an optional byte quota. It is safe
// for concurrent use.
type MemStore struct {
	mu      sync.RWMutex
	buckets map[string]map[string]*memObject
	used    int64
	quota   int64 // 0 = unlimited
	clock   func() time.Time
}

type memObject struct {
	info ObjectInfo
	data []byte
}

// NewMemStore returns an empty in-memory store. quota of 0 means unlimited.
func NewMemStore(quota int64) *MemStore {
	return &MemStore{
		buckets: make(map[string]map[string]*memObject),
		quota:   quota,
		clock:   time.Now,
	}
}

// SetClock injects a deterministic clock for tests.
func (s *MemStore) SetClock(f func() time.Time) { s.clock = f }

// Used returns the bytes currently stored.
func (s *MemStore) Used() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.used
}

// MakeBucket implements Store.
func (s *MemStore) MakeBucket(name string) error {
	if !ValidBucketName(name) {
		return ErrInvalidBucket
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return ErrBucketExists
	}
	s.buckets[name] = make(map[string]*memObject)
	return nil
}

// RemoveBucket implements Store; the bucket must be empty.
func (s *MemStore) RemoveBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return ErrNoSuchBucket
	}
	if len(b) > 0 {
		return ErrBucketNotEmpty
	}
	delete(s.buckets, name)
	return nil
}

// ListBuckets implements Store.
func (s *MemStore) ListBuckets() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.buckets))
	for b := range s.buckets {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// BucketExists implements Store.
func (s *MemStore) BucketExists(name string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.buckets[name]
	return ok
}

// Put implements Store.
func (s *MemStore) Put(bucket, key string, r io.Reader, contentType string, meta map[string]string) (ObjectInfo, error) {
	if !ValidKey(key) {
		return ObjectInfo{}, ErrInvalidKey
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return ObjectInfo{}, fmt.Errorf("objectstore: read body: %w", err)
	}
	sum := md5.Sum(data)

	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return ObjectInfo{}, ErrNoSuchBucket
	}
	var prev int64
	if old, ok := b[key]; ok {
		prev = old.info.Size
	}
	if s.quota > 0 && s.used-prev+int64(len(data)) > s.quota {
		return ObjectInfo{}, ErrQuotaExceeded
	}
	info := ObjectInfo{
		Bucket: bucket, Key: key,
		Size: int64(len(data)), ETag: hex.EncodeToString(sum[:]),
		ContentType:  contentType,
		LastModified: s.clock(),
		Metadata:     copyMeta(meta),
	}
	b[key] = &memObject{info: info, data: data}
	s.used += int64(len(data)) - prev
	return info, nil
}

// Get implements Store.
func (s *MemStore) Get(bucket, key string) (*Object, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	o, ok := b[key]
	if !ok {
		return nil, ErrNoSuchKey
	}
	// Copy so later overwrites do not race readers.
	data := make([]byte, len(o.data))
	copy(data, o.data)
	return &Object{
		ObjectInfo: o.info,
		Body:       io.NopCloser(bytes.NewReader(data)),
	}, nil
}

// Stat implements Store.
func (s *MemStore) Stat(bucket, key string) (ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return ObjectInfo{}, ErrNoSuchBucket
	}
	o, ok := b[key]
	if !ok {
		return ObjectInfo{}, ErrNoSuchKey
	}
	return o.info, nil
}

// Delete implements Store. Deleting a missing key is not an error, matching
// S3 semantics.
func (s *MemStore) Delete(bucket, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return ErrNoSuchBucket
	}
	if o, ok := b[key]; ok {
		s.used -= o.info.Size
		delete(b, key)
	}
	return nil
}

// List implements Store.
func (s *MemStore) List(bucket, prefix string) ([]ObjectInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	b, ok := s.buckets[bucket]
	if !ok {
		return nil, ErrNoSuchBucket
	}
	var out []ObjectInfo
	for k, o := range b {
		if strings.HasPrefix(k, prefix) {
			out = append(out, o.info)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

func copyMeta(m map[string]string) map[string]string {
	if len(m) == 0 {
		return nil
	}
	c := make(map[string]string, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}
