package workload

import (
	"math"
	"testing"

	"deep/internal/sim"
)

func TestTableIIComplete(t *testing.T) {
	if len(TableII) != 12 {
		t.Fatalf("Table II should have 12 rows, has %d", len(TableII))
	}
	for _, r := range TableII {
		if r.TpMin > r.TpMax || r.CTMin > r.CTMax || r.ECMedMin > r.ECMedMax || r.ECSmallMin > r.ECSmallMax {
			t.Errorf("%s/%s: inverted range", r.App, r.Name)
		}
		if r.SizeGB <= 0 {
			t.Errorf("%s/%s: non-positive size", r.App, r.Name)
		}
		if r.CTMid() < r.TpMid() {
			t.Errorf("%s/%s: CT midpoint below Tp midpoint", r.App, r.Name)
		}
	}
}

func TestRowLookup(t *testing.T) {
	if _, ok := Row("video", "transcode"); !ok {
		t.Error("missing video/transcode")
	}
	if _, ok := Row("video", "nope"); ok {
		t.Error("bogus row found")
	}
	if got := len(Rows("video")); got != 6 {
		t.Errorf("video rows = %d", got)
	}
	if got := len(Rows("text")); got != 6 {
		t.Errorf("text rows = %d", got)
	}
}

func TestCatalogComplete(t *testing.T) {
	if len(TableI) != 12 {
		t.Fatalf("Table I should have 12 entries, has %d", len(TableI))
	}
	for _, r := range TableII {
		ref, ok := CatalogRef(r.App, r.Name)
		if !ok {
			t.Errorf("no catalog entry for %s/%s", r.App, r.Name)
			continue
		}
		if ref.Hub == "" || ref.Regional == "" {
			t.Errorf("incomplete refs for %s/%s: %+v", r.App, r.Name, ref)
		}
	}
}

func TestDerivePositivity(t *testing.T) {
	for _, r := range TableII {
		d := Derive(r)
		if d.CPU <= 0 {
			t.Errorf("%s/%s: CPU = %v", r.App, r.Name, d.CPU)
		}
		if d.InputSize < 0 {
			t.Errorf("%s/%s: negative input size", r.App, r.Name)
		}
		if d.ProcWMedium <= 0 {
			t.Errorf("%s/%s: medium processing power %v not positive", r.App, r.Name, d.ProcWMedium)
		}
		if d.ProcWSmall <= 0 {
			t.Errorf("%s/%s: small processing power %v not positive", r.App, r.Name, d.ProcWSmall)
		}
		// Wall power of the Pi should stay physically plausible (< 10 W).
		if d.ProcWSmall > 10 {
			t.Errorf("%s/%s: small power %v implausibly high", r.App, r.Name, d.ProcWSmall)
		}
	}
}

func TestAppsValidate(t *testing.T) {
	for _, app := range Apps() {
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
		if len(app.Microservices) != 6 {
			t.Errorf("%s: %d microservices, want 6", app.Name, len(app.Microservices))
		}
		stages, err := app.Stages()
		if err != nil {
			t.Fatal(err)
		}
		// Both pipelines have 4 levels: source, prep, train pair, final pair
		// (the paper's two synchronization barriers sit between the last
		// three levels).
		if len(stages) != 4 {
			t.Errorf("%s: %d stages, want 4", app.Name, len(stages))
		}
	}
}

func TestTestbedShape(t *testing.T) {
	c := Testbed()
	if len(c.Devices) != 2 || len(c.Registries) != 2 {
		t.Fatalf("testbed: %d devices, %d registries", len(c.Devices), len(c.Registries))
	}
	if c.Device("medium") == nil || c.Device("small") == nil {
		t.Fatal("missing devices")
	}
	reg, ok := c.Registry("regional")
	if !ok || !reg.Shared {
		t.Error("regional registry must be shared-capacity")
	}
	hub, ok := c.Registry("hub")
	if !ok || hub.Shared {
		t.Error("hub must not be shared-capacity")
	}
	// Every registry must reach every device.
	for _, r := range c.Registries {
		for _, d := range c.Devices {
			if _, ok := c.Topology.LinkBetween(r.Node, d.Name); !ok {
				t.Errorf("no link %s -> %s", r.Name, d.Name)
			}
		}
	}
}

// The heart of the calibration: simulating each microservice standalone
// (deployed from Docker Hub) must land on the Table II midpoints for Tp and
// EC on both devices, and the completion time on the medium device must
// match by construction.
func TestCalibrationReproducesTableII(t *testing.T) {
	for _, r := range TableII {
		// Medium device.
		res, err := BenchmarkRun(r.App, r.Name, "medium", "hub", 0, 0)
		if err != nil {
			t.Fatalf("%s/%s: %v", r.App, r.Name, err)
		}
		mr := res.Microservices[0]
		if math.Abs(mr.ProcessTime-r.TpMid()) > 0.5 {
			t.Errorf("%s/%s: Tp %v, want %v", r.App, r.Name, mr.ProcessTime, r.TpMid())
		}
		if math.Abs(mr.CT-r.CTMid()) > 0.02*r.CTMid()+1.5 {
			t.Errorf("%s/%s: CT %v, want ≈%v", r.App, r.Name, mr.CT, r.CTMid())
		}
		if got := float64(mr.TotalEnergy()); math.Abs(got-r.ECMedMid()) > 0.03*r.ECMedMid()+2 {
			t.Errorf("%s/%s: EC medium %v, want ≈%v", r.App, r.Name, got, r.ECMedMid())
		}
		// Small device.
		res, err = BenchmarkRun(r.App, r.Name, "small", "hub", 0, 0)
		if err != nil {
			t.Fatalf("%s/%s small: %v", r.App, r.Name, err)
		}
		sr := res.Microservices[0]
		if got := float64(sr.TotalEnergy()); math.Abs(got-r.ECSmallMid()) > 0.03*r.ECSmallMid()+2 {
			t.Errorf("%s/%s: EC small %v, want ≈%v", r.App, r.Name, got, r.ECSmallMid())
		}
		if sr.ProcessTime <= mr.ProcessTime {
			t.Errorf("%s/%s: small Tp %v should exceed medium Tp %v", r.App, r.Name, sr.ProcessTime, mr.ProcessTime)
		}
	}
}

// Deploying from the regional registry must be competitive with Docker Hub —
// within a few percent on energy — which is the paper's core observation.
func TestRegistriesCompetitive(t *testing.T) {
	for _, r := range TableII {
		for _, dev := range []string{"medium", "small"} {
			hub, err := BenchmarkRun(r.App, r.Name, dev, "hub", 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			reg, err := BenchmarkRun(r.App, r.Name, dev, "regional", 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			h := float64(hub.TotalEnergy)
			g := float64(reg.TotalEnergy)
			if diff := math.Abs(h-g) / h; diff > 0.10 {
				t.Errorf("%s/%s on %s: hub %v vs regional %v differ %.1f%%",
					r.App, r.Name, dev, hub.TotalEnergy, reg.TotalEnergy, 100*diff)
			}
		}
	}
}

func TestPaperPlacementRunnable(t *testing.T) {
	cluster := Testbed()
	for _, app := range Apps() {
		p := PaperPlacement(app.Name)
		if len(p) != 6 {
			t.Fatalf("%s: placement has %d entries", app.Name, len(p))
		}
		res, err := sim.Run(app, cluster, p, sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if res.TotalEnergy <= 0 {
			t.Errorf("%s: non-positive energy", app.Name)
		}
	}
}

// Training microservices must dominate per-microservice energy in the DEEP
// placement — the Figure 3a shape.
func TestTrainingDominatesEnergy(t *testing.T) {
	cluster := Testbed()
	for _, app := range Apps() {
		res, err := sim.Run(app, cluster, PaperPlacement(app.Name), sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var maxName string
		var maxE float64
		for _, m := range res.Microservices {
			if e := float64(m.TotalEnergy()); e > maxE {
				maxE, maxName = e, m.Name
			}
		}
		if maxName != app.Name+"/ha-train" {
			t.Errorf("%s: max-energy microservice = %s, want ha-train", app.Name, maxName)
		}
	}
}
