package workload

import (
	"fmt"
	"math"

	"deep/internal/dag"
	"deep/internal/sim"
	"deep/internal/units"
)

// StandaloneApp builds a single-microservice application for benchmarking
// one Table II row in isolation: the image is pulled from a registry and the
// microservice's whole input arrives from the source node, exactly the
// configuration the published benchmarks measured.
func StandaloneApp(appName, msName string) (*dag.App, error) {
	r, ok := Row(appName, msName)
	if !ok {
		return nil, fmt.Errorf("workload: no Table II row for %s/%s", appName, msName)
	}
	d := Derive(r)
	ref, _ := CatalogRef(appName, msName)
	a := dag.NewApp("bench-" + appName + "-" + msName)
	m := &dag.Microservice{
		Name:      appName + "/" + msName,
		ImageSize: units.Bytes(math.Round(r.SizeGB * float64(units.GB))),
		Images: map[string]string{
			"hub":      ref.Hub,
			"regional": ref.Regional,
		},
		Req: dag.Requirements{
			Cores:   coresFor(msName),
			CPU:     d.CPU,
			Memory:  memoryFor(msName),
			Storage: d.InputSize,
		},
		Arches:        []dag.Arch{dag.AMD64, dag.ARM64},
		ExternalInput: d.InputSize,
	}
	if err := a.AddMicroservice(m); err != nil {
		return nil, err
	}
	return a, nil
}

// BenchmarkRun simulates one Table II benchmark: the microservice deployed
// from the given registry onto the given device, with measurement jitter
// driven by trial.
func BenchmarkRun(appName, msName, deviceName, registry string, trial int64, jitter float64) (*sim.Result, error) {
	app, err := StandaloneApp(appName, msName)
	if err != nil {
		return nil, err
	}
	cluster := Testbed()
	placement := sim.Placement{
		appName + "/" + msName: {Device: deviceName, Registry: registry},
	}
	return sim.Run(app, cluster, placement, sim.Options{Seed: trial, Jitter: jitter})
}
