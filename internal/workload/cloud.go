package workload

import (
	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/sim"
	"deep/internal/units"
)

// Cloud-tier extension: the paper's conclusion plans to "extend this
// energy-aware nash-based model to schedule the computation between cloud
// and edge". CloudTestbed adds a data-center device to the calibrated edge
// testbed: an order of magnitude faster and more compute-efficient per
// instruction, co-located with Docker Hub's CDN, but separated from the
// edge (and the data sources) by a WAN whose bandwidth the caller chooses.
// The same Nash game then decides which stages to offload.

// Cloud device constants.
const (
	CloudNode                = "cloud"
	CloudSpeed   units.MIPS  = 100000
	CloudHubBW               = 200 * units.MBps
	CloudIdleW   units.Watts = 1.5
	CloudTransfW units.Watts = 2.0
	CloudProcW   units.Watts = 12.0
)

// CloudTestbed returns the calibrated testbed extended with a cloud device
// reachable over a WAN of the given bandwidth. The cloud runs amd64 images
// only, like a typical x86 data center.
func CloudTestbed(wanBW units.Bandwidth) *sim.Cluster {
	cluster := Testbed()

	pm := energy.LinearModel{
		StaticW:     CloudIdleW,
		PullW:       CloudTransfW - CloudIdleW,
		ReceiveW:    CloudTransfW - CloudIdleW,
		ProcessingW: CloudProcW - CloudIdleW,
	}
	cloud := device.New(CloudNode, dag.AMD64, 32, CloudSpeed, 128*units.GB, 1000*units.GB, pm)
	cluster.Devices = append(cluster.Devices, cloud)

	topo := cluster.Topology
	topo.AddNode(CloudNode)
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	// Docker Hub's CDN is effectively co-located with the cloud.
	must(topo.AddLink(netsim.Link{From: HubNode, To: CloudNode, BW: CloudHubBW, RTT: 0.2}))
	// The regional registry reaches the cloud over the same WAN.
	must(topo.AddLink(netsim.Link{From: RegionalNode, To: CloudNode, BW: wanBW, RTT: RegionalSetupTime, SharedCapacity: true}))
	// Edge <-> cloud dataflows cross the WAN.
	must(topo.AddDuplex(MediumNode, CloudNode, wanBW))
	must(topo.AddDuplex(SmallNode, CloudNode, wanBW))
	// External sources (cameras, S3 buckets) feed the cloud over the WAN
	// too.
	must(topo.AddLink(netsim.Link{From: SourceNode, To: CloudNode, BW: wanBW}))

	return cluster
}
