package workload

import (
	"testing"

	"deep/internal/sched"
	"deep/internal/sim"
)

func TestGenerateValidApps(t *testing.T) {
	for _, n := range []int{1, 2, 6, 12, 30} {
		for seed := int64(0); seed < 5; seed++ {
			app, err := Generate(DefaultGeneratorConfig(n, seed))
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if len(app.Microservices) != n {
				t.Errorf("n=%d: got %d microservices", n, len(app.Microservices))
			}
			if err := app.Validate(); err != nil {
				t.Errorf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a1, err := Generate(DefaultGeneratorConfig(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Generate(DefaultGeneratorConfig(10, 42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a1.Dataflows) != len(a2.Dataflows) {
		t.Fatal("edge counts differ")
	}
	for i := range a1.Dataflows {
		if a1.Dataflows[i] != a2.Dataflows[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range a1.Microservices {
		if a1.Microservices[i].ImageSize != a2.Microservices[i].ImageSize {
			t.Fatalf("microservice %d size differs", i)
		}
	}
}

func TestGenerateBoundsRespected(t *testing.T) {
	cfg := DefaultGeneratorConfig(20, 7)
	app, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range app.Microservices {
		if m.ImageSize < cfg.ImageSizeMin || m.ImageSize > cfg.ImageSizeMax {
			t.Errorf("%s: image size %v out of bounds", m.Name, m.ImageSize)
		}
		if m.Req.CPU < cfg.CPUMin || m.Req.CPU > cfg.CPUMax {
			t.Errorf("%s: CPU %v out of bounds", m.Name, m.Req.CPU)
		}
	}
	for _, e := range app.Dataflows {
		if e.Size < cfg.DataflowMin || e.Size > cfg.DataflowMax {
			t.Errorf("%s->%s: size %v out of bounds", e.From, e.To, e.Size)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(GeneratorConfig{Microservices: 0}); err == nil {
		t.Error("zero microservices accepted")
	}
	bad := DefaultGeneratorConfig(3, 0)
	bad.ImageSizeMax = bad.ImageSizeMin - 1
	if _, err := Generate(bad); err == nil {
		t.Error("inverted bounds accepted")
	}
}

// Generated applications must be schedulable and runnable on the testbed —
// the integration property the sweeps rely on.
func TestGeneratedAppsScheduleAndRun(t *testing.T) {
	cluster := Testbed()
	for seed := int64(0); seed < 5; seed++ {
		app, err := Generate(DefaultGeneratorConfig(8, seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range []sched.Scheduler{sched.NewDEEP(), sched.NewGreedyEnergy()} {
			p, err := s.Schedule(app, cluster)
			if err != nil {
				t.Fatalf("seed=%d %s: %v", seed, s.Name(), err)
			}
			res, err := sim.Run(app, cluster, p, sim.Options{})
			if err != nil {
				t.Fatalf("seed=%d %s: %v", seed, s.Name(), err)
			}
			if res.TotalEnergy <= 0 || res.Makespan <= 0 {
				t.Errorf("seed=%d %s: degenerate result", seed, s.Name())
			}
		}
	}
}

// DEEP must never lose to greedy on synthetic workloads either.
func TestDEEPRobustOnSyntheticWorkloads(t *testing.T) {
	cluster := Testbed()
	for seed := int64(0); seed < 10; seed++ {
		app, err := Generate(DefaultGeneratorConfig(10, seed))
		if err != nil {
			t.Fatal(err)
		}
		pDeep, err := sched.NewDEEP().Schedule(app, cluster)
		if err != nil {
			t.Fatal(err)
		}
		rDeep, err := sim.Run(app, cluster, pDeep, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		pGreedy, err := sched.NewGreedyEnergy().Schedule(app, cluster)
		if err != nil {
			t.Fatal(err)
		}
		rGreedy, err := sim.Run(app, cluster, pGreedy, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if float64(rDeep.TotalEnergy) > float64(rGreedy.TotalEnergy)*1.02 {
			t.Errorf("seed=%d: deep %.0fJ much worse than greedy %.0fJ",
				seed, float64(rDeep.TotalEnergy), float64(rGreedy.TotalEnergy))
		}
	}
}
