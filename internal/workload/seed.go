package workload

import (
	"fmt"
	"math"

	"deep/internal/registry"
	"deep/internal/units"
)

// SeedCatalog pushes the full Table I image catalog into a registry through
// its client, with image payloads scaled down by `scale` (e.g. 100_000 turns
// a 5.78 GB image into ≈58 KB) so emulation runs stay fast while preserving
// relative sizes. Each image is pushed for both architectures, with a
// manifest list under the tag "latest", mirroring how the paper tags amd64
// and arm64 variants. regName selects which repository path of Table I to
// use ("hub" or "regional"). It returns the per-microservice references.
func SeedCatalog(c *registry.Client, regName string, scale int64) (map[string]registry.Reference, error) {
	if scale < 1 {
		scale = 1
	}
	refs := make(map[string]registry.Reference, len(TableI))
	for _, entry := range TableI {
		row, ok := Row(entry.App, entry.Name)
		if !ok {
			return nil, fmt.Errorf("workload: no Table II row for %s/%s", entry.App, entry.Name)
		}
		repo := entry.Hub
		if regName == "regional" {
			repo = "aau/" + shortName(entry.Regional)
		}
		size := int64(math.Round(row.SizeGB * float64(units.GB) / float64(scale)))
		if size < 64 {
			size = 64
		}
		// A shared synthetic "python:3.9-slim base" layer (10 % of the
		// payload) plus a unique application layer, per architecture.
		var childDigests []registry.PlatformManifest
		for _, arch := range []string{"amd64", "arm64"} {
			base := syntheticLayer("base-python39-"+arch, size/10)
			app := syntheticLayer(entry.App+"/"+entry.Name+"/"+arch, size-size/10)
			config := []byte(fmt.Sprintf(`{"architecture":%q,"os":"linux"}`, arch))
			d, err := c.Push(repo, arch, config, [][]byte{base, app})
			if err != nil {
				return nil, fmt.Errorf("workload: seed %s (%s): %w", repo, arch, err)
			}
			childDigests = append(childDigests, registry.PlatformManifest{
				Descriptor: registry.Descriptor{MediaType: registry.MediaTypeManifest, Digest: d},
				Platform:   registry.Platform{Architecture: arch, OS: "linux"},
			})
		}
		list := registry.ManifestList{
			SchemaVersion: 2,
			MediaType:     registry.MediaTypeManifestList,
			Manifests:     childDigests,
		}
		raw, err := registry.MarshalCanonical(list)
		if err != nil {
			return nil, err
		}
		if _, err := c.PushManifest(repo, "latest", registry.MediaTypeManifestList, raw); err != nil {
			return nil, fmt.Errorf("workload: seed manifest list %s: %w", repo, err)
		}
		ref, err := registry.ParseReference(repo + ":latest")
		if err != nil {
			return nil, err
		}
		refs[entry.App+"/"+entry.Name] = ref
	}
	return refs, nil
}

// shortName extracts the repository basename from a Table I regional path
// like "dcloud2.itec.aau.at/aau/vp-transcode".
func shortName(path string) string {
	last := path
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			last = path[i+1:]
			break
		}
	}
	return last
}

// syntheticLayer produces deterministic pseudo-random layer bytes seeded by
// the label, so the same (label, size) always yields the same digest —
// which is what makes base layers shareable across images and registries.
func syntheticLayer(label string, size int64) []byte {
	if size < 1 {
		size = 1
	}
	out := make([]byte, size)
	// xorshift64 seeded from the label.
	var seed uint64 = 1469598103934665603
	for _, c := range []byte(label) {
		seed ^= uint64(c)
		seed *= 1099511628211
	}
	x := seed
	for i := range out {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out[i] = byte(x)
	}
	return out
}
