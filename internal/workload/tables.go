// Package workload defines DEEP's two case-study applications (video and
// text processing), the calibrated two-device testbed, and the Table I image
// catalog. All synthetic model parameters — processing loads, dataflow
// sizes, and per-microservice power draws — are derived from the ranges the
// paper publishes in Table II, so the simulator reproduces those benchmarks
// by construction and everything else (Table III, Figures 3a/3b) follows
// from the model.
package workload

// BenchRow is one row of the paper's Table II: the published benchmark of a
// microservice deployed from the registries and executed on the two edge
// devices.
type BenchRow struct {
	App  string // "video" or "text"
	Name string

	SizeGB float64 // Size_{m_i} in GB

	TpMin, TpMax float64 // processing time [s]
	CTMin, CTMax float64 // completion time [s]

	ECMedMin, ECMedMax     float64 // energy on the medium device [J]
	ECSmallMin, ECSmallMax float64 // energy on the small device [J]
}

// TpMid returns the midpoint of the published processing-time range.
func (r BenchRow) TpMid() float64 { return (r.TpMin + r.TpMax) / 2 }

// CTMid returns the midpoint of the published completion-time range.
func (r BenchRow) CTMid() float64 { return (r.CTMin + r.CTMax) / 2 }

// ECMedMid returns the midpoint of the published medium-device energy.
func (r BenchRow) ECMedMid() float64 { return (r.ECMedMin + r.ECMedMax) / 2 }

// ECSmallMid returns the midpoint of the published small-device energy.
func (r BenchRow) ECSmallMid() float64 { return (r.ECSmallMin + r.ECSmallMax) / 2 }

// TableII is the paper's Table II verbatim.
var TableII = []BenchRow{
	// Video processing.
	{App: "video", Name: "transcode", SizeGB: 0.17, TpMin: 17.5, TpMax: 19, CTMin: 82, CTMax: 85, ECMedMin: 856, ECMedMax: 859, ECSmallMin: 340, ECSmallMax: 355},
	{App: "video", Name: "frame", SizeGB: 0.70, TpMin: 10, TpMax: 20, CTMin: 147, CTMax: 184, ECMedMin: 355, ECMedMax: 378, ECSmallMin: 557, ECSmallMax: 679},
	{App: "video", Name: "ha-train", SizeGB: 5.78, TpMin: 121, TpMax: 124, CTMin: 1071, CTMax: 1421, ECMedMin: 3240, ECMedMax: 3288, ECSmallMin: 4654, ECSmallMax: 5472},
	{App: "video", Name: "la-train", SizeGB: 5.78, TpMin: 87, TpMax: 97, CTMin: 1058, CTMax: 1297, ECMedMin: 1834, ECMedMax: 1849, ECSmallMin: 3995, ECSmallMax: 4700},
	{App: "video", Name: "ha-infer", SizeGB: 3.53, TpMin: 38, TpMax: 41, CTMin: 356, CTMax: 435, ECMedMin: 849, ECMedMax: 850, ECSmallMin: 1423, ECSmallMax: 1602},
	{App: "video", Name: "la-infer", SizeGB: 3.54, TpMin: 38, TpMax: 40, CTMin: 350, CTMax: 429, ECMedMin: 819, ECMedMax: 842, ECSmallMin: 1400, ECSmallMax: 1590},
	// Text processing.
	{App: "text", Name: "retrieve", SizeGB: 0.14, TpMin: 42, TpMax: 58, CTMin: 331, CTMax: 334, ECMedMin: 144, ECMedMax: 173, ECSmallMin: 1136, ECSmallMax: 1183},
	{App: "text", Name: "decompress", SizeGB: 0.78, TpMin: 27, TpMax: 55, CTMin: 290, CTMax: 331, ECMedMin: 415, ECMedMax: 432, ECSmallMin: 1037, ECSmallMax: 1143},
	{App: "text", Name: "ha-train", SizeGB: 2.36, TpMin: 139, TpMax: 144, CTMin: 427, CTMax: 507, ECMedMin: 3482, ECMedMax: 3728, ECSmallMin: 1638, ECSmallMax: 1903},
	{App: "text", Name: "la-train", SizeGB: 2.36, TpMin: 87, TpMax: 89, CTMin: 288, CTMax: 363, ECMedMin: 1622, ECMedMax: 1642, ECSmallMin: 870, ECSmallMax: 985},
	{App: "text", Name: "ha-score", SizeGB: 0.63, TpMin: 74, TpMax: 76, CTMin: 177, CTMax: 211, ECMedMin: 1228, ECMedMax: 1319, ECSmallMin: 675, ECSmallMax: 786},
	{App: "text", Name: "la-score", SizeGB: 0.63, TpMin: 75, TpMax: 78, CTMin: 175, CTMax: 210, ECMedMin: 1295, ECMedMax: 1299, ECSmallMin: 670, ECSmallMax: 785},
}

// Row returns the Table II row for an (app, microservice) pair.
func Row(app, name string) (BenchRow, bool) {
	for _, r := range TableII {
		if r.App == app && r.Name == name {
			return r, true
		}
	}
	return BenchRow{}, false
}

// Rows returns all Table II rows belonging to one application.
func Rows(app string) []BenchRow {
	var out []BenchRow
	for _, r := range TableII {
		if r.App == app {
			out = append(out, r)
		}
	}
	return out
}

// ImageRef is one entry of the paper's Table I: the repository paths of one
// microservice image on both registries.
type ImageRef struct {
	App      string
	Name     string
	Hub      string // Docker Hub repository
	Regional string // AAU regional registry repository
}

// TableI is the paper's Table I image catalog (the duplicated vp-ha-infer
// row of the paper is listed once).
var TableI = []ImageRef{
	{App: "video", Name: "transcode", Hub: "sina88/vp-transcode", Regional: "dcloud2.itec.aau.at/aau/vp-transcode"},
	{App: "video", Name: "frame", Hub: "sina88/vp-frame", Regional: "dcloud2.itec.aau.at/aau/vp-frame"},
	{App: "video", Name: "ha-train", Hub: "sina88/vp-ha-train", Regional: "dcloud2.itec.aau.at/aau/vp-ha-train"},
	{App: "video", Name: "ha-infer", Hub: "sina88/vp-ha-infer", Regional: "dcloud2.itec.aau.at/aau/vp-ha-infer"},
	{App: "video", Name: "la-train", Hub: "sina88/vp-la-train", Regional: "dcloud2.itec.aau.at/aau/vp-la-train"},
	{App: "video", Name: "la-infer", Hub: "sina88/vp-la-infer", Regional: "dcloud2.itec.aau.at/aau/vp-la-infer"},
	{App: "text", Name: "retrieve", Hub: "sina88/tp-retrieve", Regional: "dcloud2.itec.aau.at/aau/tp-retrieve"},
	{App: "text", Name: "decompress", Hub: "sina88/tp-decompress", Regional: "dcloud2.itec.aau.at/aau/tp-decompress"},
	{App: "text", Name: "ha-train", Hub: "sina88/tp-ha-train", Regional: "dcloud2.itec.aau.at/aau/tp-ha-train"},
	{App: "text", Name: "la-train", Hub: "sina88/tp-la-train", Regional: "dcloud2.itec.aau.at/aau/tp-la-train"},
	{App: "text", Name: "ha-score", Hub: "sina88/tp-ha-score", Regional: "dcloud2.itec.aau.at/aau/tp-ha-score"},
	{App: "text", Name: "la-score", Hub: "sina88/tp-la-score", Regional: "dcloud2.itec.aau.at/aau/tp-la-score"},
}

// CatalogRef returns the Table I entry for an (app, microservice) pair.
func CatalogRef(app, name string) (ImageRef, bool) {
	for _, r := range TableI {
		if r.App == app && r.Name == name {
			return r, true
		}
	}
	return ImageRef{}, false
}

// TableIII is the paper's reported DEEP deployment distribution, expressed
// as the expected assignment of each microservice. Video: 5/6 on the medium
// device from Docker Hub and 1/6 on the small device from the regional
// registry; text: 1/6 medium/Hub, 1/6 medium/regional, 4/6 small/regional.
var TableIII = map[string]map[string][2]string{
	"video": {
		"transcode": {"small", "regional"},
		"frame":     {"medium", "hub"},
		"ha-train":  {"medium", "hub"},
		"la-train":  {"medium", "hub"},
		"ha-infer":  {"medium", "hub"},
		"la-infer":  {"medium", "hub"},
	},
	"text": {
		"retrieve":   {"medium", "regional"},
		"decompress": {"medium", "hub"},
		"ha-train":   {"small", "regional"},
		"la-train":   {"small", "regional"},
		"ha-score":   {"small", "regional"},
		"la-score":   {"small", "regional"},
	},
}
