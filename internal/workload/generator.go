package workload

import (
	"fmt"
	"math/rand"

	"deep/internal/dag"
	"deep/internal/units"
)

// GeneratorConfig parameterizes synthetic dataflow applications for
// scalability sweeps beyond the paper's two six-microservice case studies.
type GeneratorConfig struct {
	// Microservices is the number of vertices (≥ 1).
	Microservices int
	// StageWidth bounds how many microservices share a barrier stage
	// (≥ 1); the generator lays vertices into stages of random width up to
	// this bound and wires each stage to the previous one.
	StageWidth int
	// ImageSize bounds the containerized image sizes.
	ImageSizeMin, ImageSizeMax units.Bytes
	// CPU bounds the processing loads in MI.
	CPUMin, CPUMax units.MI
	// DataflowSize bounds the edge payloads.
	DataflowMin, DataflowMax units.Bytes
	// Seed drives the deterministic generator.
	Seed int64
}

// DefaultGeneratorConfig returns a config producing pipelines shaped like
// the paper's case studies but of arbitrary size.
func DefaultGeneratorConfig(n int, seed int64) GeneratorConfig {
	return GeneratorConfig{
		Microservices: n,
		StageWidth:    2,
		ImageSizeMin:  100 * units.MB, ImageSizeMax: 6 * units.GB,
		CPUMin: 100_000, CPUMax: 4_000_000,
		DataflowMin: 50 * units.MB, DataflowMax: 2 * units.GB,
		Seed: seed,
	}
}

// Generate builds a random layered DAG application. The same config always
// yields the same application.
func Generate(cfg GeneratorConfig) (*dag.App, error) {
	if cfg.Microservices < 1 {
		return nil, fmt.Errorf("workload: need at least 1 microservice")
	}
	if cfg.StageWidth < 1 {
		cfg.StageWidth = 1
	}
	if cfg.ImageSizeMax < cfg.ImageSizeMin || cfg.CPUMax < cfg.CPUMin || cfg.DataflowMax < cfg.DataflowMin {
		return nil, fmt.Errorf("workload: inverted generator bounds")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	app := dag.NewApp(fmt.Sprintf("synthetic-%d-%d", cfg.Microservices, cfg.Seed))

	// Lay microservices into stages.
	var stages [][]string
	made := 0
	for made < cfg.Microservices {
		width := 1 + rng.Intn(cfg.StageWidth)
		if len(stages) == 0 {
			// A single-source first stage keeps the graph connected: every
			// later vertex reaches back to it through its stage's edges.
			width = 1
		}
		if width > cfg.Microservices-made {
			width = cfg.Microservices - made
		}
		var stage []string
		for i := 0; i < width; i++ {
			name := fmt.Sprintf("ms-%02d", made)
			made++
			m := &dag.Microservice{
				Name:      name,
				ImageSize: randBytes(rng, cfg.ImageSizeMin, cfg.ImageSizeMax),
				Req: dag.Requirements{
					Cores:  1,
					CPU:    randMI(rng, cfg.CPUMin, cfg.CPUMax),
					Memory: units.GB,
				},
				Arches: []dag.Arch{dag.AMD64, dag.ARM64},
			}
			if len(stages) == 0 {
				m.ExternalInput = randBytes(rng, cfg.DataflowMin, cfg.DataflowMax)
			}
			if err := app.AddMicroservice(m); err != nil {
				return nil, err
			}
			stage = append(stage, name)
		}
		stages = append(stages, stage)
	}
	// Wire each stage to the previous: every vertex gets at least one
	// incoming edge from a random member of the prior stage; extra edges
	// keep the graph interesting.
	for si := 1; si < len(stages); si++ {
		prev := stages[si-1]
		for _, to := range stages[si] {
			from := prev[rng.Intn(len(prev))]
			if err := app.AddDataflow(from, to, randBytes(rng, cfg.DataflowMin, cfg.DataflowMax)); err != nil {
				return nil, err
			}
		}
		// Make sure every member of the previous stage feeds someone, so
		// the DAG stays connected.
		for _, from := range prev {
			if len(app.Outputs(from)) == 0 {
				to := stages[si][rng.Intn(len(stages[si]))]
				if err := app.AddDataflow(from, to, randBytes(rng, cfg.DataflowMin, cfg.DataflowMax)); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated app invalid: %w", err)
	}
	return app, nil
}

func randBytes(rng *rand.Rand, lo, hi units.Bytes) units.Bytes {
	if hi <= lo {
		return lo
	}
	return lo + units.Bytes(rng.Int63n(int64(hi-lo)))
}

func randMI(rng *rand.Rand, lo, hi units.MI) units.MI {
	if hi <= lo {
		return lo
	}
	return lo + units.MI(rng.Float64()*float64(hi-lo))
}
