package workload

import (
	"testing"

	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
)

func TestCloudTestbedShape(t *testing.T) {
	c := CloudTestbed(15 * units.MBps)
	if len(c.Devices) != 3 {
		t.Fatalf("devices = %d", len(c.Devices))
	}
	cloud := c.Device(CloudNode)
	if cloud == nil {
		t.Fatal("no cloud device")
	}
	if cloud.Speed <= c.Device(MediumNode).Speed {
		t.Error("cloud should be faster than the medium edge device")
	}
	for _, reg := range []string{HubNode, RegionalNode} {
		if _, ok := c.Topology.LinkBetween(reg, CloudNode); !ok {
			t.Errorf("no link %s -> cloud", reg)
		}
	}
}

// With a reasonable WAN the Nash scheduler offloads the compute-heavy
// training stages to the cloud; with a starved WAN everything stays at the
// edge — the cloud-edge trade-off the paper's future work targets.
func TestCloudOffloadTradeoff(t *testing.T) {
	app := TextProcessing()

	fast := CloudTestbed(15 * units.MBps)
	pFast, err := sched.NewDEEP().Schedule(app, fast)
	if err != nil {
		t.Fatal(err)
	}
	offloaded := 0
	for _, a := range pFast {
		if a.Device == CloudNode {
			offloaded++
		}
	}
	if offloaded == 0 {
		t.Error("fast WAN: expected at least one microservice offloaded to the cloud")
	}
	trainOffloaded := pFast["text/ha-train"].Device == CloudNode || pFast["text/la-train"].Device == CloudNode
	if !trainOffloaded {
		t.Errorf("fast WAN: training should be cloud-worthy, got %v", pFast)
	}
	// Retrieve stays at the edge: its energy is transfer-dominated and the
	// dataset crosses the WAN otherwise.
	if pFast["text/retrieve"].Device == CloudNode {
		t.Error("fast WAN: retrieve should stay at the edge")
	}

	slow := CloudTestbed(unitsMBps(1))
	pSlow, err := sched.NewDEEP().Schedule(app, slow)
	if err != nil {
		t.Fatal(err)
	}
	for ms, a := range pSlow {
		if a.Device == CloudNode {
			t.Errorf("slow WAN: %s offloaded to cloud", ms)
		}
	}
}

func unitsMBps(f float64) units.Bandwidth { return units.Bandwidth(f) * units.MBps }

// Offloading must actually reduce simulated energy relative to the
// edge-only placement when the scheduler chooses it.
func TestCloudOffloadSavesEnergy(t *testing.T) {
	app := TextProcessing()
	cluster := CloudTestbed(15 * units.MBps)

	pCloud, err := sched.NewDEEP().Schedule(app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	resCloud, err := sim.Run(app, cluster, pCloud, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Edge-only: the paper's Table III placement on the same 3-device
	// cluster.
	resEdge, err := sim.Run(app, cluster, PaperPlacement("text"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resCloud.TotalEnergy >= resEdge.TotalEnergy {
		t.Errorf("cloud offload did not help: %v vs edge-only %v", resCloud.TotalEnergy, resEdge.TotalEnergy)
	}
}

// The video pipeline's huge interstage dataflows should keep training at
// the edge even over the default WAN: moving 10+ GB of frames across
// 15 MB/s costs more than the compute savings.
func TestCloudVideoStaysMostlyEdge(t *testing.T) {
	app := VideoProcessing()
	cluster := CloudTestbed(15 * units.MBps)
	p, err := sched.NewDEEP().Schedule(app, cluster)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(app, cluster, p, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	edgeOnly, err := sim.Run(app, cluster, PaperPlacement("video"), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if float64(res.TotalEnergy) > float64(edgeOnly.TotalEnergy)*1.0001 {
		t.Errorf("cloud-aware schedule worse than edge-only: %v vs %v", res.TotalEnergy, edgeOnly.TotalEnergy)
	}
}
