package workload

import (
	"fmt"

	"deep/internal/device"
	"deep/internal/netsim"
	"deep/internal/sim"
)

// ScaledTestbed replicates the calibrated testbed's device pair n times:
// medium-00/small-00 … medium-(n-1)/small-(n-1), all sharing Docker Hub, the
// single regional registry (whose uplink capacity is divided among
// concurrent pulls, so contention grows with the fleet), and the source
// node. Every medium↔small pair and every inter-pair device link uses the
// calibrated interconnect bandwidth. ScaledTestbed(1) is topologically the
// paper's testbed with suffixed device names.
func ScaledTestbed(n int) *sim.Cluster {
	if n < 1 {
		n = 1
	}
	mediumPM, smallPM := powerModels()

	topo := netsim.NewTopology()
	for _, node := range []string{HubNode, RegionalNode, SourceNode} {
		topo.AddNode(node)
	}
	mustLink := func(l netsim.Link) {
		if err := topo.AddLink(l); err != nil {
			panic(fmt.Sprintf("workload: scaled testbed topology: %v", err))
		}
	}

	var devices []*device.Device
	var names []string
	for i := 0; i < n; i++ {
		medName := fmt.Sprintf("%s-%02d", MediumNode, i)
		smallName := fmt.Sprintf("%s-%02d", SmallNode, i)
		devices = append(devices,
			device.MediumIntelSpec(mediumPM).WithName(medName),
			device.SmallARMSpec(smallPM).WithName(smallName),
		)
		topo.AddNode(medName)
		topo.AddNode(smallName)
		mustLink(netsim.Link{From: HubNode, To: medName, BW: HubMediumBW, RTT: HubSetupTime})
		mustLink(netsim.Link{From: HubNode, To: smallName, BW: HubSmallBW, RTT: HubSetupTime})
		mustLink(netsim.Link{From: RegionalNode, To: medName, BW: RegionalMediumBW, RTT: RegionalSetupTime, SharedCapacity: true})
		mustLink(netsim.Link{From: RegionalNode, To: smallName, BW: RegionalSmallBW, RTT: RegionalSetupTime, SharedCapacity: true})
		mustLink(netsim.Link{From: SourceNode, To: medName, BW: InterconnectBW})
		mustLink(netsim.Link{From: SourceNode, To: smallName, BW: InterconnectBW})
		names = append(names, medName, smallName)
	}
	// Full mesh over the devices at the calibrated interconnect bandwidth:
	// dataflows may cross pairs once the scheduler spreads an app out.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if err := topo.AddDuplex(names[i], names[j], InterconnectBW); err != nil {
				panic(fmt.Sprintf("workload: scaled testbed topology: %v", err))
			}
		}
	}

	return &sim.Cluster{
		Devices: devices,
		Registries: []sim.RegistryInfo{
			{Name: "hub", Node: HubNode},
			{Name: "regional", Node: RegionalNode, Shared: true},
		},
		Topology:   topo,
		SourceNode: SourceNode,
	}
}
