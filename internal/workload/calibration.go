package workload

import (
	"fmt"
	"math"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/sim"
	"deep/internal/units"
)

// Calibration constants. The derivation (documented in DESIGN.md):
//
//   - Device speeds fix T_p: CPU(m_i) = TpMid · MediumSpeed, so the medium
//     device reproduces the published processing times and the small device
//     is 3× slower (i7-7700 vs. Raspberry Pi 4).
//   - The hub link has high CDN throughput but a fixed per-pull setup cost
//     (manifest resolution, auth, rate-limit token — several WAN round
//     trips); the regional registry is LAN-local with negligible setup but a
//     single server NIC (shared capacity). This makes the *hybrid* split an
//     equilibrium: large images amortize the hub's setup cost, small images
//     prefer the regional registry, and the Pi — sitting next to the
//     regional server — always prefers it.
//   - Dataflow sizes back out of the published completion times:
//     Size_ui = (CTMid − Td(hub→medium) − TpMid) · InterconnectBW.
//   - Per-(microservice, device) processing power backs out of the
//     published energy: P = (ECMid − P_transfer·(Td+Tc)) / Tp. The medium
//     device's transfer power is tiny because pyRAPL prices only the CPU
//     package while it idles on I/O; the small device's wall-socket meter
//     sees the whole board.
const (
	MediumSpeed units.MIPS = 30000 // effective MI/s of the i7-7700
	SmallSpeed  units.MIPS = 10000 // effective MI/s of the Raspberry Pi 4

	HubMediumBW  = 25 * units.MBps
	HubSmallBW   = 23 * units.MBps
	HubSetupTime = 1.0 // seconds per pull (CDN/auth round trips)

	RegionalMediumBW  = 22 * units.MBps
	RegionalSmallBW   = 24 * units.MBps
	RegionalSetupTime = 0.1 // seconds per pull (LAN)

	InterconnectBW = 12 * units.MBps // medium <-> small and source links

	MediumIdleW     units.Watts = 0.25
	MediumTransferW units.Watts = 0.3
	SmallIdleW      units.Watts = 0.9
	SmallTransferW  units.Watts = 2.0
)

// Node names of the testbed topology.
const (
	HubNode      = "hub"
	RegionalNode = "regional"
	MediumNode   = "medium"
	SmallNode    = "small"
	SourceNode   = "source"
)

// Derived holds every calibrated quantity for one microservice.
type Derived struct {
	Row       BenchRow
	CPU       units.MI    // processing load
	InputSize units.Bytes // total input dataflow (edge or external)

	ProcWMedium units.Watts // calibrated processing power on the medium device
	ProcWSmall  units.Watts // calibrated processing power on the small device
}

// Derive computes the calibrated model parameters for a Table II row.
func Derive(r BenchRow) Derived {
	tpMid := r.TpMid()
	cpu := units.MI(tpMid * float64(MediumSpeed))
	sizeBytes := units.Bytes(math.Round(r.SizeGB * float64(units.GB)))

	tdHubMedium := HubSetupTime + HubMediumBW.Seconds(sizeBytes)
	tc := r.CTMid() - tdHubMedium - tpMid
	if tc < 0 {
		tc = 0
	}
	input := units.Bytes(math.Round(tc * float64(InterconnectBW)))

	// Transfer times as seen by each device in the standalone benchmark
	// configuration (pull from the hub, input from the source node).
	tcSeconds := InterconnectBW.Seconds(input)
	tdHubSmall := HubSetupTime + HubSmallBW.Seconds(sizeBytes)

	procWMed := units.Watts((r.ECMedMid() - float64(MediumTransferW)*(tdHubMedium+tcSeconds)) / tpMid)
	tpSmall := SmallSpeed.Seconds(cpu)
	procWSmall := units.Watts((r.ECSmallMid() - float64(SmallTransferW)*(tdHubSmall+tcSeconds)) / tpSmall)

	return Derived{
		Row: r, CPU: cpu, InputSize: input,
		ProcWMedium: procWMed, ProcWSmall: procWSmall,
	}
}

// powerModels builds the calibrated TableModel for each device covering both
// applications. Microservice names are qualified as "<app>/<name>" to keep
// the two ha-train entries apart.
func powerModels() (medium, small energy.TableModel) {
	medium = energy.TableModel{
		Fallback:  energy.LinearModel{StaticW: MediumIdleW, PullW: MediumTransferW - MediumIdleW, ReceiveW: MediumTransferW - MediumIdleW, ProcessingW: 20},
		ProcessW:  make(map[string]units.Watts),
		TransferW: make(map[string]units.Watts),
	}
	small = energy.TableModel{
		Fallback:  energy.LinearModel{StaticW: SmallIdleW, PullW: SmallTransferW - SmallIdleW, ReceiveW: SmallTransferW - SmallIdleW, ProcessingW: 5},
		ProcessW:  make(map[string]units.Watts),
		TransferW: make(map[string]units.Watts),
	}
	for _, r := range TableII {
		d := Derive(r)
		key := r.App + "/" + r.Name
		medium.ProcessW[key] = d.ProcWMedium
		medium.TransferW[key] = MediumTransferW
		small.ProcessW[key] = d.ProcWSmall
		small.TransferW[key] = SmallTransferW
	}
	return medium, small
}

// Testbed builds the calibrated two-device cluster of the paper's Section
// IV-A: the medium Intel device, the small ARM device, Docker Hub, the
// MinIO-backed regional registry, and the interconnecting network.
func Testbed() *sim.Cluster {
	mediumPM, smallPM := powerModels()
	medium := device.New(MediumNode, dag.AMD64, 8, MediumSpeed, 16*units.GB, 64*units.GB, mediumPM)
	small := device.New(SmallNode, dag.ARM64, 4, SmallSpeed, 8*units.GB, 32*units.GB, smallPM)

	topo := netsim.NewTopology()
	for _, n := range []string{HubNode, RegionalNode, MediumNode, SmallNode, SourceNode} {
		topo.AddNode(n)
	}
	mustLink := func(l netsim.Link) {
		if err := topo.AddLink(l); err != nil {
			panic(fmt.Sprintf("workload: testbed topology: %v", err))
		}
	}
	mustLink(netsim.Link{From: HubNode, To: MediumNode, BW: HubMediumBW, RTT: HubSetupTime})
	mustLink(netsim.Link{From: HubNode, To: SmallNode, BW: HubSmallBW, RTT: HubSetupTime})
	mustLink(netsim.Link{From: RegionalNode, To: MediumNode, BW: RegionalMediumBW, RTT: RegionalSetupTime, SharedCapacity: true})
	mustLink(netsim.Link{From: RegionalNode, To: SmallNode, BW: RegionalSmallBW, RTT: RegionalSetupTime, SharedCapacity: true})
	if err := topo.AddDuplex(MediumNode, SmallNode, InterconnectBW); err != nil {
		panic(err)
	}
	mustLink(netsim.Link{From: SourceNode, To: MediumNode, BW: InterconnectBW})
	mustLink(netsim.Link{From: SourceNode, To: SmallNode, BW: InterconnectBW})

	return &sim.Cluster{
		Devices: []*device.Device{medium, small},
		Registries: []sim.RegistryInfo{
			{Name: "hub", Node: HubNode},
			{Name: "regional", Node: RegionalNode, Shared: true},
		},
		Topology:   topo,
		SourceNode: SourceNode,
	}
}

// buildApp assembles one case-study DAG from Table II rows plus the edge
// structure of Figure 2.
func buildApp(appName string, edges [][2]string, source string) *dag.App {
	a := dag.NewApp(appName)
	derived := make(map[string]Derived)
	for _, r := range Rows(appName) {
		d := Derive(r)
		derived[r.Name] = d
		ref, _ := CatalogRef(appName, r.Name)
		m := &dag.Microservice{
			Name:      appName + "/" + r.Name,
			ImageSize: units.Bytes(math.Round(r.SizeGB * float64(units.GB))),
			Images: map[string]string{
				"hub":      ref.Hub,
				"regional": ref.Regional,
			},
			Req: dag.Requirements{
				Cores:   coresFor(r.Name),
				CPU:     d.CPU,
				Memory:  memoryFor(r.Name),
				Storage: d.InputSize,
			},
			Arches: []dag.Arch{dag.AMD64, dag.ARM64},
		}
		if r.Name == source {
			m.ExternalInput = d.InputSize
		}
		if err := a.AddMicroservice(m); err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
	}
	for _, e := range edges {
		// The edge is sized by the *consumer's* input-budget so its
		// completion time matches Table II.
		size := derived[e[1]].InputSize
		if err := a.AddDataflow(appName+"/"+e[0], appName+"/"+e[1], size); err != nil {
			panic(fmt.Sprintf("workload: %v", err))
		}
	}
	if err := a.Validate(); err != nil {
		panic(fmt.Sprintf("workload: %v", err))
	}
	return a
}

func coresFor(name string) int {
	switch name {
	case "ha-train", "la-train":
		return 2
	default:
		return 1
	}
}

func memoryFor(name string) units.Bytes {
	switch name {
	case "ha-train", "la-train":
		return 2 * units.GB
	default:
		return units.GB
	}
}

// VideoProcessing builds the video pipeline of Figure 2a: transcode → frame
// → {LA,HA} train → {LA,HA} infer, with the camera feed as external input.
func VideoProcessing() *dag.App {
	return buildApp("video", [][2]string{
		{"transcode", "frame"},
		{"frame", "la-train"},
		{"frame", "ha-train"},
		{"la-train", "la-infer"},
		{"ha-train", "ha-infer"},
	}, "transcode")
}

// TextProcessing builds the text pipeline of Figure 2b: retrieve →
// decompress → {HA,LA} train → {HA,LA} score, with the S3 dataset as
// external input.
func TextProcessing() *dag.App {
	return buildApp("text", [][2]string{
		{"retrieve", "decompress"},
		{"decompress", "ha-train"},
		{"decompress", "la-train"},
		{"ha-train", "ha-score"},
		{"la-train", "la-score"},
	}, "retrieve")
}

// PaperPlacement returns the Table III placement for an application built by
// VideoProcessing or TextProcessing.
func PaperPlacement(appName string) sim.Placement {
	expected := TableIII[appName]
	p := make(sim.Placement, len(expected))
	for name, devReg := range expected {
		p[appName+"/"+name] = sim.Assignment{Device: devReg[0], Registry: devReg[1]}
	}
	return p
}

// Apps returns both case studies.
func Apps() []*dag.App {
	return []*dag.App{VideoProcessing(), TextProcessing()}
}
