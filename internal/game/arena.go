package game

// Arena is a bump allocator for the scratch a scheduler burns through while
// building and solving one game after another: payoff matrices, row/column
// price buffers, support-index buffers, and epoch-marked feasibility masks.
// Grab what a stage needs, Reset, repeat — in steady state nothing escapes
// to the garbage collector.
//
// Reset recycles every outstanding grant, so callers must not hold arena
// memory across a Reset. Mask reuse is epoch-marked: Reset bumps the epoch
// instead of clearing the backing words, making mask reset O(1). An Arena is
// not safe for concurrent use.
type Arena struct {
	epoch uint64

	floats []float64
	nf     int
	ints   []int
	ni     int
	marks  []uint64
	nmk    int

	mats []*Matrix
	nm   int
	gms  []*Game
	ng   int
}

// NewArena returns an empty arena; backing buffers grow on demand and are
// retained across Reset.
func NewArena() *Arena { return &Arena{epoch: 1} }

// Reset recycles all grants. Previously returned slices, matrices, masks,
// and games must no longer be used.
func (a *Arena) Reset() {
	a.nf, a.ni, a.nmk, a.nm, a.ng = 0, 0, 0, 0, 0
	a.epoch++
}

// Floats grants a zeroed float buffer of length n.
func (a *Arena) Floats(n int) []float64 {
	if a.nf+n > len(a.floats) {
		// Grow to fresh backing; grants from the old array stay valid until
		// the next Reset, they just aren't recycled this cycle.
		a.floats = make([]float64, grow(len(a.floats), n))
		a.nf = 0
	}
	out := a.floats[a.nf : a.nf+n]
	a.nf += n
	clear(out)
	return out
}

// Ints grants a zeroed int buffer of length n (support and current-index
// scratch).
func (a *Arena) Ints(n int) []int {
	if a.ni+n > len(a.ints) {
		a.ints = make([]int, grow(len(a.ints), n))
		a.ni = 0
	}
	out := a.ints[a.ni : a.ni+n]
	a.ni += n
	clear(out)
	return out
}

// Mask grants an all-clear feasibility mask of length n. The backing words
// are not cleared — the mask compares against the arena's current epoch, so
// stale bits from earlier cycles read as unset.
func (a *Arena) Mask(n int) Mask {
	if a.nmk+n > len(a.marks) {
		a.marks = make([]uint64, grow(len(a.marks), n))
		a.nmk = 0
	}
	out := a.marks[a.nmk : a.nmk+n]
	a.nmk += n
	return Mask{words: out, epoch: a.epoch}
}

// Matrix grants a zeroed rows×cols matrix backed by arena memory.
func (a *Arena) Matrix(rows, cols int) *Matrix {
	var m *Matrix
	if a.nm < len(a.mats) {
		m = a.mats[a.nm]
	} else {
		m = &Matrix{}
		a.mats = append(a.mats, m)
	}
	a.nm++
	m.Rows, m.Cols = rows, cols
	m.Data = a.Floats(rows * cols)
	return m
}

// NewFromArena builds a rows×cols bimatrix game whose zeroed payoff
// matrices live in arena memory — the allocation-free counterpart of
// New(NewMatrix(r, c), NewMatrix(r, c)).
func NewFromArena(a *Arena, rows, cols int) *Game {
	var g *Game
	if a.ng < len(a.gms) {
		g = a.gms[a.ng]
	} else {
		g = &Game{}
		a.gms = append(a.gms, g)
	}
	a.ng++
	*g = Game{A: a.Matrix(rows, cols), B: a.Matrix(rows, cols)}
	return g
}

// Mask is an epoch-marked set of indices handed out by an Arena: Set marks
// an index, Has tests it, and the owning arena's Reset clears the whole mask
// in O(1) by bumping the epoch.
type Mask struct {
	words []uint64
	epoch uint64
}

// Set marks index i.
func (m Mask) Set(i int) { m.words[i] = m.epoch }

// Has reports whether index i is marked.
func (m Mask) Has(i int) bool { return m.words[i] == m.epoch }

// Len returns the mask length.
func (m Mask) Len() int { return len(m.words) }

func grow(cur, need int) int {
	n := 2 * cur
	if n < need {
		n = need
	}
	if n < 64 {
		n = 64
	}
	return n
}
