package game

import (
	"errors"
	"fmt"
)

// Lemke-Howson computes a single Nash equilibrium of a bimatrix game by
// complementary pivoting on a pair of tableaux, as in nashpy's
// lemke_howson. Payoff matrices are first shifted to be strictly positive,
// which leaves the equilibrium set unchanged.

// ErrCycling is returned when Lemke-Howson fails to terminate within the
// pivot budget, which indicates a degenerate game for the chosen label.
var ErrCycling = errors.New("game: lemke-howson cycled (degenerate game)")

// LemkeHowson runs the Lemke-Howson algorithm with the given initial
// dropped label in [0, rows+cols). Labels 0..rows-1 belong to row
// strategies, rows..rows+cols-1 to column strategies. It returns one Nash
// equilibrium.
func (g *Game) LemkeHowson(initialLabel int) (Profile, error) {
	rows, cols := g.Shape()
	if initialLabel < 0 || initialLabel >= rows+cols {
		return Profile{}, fmt.Errorf("game: label %d out of range [0,%d)", initialLabel, rows+cols)
	}

	// Shift payoffs strictly positive; this preserves the equilibrium set.
	shift := 0.0
	if mn := g.A.Min(); mn <= 0 && -mn+1 > shift {
		shift = -mn + 1
	}
	if mn := g.B.Min(); mn <= 0 && -mn+1 > shift {
		shift = -mn + 1
	}
	a := g.A.Clone().Shift(shift)
	b := g.B.Clone().Shift(shift)

	// Column tableau: rows indexed by row-strategy slack labels 0..rows-1,
	// z variables are the row-player strategy variables? Standard LH setup:
	//   Tableau 1 (for the column player's polytope): Bᵀ, slacks labeled by
	//   column strategies, z variables labeled by row strategies → holds x.
	//   Tableau 2 (row player's polytope): A, slacks labeled by row
	//   strategies, z variables labeled by column strategies → holds y.
	// We follow nashpy: row_tableau built from A (basis: row slack labels
	// 0..rows-1 — wait, nashpy labels slacks of the *col* tableau with row
	// labels). Concretely:
	//   colTab: matrix Bᵀ (cols×rows): basic slack labels rows..rows+cols-1,
	//           z labels 0..rows-1. Basic solutions give x (row strategy).
	//   rowTab: matrix A (rows×cols): basic slack labels 0..rows-1,
	//           z labels rows..rows+cols-1. Basic solutions give y.
	colTab := newTableau(b.Transpose(), rows, cols, 0, rows)
	rowTab := newTableau(a, 0, rows, rows, cols)

	label := initialLabel
	// The tableau to pivot is the one where `label` is currently basic
	// (as a slack); initially all slacks are basic in their own tableau.
	var cur *tableau
	if colTab.hasBasic(label) {
		cur = colTab
	} else {
		cur = rowTab
	}
	other := func(t *tableau) *tableau {
		if t == colTab {
			return rowTab
		}
		return colTab
	}
	// First pivot: bring `label`'s complementary variable in? The classic
	// statement: drop label k; in the polytope where k was basic, pivot in
	// the variable with label k is *leaving*... Following nashpy: start by
	// entering `label` into the tableau where it is NOT basic.
	cur = other(cur)

	budget := 16 * (rows + cols) * (rows + cols)
	if budget < 512 {
		budget = 512
	}
	enter := label
	for iter := 0; ; iter++ {
		if iter > budget {
			return Profile{}, ErrCycling
		}
		dropped, ok := cur.pivot(enter)
		if !ok {
			return Profile{}, ErrCycling
		}
		if dropped == initialLabel {
			break
		}
		enter = dropped
		cur = other(cur)
	}

	x := colTab.extract(0, rows)
	y := rowTab.extract(rows, cols)
	if !normalize(x) || !normalize(y) {
		return Profile{}, ErrCycling
	}
	return Profile{Row: x, Col: y}, nil
}

// LemkeHowsonAny tries each label in turn and returns the first equilibrium
// verified by IsNash. It falls back to support enumeration when every label
// cycles (degenerate games).
func (g *Game) LemkeHowsonAny() (Profile, error) {
	rows, cols := g.Shape()
	for label := 0; label < rows+cols; label++ {
		p, err := g.LemkeHowson(label)
		if err != nil {
			continue
		}
		if g.IsNash(p.Row, p.Col, 1e-6) {
			return p, nil
		}
	}
	eqs := g.SupportEnumeration()
	if p, ok := g.SelectEquilibrium(eqs); ok {
		return p, nil
	}
	return Profile{}, ErrCycling
}

// tableau is a dictionary-form tableau for complementary pivoting. Each row
// corresponds to one basic variable; columns cover every label plus a
// constant column.
type tableau struct {
	nVars  int
	labels []int       // basic variable label per tableau row
	colMap []int       // label -> column index
	rows   [][]float64 // each of length nVars+1; last entry is the constant
}

// newTableau builds the tableau for the system s + M·z = 1. Slack variables
// carry labels [slackBase, slackBase+nSlacks) — one per matrix row — and the
// z variables carry labels [zBase, zBase+nZ) — one per matrix column.
func newTableau(m *Matrix, slackBase, nSlacks, zBase, nZ int) *tableau {
	if m.Rows != nSlacks || m.Cols != nZ {
		panic("game: tableau shape mismatch")
	}
	nVars := nSlacks + nZ
	t := &tableau{
		nVars:  nVars,
		labels: make([]int, nSlacks),
		colMap: make([]int, nVars),
		rows:   make([][]float64, nSlacks),
	}
	for i := 0; i < nSlacks; i++ {
		t.colMap[slackBase+i] = i
	}
	for j := 0; j < nZ; j++ {
		t.colMap[zBase+j] = nSlacks + j
	}
	for i := 0; i < nSlacks; i++ {
		row := make([]float64, nVars+1)
		row[i] = 1 // slack coefficient
		for j := 0; j < nZ; j++ {
			row[nSlacks+j] = m.At(i, j)
		}
		row[nVars] = 1
		t.rows[i] = row
		t.labels[i] = slackBase + i
	}
	return t
}

// hasBasic reports whether the label is currently basic.
func (t *tableau) hasBasic(label int) bool {
	for _, l := range t.labels {
		if l == label {
			return true
		}
	}
	return false
}

// pivot brings the variable with the given label into the basis using a
// minimum-ratio test and returns the label of the variable that left.
func (t *tableau) pivot(enter int) (dropped int, ok bool) {
	col := t.colMap[enter]
	bestRow := -1
	bestRatio := 0.0
	for i, row := range t.rows {
		c := row[col]
		if c > 1e-12 {
			ratio := row[t.nVars] / c
			if bestRow == -1 || ratio < bestRatio-1e-12 {
				bestRow, bestRatio = i, ratio
			}
		}
	}
	if bestRow == -1 {
		return 0, false
	}
	prow := t.rows[bestRow]
	pv := prow[col]
	for j := range prow {
		prow[j] /= pv
	}
	for i, row := range t.rows {
		if i == bestRow {
			continue
		}
		f := row[col]
		if f == 0 {
			continue
		}
		for j := range row {
			row[j] -= f * prow[j]
		}
	}
	dropped = t.labels[bestRow]
	t.labels[bestRow] = enter
	return dropped, true
}

// extract returns the values of the variables carrying labels [base,
// base+n), taking value 0 when non-basic.
func (t *tableau) extract(base, n int) []float64 {
	out := make([]float64, n)
	for i, l := range t.labels {
		if l >= base && l < base+n {
			v := t.rows[i][t.nVars]
			if v < 0 {
				v = 0
			}
			out[l-base] = v
		}
	}
	return out
}

func normalize(v []float64) bool {
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s <= 1e-12 {
		return false
	}
	for i := range v {
		v[i] /= s
	}
	return true
}
