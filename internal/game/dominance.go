package game

// Iterated elimination of strictly dominated strategies (IESDS). Removing a
// strictly dominated strategy never removes a Nash equilibrium, so solving
// the reduced game is sound and often dramatically cheaper.

// Reduced is a game together with the original indices of the surviving
// strategies.
type Reduced struct {
	Game    *Game
	RowOrig []int // surviving row index -> original row index
	ColOrig []int // surviving col index -> original col index
}

// EliminateDominated repeatedly removes strictly dominated pure strategies
// from both players until a fixed point. The returned mapping lets callers
// translate equilibria of the reduced game back to the original.
func (g *Game) EliminateDominated() Reduced {
	rows, cols := g.Shape()
	rowAlive := make([]bool, rows)
	colAlive := make([]bool, cols)
	for i := range rowAlive {
		rowAlive[i] = true
	}
	for j := range colAlive {
		colAlive[j] = true
	}

	changed := true
	for changed {
		changed = false
		// Row strategies: i dominated by k if A[k][j] > A[i][j] for all
		// alive j.
		for i := 0; i < rows; i++ {
			if !rowAlive[i] || countTrue(rowAlive) == 1 {
				continue
			}
			for k := 0; k < rows; k++ {
				if k == i || !rowAlive[k] {
					continue
				}
				if strictlyBetterRow(g.A, k, i, colAlive) {
					rowAlive[i] = false
					changed = true
					break
				}
			}
		}
		// Column strategies: j dominated by l under B.
		for j := 0; j < cols; j++ {
			if !colAlive[j] || countTrue(colAlive) == 1 {
				continue
			}
			for l := 0; l < cols; l++ {
				if l == j || !colAlive[l] {
					continue
				}
				if strictlyBetterCol(g.B, l, j, rowAlive) {
					colAlive[j] = false
					changed = true
					break
				}
			}
		}
	}

	rowOrig := aliveIndices(rowAlive)
	colOrig := aliveIndices(colAlive)
	a := NewMatrix(len(rowOrig), len(colOrig))
	b := NewMatrix(len(rowOrig), len(colOrig))
	for ri, i := range rowOrig {
		for cj, j := range colOrig {
			a.Set(ri, cj, g.A.At(i, j))
			b.Set(ri, cj, g.B.At(i, j))
		}
	}
	return Reduced{Game: New(a, b), RowOrig: rowOrig, ColOrig: colOrig}
}

// Expand maps a profile of the reduced game back to the original strategy
// space, assigning zero probability to eliminated strategies.
func (r Reduced) Expand(p Profile, origRows, origCols int) Profile {
	row := make([]float64, origRows)
	for ri, i := range r.RowOrig {
		row[i] = p.Row[ri]
	}
	col := make([]float64, origCols)
	for cj, j := range r.ColOrig {
		col[j] = p.Col[cj]
	}
	return Profile{Row: row, Col: col}
}

func strictlyBetterRow(a *Matrix, k, i int, colAlive []bool) bool {
	for j := 0; j < a.Cols; j++ {
		if !colAlive[j] {
			continue
		}
		if a.At(k, j) <= a.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func strictlyBetterCol(b *Matrix, l, j int, rowAlive []bool) bool {
	for i := 0; i < b.Rows; i++ {
		if !rowAlive[i] {
			continue
		}
		if b.At(i, l) <= b.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func countTrue(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

func aliveIndices(v []bool) []int {
	var out []int
	for i, b := range v {
		if b {
			out = append(out, i)
		}
	}
	return out
}
