package game

// Iterated elimination of strictly dominated strategies (IESDS). Removing a
// strictly dominated strategy never removes a Nash equilibrium, so solving
// the reduced game is sound and often dramatically cheaper.

// Reduced is a game together with the original indices of the surviving
// strategies.
type Reduced struct {
	Game    *Game
	RowOrig []int // surviving row index -> original row index
	ColOrig []int // surviving col index -> original col index
}

// EliminateDominated repeatedly removes strictly dominated pure strategies
// from both players until a fixed point. The returned mapping lets callers
// translate equilibria of the reduced game back to the original.
func (g *Game) EliminateDominated() Reduced {
	rows, cols := g.Shape()
	rowAlive := make([]bool, rows)
	colAlive := make([]bool, cols)
	for i := range rowAlive {
		rowAlive[i] = true
	}
	for j := range colAlive {
		colAlive[j] = true
	}

	changed := true
	for changed {
		changed = false
		// Row strategies: i dominated by k if A[k][j] > A[i][j] for all
		// alive j.
		for i := 0; i < rows; i++ {
			if !rowAlive[i] || countTrue(rowAlive) == 1 {
				continue
			}
			for k := 0; k < rows; k++ {
				if k == i || !rowAlive[k] {
					continue
				}
				if strictlyBetterRow(g.A, k, i, colAlive) {
					rowAlive[i] = false
					changed = true
					break
				}
			}
		}
		// Column strategies: j dominated by l under B.
		for j := 0; j < cols; j++ {
			if !colAlive[j] || countTrue(colAlive) == 1 {
				continue
			}
			for l := 0; l < cols; l++ {
				if l == j || !colAlive[l] {
					continue
				}
				if strictlyBetterCol(g.B, l, j, rowAlive) {
					colAlive[j] = false
					changed = true
					break
				}
			}
		}
	}

	rowOrig := aliveIndices(rowAlive)
	colOrig := aliveIndices(colAlive)
	a := NewMatrix(len(rowOrig), len(colOrig))
	b := NewMatrix(len(rowOrig), len(colOrig))
	for ri, i := range rowOrig {
		for cj, j := range colOrig {
			a.Set(ri, cj, g.A.At(i, j))
			b.Set(ri, cj, g.B.At(i, j))
		}
	}
	return Reduced{Game: New(a, b), RowOrig: rowOrig, ColOrig: colOrig}
}

// ReduceDominatedInPlace runs the same iterated elimination as
// EliminateDominated but without building a fresh game: the surviving
// payoffs are compacted into the top-left corner of A and B and the shapes
// updated, so arena-backed games reduce without allocating. rowOrig and
// colOrig are caller-provided scratch with capacity at least the game's
// original dimensions; on return rowOrig[:rows] and colOrig[:cols] map each
// surviving index back to its original one. Strict dominance never removes
// a Nash equilibrium and the compaction preserves strategy order, so
// solving the reduced game yields equilibria of the original, in the same
// scan order.
func (g *Game) ReduceDominatedInPlace(rowOrig, colOrig []int) (rows, cols int) {
	nr, nc := g.Shape()
	rowOrig = rowOrig[:nr]
	colOrig = colOrig[:nc]
	// The scratch doubles as alive flags during elimination, then is
	// rewritten into the surviving-index maps.
	for i := range rowOrig {
		rowOrig[i] = 1
	}
	for j := range colOrig {
		colOrig[j] = 1
	}

	changed := true
	for changed {
		changed = false
		for i := 0; i < nr; i++ {
			if rowOrig[i] == 0 || countNonzero(rowOrig) == 1 {
				continue
			}
			for k := 0; k < nr; k++ {
				if k == i || rowOrig[k] == 0 {
					continue
				}
				if strictlyBetterRowFlags(g.A, k, i, colOrig) {
					rowOrig[i] = 0
					changed = true
					break
				}
			}
		}
		for j := 0; j < nc; j++ {
			if colOrig[j] == 0 || countNonzero(colOrig) == 1 {
				continue
			}
			for l := 0; l < nc; l++ {
				if l == j || colOrig[l] == 0 {
					continue
				}
				if strictlyBetterColFlags(g.B, l, j, rowOrig) {
					colOrig[j] = 0
					changed = true
					break
				}
			}
		}
	}

	rows, cols = countNonzero(rowOrig), countNonzero(colOrig)
	// Compact survivors toward the top-left. In-place is safe because every
	// write lands at or before its read: ri <= i, cj <= j, cols <= nc.
	ri := 0
	for i := 0; i < nr; i++ {
		if rowOrig[i] == 0 {
			continue
		}
		cj := 0
		for j := 0; j < nc; j++ {
			if colOrig[j] == 0 {
				continue
			}
			g.A.Data[ri*cols+cj] = g.A.Data[i*nc+j]
			g.B.Data[ri*cols+cj] = g.B.Data[i*nc+j]
			cj++
		}
		ri++
	}
	// Rewrite the alive flags into index maps; writes trail reads here too.
	ri = 0
	for i, f := range rowOrig {
		if f != 0 {
			rowOrig[ri] = i
			ri++
		}
	}
	cj := 0
	for j, f := range colOrig {
		if f != 0 {
			colOrig[cj] = j
			cj++
		}
	}
	g.A.Rows, g.A.Cols, g.A.Data = rows, cols, g.A.Data[:rows*cols]
	g.B.Rows, g.B.Cols, g.B.Data = rows, cols, g.B.Data[:rows*cols]
	return rows, cols
}

// ReduceDominatedPrefiltered is ReduceDominatedInPlace with a row/column
// max-min dominance screen ahead of the full pairwise sweeps. If strategy k
// strictly dominates i, then evaluating k at i's best (argmax) and k's worst
// (argmin) alive columns gives two necessary conditions:
//
//	min_j A[k][j] > min_j A[i][j] + tol   and   max_j A[k][j] > max_j A[i][j] + tol
//
// so any candidate pair failing either can skip the O(cols) strictlyBetter
// scan outright. The screen runs only on the first sweep: that sweep sees
// every pair of the full game (the O(rows²·cols) bulk the screen exists
// for), and within it the stats stay exact for free — a row phase never
// changes column aliveness, so row extrema computed at its start hold
// throughout, and the column extrema are taken after it. Later sweeps
// re-scan only the few survivors, too little work to amortize fresh stats
// (maintaining them incrementally costs more than it saves — witness chains
// die repeatedly under mass elimination). The screen only skips pairs
// strictlyBetter would reject and candidates scan in the same order, so the
// elimination sequence — and therefore the surviving game, compaction, and
// index maps — is identical to ReduceDominatedInPlace on every input.
//
// fscratch is caller-provided float scratch with capacity at least
// 2*(rows+cols); arena-backed callers pass arena floats so the screen, like
// the reduction, allocates nothing.
func (g *Game) ReduceDominatedPrefiltered(rowOrig, colOrig []int, fscratch []float64) (rows, cols int) {
	const tol = 1e-12
	nr, nc := g.Shape()
	if nr == 0 || nc == 0 {
		// Degenerate shapes have nothing to screen; keep the pinned
		// behavior by running the reference reduction.
		return g.ReduceDominatedInPlace(rowOrig, colOrig)
	}
	rowOrig = rowOrig[:nr]
	colOrig = colOrig[:nc]
	rowMin := fscratch[:nr]
	rowMax := fscratch[nr : 2*nr]
	colMin := fscratch[2*nr : 2*nr+nc]
	colMax := fscratch[2*nr+nc : 2*nr+2*nc]
	for i := range rowOrig {
		rowOrig[i] = 1
	}
	for j := range colOrig {
		colOrig[j] = 1
	}
	aliveRows, aliveCols := nr, nc

	// First-sweep row phase: extrema of A over all columns (none eliminated
	// yet), valid for the whole phase.
	for i := 0; i < nr; i++ {
		lo, hi := g.A.At(i, 0), g.A.At(i, 0)
		for j := 1; j < nc; j++ {
			v := g.A.At(i, j)
			if v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		rowMin[i], rowMax[i] = lo, hi
	}
	for i := 0; i < nr; i++ {
		if rowOrig[i] == 0 || aliveRows == 1 {
			continue
		}
		for k := 0; k < nr; k++ {
			if k == i || rowOrig[k] == 0 {
				continue
			}
			if rowMin[k] <= rowMin[i]+tol || rowMax[k] <= rowMax[i]+tol {
				continue
			}
			if strictlyBetterRowFlags(g.A, k, i, colOrig) {
				rowOrig[i] = 0
				aliveRows--
				break
			}
		}
	}
	// First-sweep column phase: extrema of B over the rows that survived the
	// phase above.
	for j := 0; j < nc; j++ {
		lo, hi := 0.0, 0.0
		first := true
		for i := 0; i < nr; i++ {
			if rowOrig[i] == 0 {
				continue
			}
			v := g.B.At(i, j)
			if first {
				lo, hi, first = v, v, false
			} else if v < lo {
				lo = v
			} else if v > hi {
				hi = v
			}
		}
		colMin[j], colMax[j] = lo, hi
	}
	for j := 0; j < nc; j++ {
		if colOrig[j] == 0 || aliveCols == 1 {
			continue
		}
		for l := 0; l < nc; l++ {
			if l == j || colOrig[l] == 0 {
				continue
			}
			if colMin[l] <= colMin[j]+tol || colMax[l] <= colMax[j]+tol {
				continue
			}
			if strictlyBetterColFlags(g.B, l, j, rowOrig) {
				colOrig[j] = 0
				aliveCols--
				break
			}
		}
	}

	// Later sweeps: the unscreened fixed-point loop over the survivors. The
	// first sweep above eliminated at least as much as an unscreened first
	// sweep's... exactly as much — identical sequence — so entering here
	// unconditionally reproduces ReduceDominatedInPlace's remaining sweeps.
	changed := aliveRows < nr || aliveCols < nc
	for changed {
		changed = false
		for i := 0; i < nr; i++ {
			if rowOrig[i] == 0 || aliveRows == 1 {
				continue
			}
			for k := 0; k < nr; k++ {
				if k == i || rowOrig[k] == 0 {
					continue
				}
				if strictlyBetterRowFlags(g.A, k, i, colOrig) {
					rowOrig[i] = 0
					aliveRows--
					changed = true
					break
				}
			}
		}
		for j := 0; j < nc; j++ {
			if colOrig[j] == 0 || aliveCols == 1 {
				continue
			}
			for l := 0; l < nc; l++ {
				if l == j || colOrig[l] == 0 {
					continue
				}
				if strictlyBetterColFlags(g.B, l, j, rowOrig) {
					colOrig[j] = 0
					aliveCols--
					changed = true
					break
				}
			}
		}
	}

	rows, cols = countNonzero(rowOrig), countNonzero(colOrig)
	ri := 0
	for i := 0; i < nr; i++ {
		if rowOrig[i] == 0 {
			continue
		}
		cj := 0
		for j := 0; j < nc; j++ {
			if colOrig[j] == 0 {
				continue
			}
			g.A.Data[ri*cols+cj] = g.A.Data[i*nc+j]
			g.B.Data[ri*cols+cj] = g.B.Data[i*nc+j]
			cj++
		}
		ri++
	}
	ri = 0
	for i, f := range rowOrig {
		if f != 0 {
			rowOrig[ri] = i
			ri++
		}
	}
	cj := 0
	for j, f := range colOrig {
		if f != 0 {
			colOrig[cj] = j
			cj++
		}
	}
	g.A.Rows, g.A.Cols, g.A.Data = rows, cols, g.A.Data[:rows*cols]
	g.B.Rows, g.B.Cols, g.B.Data = rows, cols, g.B.Data[:rows*cols]
	return rows, cols
}

// Expand maps a profile of the reduced game back to the original strategy
// space, assigning zero probability to eliminated strategies.
func (r Reduced) Expand(p Profile, origRows, origCols int) Profile {
	row := make([]float64, origRows)
	for ri, i := range r.RowOrig {
		row[i] = p.Row[ri]
	}
	col := make([]float64, origCols)
	for cj, j := range r.ColOrig {
		col[j] = p.Col[cj]
	}
	return Profile{Row: row, Col: col}
}

func strictlyBetterRow(a *Matrix, k, i int, colAlive []bool) bool {
	for j := 0; j < a.Cols; j++ {
		if !colAlive[j] {
			continue
		}
		if a.At(k, j) <= a.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func strictlyBetterCol(b *Matrix, l, j int, rowAlive []bool) bool {
	for i := 0; i < b.Rows; i++ {
		if !rowAlive[i] {
			continue
		}
		if b.At(i, l) <= b.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

// strictlyBetterRowFlags and strictlyBetterColFlags mirror the []bool
// variants for the in-place reduction's int-flag scratch; the comparison
// semantics (strict, 1e-12 tolerance) must stay identical.
func strictlyBetterRowFlags(a *Matrix, k, i int, colAlive []int) bool {
	for j := 0; j < a.Cols; j++ {
		if colAlive[j] == 0 {
			continue
		}
		if a.At(k, j) <= a.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func strictlyBetterColFlags(b *Matrix, l, j int, rowAlive []int) bool {
	for i := 0; i < b.Rows; i++ {
		if rowAlive[i] == 0 {
			continue
		}
		if b.At(i, l) <= b.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func countTrue(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

func countNonzero(v []int) int {
	n := 0
	for _, f := range v {
		if f != 0 {
			n++
		}
	}
	return n
}

func aliveIndices(v []bool) []int {
	var out []int
	for i, b := range v {
		if b {
			out = append(out, i)
		}
	}
	return out
}
