package game

// Iterated elimination of strictly dominated strategies (IESDS). Removing a
// strictly dominated strategy never removes a Nash equilibrium, so solving
// the reduced game is sound and often dramatically cheaper.

// Reduced is a game together with the original indices of the surviving
// strategies.
type Reduced struct {
	Game    *Game
	RowOrig []int // surviving row index -> original row index
	ColOrig []int // surviving col index -> original col index
}

// EliminateDominated repeatedly removes strictly dominated pure strategies
// from both players until a fixed point. The returned mapping lets callers
// translate equilibria of the reduced game back to the original.
func (g *Game) EliminateDominated() Reduced {
	rows, cols := g.Shape()
	rowAlive := make([]bool, rows)
	colAlive := make([]bool, cols)
	for i := range rowAlive {
		rowAlive[i] = true
	}
	for j := range colAlive {
		colAlive[j] = true
	}

	changed := true
	for changed {
		changed = false
		// Row strategies: i dominated by k if A[k][j] > A[i][j] for all
		// alive j.
		for i := 0; i < rows; i++ {
			if !rowAlive[i] || countTrue(rowAlive) == 1 {
				continue
			}
			for k := 0; k < rows; k++ {
				if k == i || !rowAlive[k] {
					continue
				}
				if strictlyBetterRow(g.A, k, i, colAlive) {
					rowAlive[i] = false
					changed = true
					break
				}
			}
		}
		// Column strategies: j dominated by l under B.
		for j := 0; j < cols; j++ {
			if !colAlive[j] || countTrue(colAlive) == 1 {
				continue
			}
			for l := 0; l < cols; l++ {
				if l == j || !colAlive[l] {
					continue
				}
				if strictlyBetterCol(g.B, l, j, rowAlive) {
					colAlive[j] = false
					changed = true
					break
				}
			}
		}
	}

	rowOrig := aliveIndices(rowAlive)
	colOrig := aliveIndices(colAlive)
	a := NewMatrix(len(rowOrig), len(colOrig))
	b := NewMatrix(len(rowOrig), len(colOrig))
	for ri, i := range rowOrig {
		for cj, j := range colOrig {
			a.Set(ri, cj, g.A.At(i, j))
			b.Set(ri, cj, g.B.At(i, j))
		}
	}
	return Reduced{Game: New(a, b), RowOrig: rowOrig, ColOrig: colOrig}
}

// ReduceDominatedInPlace runs the same iterated elimination as
// EliminateDominated but without building a fresh game: the surviving
// payoffs are compacted into the top-left corner of A and B and the shapes
// updated, so arena-backed games reduce without allocating. rowOrig and
// colOrig are caller-provided scratch with capacity at least the game's
// original dimensions; on return rowOrig[:rows] and colOrig[:cols] map each
// surviving index back to its original one. Strict dominance never removes
// a Nash equilibrium and the compaction preserves strategy order, so
// solving the reduced game yields equilibria of the original, in the same
// scan order.
func (g *Game) ReduceDominatedInPlace(rowOrig, colOrig []int) (rows, cols int) {
	nr, nc := g.Shape()
	rowOrig = rowOrig[:nr]
	colOrig = colOrig[:nc]
	// The scratch doubles as alive flags during elimination, then is
	// rewritten into the surviving-index maps.
	for i := range rowOrig {
		rowOrig[i] = 1
	}
	for j := range colOrig {
		colOrig[j] = 1
	}

	changed := true
	for changed {
		changed = false
		for i := 0; i < nr; i++ {
			if rowOrig[i] == 0 || countNonzero(rowOrig) == 1 {
				continue
			}
			for k := 0; k < nr; k++ {
				if k == i || rowOrig[k] == 0 {
					continue
				}
				if strictlyBetterRowFlags(g.A, k, i, colOrig) {
					rowOrig[i] = 0
					changed = true
					break
				}
			}
		}
		for j := 0; j < nc; j++ {
			if colOrig[j] == 0 || countNonzero(colOrig) == 1 {
				continue
			}
			for l := 0; l < nc; l++ {
				if l == j || colOrig[l] == 0 {
					continue
				}
				if strictlyBetterColFlags(g.B, l, j, rowOrig) {
					colOrig[j] = 0
					changed = true
					break
				}
			}
		}
	}

	rows, cols = countNonzero(rowOrig), countNonzero(colOrig)
	// Compact survivors toward the top-left. In-place is safe because every
	// write lands at or before its read: ri <= i, cj <= j, cols <= nc.
	ri := 0
	for i := 0; i < nr; i++ {
		if rowOrig[i] == 0 {
			continue
		}
		cj := 0
		for j := 0; j < nc; j++ {
			if colOrig[j] == 0 {
				continue
			}
			g.A.Data[ri*cols+cj] = g.A.Data[i*nc+j]
			g.B.Data[ri*cols+cj] = g.B.Data[i*nc+j]
			cj++
		}
		ri++
	}
	// Rewrite the alive flags into index maps; writes trail reads here too.
	ri = 0
	for i, f := range rowOrig {
		if f != 0 {
			rowOrig[ri] = i
			ri++
		}
	}
	cj := 0
	for j, f := range colOrig {
		if f != 0 {
			colOrig[cj] = j
			cj++
		}
	}
	g.A.Rows, g.A.Cols, g.A.Data = rows, cols, g.A.Data[:rows*cols]
	g.B.Rows, g.B.Cols, g.B.Data = rows, cols, g.B.Data[:rows*cols]
	return rows, cols
}

// Expand maps a profile of the reduced game back to the original strategy
// space, assigning zero probability to eliminated strategies.
func (r Reduced) Expand(p Profile, origRows, origCols int) Profile {
	row := make([]float64, origRows)
	for ri, i := range r.RowOrig {
		row[i] = p.Row[ri]
	}
	col := make([]float64, origCols)
	for cj, j := range r.ColOrig {
		col[j] = p.Col[cj]
	}
	return Profile{Row: row, Col: col}
}

func strictlyBetterRow(a *Matrix, k, i int, colAlive []bool) bool {
	for j := 0; j < a.Cols; j++ {
		if !colAlive[j] {
			continue
		}
		if a.At(k, j) <= a.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func strictlyBetterCol(b *Matrix, l, j int, rowAlive []bool) bool {
	for i := 0; i < b.Rows; i++ {
		if !rowAlive[i] {
			continue
		}
		if b.At(i, l) <= b.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

// strictlyBetterRowFlags and strictlyBetterColFlags mirror the []bool
// variants for the in-place reduction's int-flag scratch; the comparison
// semantics (strict, 1e-12 tolerance) must stay identical.
func strictlyBetterRowFlags(a *Matrix, k, i int, colAlive []int) bool {
	for j := 0; j < a.Cols; j++ {
		if colAlive[j] == 0 {
			continue
		}
		if a.At(k, j) <= a.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func strictlyBetterColFlags(b *Matrix, l, j int, rowAlive []int) bool {
	for i := 0; i < b.Rows; i++ {
		if rowAlive[i] == 0 {
			continue
		}
		if b.At(i, l) <= b.At(i, j)+1e-12 {
			return false
		}
	}
	return true
}

func countTrue(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

func countNonzero(v []int) int {
	n := 0
	for _, f := range v {
		if f != 0 {
			n++
		}
	}
	return n
}

func aliveIndices(v []bool) []int {
	var out []int
	for i, b := range v {
		if b {
			out = append(out, i)
		}
	}
	return out
}
