package game

import (
	"math/rand"
	"testing"
)

func TestArenaGrantsAreZeroedAndDisjoint(t *testing.T) {
	a := NewArena()
	f1 := a.Floats(8)
	f2 := a.Floats(8)
	for i := range f1 {
		f1[i] = 1
		f2[i] = 2
	}
	if f1[0] != 1 || f2[0] != 2 {
		t.Fatal("grants alias each other")
	}
	i1 := a.Ints(4)
	i1[0] = 7

	a.Reset()
	g1 := a.Floats(8)
	for i, v := range g1 {
		if v != 0 {
			t.Fatalf("recycled float grant not zeroed at %d: %v", i, v)
		}
	}
	j1 := a.Ints(4)
	if j1[0] != 0 {
		t.Fatal("recycled int grant not zeroed")
	}
}

func TestArenaMaskEpochReset(t *testing.T) {
	a := NewArena()
	m := a.Mask(16)
	m.Set(3)
	m.Set(7)
	if !m.Has(3) || !m.Has(7) || m.Has(4) {
		t.Fatal("mask set/has broken")
	}
	a.Reset()
	// Same backing words, new epoch: everything reads unset without any
	// clearing having happened.
	m2 := a.Mask(16)
	for i := 0; i < m2.Len(); i++ {
		if m2.Has(i) {
			t.Fatalf("mask index %d survived Reset", i)
		}
	}
	// The stale mask from before the reset must not see the new epoch's
	// marks as its own either.
	m2.Set(3)
	if !m2.Has(3) {
		t.Fatal("mask lost a mark")
	}
}

func TestArenaMatrixAndGameReuse(t *testing.T) {
	a := NewArena()
	g := NewFromArena(a, 3, 4)
	if g.A.Rows != 3 || g.A.Cols != 4 || g.B.Rows != 3 || g.B.Cols != 4 {
		t.Fatalf("arena game shape %dx%d", g.A.Rows, g.A.Cols)
	}
	g.A.Set(1, 2, 5)
	a.Reset()
	g2 := NewFromArena(a, 3, 4)
	if g2.A.At(1, 2) != 0 {
		t.Fatal("recycled matrix not zeroed")
	}
}

// TestArenaSteadyStateAllocationFree: after warm-up, a grab/reset cycle of
// matrices, floats, ints, and masks allocates nothing.
func TestArenaSteadyStateAllocationFree(t *testing.T) {
	a := NewArena()
	cycle := func() {
		a.Reset()
		g := NewFromArena(a, 6, 7)
		buf := a.Floats(12)
		idx := a.Ints(6)
		m := a.Mask(42)
		g.A.Set(0, 0, 1)
		buf[0] = 1
		idx[0] = 1
		m.Set(0)
	}
	cycle() // warm up backing buffers
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %.1f objects", allocs)
	}
}

func TestRowViewAndColInto(t *testing.T) {
	m := MatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	rv := m.RowView(1)
	if rv[0] != 4 || rv[2] != 6 {
		t.Fatalf("RowView = %v", rv)
	}
	rv[1] = 50
	if m.At(1, 1) != 50 {
		t.Fatal("RowView is not a view")
	}
	dst := make([]float64, 2)
	if got := m.ColInto(2, dst); got[0] != 3 || got[1] != 6 {
		t.Fatalf("ColInto = %v", got)
	}
}

// randomGame builds a seeded bimatrix game for cross-checking the in-place
// equilibrium APIs against their allocating counterparts.
func randomGame(rng *rand.Rand, rows, cols int) *Game {
	a := NewMatrix(rows, cols)
	b := NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, float64(rng.Intn(7)))
			b.Set(i, j, float64(rng.Intn(7)))
		}
	}
	return New(a, b)
}

// TestPureNashIntoMatchesPureNash: the index-form enumeration must agree
// with the vector-form one on supports and count, across many seeded games.
func TestPureNashIntoMatchesPureNash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var scratch []PureProfile
	for trial := 0; trial < 200; trial++ {
		g := randomGame(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		want := g.PureNash()
		scratch = g.PureNashInto(scratch)
		if len(scratch) != len(want) {
			t.Fatalf("trial %d: %d pure equilibria, want %d", trial, len(scratch), len(want))
		}
		for k, p := range want {
			if scratch[k].Row != p.RowSupport()[0] || scratch[k].Col != p.ColSupport()[0] {
				t.Fatalf("trial %d: equilibrium %d = %v, want (%d,%d)",
					trial, k, scratch[k], p.RowSupport()[0], p.ColSupport()[0])
			}
		}
	}
}

// TestBestPureNashMatchesSelectEquilibrium: the single-pass selection must
// pick exactly the profile SelectEquilibrium(PureNash()) picks.
func TestBestPureNashMatchesSelectEquilibrium(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		g := randomGame(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		wantP, wantOK := g.SelectEquilibrium(g.PureNash())
		got, ok := g.BestPureNash()
		if ok != wantOK {
			t.Fatalf("trial %d: ok=%v, want %v", trial, ok, wantOK)
		}
		if !ok {
			continue
		}
		if got.Row != wantP.RowSupport()[0] || got.Col != wantP.ColSupport()[0] {
			t.Fatalf("trial %d: BestPureNash=(%d,%d), SelectEquilibrium=(%d,%d)",
				trial, got.Row, got.Col, wantP.RowSupport()[0], wantP.ColSupport()[0])
		}
	}
}

func TestBestResponsesIntoMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var dst []int
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(5), 1+rng.Intn(5)
		g := randomGame(rng, rows, cols)
		y := Uniform(cols)
		x := Uniform(rows)
		dst = g.BestResponsesRowInto(y, dst)
		if want := g.BestResponsesRow(y); !equalInts(dst, want) {
			t.Fatalf("trial %d: row %v, want %v", trial, dst, want)
		}
		dst = g.BestResponsesColInto(x, dst)
		if want := g.BestResponsesCol(x); !equalInts(dst, want) {
			t.Fatalf("trial %d: col %v, want %v", trial, dst, want)
		}
	}
}

// TestTieBreakContract pins the determinism contract the fleet placement
// cache relies on: stable toward current, else lowest index, tolerance 1e-9.
func TestTieBreakContract(t *testing.T) {
	u := []float64{1, 3, 3, 2}
	if got := TieBreak(u, -1); got != 1 {
		t.Fatalf("lowest-index tie-break = %d, want 1", got)
	}
	if got := TieBreak(u, 2); got != 2 {
		t.Fatalf("stable tie-break = %d, want 2", got)
	}
	if got := TieBreak(u, 0); got != 1 {
		t.Fatalf("dominated current kept: %d, want 1", got)
	}
	// Within tolerance counts as tied.
	v := []float64{3 - 5e-10, 3}
	if got := TieBreak(v, 0); got != 0 {
		t.Fatalf("within-tolerance current dropped: %d, want 0", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
