package game

// Learning dynamics: best-response iteration and fictitious play. DEEP's
// scheduler uses best-response dynamics over congestion-style payoffs, which
// converge for finite potential games.

// BestResponseDynamics iterates simultaneous pure best responses from the
// given pure starting profile (rowIdx, colIdx) until a fixed point (a pure
// Nash equilibrium) or the iteration budget is exhausted. It reports whether
// it converged.
func (g *Game) BestResponseDynamics(rowIdx, colIdx, maxIters int) (row, col int, converged bool) {
	rows, cols := g.Shape()
	if rowIdx < 0 || rowIdx >= rows || colIdx < 0 || colIdx >= cols {
		panic("game: starting profile out of range")
	}
	r, c := rowIdx, colIdx
	for iter := 0; iter < maxIters; iter++ {
		br := g.BestResponsesRow(Pure(cols, c))
		nr := preferStable(br, r)
		bc := g.BestResponsesCol(Pure(rows, nr))
		nc := preferStable(bc, c)
		if nr == r && nc == c {
			return r, c, true
		}
		r, c = nr, nc
	}
	return r, c, false
}

// preferStable keeps the current index when it is among the best responses,
// which makes the dynamics settle instead of oscillating between ties.
func preferStable(best []int, current int) int {
	for _, b := range best {
		if b == current {
			return current
		}
	}
	return best[0]
}

// FictitiousPlay runs the classic fictitious-play learning process for the
// given number of rounds, starting from the provided pure actions, and
// returns the empirical mixed strategies. For zero-sum games these converge
// to equilibrium strategies.
func (g *Game) FictitiousPlay(rowStart, colStart, rounds int) (rowEmp, colEmp []float64) {
	rows, cols := g.Shape()
	rowCount := make([]float64, rows)
	colCount := make([]float64, cols)
	rowCount[rowStart]++
	colCount[colStart]++
	for t := 1; t < rounds; t++ {
		// Each player best-responds to the opponent's empirical mixture.
		colEmp := normalized(colCount)
		rowBR := g.BestResponsesRow(colEmp)[0]
		rowEmpV := normalized(rowCount)
		colBR := g.BestResponsesCol(rowEmpV)[0]
		rowCount[rowBR]++
		colCount[colBR]++
	}
	return normalized(rowCount), normalized(colCount)
}

func normalized(v []float64) []float64 {
	out := make([]float64, len(v))
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / s
	}
	return out
}

// Regret returns the maximum payoff either player forgoes at (x, y) relative
// to its best response — zero exactly at Nash equilibria.
func (g *Game) Regret(x, y []float64) float64 {
	rowU := g.A.MulVec(y)
	colU := g.B.VecMul(x)
	curRow, curCol := g.Payoffs(x, y)
	worst := 0.0
	for _, u := range rowU {
		if d := u - curRow; d > worst {
			worst = d
		}
	}
	for _, u := range colU {
		if d := u - curCol; d > worst {
			worst = d
		}
	}
	return worst
}
