package game

// Learning dynamics: best-response iteration and fictitious play. DEEP's
// scheduler uses best-response dynamics over congestion-style payoffs, which
// converge for finite potential games.
//
// Determinism contract: every tie between equally good responses is broken
// by TieBreak — keep the current action while it remains a best response,
// otherwise take the lowest-indexed one. Together with the row-major scan
// order of PureNash/BestPureNash this makes every solver in this package a
// pure function of its payoff matrices, which is what lets the fleet's
// placement cache (internal/fleet) memoize placements by an input
// fingerprint alone: equal fingerprints are guaranteed equal placements.

// TieBreak resolves a tie among best responses given the utility vector u:
// it returns current when u[current] is within tolerance of the maximum
// (stable — the dynamics settle instead of oscillating between ties), and
// the lowest-indexed maximizer otherwise. Pass current < 0 to always take
// the lowest index. The tolerance matches BestResponsesRow/argmaxAll, so
// TieBreak(u, -1) == BestResponses...(u)[0].
func TieBreak(u []float64, current int) int {
	best := u[0]
	for _, v := range u[1:] {
		if v > best {
			best = v
		}
	}
	if current >= 0 && current < len(u) && u[current] >= best-1e-9 {
		return current
	}
	for i, v := range u {
		if v >= best-1e-9 {
			return i
		}
	}
	return 0 // unreachable: the maximum is always within tolerance of itself
}

// BestResponseDynamics iterates simultaneous pure best responses from the
// given pure starting profile (rowIdx, colIdx) until a fixed point (a pure
// Nash equilibrium) or the iteration budget is exhausted. It reports whether
// it converged. Ties follow the TieBreak contract.
func (g *Game) BestResponseDynamics(rowIdx, colIdx, maxIters int) (row, col int, converged bool) {
	rows, cols := g.Shape()
	if rowIdx < 0 || rowIdx >= rows || colIdx < 0 || colIdx >= cols {
		panic("game: starting profile out of range")
	}
	r, c := rowIdx, colIdx
	for iter := 0; iter < maxIters; iter++ {
		nr := TieBreak(g.A.MulVec(Pure(cols, c)), r)
		nc := TieBreak(g.B.VecMul(Pure(rows, nr)), c)
		if nr == r && nc == c {
			return r, c, true
		}
		r, c = nr, nc
	}
	return r, c, false
}

// FictitiousPlay runs the classic fictitious-play learning process for the
// given number of rounds, starting from the provided pure actions, and
// returns the empirical mixed strategies. For zero-sum games these converge
// to equilibrium strategies. Ties follow the TieBreak contract with no
// current action (lowest index wins), keeping the trajectory deterministic.
func (g *Game) FictitiousPlay(rowStart, colStart, rounds int) (rowEmp, colEmp []float64) {
	rows, cols := g.Shape()
	rowCount := make([]float64, rows)
	colCount := make([]float64, cols)
	rowCount[rowStart]++
	colCount[colStart]++
	for t := 1; t < rounds; t++ {
		// Each player best-responds to the opponent's empirical mixture.
		colEmp := normalized(colCount)
		rowBR := TieBreak(g.A.MulVec(colEmp), -1)
		rowEmpV := normalized(rowCount)
		colBR := TieBreak(g.B.VecMul(rowEmpV), -1)
		rowCount[rowBR]++
		colCount[colBR]++
	}
	return normalized(rowCount), normalized(colCount)
}

func normalized(v []float64) []float64 {
	out := make([]float64, len(v))
	s := 0.0
	for _, x := range v {
		s += x
	}
	if s == 0 {
		return out
	}
	for i, x := range v {
		out[i] = x / s
	}
	return out
}

// Regret returns the maximum payoff either player forgoes at (x, y) relative
// to its best response — zero exactly at Nash equilibria.
func (g *Game) Regret(x, y []float64) float64 {
	rowU := g.A.MulVec(y)
	colU := g.B.VecMul(x)
	curRow, curCol := g.Payoffs(x, y)
	worst := 0.0
	for _, u := range rowU {
		if d := u - curRow; d > worst {
			worst = d
		}
	}
	for _, u := range colU {
		if d := u - curCol; d > worst {
			worst = d
		}
	}
	return worst
}
