// Package game implements the two-player game-theoretic machinery DEEP uses
// for scheduling: bimatrix games, pure and mixed Nash equilibria (support
// enumeration and Lemke-Howson), iterated elimination of strictly dominated
// strategies, and best-response dynamics. It is a from-scratch replacement
// for the Nashpy library the paper used.
package game

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64 payoffs.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("game: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFrom builds a matrix from a slice of rows. All rows must have equal
// length.
func MatrixFrom(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("game: ragged matrix: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	return append([]float64(nil), m.RowView(i)...)
}

// RowView returns row i as a view into the matrix's backing array — no
// copy. Writes through the view mutate the matrix.
func (m *Matrix) RowView(i int) []float64 {
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	return m.ColInto(j, make([]float64, m.Rows))
}

// ColInto writes column j into dst (which must have length Rows) and
// returns it — the allocation-free counterpart of Col.
func (m *Matrix) ColInto(j int, dst []float64) []float64 {
	if len(dst) != m.Rows {
		panic(fmt.Sprintf("game: ColInto dst length %d, want %d", len(dst), m.Rows))
	}
	for i := 0; i < m.Rows; i++ {
		dst[i] = m.At(i, j)
	}
	return dst
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns a new transposed matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Scale multiplies every element by f in place and returns the receiver.
func (m *Matrix) Scale(f float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= f
	}
	return m
}

// Shift adds f to every element in place and returns the receiver.
func (m *Matrix) Shift(f float64) *Matrix {
	for i := range m.Data {
		m.Data[i] += f
	}
	return m
}

// Min returns the smallest element. It panics on an empty matrix.
func (m *Matrix) Min() float64 {
	if len(m.Data) == 0 {
		panic("game: Min of empty matrix")
	}
	min := m.Data[0]
	for _, v := range m.Data[1:] {
		if v < min {
			min = v
		}
	}
	return min
}

// Max returns the largest element. It panics on an empty matrix.
func (m *Matrix) Max() float64 {
	if len(m.Data) == 0 {
		panic("game: Max of empty matrix")
	}
	max := m.Data[0]
	for _, v := range m.Data[1:] {
		if v > max {
			max = v
		}
	}
	return max
}

// MulVec returns m · x (length must equal Cols).
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("game: MulVec dim mismatch: %d vs %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns xᵀ · m (length must equal Rows).
func (m *Matrix) VecMul(x []float64) []float64 {
	if len(x) != m.Rows {
		panic(fmt.Sprintf("game: VecMul dim mismatch: %d vs %d", len(x), m.Rows))
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// Quad returns xᵀ · m · y.
func (m *Matrix) Quad(x, y []float64) float64 {
	my := m.MulVec(y)
	s := 0.0
	for i, v := range x {
		s += v * my[i]
	}
	return s
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteByte('[')
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		b.WriteByte(']')
	}
	return b.String()
}

// SolveLinear solves the square system A·x = b by Gaussian elimination with
// partial pivoting. It returns false when A is singular (to within a small
// pivot tolerance).
func SolveLinear(a *Matrix, b []float64) ([]float64, bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("game: SolveLinear requires a square system")
	}
	// Work on augmented copies.
	m := a.Clone()
	rhs := make([]float64, n)
	copy(rhs, b)

	const tol = 1e-12
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < tol {
			return nil, false
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				vp, vc := m.At(pivot, j), m.At(col, j)
				m.Set(pivot, j, vc)
				m.Set(col, j, vp)
			}
			rhs[pivot], rhs[col] = rhs[col], rhs[pivot]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			rhs[r] -= f * rhs[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := rhs[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, true
}
