package game

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := MatrixFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	if m.Rows != 2 || m.Cols != 3 {
		t.Fatalf("shape = %dx%d", m.Rows, m.Cols)
	}
	if m.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v", m.At(1, 2))
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Errorf("Set failed")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Errorf("transpose wrong: %v", tr)
	}
	if got := m.Row(1); got[0] != 4 || got[2] != 6 {
		t.Errorf("Row(1) = %v", got)
	}
	if got := m.Col(2); got[0] != 3 || got[1] != 6 {
		t.Errorf("Col(2) = %v", got)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", m.Min(), m.Max())
	}
}

func TestMatrixRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on ragged rows")
		}
	}()
	MatrixFrom([][]float64{{1, 2}, {3}})
}

func TestMulVec(t *testing.T) {
	m := MatrixFrom([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Errorf("MulVec = %v", got)
	}
	got = m.VecMul([]float64{1, 1})
	if got[0] != 4 || got[1] != 6 {
		t.Errorf("VecMul = %v", got)
	}
	if q := m.Quad([]float64{1, 0}, []float64{0, 1}); q != 2 {
		t.Errorf("Quad = %v", q)
	}
}

func TestSolveLinear(t *testing.T) {
	a := MatrixFrom([][]float64{{2, 1}, {1, 3}})
	x, ok := SolveLinear(a, []float64{5, 10})
	if !ok {
		t.Fatal("singular")
	}
	if !approx(x[0], 1, 1e-9) || !approx(x[1], 3, 1e-9) {
		t.Errorf("x = %v", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := MatrixFrom([][]float64{{1, 2}, {2, 4}})
	if _, ok := SolveLinear(a, []float64{1, 2}); ok {
		t.Error("expected singular detection")
	}
}

func TestSolveLinearProperty(t *testing.T) {
	// Random well-conditioned systems: A·x recovered from b = A·x0.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		x0 := make([]float64, n)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b := a.MulVec(x0)
		x, ok := SolveLinear(a, b)
		if !ok {
			t.Fatalf("trial %d: unexpected singular", trial)
		}
		for i := range x {
			if !approx(x[i], x0[i], 1e-6) {
				t.Fatalf("trial %d: x=%v want %v", trial, x, x0)
			}
		}
	}
}

func TestPrisonersDilemmaPureNash(t *testing.T) {
	g := PrisonersDilemma(5, 3, 1, 0)
	eqs := g.PureNash()
	if len(eqs) != 1 {
		t.Fatalf("want 1 pure NE, got %d", len(eqs))
	}
	rs := eqs[0].RowSupport()
	cs := eqs[0].ColSupport()
	if len(rs) != 1 || rs[0] != 1 || len(cs) != 1 || cs[0] != 1 {
		t.Errorf("PD equilibrium should be (defect, defect): %v %v", rs, cs)
	}
}

func TestPrisonersDilemmaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid PD ordering")
		}
	}()
	PrisonersDilemma(1, 2, 3, 4)
}

func TestMatchingPenniesSupportEnum(t *testing.T) {
	g := MatchingPennies()
	if eqs := g.PureNash(); len(eqs) != 0 {
		t.Errorf("matching pennies has no pure NE, got %d", len(eqs))
	}
	eqs := g.SupportEnumeration()
	if len(eqs) != 1 {
		t.Fatalf("want 1 mixed NE, got %d", len(eqs))
	}
	for _, p := range eqs[0].Row {
		if !approx(p, 0.5, 1e-9) {
			t.Errorf("row strategy %v not uniform", eqs[0].Row)
		}
	}
	for _, p := range eqs[0].Col {
		if !approx(p, 0.5, 1e-9) {
			t.Errorf("col strategy %v not uniform", eqs[0].Col)
		}
	}
}

func TestBattleOfTheSexes(t *testing.T) {
	g := BattleOfTheSexes()
	pure := g.PureNash()
	if len(pure) != 2 {
		t.Fatalf("want 2 pure NE, got %d", len(pure))
	}
	all := g.SupportEnumeration()
	if len(all) != 3 {
		t.Fatalf("want 3 NE total (2 pure + 1 mixed), got %d", len(all))
	}
	for _, e := range all {
		if !g.IsNash(e.Row, e.Col, 1e-6) {
			t.Errorf("support enumeration returned non-equilibrium %v", e)
		}
	}
}

func TestCoordination(t *testing.T) {
	g := Coordination([]float64{1, 2, 3})
	pure := g.PureNash()
	if len(pure) != 3 {
		t.Fatalf("want 3 pure NE, got %d", len(pure))
	}
	best, ok := g.SelectEquilibrium(pure)
	if !ok {
		t.Fatal("no equilibrium selected")
	}
	if rs := best.RowSupport(); len(rs) != 1 || rs[0] != 2 {
		t.Errorf("welfare selection should pick payoff-3 coordination, got %v", rs)
	}
}

func TestSelectEquilibriumEmpty(t *testing.T) {
	g := MatchingPennies()
	if _, ok := g.SelectEquilibrium(nil); ok {
		t.Error("empty slice should return ok=false")
	}
}

func TestLemkeHowsonPD(t *testing.T) {
	g := PrisonersDilemma(5, 3, 1, 0)
	for label := 0; label < 4; label++ {
		p, err := g.LemkeHowson(label)
		if err != nil {
			t.Fatalf("label %d: %v", label, err)
		}
		if !g.IsNash(p.Row, p.Col, 1e-6) {
			t.Errorf("label %d: not a NE: %+v", label, p)
		}
	}
}

func TestLemkeHowsonMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	p, err := g.LemkeHowsonAny()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsNash(p.Row, p.Col, 1e-6) {
		t.Errorf("not an equilibrium: %+v", p)
	}
}

func TestLemkeHowsonRandomGames(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		rows := 2 + rng.Intn(3)
		cols := 2 + rng.Intn(3)
		a := NewMatrix(rows, cols)
		b := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.Float64()
			b.Data[i] = rng.Float64()
		}
		g := New(a, b)
		p, err := g.LemkeHowsonAny()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !g.IsNash(p.Row, p.Col, 1e-5) {
			t.Errorf("trial %d: regret %v too high", trial, g.Regret(p.Row, p.Col))
		}
	}
}

func TestSupportEnumerationRandomAgreesWithIsNash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		rows := 2 + rng.Intn(2)
		cols := 2 + rng.Intn(2)
		a := NewMatrix(rows, cols)
		b := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		g := New(a, b)
		eqs := g.SupportEnumeration()
		if len(eqs) == 0 {
			t.Fatalf("trial %d: no equilibrium found (every finite game has one)", trial)
		}
		for _, e := range eqs {
			if !g.IsNash(e.Row, e.Col, 1e-6) {
				t.Errorf("trial %d: false equilibrium, regret %v", trial, g.Regret(e.Row, e.Col))
			}
		}
	}
}

func TestEliminateDominatedPD(t *testing.T) {
	g := PrisonersDilemma(5, 3, 1, 0)
	r := g.EliminateDominated()
	if rows, cols := r.Game.Shape(); rows != 1 || cols != 1 {
		t.Fatalf("PD should reduce to 1x1, got %dx%d", rows, cols)
	}
	if r.RowOrig[0] != 1 || r.ColOrig[0] != 1 {
		t.Errorf("surviving strategy should be defect: %v %v", r.RowOrig, r.ColOrig)
	}
	exp := r.Expand(Profile{Row: []float64{1}, Col: []float64{1}}, 2, 2)
	if exp.Row[1] != 1 || exp.Col[1] != 1 {
		t.Errorf("Expand wrong: %+v", exp)
	}
}

func TestEliminateDominatedPreservesNash(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		rows := 2 + rng.Intn(3)
		cols := 2 + rng.Intn(3)
		a := NewMatrix(rows, cols)
		b := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		g := New(a, b)
		red := g.EliminateDominated()
		eqs := red.Game.SupportEnumeration()
		for _, e := range eqs {
			full := red.Expand(e, rows, cols)
			if !g.IsNash(full.Row, full.Col, 1e-6) {
				t.Errorf("trial %d: reduced-game NE is not an NE of the original", trial)
			}
		}
	}
}

func TestBestResponseDynamicsCoordination(t *testing.T) {
	g := Coordination([]float64{1, 5, 2})
	r, c, ok := g.BestResponseDynamics(0, 0, 100)
	if !ok {
		t.Fatal("did not converge")
	}
	if r != c {
		t.Errorf("converged to non-coordinated profile (%d,%d)", r, c)
	}
	if !g.isPureNash(r, c) {
		t.Errorf("(%d,%d) is not a pure NE", r, c)
	}
}

func TestBestResponseDynamicsPD(t *testing.T) {
	g := PrisonersDilemma(5, 3, 1, 0)
	r, c, ok := g.BestResponseDynamics(0, 0, 100)
	if !ok || r != 1 || c != 1 {
		t.Errorf("PD dynamics should reach (defect,defect): (%d,%d,%v)", r, c, ok)
	}
}

func TestFictitiousPlayMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	rowEmp, colEmp := g.FictitiousPlay(0, 0, 20000)
	for _, p := range rowEmp {
		if !approx(p, 0.5, 0.05) {
			t.Errorf("row empirical %v should approach uniform", rowEmp)
		}
	}
	for _, p := range colEmp {
		if !approx(p, 0.5, 0.05) {
			t.Errorf("col empirical %v should approach uniform", colEmp)
		}
	}
}

func TestRegretZeroAtEquilibrium(t *testing.T) {
	g := BattleOfTheSexes()
	eqs := g.SupportEnumeration()
	for _, e := range eqs {
		if reg := g.Regret(e.Row, e.Col); reg > 1e-6 {
			t.Errorf("regret at equilibrium = %v", reg)
		}
	}
	// Non-equilibrium profile has positive regret.
	if reg := g.Regret(Pure(2, 0), Pure(2, 1)); reg <= 0 {
		t.Errorf("miscoordination should have positive regret, got %v", reg)
	}
}

func TestFromCosts(t *testing.T) {
	costA := MatrixFrom([][]float64{{10, 1}, {5, 3}})
	costB := MatrixFrom([][]float64{{2, 8}, {4, 6}})
	g := FromCosts(costA, costB)
	if g.A.At(0, 0) != -10 || g.B.At(0, 1) != -8 {
		t.Errorf("FromCosts should negate: %v %v", g.A, g.B)
	}
	// Originals untouched.
	if costA.At(0, 0) != 10 {
		t.Error("FromCosts mutated its input")
	}
}

func TestPayoffsQuick(t *testing.T) {
	// Property: payoffs at pure profiles equal matrix entries.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows := 1 + rng.Intn(4)
		cols := 1 + rng.Intn(4)
		a := NewMatrix(rows, cols)
		b := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		g := New(a, b)
		i := rng.Intn(rows)
		j := rng.Intn(cols)
		ra, rb := g.Payoffs(Pure(rows, i), Pure(cols, j))
		return approx(ra, a.At(i, j), 1e-12) && approx(rb, b.At(i, j), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformAndPure(t *testing.T) {
	u := Uniform(4)
	s := 0.0
	for _, p := range u {
		s += p
	}
	if !approx(s, 1, 1e-12) {
		t.Errorf("uniform does not sum to 1: %v", u)
	}
	p := Pure(3, 1)
	if p[0] != 0 || p[1] != 1 || p[2] != 0 {
		t.Errorf("Pure(3,1) = %v", p)
	}
}

func TestZeroSum(t *testing.T) {
	a := MatrixFrom([][]float64{{2, -1}, {0, 3}})
	g := NewZeroSum(a)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if g.A.At(i, j)+g.B.At(i, j) != 0 {
				t.Errorf("not zero-sum at (%d,%d)", i, j)
			}
		}
	}
}
