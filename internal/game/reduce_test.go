package game

import (
	"math/rand"
	"testing"
)

// dominanceBiasedGame draws payoffs with a bias toward dominance structure:
// mixing a per-row/per-column quality offset into the noise makes some
// strategies dominated across the board, so the elimination loop gets real
// work (pure noise, as in arena_test's randomGame, rarely eliminates).
func dominanceBiasedGame(rng *rand.Rand, rows, cols int) *Game {
	a := NewMatrix(rows, cols)
	b := NewMatrix(rows, cols)
	rowQ := make([]float64, rows)
	colQ := make([]float64, cols)
	for i := range rowQ {
		rowQ[i] = rng.NormFloat64() * 2
	}
	for j := range colQ {
		colQ[j] = rng.NormFloat64() * 2
	}
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			a.Set(i, j, rowQ[i]+rng.NormFloat64())
			b.Set(i, j, colQ[j]+rng.NormFloat64())
		}
	}
	return New(a, b)
}

// The in-place reduction must agree with EliminateDominated exactly — same
// survivors in the same order, same (bit-equal) payoffs — across random
// games of varied shape. EliminateDominated is the pinned reference
// (dominance_test.go); ReduceDominatedInPlace is the arena-friendly twin the
// scheduler uses.
func TestReduceDominatedInPlaceMatchesEliminate(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(8)
		cols := 1 + rng.Intn(8)
		g := dominanceBiasedGame(rng, rows, cols)
		want := g.EliminateDominated() // copies; leaves g intact

		rowOrig := make([]int, rows)
		colOrig := make([]int, cols)
		nr, nc := g.ReduceDominatedInPlace(rowOrig, colOrig)

		if wr, wc := want.Game.Shape(); nr != wr || nc != wc {
			t.Fatalf("trial %d (%dx%d): reduced to %dx%d, EliminateDominated to %dx%d",
				trial, rows, cols, nr, nc, wr, wc)
		}
		for ri := 0; ri < nr; ri++ {
			if rowOrig[ri] != want.RowOrig[ri] {
				t.Fatalf("trial %d: rowOrig %v, want %v", trial, rowOrig[:nr], want.RowOrig)
			}
		}
		for cj := 0; cj < nc; cj++ {
			if colOrig[cj] != want.ColOrig[cj] {
				t.Fatalf("trial %d: colOrig %v, want %v", trial, colOrig[:nc], want.ColOrig)
			}
		}
		for ri := 0; ri < nr; ri++ {
			for cj := 0; cj < nc; cj++ {
				if g.A.At(ri, cj) != want.Game.A.At(ri, cj) || g.B.At(ri, cj) != want.Game.B.At(ri, cj) {
					t.Fatalf("trial %d: payoff mismatch at (%d,%d)", trial, ri, cj)
				}
			}
		}
	}
}

// The compacted game's shape must be fully consistent: Rows/Cols updated,
// Data truncated to exactly rows*cols, and the iterated 3x3 example (pinned
// by dominance_test.go) collapsing to its 1x1 solution in place.
func TestReduceDominatedInPlaceCompactsShape(t *testing.T) {
	g := iteratedGame()
	rowOrig := make([]int, 3)
	colOrig := make([]int, 3)
	nr, nc := g.ReduceDominatedInPlace(rowOrig, colOrig)
	if nr != 1 || nc != 1 {
		t.Fatalf("iterated game reduced to %dx%d, want 1x1", nr, nc)
	}
	if rowOrig[0] != 0 || colOrig[0] != 0 {
		t.Fatalf("survivors rows %v cols %v, want [0] [0]", rowOrig[:nr], colOrig[:nc])
	}
	if g.A.Rows != 1 || g.A.Cols != 1 || len(g.A.Data) != 1 ||
		g.B.Rows != 1 || g.B.Cols != 1 || len(g.B.Data) != 1 {
		t.Fatalf("shapes not compacted: A %dx%d/%d B %dx%d/%d",
			g.A.Rows, g.A.Cols, len(g.A.Data), g.B.Rows, g.B.Cols, len(g.B.Data))
	}
	if g.A.At(0, 0) != 5.0 || g.B.At(0, 0) != 5.0 {
		t.Fatalf("reduced payoffs (%v, %v), want (5, 5)", g.A.At(0, 0), g.B.At(0, 0))
	}
}

// Reduction on an arena-backed game must not allocate: the whole point of
// the in-place variant is that the scheduler's mid-size pair rescue stays on
// the warm zero-alloc path.
func TestReduceDominatedInPlaceAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := dominanceBiasedGame(rng, 12, 10)
	ar := NewArena()
	rowOrig := make([]int, 12)
	colOrig := make([]int, 10)
	allocs := testing.AllocsPerRun(100, func() {
		ar.Reset()
		g := NewFromArena(ar, 12, 10)
		copy(g.A.Data, src.A.Data)
		copy(g.B.Data, src.B.Data)
		g.ReduceDominatedInPlace(rowOrig, colOrig)
	})
	if allocs != 0 {
		t.Fatalf("in-place reduction allocates %.1f objects per run", allocs)
	}
}

// The prefiltered reduction must be indistinguishable from the plain
// in-place one — same survivors in the same order, same bit-equal payoffs —
// across random games of varied shape: the max-min screen may only skip
// comparisons that strictlyBetter would reject anyway, never change the
// elimination sequence. Two copies of each game run both variants.
func TestReduceDominatedPrefilteredMatchesInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		rows := 1 + rng.Intn(10)
		cols := 1 + rng.Intn(10)
		g := dominanceBiasedGame(rng, rows, cols)
		ref := New(g.A.Clone(), g.B.Clone())

		rowOrig := make([]int, rows)
		colOrig := make([]int, cols)
		refRowOrig := make([]int, rows)
		refColOrig := make([]int, cols)
		fscratch := make([]float64, 2*(rows+cols))

		nr, nc := g.ReduceDominatedPrefiltered(rowOrig, colOrig, fscratch)
		wr, wc := ref.ReduceDominatedInPlace(refRowOrig, refColOrig)

		if nr != wr || nc != wc {
			t.Fatalf("trial %d (%dx%d): prefiltered %dx%d, in-place %dx%d",
				trial, rows, cols, nr, nc, wr, wc)
		}
		for ri := 0; ri < nr; ri++ {
			if rowOrig[ri] != refRowOrig[ri] {
				t.Fatalf("trial %d: rowOrig %v, want %v", trial, rowOrig[:nr], refRowOrig[:nr])
			}
		}
		for cj := 0; cj < nc; cj++ {
			if colOrig[cj] != refColOrig[cj] {
				t.Fatalf("trial %d: colOrig %v, want %v", trial, colOrig[:nc], refColOrig[:nc])
			}
		}
		for ri := 0; ri < nr; ri++ {
			for cj := 0; cj < nc; cj++ {
				if g.A.At(ri, cj) != ref.A.At(ri, cj) || g.B.At(ri, cj) != ref.B.At(ri, cj) {
					t.Fatalf("trial %d: payoff mismatch at (%d,%d)", trial, ri, cj)
				}
			}
		}
	}
}

// The prefiltered variant must stay on the zero-alloc path with arena
// scratch, like the reduction it screens.
func TestReduceDominatedPrefilteredAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := dominanceBiasedGame(rng, 12, 10)
	ar := NewArena()
	rowOrig := make([]int, 12)
	colOrig := make([]int, 10)
	fscratch := make([]float64, 2*(12+10))
	allocs := testing.AllocsPerRun(100, func() {
		ar.Reset()
		g := NewFromArena(ar, 12, 10)
		copy(g.A.Data, src.A.Data)
		copy(g.B.Data, src.B.Data)
		g.ReduceDominatedPrefiltered(rowOrig, colOrig, fscratch)
	})
	if allocs != 0 {
		t.Fatalf("prefiltered reduction allocates %.1f objects per run", allocs)
	}
}

// BenchmarkReduceDominated compares the plain and prefiltered sweeps on a
// dominance-heavy 24x20 game (the shape class the scheduler's pair rescue
// feeds it).
func BenchmarkReduceDominated(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src := dominanceBiasedGame(rng, 24, 20)
	rowOrig := make([]int, 24)
	colOrig := make([]int, 20)
	fscratch := make([]float64, 2*(24+20))
	ar := NewArena()
	b.Run("inplace", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ar.Reset()
			g := NewFromArena(ar, 24, 20)
			copy(g.A.Data, src.A.Data)
			copy(g.B.Data, src.B.Data)
			g.ReduceDominatedInPlace(rowOrig, colOrig)
		}
	})
	b.Run("prefiltered", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ar.Reset()
			g := NewFromArena(ar, 24, 20)
			copy(g.A.Data, src.A.Data)
			copy(g.B.Data, src.B.Data)
			g.ReduceDominatedPrefiltered(rowOrig, colOrig, fscratch)
		}
	})
}
