package game

// Support enumeration computes all Nash equilibria of a nondegenerate
// bimatrix game by testing every pair of equal-size supports, mirroring
// nashpy's support_enumeration. For each candidate support pair (I, J) with
// |I| = |J| = k it solves the indifference conditions: a mixed strategy y on
// J making every row in I indifferent (and no row outside I better), and a
// mixed strategy x on I making every column in J indifferent (and no column
// outside J better).

// SupportEnumeration returns all Nash equilibria found by support
// enumeration. For degenerate games the result may omit equilibria with
// mismatched support sizes, as is standard for this method.
func (g *Game) SupportEnumeration() []Profile {
	rows, cols := g.Shape()
	var out []Profile
	maxK := rows
	if cols < maxK {
		maxK = cols
	}
	for k := 1; k <= maxK; k++ {
		rowSupports := combinations(rows, k)
		colSupports := combinations(cols, k)
		for _, I := range rowSupports {
			for _, J := range colSupports {
				if p, ok := g.trySupportPair(I, J); ok {
					if !containsProfile(out, p) {
						out = append(out, p)
					}
				}
			}
		}
	}
	return out
}

// trySupportPair attempts to construct an equilibrium with row support I and
// column support J.
func (g *Game) trySupportPair(I, J []int) (Profile, bool) {
	rows, cols := g.Shape()
	k := len(I)

	// Solve for y (column strategy over J): rows in I indifferent under A.
	// Unknowns: y_j for j in J plus the common payoff v. Equations:
	// sum_j A[i][j] y_j - v = 0 for i in I, and sum_j y_j = 1.
	y, vRow, ok := solveIndifference(g.A, I, J)
	if !ok {
		return Profile{}, false
	}
	// Solve for x (row strategy over I): columns in J indifferent under B.
	x, vCol, ok := solveIndifference(g.B.Transpose(), J, I)
	if !ok {
		return Profile{}, false
	}

	// Expand into full-length vectors.
	fullY := make([]float64, cols)
	for idx, j := range J {
		if y[idx] < -1e-9 {
			return Profile{}, false
		}
		if y[idx] < 0 {
			y[idx] = 0
		}
		fullY[j] = y[idx]
	}
	fullX := make([]float64, rows)
	for idx, i := range I {
		if x[idx] < -1e-9 {
			return Profile{}, false
		}
		if x[idx] < 0 {
			x[idx] = 0
		}
		fullX[i] = x[idx]
	}

	// Best-response conditions: no strategy outside the support may earn
	// strictly more than the support payoff.
	rowU := g.A.MulVec(fullY)
	for i := 0; i < rows; i++ {
		if rowU[i] > vRow+1e-9 {
			return Profile{}, false
		}
	}
	colU := g.B.VecMul(fullX)
	for j := 0; j < cols; j++ {
		if colU[j] > vCol+1e-9 {
			return Profile{}, false
		}
	}
	_ = k
	return Profile{Row: fullX, Col: fullY}, true
}

// solveIndifference solves for a mixed strategy over support J of the
// column player making every row in I indifferent under payoff matrix A.
// It returns the strategy restricted to J and the common payoff.
func solveIndifference(a *Matrix, I, J []int) (strategy []float64, payoff float64, ok bool) {
	k := len(I)
	if len(J) != k {
		return nil, 0, false
	}
	// System of k+1 unknowns: y_0..y_{k-1}, v.
	n := k + 1
	m := NewMatrix(n, n)
	b := make([]float64, n)
	for r, i := range I {
		for c, j := range J {
			m.Set(r, c, a.At(i, j))
		}
		m.Set(r, k, -1) // -v
		b[r] = 0
	}
	for c := 0; c < k; c++ {
		m.Set(k, c, 1)
	}
	b[k] = 1
	sol, solved := SolveLinear(m, b)
	if !solved {
		return nil, 0, false
	}
	return sol[:k], sol[k], true
}

// combinations enumerates all k-element subsets of {0..n-1} in
// lexicographic order.
func combinations(n, k int) [][]int {
	if k > n || k <= 0 {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		c := make([]int, k)
		copy(c, idx)
		out = append(out, c)
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

func containsProfile(list []Profile, p Profile) bool {
	for _, q := range list {
		if vecClose(q.Row, p.Row, 1e-6) && vecClose(q.Col, p.Col, 1e-6) {
			return true
		}
	}
	return false
}

func vecClose(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := a[i] - b[i]
		if d > tol || d < -tol {
			return false
		}
	}
	return true
}
