package game

import (
	"fmt"
	"math"
)

// Game is a two-player bimatrix game in normal form. A holds the row
// player's payoffs and B the column player's; both are Rows×Cols. Payoffs
// are utilities: each player prefers larger values.
type Game struct {
	A, B *Matrix
	// RowLabels and ColLabels optionally name the strategies for reporting.
	RowLabels, ColLabels []string
}

// New constructs a bimatrix game from the two payoff matrices. The matrices
// must have identical shape.
func New(a, b *Matrix) *Game {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("game: payoff shape mismatch: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return &Game{A: a, B: b}
}

// NewZeroSum constructs the zero-sum game with row payoffs a and column
// payoffs -a.
func NewZeroSum(a *Matrix) *Game {
	b := a.Clone().Scale(-1)
	return New(a, b)
}

// Shape returns the number of row and column strategies.
func (g *Game) Shape() (rows, cols int) { return g.A.Rows, g.A.Cols }

// Payoffs returns the expected payoffs (row, column) when the row player
// plays mixed strategy x and the column player plays y.
func (g *Game) Payoffs(x, y []float64) (rowPayoff, colPayoff float64) {
	return g.A.Quad(x, y), g.B.Quad(x, y)
}

// Profile is a pair of (possibly mixed) strategies, one per player. Pure
// strategies are probability vectors with a single 1.
type Profile struct {
	Row, Col []float64
}

// RowSupport returns the indices of row strategies played with probability
// greater than tol.
func (p Profile) RowSupport() []int { return support(p.Row, supportTol) }

// ColSupport returns the indices of column strategies played with
// probability greater than tol.
func (p Profile) ColSupport() []int { return support(p.Col, supportTol) }

const supportTol = 1e-9

func support(v []float64, tol float64) []int {
	var s []int
	for i, p := range v {
		if p > tol {
			s = append(s, i)
		}
	}
	return s
}

// Pure returns a pure strategy vector of length n with probability 1 on i.
func Pure(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// Uniform returns the uniform mixed strategy of length n.
func Uniform(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}

// BestResponsesRow returns the row indices that maximize the row player's
// expected payoff against the column strategy y.
func (g *Game) BestResponsesRow(y []float64) []int {
	u := g.A.MulVec(y)
	return argmaxAll(u)
}

// BestResponsesCol returns the column indices that maximize the column
// player's expected payoff against the row strategy x.
func (g *Game) BestResponsesCol(x []float64) []int {
	u := g.B.VecMul(x)
	return argmaxAll(u)
}

// BestResponsesRowInto appends to dst[:0] the row indices maximizing the row
// player's expected payoff against y — BestResponsesRow writing into caller
// scratch. With cap(dst) ≥ Rows it does not allocate.
func (g *Game) BestResponsesRowInto(y []float64, dst []int) []int {
	return bestResponsesInto(g.A.Rows, func(i int) float64 { return dot(g.A.RowView(i), y) }, dst)
}

// BestResponsesColInto appends to dst[:0] the column indices maximizing the
// column player's expected payoff against x — BestResponsesCol writing into
// caller scratch. With cap(dst) ≥ Cols it does not allocate.
func (g *Game) BestResponsesColInto(x []float64, dst []int) []int {
	return bestResponsesInto(g.B.Cols, func(j int) float64 {
		s := 0.0
		for i, xi := range x {
			if xi != 0 {
				s += xi * g.B.At(i, j)
			}
		}
		return s
	}, dst)
}

// bestResponsesInto evaluates u(i) twice — once for the maximum, once to
// collect the argmax set — trading a second sweep for zero allocations. The
// tolerance matches argmaxAll.
func bestResponsesInto(n int, u func(int) float64, dst []int) []int {
	dst = dst[:0]
	if n == 0 {
		return dst
	}
	best := u(0)
	for i := 1; i < n; i++ {
		if v := u(i); v > best {
			best = v
		}
	}
	for i := 0; i < n; i++ {
		if u(i) >= best-1e-9 {
			dst = append(dst, i)
		}
	}
	return dst
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func argmaxAll(u []float64) []int {
	if len(u) == 0 {
		return nil
	}
	best := u[0]
	for _, v := range u[1:] {
		if v > best {
			best = v
		}
	}
	var idx []int
	for i, v := range u {
		if v >= best-1e-9 {
			idx = append(idx, i)
		}
	}
	return idx
}

// IsNash reports whether the profile (x, y) is a Nash equilibrium to within
// tolerance tol: no pure-strategy deviation improves either player's payoff
// by more than tol.
func (g *Game) IsNash(x, y []float64, tol float64) bool {
	rowU := g.A.MulVec(y) // payoff of each pure row strategy vs y
	colU := g.B.VecMul(x) // payoff of each pure col strategy vs x
	curRow, curCol := g.Payoffs(x, y)
	for _, u := range rowU {
		if u > curRow+tol {
			return false
		}
	}
	for _, u := range colU {
		if u > curCol+tol {
			return false
		}
	}
	return true
}

// PureNash enumerates all pure-strategy Nash equilibria.
func (g *Game) PureNash() []Profile {
	rows, cols := g.Shape()
	var out []Profile
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.isPureNash(i, j) {
				out = append(out, Profile{Row: Pure(rows, i), Col: Pure(cols, j)})
			}
		}
	}
	return out
}

func (g *Game) isPureNash(i, j int) bool {
	aij := g.A.At(i, j)
	for r := 0; r < g.A.Rows; r++ {
		if g.A.At(r, j) > aij+1e-12 {
			return false
		}
	}
	bij := g.B.At(i, j)
	for c := 0; c < g.B.Cols; c++ {
		if g.B.At(i, c) > bij+1e-12 {
			return false
		}
	}
	return true
}

// PureProfile is a pure-strategy profile in index form — the allocation-free
// counterpart of a Profile whose vectors are one-hot.
type PureProfile struct{ Row, Col int }

// PureNashInto appends every pure-strategy Nash equilibrium to dst[:0] in
// row-major order — PureNash writing into caller scratch, without
// materializing probability vectors. With enough capacity it does not
// allocate.
func (g *Game) PureNashInto(dst []PureProfile) []PureProfile {
	dst = dst[:0]
	rows, cols := g.Shape()
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.isPureNash(i, j) {
				dst = append(dst, PureProfile{Row: i, Col: j})
			}
		}
	}
	return dst
}

// SelectPure picks, among the provided pure equilibria, the one maximizing
// social welfare with SelectEquilibrium's exact tie-breaks (row payoff, then
// first in row-major order). It returns false on an empty slice.
func (g *Game) SelectPure(eqs []PureProfile) (PureProfile, bool) {
	if len(eqs) == 0 {
		return PureProfile{}, false
	}
	best := eqs[0]
	bestR := g.A.At(best.Row, best.Col)
	bestW := bestR + g.B.At(best.Row, best.Col)
	for _, e := range eqs[1:] {
		r := g.A.At(e.Row, e.Col)
		w := r + g.B.At(e.Row, e.Col)
		if w > bestW+1e-12 || (math.Abs(w-bestW) <= 1e-12 && r > bestR+1e-12) {
			best, bestW, bestR = e, w, r
		}
	}
	return best, true
}

// BestPureNash returns the welfare-maximal pure Nash equilibrium — exactly
// SelectEquilibrium(PureNash()) restricted to pure profiles — scanning cells
// row-major without allocating. ok is false when the game has no pure
// equilibrium.
func (g *Game) BestPureNash() (p PureProfile, ok bool) {
	rows, cols := g.Shape()
	var bestW, bestR float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if !g.isPureNash(i, j) {
				continue
			}
			r := g.A.At(i, j)
			w := r + g.B.At(i, j)
			if !ok || w > bestW+1e-12 || (math.Abs(w-bestW) <= 1e-12 && r > bestR+1e-12) {
				p, bestW, bestR, ok = PureProfile{Row: i, Col: j}, w, r, true
			}
		}
	}
	return p, ok
}

// SocialWelfare returns the sum of both players' payoffs at (x, y).
func (g *Game) SocialWelfare(x, y []float64) float64 {
	r, c := g.Payoffs(x, y)
	return r + c
}

// SelectEquilibrium picks, among the provided equilibria, the one that
// maximizes social welfare; ties are broken toward the row player's payoff
// and then toward the lexicographically smallest support. It returns false
// when the slice is empty.
func (g *Game) SelectEquilibrium(eqs []Profile) (Profile, bool) {
	if len(eqs) == 0 {
		return Profile{}, false
	}
	best := eqs[0]
	bestW := g.SocialWelfare(best.Row, best.Col)
	bestR, _ := g.Payoffs(best.Row, best.Col)
	for _, e := range eqs[1:] {
		w := g.SocialWelfare(e.Row, e.Col)
		r, _ := g.Payoffs(e.Row, e.Col)
		if w > bestW+1e-12 || (math.Abs(w-bestW) <= 1e-12 && r > bestR+1e-12) {
			best, bestW, bestR = e, w, r
		}
	}
	return best, true
}
