package game

import (
	"fmt"
	"math"
)

// Game is a two-player bimatrix game in normal form. A holds the row
// player's payoffs and B the column player's; both are Rows×Cols. Payoffs
// are utilities: each player prefers larger values.
type Game struct {
	A, B *Matrix
	// RowLabels and ColLabels optionally name the strategies for reporting.
	RowLabels, ColLabels []string
}

// New constructs a bimatrix game from the two payoff matrices. The matrices
// must have identical shape.
func New(a, b *Matrix) *Game {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("game: payoff shape mismatch: %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	return &Game{A: a, B: b}
}

// NewZeroSum constructs the zero-sum game with row payoffs a and column
// payoffs -a.
func NewZeroSum(a *Matrix) *Game {
	b := a.Clone().Scale(-1)
	return New(a, b)
}

// Shape returns the number of row and column strategies.
func (g *Game) Shape() (rows, cols int) { return g.A.Rows, g.A.Cols }

// Payoffs returns the expected payoffs (row, column) when the row player
// plays mixed strategy x and the column player plays y.
func (g *Game) Payoffs(x, y []float64) (rowPayoff, colPayoff float64) {
	return g.A.Quad(x, y), g.B.Quad(x, y)
}

// Profile is a pair of (possibly mixed) strategies, one per player. Pure
// strategies are probability vectors with a single 1.
type Profile struct {
	Row, Col []float64
}

// RowSupport returns the indices of row strategies played with probability
// greater than tol.
func (p Profile) RowSupport() []int { return support(p.Row, supportTol) }

// ColSupport returns the indices of column strategies played with
// probability greater than tol.
func (p Profile) ColSupport() []int { return support(p.Col, supportTol) }

const supportTol = 1e-9

func support(v []float64, tol float64) []int {
	var s []int
	for i, p := range v {
		if p > tol {
			s = append(s, i)
		}
	}
	return s
}

// Pure returns a pure strategy vector of length n with probability 1 on i.
func Pure(n, i int) []float64 {
	v := make([]float64, n)
	v[i] = 1
	return v
}

// Uniform returns the uniform mixed strategy of length n.
func Uniform(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1 / float64(n)
	}
	return v
}

// BestResponsesRow returns the row indices that maximize the row player's
// expected payoff against the column strategy y.
func (g *Game) BestResponsesRow(y []float64) []int {
	u := g.A.MulVec(y)
	return argmaxAll(u)
}

// BestResponsesCol returns the column indices that maximize the column
// player's expected payoff against the row strategy x.
func (g *Game) BestResponsesCol(x []float64) []int {
	u := g.B.VecMul(x)
	return argmaxAll(u)
}

func argmaxAll(u []float64) []int {
	if len(u) == 0 {
		return nil
	}
	best := u[0]
	for _, v := range u[1:] {
		if v > best {
			best = v
		}
	}
	var idx []int
	for i, v := range u {
		if v >= best-1e-9 {
			idx = append(idx, i)
		}
	}
	return idx
}

// IsNash reports whether the profile (x, y) is a Nash equilibrium to within
// tolerance tol: no pure-strategy deviation improves either player's payoff
// by more than tol.
func (g *Game) IsNash(x, y []float64, tol float64) bool {
	rowU := g.A.MulVec(y) // payoff of each pure row strategy vs y
	colU := g.B.VecMul(x) // payoff of each pure col strategy vs x
	curRow, curCol := g.Payoffs(x, y)
	for _, u := range rowU {
		if u > curRow+tol {
			return false
		}
	}
	for _, u := range colU {
		if u > curCol+tol {
			return false
		}
	}
	return true
}

// PureNash enumerates all pure-strategy Nash equilibria.
func (g *Game) PureNash() []Profile {
	rows, cols := g.Shape()
	var out []Profile
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if g.isPureNash(i, j) {
				out = append(out, Profile{Row: Pure(rows, i), Col: Pure(cols, j)})
			}
		}
	}
	return out
}

func (g *Game) isPureNash(i, j int) bool {
	aij := g.A.At(i, j)
	for r := 0; r < g.A.Rows; r++ {
		if g.A.At(r, j) > aij+1e-12 {
			return false
		}
	}
	bij := g.B.At(i, j)
	for c := 0; c < g.B.Cols; c++ {
		if g.B.At(i, c) > bij+1e-12 {
			return false
		}
	}
	return true
}

// SocialWelfare returns the sum of both players' payoffs at (x, y).
func (g *Game) SocialWelfare(x, y []float64) float64 {
	r, c := g.Payoffs(x, y)
	return r + c
}

// SelectEquilibrium picks, among the provided equilibria, the one that
// maximizes social welfare; ties are broken toward the row player's payoff
// and then toward the lexicographically smallest support. It returns false
// when the slice is empty.
func (g *Game) SelectEquilibrium(eqs []Profile) (Profile, bool) {
	if len(eqs) == 0 {
		return Profile{}, false
	}
	best := eqs[0]
	bestW := g.SocialWelfare(best.Row, best.Col)
	bestR, _ := g.Payoffs(best.Row, best.Col)
	for _, e := range eqs[1:] {
		w := g.SocialWelfare(e.Row, e.Col)
		r, _ := g.Payoffs(e.Row, e.Col)
		if w > bestW+1e-12 || (math.Abs(w-bestW) <= 1e-12 && r > bestR+1e-12) {
			best, bestW, bestR = e, w, r
		}
	}
	return best, true
}
