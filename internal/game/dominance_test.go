package game

import (
	"math/rand"
	"testing"
)

// iteratedGame is dominance-solvable only through iteration: no column is
// dominated until row 2 dies, and row 1 / col 1 only fall in the second
// round. Solving it pins the fixed-point loop, not just one sweep.
//
//	A (row payoffs)        B (col payoffs)
//	 5.0  5.0   0           5  4  3
//	 4.5  4.5  10           5  6  4
//	 4.0  4.0  -1           0  0  9
//
// Round 1: row 2 < row 0 everywhere; then col 2 < col 0 on rows {0,1}.
// Round 2: row 1 < row 0 on cols {0,1}; then col 1 < col 0 on row {0}.
func iteratedGame() *Game {
	a := MatrixFrom([][]float64{
		{5.0, 5.0, 0},
		{4.5, 4.5, 10},
		{4.0, 4.0, -1},
	})
	b := MatrixFrom([][]float64{
		{5, 4, 3},
		{5, 6, 4},
		{0, 0, 9},
	})
	return New(a, b)
}

func TestEliminateDominatedIterates(t *testing.T) {
	g := iteratedGame()
	r := g.EliminateDominated()
	if rows, cols := r.Game.Shape(); rows != 1 || cols != 1 {
		t.Fatalf("iterated game should reduce to 1x1, got %dx%d", rows, cols)
	}
	if r.RowOrig[0] != 0 || r.ColOrig[0] != 0 {
		t.Fatalf("wrong survivors: rows %v cols %v (want [0] [0])", r.RowOrig, r.ColOrig)
	}
	if got := r.Game.A.At(0, 0); got != 5.0 {
		t.Errorf("reduced A = %v, want 5", got)
	}
	if got := r.Game.B.At(0, 0); got != 5.0 {
		t.Errorf("reduced B = %v, want 5", got)
	}
}

// Weak dominance (a tie in any alive cell) and sub-tolerance advantages
// (≤ 1e-12) must not eliminate a strategy: IESDS is only sound for strict
// dominance.
func TestEliminateDominatedStrictOnly(t *testing.T) {
	ties := New(
		MatrixFrom([][]float64{{1, 1}, {1, 0}}), // row 1 only weakly dominated
		MatrixFrom([][]float64{{2, 2}, {3, 3}}), // columns tie for the col player
	)
	if r := ties.EliminateDominated(); len(r.RowOrig) != 2 || len(r.ColOrig) != 2 {
		t.Fatalf("weak dominance eliminated a strategy: rows %v cols %v", r.RowOrig, r.ColOrig)
	}

	eps := 1e-13 // below the 1e-12 comparison tolerance
	tiny := New(
		MatrixFrom([][]float64{{1 + eps, 1 + eps}, {1, 1}}),
		MatrixFrom([][]float64{{2, 2}, {3, 3}}),
	)
	if r := tiny.EliminateDominated(); len(r.RowOrig) != 2 {
		t.Fatalf("sub-tolerance advantage eliminated a row: %v", r.RowOrig)
	}

	clear := New(
		MatrixFrom([][]float64{{1 + 1e-9, 1 + 1e-9}, {1, 1}}),
		MatrixFrom([][]float64{{2, 2}, {3, 3}}),
	)
	if r := clear.EliminateDominated(); len(r.RowOrig) != 1 || r.RowOrig[0] != 0 {
		t.Fatalf("clear strict dominance not applied: %v", r.RowOrig)
	}
}

// Each player always keeps at least one strategy, even in degenerate
// single-strategy games where the dominance scan has nothing to compare.
func TestEliminateDominatedKeepsLastStrategy(t *testing.T) {
	// 1x3: the lone row must survive; cols 0 and 1 fall to col 2.
	g := New(
		MatrixFrom([][]float64{{7, 7, 7}}),
		MatrixFrom([][]float64{{1, 2, 3}}),
	)
	r := g.EliminateDominated()
	if rows, cols := r.Game.Shape(); rows != 1 || cols != 1 {
		t.Fatalf("got %dx%d, want 1x1", rows, cols)
	}
	if r.RowOrig[0] != 0 || r.ColOrig[0] != 2 {
		t.Fatalf("survivors rows %v cols %v, want [0] [2]", r.RowOrig, r.ColOrig)
	}

	// Fully dominance-solvable games stop at 1x1, never 0x0.
	r = iteratedGame().EliminateDominated()
	if len(r.RowOrig) == 0 || len(r.ColOrig) == 0 {
		t.Fatalf("eliminated a player's last strategy: rows %v cols %v", r.RowOrig, r.ColOrig)
	}
}

// A game with no strictly dominated strategies reduces to itself with
// identity index maps.
func TestEliminateDominatedIdentityOnMatchingPennies(t *testing.T) {
	g := MatchingPennies()
	r := g.EliminateDominated()
	if rows, cols := r.Game.Shape(); rows != 2 || cols != 2 {
		t.Fatalf("matching pennies reduced to %dx%d", rows, cols)
	}
	for i, orig := range r.RowOrig {
		if orig != i {
			t.Fatalf("RowOrig = %v, want identity", r.RowOrig)
		}
	}
	for j, orig := range r.ColOrig {
		if orig != j {
			t.Fatalf("ColOrig = %v, want identity", r.ColOrig)
		}
	}
}

// Expand puts reduced-game probabilities back at their original indices and
// exactly zero everywhere that was eliminated.
func TestReducedExpandZeroFill(t *testing.T) {
	r := iteratedGame().EliminateDominated()
	exp := r.Expand(Profile{Row: []float64{1}, Col: []float64{1}}, 3, 3)
	wantRow := []float64{1, 0, 0}
	wantCol := []float64{1, 0, 0}
	for i := range wantRow {
		if exp.Row[i] != wantRow[i] {
			t.Fatalf("Expand row = %v, want %v", exp.Row, wantRow)
		}
		if exp.Col[i] != wantCol[i] {
			t.Fatalf("Expand col = %v, want %v", exp.Col, wantCol)
		}
	}
}

// The reduced payoff matrices are exact (bit-equal) submatrices of the
// originals at RowOrig x ColOrig — elimination copies, never recomputes.
func TestEliminateDominatedExactSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		rows := 2 + rng.Intn(4)
		cols := 2 + rng.Intn(4)
		a := NewMatrix(rows, cols)
		b := NewMatrix(rows, cols)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
			b.Data[i] = rng.NormFloat64()
		}
		g := New(a, b)
		r := g.EliminateDominated()
		for ri, i := range r.RowOrig {
			for cj, j := range r.ColOrig {
				if r.Game.A.At(ri, cj) != g.A.At(i, j) || r.Game.B.At(ri, cj) != g.B.At(i, j) {
					t.Fatalf("trial %d: reduced payoff at (%d,%d) is not the original at (%d,%d)",
						trial, ri, cj, i, j)
				}
			}
		}
	}
}
