package game

// Canonical games used by tests and by the scheduler's payoff construction.

// PrisonersDilemma returns the classic prisoner's dilemma with the standard
// payoff ordering T > R > P > S (temptation, reward, punishment, sucker).
// Strategy 0 is "cooperate", strategy 1 is "defect". The unique Nash
// equilibrium is (defect, defect). It panics unless T > R > P > S.
func PrisonersDilemma(t, r, p, s float64) *Game {
	if !(t > r && r > p && p > s) {
		panic("game: prisoner's dilemma requires T > R > P > S")
	}
	a := MatrixFrom([][]float64{{r, s}, {t, p}})
	b := MatrixFrom([][]float64{{r, t}, {s, p}})
	g := New(a, b)
	g.RowLabels = []string{"cooperate", "defect"}
	g.ColLabels = []string{"cooperate", "defect"}
	return g
}

// MatchingPennies returns the zero-sum matching pennies game, whose unique
// equilibrium is uniform mixing by both players.
func MatchingPennies() *Game {
	a := MatrixFrom([][]float64{{1, -1}, {-1, 1}})
	return NewZeroSum(a)
}

// BattleOfTheSexes returns the classic coordination game with two pure
// equilibria and one mixed equilibrium.
func BattleOfTheSexes() *Game {
	a := MatrixFrom([][]float64{{3, 0}, {0, 2}})
	b := MatrixFrom([][]float64{{2, 0}, {0, 3}})
	return New(a, b)
}

// Coordination returns an n×n pure coordination game where both players
// receive payoff[i] when they coordinate on strategy i and 0 otherwise.
func Coordination(payoff []float64) *Game {
	n := len(payoff)
	a := NewMatrix(n, n)
	b := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, payoff[i])
		b.Set(i, i, payoff[i])
	}
	return New(a, b)
}

// FromCosts builds a game from cost matrices (lower is better) by negating
// them into utilities, which is how DEEP turns energy costs into payoffs.
func FromCosts(costA, costB *Matrix) *Game {
	return New(costA.Clone().Scale(-1), costB.Clone().Scale(-1))
}
