package core

import (
	"math"
	"testing"

	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/workload"
)

func TestDeployPipeline(t *testing.T) {
	sys := NewSystem(workload.Testbed())
	dep, err := sys.Deploy(workload.TextProcessing())
	if err != nil {
		t.Fatal(err)
	}
	if dep.App != "text" || len(dep.Placement) != 6 {
		t.Errorf("deployment = %+v", dep)
	}
	if dep.Result.TotalEnergy <= 0 {
		t.Error("no energy recorded")
	}
	// The pipeline logs scheduling decisions.
	if got := len(sys.Metrics.EventsOfKind("scheduled")); got != 6 {
		t.Errorf("scheduled events = %d", got)
	}
	if _, ok := sys.Metrics.Gauge("stages_text"); !ok {
		t.Error("stage gauge missing")
	}
	if h, ok := sys.Metrics.Histogram("ct_s"); !ok || h.Count != 6 {
		t.Errorf("ct histogram = %+v %v", h, ok)
	}
}

func TestDeployRejectsInvalidApp(t *testing.T) {
	sys := NewSystem(workload.Testbed())
	app := workload.TextProcessing()
	app.Microservices = nil // corrupt it
	if _, err := sys.Deploy(app); err == nil {
		t.Error("invalid app accepted")
	}
}

func TestCompareSortsByEnergy(t *testing.T) {
	sys := NewSystem(workload.Testbed())
	out, err := sys.Compare(workload.VideoProcessing(), sched.All(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("methods = %d", len(out))
	}
	for i := 1; i < len(out); i++ {
		if out[i].Result.TotalEnergy < out[i-1].Result.TotalEnergy {
			t.Error("compare output not sorted by energy")
		}
	}
	if out[0].Method != "deep" && out[0].Result.TotalEnergy > out[1].Result.TotalEnergy {
		t.Errorf("best method = %s", out[0].Method)
	}
}

func TestDistributionOf(t *testing.T) {
	p := sim.Placement{
		"a": {Device: "medium", Registry: "hub"},
		"b": {Device: "medium", Registry: "hub"},
		"c": {Device: "small", Registry: "regional"},
	}
	d := DistributionOf(p)
	if math.Abs(d["medium"]["hub"]-2.0/3) > 1e-9 {
		t.Errorf("medium/hub = %v", d["medium"]["hub"])
	}
	if math.Abs(d["small"]["regional"]-1.0/3) > 1e-9 {
		t.Errorf("small/regional = %v", d["small"]["regional"])
	}
	if len(DistributionOf(nil)) != 0 {
		t.Error("empty placement should give empty distribution")
	}
}

func TestSummarize(t *testing.T) {
	sys := NewSystem(workload.Testbed())
	dep, err := sys.Deploy(workload.VideoProcessing())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(dep.Result)
	if s.Total != dep.Result.TotalEnergy {
		t.Error("total mismatch")
	}
	if len(s.PerMS) != 6 {
		t.Errorf("per-ms entries = %d", len(s.PerMS))
	}
	if len(s.Heavies) == 0 || s.Heavies[0] != "video/ha-train" {
		t.Errorf("heavies = %v", s.Heavies)
	}
}
