// Package core wires DEEP's components into the pipeline of the paper's
// Figure 1: microservice requirement analysis, dataflow dependency analysis,
// Nash-game-based scheduling, and dataflow processing, with a monitoring
// subsystem logging every step.
package core

import (
	"fmt"
	"sort"

	"deep/internal/dag"
	"deep/internal/monitor"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
)

// System is a configured DEEP instance bound to a cluster.
type System struct {
	Cluster   *sim.Cluster
	Scheduler sched.Scheduler
	Metrics   *monitor.Metrics
	// SimOptions configure the dataflow-processing runs.
	SimOptions sim.Options
}

// NewSystem returns a system using the Nash scheduler by default.
func NewSystem(cluster *sim.Cluster) *System {
	return &System{
		Cluster:   cluster,
		Scheduler: sched.NewDEEP(),
		Metrics:   monitor.NewMetrics(),
	}
}

// Deployment is the outcome of one end-to-end DEEP run.
type Deployment struct {
	App       string
	Placement sim.Placement
	Result    *sim.Result
}

// Deploy runs the full Figure 1 pipeline for one application.
func (s *System) Deploy(app *dag.App) (*Deployment, error) {
	// Requirement analysis: every microservice must fit at least one
	// device (validated inside scheduling), and the app must be a sound
	// DAG.
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("core: requirement analysis: %w", err)
	}
	s.Metrics.Log(0, "requirements-analyzed", map[string]string{"app": app.Name})

	// Dependency analysis: synchronization-barrier stages.
	stages, err := app.Stages()
	if err != nil {
		return nil, fmt.Errorf("core: dependency analysis: %w", err)
	}
	s.Metrics.SetGauge("stages_"+app.Name, float64(len(stages)))

	// Scheduling (the Nash game).
	placement, err := s.Scheduler.Schedule(app, s.Cluster)
	if err != nil {
		return nil, fmt.Errorf("core: scheduling: %w", err)
	}
	for ms, a := range placement {
		s.Metrics.Log(0, "scheduled", map[string]string{"ms": ms, "device": a.Device, "registry": a.Registry})
	}

	// Dataflow processing.
	res, err := sim.Run(app, s.Cluster, placement, s.SimOptions)
	if err != nil {
		return nil, fmt.Errorf("core: dataflow processing: %w", err)
	}
	s.Metrics.Observe("makespan_s", res.Makespan)
	s.Metrics.Observe("energy_j", float64(res.TotalEnergy))
	for _, m := range res.Microservices {
		s.Metrics.Observe("ct_s", m.CT)
	}
	return &Deployment{App: app.Name, Placement: placement, Result: res}, nil
}

// MethodResult pairs a scheduling method with its simulated outcome.
type MethodResult struct {
	Method    string
	Placement sim.Placement
	Result    *sim.Result
}

// Compare runs several scheduling methods on the same application and
// cluster, returning results sorted by total energy (best first).
func (s *System) Compare(app *dag.App, schedulers []sched.Scheduler) ([]MethodResult, error) {
	var out []MethodResult
	for _, sc := range schedulers {
		p, err := sc.Schedule(app, s.Cluster)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc.Name(), err)
		}
		res, err := sim.Run(app, s.Cluster, p, s.SimOptions)
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", sc.Name(), err)
		}
		out = append(out, MethodResult{Method: sc.Name(), Placement: p, Result: res})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Result.TotalEnergy < out[j].Result.TotalEnergy
	})
	return out, nil
}

// Distribution summarizes a placement as the paper's Table III does: the
// fraction of microservices on each (device, registry) pair.
type Distribution map[string]map[string]float64

// DistributionOf computes the per-(device, registry) fractions.
func DistributionOf(p sim.Placement) Distribution {
	d := make(Distribution)
	if len(p) == 0 {
		return d
	}
	frac := 1 / float64(len(p))
	for _, a := range p {
		if d[a.Device] == nil {
			d[a.Device] = make(map[string]float64)
		}
		d[a.Device][a.Registry] += frac
	}
	return d
}

// EnergySummary aggregates a result the way Figure 3 reports it.
type EnergySummary struct {
	Total   units.Joules
	PerMS   map[string]units.Joules
	Heavies []string // microservices above the mean, sorted by energy desc
}

// Summarize builds the Figure 3a view of a result.
func Summarize(res *sim.Result) EnergySummary {
	s := EnergySummary{Total: res.TotalEnergy, PerMS: make(map[string]units.Joules)}
	var mean float64
	for _, m := range res.Microservices {
		s.PerMS[m.Name] = m.TotalEnergy()
		mean += float64(m.TotalEnergy())
	}
	if len(res.Microservices) > 0 {
		mean /= float64(len(res.Microservices))
	}
	type pair struct {
		name string
		e    float64
	}
	var above []pair
	for n, e := range s.PerMS {
		if float64(e) > mean {
			above = append(above, pair{n, float64(e)})
		}
	}
	sort.Slice(above, func(i, j int) bool {
		if above[i].e != above[j].e {
			return above[i].e > above[j].e
		}
		return above[i].name < above[j].name
	})
	for _, p := range above {
		s.Heavies = append(s.Heavies, p.name)
	}
	return s
}
