package chaos

import (
	"reflect"
	"testing"
	"time"
)

func genConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Horizon:     10 * time.Second,
		Devices:     []string{"dev-00", "dev-01", "dev-02", "dev-03", "dev-04"},
		CrashRate:   2,
		Registries:  []string{"hub", "regional"},
		OutageRate:  0.5,
		Links:       [][2]string{{"hub", "dev-00"}, {"regional", "dev-03"}},
		DegradeRate: 0.5,
	}
}

// TestGenerateDeterministic pins the reproducibility contract: same config,
// same schedule, byte for byte; a different seed diverges.
func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(genConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(genConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed generated different schedules")
	}
	c, err := Generate(genConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatal("different seeds generated identical schedules")
	}
	if a.Len() == 0 {
		t.Fatal("10s at crash rate 2 generated no events")
	}
}

// TestGenerateInvariants pins the structural guarantees across many seeds:
// schedules validate (ordered, paired down/up, sane factors), every crash
// has a recovery, and the MinLive floors hold at every instant.
func TestGenerateInvariants(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		cfg := genConfig(seed)
		cfg.MinLiveDevices = 3
		s, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		downDev, downReg := 0, 0
		crashes, recovers := 0, 0
		for _, e := range s.Events {
			switch e.Kind {
			case DeviceCrash:
				crashes++
				downDev++
				if live := len(cfg.Devices) - downDev; live < cfg.MinLiveDevices {
					t.Fatalf("seed %d: live devices fell to %d (< floor %d) at %s", seed, live, cfg.MinLiveDevices, e.At)
				}
			case DeviceRecover:
				recovers++
				downDev--
			case RegistryOutage:
				downReg++
				if live := len(cfg.Registries) - downReg; live < 1 {
					t.Fatalf("seed %d: live registries fell below 1 at %s", seed, e.At)
				}
			case RegistryRecover:
				downReg--
			}
		}
		if crashes != recovers {
			t.Fatalf("seed %d: %d crashes but %d recoveries", seed, crashes, recovers)
		}
	}
}

// TestGenerateErrors pins the config validation: rates without candidates
// and a missing horizon are rejected.
func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Config{Horizon: time.Second, CrashRate: 1}); err == nil {
		t.Fatal("crash rate without devices accepted")
	}
	if _, err := Generate(Config{Horizon: time.Second, OutageRate: 1}); err == nil {
		t.Fatal("outage rate without registries accepted")
	}
	if _, err := Generate(Config{Horizon: time.Second, DegradeRate: 1}); err == nil {
		t.Fatal("degrade rate without links accepted")
	}
	if _, err := Generate(Config{CrashRate: 1, Devices: []string{"d"}}); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

// TestValidateRejects pins Validate's negative cases: unordered events,
// double crashes, orphan recoveries, out-of-range factors.
func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    Schedule
	}{
		{"out of order", Schedule{Events: []Event{
			{At: 2 * time.Second, Kind: DeviceCrash, Target: "d"},
			{At: time.Second, Kind: DeviceRecover, Target: "d"},
		}}},
		{"double crash", Schedule{Events: []Event{
			{At: 1, Kind: DeviceCrash, Target: "d"},
			{At: 2, Kind: DeviceCrash, Target: "d"},
		}}},
		{"orphan recover", Schedule{Events: []Event{
			{At: 1, Kind: DeviceRecover, Target: "d"},
		}}},
		{"orphan registry recover", Schedule{Events: []Event{
			{At: 1, Kind: RegistryRecover, Target: "r"},
		}}},
		{"bad factor", Schedule{Events: []Event{
			{At: 1, Kind: LinkDegrade, A: "a", B: "b", Factor: 1.5},
		}}},
		{"orphan restore", Schedule{Events: []Event{
			{At: 1, Kind: LinkRestore, A: "a", B: "b"},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(); err == nil {
				t.Fatal("invalid schedule accepted")
			}
		})
	}
}

// TestEventString smoke-tests the log rendering for each kind.
func TestEventString(t *testing.T) {
	e := Event{At: time.Second, Kind: DeviceCrash, Target: "dev-01"}
	if got := e.String(); got != "1s device-crash dev-01" {
		t.Fatalf("unexpected rendering %q", got)
	}
	l := Event{At: time.Second, Kind: LinkDegrade, A: "a", B: "b", Factor: 0.1}
	if got := l.String(); got != "1s link-degrade a<->b x0.10" {
		t.Fatalf("unexpected rendering %q", got)
	}
}
