// Package chaos is a deterministic fault injector for cluster churn
// scenarios: seeded schedules of device crash/recover, registry outage, and
// link degradation events that a driver replays against a running fleet.
// Everything is derived from a single seed, so a chaos run is exactly
// reproducible — the property that makes churn a measurable benchmark
// scenario rather than flaky noise.
//
// The package only describes faults; applying them is the consumer's job
// (internal/fleet translates events into churn deltas and patches its
// compiled cluster substrate incrementally).
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Kind classifies one fault event.
type Kind uint8

const (
	// DeviceCrash takes a device out of the cluster: placements must stop
	// landing on it until the matching DeviceRecover.
	DeviceCrash Kind = iota
	// DeviceRecover returns a crashed device to service.
	DeviceRecover
	// RegistryOutage takes an image registry out: placements must stop
	// deploying from it.
	RegistryOutage
	// RegistryRecover returns a registry to service.
	RegistryRecover
	// LinkDegrade multiplies a link's bandwidth by Factor (0 < Factor < 1).
	LinkDegrade
	// LinkRestore returns a degraded link to its original bandwidth.
	LinkRestore

	numKinds
)

var kindNames = [numKinds]string{
	"device-crash", "device-recover", "registry-outage", "registry-recover",
	"link-degrade", "link-restore",
}

// String returns the kind's report label.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one fault at an offset from the start of the run.
type Event struct {
	// At is the event's offset on the driver clock.
	At   time.Duration `json:"at"`
	Kind Kind          `json:"kind"`
	// Target is the device or registry name for device/registry events.
	Target string `json:"target,omitempty"`
	// A, B are the link endpoints for link events.
	A string `json:"a,omitempty"`
	B string `json:"b,omitempty"`
	// Factor is the bandwidth multiplier for LinkDegrade.
	Factor float64 `json:"factor,omitempty"`
}

// String renders the event for logs.
func (e Event) String() string {
	switch e.Kind {
	case LinkDegrade:
		return fmt.Sprintf("%s %s %s<->%s x%.2f", e.At, e.Kind, e.A, e.B, e.Factor)
	case LinkRestore:
		return fmt.Sprintf("%s %s %s<->%s", e.At, e.Kind, e.A, e.B)
	default:
		return fmt.Sprintf("%s %s %s", e.At, e.Kind, e.Target)
	}
}

// Schedule is an ordered fault sequence. Build one by hand for targeted
// scenarios or with Generate for seeded random churn.
type Schedule struct {
	Seed   int64   `json:"seed"`
	Events []Event `json:"events"`
}

// Sort orders the events by offset, preserving the relative order of
// simultaneous events (crash-before-recover pairs generated at one instant
// stay causal).
func (s *Schedule) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
}

// Len returns the number of events.
func (s *Schedule) Len() int { return len(s.Events) }

// Config tunes Generate. Rates are events per second of schedule time; mean
// durations shape the exponential downtime draws.
type Config struct {
	// Seed drives every random draw; equal configs generate equal schedules.
	Seed int64
	// Horizon bounds event start times; recoveries may land past it (the
	// consumer decides whether to replay them).
	Horizon time.Duration

	// Devices that may crash. MinLiveDevices (default 1) bounds concurrent
	// crashes: the generator never takes the live count below it.
	Devices        []string
	MinLiveDevices int
	// CrashRate is mean device crashes per second; MeanDowntime the mean
	// crash-to-recover gap (default 500ms).
	CrashRate    float64
	MeanDowntime time.Duration

	// Registries that may suffer outages. MinLiveRegistries (default 1)
	// keeps at least that many serving, so schedules cannot make every
	// placement infeasible unless explicitly asked to.
	Registries        []string
	MinLiveRegistries int
	OutageRate        float64
	MeanOutage        time.Duration

	// Links that may degrade, as endpoint pairs; DegradeFactor (default
	// 0.1) multiplies bandwidth while degraded.
	Links         [][2]string
	DegradeRate   float64
	MeanDegrade   time.Duration
	DegradeFactor float64
}

func (c Config) withDefaults() Config {
	if c.MinLiveDevices <= 0 {
		c.MinLiveDevices = 1
	}
	if c.MinLiveRegistries <= 0 {
		c.MinLiveRegistries = 1
	}
	if c.MeanDowntime <= 0 {
		c.MeanDowntime = 500 * time.Millisecond
	}
	if c.MeanOutage <= 0 {
		c.MeanOutage = c.MeanDowntime
	}
	if c.MeanDegrade <= 0 {
		c.MeanDegrade = c.MeanDowntime
	}
	if c.DegradeFactor <= 0 || c.DegradeFactor >= 1 {
		c.DegradeFactor = 0.1
	}
	return c
}

// Generate builds a seeded random schedule: each fault class is an
// independent Poisson process over the horizon, each fault picks a uniform
// target among the currently healthy candidates (respecting the MinLive
// floors), and every fault schedules its own recovery after an exponential
// downtime. Deterministic in Config.
func Generate(cfg Config) (*Schedule, error) {
	cfg = cfg.withDefaults()
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("chaos: generate needs a positive horizon")
	}
	if cfg.CrashRate > 0 && len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("chaos: crash rate without crashable devices")
	}
	if cfg.OutageRate > 0 && len(cfg.Registries) == 0 {
		return nil, fmt.Errorf("chaos: outage rate without registries")
	}
	if cfg.DegradeRate > 0 && len(cfg.Links) == 0 {
		return nil, fmt.Errorf("chaos: degrade rate without links")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Schedule{Seed: cfg.Seed}

	// outageWalk runs one fault class: exponential gaps at rate, uniform
	// target among healthy candidates with a floor on the healthy count,
	// exponential downtime, paired down/up events.
	outageWalk := func(rate float64, candidates []string, minLive int, meanDown time.Duration, down, up Kind) {
		if rate <= 0 || len(candidates) == 0 {
			return
		}
		healthyAt := make(map[string]time.Duration, len(candidates))
		for _, c := range candidates {
			healthyAt[c] = 0
		}
		for t := time.Duration(rng.ExpFloat64() / rate * float64(time.Second)); t < cfg.Horizon; t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second)) {
			var healthy []string
			for _, c := range candidates {
				if healthyAt[c] <= t {
					healthy = append(healthy, c)
				}
			}
			if len(healthy) <= minLive {
				continue // dropping another would break the floor
			}
			target := healthy[rng.Intn(len(healthy))]
			downFor := time.Duration(rng.ExpFloat64() * float64(meanDown))
			if downFor <= 0 {
				downFor = time.Millisecond
			}
			healthyAt[target] = t + downFor
			s.Events = append(s.Events,
				Event{At: t, Kind: down, Target: target},
				Event{At: t + downFor, Kind: up, Target: target})
		}
	}

	outageWalk(cfg.CrashRate, cfg.Devices, cfg.MinLiveDevices, cfg.MeanDowntime, DeviceCrash, DeviceRecover)
	outageWalk(cfg.OutageRate, cfg.Registries, cfg.MinLiveRegistries, cfg.MeanOutage, RegistryOutage, RegistryRecover)

	if cfg.DegradeRate > 0 {
		healthyAt := make(map[int]time.Duration, len(cfg.Links))
		rate := cfg.DegradeRate
		for t := time.Duration(rng.ExpFloat64() / rate * float64(time.Second)); t < cfg.Horizon; t += time.Duration(rng.ExpFloat64() / rate * float64(time.Second)) {
			var healthy []int
			for i := range cfg.Links {
				if healthyAt[i] <= t {
					healthy = append(healthy, i)
				}
			}
			if len(healthy) == 0 {
				continue
			}
			li := healthy[rng.Intn(len(healthy))]
			downFor := time.Duration(rng.ExpFloat64() * float64(cfg.MeanDegrade))
			if downFor <= 0 {
				downFor = time.Millisecond
			}
			healthyAt[li] = t + downFor
			l := cfg.Links[li]
			s.Events = append(s.Events,
				Event{At: t, Kind: LinkDegrade, A: l[0], B: l[1], Factor: cfg.DegradeFactor},
				Event{At: t + downFor, Kind: LinkRestore, A: l[0], B: l[1]})
		}
	}

	s.Sort()
	return s, nil
}

// Validate checks structural sanity: ordered events, crash/recover pairing
// per target (no double crash, no recovery of a healthy target), factors in
// range. Generate's output always validates.
func (s *Schedule) Validate() error {
	var last time.Duration
	downDev := map[string]bool{}
	downReg := map[string]bool{}
	downLink := map[[2]string]bool{}
	for i, e := range s.Events {
		if e.At < last {
			return fmt.Errorf("chaos: event %d out of order (%s before %s)", i, e.At, last)
		}
		last = e.At
		switch e.Kind {
		case DeviceCrash:
			if downDev[e.Target] {
				return fmt.Errorf("chaos: event %d crashes already-down device %q", i, e.Target)
			}
			downDev[e.Target] = true
		case DeviceRecover:
			if !downDev[e.Target] {
				return fmt.Errorf("chaos: event %d recovers healthy device %q", i, e.Target)
			}
			delete(downDev, e.Target)
		case RegistryOutage:
			if downReg[e.Target] {
				return fmt.Errorf("chaos: event %d outages already-down registry %q", i, e.Target)
			}
			downReg[e.Target] = true
		case RegistryRecover:
			if !downReg[e.Target] {
				return fmt.Errorf("chaos: event %d recovers healthy registry %q", i, e.Target)
			}
			delete(downReg, e.Target)
		case LinkDegrade:
			if e.Factor <= 0 || e.Factor >= 1 {
				return fmt.Errorf("chaos: event %d degrade factor %v out of (0,1)", i, e.Factor)
			}
			if downLink[[2]string{e.A, e.B}] {
				return fmt.Errorf("chaos: event %d degrades already-degraded link %s<->%s", i, e.A, e.B)
			}
			downLink[[2]string{e.A, e.B}] = true
		case LinkRestore:
			if !downLink[[2]string{e.A, e.B}] {
				return fmt.Errorf("chaos: event %d restores healthy link %s<->%s", i, e.A, e.B)
			}
			delete(downLink, [2]string{e.A, e.B})
		default:
			return fmt.Errorf("chaos: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}
