package monitor

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestCounters(t *testing.T) {
	m := NewMetrics()
	m.Inc("pulls", 1)
	m.Inc("pulls", 2)
	if got := m.Counter("pulls"); got != 3 {
		t.Errorf("counter = %v", got)
	}
	if got := m.Counter("unset"); got != 0 {
		t.Errorf("unset counter = %v", got)
	}
}

func TestGauges(t *testing.T) {
	m := NewMetrics()
	if _, ok := m.Gauge("x"); ok {
		t.Error("unset gauge should report !ok")
	}
	m.SetGauge("x", 42)
	if v, ok := m.Gauge("x"); !ok || v != 42 {
		t.Errorf("gauge = %v %v", v, ok)
	}
}

func TestHistogram(t *testing.T) {
	m := NewMetrics()
	for _, v := range []float64{1, 2, 3, 4} {
		m.Observe("ct", v)
	}
	h, ok := m.Histogram("ct")
	if !ok {
		t.Fatal("missing histogram")
	}
	if h.Count != 4 || h.Sum != 10 || h.Min != 1 || h.Max != 4 || h.Mean != 2.5 {
		t.Errorf("stats = %+v", h)
	}
	if _, ok := m.Histogram("nope"); ok {
		t.Error("missing histogram reported ok")
	}
}

func TestHistogramExtremeValues(t *testing.T) {
	m := NewMetrics()
	m.Observe("h", 0)
	m.Observe("h", 1e12)
	m.Observe("h", 1e-12)
	h, _ := m.Histogram("h")
	if h.Count != 3 {
		t.Errorf("count = %d", h.Count)
	}
}

func TestEvents(t *testing.T) {
	m := NewMetrics()
	m.Log(1, "deploy", map[string]string{"ms": "transcode"})
	m.Log(2, "process", nil)
	m.Log(3, "deploy", map[string]string{"ms": "frame"})
	all := m.Events()
	if len(all) != 3 {
		t.Fatalf("events = %d", len(all))
	}
	deploys := m.EventsOfKind("deploy")
	if len(deploys) != 2 || deploys[1].Fields["ms"] != "frame" {
		t.Errorf("deploys = %+v", deploys)
	}
}

func TestEventFieldsCopied(t *testing.T) {
	m := NewMetrics()
	fields := map[string]string{"k": "v"}
	m.Log(0, "e", fields)
	fields["k"] = "mutated"
	if m.Events()[0].Fields["k"] != "v" {
		t.Error("event fields alias caller map")
	}
}

func TestExportJSON(t *testing.T) {
	m := NewMetrics()
	m.Inc("c", 1)
	m.SetGauge("g", 2)
	m.Observe("h", 3)
	m.Log(0, "e", nil)
	data, err := m.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	for _, key := range []string{"counters", "gauges", "histograms", "events"} {
		if _, ok := round[key]; !ok {
			t.Errorf("export missing %q", key)
		}
	}
}

func TestSummaryStable(t *testing.T) {
	m := NewMetrics()
	m.Inc("b", 1)
	m.Inc("a", 1)
	m.SetGauge("z", 9)
	s1 := m.Summary()
	s2 := m.Summary()
	if s1 != s2 {
		t.Error("summary not deterministic")
	}
	if !strings.Contains(s1, "counter a") || !strings.Contains(s1, "gauge z") {
		t.Errorf("summary = %q", s1)
	}
	ia := strings.Index(s1, "counter a")
	ib := strings.Index(s1, "counter b")
	if ia > ib {
		t.Error("summary not sorted")
	}
}

func TestConcurrentUse(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Inc("c", 1)
			m.Observe("h", float64(i))
			m.Log(float64(i), "e", nil)
		}(i)
	}
	wg.Wait()
	if got := m.Counter("c"); got != 32 {
		t.Errorf("counter = %v", got)
	}
	if h, _ := m.Histogram("h"); h.Count != 32 {
		t.Errorf("histogram count = %d", h.Count)
	}
	if len(m.Events()) != 32 {
		t.Errorf("events = %d", len(m.Events()))
	}
}

// TestEventRingBounded: the event log is a ring — past the cap the oldest
// entries are overwritten, the drop counter advances, and JSON export keeps
// its shape (plus an events_dropped field once something was dropped).
func TestEventRingBounded(t *testing.T) {
	m := NewMetrics()
	m.SetEventCap(4)
	for i := 0; i < 10; i++ {
		m.Log(float64(i), "e", nil)
	}
	got := m.Events()
	if len(got) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := float64(6 + i); e.At != want {
			t.Fatalf("event %d at %v, want %v (oldest-first, newest kept)", i, e.At, want)
		}
	}
	if d := m.EventsDropped(); d != 6 {
		t.Fatalf("dropped = %d, want 6", d)
	}
	data, err := m.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if round["events_dropped"].(float64) != 6 {
		t.Fatalf("export missing events_dropped: %s", data)
	}
	if len(round["events"].([]any)) != 4 {
		t.Fatalf("export events = %v", round["events"])
	}
}

// TestEventCapDefaultAndDisable: the default cap holds, shrinking keeps the
// newest entries, and a non-positive cap refuses (and counts) everything.
func TestEventCapDefaultAndDisable(t *testing.T) {
	m := NewMetrics()
	for i := 0; i < DefaultEventCap+5; i++ {
		m.Log(float64(i), "e", nil)
	}
	if n := len(m.Events()); n != DefaultEventCap {
		t.Fatalf("default ring holds %d, want %d", n, DefaultEventCap)
	}
	if d := m.EventsDropped(); d != 5 {
		t.Fatalf("dropped = %d, want 5", d)
	}

	m.SetEventCap(2)
	got := m.Events()
	if len(got) != 2 || got[1].At != float64(DefaultEventCap+4) {
		t.Fatalf("shrink kept %v", got)
	}

	m.SetEventCap(0)
	if len(m.Events()) != 0 {
		t.Fatal("cap 0 retained events")
	}
	before := m.EventsDropped()
	m.Log(1, "e", nil)
	if m.EventsDropped() != before+1 {
		t.Fatal("disabled ring must count refused events")
	}
}

// TestMetricsObsBacked: the same instruments are visible through the
// backing obs registry under the same names — the seam the debug listener
// renders.
func TestMetricsObsBacked(t *testing.T) {
	m := NewMetrics()
	m.Inc("fleet_completed{tenant=video}", 2)
	m.Observe("lat", 0.5)
	c, ok := m.Obs().LookupCounter("fleet_completed{tenant=video}")
	if !ok || c.Value() != 2 {
		t.Fatal("counter not visible through Obs registry")
	}
	var b strings.Builder
	if err := m.Obs().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `fleet_completed{tenant="video"} 2`) {
		t.Fatalf("prometheus render missing monitor counter:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "lat_count 1") {
		t.Fatalf("prometheus render missing monitor histogram:\n%s", b.String())
	}
}
