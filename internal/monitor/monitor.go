// Package monitor is DEEP's monitoring subsystem (the logging box of the
// paper's Figure 1): a metrics registry of counters, gauges, and histograms,
// an event log, and JSON export for offline analysis.
package monitor

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
)

// Metrics is a registry of named instruments. The zero value is not usable;
// call NewMetrics.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]float64
	gauges     map[string]float64
	histograms map[string]*histogram
	events     []Event
}

// Event is one log entry with virtual timestamp and labeled fields.
type Event struct {
	At     float64           `json:"at"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

type histogram struct {
	count int64
	sum   float64
	min   float64
	max   float64
	// fixed log-scaled buckets: bucket i counts values < 10^(i-6).
	buckets [14]int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]float64),
		gauges:     make(map[string]float64),
		histograms: make(map[string]*histogram),
	}
}

// Inc adds delta to a counter.
func (m *Metrics) Inc(name string, delta float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[name] += delta
}

// Counter reads a counter (0 when unset).
func (m *Metrics) Counter(name string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters[name]
}

// SetGauge sets a gauge to a value.
func (m *Metrics) SetGauge(name string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = v
}

// Gauge reads a gauge and whether it was ever set.
func (m *Metrics) Gauge(name string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.gauges[name]
	return v, ok
}

// Observe records a value into a histogram.
func (m *Metrics) Observe(name string, v float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &histogram{min: math.Inf(1), max: math.Inf(-1)}
		m.histograms[name] = h
	}
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	idx := 0
	if v > 0 {
		idx = int(math.Floor(math.Log10(v))) + 7
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.buckets) {
		idx = len(h.buckets) - 1
	}
	h.buckets[idx]++
}

// HistogramStats summarizes a histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Histogram returns a histogram's summary and whether it exists.
func (m *Metrics) Histogram(name string) (HistogramStats, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		return HistogramStats{}, false
	}
	return HistogramStats{
		Count: h.count, Sum: h.sum, Min: h.min, Max: h.max,
		Mean: h.sum / float64(h.count),
	}, true
}

// Log appends an event.
func (m *Metrics) Log(at float64, kind string, fields map[string]string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var copied map[string]string
	if len(fields) > 0 {
		copied = make(map[string]string, len(fields))
		for k, v := range fields {
			copied[k] = v
		}
	}
	m.events = append(m.events, Event{At: at, Kind: kind, Fields: copied})
}

// Events returns a copy of the event log in insertion order.
func (m *Metrics) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}

// EventsOfKind filters the event log.
func (m *Metrics) EventsOfKind(kind string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// snapshot is the JSON export document.
type snapshot struct {
	Counters   map[string]float64        `json:"counters,omitempty"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
	Events     []Event                   `json:"events,omitempty"`
}

// ExportJSON serializes the full registry deterministically.
func (m *Metrics) ExportJSON() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := snapshot{
		Counters: make(map[string]float64, len(m.counters)),
		Gauges:   make(map[string]float64, len(m.gauges)),
		Events:   m.events,
	}
	for k, v := range m.counters {
		s.Counters[k] = v
	}
	for k, v := range m.gauges {
		s.Gauges[k] = v
	}
	if len(m.histograms) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(m.histograms))
		for k, h := range m.histograms {
			s.Histograms[k] = HistogramStats{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max, Mean: h.sum / float64(h.count)}
		}
	}
	return json.MarshalIndent(s, "", "  ")
}

// Summary renders a stable human-readable dump.
func (m *Metrics) Summary() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var names []string
	for k := range m.counters {
		names = append(names, "counter "+k)
	}
	for k := range m.gauges {
		names = append(names, "gauge "+k)
	}
	for k := range m.histograms {
		names = append(names, "histogram "+k)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		kind, key, _ := cut(n, " ")
		switch kind {
		case "counter":
			out += fmt.Sprintf("%s = %g\n", n, m.counters[key])
		case "gauge":
			out += fmt.Sprintf("%s = %g\n", n, m.gauges[key])
		case "histogram":
			h := m.histograms[key]
			out += fmt.Sprintf("%s: n=%d mean=%.3g min=%.3g max=%.3g\n", n, h.count, h.sum/float64(h.count), h.min, h.max)
		}
	}
	return out
}

func cut(s, sep string) (before, after string, found bool) {
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i:i+len(sep)] == sep {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}
