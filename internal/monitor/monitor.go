// Package monitor is DEEP's monitoring subsystem (the logging box of the
// paper's Figure 1): a metrics registry of counters, gauges, and histograms,
// an event log, and JSON export for offline analysis.
//
// Since the observability PR the registry is a thin string-keyed façade over
// internal/obs: every instrument is a sharded lock-free obs instrument, so
// Inc/Observe on a hot path cost a sync.Map load plus one or two uncontended
// atomics instead of a global mutex, and the backing obs.Registry (Obs) is
// what a debug listener renders as Prometheus text. The event log — the one
// part that used to grow without bound — is now a fixed-capacity ring that
// overwrites its oldest entries and counts what it dropped.
package monitor

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"deep/internal/obs"
)

// DefaultEventCap bounds the event ring unless SetEventCap overrides it: a
// long-lived service must not let a per-deployment log grow with uptime.
const DefaultEventCap = 4096

// Metrics is a registry of named instruments. The zero value is not usable;
// call NewMetrics.
type Metrics struct {
	reg *obs.Registry

	mu       sync.Mutex
	events   []Event // ring storage; allocated lazily up to eventCap
	next     int     // next write slot once the ring is full
	eventCap int
	dropped  int64 // events overwritten or refused
}

// Event is one log entry with virtual timestamp and labeled fields.
type Event struct {
	At     float64           `json:"at"`
	Kind   string            `json:"kind"`
	Fields map[string]string `json:"fields,omitempty"`
}

// NewMetrics returns an empty registry with the default event cap.
func NewMetrics() *Metrics {
	return &Metrics{reg: obs.NewRegistry(), eventCap: DefaultEventCap}
}

// Obs returns the backing obs registry — the seam a debug listener uses to
// render everything this Metrics holds as Prometheus text or expvar, and
// the fleet uses to intern instrument handles it records to lock-free.
func (m *Metrics) Obs() *obs.Registry { return m.reg }

// SetEventCap resizes the event ring: the newest entries within the new cap
// survive, anything older counts as dropped. A cap <= 0 disables event
// retention entirely (every Log is counted dropped).
func (m *Metrics) SetEventCap(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.eventsLocked()
	if n > 0 && len(kept) > n {
		m.dropped += int64(len(kept) - n)
		kept = kept[len(kept)-n:]
	}
	if n <= 0 {
		m.dropped += int64(len(kept))
		kept = nil
	}
	m.eventCap = n
	m.events = kept
	// kept is oldest-first, so when it already fills the new cap the next
	// overwrite (slot 0) lands on the oldest entry, as a ring must.
	m.next = 0
}

// Inc adds delta to a counter.
func (m *Metrics) Inc(name string, delta float64) {
	m.reg.Counter(name).Add(delta)
}

// Counter reads a counter (0 when unset).
func (m *Metrics) Counter(name string) float64 {
	c, ok := m.reg.LookupCounter(name)
	if !ok {
		return 0
	}
	return c.Value()
}

// SetGauge sets a gauge to a value.
func (m *Metrics) SetGauge(name string, v float64) {
	m.reg.Gauge(name).Set(v)
}

// Gauge reads a gauge and whether it was ever set.
func (m *Metrics) Gauge(name string) (float64, bool) {
	g, ok := m.reg.LookupGauge(name)
	if !ok {
		return 0, false
	}
	return g.Value()
}

// Observe records a value into a histogram.
func (m *Metrics) Observe(name string, v float64) {
	m.reg.Histogram(name).Observe(v)
}

// HistogramStats summarizes a histogram.
type HistogramStats struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
}

// Histogram returns a histogram's summary and whether it exists.
func (m *Metrics) Histogram(name string) (HistogramStats, bool) {
	h, ok := m.reg.LookupHistogram(name)
	if !ok {
		return HistogramStats{}, false
	}
	var snap obs.HistogramSnapshot
	h.Snapshot(&snap)
	return histStats(&snap), true
}

func histStats(snap *obs.HistogramSnapshot) HistogramStats {
	return HistogramStats{
		Count: int64(snap.Count), Sum: snap.Sum, Min: snap.Min, Max: snap.Max,
		Mean: snap.Mean(),
	}
}

// Log appends an event to the bounded ring. When the ring is full the
// oldest entry is overwritten and counted dropped; the JSON export shape is
// unchanged (events stay oldest-first in what survives).
func (m *Metrics) Log(at float64, kind string, fields map[string]string) {
	var copied map[string]string
	if len(fields) > 0 {
		copied = make(map[string]string, len(fields))
		for k, v := range fields {
			copied[k] = v
		}
	}
	e := Event{At: at, Kind: kind, Fields: copied}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.eventCap <= 0 {
		m.dropped++
		return
	}
	if len(m.events) < m.eventCap {
		m.events = append(m.events, e)
		return
	}
	m.events[m.next] = e
	m.next = (m.next + 1) % m.eventCap
	m.dropped++
}

// EventsDropped reports how many events the bounded ring has discarded
// (overwritten by newer entries, or refused under a non-positive cap).
func (m *Metrics) EventsDropped() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dropped
}

// eventsLocked returns the ring oldest-first; the caller holds m.mu.
func (m *Metrics) eventsLocked() []Event {
	out := make([]Event, 0, len(m.events))
	out = append(out, m.events[m.next:]...)
	return append(out, m.events[:m.next]...)
}

// Events returns a copy of the retained event log in insertion order.
func (m *Metrics) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.eventsLocked()
}

// EventsOfKind filters the event log.
func (m *Metrics) EventsOfKind(kind string) []Event {
	var out []Event
	for _, e := range m.Events() {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// snapshot is the JSON export document. EventsDropped is new since the
// ring became bounded; it is omitted while zero so exports from
// non-overflowing runs are byte-compatible with the unbounded era.
type snapshot struct {
	Counters      map[string]float64        `json:"counters,omitempty"`
	Gauges        map[string]float64        `json:"gauges,omitempty"`
	Histograms    map[string]HistogramStats `json:"histograms,omitempty"`
	Events        []Event                   `json:"events,omitempty"`
	EventsDropped int64                     `json:"events_dropped,omitempty"`
}

// ExportJSON serializes the full registry deterministically.
func (m *Metrics) ExportJSON() ([]byte, error) {
	s := snapshot{
		Counters: make(map[string]float64),
		Gauges:   make(map[string]float64),
	}
	for _, name := range m.reg.CounterNames() {
		s.Counters[name] = m.Counter(name)
	}
	for _, name := range m.reg.GaugeNames() {
		s.Gauges[name], _ = m.Gauge(name)
	}
	if names := m.reg.HistogramNames(); len(names) > 0 {
		s.Histograms = make(map[string]HistogramStats, len(names))
		for _, name := range names {
			s.Histograms[name], _ = m.Histogram(name)
		}
	}
	m.mu.Lock()
	s.Events = m.eventsLocked()
	s.EventsDropped = m.dropped
	m.mu.Unlock()
	return json.MarshalIndent(s, "", "  ")
}

// Summary renders a stable human-readable dump.
func (m *Metrics) Summary() string {
	var names []string
	for _, k := range m.reg.CounterNames() {
		names = append(names, "counter "+k)
	}
	for _, k := range m.reg.GaugeNames() {
		names = append(names, "gauge "+k)
	}
	for _, k := range m.reg.HistogramNames() {
		names = append(names, "histogram "+k)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		kind, key, _ := cut(n, " ")
		switch kind {
		case "counter":
			out += fmt.Sprintf("%s = %g\n", n, m.Counter(key))
		case "gauge":
			v, _ := m.Gauge(key)
			out += fmt.Sprintf("%s = %g\n", n, v)
		case "histogram":
			h, _ := m.Histogram(key)
			out += fmt.Sprintf("%s: n=%d mean=%.3g min=%.3g max=%.3g\n", n, h.Count, h.Mean, h.Min, h.Max)
		}
	}
	return out
}

func cut(s, sep string) (before, after string, found bool) {
	for i := 0; i+len(sep) <= len(s); i++ {
		if s[i:i+len(sep)] == sep {
			return s[:i], s[i+len(sep):], true
		}
	}
	return s, "", false
}
