package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowRequest is one captured tail outlier: the request's identity, its
// end-to-end latency, and the full per-stage breakdown — enough to explain
// after the fact where a slow request's time went.
type SlowRequest struct {
	At       time.Time     `json:"at"`
	Tenant   string        `json:"tenant"`
	App      string        `json:"app"`
	Total    time.Duration `json:"total"`
	CacheHit bool          `json:"cache_hit"`
	Failed   bool          `json:"failed"`
	Stages   StageTrace    `json:"stages"`
}

// rollEvery is how many observations pass between rolling-threshold
// retunes; a power of two so the check is a mask.
const rollEvery = 1024

// rollWarmup is the first retune point: without it a rolling ring would sit
// at its +Inf boot threshold for a full rollEvery observations.
const rollWarmup = 64

// SlowRing captures the stage breakdown of requests slower than a
// threshold into a bounded ring buffer. The threshold is either fixed
// (configured) or rolling — retuned periodically to the latency
// histogram's current p99 estimate, so the ring tracks "the slowest ~1%"
// as load shifts. The warm path costs one atomic counter bump and one
// atomic threshold compare; only actual outliers take the ring's lock.
type SlowRing struct {
	threshold atomic.Int64 // ns; requests at or above are captured
	fixed     bool
	seen      atomic.Uint64 // observations, drives rolling retunes
	captured  atomic.Int64  // total captures over the ring's lifetime

	latency *Histogram // rolling-threshold source; nil when fixed

	mu      sync.Mutex
	buf     []SlowRequest // ring storage, allocated once
	next    int           // next write slot
	filled  int           // live entries, ≤ len(buf)
	scratch HistogramSnapshot
}

// NewSlowRing returns a ring of the given capacity. A positive threshold
// fixes the capture bar; threshold 0 makes it rolling, retuned to the p99
// of the supplied latency histogram (required in that mode). capacity <= 0
// disables capture entirely (Observe becomes two atomic loads).
func NewSlowRing(capacity int, threshold time.Duration, latency *Histogram) *SlowRing {
	r := &SlowRing{latency: latency}
	if capacity > 0 {
		r.buf = make([]SlowRequest, capacity)
	}
	if threshold > 0 {
		r.fixed = true
		r.threshold.Store(int64(threshold))
	} else {
		// Rolling: capture nothing until the first retune has data.
		r.threshold.Store(int64(^uint64(0) >> 1))
	}
	return r
}

// Observe considers one finished request for capture. The fast path — the
// overwhelming majority of requests — is branch, atomic add, atomic load,
// branch: no locks, no allocation.
func (r *SlowRing) Observe(tenant, app string, total time.Duration, tr *StageTrace, cacheHit, failed bool) {
	if r == nil || r.buf == nil {
		return
	}
	if !r.fixed {
		if n := r.seen.Add(1); n == rollWarmup || n%rollEvery == 0 {
			r.retune()
		}
	}
	if int64(total) < r.threshold.Load() {
		return
	}
	r.capture(tenant, app, total, tr, cacheHit, failed)
}

// capture appends the outlier, overwriting the oldest entry when full.
func (r *SlowRing) capture(tenant, app string, total time.Duration, tr *StageTrace, cacheHit, failed bool) {
	r.captured.Add(1)
	at := time.Now()
	r.mu.Lock()
	slot := &r.buf[r.next]
	slot.At = at
	slot.Tenant = tenant
	slot.App = app
	slot.Total = total
	slot.CacheHit = cacheHit
	slot.Failed = failed
	slot.Stages = *tr
	r.next = (r.next + 1) % len(r.buf)
	if r.filled < len(r.buf) {
		r.filled++
	}
	r.mu.Unlock()
}

// retune re-derives the rolling threshold from the latency histogram's
// current p99 estimate (bucket-granular: within one binary order of
// magnitude). Runs every rollEvery observations, under the ring lock so
// concurrent retunes cannot race the shared scratch snapshot.
func (r *SlowRing) retune() {
	if r.latency == nil {
		return
	}
	r.mu.Lock()
	r.latency.Snapshot(&r.scratch)
	p99 := r.scratch.Quantile(0.99)
	r.mu.Unlock()
	if p99 > 0 {
		r.threshold.Store(int64(p99 * float64(time.Second)))
	}
}

// Threshold reports the current capture bar.
func (r *SlowRing) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(r.threshold.Load())
}

// Captured reports total captures over the ring's lifetime (captures past
// capacity overwrote the oldest entries).
func (r *SlowRing) Captured() int64 {
	if r == nil {
		return 0
	}
	return r.captured.Load()
}

// Snapshot copies the live entries, oldest first.
func (r *SlowRing) Snapshot() []SlowRequest {
	if r == nil || r.buf == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowRequest, 0, r.filled)
	start := r.next - r.filled
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.filled; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
