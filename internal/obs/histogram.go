package obs

import (
	"math"
	"sync/atomic"
)

// HistBuckets is the fixed bucket count of every Histogram. Buckets are
// log-scaled at powers of two of the recorded value (seconds for latencies):
// bucket 0 holds values ≤ 2⁻³⁰ (~1 ns), buckets 1..HistBuckets-2 each span
// one binary order of magnitude up to 2¹² s (~68 min), and the last bucket
// is the +Inf overflow. The index is read straight out of the float's
// exponent bits, so a record costs no math library calls.
const HistBuckets = 44

// histExpMin is the binary exponent mapped to bucket 1; exponent e lands in
// bucket e - histExpMin + 1.
const histExpMin = -30

// histShard is one shard of a Histogram. Exactly six cache lines
// ((4 + HistBuckets) × 8 bytes), so sibling shards never share a line; all
// fields of one shard are written by that shard's owner only.
type histShard struct {
	count atomic.Uint64
	sum   atomic.Uint64 // float64 bits, CAS-accumulated
	min   atomic.Uint64 // float64 bits, CAS-lowered; initialized to +Inf
	max   atomic.Uint64 // float64 bits, CAS-raised; initialized to -Inf
	cells [HistBuckets]atomic.Uint64
}

// Histogram is a sharded fixed-bucket log-scaled histogram. Record with
// ObserveAt (lock-free, allocation-free); read with Snapshot, which merges
// the shards. Create with NewHistogram or intern via Registry.Histogram.
type Histogram struct {
	shards [NumShards]histShard
}

// NewHistogram returns an empty histogram with min/max sentinels in place.
func NewHistogram() *Histogram {
	h := &Histogram{}
	for i := range h.shards {
		h.shards[i].min.Store(math.Float64bits(math.Inf(1)))
		h.shards[i].max.Store(math.Float64bits(math.Inf(-1)))
	}
	return h
}

// bucketIndex maps a value to its bucket from the float's exponent bits.
// Non-positive values (and NaN) fall into bucket 0.
func bucketIndex(v float64) int {
	if !(v > 0) {
		return 0
	}
	e := int(math.Float64bits(v)>>52&0x7ff) - 1023
	idx := e - histExpMin + 1
	if idx < 0 {
		return 0
	}
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	return idx
}

// BucketBound returns the upper bound of bucket i (the Prometheus `le`
// label); the last bucket's bound is +Inf.
func BucketBound(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return math.Ldexp(1, i+histExpMin)
}

// Observe records v on shard 0.
func (h *Histogram) Observe(v float64) { h.ObserveAt(0, v) }

// ObserveAt records v on the given shard (masked into range): one atomic
// add for the count, one for the bucket, a CAS accumulate for the sum, and
// CAS races for min/max. With one writer per shard every CAS succeeds on
// the first try.
func (h *Histogram) ObserveAt(shard int, v float64) {
	s := &h.shards[shard&shardMask]
	s.count.Add(1)
	s.cells[bucketIndex(v)].Add(1)
	for {
		old := s.sum.Load()
		if s.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := s.min.Load()
		if v >= math.Float64frombits(old) || s.min.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := s.max.Load()
		if v <= math.Float64frombits(old) || s.max.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// HistogramSnapshot is a merged point-in-time view of a Histogram. A
// snapshot taken concurrently with records is not an atomic cut across
// shards (count, sum, and buckets may disagree by in-flight records), which
// is the standard trade for a lock-free write path.
type HistogramSnapshot struct {
	Count   uint64
	Sum     float64
	Min     float64 // 0 when Count == 0
	Max     float64 // 0 when Count == 0
	Buckets [HistBuckets]uint64
}

// Snapshot merges the shards into out (caller-owned scratch; no
// allocation).
func (h *Histogram) Snapshot(out *HistogramSnapshot) {
	*out = HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
	for i := range h.shards {
		s := &h.shards[i]
		out.Count += s.count.Load()
		out.Sum += math.Float64frombits(s.sum.Load())
		out.Min = math.Min(out.Min, math.Float64frombits(s.min.Load()))
		out.Max = math.Max(out.Max, math.Float64frombits(s.max.Load()))
		for b := range s.cells {
			out.Buckets[b] += s.cells[b].Load()
		}
	}
	if out.Count == 0 {
		// Keep empty snapshots JSON-safe: no ±Inf sentinels escape.
		out.Min, out.Max = 0, 0
	}
}

// Mean returns Sum/Count (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-th quantile as the upper bound of the first
// bucket whose cumulative count reaches q×Count. The estimate is
// bucket-granular — within one binary order of magnitude of the true value —
// which is exactly the precision a rolling tail threshold needs. Returns 0
// when empty; returns Max instead of +Inf when the rank lands in the
// overflow bucket.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += s.Buckets[i]
		if cum > rank {
			if i == HistBuckets-1 {
				return s.Max
			}
			return BucketBound(i)
		}
	}
	return s.Max
}
