package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative `_bucket` series with `le` labels plus `_sum` and `_count`.
// Instrument names in the "name{key=value,...}" convention are split into
// metric family and quoted label set, so per-tenant monitor metrics render
// as one family with a tenant label. Collect hooks run first. Output is
// deterministic: families and label sets are emitted in sorted name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.runCollect()

	var lastFamily string
	typeLine := func(name, kind string) (string, error) {
		family, _ := splitName(name)
		if family == lastFamily {
			return family, nil
		}
		lastFamily = family
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return family, err
	}

	for _, name := range r.CounterNames() {
		c, _ := r.LookupCounter(name)
		family, err := typeLine(name, "counter")
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promSeries(family, name, ""), fmtFloat(c.Value())); err != nil {
			return err
		}
	}
	lastFamily = ""
	for _, name := range r.GaugeNames() {
		g, _ := r.LookupGauge(name)
		v, _ := g.Value()
		family, err := typeLine(name, "gauge")
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promSeries(family, name, ""), fmtFloat(v)); err != nil {
			return err
		}
	}
	lastFamily = ""
	var snap HistogramSnapshot
	for _, name := range r.HistogramNames() {
		h, _ := r.LookupHistogram(name)
		h.Snapshot(&snap)
		family, err := typeLine(name, "histogram")
		if err != nil {
			return err
		}
		// Empty buckets are elided (the cumulative counts stay correct);
		// the +Inf bucket is always present, as the format requires.
		var cum uint64
		for i := 0; i < HistBuckets; i++ {
			cum += snap.Buckets[i]
			if snap.Buckets[i] == 0 && i < HistBuckets-1 {
				continue
			}
			le := "+Inf"
			if i < HistBuckets-1 {
				le = fmtFloat(BucketBound(i))
			}
			if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(family+"_bucket", name, `le="`+le+`"`), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", promSeries(family+"_sum", name, ""), fmtFloat(snap.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promSeries(family+"_count", name, ""), snap.Count); err != nil {
			return err
		}
	}
	return nil
}

// MetricsHandler returns the /metrics endpoint: the registry rendered in
// Prometheus text format on every scrape.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// splitName separates an instrument name into its metric family and raw
// label body: "lat_s{tenant=video}" → ("lat_s", "tenant=video"). Family
// characters outside the Prometheus alphabet are replaced with '_'.
func splitName(name string) (family, labels string) {
	family = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		family = name[:i]
		labels = strings.TrimSuffix(name[i+1:], "}")
	}
	return sanitizeFamily(family), labels
}

// promSeries builds one sample's series name: family plus the instrument's
// labels (values quoted) plus an optional extra label (the histogram `le`).
func promSeries(family, name, extra string) string {
	_, raw := splitName(name)
	var parts []string
	if raw != "" {
		for _, kv := range strings.Split(raw, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				k, v = "label", kv
			}
			parts = append(parts, sanitizeFamily(strings.TrimSpace(k))+`="`+escapeLabel(strings.Trim(strings.TrimSpace(v), `"`))+`"`)
		}
	}
	if extra != "" {
		parts = append(parts, extra)
	}
	if len(parts) == 0 {
		return family
	}
	return family + "{" + strings.Join(parts, ",") + "}"
}

// sanitizeFamily maps arbitrary name bytes into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:].
func sanitizeFamily(s string) string {
	ok := true
	for i := 0; i < len(s); i++ {
		if !isPromNameByte(s[i]) {
			ok = false
			break
		}
	}
	if ok {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if !isPromNameByte(c) {
			b[i] = '_'
		}
	}
	return string(b)
}

func isPromNameByte(c byte) bool {
	return c == '_' || c == ':' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// fmtFloat renders a sample value the way Prometheus clients do: shortest
// round-trip representation.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
