package obs

import (
	"fmt"
	"strings"
	"time"
)

// Stage identifies one segment of the fleet's request path. The taxonomy
// follows the path's actual order: admission-queue residency, request
// fingerprinting, compiled-shape resolution (cluster-table / cost-model /
// simulator-plan compile, amortized to a cache lookup when warm), placement
// -cache lookup, scheduling (the Nash pass, zero on placement-cache hits),
// and simulator execution.
type Stage uint8

const (
	// StageQueue is time spent in the admission queue before a worker
	// picked the request up.
	StageQueue Stage = iota
	// StageFingerprint is canonical digesting: the app digest plus the
	// placement-cache key.
	StageFingerprint
	// StageCompile is compiled-shape resolution against the fleet-wide
	// shape cache; on a warm shape it is the cache lookup alone, on a cold
	// one it includes the cluster-table/model/plan compilation.
	StageCompile
	// StageCacheLookup is the placement-cache probe.
	StageCacheLookup
	// StageSchedule is the scheduling pass plus the cache fill; ~0 on
	// placement-cache hits.
	StageSchedule
	// StageSim is plan rebinding plus simulator execution.
	StageSim
	// NumStages bounds the enum; StageTrace arrays are indexed by Stage.
	NumStages
)

// stageNames are the exposition labels, indexed by Stage.
var stageNames = [NumStages]string{
	"queue", "fingerprint", "compile", "cache_lookup", "schedule", "sim_exec",
}

// String returns the stage's exposition label.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// StageTrace is one request's per-stage wall-time breakdown. It is a plain
// fixed-size value — workers keep one and reset it per request, responses
// carry a copy — so stamping and copying allocate nothing.
type StageTrace struct {
	D [NumStages]time.Duration
}

// Reset zeroes the trace for the next request.
func (t *StageTrace) Reset() { *t = StageTrace{} }

// Total sums the stamped stages.
func (t *StageTrace) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.D {
		sum += d
	}
	return sum
}

// MarshalJSON renders the trace keyed by stage name (durations in
// nanoseconds), so exported slow requests and responses read as
// {"queue":...,"sim_exec":...} instead of a bare positional array.
func (t StageTrace) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for s := Stage(0); s < NumStages; s++ {
		if s > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", s.String(), int64(t.D[s]))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// StageSet aggregates stage traces into one histogram per stage (recorded
// in seconds), interned in a registry as name{stage="..."} so exposition
// renders them as one labeled Prometheus family.
type StageSet struct {
	hists [NumStages]*Histogram
}

// NewStageSet interns the per-stage histograms under the given family name
// (e.g. "fleet_stage_seconds").
func NewStageSet(r *Registry, name string) *StageSet {
	ss := &StageSet{}
	for s := Stage(0); s < NumStages; s++ {
		ss.hists[s] = r.Histogram(name + "{stage=" + s.String() + "}")
	}
	return ss
}

// RecordAt folds one trace into the per-stage histograms on the caller's
// shard.
func (ss *StageSet) RecordAt(shard int, t *StageTrace) {
	for s := Stage(0); s < NumStages; s++ {
		ss.hists[s].ObserveAt(shard, t.D[s].Seconds())
	}
}

// Histogram returns one stage's histogram.
func (ss *StageSet) Histogram(s Stage) *Histogram { return ss.hists[s] }
