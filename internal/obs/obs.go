// Package obs is DEEP's low-overhead telemetry substrate: the instruments a
// long-lived service can keep on its hottest path without perturbing the
// numbers they report. Counters, gauges, and fixed-bucket log-scaled
// histograms are sharded across cache-line-padded cells — a record is one or
// two uncontended atomic operations on the caller's own shard, no locks, no
// allocations, no shared cache lines between workers — and reads merge the
// shards into a snapshot. On top of the instruments sit per-request stage
// tracing (StageTrace / StageSet), a bounded slow-request ring that captures
// the full stage breakdown of tail outliers (SlowRing), and exposition:
// Prometheus text format, expvar, and an http.Handler for a debug listener.
//
// The package deliberately has no dependencies beyond the standard library
// and holds no global state: everything hangs off a Registry, so two fleets
// (or a fleet and its tests) never share instruments by accident.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// NumShards is the number of independently padded cells each instrument
// spreads its writes across. Writers pick a shard with AddAt/ObserveAt —
// fleet workers pass their worker index — so two workers never bounce one
// cache line between cores. Eight shards cover the worker-pool sizes the
// benchmarks record; pools larger than that alias shards (still correct,
// merely sharing lines pairwise). Must be a power of two: shard indices are
// masked, never bounds-checked, on the record path.
const NumShards = 8

const shardMask = NumShards - 1

// pad pushes sibling shards onto distinct cache lines. 64 bytes covers
// x86-64 and the common arm64 line size.
type pad [56]byte

// counterCell is one shard of a Counter: a float64 accumulated with
// compare-and-swap (monitor deltas are floats), padded to a full line.
type counterCell struct {
	bits atomic.Uint64 // float64 bits
	_    pad
}

// Counter is a sharded, monotonically accumulating float64 counter. The
// zero value is ready to use, but instruments normally come interned from a
// Registry so exposition can find them.
type Counter struct {
	cells [NumShards]counterCell
}

// Add accumulates delta on shard 0 — for callers without a natural shard
// identity (cold paths, single-goroutine tools).
func (c *Counter) Add(delta float64) { c.AddAt(0, delta) }

// AddAt accumulates delta on the given shard (masked into range). With one
// writer per shard — the fleet's worker-indexed usage — the CAS never
// retries and the record is a single uncontended atomic.
func (c *Counter) AddAt(shard int, delta float64) {
	cell := &c.cells[shard&shardMask]
	for {
		old := cell.bits.Load()
		if cell.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value merges the shards.
func (c *Counter) Value() float64 {
	var sum float64
	for i := range c.cells {
		sum += math.Float64frombits(c.cells[i].bits.Load())
	}
	return sum
}

// Gauge is a last-write-wins float64 with a set flag (monitor's Gauge
// reports whether the gauge was ever written). Gauges are set from slow
// paths (scrape hooks, periodic stats), so they are not sharded.
type Gauge struct {
	bits atomic.Uint64
	set  atomic.Bool
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	g.bits.Store(math.Float64bits(v))
	g.set.Store(true)
}

// Value returns the gauge and whether it was ever set.
func (g *Gauge) Value() (float64, bool) {
	if !g.set.Load() {
		return 0, false
	}
	return math.Float64frombits(g.bits.Load()), true
}

// Registry interns named instruments for exposition. Lookups on the record
// path are sync.Map loads (no lock, no allocation once interned); creation
// takes the registry lock once per name. Names may carry an embedded label
// set in the monitor's "name{key=value,...}" convention — the Prometheus
// renderer splits and quotes it.
type Registry struct {
	mu         sync.Mutex
	counters   sync.Map // name -> *Counter
	gauges     sync.Map // name -> *Gauge
	histograms sync.Map // name -> *Histogram

	// collect hooks run before every exposition pass (WritePrometheus,
	// Expvar, Snapshot) so sources that keep state elsewhere — the fleet's
	// admission atomics, cache counters — can publish point-in-time gauges.
	collectMu sync.Mutex
	collect   []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter interns the named counter.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	c := &Counter{}
	r.counters.Store(name, c)
	return c
}

// Gauge interns the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	g := &Gauge{}
	r.gauges.Store(name, g)
	return g
}

// Histogram interns the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.histograms.Load(name); ok {
		return v.(*Histogram)
	}
	h := NewHistogram()
	r.histograms.Store(name, h)
	return h
}

// LookupCounter returns the named counter without creating it.
func (r *Registry) LookupCounter(name string) (*Counter, bool) {
	v, ok := r.counters.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Counter), true
}

// LookupGauge returns the named gauge without creating it.
func (r *Registry) LookupGauge(name string) (*Gauge, bool) {
	v, ok := r.gauges.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Gauge), true
}

// LookupHistogram returns the named histogram without creating it.
func (r *Registry) LookupHistogram(name string) (*Histogram, bool) {
	v, ok := r.histograms.Load(name)
	if !ok {
		return nil, false
	}
	return v.(*Histogram), true
}

// OnCollect registers a hook run before every exposition pass. Hooks must
// be fast and must not call back into exposition.
func (r *Registry) OnCollect(fn func()) {
	r.collectMu.Lock()
	r.collect = append(r.collect, fn)
	r.collectMu.Unlock()
}

// runCollect invokes the registered collect hooks.
func (r *Registry) runCollect() {
	r.collectMu.Lock()
	hooks := r.collect
	r.collectMu.Unlock()
	for _, fn := range hooks {
		fn()
	}
}

// CounterNames returns the interned counter names, sorted.
func (r *Registry) CounterNames() []string { return sortedKeys(&r.counters) }

// GaugeNames returns the interned gauge names, sorted.
func (r *Registry) GaugeNames() []string { return sortedKeys(&r.gauges) }

// HistogramNames returns the interned histogram names, sorted.
func (r *Registry) HistogramNames() []string { return sortedKeys(&r.histograms) }

func sortedKeys(m *sync.Map) []string {
	var names []string
	m.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}
