package obs

import "expvar"

// histogramVars is the expvar/JSON view of one histogram.
type histogramVars struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P99   float64 `json:"p99"`
}

// Vars returns the registry as a plain JSON-marshalable document —
// counters and gauges by name, histograms summarized with bucket-estimated
// quantiles. Collect hooks run first.
func (r *Registry) Vars() map[string]any {
	r.runCollect()
	counters := map[string]float64{}
	for _, name := range r.CounterNames() {
		c, _ := r.LookupCounter(name)
		counters[name] = c.Value()
	}
	gauges := map[string]float64{}
	for _, name := range r.GaugeNames() {
		g, _ := r.LookupGauge(name)
		gauges[name], _ = g.Value()
	}
	hists := map[string]histogramVars{}
	var snap HistogramSnapshot
	for _, name := range r.HistogramNames() {
		h, _ := r.LookupHistogram(name)
		h.Snapshot(&snap)
		hists[name] = histogramVars{
			Count: snap.Count, Sum: snap.Sum, Min: snap.Min, Max: snap.Max,
			Mean: snap.Mean(), P50: snap.Quantile(0.50), P99: snap.Quantile(0.99),
		}
	}
	return map[string]any{"counters": counters, "gauges": gauges, "histograms": hists}
}

// Expvar adapts the registry to the expvar protocol.
func (r *Registry) Expvar() expvar.Func {
	return expvar.Func(func() any { return r.Vars() })
}

// PublishExpvar publishes the registry under the given expvar name.
// expvar.Publish panics on duplicate names, so call this once per process
// per name (the deepfleet CLI does it when -debug-addr is set).
func (r *Registry) PublishExpvar(name string) {
	expvar.Publish(name, r.Expvar())
}
