package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterShardsMerge(t *testing.T) {
	var c Counter
	for shard := 0; shard < NumShards*2; shard++ { // exercises the mask
		c.AddAt(shard, 1.5)
	}
	if got := c.Value(); got != 1.5*float64(NumShards*2) {
		t.Fatalf("Value = %v, want %v", got, 1.5*float64(NumShards*2))
	}
	c.Add(0.5)
	if got := c.Value(); got != 1.5*float64(NumShards*2)+0.5 {
		t.Fatalf("Value after Add = %v", got)
	}
}

func TestGaugeSetFlag(t *testing.T) {
	var g Gauge
	if _, ok := g.Value(); ok {
		t.Fatal("unset gauge reports ok")
	}
	g.Set(42)
	if v, ok := g.Value(); !ok || v != 42 {
		t.Fatalf("gauge = %v %v", v, ok)
	}
}

func TestBucketIndexMonotonic(t *testing.T) {
	// Bucket index must be monotone in the value and every value must land
	// in a bucket whose bound is at least the value.
	prev := 0
	for _, v := range []float64{0, 1e-300, 1e-12, 1e-9, 1e-6, 0.001, 0.5, 1, 3, 1024, 1e6, 1e300, math.Inf(1)} {
		idx := bucketIndex(v)
		if idx < prev {
			t.Fatalf("bucketIndex(%g) = %d < previous %d", v, idx, prev)
		}
		if bound := BucketBound(idx); v > bound {
			t.Fatalf("value %g exceeds its bucket bound %g (bucket %d)", v, bound, idx)
		}
		prev = idx
	}
	if bucketIndex(math.NaN()) != 0 || bucketIndex(-1) != 0 {
		t.Fatal("NaN and negatives must fall into bucket 0")
	}
}

func TestHistogramStats(t *testing.T) {
	h := NewHistogram()
	for i, v := range []float64{1, 2, 3, 4} {
		h.ObserveAt(i, v) // spread across shards; merge must still see all
	}
	var s HistogramSnapshot
	h.Snapshot(&s)
	if s.Count != 4 || s.Sum != 10 || s.Min != 1 || s.Max != 4 || s.Mean() != 2.5 {
		t.Fatalf("snapshot = %+v", s)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b
	}
	if total != s.Count {
		t.Fatalf("buckets sum to %d, count is %d", total, s.Count)
	}
}

func TestHistogramEmptySnapshotJSONSafe(t *testing.T) {
	h := NewHistogram()
	var s HistogramSnapshot
	h.Snapshot(&s)
	if s.Min != 0 || s.Max != 0 || s.Mean() != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty snapshot leaks sentinels: %+v", s)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	// 99 fast observations around 1ms, one at ~1s: p50 must stay in the
	// millisecond range and p99 must reach the outlier's magnitude.
	for i := 0; i < 99; i++ {
		h.Observe(0.001)
	}
	h.Observe(1.0)
	var s HistogramSnapshot
	h.Snapshot(&s)
	if p50 := s.Quantile(0.50); p50 > 0.01 {
		t.Fatalf("p50 = %g, want ~1ms bucket", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 0.5 {
		t.Fatalf("p99 = %g, want to reach the 1s outlier", p99)
	}
}

func TestRegistryInternsAndLooksUp(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.LookupCounter("c"); ok {
		t.Fatal("lookup before intern succeeded")
	}
	c := r.Counter("c")
	if again := r.Counter("c"); again != c {
		t.Fatal("Counter did not intern")
	}
	if got, ok := r.LookupCounter("c"); !ok || got != c {
		t.Fatal("LookupCounter missed the interned instrument")
	}
	if r.Histogram("h") != r.Histogram("h") || r.Gauge("g") != r.Gauge("g") {
		t.Fatal("histogram/gauge interning broken")
	}
	names := r.HistogramNames()
	if len(names) != 1 || names[0] != "h" {
		t.Fatalf("HistogramNames = %v", names)
	}
}

func TestStageTraceAndSet(t *testing.T) {
	r := NewRegistry()
	ss := NewStageSet(r, "stage_seconds")
	var tr StageTrace
	tr.D[StageQueue] = 2 * time.Millisecond
	tr.D[StageSim] = 3 * time.Millisecond
	if tr.Total() != 5*time.Millisecond {
		t.Fatalf("Total = %v", tr.Total())
	}
	ss.RecordAt(1, &tr)
	var s HistogramSnapshot
	ss.Histogram(StageQueue).Snapshot(&s)
	if s.Count != 1 || s.Sum != 0.002 {
		t.Fatalf("queue stage snapshot = %+v", s)
	}
	if _, ok := r.LookupHistogram("stage_seconds{stage=sim_exec}"); !ok {
		t.Fatal("stage histogram not interned under labeled name")
	}
	tr.Reset()
	if tr.Total() != 0 {
		t.Fatal("Reset left durations behind")
	}
	for s := Stage(0); s < NumStages; s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
}

func TestSlowRingFixedThreshold(t *testing.T) {
	ring := NewSlowRing(4, 10*time.Millisecond, nil)
	var tr StageTrace
	for i := 0; i < 100; i++ {
		ring.Observe("t", "fast", time.Millisecond, &tr, true, false)
	}
	if got := ring.Snapshot(); len(got) != 0 {
		t.Fatalf("fast requests captured: %d", len(got))
	}
	// Six outliers through a 4-slot ring: oldest two overwritten.
	for i := 0; i < 6; i++ {
		tr.D[StageSim] = time.Duration(i) * time.Second
		ring.Observe("t", "slow", time.Duration(20+i)*time.Millisecond, &tr, false, false)
	}
	got := ring.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d entries, want 4", len(got))
	}
	if got[0].Total != 22*time.Millisecond || got[3].Total != 25*time.Millisecond {
		t.Fatalf("ring order wrong: first=%v last=%v", got[0].Total, got[3].Total)
	}
	if got[3].Stages.D[StageSim] != 5*time.Second {
		t.Fatalf("stage breakdown not captured: %+v", got[3].Stages)
	}
	if ring.Captured() != 6 {
		t.Fatalf("Captured = %d, want 6", ring.Captured())
	}
	if ring.Threshold() != 10*time.Millisecond {
		t.Fatalf("fixed threshold drifted to %v", ring.Threshold())
	}
}

func TestSlowRingRollingThreshold(t *testing.T) {
	lat := NewHistogram()
	ring := NewSlowRing(8, 0, lat)
	var tr StageTrace
	// Before the warmup retune nothing is captured (threshold boots at
	// +Inf), even for an extreme outlier.
	ring.Observe("t", "a", time.Hour, &tr, false, false)
	if ring.Captured() != 0 {
		t.Fatal("rolling ring captured before any retune")
	}
	// Feed a steady 1ms population so the rolling p99 settles near 1ms...
	for i := 0; i < 2*rollEvery; i++ {
		lat.Observe(0.001)
		ring.Observe("t", "a", time.Millisecond, &tr, false, false)
	}
	th := ring.Threshold()
	if th <= 0 || th > 100*time.Millisecond {
		t.Fatalf("rolling threshold = %v, want a few ms", th)
	}
	captured := ring.Captured()
	// ...then a burst of 1s outliers: all must be captured.
	for i := 0; i < 3; i++ {
		lat.Observe(1.0)
		ring.Observe("t", "a", time.Second, &tr, false, false)
	}
	if ring.Captured() != captured+3 {
		t.Fatalf("outliers not captured: %d -> %d", captured, ring.Captured())
	}
}

func TestSlowRingDisabled(t *testing.T) {
	var nilRing *SlowRing
	var tr StageTrace
	nilRing.Observe("t", "a", time.Hour, &tr, false, false) // must not panic
	if nilRing.Snapshot() != nil || nilRing.Captured() != 0 || nilRing.Threshold() != 0 {
		t.Fatal("nil ring must be inert")
	}
	off := NewSlowRing(0, time.Nanosecond, nil)
	off.Observe("t", "a", time.Hour, &tr, false, false)
	if off.Snapshot() != nil || off.Captured() != 0 {
		t.Fatal("zero-capacity ring must be inert")
	}
}

// TestInstrumentsConcurrent is the -race stress: hammer every instrument
// from many goroutines while a reader snapshots and renders concurrently,
// then check nothing was lost.
func TestInstrumentsConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	ss := NewStageSet(r, "st")
	ring := NewSlowRing(16, 0, h)

	const goroutines = 8
	const perG = 2000
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader: snapshots, expvar doc, ring drain
		defer reader.Done()
		var snap HistogramSnapshot
		for {
			select {
			case <-stop:
				return
			default:
				h.Snapshot(&snap)
				_ = r.Vars()
				_ = ring.Snapshot()
			}
		}
	}()
	writers.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer writers.Done()
			var tr StageTrace
			tr.D[StageSchedule] = time.Microsecond
			for i := 0; i < perG; i++ {
				c.AddAt(g, 1)
				h.ObserveAt(g, 0.001)
				ss.RecordAt(g, &tr)
				ring.Observe("t", "a", time.Millisecond, &tr, false, false)
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %v, want %v", got, goroutines*perG)
	}
	var s HistogramSnapshot
	h.Snapshot(&s)
	if s.Count != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", s.Count, goroutines*perG)
	}
	ss.Histogram(StageSchedule).Snapshot(&s)
	if s.Count != goroutines*perG {
		t.Fatalf("stage histogram count = %d, want %d", s.Count, goroutines*perG)
	}
}

// TestRecordAllocationFree pins the record path of every hot-path
// instrument at zero allocations: counter add, histogram observe, stage-set
// record, and the slow ring's fast path.
func TestRecordAllocationFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	ss := NewStageSet(r, "st")
	ring := NewSlowRing(16, time.Hour, nil) // fixed bar nothing reaches
	var tr StageTrace
	tr.D[StageSim] = time.Microsecond

	if allocs := testing.AllocsPerRun(200, func() {
		c.AddAt(3, 1)
		h.ObserveAt(3, 0.0001)
		ss.RecordAt(3, &tr)
		ring.Observe("tenant", "app", 50*time.Microsecond, &tr, true, false)
	}); allocs != 0 {
		t.Fatalf("record path allocates %v per run, want 0", allocs)
	}

	// Snapshot into caller scratch is also allocation-free.
	var snap HistogramSnapshot
	if allocs := testing.AllocsPerRun(200, func() {
		h.Snapshot(&snap)
	}); allocs != 0 {
		t.Fatalf("snapshot allocates %v per run, want 0", allocs)
	}
}
