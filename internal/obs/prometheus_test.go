package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition of a small
// registry: family grouping with TYPE lines, label splitting and quoting,
// histogram cumulative buckets with elided zero buckets, sum/count rows,
// and deterministic ordering.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("fleet_completed{tenant=text}").Add(7)
	r.Counter("fleet_completed{tenant=video}").Add(3)
	r.Counter("fleet_rejected").Add(1)
	r.Gauge("fleet_in_flight").Set(2)
	h := r.Histogram("fleet_latency_s{tenant=video}")
	h.Observe(0.25)  // exponent -2 → bucket le=0.5
	h.Observe(0.375) // exponent -2 → bucket le=0.5
	h.Observe(3)     // exponent 1  → bucket le=4

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# TYPE fleet_completed counter
fleet_completed{tenant="text"} 7
fleet_completed{tenant="video"} 3
# TYPE fleet_rejected counter
fleet_rejected 1
# TYPE fleet_in_flight gauge
fleet_in_flight 2
# TYPE fleet_latency_s histogram
fleet_latency_s_bucket{tenant="video",le="0.5"} 2
fleet_latency_s_bucket{tenant="video",le="4"} 3
fleet_latency_s_bucket{tenant="video",le="+Inf"} 3
fleet_latency_s_sum{tenant="video"} 3.625
fleet_latency_s_count{tenant="video"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestWritePrometheusSanitizes(t *testing.T) {
	r := NewRegistry()
	r.Counter(`weird.name{key=va"lue}`).Add(1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	if !strings.Contains(got, `weird_name{key="va\"lue"} 1`) {
		t.Fatalf("sanitization drifted:\n%s", got)
	}
}

func TestCollectHookRuns(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("synced")
	r.OnCollect(func() { g.Set(99) })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "synced 99") {
		t.Fatalf("collect hook did not run before render:\n%s", b.String())
	}
	if v := r.Vars(); v["gauges"].(map[string]float64)["synced"] != 99 {
		t.Fatal("collect hook did not run before Vars")
	}
}

func TestExpvarDocRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h").Observe(0.5)
	raw := r.Expvar().String()
	var doc struct {
		Counters   map[string]float64       `json:"counters"`
		Histograms map[string]histogramVars `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(raw), &doc); err != nil {
		t.Fatalf("expvar doc is not JSON: %v\n%s", err, raw)
	}
	if doc.Counters["c"] != 2 {
		t.Fatalf("counters = %v", doc.Counters)
	}
	if hv := doc.Histograms["h"]; hv.Count != 1 || hv.Sum != 0.5 {
		t.Fatalf("histograms = %+v", doc.Histograms)
	}
}
