package dag

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func memoApp(t *testing.T, names []string, edges [][2]string) *App {
	t.Helper()
	a := NewApp("memo")
	for _, n := range names {
		if err := a.AddMicroservice(&Microservice{Name: n}); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range edges {
		if err := a.AddDataflow(e[0], e[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

// TestMemoRefreshesAfterMutation pins the memoization contract: results are
// cached between calls, and every mutation method invalidates the cache so
// the next Validate/TopoOrder/Stages reflects the new graph.
func TestMemoRefreshesAfterMutation(t *testing.T) {
	a := memoApp(t, []string{"a", "b"}, [][2]string{{"a", "b"}})

	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("topo order %v, want %v", order, want)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	stages, err := a.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"a"}, {"b"}}; !reflect.DeepEqual(stages, want) {
		t.Fatalf("stages %v, want %v", stages, want)
	}

	// Memoized: repeated calls return the same backing slices.
	again, _ := a.TopoOrder()
	if &again[0] != &order[0] {
		t.Error("TopoOrder recomputed between mutations")
	}

	// AddMicroservice invalidates: the new vertex must appear, and the
	// now-disconnected graph must fail validation.
	if err := a.AddMicroservice(&Microservice{Name: "c"}); err != nil {
		t.Fatal(err)
	}
	order, err = a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(order, want) {
		t.Fatalf("post-mutation topo order %v, want %v", order, want)
	}
	if err := a.Validate(); err == nil {
		t.Fatal("disconnected app validated after AddMicroservice; memo went stale")
	}

	// AddDataflow invalidates: reconnecting the graph must make Validate
	// pass again and shift c's stage.
	if err := a.AddDataflow("b", "c", 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("reconnected app still failing validation: %v", err)
	}
	stages, err = a.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if want := [][]string{{"a"}, {"b"}, {"c"}}; !reflect.DeepEqual(stages, want) {
		t.Fatalf("post-mutation stages %v, want %v", stages, want)
	}
}

// TestMemoCachesErrors: error results memoize too, and mutation clears them.
func TestMemoCachesErrors(t *testing.T) {
	a := memoApp(t, []string{"x", "y"}, [][2]string{{"x", "y"}, {"y", "x"}})
	err1 := a.Validate()
	if err1 == nil {
		t.Fatal("cycle validated")
	}
	if err2 := a.Validate(); err2 != err1 {
		t.Error("memoized Validate returned a different error value")
	}
	if _, err := a.TopoOrder(); err == nil {
		t.Fatal("cycle produced a topo order")
	}
	// Breaking the cycle is impossible without edge removal, but adding a
	// vertex must at least recompute (still cyclic, possibly a fresh error
	// value).
	if err := a.AddMicroservice(&Microservice{Name: "z"}); err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err == nil {
		t.Fatal("cycle validated after mutation")
	}
}

// TestMemoConcurrentReads: memoized walks are safe under concurrent readers
// (run with -race in CI).
func TestMemoConcurrentReads(t *testing.T) {
	a := memoApp(t, []string{"a", "b", "c"}, [][2]string{{"a", "b"}, {"b", "c"}})
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Since(start) < 10*time.Millisecond {
				if err := a.Validate(); err != nil {
					t.Error(err)
					return
				}
				if _, err := a.TopoOrder(); err != nil {
					t.Error(err)
					return
				}
				if _, err := a.Stages(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestMemoSurvivesDirectFieldReassignment: reassigning the exported slices
// without the mutation methods (as callers that corrupt or hand-build apps
// do) must not serve stale walks — the shape check at each read drops the
// memo.
func TestMemoSurvivesDirectFieldReassignment(t *testing.T) {
	a := memoApp(t, []string{"a", "b"}, [][2]string{{"a", "b"}})
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stages(); err != nil {
		t.Fatal(err)
	}
	a.Microservices = nil // bypasses AddMicroservice's invalidation
	if err := a.Validate(); err == nil {
		t.Fatal("memo served a stale nil validation error for an emptied app")
	}

	// Shrink the graph to a single vertex, again by direct writes: the
	// walks must reflect the new shape, not the memoized two-vertex one.
	a.Microservices = a.Microservices[:0]
	a.Microservices = append(a.Microservices, &Microservice{Name: "a"})
	a.Dataflows = nil
	order, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 1 || order[0] != "a" {
		t.Fatalf("stale topo order %v, want [a]", order)
	}
	stages, err := a.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 1 || len(stages[0]) != 1 || stages[0][0] != "a" {
		t.Fatalf("stale stages %v, want [[a]]", stages)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("single-vertex app should validate: %v", err)
	}
}
