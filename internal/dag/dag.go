// Package dag models DEEP's dataflow processing applications: directed
// acyclic graphs of containerized microservices interconnected by dataflows,
// following Section III-A of the paper. It provides validation, topological
// ordering, synchronization-barrier stages, and critical-path analysis.
package dag

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"deep/internal/units"
)

// Arch identifies a CPU architecture an image is built for.
type Arch string

// Supported architectures, matching the paper's amd64/arm64 image tags.
const (
	AMD64 Arch = "amd64"
	ARM64 Arch = "arm64"
)

// Requirements is the paper's req(m_i) tuple: the minimum cores, processing
// load, memory, and storage a microservice needs.
type Requirements struct {
	Cores   int         // CORE(m_i): minimum number of cores
	CPU     units.MI    // CPU(m_i): processing load in millions of instructions
	Memory  units.Bytes // MEM(m_i)
	Storage units.Bytes // STOR(m_i)
}

// Microservice is one vertex of the application DAG: a containerized
// processing stage with an image of a given size available from one or more
// registries.
type Microservice struct {
	Name string
	// ImageSize is Size_{m_i}: the containerized image size.
	ImageSize units.Bytes
	// Images maps a registry name to the image reference there, e.g.
	// "hub" -> "sina88/vp-transcode:amd64".
	Images map[string]string
	// Req is the paper's resource-requirement tuple.
	Req Requirements
	// Arches lists the architectures the image is published for. Empty
	// means all architectures.
	Arches []Arch
	// ExternalInput is data the microservice ingests from outside the
	// application DAG — the camera feed of the video pipeline or the AWS S3
	// dataset of the text pipeline. It is transferred from the cluster's
	// source node before processing.
	ExternalInput units.Bytes
}

// SupportsArch reports whether the microservice has an image for the
// architecture.
func (m *Microservice) SupportsArch(a Arch) bool {
	if len(m.Arches) == 0 {
		return true
	}
	for _, x := range m.Arches {
		if x == a {
			return true
		}
	}
	return false
}

// Dataflow is one edge of the DAG: df_{ui} transferring Size bytes from the
// upstage microservice From to the downstage microservice To.
type Dataflow struct {
	From, To string
	Size     units.Bytes
}

// App is a dataflow processing application A = (M, E).
//
// Validate, TopoOrder, and Stages are memoized: the first call after a
// mutation walks the graph, later calls return the cached result (TopoOrder
// and Stages return shared slices — callers must not modify them). The memo
// is invalidated by the mutation methods (AddMicroservice, AddDataflow) and,
// as a safety net for code that writes the exported slices directly, by a
// length check on Microservices/Dataflows at each read. Mutations that keep
// both lengths (editing a vertex or edge in place) bypass the memo and are
// not supported once any of the three has been called. The memo is
// mutex-guarded, so concurrent Validate/TopoOrder/Stages calls on one App
// are safe.
type App struct {
	Name          string
	Microservices []*Microservice
	Dataflows     []Dataflow

	byName map[string]*Microservice

	mu   sync.Mutex
	memo appMemo
}

// appMemo caches the graph-walk results between mutations. The done flags
// (not nil-ness) record completion, so error results memoize too. numMS and
// numDF record the graph shape the memo was computed against; a mismatch at
// read time means the exported slices were reassigned directly, and the
// memo self-invalidates.
type appMemo struct {
	numMS int
	numDF int

	validDone bool
	validErr  error

	topoDone bool
	topo     []string
	topoErr  error

	stagesDone bool
	stages     [][]string
	stagesErr  error
}

// NewApp constructs an empty application.
func NewApp(name string) *App {
	return &App{Name: name, byName: make(map[string]*Microservice)}
}

// AddMicroservice appends a microservice. It returns an error when the name
// is empty or already taken.
func (a *App) AddMicroservice(m *Microservice) error {
	if m.Name == "" {
		return fmt.Errorf("dag: %s: microservice with empty name", a.Name)
	}
	if _, dup := a.byName[m.Name]; dup {
		return fmt.Errorf("dag: %s: duplicate microservice %q", a.Name, m.Name)
	}
	if m.ImageSize < 0 {
		return fmt.Errorf("dag: %s: microservice %q has negative image size", a.Name, m.Name)
	}
	a.Microservices = append(a.Microservices, m)
	a.byName[m.Name] = m
	a.invalidate()
	return nil
}

// AddDataflow appends an edge. Both endpoints must already exist.
func (a *App) AddDataflow(from, to string, size units.Bytes) error {
	if _, ok := a.byName[from]; !ok {
		return fmt.Errorf("dag: %s: dataflow from unknown microservice %q", a.Name, from)
	}
	if _, ok := a.byName[to]; !ok {
		return fmt.Errorf("dag: %s: dataflow to unknown microservice %q", a.Name, to)
	}
	if from == to {
		return fmt.Errorf("dag: %s: self-loop on %q", a.Name, from)
	}
	if size < 0 {
		return fmt.Errorf("dag: %s: negative dataflow size %s->%s", a.Name, from, to)
	}
	a.Dataflows = append(a.Dataflows, Dataflow{From: from, To: to, Size: size})
	a.invalidate()
	return nil
}

// invalidate drops the memoized graph walks after a mutation.
func (a *App) invalidate() {
	a.mu.Lock()
	a.memo = appMemo{}
	a.mu.Unlock()
}

// memoFreshLocked drops the memo when the graph shape no longer matches the
// one it was computed against — the safety net for callers that reassign
// the exported Microservices/Dataflows slices without going through the
// mutation methods — and stamps the shape the next fills are valid for.
func (a *App) memoFreshLocked() {
	if a.memo.numMS != len(a.Microservices) || a.memo.numDF != len(a.Dataflows) {
		a.memo = appMemo{numMS: len(a.Microservices), numDF: len(a.Dataflows)}
	}
}

// Microservice returns the named microservice, or nil.
func (a *App) Microservice(name string) *Microservice { return a.byName[name] }

// Inputs returns the dataflows entering the named microservice.
func (a *App) Inputs(name string) []Dataflow {
	var in []Dataflow
	for _, e := range a.Dataflows {
		if e.To == name {
			in = append(in, e)
		}
	}
	return in
}

// Outputs returns the dataflows leaving the named microservice.
func (a *App) Outputs(name string) []Dataflow {
	var out []Dataflow
	for _, e := range a.Dataflows {
		if e.From == name {
			out = append(out, e)
		}
	}
	return out
}

// Validate checks structural invariants: at least one microservice, no
// duplicate edges, acyclicity, and (for multi-vertex apps) weak
// connectivity. The result is memoized until the next mutation.
func (a *App) Validate() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.memoFreshLocked()
	if !a.memo.validDone {
		a.memo.validErr = a.validateLocked()
		a.memo.validDone = true
	}
	return a.memo.validErr
}

func (a *App) validateLocked() error {
	if len(a.Microservices) == 0 {
		return fmt.Errorf("dag: %s: no microservices", a.Name)
	}
	seen := make(map[[2]string]bool)
	for _, e := range a.Dataflows {
		k := [2]string{e.From, e.To}
		if seen[k] {
			return fmt.Errorf("dag: %s: duplicate dataflow %s->%s", a.Name, e.From, e.To)
		}
		seen[k] = true
	}
	if _, err := a.topoOrderLocked(); err != nil {
		return err
	}
	if len(a.Microservices) > 1 && !a.weaklyConnected() {
		return fmt.Errorf("dag: %s: application graph is not connected", a.Name)
	}
	return nil
}

func (a *App) weaklyConnected() bool {
	adj := make(map[string][]string)
	for _, e := range a.Dataflows {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	visited := make(map[string]bool)
	var stack []string
	stack = append(stack, a.Microservices[0].Name)
	visited[a.Microservices[0].Name] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[n] {
			if !visited[next] {
				visited[next] = true
				stack = append(stack, next)
			}
		}
	}
	return len(visited) == len(a.Microservices)
}

// TopoOrder returns a deterministic topological order of the microservice
// names (Kahn's algorithm with lexicographic tie-breaking), or an error when
// the graph has a cycle. The returned slice is memoized until the next
// mutation and shared between callers — treat it as read-only.
func (a *App) TopoOrder() ([]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.topoOrderLocked()
}

func (a *App) topoOrderLocked() ([]string, error) {
	a.memoFreshLocked()
	if a.memo.topoDone {
		return a.memo.topo, a.memo.topoErr
	}
	a.memo.topo, a.memo.topoErr = a.topoOrder()
	a.memo.topoDone = true
	return a.memo.topo, a.memo.topoErr
}

func (a *App) topoOrder() ([]string, error) {
	indeg := make(map[string]int, len(a.Microservices))
	for _, m := range a.Microservices {
		indeg[m.Name] = 0
	}
	for _, e := range a.Dataflows {
		indeg[e.To]++
	}
	var ready []string
	for n, d := range indeg {
		if d == 0 {
			ready = append(ready, n)
		}
	}
	sort.Strings(ready)
	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var unlocked []string
		for _, e := range a.Dataflows {
			if e.From != n {
				continue
			}
			indeg[e.To]--
			if indeg[e.To] == 0 {
				unlocked = append(unlocked, e.To)
			}
		}
		sort.Strings(unlocked)
		ready = mergeSorted(ready, unlocked)
	}
	if len(order) != len(a.Microservices) {
		return nil, fmt.Errorf("dag: %s: cycle detected", a.Name)
	}
	return order, nil
}

func mergeSorted(a, b []string) []string {
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Stages groups the microservices into synchronization-barrier levels: stage
// k contains every microservice whose longest path from a source has length
// k. All microservices in a stage may only start after every microservice in
// the previous stage finished — the paper's "synchronization barriers". The
// returned slices are memoized until the next mutation and shared between
// callers — treat them as read-only.
func (a *App) Stages() ([][]string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.memoFreshLocked()
	if a.memo.stagesDone {
		return a.memo.stages, a.memo.stagesErr
	}
	a.memo.stages, a.memo.stagesErr = a.stages()
	a.memo.stagesDone = true
	return a.memo.stages, a.memo.stagesErr
}

func (a *App) stages() ([][]string, error) {
	order, err := a.topoOrderLocked()
	if err != nil {
		return nil, err
	}
	level := make(map[string]int, len(order))
	maxLevel := 0
	for _, n := range order {
		l := 0
		for _, e := range a.Inputs(n) {
			if level[e.From]+1 > l {
				l = level[e.From] + 1
			}
		}
		level[n] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	stages := make([][]string, maxLevel+1)
	for _, n := range order {
		stages[level[n]] = append(stages[level[n]], n)
	}
	for _, s := range stages {
		sort.Strings(s)
	}
	return stages, nil
}

// CriticalPath returns the path through the DAG maximizing the sum of the
// given per-microservice weights, along with that sum. Dataflow sizes do not
// contribute; callers fold transfer costs into the weights if desired.
func (a *App) CriticalPath(weight func(*Microservice) float64) ([]string, float64, error) {
	order, err := a.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[string]float64, len(order))
	prev := make(map[string]string, len(order))
	for _, n := range order {
		best := 0.0
		bestPrev := ""
		for _, e := range a.Inputs(n) {
			if dist[e.From] > best || (dist[e.From] == best && bestPrev == "") {
				best = dist[e.From]
				bestPrev = e.From
			}
		}
		dist[n] = best + weight(a.byName[n])
		prev[n] = bestPrev
	}
	// Find the sink with maximum distance.
	endName, endDist := "", -1.0
	for _, n := range order {
		if dist[n] > endDist {
			endName, endDist = n, dist[n]
		}
	}
	var path []string
	for n := endName; n != ""; n = prev[n] {
		path = append(path, n)
	}
	// Reverse.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endDist, nil
}

// TotalImageSize returns the sum of all image sizes.
func (a *App) TotalImageSize() units.Bytes {
	var total units.Bytes
	for _, m := range a.Microservices {
		total += m.ImageSize
	}
	return total
}

// TotalDataflow returns the sum of all dataflow sizes.
func (a *App) TotalDataflow() units.Bytes {
	var total units.Bytes
	for _, e := range a.Dataflows {
		total += e.Size
	}
	return total
}

// DOT renders the application in Graphviz DOT format for documentation.
func (a *App) DOT() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=LR;\n", a.Name)
	for _, m := range a.Microservices {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%s\"];\n", m.Name, m.Name, m.ImageSize)
	}
	for _, e := range a.Dataflows {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%s\"];\n", e.From, e.To, e.Size)
	}
	b.WriteString("}\n")
	return b.String()
}
