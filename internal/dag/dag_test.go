package dag

import (
	"math/rand"
	"strings"
	"testing"

	"deep/internal/units"
)

func diamond(t *testing.T) *App {
	t.Helper()
	a := NewApp("diamond")
	for _, n := range []string{"src", "left", "right", "sink"} {
		if err := a.AddMicroservice(&Microservice{Name: n, ImageSize: units.MB}); err != nil {
			t.Fatal(err)
		}
	}
	edges := [][2]string{{"src", "left"}, {"src", "right"}, {"left", "sink"}, {"right", "sink"}}
	for _, e := range edges {
		if err := a.AddDataflow(e[0], e[1], 10*units.MB); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestValidateOK(t *testing.T) {
	a := diamond(t)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestDuplicateMicroservice(t *testing.T) {
	a := NewApp("x")
	if err := a.AddMicroservice(&Microservice{Name: "m"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddMicroservice(&Microservice{Name: "m"}); err == nil {
		t.Error("expected duplicate error")
	}
}

func TestEmptyNameRejected(t *testing.T) {
	a := NewApp("x")
	if err := a.AddMicroservice(&Microservice{}); err == nil {
		t.Error("expected empty-name error")
	}
}

func TestNegativeImageSizeRejected(t *testing.T) {
	a := NewApp("x")
	if err := a.AddMicroservice(&Microservice{Name: "m", ImageSize: -1}); err == nil {
		t.Error("expected negative size error")
	}
}

func TestDataflowValidation(t *testing.T) {
	a := NewApp("x")
	_ = a.AddMicroservice(&Microservice{Name: "m"})
	if err := a.AddDataflow("nope", "m", 1); err == nil {
		t.Error("unknown source should error")
	}
	if err := a.AddDataflow("m", "nope", 1); err == nil {
		t.Error("unknown target should error")
	}
	if err := a.AddDataflow("m", "m", 1); err == nil {
		t.Error("self-loop should error")
	}
	_ = a.AddMicroservice(&Microservice{Name: "n"})
	if err := a.AddDataflow("m", "n", -5); err == nil {
		t.Error("negative size should error")
	}
}

func TestCycleDetected(t *testing.T) {
	a := NewApp("cyc")
	for _, n := range []string{"a", "b", "c"} {
		_ = a.AddMicroservice(&Microservice{Name: n})
	}
	_ = a.AddDataflow("a", "b", 1)
	_ = a.AddDataflow("b", "c", 1)
	_ = a.AddDataflow("c", "a", 1)
	if _, err := a.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := a.Validate(); err == nil {
		t.Error("Validate should reject cycles")
	}
}

func TestDisconnectedRejected(t *testing.T) {
	a := NewApp("disc")
	_ = a.AddMicroservice(&Microservice{Name: "a"})
	_ = a.AddMicroservice(&Microservice{Name: "b"})
	if err := a.Validate(); err == nil {
		t.Error("disconnected graph should be rejected")
	}
}

func TestDuplicateEdgeRejected(t *testing.T) {
	a := NewApp("dup")
	_ = a.AddMicroservice(&Microservice{Name: "a"})
	_ = a.AddMicroservice(&Microservice{Name: "b"})
	_ = a.AddDataflow("a", "b", 1)
	_ = a.AddDataflow("a", "b", 2)
	if err := a.Validate(); err == nil {
		t.Error("duplicate edge should be rejected")
	}
}

func TestTopoOrderDeterministic(t *testing.T) {
	a := diamond(t)
	first, err := a.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, _ := a.TopoOrder()
		if strings.Join(again, ",") != strings.Join(first, ",") {
			t.Fatalf("nondeterministic topo order: %v vs %v", again, first)
		}
	}
	// src must precede left/right, which must precede sink.
	pos := map[string]int{}
	for i, n := range first {
		pos[n] = i
	}
	if !(pos["src"] < pos["left"] && pos["src"] < pos["right"] && pos["left"] < pos["sink"] && pos["right"] < pos["sink"]) {
		t.Errorf("invalid topological order %v", first)
	}
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(10)
		a := NewApp("rand")
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			_ = a.AddMicroservice(&Microservice{Name: names[i]})
		}
		// Edges only from lower to higher index: guaranteed acyclic.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					_ = a.AddDataflow(names[i], names[j], 1)
				}
			}
		}
		order, err := a.TopoOrder()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		pos := map[string]int{}
		for i, nm := range order {
			pos[nm] = i
		}
		for _, e := range a.Dataflows {
			if pos[e.From] >= pos[e.To] {
				t.Fatalf("trial %d: edge %s->%s violates order", trial, e.From, e.To)
			}
		}
	}
}

func TestStages(t *testing.T) {
	a := diamond(t)
	stages, err := a.Stages()
	if err != nil {
		t.Fatal(err)
	}
	if len(stages) != 3 {
		t.Fatalf("want 3 stages, got %d: %v", len(stages), stages)
	}
	if len(stages[0]) != 1 || stages[0][0] != "src" {
		t.Errorf("stage 0 = %v", stages[0])
	}
	if len(stages[1]) != 2 {
		t.Errorf("stage 1 = %v", stages[1])
	}
	if len(stages[2]) != 1 || stages[2][0] != "sink" {
		t.Errorf("stage 2 = %v", stages[2])
	}
}

func TestStagesCoverAllOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		a := NewApp("rand")
		names := make([]string, n)
		for i := range names {
			names[i] = string(rune('a' + i))
			_ = a.AddMicroservice(&Microservice{Name: names[i]})
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					_ = a.AddDataflow(names[i], names[j], 1)
				}
			}
		}
		stages, err := a.Stages()
		if err != nil {
			t.Fatal(err)
		}
		seen := map[string]int{}
		for _, s := range stages {
			for _, m := range s {
				seen[m]++
			}
		}
		if len(seen) != n {
			t.Fatalf("trial %d: stages cover %d of %d microservices", trial, len(seen), n)
		}
		for m, c := range seen {
			if c != 1 {
				t.Fatalf("trial %d: %s appears %d times", trial, m, c)
			}
		}
		// Every edge crosses from an earlier stage to a strictly later one.
		level := map[string]int{}
		for li, s := range stages {
			for _, m := range s {
				level[m] = li
			}
		}
		for _, e := range a.Dataflows {
			if level[e.From] >= level[e.To] {
				t.Fatalf("trial %d: edge %s->%s does not advance stages", trial, e.From, e.To)
			}
		}
	}
}

func TestCriticalPath(t *testing.T) {
	a := diamond(t)
	w := map[string]float64{"src": 1, "left": 10, "right": 2, "sink": 1}
	path, total, err := a.CriticalPath(func(m *Microservice) float64 { return w[m.Name] })
	if err != nil {
		t.Fatal(err)
	}
	if total != 12 {
		t.Errorf("critical path weight = %v, want 12", total)
	}
	want := []string{"src", "left", "sink"}
	if strings.Join(path, ",") != strings.Join(want, ",") {
		t.Errorf("path = %v, want %v", path, want)
	}
}

func TestInputsOutputs(t *testing.T) {
	a := diamond(t)
	in := a.Inputs("sink")
	if len(in) != 2 {
		t.Errorf("sink inputs = %v", in)
	}
	out := a.Outputs("src")
	if len(out) != 2 {
		t.Errorf("src outputs = %v", out)
	}
	if got := a.Inputs("src"); len(got) != 0 {
		t.Errorf("src should have no inputs: %v", got)
	}
}

func TestTotals(t *testing.T) {
	a := diamond(t)
	if got := a.TotalImageSize(); got != 4*units.MB {
		t.Errorf("TotalImageSize = %v", got)
	}
	if got := a.TotalDataflow(); got != 40*units.MB {
		t.Errorf("TotalDataflow = %v", got)
	}
}

func TestSupportsArch(t *testing.T) {
	m := &Microservice{Name: "m"}
	if !m.SupportsArch(AMD64) || !m.SupportsArch(ARM64) {
		t.Error("empty arch list should support everything")
	}
	m.Arches = []Arch{AMD64}
	if !m.SupportsArch(AMD64) {
		t.Error("should support amd64")
	}
	if m.SupportsArch(ARM64) {
		t.Error("should not support arm64")
	}
}

func TestDOT(t *testing.T) {
	a := diamond(t)
	dot := a.DOT()
	for _, frag := range []string{"digraph", `"src" -> "left"`, "rankdir=LR"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q:\n%s", frag, dot)
		}
	}
}

func TestMicroserviceLookup(t *testing.T) {
	a := diamond(t)
	if a.Microservice("left") == nil {
		t.Error("lookup failed")
	}
	if a.Microservice("nope") != nil {
		t.Error("lookup of unknown should return nil")
	}
}
