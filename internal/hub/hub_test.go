package hub

import (
	"errors"
	"testing"
	"time"

	"deep/internal/registry"
	"deep/internal/units"
)

func newHub(cfg Config) *Hub {
	return New(registry.New(registry.NewMemDriver()), cfg)
}

func TestAssignPoPDeterministic(t *testing.T) {
	h := newHub(Config{PoPs: []PoP{
		{Name: "eu-west", Bandwidth: 25 * units.MBps},
		{Name: "us-east", Bandwidth: 30 * units.MBps},
	}})
	first := h.AssignPoP("medium")
	for i := 0; i < 10; i++ {
		if h.AssignPoP("medium") != first {
			t.Fatal("PoP assignment not sticky")
		}
	}
}

func TestDefaultPoP(t *testing.T) {
	h := newHub(Config{})
	if got := h.PoPNames(); len(got) != 1 || got[0] != "global" {
		t.Errorf("default PoPs = %v", got)
	}
}

func TestRateLimitWindow(t *testing.T) {
	h := newHub(Config{RateLimit: 2, Window: time.Hour})
	now := time.Unix(0, 0)
	h.SetClock(func() time.Time { return now })

	if err := h.RecordPull("pi"); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordPull("pi"); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordPull("pi"); !errors.Is(err, registry.ErrRateLimited) {
		t.Fatalf("third pull should be limited: %v", err)
	}
	if got := h.RemainingPulls("pi"); got != 0 {
		t.Errorf("remaining = %d", got)
	}
	// Another client is unaffected.
	if err := h.RecordPull("other"); err != nil {
		t.Errorf("independent client limited: %v", err)
	}
	// The window slides: an hour later the budget refills.
	now = now.Add(61 * time.Minute)
	if err := h.RecordPull("pi"); err != nil {
		t.Errorf("budget should refill: %v", err)
	}
}

func TestRateLimitDisabled(t *testing.T) {
	h := newHub(Config{})
	for i := 0; i < 1000; i++ {
		if err := h.RecordPull("x"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeployTime(t *testing.T) {
	h := newHub(Config{
		PoPs:       []PoP{{Name: "only", Bandwidth: 10 * units.MBps}},
		SetupDelay: 2,
	})
	got := h.DeployTime("client", 100*units.MB)
	if got != 12 {
		t.Errorf("deploy time = %v, want 12", got)
	}
}

func TestServerIntegration(t *testing.T) {
	h := newHub(Config{RateLimit: 1, Window: time.Hour})
	now := time.Unix(0, 0)
	h.SetClock(func() time.Time { return now })

	// Seed an image directly into the backing registry.
	cfgBlob := []byte("{}")
	layer := []byte("layer-bytes")
	reg := h.Registry()
	if err := reg.PutBlob(registry.DigestOf(cfgBlob), cfgBlob); err != nil {
		t.Fatal(err)
	}
	if err := reg.PutBlob(registry.DigestOf(layer), layer); err != nil {
		t.Fatal(err)
	}
	m := registry.Manifest{SchemaVersion: 2, MediaType: registry.MediaTypeManifest,
		Config: registry.Descriptor{MediaType: registry.MediaTypeConfig, Size: 2, Digest: registry.DigestOf(cfgBlob)},
		Layers: []registry.Descriptor{{MediaType: registry.MediaTypeLayer, Size: int64(len(layer)), Digest: registry.DigestOf(layer)}}}
	raw, _ := registry.MarshalCanonical(m)
	if _, err := reg.PutManifest("sina88/vp-transcode", "amd64", registry.MediaTypeManifest, raw); err != nil {
		t.Fatal(err)
	}

	srv := h.Server("medium")
	if srv == nil {
		t.Fatal("no server")
	}
	// First manifest GET consumes the pull budget; the next is limited.
	if err := h.RecordPull("medium"); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordPull("medium"); !errors.Is(err, registry.ErrRateLimited) {
		t.Errorf("expected rate limit: %v", err)
	}
}
