// Package hub simulates Docker Hub: a V2-protocol registry fronted by a
// content delivery network with geographically assigned points of presence,
// per-PoP bandwidth, and anonymous pull rate limiting — the observable
// behaviours of the real service that matter to DEEP's deployment-time
// model.
package hub

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"sync"
	"time"

	"deep/internal/netsim"
	"deep/internal/registry"
	"deep/internal/units"
)

// PoP is one CDN point of presence.
type PoP struct {
	Name string
	// Bandwidth served to clients assigned here.
	Bandwidth units.Bandwidth
}

// Config tunes the simulator.
type Config struct {
	// PoPs is the CDN footprint; clients hash onto one. Empty means a
	// single unlimited PoP.
	PoPs []PoP
	// RateLimit caps pulls per client within Window; 0 disables limiting.
	// (Docker Hub's anonymous limit is 100 pulls / 6 h.)
	RateLimit int
	Window    time.Duration
	// SetupDelay models the fixed per-pull overhead (auth, manifest
	// round-trips) in seconds; exposed for reports, not enforced in
	// wall-clock time.
	SetupDelay float64
}

// Hub wraps a registry with the CDN/rate-limit front end.
type Hub struct {
	cfg Config
	reg *registry.Registry

	mu    sync.Mutex
	now   func() time.Time
	pulls map[string][]time.Time // client -> pull timestamps in window
}

// New returns a hub over the given backing registry.
func New(reg *registry.Registry, cfg Config) *Hub {
	if len(cfg.PoPs) == 0 {
		cfg.PoPs = []PoP{{Name: "global", Bandwidth: 0}}
	}
	if cfg.Window == 0 {
		cfg.Window = 6 * time.Hour
	}
	return &Hub{cfg: cfg, reg: reg, now: time.Now, pulls: make(map[string][]time.Time)}
}

// Registry exposes the backing registry (for seeding).
func (h *Hub) Registry() *registry.Registry { return h.reg }

// SetClock injects a deterministic clock for tests.
func (h *Hub) SetClock(f func() time.Time) { h.now = f }

// AssignPoP deterministically maps a client to a CDN point of presence,
// emulating geo-DNS: the same client always lands on the same PoP.
func (h *Hub) AssignPoP(client string) PoP {
	hash := fnv.New32a()
	_, _ = io.WriteString(hash, client)
	return h.cfg.PoPs[int(hash.Sum32())%len(h.cfg.PoPs)]
}

// RecordPull applies the rate limit for one client pull. It returns
// ErrRateLimited when the client exhausted its window budget.
func (h *Hub) RecordPull(client string) error {
	if h.cfg.RateLimit <= 0 {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	cutoff := now.Add(-h.cfg.Window)
	kept := h.pulls[client][:0]
	for _, t := range h.pulls[client] {
		if t.After(cutoff) {
			kept = append(kept, t)
		}
	}
	if len(kept) >= h.cfg.RateLimit {
		h.pulls[client] = kept
		return fmt.Errorf("%w: client %s exceeded %d pulls per %s",
			registry.ErrRateLimited, client, h.cfg.RateLimit, h.cfg.Window)
	}
	h.pulls[client] = append(kept, now)
	return nil
}

// RemainingPulls returns the client's unused budget in the current window
// (or RateLimit when limiting is disabled).
func (h *Hub) RemainingPulls(client string) int {
	if h.cfg.RateLimit <= 0 {
		return int(^uint(0) >> 1)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	cutoff := h.now().Add(-h.cfg.Window)
	n := 0
	for _, t := range h.pulls[client] {
		if t.After(cutoff) {
			n++
		}
	}
	return h.cfg.RateLimit - n
}

// Server builds an HTTP server for the hub whose blob responses are
// throttled to the client's PoP bandwidth and gated by the rate limiter.
// client identifies the caller for PoP assignment and limiting (a real CDN
// keys on the source address; our emulation keys on a name).
func (h *Hub) Server(client string) *registry.Server {
	srv := registry.NewServer(h.reg)
	pop := h.AssignPoP(client)
	if pop.Bandwidth > 0 {
		srv.Throttle = func(_ string, r io.Reader) io.Reader {
			return netsim.NewRateLimitedReader(r, pop.Bandwidth)
		}
	}
	srv.PullGate = func(string) error { return h.RecordPull(client) }
	return srv
}

// DeployTime returns the modeled pull latency for size bytes by a client:
// the fixed setup delay plus the transfer at the assigned PoP's bandwidth.
func (h *Hub) DeployTime(client string, size units.Bytes) float64 {
	pop := h.AssignPoP(client)
	if pop.Bandwidth <= 0 {
		return h.cfg.SetupDelay
	}
	return h.cfg.SetupDelay + pop.Bandwidth.Seconds(size)
}

// PoPNames lists the configured PoPs, sorted.
func (h *Hub) PoPNames() []string {
	names := make([]string, 0, len(h.cfg.PoPs))
	for _, p := range h.cfg.PoPs {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}
