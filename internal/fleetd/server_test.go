package fleetd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"deep/internal/dag"
	"deep/internal/fleet"
	"deep/internal/obs"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/wire"
	"deep/internal/workload"
)

// slowSched wraps the real scheduler with an artificial delay so tests can
// hold worker slots long enough to observe queue-full, quota, and drain
// behavior deterministically.
type slowSched struct {
	inner sched.Scheduler
	delay time.Duration
}

func (s *slowSched) Name() string { return "slow" }
func (s *slowSched) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	time.Sleep(s.delay)
	return s.inner.Schedule(app, cluster)
}

type testEnv struct {
	f        *fleet.Fleet
	s        *Server
	ts       *httptest.Server
	url      string
	adminURL string
}

func newEnv(t *testing.T, fcfg fleet.Config, scfg Config) *testEnv {
	t.Helper()
	f := fleet.New(fcfg)
	t.Cleanup(f.Close)
	scfg.Backend = f
	scfg.Registry = f.Metrics().Obs()
	s, err := New(scfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	admin := httptest.NewServer(s.AdminHandler())
	t.Cleanup(admin.Close)
	return &testEnv{f: f, s: s, ts: ts, url: ts.URL, adminURL: admin.URL}
}

func deployBody(t *testing.T, tenant string) []byte {
	t.Helper()
	app, err := json.Marshal(wire.AppSpecOf(workload.VideoProcessing()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"tenant": tenant, "app": json.RawMessage(app)})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postDeploy(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/deploy", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func errCode(t *testing.T, data []byte) string {
	t.Helper()
	var body struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(data, &body); err != nil {
		t.Fatalf("non-envelope error body %q: %v", data, err)
	}
	return body.Error.Code
}

// TestDeployHappyPath pins the end-to-end serving contract: a wire-encoded
// app comes back with a placement, simulation results, and the per-tenant
// accepted counter bumped.
func TestDeployHappyPath(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 2}, Config{})
	resp, data := postDeploy(t, env.url, deployBody(t, "acme"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out DeployResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "acme" || len(out.Placement) == 0 || out.MakespanS <= 0 || out.EnergyJ <= 0 {
		t.Fatalf("implausible deploy response: %+v", out)
	}
	if c, ok := env.s.cfg.Registry.LookupCounter("fleetd_http_accepted{tenant=acme}"); !ok || c.Value() != 1 {
		t.Fatalf("accepted counter not bumped (found=%v)", ok)
	}

	// Second identical deploy must hit the placement memo.
	resp, data = postDeploy(t, env.url, deployBody(t, "acme"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit {
		t.Fatal("second identical deploy missed the placement cache")
	}
}

// TestDeployRateLimit pins the token-bucket 429: with rate 1 burst 1, the
// second immediate request is rejected with Retry-After.
func TestDeployRateLimit(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{RatePerSec: 1, Burst: 1})
	body := deployBody(t, "limited")
	if resp, data := postDeploy(t, env.url, body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first deploy: status %d: %s", resp.StatusCode, data)
	}
	resp, data := postDeploy(t, env.url, body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second deploy: status %d, want 429", resp.StatusCode)
	}
	if code := errCode(t, data); code != codeRateLimited {
		t.Fatalf("error code %q, want %q", code, codeRateLimited)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	if c, ok := env.s.cfg.Registry.LookupCounter("fleetd_http_rejected{tenant=limited}"); !ok || c.Value() != 1 {
		t.Fatal("rejected counter not bumped")
	}
}

// TestDeployQuotaAndQueueFull pins the two load-shedding 429s: a tenant over
// its in-flight quota, and a full admission queue — both with Retry-After.
func TestDeployQuotaAndQueueFull(t *testing.T) {
	env := newEnv(t, fleet.Config{
		Workers:    1,
		QueueDepth: 1,
		NewScheduler: func() sched.Scheduler {
			return &slowSched{inner: sched.NewDEEP(), delay: 300 * time.Millisecond}
		},
		CacheSize: -1, // every request schedules: keeps the worker busy
	}, Config{MaxInFlight: 2})
	body := deployBody(t, "busy")

	var mu sync.Mutex
	codes := map[string]int{}
	statuses := map[int]int{}
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, data := postDeploy(t, env.url, body)
			mu.Lock()
			defer mu.Unlock()
			statuses[resp.StatusCode]++
			if resp.StatusCode == http.StatusTooManyRequests {
				codes[errCode(t, data)]++
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
			}
		}()
	}
	wg.Wait()
	if statuses[http.StatusOK] == 0 {
		t.Fatalf("no request succeeded: %v", statuses)
	}
	if statuses[http.StatusTooManyRequests] == 0 {
		t.Fatalf("no request was shed: %v", statuses)
	}
	if codes[codeQuotaExceeded]+codes[codeQueueFull] != statuses[http.StatusTooManyRequests] {
		t.Fatalf("429s carried unexpected codes: %v", codes)
	}
}

// TestDeployDecodeLimits pins the body-size and strict-decode errors.
func TestDeployDecodeLimits(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{MaxBodyBytes: 256})

	big := append([]byte(`{"tenant":"`), bytes.Repeat([]byte("x"), 512)...)
	big = append(big, []byte(`"}`)...)
	resp, data := postDeploy(t, env.url, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge || errCode(t, data) != codeBodyTooLarge {
		t.Fatalf("oversized body: status %d code %s", resp.StatusCode, data)
	}

	resp, data = postDeploy(t, env.url, []byte(`{"bogus":1}`))
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != codeInvalidRequest {
		t.Fatalf("unknown field: status %d body %s", resp.StatusCode, data)
	}

	resp, data = postDeploy(t, env.url, []byte(`{"app":{"version":99,"name":"a"}}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("future version: status %d body %s", resp.StatusCode, data)
	}
	if !strings.Contains(string(data), "unsupported") {
		t.Fatalf("future version error does not mention the version gate: %s", data)
	}

	resp, data = postDeploy(t, env.url, []byte(`{"tenant":"a"}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing app: status %d body %s", resp.StatusCode, data)
	}
}

// TestChurnEndpoint pins the churn route: a fail delta bumps the epoch, an
// unknown device is a 400, and recovery returns to epoch N+1.
func TestChurnEndpoint(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1, NewCluster: func() *sim.Cluster {
		return workload.ScaledTestbed(2)
	}}, Config{})
	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(env.adminURL+"/v1/churn", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}
	resp, data := post(`{"fail_devices":["medium-00"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn: status %d: %s", resp.StatusCode, data)
	}
	var out map[string]int64
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out["epoch"] != 1 {
		t.Fatalf("epoch %d, want 1", out["epoch"])
	}
	if resp, data = post(`{"fail_devices":["no-such"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown device: status %d: %s", resp.StatusCode, data)
	}
	if resp, _ = post(`{"recover_devices":["medium-00"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("recovery: status %d", resp.StatusCode)
	}
}

// TestStatsAndMetricsAndHealth pins the observability surface: /v1/stats
// decodes, /metrics carries the per-tenant HTTP counters, /healthz is always
// 200, /readyz flips to 503 under drain.
func TestStatsAndMetricsAndHealth(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{})
	if resp, data := postDeploy(t, env.url, deployBody(t, "obs")); resp.StatusCode != http.StatusOK {
		t.Fatalf("deploy: status %d: %s", resp.StatusCode, data)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(env.url + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(data)
	}

	status, body := get("/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("/v1/stats: %d", status)
	}
	var stats fleet.Stats
	if err := json.Unmarshal([]byte(body), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 1 {
		t.Fatalf("stats completed %d, want 1", stats.Completed)
	}

	status, body = get("/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: %d", status)
	}
	for _, want := range []string{"fleetd_http_accepted", "fleet_requests_completed"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}

	if status, _ = get("/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz: %d", status)
	}
	if status, _ = get("/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", status)
	}
	env.s.StartDrain()
	if status, _ = get("/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz during drain: %d", status)
	}
	if status, _ = get("/readyz"); status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", status)
	}
	if resp, data := postDeploy(t, env.url, deployBody(t, "obs")); resp.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != codeDraining {
		t.Fatalf("deploy during drain: status %d body %s", resp.StatusCode, data)
	}
}

// TestClusterEndpoint pins /v1/cluster: the configured cluster round-trips
// through its wire spec.
func TestClusterEndpoint(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{Cluster: workload.Testbed()})
	resp, err := http.Get(env.url + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	spec, err := wire.DecodeClusterSpec(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Cluster(); err != nil {
		t.Fatal(err)
	}
}

// TestDrainCompletesAcceptedRequests is the PR's headline robustness pin:
// requests accepted before drain all complete with 200 even though drain
// began while they were queued or in flight, new requests are shed with 503,
// and the whole shutdown sequence (server drain, fleet close) finishes well
// inside the hard deadline.
func TestDrainCompletesAcceptedRequests(t *testing.T) {
	const inflight = 4
	env := newEnv(t, fleet.Config{
		Workers:    2,
		QueueDepth: inflight,
		NewScheduler: func() sched.Scheduler {
			return &slowSched{inner: sched.NewDEEP(), delay: 150 * time.Millisecond}
		},
		CacheSize: -1,
	}, Config{})

	// Saturate: every request schedules slowly, so all of these are still in
	// the queue or on a worker when drain starts.
	results := make(chan int, inflight)
	for i := 0; i < inflight; i++ {
		go func() {
			resp, _ := postDeploy(t, env.url, deployBody(t, "drain"))
			results <- resp.StatusCode
		}()
	}
	// Wait until the fleet has actually accepted them.
	deadline := time.Now().Add(2 * time.Second)
	for env.f.Stats().Submitted < inflight {
		if time.Now().After(deadline) {
			t.Fatalf("fleet accepted only %d/%d requests", env.f.Stats().Submitted, inflight)
		}
		time.Sleep(5 * time.Millisecond)
	}

	env.s.StartDrain()
	shedResp, shedData := postDeploy(t, env.url, deployBody(t, "drain"))
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain deploy: status %d body %s", shedResp.StatusCode, shedData)
	}

	done := make(chan struct{})
	go func() {
		env.f.Close() // completes every accepted request
		close(done)
	}()
	for i := 0; i < inflight; i++ {
		select {
		case status := <-results:
			if status != http.StatusOK {
				t.Errorf("accepted request finished with status %d, want 200", status)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("accepted request %d never completed under drain", i)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Fleet.Close hung after drain")
	}
	if c, ok := env.s.cfg.Registry.LookupCounter("fleetd_http_drained{tenant=drain}"); !ok || c.Value() < 1 {
		t.Error("drained counter not bumped")
	}
	if st := env.f.Stats(); st.Completed != inflight {
		t.Fatalf("fleet completed %d, want %d", st.Completed, inflight)
	}
}

// TestBackendStub pins the handler/backend seam itself: handlers speak only
// through the interface, so a stub can fake queue state and the Retry-After
// derivation is observable without a real fleet.
type stubBackend struct {
	submitErr error
	queueLen  int
	queueCap  int
	workers   int
}

func (s *stubBackend) TrySubmitCtx(ctx context.Context, req fleet.Request) (<-chan *fleet.Response, error) {
	if s.submitErr != nil {
		return nil, s.submitErr
	}
	ch := make(chan *fleet.Response, 1)
	ch <- &fleet.Response{Tenant: req.Tenant, App: req.App.Name, Placement: fleet.PlacementView{}, Result: &sim.Result{}}
	return ch, nil
}
func (s *stubBackend) SubmitBatch(ctx context.Context, reqs []fleet.Request) (<-chan *fleet.Response, error) {
	if s.submitErr != nil {
		return nil, s.submitErr
	}
	ch := make(chan *fleet.Response, len(reqs))
	for i, req := range reqs {
		ch <- &fleet.Response{Tenant: req.Tenant, App: req.App.Name, Index: i, Placement: fleet.PlacementView{}, Result: &sim.Result{}}
	}
	return ch, nil
}
func (s *stubBackend) ApplyChurn(fleet.ChurnDelta) (int64, int, error) {
	return 0, 0, fmt.Errorf("stub: no churn")
}
func (s *stubBackend) Stats() fleet.Stats              { return fleet.Stats{} }
func (s *stubBackend) SlowRequests() []obs.SlowRequest { return nil }
func (s *stubBackend) QueueLen() int                   { return s.queueLen }
func (s *stubBackend) QueueCap() int                   { return s.queueCap }
func (s *stubBackend) Workers() int                    { return s.workers }

func TestBackendStub(t *testing.T) {
	stub := &stubBackend{submitErr: fleet.ErrQueueFull, queueLen: 8, queueCap: 8, workers: 2}
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: stub, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postDeploy(t, ts.URL, deployBody(t, "stub"))
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, data) != codeQueueFull {
		t.Fatalf("queue-full stub: status %d body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After")
	}

	stub.submitErr = nil
	if resp, data = postDeploy(t, ts.URL, deployBody(t, "stub")); resp.StatusCode != http.StatusOK {
		t.Fatalf("stub deploy: status %d body %s", resp.StatusCode, data)
	}
}

// TestAdminSplit pins the public/admin route separation: the operator
// surface (churn, drain, debug) is absent from the public handler, so an
// internet-facing listener cannot be drained, churned, or profile-pinned by
// its clients, while AdminHandler serves all of it.
func TestAdminSplit(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{})
	do := func(base, method, path string) int {
		t.Helper()
		req, err := http.NewRequest(method, base+path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	adminOnly := []struct{ method, path string }{
		{http.MethodPost, "/v1/churn"},
		{http.MethodPost, "/v1/drain"},
		{http.MethodGet, "/debug/slow"},
		{http.MethodGet, "/debug/pprof/"},
	}
	for _, p := range adminOnly {
		if status := do(env.url, p.method, p.path); status != http.StatusNotFound {
			t.Errorf("public %s %s: status %d, want 404", p.method, p.path, status)
		}
	}
	if status := do(env.adminURL, http.MethodGet, "/debug/slow"); status != http.StatusOK {
		t.Errorf("admin /debug/slow: status %d", status)
	}
	if status := do(env.adminURL, http.MethodGet, "/debug/pprof/"); status != http.StatusOK {
		t.Errorf("admin /debug/pprof/: status %d", status)
	}
	if status := do(env.adminURL, http.MethodPost, "/v1/drain"); status != http.StatusAccepted {
		t.Errorf("admin /v1/drain: status %d, want 202", status)
	}
	if !env.s.draining.Load() {
		t.Error("admin drain did not flip the server into draining")
	}
}

// TestTenantLabelOverflowBounded pins the bounded-memory guarantee of the
// per-tenant HTTP counters: the registry interns instrument names forever,
// so past tenantGateCap unseen tenants must share the fixed tenant="other"
// set instead of minting four new registry entries per hostile name.
func TestTenantLabelOverflowBounded(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: &stubBackend{}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const extra = 256
	for i := 0; i < tenantGateCap+extra; i++ {
		s.labelsFor(fmt.Sprintf("tenant-%d", i)).accepted.Add(1)
	}
	// 4 counters per interned tenant, plus the 4 shared overflow counters.
	want := 4*tenantGateCap + 4
	if got := len(reg.CounterNames()); got != want {
		t.Fatalf("registry holds %d counters after tenant churn, want %d", got, want)
	}
	if l := s.labelsFor("one-more-fresh-tenant"); l != s.overflow {
		t.Fatal("past-cap tenant did not get the shared overflow labels")
	}
	c, ok := reg.LookupCounter("fleetd_http_accepted{tenant=other}")
	if !ok || c.Value() != extra {
		v := -1.0
		if ok {
			v = c.Value()
		}
		t.Fatalf("overflow accepted counter = %v, want %d", v, extra)
	}
}

// TestTenantNameLengthCap pins the decode-time bound on tenant names:
// they become metric label values and limiter keys, so a near-MiB name is
// rejected as a 400 before touching either.
func TestTenantNameLengthCap(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{})
	app, err := json.Marshal(wire.AppSpecOf(workload.VideoProcessing()))
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"tenant": strings.Repeat("x", maxTenantLen+1),
		"app":    json.RawMessage(app),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postDeploy(t, env.url, body)
	if resp.StatusCode != http.StatusBadRequest || errCode(t, data) != codeInvalidRequest {
		t.Fatalf("oversized tenant: status %d body %s", resp.StatusCode, data)
	}
}

// TestRejectionsConsumeNothing pins admit's check order: a tenant at its
// in-flight quota is rejected before the token bucket is touched (no token
// burnt, so recovery matches the Retry-After hint), and a rate rejection
// returns the in-flight slot it optimistically took.
func TestRejectionsConsumeNothing(t *testing.T) {
	now := time.Unix(1000, 0)

	l := newLimiter(1, 2, 1) // 1 token/s, burst 2, 1 in flight
	release, code, _ := l.admit("t", now, time.Second)
	if release == nil {
		t.Fatalf("first admit rejected with %s", code)
	}
	if rel, code, _ := l.admit("t", now, time.Second); rel != nil || code != codeQuotaExceeded {
		t.Fatalf("admit at quota: rejected=%v code=%q, want quota_exceeded", rel == nil, code)
	}
	release()
	// Same instant, one token left: it must still be there — the quota
	// rejection above must not have burnt it.
	if rel, code, _ := l.admit("t", now, time.Second); rel == nil {
		t.Fatalf("admit after release rejected with %s: quota rejection burnt a token", code)
	}

	l2 := newLimiter(1, 1, 1) // burst 1: drain the bucket with one admit
	rel, code, _ := l2.admit("t", now, time.Second)
	if rel == nil {
		t.Fatalf("first admit rejected with %s", code)
	}
	rel()
	if rel, code, _ := l2.admit("t", now, time.Second); rel != nil || code != codeRateLimited {
		t.Fatalf("admit on empty bucket: rejected=%v code=%q, want rate_limited", rel == nil, code)
	}
	// After refill the tenant must get back in: a leaked in-flight slot from
	// the rate rejection would trip the quota instead.
	if rel, code, _ := l2.admit("t", now.Add(2*time.Second), time.Second); rel == nil {
		t.Fatalf("admit after refill rejected with %s: rate rejection leaked an in-flight slot", code)
	}
}

// TestSubmitErrorMapping pins the admission error translation: a deadline
// already spent at admission is a 504 timeout, not a 400 client fault, and
// an unknown backend error is a 500 — mirroring the post-response switch.
func TestSubmitErrorMapping(t *testing.T) {
	stub := &stubBackend{submitErr: context.DeadlineExceeded, workers: 1}
	s, err := New(Config{Backend: stub, Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, data := postDeploy(t, ts.URL, deployBody(t, "map"))
	if resp.StatusCode != http.StatusGatewayTimeout || errCode(t, data) != codeDeadline {
		t.Fatalf("expired-deadline submit: status %d body %s, want 504 %s", resp.StatusCode, data, codeDeadline)
	}

	stub.submitErr = fmt.Errorf("backend exploded")
	resp, data = postDeploy(t, ts.URL, deployBody(t, "map"))
	if resp.StatusCode != http.StatusInternalServerError || errCode(t, data) != codeScheduleFailed {
		t.Fatalf("unknown submit error: status %d body %s, want 500 %s", resp.StatusCode, data, codeScheduleFailed)
	}
}

// failSched fails any app named "boom" and delegates the rest — a per-item
// scheduler fault inside an otherwise healthy batch. It is not a
// PassScheduler, so the fleet has no degraded rung to rescue the failure
// with; the error must surface as that item's structured result.
type failSched struct{ inner sched.Scheduler }

func (s *failSched) Name() string { return "fail" }
func (s *failSched) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	if app.Name == "boom" {
		return nil, fmt.Errorf("synthetic scheduler failure")
	}
	return s.inner.Schedule(app, cluster)
}

func batchBody(t *testing.T, tenant string, apps ...[]byte) []byte {
	t.Helper()
	items := make([]map[string]any, len(apps))
	for i, app := range apps {
		items[i] = map[string]any{"seed": int64(i), "app": json.RawMessage(app)}
	}
	body, err := json.Marshal(map[string]any{"tenant": tenant, "items": items})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postBatch(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/deploy:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func appJSON(t *testing.T, app *dag.App) []byte {
	t.Helper()
	data, err := json.Marshal(wire.AppSpecOf(app))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestDeployBatchHappyPath pins the batch serving contract end to end: one
// envelope, every item answered in submission order with its own placement
// and simulation results, and the accepted counter bumped once per item.
func TestDeployBatchHappyPath(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 2}, Config{})
	video := appJSON(t, workload.VideoProcessing())
	resp, data := postBatch(t, env.url, batchBody(t, "acme", video, video, video))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out DeployBatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Tenant != "acme" || len(out.Results) != 3 {
		t.Fatalf("implausible batch response: %+v", out)
	}
	for i, res := range out.Results {
		if res.Index != i {
			t.Fatalf("results[%d] carries index %d, want %d", i, res.Index, i)
		}
		if res.Error != nil {
			t.Fatalf("results[%d] failed: %+v", i, res.Error)
		}
		if res.Deploy == nil || len(res.Deploy.Placement) == 0 || res.Deploy.MakespanS <= 0 {
			t.Fatalf("results[%d] implausible deploy: %+v", i, res.Deploy)
		}
	}
	if c, ok := env.s.cfg.Registry.LookupCounter("fleetd_http_accepted{tenant=acme}"); !ok || c.Value() != 3 {
		t.Errorf("accepted counter = %v, want 3 (one per batch item)", c)
	}
}

// TestDeployBatchPerItemError pins per-item isolation: a scheduler fault on
// one item yields a structured error in that slot while its siblings deploy,
// and the 200 status still reports the batch as admitted.
func TestDeployBatchPerItemError(t *testing.T) {
	env := newEnv(t, fleet.Config{
		Workers:      1,
		NewScheduler: func() sched.Scheduler { return &failSched{inner: sched.NewDEEP()} },
	}, Config{})
	boom := workload.VideoProcessing()
	boom.Name = "boom"
	resp, data := postBatch(t, env.url,
		batchBody(t, "acme", appJSON(t, workload.VideoProcessing()), appJSON(t, boom), appJSON(t, workload.VideoProcessing())))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var out DeployBatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(out.Results))
	}
	for i, res := range out.Results {
		if res.Index != i {
			t.Fatalf("results[%d] carries index %d, want %d", i, res.Index, i)
		}
	}
	if out.Results[0].Error != nil || out.Results[2].Error != nil {
		t.Fatalf("healthy items failed: %+v / %+v", out.Results[0].Error, out.Results[2].Error)
	}
	if out.Results[1].Error == nil || out.Results[1].Error.Code != codeScheduleFailed {
		t.Fatalf("boom item: %+v, want error code %s", out.Results[1], codeScheduleFailed)
	}
	if out.Results[1].Deploy != nil {
		t.Fatalf("boom item carries a deploy body: %+v", out.Results[1].Deploy)
	}
}

// TestDeployBatchRateLimit pins the N-token charge: with burst 1, a 2-item
// batch can never clear the bucket (deterministically, not racily — the
// bucket holds at most one token), while a 1-item batch through the same
// gate succeeds.
func TestDeployBatchRateLimit(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{RatePerSec: 1000, Burst: 1})
	video := appJSON(t, workload.VideoProcessing())

	resp, data := postBatch(t, env.url, batchBody(t, "capped", video, video))
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, data) != codeRateLimited {
		t.Fatalf("2-item batch vs burst 1: status %d body %s, want 429 %s", resp.StatusCode, data, codeRateLimited)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("rate-limited batch without Retry-After")
	}

	if resp, data = postBatch(t, env.url, batchBody(t, "capped", video)); resp.StatusCode != http.StatusOK {
		t.Fatalf("1-item batch: status %d body %s", resp.StatusCode, data)
	}
}

// TestDeployBatchValidation pins the envelope checks: empty batches,
// oversized batches, and malformed items reject the whole batch before any
// limiter charge.
func TestDeployBatchValidation(t *testing.T) {
	env := newEnv(t, fleet.Config{Workers: 1}, Config{RatePerSec: 1000, Burst: 1})

	body, _ := json.Marshal(map[string]any{"tenant": "val", "items": []any{}})
	if resp, data := postBatch(t, env.url, body); resp.StatusCode != http.StatusBadRequest || errCode(t, data) != codeInvalidRequest {
		t.Fatalf("empty batch: status %d body %s", resp.StatusCode, data)
	}

	video := appJSON(t, workload.VideoProcessing())
	apps := make([][]byte, maxBatchItems+1)
	for i := range apps {
		apps[i] = video
	}
	if resp, data := postBatch(t, env.url, batchBody(t, "val", apps...)); resp.StatusCode != http.StatusBadRequest || errCode(t, data) != codeInvalidRequest {
		t.Fatalf("oversized batch: status %d body %s", resp.StatusCode, data)
	}

	if resp, data := postBatch(t, env.url, batchBody(t, "val", []byte(`{"nope":true}`))); resp.StatusCode != http.StatusBadRequest || errCode(t, data) != codeInvalidRequest {
		t.Fatalf("malformed item: status %d body %s", resp.StatusCode, data)
	}

	// None of the rejections above may have burned the tenant's one token.
	if resp, data := postBatch(t, env.url, batchBody(t, "val", video)); resp.StatusCode != http.StatusOK {
		t.Fatalf("valid batch after rejections: status %d body %s", resp.StatusCode, data)
	}
}

// TestDeployBatchBackendErrors pins the whole-batch error mapping through
// the backend seam: queue-full and draining reject the envelope with the
// same codes and Retry-After derivation as single deploys.
func TestDeployBatchBackendErrors(t *testing.T) {
	stub := &stubBackend{submitErr: fleet.ErrQueueFull, queueLen: 8, queueCap: 8, workers: 2}
	reg := obs.NewRegistry()
	s, err := New(Config{Backend: stub, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	video := appJSON(t, workload.VideoProcessing())

	resp, data := postBatch(t, ts.URL, batchBody(t, "stub", video, video))
	if resp.StatusCode != http.StatusTooManyRequests || errCode(t, data) != codeQueueFull {
		t.Fatalf("queue-full batch: status %d body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("queue-full 429 without Retry-After")
	}

	stub.submitErr = fleet.ErrClosed
	if resp, data = postBatch(t, ts.URL, batchBody(t, "stub", video)); resp.StatusCode != http.StatusServiceUnavailable || errCode(t, data) != codeDraining {
		t.Fatalf("closed batch: status %d body %s", resp.StatusCode, data)
	}

	stub.submitErr = nil
	resp, data = postBatch(t, ts.URL, batchBody(t, "stub", video, video))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stub batch: status %d body %s", resp.StatusCode, data)
	}
	var out DeployBatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 2 || out.Results[0].Index != 0 || out.Results[1].Index != 1 {
		t.Fatalf("stub batch results: %+v", out.Results)
	}
}
