// Package fleetd is the HTTP serving layer in front of internal/fleet: a
// router over typed handlers over a Backend seam. The fleet stays a plain
// in-process library; everything network-shaped — wire-format decoding,
// per-tenant rate limits and in-flight quotas, 429 backpressure with
// Retry-After hints, body-size limits, readiness, graceful drain — lives
// here, so overload and shutdown policies can evolve without touching the
// scheduling core.
package fleetd

import (
	"context"

	"deep/internal/fleet"
	"deep/internal/obs"
)

// Backend is what the HTTP layer needs from a fleet. *fleet.Fleet satisfies
// it directly; tests substitute stubs to pin handler behavior (error
// mapping, Retry-After derivation) without spinning up worker pools.
type Backend interface {
	// TrySubmitCtx admits a request without blocking: ErrQueueFull on a full
	// admission queue (the handler turns it into a 429), ErrClosed once the
	// fleet is draining. The context rides along so a client that hangs up
	// while queued never costs a schedule.
	TrySubmitCtx(ctx context.Context, req fleet.Request) (<-chan *fleet.Response, error)
	// SubmitBatch admits a whole batch atomically without blocking: either
	// every request is accepted (responses stream back in submission order,
	// each carrying its Index) or none is, with the same sentinel errors as
	// TrySubmitCtx.
	SubmitBatch(ctx context.Context, reqs []fleet.Request) (<-chan *fleet.Response, error)
	// ApplyChurn applies one live cluster delta.
	ApplyChurn(delta fleet.ChurnDelta) (epoch int64, invalidated int, err error)
	// Stats snapshots the fleet counters.
	Stats() fleet.Stats
	// SlowRequests returns the slow-request ring contents.
	SlowRequests() []obs.SlowRequest
	// QueueLen, QueueCap, and Workers describe the admission queue; the
	// handlers derive Retry-After hints from them.
	QueueLen() int
	QueueCap() int
	Workers() int
}

var _ Backend = (*fleet.Fleet)(nil)
