package fleetd

import (
	"sync"
	"sync/atomic"
	"time"
)

// tenantGate is one tenant's admission state: a token bucket for sustained
// rate and an in-flight count for concurrency. The bucket is lazy — tokens
// accrue on read from the elapsed time, so an idle tenant costs nothing.
type tenantGate struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time

	inFlight atomic.Int64
}

// takeTokens consumes n tokens if available; otherwise it reports how long
// until the bucket refills that many, which the handler surfaces as
// Retry-After. A batch larger than the burst can never pass — the hint then
// names the (unreachable) refill time and the caller keeps getting 429s,
// which is the intended answer to "my batch exceeds my burst allowance".
func (g *tenantGate) takeTokens(now time.Time, rate, burst, n float64) (bool, time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.last.IsZero() {
		g.tokens = burst
	} else if dt := now.Sub(g.last).Seconds(); dt > 0 {
		g.tokens += dt * rate
		if g.tokens > burst {
			g.tokens = burst
		}
	}
	g.last = now
	if g.tokens >= n {
		g.tokens -= n
		return true, 0
	}
	return false, time.Duration((n - g.tokens) / rate * float64(time.Second))
}

// tenantGateCap bounds the per-tenant gate map, mirroring the fleet's tenant
// label interning: past the cap, new tenant names share one overflow gate, so
// a submitter churning through unbounded tenant names cannot grow server
// memory (it only throttles itself harder).
const tenantGateCap = 1024

// limiter applies per-tenant token-bucket rate limits and in-flight
// concurrency quotas. Zero rate disables rate limiting; zero maxInFlight
// disables the quota.
type limiter struct {
	rate        float64
	burst       float64
	maxInFlight int64

	mu       sync.Mutex
	gates    map[string]*tenantGate
	overflow tenantGate
}

func newLimiter(rate float64, burst int, maxInFlight int) *limiter {
	b := float64(burst)
	if b < 1 {
		b = rate
		if b < 1 {
			b = 1
		}
	}
	return &limiter{
		rate:        rate,
		burst:       b,
		maxInFlight: int64(maxInFlight),
		gates:       make(map[string]*tenantGate),
	}
}

// gate returns the tenant's admission gate, interning up to tenantGateCap.
func (l *limiter) gate(tenant string) *tenantGate {
	l.mu.Lock()
	defer l.mu.Unlock()
	g, ok := l.gates[tenant]
	if !ok {
		if len(l.gates) >= tenantGateCap {
			return &l.overflow
		}
		g = &tenantGate{}
		l.gates[tenant] = g
	}
	return g
}

// admit runs both checks for one request. On success it returns a release
// function the handler must call when the request finishes; on failure it
// returns the rejection code and a Retry-After hint.
//
// The in-flight quota is checked before the token bucket: a tenant pinned at
// its concurrency quota must not also burn bucket tokens on every 429, which
// would push recovery out past the Retry-After hint. A rate rejection, in
// turn, returns the in-flight slot it optimistically took, so a rejected
// request of either kind consumes nothing.
func (l *limiter) admit(tenant string, now time.Time, quotaRetry time.Duration) (release func(), code string, retry time.Duration) {
	return l.admitN(tenant, now, 1, quotaRetry)
}

// admitN is admit for a batch of n requests: n in-flight slots and n bucket
// tokens, taken atomically per check — a batch either fully clears a gate or
// leaves it untouched, so a rejected batch consumes nothing.
func (l *limiter) admitN(tenant string, now time.Time, n int, quotaRetry time.Duration) (release func(), code string, retry time.Duration) {
	g := l.gate(tenant)
	nn := int64(n)
	release = func() {}
	if l.maxInFlight > 0 {
		if g.inFlight.Add(nn) > l.maxInFlight {
			g.inFlight.Add(-nn)
			return nil, codeQuotaExceeded, quotaRetry
		}
		release = func() { g.inFlight.Add(-nn) }
	}
	if l.rate > 0 {
		if ok, wait := g.takeTokens(now, l.rate, l.burst, float64(n)); !ok {
			release()
			return nil, codeRateLimited, wait
		}
	}
	return release, "", 0
}
