package fleetd

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"deep/internal/fleet"
	"deep/internal/obs"
	"deep/internal/sim"
	"deep/internal/wire"
)

// Structured error codes. Every non-2xx response carries
// {"error":{"code":...,"message":...}} so clients can branch on code without
// parsing prose.
const (
	codeInvalidRequest = "invalid_request"
	codeBodyTooLarge   = "body_too_large"
	codeRateLimited    = "rate_limited"
	codeQuotaExceeded  = "quota_exceeded"
	codeQueueFull      = "queue_full"
	codeDraining       = "draining"
	codeDeadline       = "deadline_exceeded"
	codeScheduleFailed = "schedule_failed"
	codeNotFound       = "not_found"
	codeMethod         = "method_not_allowed"
)

// defaultMaxBodyBytes bounds request bodies: app specs are a few KiB, so one
// MiB is generous without letting a hostile client buffer gigabytes.
const defaultMaxBodyBytes = 1 << 20

// maxTenantLen bounds tenant names at decode time. Tenant names become
// metric label values and rate-limiter keys, so they must stay short: a
// megabyte-long name would otherwise ride into /metrics output and gate-map
// keys verbatim.
const maxTenantLen = 128

// Config tunes a Server.
type Config struct {
	// Backend is the fleet (or a test stub). Required.
	Backend Backend
	// Registry receives the per-tenant HTTP counters and serves /metrics.
	// Point it at the fleet's own registry (Metrics().Obs()) so one scrape
	// exposes the whole process. Required.
	Registry *obs.Registry
	// Cluster, when set, is served as its wire spec on GET /v1/cluster —
	// clients can discover the infrastructure they are deploying onto.
	Cluster *sim.Cluster
	// RatePerSec is the per-tenant sustained deploy rate; Burst the bucket
	// size (default: max(RatePerSec, 1)). Zero RatePerSec disables rate
	// limiting.
	RatePerSec float64
	Burst      int
	// MaxInFlight bounds each tenant's concurrent deploys. Zero disables.
	MaxInFlight int
	// MaxBodyBytes bounds request bodies (default 1 MiB).
	MaxBodyBytes int64
	// MaxDeadline caps client-requested deadlines (default 30s): a client
	// cannot pin a worker slot for minutes by asking politely.
	MaxDeadline time.Duration
	// ExpvarName, when non-empty, publishes the registry under this expvar
	// name and mounts /debug/vars. Publish panics on duplicate names, so
	// tests leave it empty.
	ExpvarName string
}

// Server is the HTTP front-end. Create with New, mount Handler, flip into
// drain with StartDrain.
type Server struct {
	cfg Config
	lim *limiter

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	// ewmaNS tracks smoothed end-to-end service time in nanoseconds; the
	// Retry-After hints for queue-full and quota rejections derive from it.
	ewmaNS atomic.Int64

	// labels interns per-tenant HTTP counters, bounded by tenantGateCap;
	// past the cap, unseen tenants share the fixed overflow set so neither
	// this map nor the registry grows with tenant-name churn.
	labels     sync.Map
	labelCount atomic.Int64
	overflow   *httpLabels

	clusterJSON []byte
}

// New builds a server. It does not listen; mount Handler on an http.Server.
func New(cfg Config) (*Server, error) {
	if cfg.Backend == nil {
		return nil, fmt.Errorf("fleetd: config without backend")
	}
	if cfg.Registry == nil {
		return nil, fmt.Errorf("fleetd: config without registry")
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 30 * time.Second
	}
	s := &Server{cfg: cfg, drainCh: make(chan struct{})}
	s.lim = newLimiter(cfg.RatePerSec, cfg.Burst, cfg.MaxInFlight)
	s.overflow = newHTTPLabels(cfg.Registry, "other")
	if cfg.Cluster != nil {
		spec, err := wire.ClusterSpecOf(cfg.Cluster)
		if err != nil {
			return nil, fmt.Errorf("fleetd: encoding cluster spec: %w", err)
		}
		s.clusterJSON, err = json.Marshal(spec)
		if err != nil {
			return nil, fmt.Errorf("fleetd: encoding cluster spec: %w", err)
		}
	}
	if cfg.ExpvarName != "" {
		cfg.Registry.PublishExpvar(cfg.ExpvarName)
	}
	return s, nil
}

// StartDrain flips the server into drain: /readyz goes 503, new deploys are
// shed with 503 draining, and Draining() fires so the owner can begin
// shutdown. Idempotent.
func (s *Server) StartDrain() {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
}

// Draining fires once StartDrain has been called (by signal handler or the
// /v1/drain endpoint).
func (s *Server) Draining() <-chan struct{} { return s.drainCh }

// Handler builds the public route table: deploy, read-only introspection,
// and probes. Mutating cluster state (/v1/churn, /v1/drain) and the debug
// surface (pprof exposes blocking profile/trace captures) live on
// AdminHandler — mounting them here would let any client fail devices,
// drain the daemon, or pin CPUs with profile requests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/deploy", s.handleDeploy)
	mux.HandleFunc("/v1/deploy:batch", s.handleDeployBatch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/cluster", s.handleCluster)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", s.cfg.Registry.MetricsHandler())
	return mux
}

// AdminHandler builds the operator route table: churn injection, drain, and
// the debug endpoints. Serve it on a loopback-only (or otherwise
// access-controlled) listener, never on the public address.
func (s *Server) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/churn", s.handleChurn)
	mux.HandleFunc("/v1/drain", s.handleDrain)
	mux.Handle("/metrics", s.cfg.Registry.MetricsHandler())
	if s.cfg.ExpvarName != "" {
		mux.Handle("/debug/vars", expvar.Handler())
	}
	mux.HandleFunc("/debug/slow", s.handleSlow)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DeployRequest is the POST /v1/deploy envelope.
type DeployRequest struct {
	// Tenant labels the requester (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Seed perturbs the simulation jitter.
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS bounds total service time; 0 means the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// App is the versioned application spec (wire.AppSpec).
	App json.RawMessage `json:"app"`
}

// DeployResponse is the POST /v1/deploy success body.
type DeployResponse struct {
	Tenant      string                    `json:"tenant"`
	App         string                    `json:"app"`
	Epoch       int64                     `json:"epoch"`
	CacheHit    bool                      `json:"cache_hit"`
	Degraded    bool                      `json:"degraded"`
	QueueWaitMS float64                   `json:"queue_wait_ms"`
	LatencyMS   float64                   `json:"latency_ms"`
	Placement   map[string]AssignmentSpec `json:"placement"`
	MakespanS   float64                   `json:"makespan_s"`
	EnergyJ     float64                   `json:"total_energy_j"`
}

// AssignmentSpec is one microservice's placement in a deploy response.
type AssignmentSpec struct {
	Device   string `json:"device"`
	Registry string `json:"registry"`
}

// maxBatchItems bounds one POST /v1/deploy:batch envelope. A batch holds one
// admission-queue slot however large it is, so an unbounded batch would let a
// single tenant turn the shared queue into a private backlog.
const maxBatchItems = 64

// DeployBatchRequest is the POST /v1/deploy:batch envelope: one tenant, many
// app deployments, admitted atomically (one queue slot, N rate-limit tokens).
type DeployBatchRequest struct {
	// Tenant labels the whole batch (default "default").
	Tenant string `json:"tenant,omitempty"`
	// Items are the individual deployments, answered in order.
	Items []DeployBatchItem `json:"items"`
}

// DeployBatchItem is one deployment inside a batch envelope.
type DeployBatchItem struct {
	// Seed perturbs the simulation jitter for this item.
	Seed int64 `json:"seed,omitempty"`
	// DeadlineMS bounds this item's service time; 0 means the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// App is the versioned application spec (wire.AppSpec).
	App json.RawMessage `json:"app"`
}

// DeployBatchResponse is the POST /v1/deploy:batch success body. The batch
// being admitted is what the 200 asserts; each item still succeeds or fails
// on its own, so Results carries either a deploy body or a structured error
// per item, in submission order.
type DeployBatchResponse struct {
	Tenant  string              `json:"tenant"`
	Results []DeployBatchResult `json:"results"`
}

// DeployBatchResult is one item's outcome: exactly one of Deploy or Error is
// set.
type DeployBatchResult struct {
	Index  int             `json:"index"`
	Deploy *DeployResponse `json:"deploy,omitempty"`
	Error  *BatchItemError `json:"error,omitempty"`
}

// BatchItemError mirrors the top-level error envelope for one batch item.
type BatchItemError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ChurnRequest is the POST /v1/churn envelope, mirroring fleet.ChurnDelta.
type ChurnRequest struct {
	FailDevices       []string         `json:"fail_devices,omitempty"`
	RecoverDevices    []string         `json:"recover_devices,omitempty"`
	FailRegistries    []string         `json:"fail_registries,omitempty"`
	RecoverRegistries []string         `json:"recover_registries,omitempty"`
	Links             []LinkChangeSpec `json:"links,omitempty"`
}

// LinkChangeSpec is one link bandwidth change in a churn request.
type LinkChangeSpec struct {
	A      string  `json:"a"`
	B      string  `json:"b"`
	Factor float64 `json:"factor"`
}

func (s *Server) handleDeploy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "POST only", 0)
		return
	}
	if s.draining.Load() {
		// Tenant is unknown before the body is read; shed under the default
		// label rather than paying a decode for a request we will not serve.
		s.labelsFor("default").shed.Add(1)
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is draining", 0)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req DeployRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), 0)
			return
		}
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "decoding request: "+err.Error(), 0)
		return
	}
	if len(req.App) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "request without app spec", 0)
		return
	}
	if len(req.Tenant) > maxTenantLen {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("tenant name exceeds %d bytes", maxTenantLen), 0)
		return
	}
	spec, err := wire.DecodeAppSpec(req.App)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), 0)
		return
	}
	app, err := spec.App()
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), 0)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	// Admission runs before labelsFor: a rejected request must not be the
	// thing that interns a new tenant's counters.
	release, code, retry := s.lim.admit(tenant, time.Now(), s.serviceEstimate(1))
	if release == nil {
		s.labelsFor(tenant).rejected.Add(1)
		msg := "per-tenant rate limit exceeded"
		if code == codeQuotaExceeded {
			msg = "per-tenant in-flight quota exceeded"
		}
		writeError(w, http.StatusTooManyRequests, code, msg, retry)
		return
	}
	defer release()
	labels := s.labelsFor(tenant)

	deadline := time.Duration(req.DeadlineMS) * time.Millisecond
	if deadline <= 0 || deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	ch, err := s.cfg.Backend.TrySubmitCtx(ctx, fleet.Request{
		Tenant:   tenant,
		App:      app,
		Seed:     req.Seed,
		Deadline: deadline,
	})
	switch {
	case errors.Is(err, fleet.ErrQueueFull):
		labels.rejected.Add(1)
		// Retry-After: how long until the queue backlog ahead of this
		// request has been served, at the smoothed service rate.
		writeError(w, http.StatusTooManyRequests, codeQueueFull, "admission queue full",
			s.serviceEstimate(s.cfg.Backend.QueueLen()+1))
		return
	case errors.Is(err, fleet.ErrClosed):
		labels.shed.Add(1)
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is draining", 0)
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, fleet.ErrDeadline):
		// The deadline expired at admission (e.g. a client-supplied budget
		// already spent): a timeout, not a malformed request.
		labels.rejected.Add(1)
		writeError(w, http.StatusGatewayTimeout, codeDeadline, err.Error(), 0)
		return
	case errors.Is(err, context.Canceled):
		labels.rejected.Add(1)
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), 0)
		return
	case err != nil:
		// Anything else is a backend fault, not a client spec error —
		// mirror the post-response switch's default.
		labels.rejected.Add(1)
		writeError(w, http.StatusInternalServerError, codeScheduleFailed, err.Error(), 0)
		return
	}
	labels.accepted.Add(1)

	// Accepted: the fleet owns the request now and will always answer —
	// drain (Fleet.Close) completes every accepted request, and an expired
	// context is answered with its context error. So waiting on the channel
	// alone cannot hang, and the handler must wait even while draining: that
	// is what "drain completes accepted requests" means at the HTTP layer.
	resp := <-ch
	s.observe(resp)
	if s.draining.Load() {
		labels.drained.Add(1)
	}
	if resp.Err != nil {
		respErr := resp.Err
		resp.Release()
		switch {
		case errors.Is(respErr, fleet.ErrDeadline), errors.Is(respErr, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, codeDeadline, respErr.Error(), 0)
		case errors.Is(respErr, context.Canceled):
			// Client went away; 499-style. The exact status is moot (nobody
			// is listening) but the connection teardown wants one.
			writeError(w, http.StatusBadRequest, codeInvalidRequest, respErr.Error(), 0)
		default:
			writeError(w, http.StatusInternalServerError, codeScheduleFailed, respErr.Error(), 0)
		}
		return
	}
	out := deployResponseOf(resp)
	// Everything the wire response needs is copied out; recycle the pooled
	// response before the (comparatively slow) encode.
	resp.Release()
	writeJSON(w, http.StatusOK, out)
}

// deployResponseOf copies a successful fleet response into its wire form —
// after which the caller is free to Release the original.
func deployResponseOf(resp *fleet.Response) DeployResponse {
	out := DeployResponse{
		Tenant:      resp.Tenant,
		App:         resp.App,
		Epoch:       resp.Epoch,
		CacheHit:    resp.CacheHit,
		Degraded:    resp.Degraded,
		QueueWaitMS: float64(resp.QueueWait) / float64(time.Millisecond),
		LatencyMS:   float64(resp.Latency) / float64(time.Millisecond),
		Placement:   make(map[string]AssignmentSpec, resp.Placement.Len()),
		MakespanS:   resp.Result.Makespan,
		EnergyJ:     float64(resp.Result.TotalEnergy),
	}
	for ms, a := range resp.Placement.All() {
		out.Placement[ms] = AssignmentSpec{Device: a.Device, Registry: a.Registry}
	}
	return out
}

func (s *Server) handleDeployBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "POST only", 0)
		return
	}
	if s.draining.Load() {
		s.labelsFor("default").shed.Add(1)
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is draining", 0)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req DeployBatchRequest
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Sprintf("body exceeds %d bytes", tooBig.Limit), 0)
			return
		}
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "decoding request: "+err.Error(), 0)
		return
	}
	if len(req.Items) == 0 {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "batch without items", 0)
		return
	}
	if len(req.Items) > maxBatchItems {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("batch exceeds %d items", maxBatchItems), 0)
		return
	}
	if len(req.Tenant) > maxTenantLen {
		writeError(w, http.StatusBadRequest, codeInvalidRequest,
			fmt.Sprintf("tenant name exceeds %d bytes", maxTenantLen), 0)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	n := len(req.Items)

	// Admission is all-or-nothing: decode every spec before charging the
	// limiter, so a malformed item rejects the batch without consuming
	// tokens, and a charged batch is one the fleet will actually take.
	reqs := make([]fleet.Request, n)
	var maxDeadline time.Duration
	for i, item := range req.Items {
		if len(item.App) == 0 {
			writeError(w, http.StatusBadRequest, codeInvalidRequest,
				fmt.Sprintf("items[%d] without app spec", i), 0)
			return
		}
		spec, err := wire.DecodeAppSpec(item.App)
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest,
				fmt.Sprintf("items[%d]: %s", i, err), 0)
			return
		}
		app, err := spec.App()
		if err != nil {
			writeError(w, http.StatusBadRequest, codeInvalidRequest,
				fmt.Sprintf("items[%d]: %s", i, err), 0)
			return
		}
		deadline := time.Duration(item.DeadlineMS) * time.Millisecond
		if deadline <= 0 || deadline > s.cfg.MaxDeadline {
			deadline = s.cfg.MaxDeadline
		}
		if deadline > maxDeadline {
			maxDeadline = deadline
		}
		reqs[i] = fleet.Request{Tenant: tenant, App: app, Seed: item.Seed, Deadline: deadline}
	}

	// One admission check for the whole batch: n in-flight slots, n tokens.
	release, code, retry := s.lim.admitN(tenant, time.Now(), n, s.serviceEstimate(n))
	if release == nil {
		s.labelsFor(tenant).rejected.Add(float64(n))
		msg := "per-tenant rate limit exceeded"
		if code == codeQuotaExceeded {
			msg = "per-tenant in-flight quota exceeded"
		}
		writeError(w, http.StatusTooManyRequests, code, msg, retry)
		return
	}
	defer release()
	labels := s.labelsFor(tenant)

	// The shared context rides the batch's longest per-item deadline; items
	// with shorter budgets are answered individually with ErrDeadline.
	ctx, cancel := context.WithTimeout(r.Context(), maxDeadline)
	defer cancel()

	ch, err := s.cfg.Backend.SubmitBatch(ctx, reqs)
	switch {
	case errors.Is(err, fleet.ErrQueueFull):
		labels.rejected.Add(float64(n))
		writeError(w, http.StatusTooManyRequests, codeQueueFull, "admission queue full",
			s.serviceEstimate(s.cfg.Backend.QueueLen()+n))
		return
	case errors.Is(err, fleet.ErrClosed):
		labels.shed.Add(float64(n))
		writeError(w, http.StatusServiceUnavailable, codeDraining, "server is draining", 0)
		return
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, fleet.ErrDeadline):
		labels.rejected.Add(float64(n))
		writeError(w, http.StatusGatewayTimeout, codeDeadline, err.Error(), 0)
		return
	case errors.Is(err, context.Canceled):
		labels.rejected.Add(float64(n))
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), 0)
		return
	case err != nil:
		labels.rejected.Add(float64(n))
		writeError(w, http.StatusInternalServerError, codeScheduleFailed, err.Error(), 0)
		return
	}
	labels.accepted.Add(float64(n))

	// Accepted: the fleet answers every item exactly once, in submission
	// order — same completion guarantee as the single-deploy path, batch-wide.
	out := DeployBatchResponse{Tenant: tenant, Results: make([]DeployBatchResult, 0, n)}
	for range n {
		resp := <-ch
		s.observe(resp)
		if s.draining.Load() {
			labels.drained.Add(1)
		}
		res := DeployBatchResult{Index: resp.Index}
		if resp.Err != nil {
			e := &BatchItemError{Message: resp.Err.Error()}
			switch {
			case errors.Is(resp.Err, fleet.ErrDeadline), errors.Is(resp.Err, context.DeadlineExceeded):
				e.Code = codeDeadline
			case errors.Is(resp.Err, context.Canceled):
				e.Code = codeInvalidRequest
			default:
				e.Code = codeScheduleFailed
			}
			res.Error = e
		} else {
			d := deployResponseOf(resp)
			res.Deploy = &d
		}
		resp.Release()
		out.Results = append(out.Results, res)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "GET only", 0)
		return
	}
	writeJSON(w, http.StatusOK, s.cfg.Backend.Stats())
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "GET only", 0)
		return
	}
	if s.clusterJSON == nil {
		writeError(w, http.StatusNotFound, codeNotFound, "no cluster spec configured", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(s.clusterJSON)
}

func (s *Server) handleChurn(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "POST only", 0)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req ChurnRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, "decoding request: "+err.Error(), 0)
		return
	}
	delta := fleet.ChurnDelta{
		FailDevices:       req.FailDevices,
		RecoverDevices:    req.RecoverDevices,
		FailRegistries:    req.FailRegistries,
		RecoverRegistries: req.RecoverRegistries,
	}
	for _, lc := range req.Links {
		delta.Links = append(delta.Links, fleet.LinkChange{A: lc.A, B: lc.B, Factor: lc.Factor})
	}
	epoch, invalidated, err := s.cfg.Backend.ApplyChurn(delta)
	if err != nil {
		writeError(w, http.StatusBadRequest, codeInvalidRequest, err.Error(), 0)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"epoch": epoch, "invalidated": int64(invalidated)})
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, codeMethod, "POST only", 0)
		return
	}
	s.StartDrain()
	writeJSON(w, http.StatusAccepted, map[string]bool{"draining": true})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}

func (s *Server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.cfg.Backend.SlowRequests())
}

// serviceEstimate predicts how long n request service times take across the
// worker pool — the Retry-After hint for backpressure rejections. Before any
// request completes the EWMA is zero and the floor of one second applies.
func (s *Server) serviceEstimate(n int) time.Duration {
	per := time.Duration(s.ewmaNS.Load())
	workers := s.cfg.Backend.Workers()
	if workers < 1 {
		workers = 1
	}
	est := per * time.Duration((n+workers-1)/workers)
	if est < time.Second {
		est = time.Second
	}
	return est
}

// observe folds one completed response into the service-time EWMA
// (alpha 0.2: smooth enough to ride out cache-hit/miss bimodality, fresh
// enough to track load shifts within tens of requests).
func (s *Server) observe(resp *fleet.Response) {
	lat := int64(resp.Latency)
	for {
		old := s.ewmaNS.Load()
		next := lat
		if old > 0 {
			next = old + (lat-old)/5
		}
		if s.ewmaNS.CompareAndSwap(old, next) {
			return
		}
	}
}

// httpLabels is one tenant's HTTP counter set: accepted (admitted to the
// fleet), rejected (429: rate, quota, or queue), shed (503 while draining),
// drained (accepted requests completed during drain).
type httpLabels struct {
	accepted *obs.Counter
	rejected *obs.Counter
	shed     *obs.Counter
	drained  *obs.Counter
}

// newHTTPLabels interns one tenant's counter set in the registry.
func newHTTPLabels(reg *obs.Registry, tenant string) *httpLabels {
	return &httpLabels{
		accepted: reg.Counter("fleetd_http_accepted{tenant=" + tenant + "}"),
		rejected: reg.Counter("fleetd_http_rejected{tenant=" + tenant + "}"),
		shed:     reg.Counter("fleetd_http_shed{tenant=" + tenant + "}"),
		drained:  reg.Counter("fleetd_http_drained{tenant=" + tenant + "}"),
	}
}

// labelsFor returns one tenant's HTTP counters, bounded like the fleet's
// tenant labels. The cap check precedes any Registry.Counter call: the
// registry interns forever (no eviction), so past the cap unseen tenants
// record under the shared tenant="other" set rather than minting four new
// registry entries per hostile tenant name.
func (s *Server) labelsFor(tenant string) *httpLabels {
	if v, ok := s.labels.Load(tenant); ok {
		return v.(*httpLabels)
	}
	if s.labelCount.Load() >= tenantGateCap {
		return s.overflow
	}
	v, loaded := s.labels.LoadOrStore(tenant, newHTTPLabels(s.cfg.Registry, tenant))
	if !loaded {
		s.labelCount.Add(1)
	}
	return v.(*httpLabels)
}

// writeError renders the structured error envelope, with Retry-After (whole
// seconds, rounded up, floor 1) when the rejection is retryable.
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		secs := int64(math.Ceil(retryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	body.Error.Code = code
	body.Error.Message = msg
	writeJSON(w, status, body)
}

// writeJSON renders a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, `{"error":{"code":"internal","message":"encoding response"}}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
}
