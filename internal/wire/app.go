package wire

import (
	"bytes"
	"encoding/json"
	"fmt"

	"deep/internal/dag"
	"deep/internal/units"
)

// AppSpec is the wire form of one dataflow application DAG.
type AppSpec struct {
	Version       int                `json:"version"`
	Name          string             `json:"name"`
	Microservices []MicroserviceSpec `json:"microservices"`
	Dataflows     []DataflowSpec     `json:"dataflows,omitempty"`
}

// MicroserviceSpec is the wire form of one DAG vertex.
type MicroserviceSpec struct {
	Name string `json:"name"`
	// ImageSizeBytes is the containerized image size.
	ImageSizeBytes int64 `json:"image_size_bytes"`
	// Images maps registry name to the image reference there.
	Images map[string]string `json:"images,omitempty"`
	// Resource requirements (the paper's req tuple).
	Cores        int     `json:"cores,omitempty"`
	CPUMI        float64 `json:"cpu_mi,omitempty"`
	MemoryBytes  int64   `json:"memory_bytes,omitempty"`
	StorageBytes int64   `json:"storage_bytes,omitempty"`
	// Arches lists the architectures the image is published for ("amd64",
	// "arm64"); empty means all.
	Arches []string `json:"arches,omitempty"`
	// ExternalInputBytes is data ingested from outside the DAG, delivered
	// from the cluster's source node.
	ExternalInputBytes int64 `json:"external_input_bytes,omitempty"`
}

// DataflowSpec is the wire form of one DAG edge.
type DataflowSpec struct {
	From      string `json:"from"`
	To        string `json:"to"`
	SizeBytes int64  `json:"size_bytes"`
}

// DecodeAppSpec parses an AppSpec from JSON, rejecting unknown fields and
// unsupported versions. It does not validate the graph — call App for that.
func DecodeAppSpec(data []byte) (*AppSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s AppSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("wire: decoding app spec: %w", err)
	}
	if err := checkVersion("app", s.Version, AppSpecVersion); err != nil {
		return nil, err
	}
	return &s, nil
}

// App materializes the spec as a validated in-memory DAG. Structural errors
// (duplicate names, dangling edges, cycles, disconnected graphs) surface
// with the dag package's own messages.
func (s *AppSpec) App() (*dag.App, error) {
	if err := checkVersion("app", s.Version, AppSpecVersion); err != nil {
		return nil, err
	}
	if s.Name == "" {
		return nil, fmt.Errorf("wire: app spec without a name")
	}
	app := dag.NewApp(s.Name)
	for i := range s.Microservices {
		ms := &s.Microservices[i]
		arches := make([]dag.Arch, 0, len(ms.Arches))
		for _, a := range ms.Arches {
			switch dag.Arch(a) {
			case dag.AMD64, dag.ARM64:
				arches = append(arches, dag.Arch(a))
			default:
				return nil, fmt.Errorf("wire: microservice %q: unknown architecture %q", ms.Name, a)
			}
		}
		var images map[string]string
		if len(ms.Images) > 0 {
			images = make(map[string]string, len(ms.Images))
			for k, v := range ms.Images {
				images[k] = v
			}
		}
		err := app.AddMicroservice(&dag.Microservice{
			Name:      ms.Name,
			ImageSize: units.Bytes(ms.ImageSizeBytes),
			Images:    images,
			Req: dag.Requirements{
				Cores:   ms.Cores,
				CPU:     units.MI(ms.CPUMI),
				Memory:  units.Bytes(ms.MemoryBytes),
				Storage: units.Bytes(ms.StorageBytes),
			},
			Arches:        arches,
			ExternalInput: units.Bytes(ms.ExternalInputBytes),
		})
		if err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
	}
	for _, df := range s.Dataflows {
		if err := app.AddDataflow(df.From, df.To, units.Bytes(df.SizeBytes)); err != nil {
			return nil, fmt.Errorf("wire: %w", err)
		}
	}
	if err := app.Validate(); err != nil {
		return nil, fmt.Errorf("wire: %w", err)
	}
	return app, nil
}

// AppSpecOf encodes an in-memory DAG as its wire form, stamped with the
// current version. Microservices and dataflows keep their declaration
// order; image maps are copied (sorted rendering is json.Marshal's job).
func AppSpecOf(app *dag.App) *AppSpec {
	s := &AppSpec{
		Version:       AppSpecVersion,
		Name:          app.Name,
		Microservices: make([]MicroserviceSpec, 0, len(app.Microservices)),
	}
	for _, m := range app.Microservices {
		ms := MicroserviceSpec{
			Name:               m.Name,
			ImageSizeBytes:     int64(m.ImageSize),
			Cores:              m.Req.Cores,
			CPUMI:              float64(m.Req.CPU),
			MemoryBytes:        int64(m.Req.Memory),
			StorageBytes:       int64(m.Req.Storage),
			ExternalInputBytes: int64(m.ExternalInput),
		}
		if len(m.Images) > 0 {
			ms.Images = make(map[string]string, len(m.Images))
			for k, v := range m.Images {
				ms.Images[k] = v
			}
		}
		for _, a := range m.Arches {
			ms.Arches = append(ms.Arches, string(a))
		}
		s.Microservices = append(s.Microservices, ms)
	}
	for _, e := range app.Dataflows {
		s.Dataflows = append(s.Dataflows, DataflowSpec{From: e.From, To: e.To, SizeBytes: int64(e.Size)})
	}
	return s
}
