// Package wire defines the versioned JSON wire formats the deepfleetd
// serving front-end speaks: application and cluster specifications decoupled
// from the in-memory DAG and simulator types. The in-memory types (dag.App,
// sim.Cluster) are built for scheduling speed — interned pointers, memoized
// graph walks, lazy indices — none of which belongs on the network. A spec
// is plain data: every field is a JSON scalar, map, or slice, so it can be
// produced by any client, diffed, and stored.
//
// Versioning rule: every spec carries a Version field. Version 1 is current
// for both specs. A decoder accepts any version from 1 through its current
// version and rejects 0 (missing) and anything newer — adding a field
// requires bumping the version, so an old server never silently drops data a
// newer client relied on. Unknown fields are rejected at the HTTP decode
// layer (json.Decoder.DisallowUnknownFields), which is what makes the
// version gate trustworthy.
//
// Decoded specs feed straight into the fleet's canonical digest machinery:
// a decoded app hashes identically to a natively built one with the same
// content, so wire-submitted requests share placement-cache and shape-cache
// entries with in-process traffic.
package wire

import "fmt"

// Current wire-format versions.
const (
	// AppSpecVersion is the current application wire-format version.
	AppSpecVersion = 1
	// ClusterSpecVersion is the current cluster wire-format version.
	ClusterSpecVersion = 1
)

// checkVersion validates a spec's version against the decoder's current one.
func checkVersion(kind string, got, current int) error {
	if got == 0 {
		return fmt.Errorf("wire: %s spec missing version (current is %d)", kind, current)
	}
	if got < 0 || got > current {
		return fmt.Errorf("wire: unsupported %s spec version %d (decoder speaks 1..%d)", kind, got, current)
	}
	return nil
}
