package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/sim"
	"deep/internal/units"
)

// ClusterSpec is the wire form of the infrastructure a fleet runs against:
// devices, registries, the link topology, the external-input source node,
// and optional per-microservice image layer decompositions.
type ClusterSpec struct {
	Version    int                    `json:"version"`
	Devices    []DeviceSpec           `json:"devices"`
	Registries []RegistrySpec         `json:"registries,omitempty"`
	Nodes      []string               `json:"nodes,omitempty"`
	Links      []LinkSpec             `json:"links,omitempty"`
	SourceNode string                 `json:"source_node,omitempty"`
	Layers     map[string][]LayerSpec `json:"layers,omitempty"`
}

// DeviceSpec is the wire form of one edge device.
type DeviceSpec struct {
	Name         string    `json:"name"`
	Arch         string    `json:"arch"`
	Cores        int       `json:"cores"`
	SpeedMIPS    float64   `json:"speed_mips"`
	MemoryBytes  int64     `json:"memory_bytes"`
	StorageBytes int64     `json:"storage_bytes"`
	Power        PowerSpec `json:"power"`
}

// PowerSpec is the wire form of a device power model. Kind "linear" uses
// only the four state watts; kind "table" adds per-microservice processing
// and transfer draws with the linear fields as fallback.
type PowerSpec struct {
	Kind        string             `json:"kind"`
	StaticW     float64            `json:"static_w"`
	PullW       float64            `json:"pull_w,omitempty"`
	ReceiveW    float64            `json:"receive_w,omitempty"`
	ProcessingW float64            `json:"processing_w,omitempty"`
	ProcessW    map[string]float64 `json:"process_w,omitempty"`
	TransferW   map[string]float64 `json:"transfer_w,omitempty"`
}

// RegistrySpec is the wire form of one image registry.
type RegistrySpec struct {
	Name   string `json:"name"`
	Node   string `json:"node"`
	Shared bool   `json:"shared,omitempty"`
}

// LinkSpec is the wire form of one directed network channel.
type LinkSpec struct {
	From        string  `json:"from"`
	To          string  `json:"to"`
	BWBytesPerS float64 `json:"bw_bytes_per_s"`
	RTTSeconds  float64 `json:"rtt_seconds,omitempty"`
	Shared      bool    `json:"shared,omitempty"`
}

// LayerSpec is the wire form of one content-addressed image layer.
type LayerSpec struct {
	Digest    string `json:"digest"`
	SizeBytes int64  `json:"size_bytes"`
}

// DecodeClusterSpec parses a ClusterSpec from JSON, rejecting unknown fields
// and unsupported versions.
func DecodeClusterSpec(data []byte) (*ClusterSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s ClusterSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("wire: decoding cluster spec: %w", err)
	}
	if err := checkVersion("cluster", s.Version, ClusterSpecVersion); err != nil {
		return nil, err
	}
	return &s, nil
}

// Cluster materializes the spec as an in-memory cluster, building the
// topology and device handles.
func (s *ClusterSpec) Cluster() (*sim.Cluster, error) {
	if err := checkVersion("cluster", s.Version, ClusterSpecVersion); err != nil {
		return nil, err
	}
	if len(s.Devices) == 0 {
		return nil, fmt.Errorf("wire: cluster spec without devices")
	}
	topo := netsim.NewTopology()
	for _, n := range s.Nodes {
		topo.AddNode(n)
	}
	for _, l := range s.Links {
		topo.AddNode(l.From)
		topo.AddNode(l.To)
	}
	if s.SourceNode != "" {
		topo.AddNode(s.SourceNode)
	}
	devices := make([]*device.Device, 0, len(s.Devices))
	for i := range s.Devices {
		ds := &s.Devices[i]
		if ds.Name == "" {
			return nil, fmt.Errorf("wire: device %d without a name", i)
		}
		arch := dag.Arch(ds.Arch)
		if arch != dag.AMD64 && arch != dag.ARM64 {
			return nil, fmt.Errorf("wire: device %q: unknown architecture %q", ds.Name, ds.Arch)
		}
		pm, err := ds.Power.model()
		if err != nil {
			return nil, fmt.Errorf("wire: device %q: %w", ds.Name, err)
		}
		devices = append(devices, device.New(ds.Name, arch, ds.Cores, units.MIPS(ds.SpeedMIPS),
			units.Bytes(ds.MemoryBytes), units.Bytes(ds.StorageBytes), pm))
		topo.AddNode(ds.Name)
	}
	for _, rs := range s.Registries {
		if rs.Node == "" {
			return nil, fmt.Errorf("wire: registry %q without a node", rs.Name)
		}
		topo.AddNode(rs.Node)
	}
	for _, l := range s.Links {
		err := topo.AddLink(netsim.Link{
			From: l.From, To: l.To,
			BW:             units.Bandwidth(l.BWBytesPerS),
			RTT:            l.RTTSeconds,
			SharedCapacity: l.Shared,
		})
		if err != nil {
			return nil, fmt.Errorf("wire: link %s->%s: %w", l.From, l.To, err)
		}
	}
	c := &sim.Cluster{
		Devices:    devices,
		Topology:   topo,
		SourceNode: s.SourceNode,
	}
	for _, rs := range s.Registries {
		c.Registries = append(c.Registries, sim.RegistryInfo{Name: rs.Name, Node: rs.Node, Shared: rs.Shared})
	}
	if len(s.Layers) > 0 {
		c.Layers = make(map[string][]sim.Layer, len(s.Layers))
		for ms, ls := range s.Layers {
			rows := make([]sim.Layer, 0, len(ls))
			for _, l := range ls {
				rows = append(rows, sim.Layer{Digest: l.Digest, Size: units.Bytes(l.SizeBytes)})
			}
			c.Layers[ms] = rows
		}
	}
	return c, nil
}

// model materializes the power spec.
func (p *PowerSpec) model() (energy.PowerModel, error) {
	linear := energy.LinearModel{
		StaticW:     units.Watts(p.StaticW),
		PullW:       units.Watts(p.PullW),
		ReceiveW:    units.Watts(p.ReceiveW),
		ProcessingW: units.Watts(p.ProcessingW),
	}
	switch p.Kind {
	case "", "linear":
		return linear, nil
	case "table":
		tm := energy.TableModel{Fallback: linear}
		if len(p.ProcessW) > 0 {
			tm.ProcessW = make(map[string]units.Watts, len(p.ProcessW))
			for k, v := range p.ProcessW {
				tm.ProcessW[k] = units.Watts(v)
			}
		}
		if len(p.TransferW) > 0 {
			tm.TransferW = make(map[string]units.Watts, len(p.TransferW))
			for k, v := range p.TransferW {
				tm.TransferW[k] = units.Watts(v)
			}
		}
		return tm, nil
	default:
		return nil, fmt.Errorf("unknown power model kind %q (want linear|table)", p.Kind)
	}
}

// ClusterSpecOf encodes an in-memory cluster as its wire form, stamped with
// the current version. Power models must be the energy package's linear or
// table models — anything else (a custom PowerModel implementation) has no
// wire representation and errors. Links are enumerated deterministically in
// sorted (from, to) order.
func ClusterSpecOf(c *sim.Cluster) (*ClusterSpec, error) {
	s := &ClusterSpec{Version: ClusterSpecVersion, SourceNode: c.SourceNode}
	for _, d := range c.Devices {
		ps, err := powerSpecOf(d.Power)
		if err != nil {
			return nil, fmt.Errorf("wire: device %q: %w", d.Name, err)
		}
		s.Devices = append(s.Devices, DeviceSpec{
			Name:         d.Name,
			Arch:         string(d.Arch),
			Cores:        d.Cores,
			SpeedMIPS:    float64(d.Speed),
			MemoryBytes:  int64(d.Memory),
			StorageBytes: int64(d.Storage),
			Power:        ps,
		})
	}
	for _, r := range c.Registries {
		s.Registries = append(s.Registries, RegistrySpec{Name: r.Name, Node: r.Node, Shared: r.Shared})
	}
	if c.Topology != nil {
		nodes := c.Topology.Nodes() // already sorted
		s.Nodes = append(s.Nodes, nodes...)
		for _, a := range nodes {
			for _, b := range nodes {
				if a == b {
					continue
				}
				if l, ok := c.Topology.LinkBetween(a, b); ok {
					s.Links = append(s.Links, LinkSpec{
						From: a, To: b,
						BWBytesPerS: float64(l.BW),
						RTTSeconds:  l.RTT,
						Shared:      l.SharedCapacity,
					})
				}
			}
		}
	}
	if len(c.Layers) > 0 {
		s.Layers = make(map[string][]LayerSpec, len(c.Layers))
		names := make([]string, 0, len(c.Layers))
		for name := range c.Layers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			rows := make([]LayerSpec, 0, len(c.Layers[name]))
			for _, l := range c.Layers[name] {
				rows = append(rows, LayerSpec{Digest: l.Digest, SizeBytes: int64(l.Size)})
			}
			s.Layers[name] = rows
		}
	}
	return s, nil
}

// powerSpecOf encodes the two energy-package model kinds.
func powerSpecOf(pm energy.PowerModel) (PowerSpec, error) {
	switch m := pm.(type) {
	case energy.LinearModel:
		return PowerSpec{
			Kind:        "linear",
			StaticW:     float64(m.StaticW),
			PullW:       float64(m.PullW),
			ReceiveW:    float64(m.ReceiveW),
			ProcessingW: float64(m.ProcessingW),
		}, nil
	case energy.TableModel:
		ps := PowerSpec{
			Kind:        "table",
			StaticW:     float64(m.Fallback.StaticW),
			PullW:       float64(m.Fallback.PullW),
			ReceiveW:    float64(m.Fallback.ReceiveW),
			ProcessingW: float64(m.Fallback.ProcessingW),
		}
		if len(m.ProcessW) > 0 {
			ps.ProcessW = make(map[string]float64, len(m.ProcessW))
			for k, v := range m.ProcessW {
				ps.ProcessW[k] = float64(v)
			}
		}
		if len(m.TransferW) > 0 {
			ps.TransferW = make(map[string]float64, len(m.TransferW))
			for k, v := range m.TransferW {
				ps.TransferW[k] = float64(v)
			}
		}
		return ps, nil
	default:
		return PowerSpec{}, fmt.Errorf("power model %T has no wire representation", pm)
	}
}
