package wire_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"deep/internal/dag"
	"deep/internal/fleet"
	"deep/internal/sim"
	"deep/internal/wire"
	"deep/internal/workload"
)

// TestAppRoundTripDigest pins the decoupling contract: an app encoded to the
// wire and decoded back hashes to the same canonical fingerprint as the
// original, so wire-submitted requests share every digest-keyed cache with
// in-process traffic.
func TestAppRoundTripDigest(t *testing.T) {
	cluster := workload.Testbed()
	cases := []struct {
		name string
		app  *dag.App
	}{
		{"video", workload.VideoProcessing()},
		{"text", workload.TextProcessing()},
	}
	for _, tc := range cases {
		raw, err := json.Marshal(wire.AppSpecOf(tc.app))
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		decoded, err := wire.DecodeAppSpec(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		app, err := decoded.App()
		if err != nil {
			t.Fatalf("%s: materialize: %v", tc.name, err)
		}
		want := fleet.FingerprintOf(tc.app, cluster, "deep")
		if got := fleet.FingerprintOf(app, cluster, "deep"); got != want {
			t.Errorf("%s: wire round trip changed the canonical fingerprint", tc.name)
		}
	}
}

// TestClusterRoundTripDigest pins the same for clusters: the testbed and a
// scaled cluster survive the wire with their canonical digests intact.
func TestClusterRoundTripDigest(t *testing.T) {
	cases := []struct {
		name    string
		cluster *sim.Cluster
	}{
		{"testbed", workload.Testbed()},
		{"scaled4", workload.ScaledTestbed(4)},
	}
	for _, tc := range cases {
		spec, err := wire.ClusterSpecOf(tc.cluster)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		raw, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("%s: marshal: %v", tc.name, err)
		}
		decoded, err := wire.DecodeClusterSpec(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		back, err := decoded.Cluster()
		if err != nil {
			t.Fatalf("%s: materialize: %v", tc.name, err)
		}
		want := fleet.DigestCluster(tc.cluster)
		got := fleet.DigestCluster(back)
		if !bytes.Equal(want, got) {
			t.Errorf("%s: wire round trip changed the canonical cluster digest", tc.name)
		}
	}
}

// TestVersionGate pins the versioning rule: 0 (missing) and future versions
// are rejected, current is accepted.
func TestVersionGate(t *testing.T) {
	if _, err := wire.DecodeAppSpec([]byte(`{"name":"a","microservices":[{"name":"m","image_size_bytes":1}]}`)); err == nil || !strings.Contains(err.Error(), "missing version") {
		t.Errorf("missing app version accepted: %v", err)
	}
	if _, err := wire.DecodeAppSpec([]byte(`{"version":99,"name":"a"}`)); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("future app version accepted: %v", err)
	}
	if _, err := wire.DecodeClusterSpec([]byte(`{"version":99}`)); err == nil || !strings.Contains(err.Error(), "unsupported") {
		t.Errorf("future cluster version accepted: %v", err)
	}
	if _, err := wire.DecodeAppSpec([]byte(`{"version":1,"name":"a","microservices":[{"name":"m","image_size_bytes":1}]}`)); err != nil {
		t.Errorf("current app version rejected: %v", err)
	}
}

// TestUnknownFieldsRejected pins decode strictness, which is what makes the
// version gate trustworthy.
func TestUnknownFieldsRejected(t *testing.T) {
	if _, err := wire.DecodeAppSpec([]byte(`{"version":1,"name":"a","bogus":true}`)); err == nil {
		t.Error("unknown app field accepted")
	}
	if _, err := wire.DecodeClusterSpec([]byte(`{"version":1,"bogus":true}`)); err == nil {
		t.Error("unknown cluster field accepted")
	}
}

// TestStructuralErrorsSurface pins that DAG validation errors travel through
// the codec with the dag package's own messages.
func TestStructuralErrorsSurface(t *testing.T) {
	spec := &wire.AppSpec{
		Version: wire.AppSpecVersion,
		Name:    "cyclic",
		Microservices: []wire.MicroserviceSpec{
			{Name: "a", ImageSizeBytes: 1},
			{Name: "b", ImageSizeBytes: 1},
		},
		Dataflows: []wire.DataflowSpec{
			{From: "a", To: "b", SizeBytes: 1},
			{From: "b", To: "a", SizeBytes: 1},
		},
	}
	if _, err := spec.App(); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not surfaced: %v", err)
	}
	spec = &wire.AppSpec{
		Version:       wire.AppSpecVersion,
		Name:          "dup",
		Microservices: []wire.MicroserviceSpec{{Name: "a"}, {Name: "a"}},
	}
	if _, err := spec.App(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate not surfaced: %v", err)
	}
	if _, err := (&wire.AppSpec{Version: 1, Name: "x", Microservices: []wire.MicroserviceSpec{{Name: "m", Arches: []string{"riscv"}}}}).App(); err == nil {
		t.Error("unknown arch accepted")
	}
	if _, err := (&wire.ClusterSpec{Version: 1, Devices: []wire.DeviceSpec{{Name: "d", Arch: "amd64", Power: wire.PowerSpec{Kind: "quadratic"}}}}).Cluster(); err == nil {
		t.Error("unknown power kind accepted")
	}
}
