package device

import (
	"testing"

	"deep/internal/dag"
	"deep/internal/energy"
	"deep/internal/units"
)

func testDevice() *Device {
	return New("d0", dag.AMD64, 4, 1000, 8*units.GB, 32*units.GB, energy.LinearModel{StaticW: 2})
}

func TestCanRun(t *testing.T) {
	d := testDevice()
	ok := &dag.Microservice{Name: "m", ImageSize: units.GB, Req: dag.Requirements{Cores: 2, Memory: units.GB, Storage: units.GB}}
	if err := d.CanRun(ok); err != nil {
		t.Errorf("CanRun(ok): %v", err)
	}
	cases := []*dag.Microservice{
		{Name: "arch", Arches: []dag.Arch{dag.ARM64}},
		{Name: "cores", Req: dag.Requirements{Cores: 8}},
		{Name: "mem", Req: dag.Requirements{Memory: 16 * units.GB}},
		{Name: "store", ImageSize: 20 * units.GB, Req: dag.Requirements{Storage: 20 * units.GB}},
	}
	for _, m := range cases {
		if err := d.CanRun(m); err == nil {
			t.Errorf("CanRun(%s) should fail", m.Name)
		}
	}
}

func TestReserveRelease(t *testing.T) {
	d := testDevice()
	m := &dag.Microservice{Name: "m", ImageSize: 2 * units.GB, Req: dag.Requirements{Memory: 4 * units.GB, Storage: units.GB}}
	if err := d.Reserve(m); err != nil {
		t.Fatal(err)
	}
	if d.UsedMemory() != 4*units.GB {
		t.Errorf("used memory = %v", d.UsedMemory())
	}
	if d.UsedStorage() != 3*units.GB {
		t.Errorf("used storage = %v", d.UsedStorage())
	}
	// A second large reservation should fail on memory.
	m2 := &dag.Microservice{Name: "m2", Req: dag.Requirements{Memory: 6 * units.GB}}
	if err := d.Reserve(m2); err == nil {
		t.Error("over-reservation should fail")
	}
	d.Release(m)
	if d.UsedMemory() != 0 || d.UsedStorage() != 0 {
		t.Error("release did not restore capacity")
	}
	// Double release must not go negative.
	d.Release(m)
	if d.UsedMemory() != 0 {
		t.Error("double release went negative")
	}
}

func TestProcessingTime(t *testing.T) {
	d := testDevice() // 1000 MI/s
	if got := d.ProcessingTime(5000); got != 5 {
		t.Errorf("ProcessingTime = %v, want 5", got)
	}
}

func TestSpecConstructors(t *testing.T) {
	pm := energy.LinearModel{StaticW: 1}
	med := MediumIntelSpec(pm)
	if med.Arch != dag.AMD64 || med.Cores != 8 || med.Memory != 16*units.GB {
		t.Errorf("medium spec wrong: %v", med)
	}
	small := SmallARMSpec(pm)
	if small.Arch != dag.ARM64 || small.Cores != 4 || small.Storage != 32*units.GB {
		t.Errorf("small spec wrong: %v", small)
	}
	if small.Speed >= med.Speed {
		t.Error("small device should be slower than medium")
	}
}

func TestLayerCacheBasics(t *testing.T) {
	c := NewLayerCache(100)
	if c.Has("a") {
		t.Error("empty cache should miss")
	}
	if !c.Put("a", 40) {
		t.Fatal("put failed")
	}
	if !c.Has("a") {
		t.Error("should hit after put")
	}
	if c.Used() != 40 || c.Len() != 1 {
		t.Errorf("used=%v len=%v", c.Used(), c.Len())
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = %d/%d", h, m)
	}
	if r := c.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %v", r)
	}
}

func TestLayerCacheEviction(t *testing.T) {
	c := NewLayerCache(100)
	c.Put("a", 40)
	c.Put("b", 40)
	c.Has("a") // make a most-recent
	if !c.Put("c", 40) {
		t.Fatal("put c failed")
	}
	// b was LRU and must have been evicted.
	if c.Contains("b") {
		t.Error("b should be evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Error("a and c should remain")
	}
	if c.Used() > c.Capacity() {
		t.Errorf("used %v exceeds capacity %v", c.Used(), c.Capacity())
	}
}

func TestLayerCacheOversized(t *testing.T) {
	c := NewLayerCache(10)
	if c.Put("big", 11) {
		t.Error("oversized layer should not cache")
	}
	if c.Put("neg", -1) {
		t.Error("negative size should not cache")
	}
}

func TestLayerCachePinning(t *testing.T) {
	c := NewLayerCache(100)
	c.Put("a", 60)
	if !c.Pin("a") {
		t.Fatal("pin failed")
	}
	// a is pinned; inserting b (60) cannot evict it.
	if c.Put("b", 60) {
		t.Error("put should fail when only pinned entries could be evicted")
	}
	c.Unpin("a")
	if !c.Put("b", 60) {
		t.Error("put should succeed after unpin")
	}
	if c.Contains("a") {
		t.Error("a should be evicted after unpin")
	}
	if c.Pin("missing") {
		t.Error("pinning a missing digest should report false")
	}
	c.Unpin("missing") // must not panic
}

func TestLayerCacheRePutRefreshes(t *testing.T) {
	c := NewLayerCache(100)
	c.Put("a", 50)
	c.Put("b", 50)
	c.Put("a", 50) // refresh recency; no size change
	if c.Used() != 100 {
		t.Errorf("used = %v", c.Used())
	}
	c.Put("c", 50) // should evict b, not a
	if !c.Contains("a") || c.Contains("b") {
		t.Error("refresh did not update recency")
	}
}

func TestLayerCacheFlush(t *testing.T) {
	c := NewLayerCache(100)
	c.Put("a", 10)
	c.Pin("a")
	c.Flush()
	if c.Len() != 0 || c.Used() != 0 {
		t.Error("flush did not clear")
	}
}

func TestLayerCacheInvariantNeverOverCapacity(t *testing.T) {
	c := NewLayerCache(1000)
	for i := 0; i < 500; i++ {
		d := string(rune('a'+i%26)) + string(rune('0'+i%10))
		c.Put(d, units.Bytes(50+i%200))
		if c.Used() > c.Capacity() {
			t.Fatalf("iteration %d: used %v > capacity %v", i, c.Used(), c.Capacity())
		}
	}
}
