package device

import (
	"container/list"
	"sync"

	"deep/internal/units"
)

// LayerCache is an LRU cache of container image layers keyed by digest, with
// byte-budget eviction and pinning for layers belonging to running
// containers. A warm cache is what makes repeated deployments cheap — one of
// the effects the registry-caching literature in the paper's related work
// targets.
type LayerCache struct {
	mu       sync.Mutex
	capacity units.Bytes
	used     units.Bytes
	entries  map[string]*list.Element
	lru      *list.List // front = most recently used
	hits     int64
	misses   int64
}

type cacheEntry struct {
	digest string
	size   units.Bytes
	pins   int
}

// NewLayerCache returns a cache with the given byte capacity.
func NewLayerCache(capacity units.Bytes) *LayerCache {
	return &LayerCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Has reports whether the digest is cached, updating recency and hit/miss
// statistics.
func (c *LayerCache) Has(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return true
	}
	c.misses++
	return false
}

// Contains reports presence without touching recency or statistics.
func (c *LayerCache) Contains(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[digest]
	return ok
}

// Put inserts a layer, evicting least-recently-used unpinned layers as
// needed. Layers larger than the whole capacity are not cached; Put then
// returns false. Re-putting an existing digest refreshes recency.
func (c *LayerCache) Put(digest string, size units.Bytes) bool {
	if size < 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		c.lru.MoveToFront(el)
		return true
	}
	if size > c.capacity {
		return false
	}
	for c.used+size > c.capacity {
		if !c.evictOne() {
			return false // everything left is pinned
		}
	}
	el := c.lru.PushFront(&cacheEntry{digest: digest, size: size})
	c.entries[digest] = el
	c.used += size
	return true
}

// evictOne removes the least recently used unpinned entry; the caller holds
// the lock.
func (c *LayerCache) evictOne() bool {
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.pins > 0 {
			continue
		}
		c.lru.Remove(el)
		delete(c.entries, e.digest)
		c.used -= e.size
		return true
	}
	return false
}

// Pin marks a cached layer as in use so it cannot be evicted. It reports
// whether the digest was present.
func (c *LayerCache) Pin(digest string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[digest]
	if !ok {
		return false
	}
	el.Value.(*cacheEntry).pins++
	return true
}

// Unpin releases one pin on the layer.
func (c *LayerCache) Unpin(digest string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[digest]; ok {
		e := el.Value.(*cacheEntry)
		if e.pins > 0 {
			e.pins--
		}
	}
}

// Used returns the bytes currently cached.
func (c *LayerCache) Used() units.Bytes {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Capacity returns the configured byte budget.
func (c *LayerCache) Capacity() units.Bytes { return c.capacity }

// Len returns the number of cached layers.
func (c *LayerCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns cumulative (hits, misses) from Has lookups.
func (c *LayerCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *LayerCache) HitRatio() float64 {
	h, m := c.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Flush empties the cache, including pinned entries.
func (c *LayerCache) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.used = 0
}
