// Package device models the heterogeneous capacity-constrained edge devices
// of the paper's Section III-B: cores, processing speed in MI/s, memory,
// storage, an architecture, a power model, and a local image-layer cache.
package device

import (
	"fmt"
	"sync"

	"deep/internal/dag"
	"deep/internal/energy"
	"deep/internal/units"
)

// Device is one physical edge device d_j.
type Device struct {
	Name    string
	Arch    dag.Arch
	Cores   int
	Speed   units.MIPS  // CPU_j: effective millions of instructions per second
	Memory  units.Bytes // MEM_j
	Storage units.Bytes // STOR_j
	Power   energy.PowerModel

	mu        sync.Mutex
	usedMem   units.Bytes
	usedStore units.Bytes
	cache     *LayerCache
}

// New constructs a device with a layer cache sized to its storage.
func New(name string, arch dag.Arch, cores int, speed units.MIPS, mem, store units.Bytes, pm energy.PowerModel) *Device {
	return &Device{
		Name: name, Arch: arch, Cores: cores, Speed: speed,
		Memory: mem, Storage: store, Power: pm,
		cache: NewLayerCache(store),
	}
}

// Cache returns the device's image layer cache.
func (d *Device) Cache() *LayerCache { return d.cache }

// CanRun reports whether the device satisfies the microservice's
// architecture and static resource requirements.
func (d *Device) CanRun(m *dag.Microservice) error {
	if !m.SupportsArch(d.Arch) {
		return fmt.Errorf("device %s: %s has no %s image", d.Name, m.Name, d.Arch)
	}
	if m.Req.Cores > d.Cores {
		return fmt.Errorf("device %s: %s needs %d cores, have %d", d.Name, m.Name, m.Req.Cores, d.Cores)
	}
	if m.Req.Memory > d.Memory {
		return fmt.Errorf("device %s: %s needs %s memory, have %s", d.Name, m.Name, m.Req.Memory, d.Memory)
	}
	need := m.Req.Storage + m.ImageSize
	if need > d.Storage {
		return fmt.Errorf("device %s: %s needs %s storage, have %s", d.Name, m.Name, need, d.Storage)
	}
	return nil
}

// Reserve admits a microservice's memory and storage, or errors when the
// remaining capacity is insufficient.
func (d *Device) Reserve(m *dag.Microservice) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.usedMem+m.Req.Memory > d.Memory {
		return fmt.Errorf("device %s: out of memory for %s (%s used of %s)", d.Name, m.Name, d.usedMem, d.Memory)
	}
	store := m.Req.Storage + m.ImageSize
	if d.usedStore+store > d.Storage {
		return fmt.Errorf("device %s: out of storage for %s (%s used of %s)", d.Name, m.Name, d.usedStore, d.Storage)
	}
	d.usedMem += m.Req.Memory
	d.usedStore += store
	return nil
}

// Release returns a microservice's reservation.
func (d *Device) Release(m *dag.Microservice) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.usedMem -= m.Req.Memory
	d.usedStore -= m.Req.Storage + m.ImageSize
	if d.usedMem < 0 {
		d.usedMem = 0
	}
	if d.usedStore < 0 {
		d.usedStore = 0
	}
}

// UsedMemory returns the memory currently reserved.
func (d *Device) UsedMemory() units.Bytes {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedMem
}

// UsedStorage returns the storage currently reserved.
func (d *Device) UsedStorage() units.Bytes {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.usedStore
}

// ProcessingTime returns T_p for the given load on this device.
func (d *Device) ProcessingTime(load units.MI) float64 {
	return d.Speed.Seconds(load)
}

// WithName renames the device in place and returns it, for building
// clusters that replicate a spec under distinct names.
func (d *Device) WithName(name string) *Device {
	d.Name = name
	return d
}

// String renders the device spec.
func (d *Device) String() string {
	return fmt.Sprintf("%s(%s, %d cores, %.0f MI/s, %s mem, %s storage)",
		d.Name, d.Arch, d.Cores, float64(d.Speed), d.Memory, d.Storage)
}

// Calibrated testbed devices. Speeds and power are calibrated so the
// simulator lands inside the paper's Table II ranges (see
// internal/workload/calibration.go for the derivation).

// MediumIntelSpec describes the paper's medium device: an 8-core Intel
// i7-7700 with 16 GB memory and 64 GB storage.
func MediumIntelSpec(pm energy.PowerModel) *Device {
	return New("medium", dag.AMD64, 8, 30000, 16*units.GB, 64*units.GB, pm)
}

// SmallARMSpec describes the paper's small device: a 4-core Raspberry Pi 4
// with 8 GB memory and 32 GB storage.
func SmallARMSpec(pm energy.PowerModel) *Device {
	return New("small", dag.ARM64, 4, 10000, 8*units.GB, 32*units.GB, pm)
}
