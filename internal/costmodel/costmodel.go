// Package costmodel is the scheduling core's compiled cost model: it
// compiles an (application, cluster) pair once into dense integer-indexed
// arrays — microservices, devices, registries, and feasible options as ints;
// per-(registry, device) deployment links, per-device-pair transfer links,
// and per-(microservice, device) processing times and power draws all
// precomputed — so the estimator queries that dominate the Nash scheduler's
// best-response sweeps (Energy, CompletionTime) run with zero allocations
// and no string comparisons in steady state.
//
// The model prices assignments with exactly the same floating-point
// operations, in the same order, as the string-keyed estimator it replaced,
// so every scheduler built on it emits byte-identical placements (the
// equivalence corpus in internal/sched pins this). Compiling assumes the
// cluster's power models are pure functions of (state, microservice); all
// shipped models are.
//
// A Model is immutable after Compile and safe for concurrent readers; the
// mutable scratch lives in State (one per scheduling pass, arena-style, not
// goroutine-safe). Fleet workers cache one Model per request fingerprint and
// reuse it across requests.
//
// The cluster-side tables (device/registry names, dense link tables,
// shared-uplink flags) live in a topo.ClusterTable; CompileOn layers the
// application-side pass over a caller-supplied table so N applications on
// one cluster — and the simulator's CompilePlanOn next door — share one
// topology scan, and Compile builds a private table on the fly.
package costmodel

import (
	"math"
	"sort"

	"deep/internal/appgraph"
	"deep/internal/dag"
	"deep/internal/energy"
	"deep/internal/game"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/units"
)

// Option is one feasible (device, registry) assignment in compiled form.
// The fields index the model's device and registry tables.
type Option struct {
	Device   int32
	Registry int32
}

// Model is the compiled cost model for one (application, cluster) pair.
type Model struct {
	App     *dag.App
	Cluster *sim.Cluster

	tab *topo.ClusterTable

	// Name tables; ids are positions in these slices, which are sorted and
	// compacted so ascending id order is ascending name order. The device
	// and registry tables are the cluster table's, referenced here for the
	// estimator's hot path.
	msNames  []string
	devNames []string
	regNames []string
	msIndex  map[string]int32
	devIndex map[string]int32
	regIndex map[string]int32

	regShared []bool // per registry (the cluster table's)

	// Cluster-side dense link tables, shared with the topo.ClusterTable:
	// regLink[r*numDev+d] is the route from registry r's node to device d;
	// devLink[f*numDev+t] from device f to device t (loopback when f == t,
	// mirroring netsim's implicit infinite-bandwidth loopback); srcLink[d]
	// from the external-input source node (unused without a source node).
	regLink   []topo.Link
	devLink   []topo.Link
	srcLink   []topo.Link
	hasSource bool

	imageSize []units.Bytes     // per microservice (the app table's)
	extInput  []units.Bytes     // per microservice (the app table's)
	inputs    [][]appgraph.Edge // per microservice, in dataflow order (the app table's)

	// Per-(microservice, device) tables, indexed ms*numDev+dev.
	tp    []float64
	pullW []units.Watts
	recvW []units.Watts
	procW []units.Watts

	// opts holds each microservice's feasible options in canonical order
	// (device name, then registry name) — enumerated once at compile, so
	// Options never re-sorts. assigns is the same list in string form.
	opts    [][]Option
	assigns [][]sim.Assignment

	// soloCells[ms][k] is the flattened (device axis × registry axis) cell
	// of opts[ms][k] in the solo cooperation game's matrix — precomputed so
	// a whole EnergyRow scatters into the payoff matrix with no searches.
	soloCells [][]int32

	// Per-microservice solo-game axes: the distinct feasible devices and the
	// distinct reachable registries among opts, ascending (= name order).
	soloDevs [][]int32
	soloRegs [][]int32

	// Barrier stages and topological order, memoized at compile time
	// (they require DAG validation, whose error is stored alongside).
	stages    [][]int32
	stagesErr error
	topo      []int32
	topoErr   error
}

// Compile builds the indexed model, compiling a private cluster table on
// the fly. It never fails: structural problems in the DAG (cycles,
// disconnection) surface from Stages and Topo, matching where the
// string-keyed schedulers validated. Callers compiling several applications
// against one cluster should sim.CompileClusterTable once and use CompileOn.
func Compile(app *dag.App, cluster *sim.Cluster) *Model {
	return CompileOn(app, cluster, sim.CompileClusterTable(cluster))
}

// CompileOn builds the model's application-side pass over a shared cluster
// table, compiling a private app table on the fly. tab must describe
// cluster's shape (same devices, registries, topology routes — the fleet
// guarantees this by keying tables on the cluster digest). Callers that
// hold both substrates should use CompileOnTables, and callers that also
// need the simulator plan should use CompileShapeOn, which emits both in a
// single fused walk.
func CompileOn(app *dag.App, cluster *sim.Cluster, tab *topo.ClusterTable) *Model {
	return CompileOnTables(appgraph.Compile(app), cluster, tab)
}

// CompileOnTables is the model's real compile: a thin option-enumeration
// pass over the app-side substrate (at) and the cluster-side substrate
// (tab). Everything app-only — name table, edge rows, image sizes, stages,
// topological order, validation errors — is referenced from the app table;
// everything cluster-only from the cluster table; only the cross product
// (feasible options, per-(microservice, device) pricing) is computed here.
func CompileOnTables(at *appgraph.AppTable, cluster *sim.Cluster, tab *topo.ClusterTable) *Model {
	return compileModel(at, cluster, tab, nil)
}

// CompileShapeOn fuses the cost-model and simulator compiles into a single
// walk over (at, tab): the simulator plan prices every (microservice,
// device) pair once, and the model layers its option tables over those same
// rows instead of re-querying the pure per-pair functions (ProcessingTime,
// the three phase power draws, feasibility). One fused call replaces the
// back-to-back CompileOn + CompilePlanOn pair on the fleet's cold path and
// is pinned bit-identical to it (the fused equivalence corpus in
// internal/sched).
func CompileShapeOn(at *appgraph.AppTable, cluster *sim.Cluster, tab *topo.ClusterTable) (*Model, *sim.Plan) {
	plan := sim.CompilePlanOnTables(at, cluster, tab)
	return compileModel(at, cluster, tab, plan), plan
}

// compileModel builds the model over the two substrates. When plan is
// non-nil (the fused path) the per-(microservice, device) rows are shared
// with the plan — already priced over the same tables — and its feasibility
// row drives option enumeration; otherwise the rows are computed here.
// Either way the populated values are identical: the pricing functions are
// pure per (device shape, microservice), and the only divergence — the
// plan prices infeasible pairs while the standalone path leaves them zero —
// is unobservable, because options only ever name feasible devices.
func compileModel(at *appgraph.AppTable, cluster *sim.Cluster, tab *topo.ClusterTable, plan *sim.Plan) *Model {
	m := &Model{App: at.App(), Cluster: cluster, tab: tab}

	m.msNames = at.MSNames()
	m.msIndex = at.MSIndex()
	m.devNames = tab.DevNames()
	m.devIndex = tab.DevIndex()
	m.regNames = tab.RegNames()
	m.regIndex = tab.RegIndex()

	nm, nd, nr := len(m.msNames), len(m.devNames), len(m.regNames)

	devices := tab.Devices()

	m.regShared = tab.RegShared()
	m.regLink = tab.RegLinks()
	m.devLink = tab.DevLinks()
	m.srcLink = tab.SrcLinks()
	m.hasSource = tab.HasSource()

	m.imageSize = at.ImageSizes()
	m.extInput = at.ExtInputs()
	m.inputs = at.Inputs()

	var feasible []bool
	if plan != nil {
		feasible, m.tp, m.pullW, m.recvW, m.procW = plan.MSRows()
	} else {
		m.tp = make([]float64, nm*nd)
		m.pullW = make([]units.Watts, nm*nd)
		m.recvW = make([]units.Watts, nm*nd)
		m.procW = make([]units.Watts, nm*nd)
	}
	m.opts = make([][]Option, nm)
	m.assigns = make([][]sim.Assignment, nm)
	m.soloCells = make([][]int32, nm)
	m.soloDevs = make([][]int32, nm)
	m.soloRegs = make([][]int32, nm)

	msPtr := at.Microservices()
	for mi := 0; mi < nm; mi++ {
		ms := msPtr[mi]
		var opts []Option
		var regSeen int64 // bitset over registries reachable from a feasible device
		for d := 0; d < nd; d++ {
			base := mi*nd + d
			if plan != nil {
				if !feasible[base] {
					continue
				}
			} else if !tab.Feasible(int32(d), ms) {
				continue
			}
			first := true
			for r := 0; r < nr; r++ {
				if !m.regLink[r*nd+d].OK {
					continue
				}
				opts = append(opts, Option{Device: int32(d), Registry: int32(r)})
				if first {
					m.soloDevs[mi] = append(m.soloDevs[mi], int32(d))
					first = false
				}
				if nr <= 64 {
					regSeen |= 1 << r
				} else if !contains(m.soloRegs[mi], int32(r)) {
					m.soloRegs[mi] = append(m.soloRegs[mi], int32(r))
				}
			}
			if plan == nil {
				di := devices[d]
				m.tp[base] = di.ProcessingTime(ms.Req.CPU)
				m.pullW[base] = di.Power.Power(energy.Pulling, ms.Name)
				m.recvW[base] = di.Power.Power(energy.Receiving, ms.Name)
				m.procW[base] = di.Power.Power(energy.Processing, ms.Name)
			}
		}
		if nr <= 64 {
			for r := 0; r < nr; r++ {
				if regSeen&(1<<r) != 0 {
					m.soloRegs[mi] = append(m.soloRegs[mi], int32(r))
				}
			}
		} else {
			sort.Slice(m.soloRegs[mi], func(a, b int) bool { return m.soloRegs[mi][a] < m.soloRegs[mi][b] })
		}
		m.opts[mi] = opts
		assigns := make([]sim.Assignment, len(opts))
		for k, o := range opts {
			assigns[k] = sim.Assignment{Device: m.devNames[o.Device], Registry: m.regNames[o.Registry]}
		}
		m.assigns[mi] = assigns

		// Options iterate devices, then registries, both ascending — the
		// same order as the solo axes — so the device axis index advances
		// whenever the device changes and the registry axis is a short scan.
		cells := make([]int32, len(opts))
		axisRegs := m.soloRegs[mi]
		nRegAxis := int32(len(axisRegs))
		di, lastDev := int32(-1), int32(-1)
		for k, o := range opts {
			if o.Device != lastDev {
				di++
				lastDev = o.Device
			}
			var j int32
			for x, r := range axisRegs {
				if r == o.Registry {
					j = int32(x)
					break
				}
			}
			cells[k] = di*nRegAxis + j
		}
		m.soloCells[mi] = cells
	}

	// Structure was captured when the app table compiled; map it the way
	// the schedulers expect — a failed validation surfaces from both Stages
	// and Topo, the individual walk errors otherwise — so the model stays
	// genuinely immutable and concurrent ScheduleModel calls never write.
	if err := at.ValidateErr(); err != nil {
		m.stagesErr, m.topoErr = err, err
	} else {
		m.stages, m.stagesErr = at.Stages()
		m.topo, m.topoErr = at.Topo()
	}
	return m
}

func contains(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// NumMicroservices returns the number of compiled microservices.
func (m *Model) NumMicroservices() int { return len(m.msNames) }

// NumDevices returns the number of compiled devices.
func (m *Model) NumDevices() int { return len(m.devNames) }

// NumRegistries returns the number of compiled registries.
func (m *Model) NumRegistries() int { return len(m.regNames) }

// MSName returns the microservice name for an id.
func (m *Model) MSName(ms int32) string { return m.msNames[ms] }

// MSID returns the id of a microservice name.
func (m *Model) MSID(name string) (int32, bool) {
	id, ok := m.msIndex[name]
	return id, ok
}

// DeviceID returns the id of a device name.
func (m *Model) DeviceID(name string) (int32, bool) {
	id, ok := m.devIndex[name]
	return id, ok
}

// RegistryID returns the id of a registry name.
func (m *Model) RegistryID(name string) (int32, bool) {
	id, ok := m.regIndex[name]
	return id, ok
}

// Options returns the microservice's feasible options in canonical order
// (device name, then registry name). The slice is shared — callers must not
// mutate it.
func (m *Model) Options(ms int32) []Option { return m.opts[ms] }

// Assignments returns Options in string form, same order, also shared.
func (m *Model) Assignments(ms int32) []sim.Assignment { return m.assigns[ms] }

// Assignment converts a compiled option back to its string form.
func (m *Model) Assignment(o Option) sim.Assignment {
	return sim.Assignment{Device: m.devNames[o.Device], Registry: m.regNames[o.Registry]}
}

// Intern converts a string assignment to compiled form.
func (m *Model) Intern(a sim.Assignment) (Option, bool) {
	d, okD := m.devIndex[a.Device]
	r, okR := m.regIndex[a.Registry]
	return Option{Device: d, Registry: r}, okD && okR
}

// SoloAxes returns the distinct feasible devices and distinct reachable
// registries among the microservice's options, ascending by name — the row
// and column strategies of the solo cooperation game. Shared slices.
func (m *Model) SoloAxes(ms int32) (devices, registries []int32) {
	return m.soloDevs[ms], m.soloRegs[ms]
}

// SoloCells maps each of the microservice's options to its flattened
// (device axis)×(registry axis) cell in the solo game matrix — parallel to
// Options, precomputed at compile time. Shared slice.
func (m *Model) SoloCells(ms int32) []int32 { return m.soloCells[ms] }

// LinkOK reports whether the registry's node routes to the device.
func (m *Model) LinkOK(reg, dev int32) bool {
	return m.regLink[int(reg)*len(m.devNames)+int(dev)].OK
}

// Table returns the cluster-side table the model was compiled on.
func (m *Model) Table() *topo.ClusterTable { return m.tab }

// Stages returns the barrier stages as microservice ids, each stage
// ascending (= lexicographic name order, the order the schedulers visit).
// DAG validation errors, captured at compile time, surface here.
func (m *Model) Stages() ([][]int32, error) { return m.stages, m.stagesErr }

// Topo returns the deterministic topological order as microservice ids;
// DAG validation errors, captured at compile time, surface here.
func (m *Model) Topo() ([]int32, error) { return m.topo, m.topoErr }

// MaxStageWidth returns the widest barrier stage (0 when stages are
// unavailable), for sizing per-stage scratch once.
func (m *Model) MaxStageWidth() int {
	stages, err := m.Stages()
	if err != nil {
		return 0
	}
	w := 0
	for _, s := range stages {
		if len(s) > w {
			w = len(s)
		}
	}
	return w
}

// GameArena is the bump-allocated scratch the game layer draws payoff
// matrices, price rows, feasibility masks, and support/mixed-strategy
// buffers from. It is owned by a State (one per scheduling pass) and reset
// per stage; see game.Arena for the grant/Reset contract.
type GameArena = game.Arena

// State is the arena-style scratch for one scheduling pass: the devices of
// microservices committed in earlier stages, an epoch-marked device set for
// counting shared-registry contention, and a lazily created GameArena for
// the game layer's matrices and buffers. Energy, CompletionTime, and
// EnergyRow do not allocate. Not safe for concurrent use; allocate one per
// pass (or Reset).
type State struct {
	m      *Model
	placed []int32 // device id per microservice, -1 = unplaced
	seen   []uint64
	epoch  uint64
	arena  *GameArena
}

// Arena returns the pass's game scratch arena, creating it on first use.
// Grants are recycled by arena Reset (per stage), not by State.Reset.
func (s *State) Arena() *GameArena {
	if s.arena == nil {
		s.arena = game.NewArena()
	}
	return s.arena
}

// NewState returns scratch sized for the model, with nothing placed.
func (m *Model) NewState() *State {
	s := &State{
		m:      m,
		placed: make([]int32, len(m.msNames)),
		seen:   make([]uint64, len(m.devNames)),
	}
	for i := range s.placed {
		s.placed[i] = -1
	}
	return s
}

// Reset forgets all commitments, recycling the scratch for another pass.
func (s *State) Reset() {
	for i := range s.placed {
		s.placed[i] = -1
	}
}

// Commit fixes a microservice's assignment for later stages.
func (s *State) Commit(ms int32, o Option) { s.placed[ms] = o.Device }

// phases computes the deployment, transfer, and processing times for ms
// under option o. coMS/coOpt list the same-stage co-assignments (parallel
// slices; an entry for ms itself is ignored), used for shared-registry
// contention: pulls from a shared registry to n distinct devices divide its
// uplink capacity. The arithmetic mirrors the string-keyed estimator
// operation for operation.
func (s *State) phases(ms int32, o Option, coMS []int32, coOpt []Option) (td, tc, tp float64) {
	td = s.deployTime(ms, o, coMS, coOpt)
	tc = s.transferTime(ms, o.Device)
	tp = s.m.tp[int(ms)*len(s.m.devNames)+int(o.Device)]
	return td, tc, tp
}

// deployTime computes Td: the registry link's RTT plus the image pull at
// the link bandwidth, divided among the distinct same-stage devices pulling
// from the same shared registry. Zero when the registry does not route to
// the device.
func (s *State) deployTime(ms int32, o Option, coMS []int32, coOpt []Option) float64 {
	m := s.m
	l := m.regLink[int(o.Registry)*len(m.devNames)+int(o.Device)]
	if !l.OK {
		return 0
	}
	bw := l.BW
	if m.regShared[o.Registry] {
		n := 1
		s.epoch++
		s.seen[o.Device] = s.epoch
		for k := range coMS {
			if coMS[k] == ms {
				continue
			}
			co := coOpt[k]
			if co.Registry != o.Registry {
				continue
			}
			if s.seen[co.Device] != s.epoch {
				s.seen[co.Device] = s.epoch
				n++
			}
		}
		if n > 1 {
			bw = l.BW / units.Bandwidth(n)
		}
	}
	return l.RTT + bw.Seconds(m.imageSize[ms])
}

// transferTime computes Tc onto the device: every incoming dataflow from
// its upstream's committed device (co-location when unplaced) plus the
// external input from the source node, infinite when a route is missing.
// It depends only on (ms, device) — not the registry — which is what lets
// EnergyRow hoist it out of the per-option loop.
func (s *State) transferTime(ms int32, dev int32) float64 {
	m := s.m
	nd := len(m.devNames)
	tc := 0.0
	for _, in := range m.inputs[ms] {
		from := dev // unplaced upstream defaults to co-location
		if pd := s.placed[in.MS]; pd >= 0 {
			from = pd
		}
		dl := m.devLink[int(from)*nd+int(dev)]
		if dl.OK {
			tc += dl.RTT + dl.BW.Seconds(in.Size)
		} else {
			tc += math.Inf(1)
		}
	}
	if m.extInput[ms] > 0 && m.hasSource {
		sl := m.srcLink[dev]
		if sl.OK {
			tc += sl.RTT + sl.BW.Seconds(m.extInput[ms])
		} else {
			tc += math.Inf(1)
		}
	}
	return tc
}

// Energy estimates EC(m_i, r_g, d_j): the device's total draw across the
// deployment, transfer, and processing phases, in joules.
func (s *State) Energy(ms int32, o Option, coMS []int32, coOpt []Option) float64 {
	td, tc, tp := s.phases(ms, o, coMS, coOpt)
	base := int(ms)*len(s.m.devNames) + int(o.Device)
	return float64(s.m.pullW[base].Over(td) + s.m.recvW[base].Over(tc) + s.m.procW[base].Over(tp))
}

// CompletionTime estimates CT(m_i, r_g, d_j) = Td + Tc + Tp in seconds.
func (s *State) CompletionTime(ms int32, o Option, coMS []int32, coOpt []Option) float64 {
	td, tc, tp := s.phases(ms, o, coMS, coOpt)
	return td + tc + tp
}

// EnergyRow batch-prices a whole option row: dst[k] receives exactly
// Energy(ms, opts[k], coMS, coOpt) for every k, in one call with one
// bounds-checked inner loop and no per-option dispatch. Because options are
// canonically ordered (device, then registry), the transfer time, processing
// time, and power draws — all functions of the device alone — are computed
// once per device run instead of once per option; only the deployment phase
// (registry link and shared-registry contention) is per-option. A
// co-assignment entry for ms itself is ignored, so the row may be priced
// under any placeholder assignment for ms in coOpt. dst must have length
// len(opts). Allocation-free.
func (s *State) EnergyRow(ms int32, opts []Option, coMS []int32, coOpt []Option, dst []float64) {
	m := s.m
	nd := len(m.devNames)
	lastDev := int32(-1)
	var tc, tp float64
	var pullW, recvW, procW units.Watts
	for k, o := range opts {
		if o.Device != lastDev {
			lastDev = o.Device
			tc = s.transferTime(ms, o.Device)
			base := int(ms)*nd + int(o.Device)
			tp = m.tp[base]
			pullW, recvW, procW = m.pullW[base], m.recvW[base], m.procW[base]
		}
		td := s.deployTime(ms, o, coMS, coOpt)
		dst[k] = float64(pullW.Over(td) + recvW.Over(tc) + procW.Over(tp))
	}
}
