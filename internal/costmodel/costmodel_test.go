package costmodel

import (
	"testing"

	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/sim"
	"deep/internal/units"
)

const (
	sharedBW  = 100 * units.MBps
	sharedRTT = 0.5
	hubBW     = 50 * units.MBps
	hubRTT    = 1.0
	interBW   = 200 * units.MBps
)

// contentionFixture builds a three-device cluster with one shared-capacity
// registry and one unshared registry, plus a three-microservice stage.
func contentionFixture(t *testing.T) (*dag.App, *sim.Cluster) {
	t.Helper()
	pm := energy.LinearModel{StaticW: 2, PullW: 3, ReceiveW: 4, ProcessingW: 10}
	topo := netsim.NewTopology()
	for _, n := range []string{"regnode", "hubnode", "src", "d1", "d2", "d3"} {
		topo.AddNode(n)
	}
	devs := []string{"d1", "d2", "d3"}
	for _, d := range devs {
		mustLink(t, topo, netsim.Link{From: "regnode", To: d, BW: sharedBW, RTT: sharedRTT, SharedCapacity: true})
		mustLink(t, topo, netsim.Link{From: "hubnode", To: d, BW: hubBW, RTT: hubRTT})
		mustLink(t, topo, netsim.Link{From: "src", To: d, BW: interBW})
	}
	for i := 0; i < len(devs); i++ {
		for j := i + 1; j < len(devs); j++ {
			if err := topo.AddDuplex(devs[i], devs[j], interBW); err != nil {
				t.Fatal(err)
			}
		}
	}
	cluster := &sim.Cluster{
		Devices: []*device.Device{
			device.New("d1", dag.AMD64, 8, 10000, 8*units.GB, 64*units.GB, pm),
			device.New("d2", dag.AMD64, 8, 10000, 8*units.GB, 64*units.GB, pm),
			device.New("d3", dag.AMD64, 8, 10000, 8*units.GB, 64*units.GB, pm),
		},
		Registries: []sim.RegistryInfo{
			{Name: "hub", Node: "hubnode"},
			{Name: "shared", Node: "regnode", Shared: true},
		},
		Topology:   topo,
		SourceNode: "src",
	}

	app := dag.NewApp("contention")
	for _, name := range []string{"a", "b", "c"} {
		if err := app.AddMicroservice(&dag.Microservice{
			Name:      name,
			ImageSize: units.GB,
			Req:       dag.Requirements{Cores: 1, CPU: 50_000, Memory: units.GB},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return app, cluster
}

func mustLink(t *testing.T, topo *netsim.Topology, l netsim.Link) {
	t.Helper()
	if err := topo.AddLink(l); err != nil {
		t.Fatal(err)
	}
}

func ids(t *testing.T, m *Model, names ...string) []int32 {
	t.Helper()
	out := make([]int32, len(names))
	for i, n := range names {
		id, ok := m.MSID(n)
		if !ok {
			t.Fatalf("unknown microservice %q", n)
		}
		out[i] = id
	}
	return out
}

func opt(t *testing.T, m *Model, dev, reg string) Option {
	t.Helper()
	o, ok := m.Intern(sim.Assignment{Device: dev, Registry: reg})
	if !ok {
		t.Fatalf("cannot intern %s/%s", dev, reg)
	}
	return o
}

// completion with an empty transfer phase isolates Td: CT = Td + Tp here
// because the fixture microservices have no dataflows or external input.
func deployTime(t *testing.T, st *State, ms int32, o Option, coMS []int32, coOpt []Option) float64 {
	t.Helper()
	tp := 50_000.0 / 10_000.0 // CPU / speed
	return st.CompletionTime(ms, o, coMS, coOpt) - tp
}

// TestSharedContentionSplitsBandwidth: pulls from a shared registry to n
// distinct devices divide its uplink capacity n ways — Td grows from
// RTT + size/BW to RTT + size/(BW/n).
func TestSharedContentionSplitsBandwidth(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b", "c")
	a := opt(t, m, "d1", "shared")

	size := units.GB
	alone := sharedRTT + sharedBW.Seconds(size)
	if got := deployTime(t, st, msIDs[0], a, nil, nil); !approxEqual(got, alone) {
		t.Fatalf("self-only Td = %v, want %v", got, alone)
	}

	// One other distinct device pulling the same registry: capacity halves.
	co2 := []Option{a, opt(t, m, "d2", "shared")}
	two := sharedRTT + (sharedBW / 2).Seconds(size)
	if got := deployTime(t, st, msIDs[0], a, msIDs[:2], co2); !approxEqual(got, two) {
		t.Fatalf("two-device Td = %v, want %v", got, two)
	}

	// Three distinct devices: a third of the capacity each.
	co3 := []Option{a, opt(t, m, "d2", "shared"), opt(t, m, "d3", "shared")}
	three := sharedRTT + (sharedBW / 3).Seconds(size)
	if got := deployTime(t, st, msIDs[0], a, msIDs, co3); !approxEqual(got, three) {
		t.Fatalf("three-device Td = %v, want %v", got, three)
	}
}

// TestSharedContentionSameDevice: co-pulls on the same device serialize
// rather than split the uplink, and a co-assignment entry for the deciding
// microservice itself is ignored.
func TestSharedContentionSameDevice(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b", "c")
	a := opt(t, m, "d1", "shared")
	alone := sharedRTT + sharedBW.Seconds(units.GB)

	// b pulls the same registry onto the same device: no split.
	coSame := []Option{a, opt(t, m, "d1", "shared")}
	if got := deployTime(t, st, msIDs[0], a, msIDs[:2], coSame); !approxEqual(got, alone) {
		t.Fatalf("same-device Td = %v, want %v (no split)", got, alone)
	}

	// The deciding microservice's own entry never counts, whatever it says.
	coSelf := []Option{opt(t, m, "d3", "shared")}
	if got := deployTime(t, st, msIDs[0], a, msIDs[:1], coSelf); !approxEqual(got, alone) {
		t.Fatalf("self-entry Td = %v, want %v (own entry skipped)", got, alone)
	}

	// Duplicate devices among the co-pullers count once: b on d2, c on d2.
	coDup := []Option{a, opt(t, m, "d2", "shared"), opt(t, m, "d2", "shared")}
	two := sharedRTT + (sharedBW / 2).Seconds(units.GB)
	if got := deployTime(t, st, msIDs[0], a, msIDs, coDup); !approxEqual(got, two) {
		t.Fatalf("duplicate-device Td = %v, want %v", got, two)
	}
}

// TestContentionScopedToRegistry: pulls from other registries, and pulls
// from an unshared registry, never split capacity.
func TestContentionScopedToRegistry(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b")

	// b pulls from hub while a pulls from shared: no contention for a.
	a := opt(t, m, "d1", "shared")
	co := []Option{a, opt(t, m, "d2", "hub")}
	alone := sharedRTT + sharedBW.Seconds(units.GB)
	if got := deployTime(t, st, msIDs[0], a, msIDs, co); !approxEqual(got, alone) {
		t.Fatalf("cross-registry Td = %v, want %v", got, alone)
	}

	// The hub is not SharedCapacity: concurrent pulls keep full bandwidth.
	h := opt(t, m, "d1", "hub")
	coHub := []Option{h, opt(t, m, "d2", "hub")}
	hubAlone := hubRTT + hubBW.Seconds(units.GB)
	if got := deployTime(t, st, msIDs[0], h, msIDs, coHub); !approxEqual(got, hubAlone) {
		t.Fatalf("unshared Td = %v, want %v", got, hubAlone)
	}
}

// TestEnergyPricesPhases: Energy = pullW·Td + recvW·Tc + procW·Tp with the
// fixture's linear power model.
func TestEnergyPricesPhases(t *testing.T) {
	app, cluster := contentionFixture(t)
	if err := app.AddDataflow("a", "b", 500*units.MB); err != nil {
		t.Fatal(err)
	}
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b")
	st.Commit(msIDs[0], opt(t, m, "d2", "hub"))

	b := opt(t, m, "d1", "shared")
	td := sharedRTT + sharedBW.Seconds(units.GB)
	tc := interBW.Seconds(500 * units.MB) // d2 -> d1 dataflow
	tp := 50_000.0 / 10_000.0
	want := (2+3)*td + (2+4)*tc + (2+10)*tp
	if got := st.Energy(msIDs[1], b, nil, nil); !approxEqual(got, want) {
		t.Fatalf("energy = %v, want %v", got, want)
	}
	if got := st.CompletionTime(msIDs[1], b, nil, nil); !approxEqual(got, td+tc+tp) {
		t.Fatalf("CT = %v, want %v", got, td+tc+tp)
	}
}

// TestSteadyStateAllocationFree: Energy and CompletionTime on a compiled
// model allocate nothing, even under stage co-assignments.
func TestSteadyStateAllocationFree(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b", "c")
	co := []Option{
		opt(t, m, "d1", "shared"),
		opt(t, m, "d2", "shared"),
		opt(t, m, "d3", "shared"),
	}
	var sink float64
	allocs := testing.AllocsPerRun(100, func() {
		sink += st.Energy(msIDs[0], co[0], msIDs, co)
		sink += st.CompletionTime(msIDs[1], co[1], msIDs, co)
	})
	if allocs != 0 {
		t.Fatalf("steady-state estimator allocates %.1f objects per run", allocs)
	}
	_ = sink
}

// TestOptionsCanonicalOrder: options are enumerated once at compile in
// (device name, registry name) order and shared thereafter.
func TestOptionsCanonicalOrder(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	id := ids(t, m, "a")[0]
	opts := m.Options(id)
	if len(opts) != 6 { // 3 devices × 2 registries
		t.Fatalf("got %d options, want 6", len(opts))
	}
	assigns := m.Assignments(id)
	for i, o := range opts {
		if m.Assignment(o) != assigns[i] {
			t.Fatalf("assignment %d mismatch", i)
		}
		if i == 0 {
			continue
		}
		prev, cur := assigns[i-1], assigns[i]
		if prev.Device > cur.Device || (prev.Device == cur.Device && prev.Registry >= cur.Registry) {
			t.Fatalf("options out of order at %d: %v then %v", i, prev, cur)
		}
	}
	if &opts[0] != &m.Options(id)[0] {
		t.Fatal("options re-enumerated instead of cached")
	}
}

// TestEnergyRowMatchesEnergy: batch pricing must be bit-identical to
// per-option Energy, solo, under stage co-assignments, and with earlier
// stages committed (the device-run memoization must not change a bit).
func TestEnergyRowMatchesEnergy(t *testing.T) {
	app, cluster := contentionFixture(t)
	if err := app.AddDataflow("a", "b", 500*units.MB); err != nil {
		t.Fatal(err)
	}
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b", "c")

	check := func(name string, ms int32, coMS []int32, coOpt []Option) {
		t.Helper()
		opts := m.Options(ms)
		dst := make([]float64, len(opts))
		st.EnergyRow(ms, opts, coMS, coOpt, dst)
		for k, o := range opts {
			if want := st.Energy(ms, o, coMS, coOpt); dst[k] != want {
				t.Errorf("%s: option %d (%v): EnergyRow %v, Energy %v", name, k, m.Assignment(o), dst[k], want)
			}
		}
	}

	co := []Option{
		opt(t, m, "d1", "shared"),
		opt(t, m, "d2", "shared"),
		opt(t, m, "d3", "hub"),
	}
	for _, ms := range msIDs {
		check("solo", ms, nil, nil)
		check("staged", ms, msIDs, co)
	}
	st.Commit(msIDs[0], opt(t, m, "d3", "hub"))
	check("committed-upstream", msIDs[1], msIDs[1:], co[1:])
}

// TestEnergyRowAllocationFree: batch pricing allocates nothing.
func TestEnergyRowAllocationFree(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	st := m.NewState()
	msIDs := ids(t, m, "a", "b", "c")
	co := []Option{
		opt(t, m, "d1", "shared"),
		opt(t, m, "d2", "shared"),
		opt(t, m, "d3", "shared"),
	}
	opts := m.Options(msIDs[0])
	dst := make([]float64, len(opts))
	allocs := testing.AllocsPerRun(100, func() {
		st.EnergyRow(msIDs[0], opts, msIDs, co, dst)
	})
	if allocs != 0 {
		t.Fatalf("EnergyRow allocates %.1f objects per run", allocs)
	}
}

// TestSoloCellsConsistent: the precomputed scatter cells agree with the solo
// axes — cell k is (index of device in axis)×len(regs) + (index of registry).
func TestSoloCellsConsistent(t *testing.T) {
	app, cluster := contentionFixture(t)
	m := Compile(app, cluster)
	for _, name := range []string{"a", "b", "c"} {
		ms := ids(t, m, name)[0]
		devices, registries := m.SoloAxes(ms)
		cells := m.SoloCells(ms)
		opts := m.Options(ms)
		if len(cells) != len(opts) {
			t.Fatalf("%s: %d cells for %d options", name, len(cells), len(opts))
		}
		seen := map[int32]bool{}
		for k, o := range opts {
			i := indexOf32(devices, o.Device)
			j := indexOf32(registries, o.Registry)
			if i < 0 || j < 0 {
				t.Fatalf("%s: option %v outside solo axes", name, o)
			}
			want := int32(i*len(registries) + j)
			if cells[k] != want {
				t.Errorf("%s: cell[%d] = %d, want %d", name, k, cells[k], want)
			}
			if seen[cells[k]] {
				t.Errorf("%s: duplicate cell %d", name, cells[k])
			}
			seen[cells[k]] = true
		}
	}
}

func indexOf32(s []int32, v int32) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}

func approxEqual(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
