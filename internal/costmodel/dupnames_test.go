package costmodel_test

// Duplicate-name corpus: clusters and apps with duplicate device, registry,
// and microservice names. Before the shared topo.ClusterTable refactor the
// two compilers handled duplicates with different table layouts (costmodel
// kept dead slots, sim.CompilePlan compacted) but converged on the same
// observable semantics: the first occurrence, in declaration order, wins
// everywhere. This test pins that contract on the unified table — duplicate
// entries must be invisible next to a cluster with the duplicates removed —
// for every scheduler's placements, the cost model's option enumeration and
// estimates, and the simulator's results, and pins that apps with duplicate
// microservice names keep failing validation identically in both compilers.

import (
	"reflect"
	"testing"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
)

// dupTopology wires regnode/hubnode/src to three device nodes, plus a
// ghostnode with no links (the duplicate registry claims to live there — if
// the duplicate ever won, every hub option would vanish).
func dupTopology(t *testing.T) *netsim.Topology {
	t.Helper()
	topo := netsim.NewTopology()
	for _, n := range []string{"regnode", "hubnode", "ghostnode", "src", "d1", "d2", "d3"} {
		topo.AddNode(n)
	}
	devs := []string{"d1", "d2", "d3"}
	for _, d := range devs {
		for _, l := range []netsim.Link{
			{From: "regnode", To: d, BW: 100 * units.MBps, RTT: 0.5, SharedCapacity: true},
			{From: "hubnode", To: d, BW: 50 * units.MBps, RTT: 1.0},
			{From: "src", To: d, BW: 200 * units.MBps},
		} {
			if err := topo.AddLink(l); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < len(devs); i++ {
		for j := i + 1; j < len(devs); j++ {
			if err := topo.AddDuplex(devs[i], devs[j], 200*units.MBps); err != nil {
				t.Fatal(err)
			}
		}
	}
	return topo
}

// dupClusters returns the same cluster twice: once with duplicate device and
// registry names appended (each duplicate carrying a spec that would visibly
// change placements, options, or contention if it ever won) and once with
// only the first occurrences. Device objects are fresh per cluster so layer
// caches never alias across the comparison.
func dupClusters(t *testing.T) (dup, dedup *sim.Cluster) {
	t.Helper()
	pm := energy.LinearModel{StaticW: 2, PullW: 3, ReceiveW: 4, ProcessingW: 10}
	build := func(withDups bool) *sim.Cluster {
		devices := []*device.Device{
			device.New("d1", dag.AMD64, 8, 10000, 8*units.GB, 64*units.GB, pm),
			device.New("d2", dag.AMD64, 8, 10000, 8*units.GB, 64*units.GB, pm),
			device.New("d3", dag.ARM64, 4, 5000, 4*units.GB, 32*units.GB, pm),
		}
		registries := []sim.RegistryInfo{
			{Name: "hub", Node: "hubnode"},
			{Name: "shared", Node: "regnode", Shared: true},
		}
		if withDups {
			// A duplicate d1 that is ARM-only and slower (would change
			// feasibility and estimates), a duplicate hub on an unlinked
			// node (would erase every hub option), and a duplicate shared
			// registry without the shared flag (would erase contention).
			devices = append(devices,
				device.New("d1", dag.ARM64, 2, 1000, units.GB, 8*units.GB, pm))
			registries = append(registries,
				sim.RegistryInfo{Name: "hub", Node: "ghostnode"},
				sim.RegistryInfo{Name: "shared", Node: "regnode", Shared: false})
		}
		return &sim.Cluster{
			Devices:    devices,
			Registries: registries,
			Topology:   dupTopology(t),
			SourceNode: "src",
		}
	}
	return build(true), build(false)
}

// dupApp is a two-stage pipeline: a contended three-wide stage (shared
// registry pulls, an amd64-only member) feeding a sink, with an external
// input — enough to exercise deployment, transfer, contention, and source
// links.
func dupApp(t *testing.T) *dag.App {
	t.Helper()
	app := dag.NewApp("dupcorpus")
	for _, m := range []*dag.Microservice{
		{Name: "a", ImageSize: units.GB, Req: dag.Requirements{Cores: 1, CPU: 50_000, Memory: units.GB}, ExternalInput: 100 * units.MB},
		{Name: "b", ImageSize: 2 * units.GB, Req: dag.Requirements{Cores: 1, CPU: 30_000, Memory: units.GB}},
		{Name: "c", ImageSize: units.GB, Req: dag.Requirements{Cores: 1, CPU: 20_000, Memory: units.GB}, Arches: []dag.Arch{dag.AMD64}},
		{Name: "sink", ImageSize: 500 * units.MB, Req: dag.Requirements{Cores: 1, CPU: 10_000, Memory: units.GB}},
	} {
		if err := app.AddMicroservice(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, from := range []string{"a", "b", "c"} {
		if err := app.AddDataflow(from, "sink", 200*units.MB); err != nil {
			t.Fatal(err)
		}
	}
	return app
}

// TestDuplicateNamesFirstOccurrenceWins pins the duplicate-name contract on
// the shared cluster table: a cluster with duplicate device and registry
// names behaves exactly — placements from all seven schedulers, option
// tables, energy estimates, simulated results — like the same cluster with
// the duplicates dropped.
func TestDuplicateNamesFirstOccurrenceWins(t *testing.T) {
	app := dupApp(t)
	dup, dedup := dupClusters(t)

	// Both compilers build on one shared table, and the compacted name
	// tables collapse the duplicates.
	tab := sim.CompileClusterTable(dup)
	if got, want := tab.NumDevices(), 3; got != want {
		t.Fatalf("table compiled %d devices, want %d (duplicates compacted)", got, want)
	}
	if got, want := tab.NumRegistries(), 2; got != want {
		t.Fatalf("table compiled %d registries, want %d (duplicates compacted)", got, want)
	}
	mDup := costmodel.CompileOn(app, dup, tab)
	pDup := sim.CompilePlanOn(app, dup, tab)
	if mDup.Table() != tab || pDup.Table() != tab {
		t.Fatal("compilers did not retain the shared cluster table")
	}
	mDedup := costmodel.Compile(app, dedup)

	// Option enumeration: identical per-microservice assignment lists.
	for _, name := range []string{"a", "b", "c", "sink"} {
		id1, ok1 := mDup.MSID(name)
		id2, ok2 := mDedup.MSID(name)
		if !ok1 || !ok2 {
			t.Fatalf("microservice %q missing from a model", name)
		}
		a1, a2 := mDup.Assignments(id1), mDedup.Assignments(id2)
		if !reflect.DeepEqual(a1, a2) {
			t.Errorf("%s: options diverge:\ndup:   %v\ndedup: %v", name, a1, a2)
		}
		// Estimates: every option priced identically (exact float equality)
		// with no co-assignments committed.
		st1, st2 := mDup.NewState(), mDedup.NewState()
		o1, o2 := mDup.Options(id1), mDedup.Options(id2)
		for k := range o1 {
			e1 := st1.Energy(id1, o1[k], nil, nil)
			e2 := st2.Energy(id2, o2[k], nil, nil)
			if e1 != e2 {
				t.Errorf("%s option %d: energy %v vs %v", name, k, e1, e2)
			}
			c1 := st1.CompletionTime(id1, o1[k], nil, nil)
			c2 := st2.CompletionTime(id2, o2[k], nil, nil)
			if c1 != c2 {
				t.Errorf("%s option %d: completion %v vs %v", name, k, c1, c2)
			}
		}
	}

	// Placements: every scheduler, byte-identical across dup and dedup.
	for _, s := range sched.All(7) {
		got, errGot := s.Schedule(app, dup)
		want, errWant := s.Schedule(app, dedup)
		if (errGot == nil) != (errWant == nil) {
			t.Fatalf("%s: error divergence: %v vs %v", s.Name(), errGot, errWant)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: placement diverges:\ndup:   %v\ndedup: %v", s.Name(), got, want)
		}
	}

	// Simulation: bit-identical results (jitter on — it hashes app and
	// microservice names, which duplicates must not perturb).
	placement, err := sched.NewDEEP().Schedule(app, dedup)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []sim.Options{{}, {Seed: 11, Jitter: 0.02}, {WarmCaches: true}} {
		got, errGot := sim.Run(app, dup, placement, opts)
		want, errWant := sim.Run(app, dedup, placement, opts)
		if errGot != nil || errWant != nil {
			t.Fatalf("sim run failed: %v / %v", errGot, errWant)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("sim results diverge under %+v:\ndup:   %+v\ndedup: %+v", opts, got, want)
		}
	}
}

// TestDuplicateMicroserviceNamesStillRejected: apps with duplicate
// microservice names (constructible only by hand — AddMicroservice rejects
// them) fail DAG validation, and both compilers surface that same error the
// way they did before the shared-table refactor.
func TestDuplicateMicroserviceNamesStillRejected(t *testing.T) {
	ms := func(name string) *dag.Microservice {
		return &dag.Microservice{Name: name, ImageSize: units.MB, Req: dag.Requirements{CPU: 1000}}
	}
	app := &dag.App{
		Name:          "dupms",
		Microservices: []*dag.Microservice{ms("x"), ms("x"), ms("y")},
		Dataflows:     []dag.Dataflow{{From: "x", To: "y", Size: units.MB}},
	}
	_, cluster := dupClusters(t)

	wantErr := app.Validate()
	if wantErr == nil {
		t.Fatal("expected duplicate-name app to fail validation")
	}

	model := costmodel.Compile(app, cluster)
	if _, err := model.Stages(); err == nil || err.Error() != wantErr.Error() {
		t.Errorf("model.Stages() = %v, want %v", err, wantErr)
	}

	plan := sim.CompilePlan(app, cluster)
	placement := sim.Placement{
		"x": {Device: "d1", Registry: "hub"},
		"y": {Device: "d1", Registry: "hub"},
	}
	if _, err := sim.NewExec().Run(plan, placement, sim.Options{}); err == nil || err.Error() != wantErr.Error() {
		t.Errorf("Exec.Run = %v, want %v", err, wantErr)
	}
}
