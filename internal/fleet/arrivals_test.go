package fleet

import (
	"math"
	"math/rand"
	"testing"
)

// meanRate empirically estimates arrivals per second over n draws.
func meanRate(t *testing.T, p ArrivalProcess, n int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	total := 0.0
	for i := 0; i < n; i++ {
		gap := p.Next(rng)
		if gap < 0 || math.IsNaN(gap) {
			t.Fatalf("%s: bad gap %v", p.Name(), gap)
		}
		total += gap
	}
	return float64(n) / total
}

func TestPoissonRate(t *testing.T) {
	got := meanRate(t, NewPoisson(100), 20000)
	if got < 90 || got > 110 {
		t.Fatalf("poisson(100) empirical rate %.1f", got)
	}
}

func TestBurstyPreservesLongRunRate(t *testing.T) {
	got := meanRate(t, NewBursty(100, 8), 50000)
	if got < 80 || got > 125 {
		t.Fatalf("bursty(100) empirical rate %.1f", got)
	}
	// Burstiness: a large share of gaps must be exactly zero.
	rng := rand.New(rand.NewSource(2))
	b := NewBursty(100, 8)
	zeros := 0
	for i := 0; i < 10000; i++ {
		if b.Next(rng) == 0 {
			zeros++
		}
	}
	if zeros < 5000 {
		t.Fatalf("only %d/10000 zero gaps; not bursty", zeros)
	}
}

func TestDiurnalSweepsRates(t *testing.T) {
	// Mean rate over full cycles approximates the midpoint of peak and
	// trough.
	got := meanRate(t, NewDiurnal(175, 25, 60), 50000)
	if got < 80 || got > 125 {
		t.Fatalf("diurnal(175,25) empirical rate %.1f, want ~100", got)
	}
}

// TestBurstyZeroValue asserts a literal &Bursty{Rate: r} (BurstSize unset)
// behaves as plain Poisson instead of degenerating to zero gaps.
func TestBurstyZeroValue(t *testing.T) {
	got := meanRate(t, &Bursty{Rate: 100}, 20000)
	if got < 90 || got > 110 {
		t.Fatalf("zero-value bursty empirical rate %.1f, want ~100", got)
	}
}

func TestNewArrivals(t *testing.T) {
	for _, name := range []string{"poisson", "bursty", "diurnal"} {
		p, err := NewArrivals(name, 50)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("got %s, want %s", p.Name(), name)
		}
	}
	if _, err := NewArrivals("nope", 50); err == nil {
		t.Fatal("unknown process accepted")
	}
}
