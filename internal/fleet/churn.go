package fleet

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"sort"
	"strconv"
	"time"

	"deep/internal/chaos"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/units"
)

// LinkChange is one in-place bandwidth change in a churn delta: the link
// between A and B (both directions, where they exist) is set to Factor times
// its base bandwidth. A Factor outside (0, 1) restores the base bandwidth.
type LinkChange struct {
	A, B   string
	Factor float64
}

// ChurnDelta is one batch of live cluster changes applied atomically by
// Fleet.ApplyChurn: devices and registries leaving (crash) or returning
// (recover) service, and links degrading or restoring. Names refer to the
// fleet's base cluster; a crash is a removal from the effective cluster view,
// not a removal from the base — recovery restores the exact base state, so a
// fully recovered fleet serves its pre-churn caches again.
type ChurnDelta struct {
	FailDevices       []string
	RecoverDevices    []string
	FailRegistries    []string
	RecoverRegistries []string
	Links             []LinkChange
}

// DeltaForEvent translates one chaos event into the churn delta that applies
// it.
func DeltaForEvent(ev chaos.Event) ChurnDelta {
	switch ev.Kind {
	case chaos.DeviceCrash:
		return ChurnDelta{FailDevices: []string{ev.Target}}
	case chaos.DeviceRecover:
		return ChurnDelta{RecoverDevices: []string{ev.Target}}
	case chaos.RegistryOutage:
		return ChurnDelta{FailRegistries: []string{ev.Target}}
	case chaos.RegistryRecover:
		return ChurnDelta{RecoverRegistries: []string{ev.Target}}
	case chaos.LinkDegrade:
		return ChurnDelta{Links: []LinkChange{{A: ev.A, B: ev.B, Factor: ev.Factor}}}
	case chaos.LinkRestore:
		return ChurnDelta{Links: []LinkChange{{A: ev.A, B: ev.B}}}
	default:
		return ChurnDelta{}
	}
}

// churnState is one epoch's immutable view of the churned cluster: the down
// sets, the incrementally patched cluster table, and the effective digest
// keying every cache whose contents depend on the cluster. Workers adopt a
// state by pointer (one atomic load and compare per request), so everything
// here must stay read-only after publication.
type churnState struct {
	epoch    int64
	downDevs map[string]bool
	downRegs map[string]bool
	degraded map[[2]string]float64
	table    *topo.ClusterTable
	digest   ClusterDigest
}

// pristine reports whether the state is the base cluster exactly: nothing
// down, nothing degraded.
func (st *churnState) pristine() bool {
	return len(st.downDevs) == 0 && len(st.downRegs) == 0 && len(st.degraded) == 0
}

// stale reports whether the placement references hardware that is down in
// this state — the per-request gate that keeps cached placements off crashed
// devices.
func (st *churnState) stale(p sim.Placement) bool {
	if len(st.downDevs) == 0 && len(st.downRegs) == 0 {
		return false
	}
	for _, a := range p {
		if st.downDevs[a.Device] || st.downRegs[a.Registry] {
			return true
		}
	}
	return false
}

// staleAssigns is stale for placements in compiled view form — the request
// path's gate, which never sees a placement map anymore.
func (st *churnState) staleAssigns(assigns []sim.Assignment) bool {
	if len(st.downDevs) == 0 && len(st.downRegs) == 0 {
		return false
	}
	for _, a := range assigns {
		if st.downDevs[a.Device] || st.downRegs[a.Registry] {
			return true
		}
	}
	return false
}

// ChurnStats is a point-in-time view of the fleet's churn machinery.
type ChurnStats struct {
	// Epoch is the current cluster epoch (0 = the base cluster, bumped once
	// per ApplyChurn).
	Epoch int64 `json:"epoch"`
	// DownDevices/DownRegistries/DegradedLinks describe the current state.
	DownDevices    int `json:"down_devices"`
	DownRegistries int `json:"down_registries"`
	DegradedLinks  int `json:"degraded_links"`
	// EpochsApplied counts ApplyChurn calls; Invalidated the placement-cache
	// entries dropped because they referenced newly crashed hardware;
	// ShapesPurged the compiled shapes dropped because their churn epoch was
	// abandoned (superseded by a new digest or recovered to pristine).
	EpochsApplied int64 `json:"epochs_applied"`
	Invalidated   int64 `json:"invalidated"`
	ShapesPurged  int64 `json:"shapes_purged"`
	// StaleRejected counts placements caught referencing down hardware at
	// the response gate; Reschedules the retry attempts those rejections
	// triggered; Downgrades the responses served by the best-response
	// fallback instead of the exact scheduler; DeadlineExceeded the requests
	// failed with ErrDeadline.
	StaleRejected    int64 `json:"stale_rejected"`
	Reschedules      int64 `json:"reschedules"`
	Downgrades       int64 `json:"downgrades"`
	DeadlineExceeded int64 `json:"deadline_exceeded"`
}

// ApplyChurn applies one delta to the fleet's effective cluster view: it
// patches the compiled cluster table incrementally from the previous epoch's
// table (O(changed·devices) link recompiles instead of Compile's full
// O(devices²) scan), computes the new effective digest, drops placement-cache
// entries that reference newly crashed hardware, bumps the cluster epoch, and
// publishes the new state for workers to adopt on their next request. It
// returns the new epoch and the number of invalidated placements.
//
// Deltas are serialized; the request path never blocks on one (workers read
// the published state atomically). All names must exist in the base cluster;
// failing an already-down target or recovering a healthy one is a no-op for
// that target, so replaying overlapping chaos schedules is safe.
func (f *Fleet) ApplyChurn(delta ChurnDelta) (epoch int64, invalidated int, err error) {
	f.churnMu.Lock()
	defer f.churnMu.Unlock()
	f.ensureBase()
	prev := f.churn.Load()

	for _, lists := range [][]string{delta.FailDevices, delta.RecoverDevices} {
		for _, name := range lists {
			if _, ok := f.baseTable.DevID(name); !ok {
				return 0, 0, fmt.Errorf("fleet: churn names unknown device %q", name)
			}
		}
	}
	for _, lists := range [][]string{delta.FailRegistries, delta.RecoverRegistries} {
		for _, name := range lists {
			if _, ok := f.baseTable.RegID(name); !ok {
				return 0, 0, fmt.Errorf("fleet: churn names unknown registry %q", name)
			}
		}
	}
	for _, lc := range delta.Links {
		if _, okAB := f.base.Topology.LinkBetween(lc.A, lc.B); !okAB {
			if _, okBA := f.base.Topology.LinkBetween(lc.B, lc.A); !okBA {
				return 0, 0, fmt.Errorf("fleet: churn names unknown link %s<->%s", lc.A, lc.B)
			}
		}
	}

	next := &churnState{
		epoch:    prev.epoch + 1,
		downDevs: copySet(prev.downDevs, len(delta.FailDevices)),
		downRegs: copySet(prev.downRegs, len(delta.FailRegistries)),
		degraded: make(map[[2]string]float64, len(prev.degraded)+len(delta.Links)),
	}
	for k, v := range prev.degraded {
		next.degraded[k] = v
	}
	var newDevs, newRegs []string
	for _, name := range delta.FailDevices {
		if !next.downDevs[name] {
			next.downDevs[name] = true
			newDevs = append(newDevs, name)
		}
	}
	for _, name := range delta.RecoverDevices {
		delete(next.downDevs, name)
	}
	for _, name := range delta.FailRegistries {
		if !next.downRegs[name] {
			next.downRegs[name] = true
			newRegs = append(newRegs, name)
		}
	}
	for _, name := range delta.RecoverRegistries {
		delete(next.downRegs, name)
	}

	// Link changes mutate the fleet's private chaos topology (a lazy clone of
	// the base — the base is never touched, so restoring reads base
	// bandwidths). Every mutated endpoint lands in TouchedNodes, so the
	// incremental patch below recompiles exactly the incident link rows.
	var touchedNodes []string
	for _, lc := range delta.Links {
		key := [2]string{lc.A, lc.B}
		if lc.A > lc.B {
			key = [2]string{lc.B, lc.A}
		}
		factor := lc.Factor
		if factor <= 0 || factor >= 1 {
			delete(next.degraded, key)
			factor = 1
		} else {
			next.degraded[key] = factor
		}
		if f.chaosTopo == nil {
			f.chaosTopo = f.base.Topology.Clone()
		}
		for _, dir := range [2][2]string{{lc.A, lc.B}, {lc.B, lc.A}} {
			if l, ok := f.base.Topology.LinkBetween(dir[0], dir[1]); ok {
				bw := l.BW
				if factor < 1 {
					bw = units.Bandwidth(float64(l.BW) * factor)
				}
				if err := f.chaosTopo.SetBandwidth(dir[0], dir[1], bw); err != nil {
					return 0, 0, fmt.Errorf("fleet: degrading %s->%s: %w", dir[0], dir[1], err)
				}
			}
		}
		touchedNodes = append(touchedNodes, lc.A, lc.B)
	}

	if next.pristine() {
		// Full recovery restores the base table and digest by identity, so
		// every pre-churn cache entry (placements, compiled shapes) is warm
		// again immediately.
		next.table = f.baseTable
		next.digest = f.baseDigest
	} else {
		from := prev.table
		if from == nil {
			// First churn ever: patch from the base table.
			from = f.baseTable
		}
		next.table = from.Patch(f.churnView(next), topo.Delta{TouchedNodes: touchedNodes})
		next.digest = f.effectiveDigest(next)
	}

	if len(newDevs)+len(newRegs) > 0 {
		dead := make(map[string]bool, len(newDevs))
		deadRegs := make(map[string]bool, len(newRegs))
		for _, d := range newDevs {
			dead[d] = true
		}
		for _, r := range newRegs {
			deadRegs[r] = true
		}
		invalidated = f.cache.InvalidateIf(func(assigns []sim.Assignment) bool {
			for _, a := range assigns {
				if dead[a.Device] || deadRegs[a.Registry] {
					return true
				}
			}
			return false
		})
		f.churnInvalidated.Add(int64(invalidated))
	}

	f.churnEpochs.Add(1)
	f.churn.Store(next)

	// Epoch hygiene: the previous epoch's digest is now unreachable — no
	// worker will ever key a lookup by it again — unless it is the base
	// digest (pristine recovery must keep pre-churn caches warm) or the new
	// state re-derived the identical digest (a no-op delta). Purging after
	// the store keeps the window in which a worker still on the old epoch
	// re-inserts a stray shape as small as possible; such a stray is
	// harmless and reclaimed by the next purge or FIFO eviction.
	if len(prev.digest) > 0 && !bytes.Equal(prev.digest, f.baseDigest) && !bytes.Equal(prev.digest, next.digest) {
		if n := f.models.purgeForCluster(prev.digest); n > 0 {
			f.shapesPurged.Add(int64(n))
		}
	}
	return next.epoch, invalidated, nil
}

// ApplyChaosEvent applies one chaos event as a churn delta.
func (f *Fleet) ApplyChaosEvent(ev chaos.Event) (int64, int, error) {
	return f.ApplyChurn(DeltaForEvent(ev))
}

// ensureBase lazily builds the fleet's canonical base cluster, its digest,
// and its compiled table — the ancestor every churn patch derives from.
// Called under churnMu; a fleet that never churns never runs it (and so
// never pays the extra Config.NewCluster call). Workers see the base fields
// through the published churn state's release/acquire edge.
func (f *Fleet) ensureBase() {
	if f.base != nil {
		return
	}
	f.base = f.cfg.NewCluster()
	f.baseDigest = DigestCluster(f.base)
	f.baseTable = f.models.tableFor(f.baseDigest, func() *topo.ClusterTable {
		return sim.CompileClusterTable(f.base)
	})
}

// churnView assembles the effective cluster view for a churn state: the base
// cluster minus down devices and registries, over the chaos topology when any
// link has ever been mutated.
func (f *Fleet) churnView(st *churnState) topo.View {
	v := topo.View{Topology: f.base.Topology, SourceNode: f.base.SourceNode}
	if f.chaosTopo != nil {
		v.Topology = f.chaosTopo
	}
	v.Devices = f.base.Devices
	if len(st.downDevs) > 0 {
		v.Devices = nil
		for _, d := range f.base.Devices {
			if !st.downDevs[d.Name] {
				v.Devices = append(v.Devices, d)
			}
		}
	}
	for _, r := range f.base.Registries {
		if !st.downRegs[r.Name] {
			v.Registries = append(v.Registries, topo.Registry{Name: r.Name, Node: r.Node, Shared: r.Shared})
		}
	}
	return v
}

// effectiveDigest derives the churned cluster's digest from the base digest
// and the sorted down sets and degradations — canonical, so two routes to the
// same effective cluster (crash A then B, or B then A) key the same cache
// entries, and O(churn) instead of re-digesting the whole cluster.
func (f *Fleet) effectiveDigest(st *churnState) ClusterDigest {
	h := sha256.New()
	h.Write(f.baseDigest)
	for _, name := range sortedKeys(st.downDevs) {
		h.Write([]byte("down|" + name + "\n"))
	}
	for _, name := range sortedKeys(st.downRegs) {
		h.Write([]byte("downreg|" + name + "\n"))
	}
	if len(st.degraded) > 0 {
		keys := make([][2]string, 0, len(st.degraded))
		for k := range st.degraded {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			h.Write([]byte("deg|" + k[0] + "|" + k[1] + "|" +
				strconv.FormatFloat(st.degraded[k], 'g', -1, 64) + "\n"))
		}
	}
	return ClusterDigest(h.Sum(nil))
}

func copySet(m map[string]bool, extra int) map[string]bool {
	out := make(map[string]bool, len(m)+extra)
	for k := range m {
		out[k] = true
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// churnMaxAttempts bounds the stale-placement retry loop: the first attempt
// plus two re-schedules. Churn faster than three epochs within one request's
// service time is a thrashing cluster, not a recoverable race.
const churnMaxAttempts = 3

// churnBackoffBase is the first retry's mean backoff; each further attempt
// doubles it. Jitter (0–100% of the base, from the worker-local xorshift)
// decorrelates workers retrying after the same churn event.
const churnBackoffBase = 50 * time.Microsecond

// backoff sleeps the jittered exponential backoff before retry `attempt`.
func (w *workerState) backoff(attempt int) {
	base := churnBackoffBase << attempt
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	time.Sleep(base + time.Duration(w.rng%uint64(base)))
}
