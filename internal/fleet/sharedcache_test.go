package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/workload"
)

// TestSharedModelCacheSingleflight hammers a few keys from many goroutines
// (run under -race in CI) and asserts each key compiled exactly once — the
// singleflight contract — with every caller handed the same model.
func TestSharedModelCacheSingleflight(t *testing.T) {
	const (
		keys       = 3
		goroutines = 16
		rounds     = 50
	)
	c := newSharedModelCache(64)
	apps := make([]*dag.App, keys)
	fps := make([]Fingerprint, keys)
	cd := DigestCluster(workload.Testbed())
	for i := range apps {
		cfg := workload.DefaultGeneratorConfig(4, int64(i+1))
		app, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps[i] = app
		fps[i] = cd.ModelKey(app)
	}

	var compiles [keys]atomic.Int64
	got := make([][]*costmodel.Model, goroutines)
	var wg sync.WaitGroup
	cluster := workload.Testbed()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*costmodel.Model, keys)
			for r := 0; r < rounds; r++ {
				k := (g + r) % keys
				m := c.getOrCompile(fps[k], func() compiledShape {
					compiles[k].Add(1)
					time.Sleep(time.Millisecond) // widen the race window
					return compiledShape{model: costmodel.Compile(apps[k], cluster)}
				}).model
				if got[g][k] == nil {
					got[g][k] = m
				} else if got[g][k] != m {
					t.Errorf("goroutine %d key %d: model changed identity", g, k)
				}
			}
		}(g)
	}
	wg.Wait()

	for k := range compiles {
		if n := compiles[k].Load(); n != 1 {
			t.Errorf("key %d compiled %d times, want exactly 1", k, n)
		}
	}
	ref := got[0]
	for g := 1; g < goroutines; g++ {
		for k := range ref {
			if got[g][k] != ref[k] {
				t.Errorf("goroutine %d key %d: different model than goroutine 0", g, k)
			}
		}
	}
	s := c.Stats()
	if s.Compiles != keys {
		t.Errorf("stats report %d compiles, want %d", s.Compiles, keys)
	}
	if s.Misses != keys {
		t.Errorf("stats report %d misses, want %d", s.Misses, keys)
	}
	if want := int64(goroutines*rounds - keys); s.Hits != want {
		t.Errorf("stats report %d hits, want %d", s.Hits, want)
	}
}

// TestFleetCompilesOncePerShape drives a worker pool much larger than the
// tenant mix with placement memoization off (every request schedules) and
// asserts the fleet-wide cache held compilation to once per distinct shape
// — the dedup the per-worker memo could not provide.
func TestFleetCompilesOncePerShape(t *testing.T) {
	f := testFleet(t, Config{Workers: 8, QueueDepth: 256, CacheSize: -1})
	apps := []*dag.App{workload.VideoProcessing(), workload.TextProcessing()}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		ch, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), App: apps[i%len(apps)], Seed: int64(i)})
		if err != nil {
			// Bounded queue: drain synchronously and move on.
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp := <-ch; resp.Err != nil {
				t.Error(resp.Err)
			}
		}()
	}
	wg.Wait()
	s := f.Stats()
	if s.ModelCache.Compiles != int64(len(apps)) {
		t.Errorf("%d compilations for %d shapes across 8 workers (stats: %+v)",
			s.ModelCache.Compiles, len(apps), s.ModelCache)
	}
	if s.ModelCache.Hits == 0 {
		t.Error("shared model cache recorded no hits")
	}
}

// TestModelKeyChangesWithCluster pins the no-stale-reuse property: the
// model key folds the cluster digest in, so after a cluster change the same
// app maps to a different entry and a fresh compilation — a worker can
// never be handed a model compiled against another cluster shape.
func TestModelKeyChangesWithCluster(t *testing.T) {
	app := workload.VideoProcessing()
	small := DigestCluster(workload.Testbed())
	big := DigestCluster(workload.ScaledTestbed(2))
	k1, k2 := small.ModelKey(app), big.ModelKey(app)
	if k1 == k2 {
		t.Fatal("model keys collide across different clusters")
	}

	c := newSharedModelCache(16)
	m1 := c.getOrCompile(k1, func() compiledShape {
		return compiledShape{model: costmodel.Compile(app, workload.Testbed())}
	}).model
	m2 := c.getOrCompile(k2, func() compiledShape {
		return compiledShape{model: costmodel.Compile(app, workload.ScaledTestbed(2))}
	}).model
	if m1 == m2 {
		t.Fatal("distinct cluster keys shared one compiled model")
	}
	if n1, n2 := m1.NumDevices(), m2.NumDevices(); n1 == n2 {
		t.Fatalf("expected different device counts, got %d and %d", n1, n2)
	}
	if got := c.getOrCompile(k1, func() compiledShape {
		t.Fatal("unexpected recompilation of a cached key")
		return compiledShape{}
	}).model; got != m1 {
		t.Fatal("cached model identity changed")
	}
}

// TestModelCacheDisabled: a negative ModelCacheSize compiles per request
// and caches nothing.
func TestModelCacheDisabled(t *testing.T) {
	c := newSharedModelCache(-1)
	app := workload.VideoProcessing()
	cd := DigestCluster(workload.Testbed())
	key := cd.ModelKey(app)
	var n int
	for i := 0; i < 3; i++ {
		c.getOrCompile(key, func() compiledShape {
			n++
			return compiledShape{model: costmodel.Compile(app, workload.Testbed())}
		})
	}
	if n != 3 {
		t.Fatalf("disabled cache compiled %d times, want 3", n)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("disabled cache holds %d entries", s.Entries)
	}
}

// TestModelCacheEviction: FIFO-bounded shards evict and recompile.
func TestModelCacheEviction(t *testing.T) {
	c := newSharedModelCache(modelCacheShards) // one entry per shard
	cd := DigestCluster(workload.Testbed())
	cluster := workload.Testbed()

	var keys []Fingerprint
	var apps []*dag.App
	for i := 0; i < 4; i++ {
		cfg := workload.DefaultGeneratorConfig(3, int64(100+i))
		app, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		keys = append(keys, cd.ModelKey(app))
	}
	compiled := 0
	fill := func(i int) {
		c.getOrCompile(keys[i], func() compiledShape {
			compiled++
			return compiledShape{model: costmodel.Compile(apps[i], cluster)}
		})
	}
	for i := range keys {
		fill(i)
	}
	if s := c.Stats(); s.Entries > modelCacheShards {
		t.Fatalf("cache grew past capacity: %d entries", s.Entries)
	}
	if compiled != len(keys) {
		t.Fatalf("expected %d compilations, got %d", len(keys), compiled)
	}
}
