package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deep/internal/appgraph"
	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/device"
	"deep/internal/energy"
	"deep/internal/netsim"
	"deep/internal/sim"
	"deep/internal/topo"
	"deep/internal/units"
	"deep/internal/workload"
)

// TestSharedModelCacheSingleflight hammers a few keys from many goroutines
// (run under -race in CI) and asserts each key compiled exactly once — the
// singleflight contract — with every caller handed the same model.
func TestSharedModelCacheSingleflight(t *testing.T) {
	const (
		keys       = 3
		goroutines = 16
		rounds     = 50
	)
	c := newSharedModelCache(64)
	apps := make([]*dag.App, keys)
	fps := make([]Fingerprint, keys)
	cd := DigestCluster(workload.Testbed())
	for i := range apps {
		cfg := workload.DefaultGeneratorConfig(4, int64(i+1))
		app, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps[i] = app
		fps[i] = cd.ModelKey(app)
	}

	var compiles [keys]atomic.Int64
	got := make([][]*costmodel.Model, goroutines)
	var wg sync.WaitGroup
	cluster := workload.Testbed()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*costmodel.Model, keys)
			for r := 0; r < rounds; r++ {
				k := (g + r) % keys
				m := c.getOrCompile(fps[k], nil, func() compiledShape {
					compiles[k].Add(1)
					time.Sleep(time.Millisecond) // widen the race window
					return compiledShape{model: costmodel.Compile(apps[k], cluster)}
				}).model
				if got[g][k] == nil {
					got[g][k] = m
				} else if got[g][k] != m {
					t.Errorf("goroutine %d key %d: model changed identity", g, k)
				}
			}
		}(g)
	}
	wg.Wait()

	for k := range compiles {
		if n := compiles[k].Load(); n != 1 {
			t.Errorf("key %d compiled %d times, want exactly 1", k, n)
		}
	}
	ref := got[0]
	for g := 1; g < goroutines; g++ {
		for k := range ref {
			if got[g][k] != ref[k] {
				t.Errorf("goroutine %d key %d: different model than goroutine 0", g, k)
			}
		}
	}
	s := c.Stats()
	if s.Compiles != keys {
		t.Errorf("stats report %d compiles, want %d", s.Compiles, keys)
	}
	if s.Misses != keys {
		t.Errorf("stats report %d misses, want %d", s.Misses, keys)
	}
	if want := int64(goroutines*rounds - keys); s.Hits != want {
		t.Errorf("stats report %d hits, want %d", s.Hits, want)
	}
}

// TestFleetCompilesOncePerShape drives a worker pool much larger than the
// tenant mix with placement memoization off (every request schedules) and
// asserts the fleet-wide cache held compilation to once per distinct shape
// — the dedup the per-worker memo could not provide.
func TestFleetCompilesOncePerShape(t *testing.T) {
	f := testFleet(t, Config{Workers: 8, QueueDepth: 256, CacheSize: -1})
	apps := []*dag.App{workload.VideoProcessing(), workload.TextProcessing()}
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		ch, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), App: apps[i%len(apps)], Seed: int64(i)})
		if err != nil {
			// Bounded queue: drain synchronously and move on.
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp := <-ch; resp.Err != nil {
				t.Error(resp.Err)
			}
		}()
	}
	wg.Wait()
	s := f.Stats()
	if s.ModelCache.Compiles != int64(len(apps)) {
		t.Errorf("%d compilations for %d shapes across 8 workers (stats: %+v)",
			s.ModelCache.Compiles, len(apps), s.ModelCache)
	}
	if s.ModelCache.Hits == 0 {
		t.Error("shared model cache recorded no hits")
	}
}

// TestClusterDigestCanonicalizesDuplicates: the cluster digest hashes only
// each name's first occurrence — the entry the compiled ClusterTable
// resolves the name to. A cluster carrying duplicate losers digests equal to
// the same cluster without them (identical compiled behavior, one shared
// table), while swapping which spec comes first changes the winner and must
// change the digest — digest equality coincides exactly with compiled
// semantics, which is what makes digest-keyed table sharing sound.
func TestClusterDigestCanonicalizesDuplicates(t *testing.T) {
	pm := energy.LinearModel{StaticW: 1, PullW: 2, ReceiveW: 3, ProcessingW: 4}
	specA := func() *device.Device { return device.New("d", dag.AMD64, 8, 10000, 8*units.GB, 64*units.GB, pm) }
	specB := func() *device.Device { return device.New("d", dag.ARM64, 2, 1000, units.GB, 8*units.GB, pm) }
	topology := func(t *testing.T) *netsim.Topology {
		t.Helper()
		top := netsim.NewTopology()
		top.AddNode("hubnode")
		top.AddNode("d")
		if err := top.AddLink(netsim.Link{From: "hubnode", To: "d", BW: 10 * units.MBps, RTT: 1}); err != nil {
			t.Fatal(err)
		}
		return top
	}
	build := func(devs ...*device.Device) *sim.Cluster {
		return &sim.Cluster{
			Devices:    devs,
			Registries: []sim.RegistryInfo{{Name: "hub", Node: "hubnode"}},
			Topology:   topology(t),
		}
	}

	base := DigestCluster(build(specA()))
	withLoser := DigestCluster(build(specA(), specB()))
	swapped := DigestCluster(build(specB(), specA()))

	if string(base) != string(withLoser) {
		t.Error("a duplicate losing entry changed the digest; identical compiled tables would not be shared")
	}
	if string(base) == string(swapped) {
		t.Error("swapping the winning spec kept the digest; differently-compiled clusters would share one table")
	}

	regBase := DigestCluster(&sim.Cluster{
		Registries: []sim.RegistryInfo{{Name: "r", Node: "hubnode", Shared: true}},
		Topology:   topology(t),
	})
	regWithLoser := DigestCluster(&sim.Cluster{
		Registries: []sim.RegistryInfo{{Name: "r", Node: "hubnode", Shared: true}, {Name: "r", Node: "elsewhere"}},
		Topology:   topology(t),
	})
	regSwapped := DigestCluster(&sim.Cluster{
		Registries: []sim.RegistryInfo{{Name: "r", Node: "elsewhere"}, {Name: "r", Node: "hubnode", Shared: true}},
		Topology:   topology(t),
	})
	if string(regBase) != string(regWithLoser) {
		t.Error("a duplicate losing registry changed the digest")
	}
	if string(regBase) == string(regSwapped) {
		t.Error("swapping the winning registry kept the digest")
	}
}

// TestClusterTableSingleflight hammers the cluster-table level from many
// goroutines (run under -race in CI) and asserts each digest compiled
// exactly once with every caller handed the same table.
func TestClusterTableSingleflight(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 50
	)
	c := newSharedModelCache(64)
	clusters := []*sim.Cluster{workload.Testbed(), workload.ScaledTestbed(2)}
	digests := make([]ClusterDigest, len(clusters))
	for i, cl := range clusters {
		digests[i] = DigestCluster(cl)
	}

	var compiles [2]atomic.Int64
	got := make([][]*topo.ClusterTable, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*topo.ClusterTable, len(clusters))
			for r := 0; r < rounds; r++ {
				k := (g + r) % len(clusters)
				tab := c.tableFor(digests[k], func() *topo.ClusterTable {
					compiles[k].Add(1)
					time.Sleep(time.Millisecond) // widen the race window
					return sim.CompileClusterTable(clusters[k])
				})
				if got[g][k] == nil {
					got[g][k] = tab
				} else if got[g][k] != tab {
					t.Errorf("goroutine %d digest %d: table changed identity", g, k)
				}
			}
		}(g)
	}
	wg.Wait()

	for k := range compiles {
		if n := compiles[k].Load(); n != 1 {
			t.Errorf("digest %d compiled %d times, want exactly 1", k, n)
		}
	}
	for g := 1; g < goroutines; g++ {
		for k := range got[0] {
			if got[g][k] != got[0][k] {
				t.Errorf("goroutine %d digest %d: different table than goroutine 0", g, k)
			}
		}
	}
	s := c.Stats()
	if s.ClusterCompiles != int64(len(clusters)) {
		t.Errorf("stats report %d cluster compiles, want %d", s.ClusterCompiles, len(clusters))
	}
	if s.ClusterMisses != int64(len(clusters)) {
		t.Errorf("stats report %d cluster misses, want %d", s.ClusterMisses, len(clusters))
	}
	if want := int64(goroutines*rounds - len(clusters)); s.ClusterHits != want {
		t.Errorf("stats report %d cluster hits, want %d", s.ClusterHits, want)
	}
	if s.ClusterEntries != len(clusters) {
		t.Errorf("stats report %d cluster entries, want %d", s.ClusterEntries, len(clusters))
	}
}

// TestFleetCompilesClusterOnce pins the two-level cache's outer level: 8
// workers sharing one cluster shape under many distinct app shapes (with
// placement memoization off, so every request schedules) perform exactly one
// topo.Compile for the whole fleet — one cluster-table miss from the first
// worker up, seven hits from the rest — while the inner level still compiles
// once per app shape.
func TestFleetCompilesClusterOnce(t *testing.T) {
	const workers = 8
	f := testFleet(t, Config{Workers: workers, QueueDepth: 256, CacheSize: -1})

	apps := []*dag.App{workload.VideoProcessing(), workload.TextProcessing()}
	for i := 0; i < 6; i++ {
		cfg := workload.DefaultGeneratorConfig(5, int64(i+1))
		app, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
	}

	var wg sync.WaitGroup
	for i := 0; i < 320; i++ {
		ch, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), App: apps[i%len(apps)], Seed: int64(i)})
		if err != nil {
			continue // bounded queue; coverage doesn't need every request
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp := <-ch; resp.Err != nil {
				t.Error(resp.Err)
			}
		}()
	}
	wg.Wait()

	s := f.Stats().ModelCache
	if s.ClusterCompiles != 1 {
		t.Errorf("%d cluster-table compilations across %d workers, want 1 (stats: %+v)",
			s.ClusterCompiles, workers, s)
	}
	if s.ClusterMisses != 1 || s.ClusterHits != workers-1 {
		t.Errorf("cluster-table misses=%d hits=%d, want 1 and %d", s.ClusterMisses, s.ClusterHits, workers-1)
	}
	if s.ClusterEntries != 1 {
		t.Errorf("%d cluster-table entries, want 1", s.ClusterEntries)
	}
	if s.Compiles != int64(len(apps)) {
		t.Errorf("%d shape compilations for %d app shapes (stats: %+v)", s.Compiles, len(apps), s)
	}
}

// TestModelKeyChangesWithCluster pins the no-stale-reuse property: the
// model key folds the cluster digest in, so after a cluster change the same
// app maps to a different entry and a fresh compilation — a worker can
// never be handed a model compiled against another cluster shape.
func TestModelKeyChangesWithCluster(t *testing.T) {
	app := workload.VideoProcessing()
	small := DigestCluster(workload.Testbed())
	big := DigestCluster(workload.ScaledTestbed(2))
	k1, k2 := small.ModelKey(app), big.ModelKey(app)
	if k1 == k2 {
		t.Fatal("model keys collide across different clusters")
	}

	c := newSharedModelCache(16)
	m1 := c.getOrCompile(k1, nil, func() compiledShape {
		return compiledShape{model: costmodel.Compile(app, workload.Testbed())}
	}).model
	m2 := c.getOrCompile(k2, nil, func() compiledShape {
		return compiledShape{model: costmodel.Compile(app, workload.ScaledTestbed(2))}
	}).model
	if m1 == m2 {
		t.Fatal("distinct cluster keys shared one compiled model")
	}
	if n1, n2 := m1.NumDevices(), m2.NumDevices(); n1 == n2 {
		t.Fatalf("expected different device counts, got %d and %d", n1, n2)
	}
	if got := c.getOrCompile(k1, nil, func() compiledShape {
		t.Fatal("unexpected recompilation of a cached key")
		return compiledShape{}
	}).model; got != m1 {
		t.Fatal("cached model identity changed")
	}
}

// TestModelCacheDisabled: a negative ModelCacheSize compiles per request
// and caches nothing.
func TestModelCacheDisabled(t *testing.T) {
	c := newSharedModelCache(-1)
	app := workload.VideoProcessing()
	cd := DigestCluster(workload.Testbed())
	key := cd.ModelKey(app)
	var n int
	for i := 0; i < 3; i++ {
		c.getOrCompile(key, nil, func() compiledShape {
			n++
			return compiledShape{model: costmodel.Compile(app, workload.Testbed())}
		})
	}
	if n != 3 {
		t.Fatalf("disabled cache compiled %d times, want 3", n)
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("disabled cache holds %d entries", s.Entries)
	}
}

// TestModelCacheEviction: FIFO-bounded shards evict and recompile.
func TestModelCacheEviction(t *testing.T) {
	c := newSharedModelCache(modelCacheShards) // one entry per shard
	cd := DigestCluster(workload.Testbed())
	cluster := workload.Testbed()

	var keys []Fingerprint
	var apps []*dag.App
	for i := 0; i < 4; i++ {
		cfg := workload.DefaultGeneratorConfig(3, int64(100+i))
		app, err := workload.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		apps = append(apps, app)
		keys = append(keys, cd.ModelKey(app))
	}
	compiled := 0
	fill := func(i int) {
		c.getOrCompile(keys[i], nil, func() compiledShape {
			compiled++
			return compiledShape{model: costmodel.Compile(apps[i], cluster)}
		})
	}
	for i := range keys {
		fill(i)
	}
	if s := c.Stats(); s.Entries > modelCacheShards {
		t.Fatalf("cache grew past capacity: %d entries", s.Entries)
	}
	if compiled != len(keys) {
		t.Fatalf("expected %d compilations, got %d", len(keys), compiled)
	}
}

// TestAppTableSingleflight hammers the app-table level from many goroutines
// (run under -race in CI) and asserts each app digest compiled exactly once
// with every caller handed the same table.
func TestAppTableSingleflight(t *testing.T) {
	const (
		goroutines = 16
		rounds     = 50
	)
	c := newSharedModelCache(64)
	apps := []*dag.App{workload.VideoProcessing(), workload.TextProcessing()}
	digests := make([]Fingerprint, len(apps))
	dg := newDigester()
	for i, app := range apps {
		digests[i] = dg.appDigest(app)
	}

	var compiles [2]atomic.Int64
	got := make([][]*appgraph.AppTable, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = make([]*appgraph.AppTable, len(apps))
			for r := 0; r < rounds; r++ {
				k := (g + r) % len(apps)
				tab := c.appTableFor(digests[k], func() *appgraph.AppTable {
					compiles[k].Add(1)
					time.Sleep(time.Millisecond) // widen the race window
					return appgraph.Compile(apps[k])
				})
				if got[g][k] == nil {
					got[g][k] = tab
				} else if got[g][k] != tab {
					t.Errorf("goroutine %d digest %d: table changed identity", g, k)
				}
			}
		}(g)
	}
	wg.Wait()

	for k := range compiles {
		if n := compiles[k].Load(); n != 1 {
			t.Errorf("app %d compiled %d times, want exactly 1", k, n)
		}
	}
	for g := 1; g < goroutines; g++ {
		for k := range got[0] {
			if got[g][k] != got[0][k] {
				t.Errorf("goroutine %d app %d: different table than goroutine 0", g, k)
			}
		}
	}
	s := c.Stats()
	if s.AppCompiles != int64(len(apps)) {
		t.Errorf("stats report %d app compiles, want %d", s.AppCompiles, len(apps))
	}
	if s.AppMisses != int64(len(apps)) {
		t.Errorf("stats report %d app misses, want %d", s.AppMisses, len(apps))
	}
	if want := int64(goroutines*rounds - len(apps)); s.AppHits != want {
		t.Errorf("stats report %d app hits, want %d", s.AppHits, want)
	}
	if s.AppEntries != len(apps) {
		t.Errorf("stats report %d app entries, want %d", s.AppEntries, len(apps))
	}
}

// TestFleetCompilesAppOnce pins the three-level cache's app level: 8 workers
// each holding a *distinct* cluster (so nothing else is shared — every
// worker's shape key and cluster table differ) submit the same app, and the
// whole fleet performs exactly one appgraph.Compile: the DAG validation,
// topo order, and stage partition run once and every per-cluster shape
// compile layers over that one table.
func TestFleetCompilesAppOnce(t *testing.T) {
	const workers = 8
	var next atomic.Int64
	f := testFleet(t, Config{
		Workers:    workers,
		QueueDepth: 256,
		CacheSize:  -1,
		NewCluster: func() *sim.Cluster {
			// Distinct scale per worker: 8 different cluster digests.
			return workload.ScaledTestbed(int(next.Add(1)))
		},
	})

	app := workload.VideoProcessing()
	var wg sync.WaitGroup
	for i := 0; i < 320; i++ {
		ch, err := f.Submit(Request{Tenant: fmt.Sprintf("t%d", i%4), App: app, Seed: int64(i)})
		if err != nil {
			continue // bounded queue; coverage doesn't need every request
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if resp := <-ch; resp.Err != nil {
				t.Error(resp.Err)
			}
		}()
	}
	wg.Wait()

	// Workers resolve their cluster tables at startup, but a worker
	// goroutine that was never scheduled (all 320 requests drained by its
	// siblings under a loaded CPU) may not have started yet — give the
	// stragglers a moment before pinning the exact count.
	deadline := time.Now().Add(5 * time.Second)
	s := f.Stats().ModelCache
	for s.ClusterCompiles < workers && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
		s = f.Stats().ModelCache
	}
	if s.AppCompiles != 1 {
		t.Errorf("%d appgraph.Compile runs across %d workers, want exactly 1 (stats: %+v)",
			s.AppCompiles, workers, s)
	}
	if s.AppEntries != 1 {
		t.Errorf("%d app-table entries, want 1", s.AppEntries)
	}
	// 8 distinct digests, 8 compiles, no sharing on the cluster side.
	if s.ClusterCompiles != workers {
		t.Errorf("%d cluster-table compilations, want %d (distinct clusters)", s.ClusterCompiles, workers)
	}
	// Every shape compile asked the app level for the same digest: one miss
	// (the compile), the rest hits.
	if s.AppMisses != 1 {
		t.Errorf("%d app-table misses, want 1", s.AppMisses)
	}
	if want := s.Compiles - 1; s.AppHits != want {
		t.Errorf("%d app-table hits, want %d (one per shape compile after the first)", s.AppHits, want)
	}
}
