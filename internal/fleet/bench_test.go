package fleet

import (
	"testing"

	"deep/internal/workload"
)

func BenchmarkFingerprintOf(b *testing.B) {
	app := workload.TextProcessing()
	cluster := workload.Testbed()
	for i := 0; i < b.N; i++ {
		FingerprintOf(app, cluster, "deep")
	}
}

func BenchmarkFingerprintPerRequest(b *testing.B) {
	app := workload.TextProcessing()
	cd := DigestCluster(workload.Testbed())
	for i := 0; i < b.N; i++ {
		cd.Fingerprint(app, "deep")
	}
}
