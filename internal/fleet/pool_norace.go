//go:build !race

package fleet

// raceEnabled is false outside race builds: a double Release is a no-op
// there (the job was already recycled; panicking in production would turn a
// caller bug into an outage).
const raceEnabled = false
