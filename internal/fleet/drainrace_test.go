package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"deep/internal/dag"
	"deep/internal/workload"
)

// TestDrainRaceStress interleaves the three things a serving fleet does at
// once in production — admission (SubmitCtx and TrySubmitCtx), churn epochs,
// and drain (Close) — under the race detector, and pins the drain contract:
//
//   - every accepted request's channel delivers a response (never hangs),
//   - submits that lose the race against Close get ErrClosed (or
//     ErrQueueFull), never a nil channel with nil error,
//   - after Close returns, the counters reconcile: everything submitted was
//     completed or failed, nothing is left in flight.
func TestDrainRaceStress(t *testing.T) {
	f := New(Config{
		Workers:    2,
		QueueDepth: 8,
		CacheSize:  -1, // every request schedules for real, maximizing overlap
		NewCluster: scaled2,
	})
	apps := []*dag.App{workload.VideoProcessing(), workload.TextProcessing()}

	var (
		mu       sync.Mutex
		pending  []<-chan *Response
		accepted atomic.Int64
		closedN  atomic.Int64
		stop     = make(chan struct{})
	)

	var wg sync.WaitGroup
	const submitters = 6
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				req := Request{Tenant: "stress", App: apps[(s+i)%len(apps)]}
				if i%4 == 3 {
					req.Deadline = time.Millisecond // exercise deadline failures under drain
				}
				var (
					ch  <-chan *Response
					err error
				)
				if i%2 == 0 {
					ch, err = f.SubmitCtx(ctx, req)
				} else {
					ch, err = f.TrySubmitCtx(ctx, req)
				}
				switch {
				case err == nil:
					if ch == nil {
						t.Error("accepted submit returned nil channel")
						return
					}
					accepted.Add(1)
					mu.Lock()
					pending = append(pending, ch)
					mu.Unlock()
				case errors.Is(err, ErrClosed):
					closedN.Add(1)
					return // the fleet is gone; this submitter is done
				case errors.Is(err, ErrQueueFull):
					// Backpressure, try again.
				default:
					t.Errorf("unexpected submit error: %v", err)
					return
				}
			}
		}(s)
	}

	// Churn epochs roll the whole run, including while Close drains the
	// queue: failures and recoveries of a device the placements use, so
	// stale-placement rescheduling and shape-cache purges interleave with
	// admission and drain.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var delta ChurnDelta
			if i%2 == 0 {
				delta.FailDevices = []string{"medium-01"}
			} else {
				delta.RecoverDevices = []string{"medium-01"}
			}
			if _, _, err := f.ApplyChurn(delta); err != nil {
				t.Errorf("churn: %v", err)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	time.Sleep(30 * time.Millisecond) // let the mill grind
	f.Close()                         // races the submitters and the churner
	close(stop)
	wg.Wait()

	// Late submits against the closed fleet must deterministically report
	// ErrClosed on both entry points.
	if _, err := f.SubmitCtx(context.Background(), Request{App: apps[0]}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitCtx after Close: %v, want ErrClosed", err)
	}
	if _, err := f.TrySubmitCtx(context.Background(), Request{App: apps[0]}); !errors.Is(err, ErrClosed) {
		t.Fatalf("TrySubmitCtx after Close: %v, want ErrClosed", err)
	}

	// Every accepted request must have been served: Close drains the queue
	// before stopping the workers, so each channel delivers without blocking
	// beyond a generous guard.
	guard := time.After(10 * time.Second)
	done, failed := 0, 0
	for _, ch := range pending {
		select {
		case resp := <-ch:
			if resp == nil {
				t.Fatal("accepted request delivered nil response")
			}
			if resp.Err != nil {
				failed++
			} else {
				done++
			}
		case <-guard:
			t.Fatalf("accepted request hung: %d/%d drained", done+failed, len(pending))
		}
	}

	st := f.Stats()
	if got := int64(len(pending)); st.Submitted != got || accepted.Load() != got {
		t.Errorf("submitted %d, accepted %d, collected %d channels", st.Submitted, accepted.Load(), got)
	}
	if st.Completed+st.Failed != st.Submitted {
		t.Errorf("completed %d + failed %d != submitted %d", st.Completed, st.Failed, st.Submitted)
	}
	if int64(done) != st.Completed || int64(failed) != st.Failed {
		t.Errorf("delivered %d ok / %d failed, stats say %d / %d", done, failed, st.Completed, st.Failed)
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight %d after Close, want 0", st.InFlight)
	}
	if accepted.Load() == 0 {
		t.Fatal("stress run accepted nothing; test is vacuous")
	}
	t.Logf("accepted %d (%d ok, %d failed), %d submitters saw ErrClosed, churn epoch %d",
		accepted.Load(), done, failed, closedN.Load(), st.Churn.Epoch)
}
