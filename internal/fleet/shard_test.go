package fleet

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"deep/internal/dag"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/workload"
)

// TestQueueLenAggregatesShards pins the sharded admission bookkeeping the
// serving layer's Retry-After hints feed on: QueueLen sums waiters across
// all shards, QueueCap reports the aggregate bound, and a submit beyond it
// rejects — deterministically, because the only worker is stalled in
// cluster construction so nothing drains while the shards are stuffed.
func TestQueueLenAggregatesShards(t *testing.T) {
	block := make(chan struct{})
	stalled := func() *sim.Cluster {
		<-block
		return workload.Testbed()
	}
	f := New(Config{Workers: 1, QueueShards: 2, QueueDepth: 4, NewCluster: stalled})
	unblocked := false
	defer func() {
		if !unblocked {
			close(block)
		}
		f.Close()
	}()

	if f.QueueShards() != 2 {
		t.Fatalf("QueueShards() = %d, want 2", f.QueueShards())
	}
	if f.QueueCap() != 4 {
		t.Fatalf("QueueCap() = %d, want 4 (2 shards x 2 deep)", f.QueueCap())
	}

	// One tenant/app pair hashes to one home shard; spillover must still
	// fill the sibling shard, so all four aggregate slots accept.
	app := workload.TextProcessing()
	var pending []<-chan *Response
	for i := 0; i < 4; i++ {
		ch, err := f.Submit(Request{Tenant: "solo", App: app, Seed: int64(i)})
		if err != nil {
			t.Fatalf("submit %d: %v (spillover should fill sibling shards)", i, err)
		}
		pending = append(pending, ch)
		if got := f.QueueLen(); got != i+1 {
			t.Fatalf("QueueLen after %d submits = %d, want %d", i+1, got, i+1)
		}
	}
	if _, err := f.Submit(Request{Tenant: "solo", App: app, Seed: 99}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("5th submit: %v, want ErrQueueFull", err)
	}

	// Un-stall the worker; every accepted request must still drain.
	close(block)
	unblocked = true
	for i, ch := range pending {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d: %v", i, resp.Err)
			}
			resp.Release()
		case <-time.After(10 * time.Second):
			t.Fatalf("request %d never drained", i)
		}
	}
	if got := f.QueueLen(); got != 0 {
		t.Fatalf("QueueLen after drain = %d, want 0", got)
	}
}

// barrierSched blocks every Schedule call until `need` of them are in
// flight at once, then releases them all — provable worker concurrency.
type barrierSched struct {
	need int

	mu      sync.Mutex
	arrived int
	release chan struct{}
}

func (s *barrierSched) Name() string { return "barrier" }
func (s *barrierSched) Schedule(app *dag.App, cluster *sim.Cluster) (sim.Placement, error) {
	s.mu.Lock()
	s.arrived++
	if s.arrived == s.need {
		close(s.release)
	}
	s.mu.Unlock()
	select {
	case <-s.release:
	case <-time.After(10 * time.Second):
		return nil, fmt.Errorf("barrier: only %d of %d schedulers arrived (no work stealing?)", s.arrived, s.need)
	}
	p := make(sim.Placement, len(app.Microservices))
	for _, ms := range app.Microservices {
		p[ms.Name] = sim.Assignment{Device: cluster.Devices[0].Name, Registry: cluster.Registries[0].Name}
	}
	return p, nil
}

// TestWorkStealing pins the sharded queue's liveness property: a
// single-tenant burst lands on one home shard, yet all workers — each
// draining its own home shard first — must steal from the loaded sibling
// and run the burst concurrently. The barrier scheduler only completes if
// four Schedule calls are simultaneously in flight; without stealing the
// three non-home workers would idle and the barrier would time out.
func TestWorkStealing(t *testing.T) {
	bar := &barrierSched{need: 4, release: make(chan struct{})}
	f := testFleet(t, Config{
		Workers:      4,
		QueueShards:  4,
		QueueDepth:   16,
		CacheSize:    -1, // every request must reach the scheduler
		NewScheduler: func() sched.Scheduler { return bar },
	})

	app := workload.TextProcessing()
	var pending []<-chan *Response
	for i := 0; i < 4; i++ {
		ch, err := f.Submit(Request{Tenant: "burst", App: app, Seed: int64(i)})
		if err != nil {
			t.Fatal(err)
		}
		pending = append(pending, ch)
	}
	for i, ch := range pending {
		select {
		case resp := <-ch:
			if resp.Err != nil {
				t.Fatalf("request %d: %v", i, resp.Err)
			}
			resp.Release()
		case <-time.After(15 * time.Second):
			t.Fatalf("request %d never completed (work stealing broken)", i)
		}
	}
}

// TestSubmitBatchOrderAndIndex pins the batch contract: exactly len(reqs)
// responses, streamed in submission order, each tagged with its index and
// owning its own result.
func TestSubmitBatchOrderAndIndex(t *testing.T) {
	f := testFleet(t, Config{Workers: 2})
	reqs := make([]Request, 5)
	for i := range reqs {
		reqs[i] = Request{Tenant: "batch", App: workload.VideoProcessing(), Seed: int64(i)}
	}
	ch, err := f.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp := <-ch
		if resp.Index != i {
			t.Fatalf("response %d carries index %d", i, resp.Index)
		}
		if resp.Err != nil {
			t.Fatalf("item %d: %v", i, resp.Err)
		}
		if resp.Tenant != "batch" || resp.Placement.Len() == 0 || resp.Result == nil {
			t.Fatalf("item %d implausible: %+v", i, resp)
		}
		resp.Release()
	}
	st := f.Stats()
	if st.Submitted != 5 || st.Completed != 5 {
		t.Fatalf("stats submitted %d completed %d, want 5/5", st.Submitted, st.Completed)
	}
}

// TestSubmitBatchQueueFull pins single-slot admission with per-item
// accounting: each accepted batch holds one shard slot however many items
// it carries, QueueLen counts items, and a rejected batch counts every
// item as rejected while consuming nothing.
func TestSubmitBatchQueueFull(t *testing.T) {
	block := make(chan struct{})
	stalled := func() *sim.Cluster {
		<-block
		return workload.Testbed()
	}
	f := New(Config{Workers: 1, QueueShards: 1, QueueDepth: 2, NewCluster: stalled})
	unblocked := false
	defer func() {
		if !unblocked {
			close(block)
		}
		f.Close()
	}()

	app := workload.TextProcessing()
	batch := func(n int) []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			reqs[i] = Request{Tenant: "b", App: app, Seed: int64(i)}
		}
		return reqs
	}
	ch1, err := f.SubmitBatch(context.Background(), batch(3))
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := f.SubmitBatch(context.Background(), batch(3))
	if err != nil {
		t.Fatalf("second batch should hold the second slot: %v", err)
	}
	if got := f.QueueLen(); got != 6 {
		t.Fatalf("QueueLen = %d, want 6 (items, not slots)", got)
	}
	if _, err := f.SubmitBatch(context.Background(), batch(2)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third batch: %v, want ErrQueueFull", err)
	}
	if got := f.Stats().Rejected; got != 2 {
		t.Fatalf("rejected %d, want 2 (every item of the rejected batch)", got)
	}

	close(block)
	unblocked = true
	for _, ch := range []<-chan *Response{ch1, ch2} {
		for i := 0; i < 3; i++ {
			select {
			case resp := <-ch:
				if resp.Err != nil {
					t.Fatalf("batch item %d: %v", i, resp.Err)
				}
				resp.Release()
			case <-time.After(10 * time.Second):
				t.Fatal("batch never drained")
			}
		}
	}
	if got := f.Stats().Completed; got != 6 {
		t.Fatalf("completed %d, want 6", got)
	}
}

// TestSubmitBatchValidation pins the argument contract: empty batches and
// app-less items reject before touching the queue, a canceled context
// rejects with its error, and a closed fleet answers ErrClosed.
func TestSubmitBatchValidation(t *testing.T) {
	f := New(Config{Workers: 1})
	if _, err := f.SubmitBatch(context.Background(), nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	reqs := []Request{
		{Tenant: "v", App: workload.TextProcessing()},
		{Tenant: "v"}, // no app
	}
	if _, err := f.SubmitBatch(context.Background(), reqs); err == nil || !strings.Contains(err.Error(), "request 1") {
		t.Fatalf("app-less item: %v, want index-1 error", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.SubmitBatch(ctx, []Request{{App: workload.TextProcessing()}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled ctx: %v, want context.Canceled", err)
	}
	f.Close()
	if _, err := f.SubmitBatch(context.Background(), []Request{{App: workload.TextProcessing()}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed fleet: %v, want ErrClosed", err)
	}
}

// TestResponseReleaseIdempotentOutsideRace pins the documented Release
// contract in non-race builds: releasing twice is a no-op, not a panic or a
// double pool put (which would hand one job to two submitters).
func TestResponseReleaseIdempotentOutsideRace(t *testing.T) {
	if raceEnabled {
		t.Skip("double release panics by design under -race")
	}
	f := testFleet(t, Config{Workers: 1})
	resp, err := f.Do(context.Background(), Request{App: workload.TextProcessing()})
	if err != nil || resp.Err != nil {
		t.Fatal(err, resp.Err)
	}
	resp.Release()
	resp.Release() // second release must be inert
}
