package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"deep/internal/chaos"
	"deep/internal/dag"
	"deep/internal/workload"
)

// MixEntry is one application population in a traffic mix: a tenant name, a
// relative weight, and a pool of application templates the driver cycles
// through. A pool of size one models a tenant redeploying the same shape
// over and over (the placement-cache sweet spot); a large pool models
// ever-changing tenants that mostly miss.
type MixEntry struct {
	Tenant string
	Weight float64
	Apps   []*dag.App
}

// CaseStudyMix returns the paper's two case-study applications as a
// two-tenant mix: the video pipeline and the text pipeline, equally
// weighted.
func CaseStudyMix() []MixEntry {
	return []MixEntry{
		{Tenant: "video", Weight: 1, Apps: []*dag.App{workload.VideoProcessing()}},
		{Tenant: "text", Weight: 1, Apps: []*dag.App{workload.TextProcessing()}},
	}
}

// SyntheticMix generates tenants of synthetic applications from
// workload.GeneratorConfig: `tenants` tenants, each with a pool of
// `appsPerTenant` distinct random DAGs of `size` microservices. Weights are
// uniform. Deterministic in seed.
func SyntheticMix(tenants, appsPerTenant, size int, seed int64) ([]MixEntry, error) {
	if tenants < 1 || appsPerTenant < 1 {
		return nil, fmt.Errorf("fleet: mix needs at least one tenant and one app")
	}
	var mix []MixEntry
	for t := 0; t < tenants; t++ {
		entry := MixEntry{Tenant: fmt.Sprintf("tenant-%02d", t), Weight: 1}
		for a := 0; a < appsPerTenant; a++ {
			cfg := workload.DefaultGeneratorConfig(size, seed+int64(t*appsPerTenant+a))
			app, err := workload.Generate(cfg)
			if err != nil {
				return nil, err
			}
			entry.Apps = append(entry.Apps, app)
		}
		mix = append(mix, entry)
	}
	return mix, nil
}

// TrafficConfig drives an open-loop load generation run: arrivals fire on
// the arrival process's clock regardless of how the fleet is keeping up, so
// overload shows up as queue-full rejections rather than as a slowed-down
// driver — the behavior of real user traffic.
type TrafficConfig struct {
	// Arrivals is the inter-arrival process (required).
	Arrivals ArrivalProcess
	// Mix is the application population (required, at least one entry with
	// at least one app).
	Mix []MixEntry
	// Requests stops the driver after this many submission attempts
	// (rejections count as attempts). Zero means no request bound.
	Requests int
	// Duration stops the driver after this much wall time. Zero means no
	// time bound. At least one of Requests and Duration must be set.
	Duration time.Duration
	// Speedup divides every inter-arrival gap, replaying the same arrival
	// sequence faster than real time (default 1).
	Speedup float64
	// Seed drives arrival randomness and mix sampling.
	Seed int64
	// Chaos interleaves a fault schedule with the load: each event fires at
	// its offset (divided by Speedup, like arrivals) as an ApplyChurn
	// against the fleet, turning re-placement storms into a measured
	// scenario. Nil disables churn.
	Chaos *chaos.Schedule
}

// Drive runs an open-loop load generation session against the fleet and
// blocks until every accepted request has completed, returning the
// aggregated Report. The context cancels the driver early (in-flight
// requests still drain).
func Drive(ctx context.Context, f *Fleet, cfg TrafficConfig) (*Report, error) {
	if cfg.Arrivals == nil {
		return nil, fmt.Errorf("fleet: traffic needs an arrival process")
	}
	if len(cfg.Mix) == 0 {
		return nil, fmt.Errorf("fleet: traffic needs a non-empty mix")
	}
	for _, e := range cfg.Mix {
		if len(e.Apps) == 0 {
			return nil, fmt.Errorf("fleet: mix entry %q has no apps", e.Tenant)
		}
	}
	if cfg.Requests <= 0 && cfg.Duration <= 0 {
		return nil, fmt.Errorf("fleet: traffic needs a request or duration bound")
	}
	if cfg.Speedup <= 0 {
		cfg.Speedup = 1
	}

	// Resolve weights once (non-positive defaults to 1) so sampling and
	// the total can never disagree.
	weights := make([]float64, len(cfg.Mix))
	var totalWeight float64
	for i, e := range cfg.Mix {
		weights[i] = e.Weight
		if weights[i] <= 0 {
			weights[i] = 1
		}
		totalWeight += weights[i]
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := func() (MixEntry, *dag.App) {
		x := rng.Float64() * totalWeight
		for i, e := range cfg.Mix {
			if x -= weights[i]; x <= 0 {
				return e, e.Apps[rng.Intn(len(e.Apps))]
			}
		}
		last := cfg.Mix[len(cfg.Mix)-1]
		return last, last.Apps[rng.Intn(len(last.Apps))]
	}

	start := time.Now()
	cacheBefore := f.cache.Stats()
	churnBefore := f.Stats().Churn
	deadline := time.Time{}
	if cfg.Duration > 0 {
		deadline = start.Add(cfg.Duration)
	}

	// Chaos replay runs beside the arrival loop on the same sped-up clock:
	// each event sleeps until its offset and applies its churn delta. The
	// goroutine stops at context cancellation or when the drain below is
	// done (events past the end of the session never fire).
	chaosDone := make(chan struct{})
	var chaosWG sync.WaitGroup
	eventsFired := 0
	var eventsMu sync.Mutex
	if cfg.Chaos != nil {
		chaosWG.Add(1)
		go func() {
			defer chaosWG.Done()
			timer := time.NewTimer(0)
			defer timer.Stop()
			if !timer.Stop() {
				<-timer.C
			}
			for _, ev := range cfg.Chaos.Events {
				at := start.Add(time.Duration(float64(ev.At) / cfg.Speedup))
				if wait := time.Until(at); wait > 0 {
					timer.Reset(wait)
					select {
					case <-timer.C:
					case <-ctx.Done():
						return
					case <-chaosDone:
						return
					}
				}
				if _, _, err := f.ApplyChurn(DeltaForEvent(ev)); err != nil {
					// A schedule naming unknown hardware is a configuration
					// bug; surface it without killing the session.
					fmt.Fprintf(os.Stderr, "fleet: chaos event %s: %v\n", ev, err)
					continue
				}
				eventsMu.Lock()
				eventsFired++
				eventsMu.Unlock()
			}
		}()
	}

	var pending []<-chan *Response
	attempts, rejected := 0, 0
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}

drive:
	for cfg.Requests <= 0 || attempts < cfg.Requests {
		gap := cfg.Arrivals.Next(rng) / cfg.Speedup
		sleep := time.Duration(gap * float64(time.Second))
		if math.IsInf(gap, 1) || sleep < 0 {
			// The process will never produce another arrival (e.g. a zero
			// rate). Waiting forever serves no one; the session is over.
			break drive
		}
		// Never sleep past the deadline: a sparse arrival sequence must
		// not overshoot a Duration bound by one (unbounded) gap.
		if !deadline.IsZero() {
			if remaining := time.Until(deadline); sleep > remaining {
				timer.Reset(remaining)
				select {
				case <-timer.C:
				case <-ctx.Done():
				}
				break drive
			}
		}
		if sleep > 0 {
			timer.Reset(sleep)
			select {
			case <-timer.C:
			case <-ctx.Done():
				break drive
			}
		} else if ctx.Err() != nil {
			break drive
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		entry, app := pick()
		attempts++
		ch, err := f.Submit(Request{Tenant: entry.Tenant, App: app, Seed: int64(attempts)})
		switch {
		case err == nil:
			pending = append(pending, ch)
		case errors.Is(err, ErrQueueFull):
			rejected++
		case errors.Is(err, ErrClosed):
			break drive
		default:
			return nil, err
		}
	}

	// Open-loop generation is over; now drain every accepted request.
	responses := make([]*Response, 0, len(pending))
	for _, ch := range pending {
		responses = append(responses, <-ch)
	}
	close(chaosDone)
	chaosWG.Wait()
	elapsed := time.Since(start)
	// Report cache activity for this session only, not the fleet's
	// lifetime (a fleet may serve several Drive sessions).
	cache := f.cache.Stats()
	cache.Hits -= cacheBefore.Hits
	cache.Misses -= cacheBefore.Misses
	cache.Evictions -= cacheBefore.Evictions
	report := buildReport(cfg.Arrivals.Name(), attempts, rejected, elapsed, responses, cache)
	report.SimWarm = f.cfg.SimOptions.WarmCaches
	if cfg.Chaos != nil {
		report.Churn = buildChurnReport(eventsFired, churnBefore, f.Stats().Churn, responses)
	}
	// The report has copied out everything it needs; hand the pooled
	// responses back so the next session's warm path reuses them.
	for _, resp := range responses {
		resp.Release()
	}
	return report, nil
}

// buildChurnReport deltas the fleet's churn counters over the session and
// derives the post-churn latency picture from the drained responses: for
// every epoch observed in the session's responses, the first completed
// request validated at that epoch is the one that paid the re-placement
// cost, so the worst and mean of those firsts measure how hard churn hits
// the tail.
func buildChurnReport(events int, before, after ChurnStats, responses []*Response) *ChurnReport {
	r := &ChurnReport{
		Events:           events,
		EpochsApplied:    after.EpochsApplied - before.EpochsApplied,
		Invalidated:      after.Invalidated - before.Invalidated,
		StaleRejected:    after.StaleRejected - before.StaleRejected,
		Reschedules:      after.Reschedules - before.Reschedules,
		Downgrades:       after.Downgrades - before.Downgrades,
		DeadlineExceeded: after.DeadlineExceeded - before.DeadlineExceeded,
	}
	firstByEpoch := make(map[int64]time.Duration)
	for _, resp := range responses {
		if resp.Err != nil {
			continue
		}
		if resp.Degraded {
			r.DegradedResponses++
		}
		if resp.Epoch == 0 {
			continue
		}
		if _, seen := firstByEpoch[resp.Epoch]; !seen {
			firstByEpoch[resp.Epoch] = resp.Latency
		}
	}
	var sum time.Duration
	for _, lat := range firstByEpoch {
		sum += lat
		if lat > r.FirstPostChurnMax {
			r.FirstPostChurnMax = lat
		}
	}
	if n := len(firstByEpoch); n > 0 {
		r.FirstPostChurnMean = sum / time.Duration(n)
	}
	return r
}
