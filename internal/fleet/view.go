package fleet

import (
	"iter"
	"sort"

	"deep/internal/sim"
)

// PlacementView is a read-only indexed view of a placement: parallel
// sorted-name and assignment slices instead of a Go map. It is the form
// placements already take inside the memo (cacheEntry), so serving a cached
// placement shares the entry's immutable slices with the response instead of
// materializing a fresh map per request — one of the pooled response path's
// allocation eliminations.
//
// A view delivered on a Response obeys the Response.Release contract: it is
// valid until Release is called, after which the view (like every other
// Response field) must not be touched. Materialize before Release to keep a
// placement longer.
type PlacementView struct {
	names   []string
	assigns []sim.Assignment
}

// NewPlacementView compiles a placement map into its indexed view form. It
// allocates; the request path never calls it (tests and stub backends do).
func NewPlacementView(p sim.Placement) PlacementView {
	var v PlacementView
	v.names = make([]string, 0, len(p))
	for name := range p {
		v.names = append(v.names, name)
	}
	sort.Strings(v.names)
	v.assigns = make([]sim.Assignment, len(v.names))
	for i, name := range v.names {
		v.assigns[i] = p[name]
	}
	return v
}

// Len returns the number of placed microservices.
func (v PlacementView) Len() int { return len(v.names) }

// At returns the i-th (name, assignment) pair in sorted name order.
func (v PlacementView) At(i int) (string, sim.Assignment) {
	return v.names[i], v.assigns[i]
}

// Get returns the assignment for a microservice by binary search.
func (v PlacementView) Get(name string) (sim.Assignment, bool) {
	lo, hi := 0, len(v.names)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v.names[mid] < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.names) && v.names[lo] == name {
		return v.assigns[lo], true
	}
	return sim.Assignment{}, false
}

// All iterates the view in sorted name order.
func (v PlacementView) All() iter.Seq2[string, sim.Assignment] {
	return func(yield func(string, sim.Assignment) bool) {
		for i, name := range v.names {
			if !yield(name, v.assigns[i]) {
				return
			}
		}
	}
}

// Materialize rebuilds a caller-owned placement map from the view. Use it to
// keep a placement past Response.Release.
func (v PlacementView) Materialize() sim.Placement {
	p := make(sim.Placement, len(v.names))
	for i, name := range v.names {
		p[name] = v.assigns[i]
	}
	return p
}

// setFromPlacement compiles a map into the view using (and growing) the
// provided scratch slices, returning them for reuse: the cache-miss path's
// alloc-free counterpart of NewPlacementView. Names are insertion-sorted —
// placements are request-sized — so no sort closure allocates.
func (v *PlacementView) setFromPlacement(p sim.Placement, names []string, assigns []sim.Assignment) ([]string, []sim.Assignment) {
	names = names[:0]
	for name := range p {
		names = append(names, name)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	assigns = assigns[:0]
	for _, name := range names {
		assigns = append(assigns, p[name])
	}
	v.names = names
	v.assigns = assigns
	return names, assigns
}
