package fleet

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"deep/internal/costmodel"
	"deep/internal/dag"
	"deep/internal/sched"
	"deep/internal/sim"
	"deep/internal/units"
	"deep/internal/workload"
)

// TestWorkerPassPool pins the per-worker pass pool: repeated schedule calls
// for the same compiled model reuse one sched.Pass (no per-request Pass
// allocation), produce the same placement as a fresh ScheduleModel, and the
// pool stays keyed by model identity across interleaved shapes.
func TestWorkerPassPool(t *testing.T) {
	f := New(Config{Workers: 1})
	defer f.Close()
	cluster := workload.Testbed()
	w := &workerState{
		scheduler:  sched.NewDEEP(),
		cluster:    cluster,
		effCluster: cluster,
		dig:        newDigester(),
		exec:       sim.NewExec(),
		passes:     make(map[*costmodel.Model]*sched.Pass),
	}
	video := costmodel.Compile(workload.VideoProcessing(), cluster)
	text := costmodel.Compile(workload.TextProcessing(), cluster)

	want, err := sched.NewDEEP().ScheduleModel(video)
	if err != nil {
		t.Fatal(err)
	}
	var videoPass *sched.Pass
	for round := 0; round < 3; round++ {
		got, err := f.scheduleOn(w, w.scheduler, workload.VideoProcessing(), video)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: pooled pass placement diverges: %v vs %v", round, got, want)
		}
		if _, err := f.scheduleOn(w, w.scheduler, workload.TextProcessing(), text); err != nil {
			t.Fatal(err)
		}
		if p := w.passes[video]; videoPass == nil {
			videoPass = p
		} else if p != videoPass {
			t.Fatalf("round %d: pass for the video model was reallocated", round)
		}
	}
	if len(w.passes) != 2 {
		t.Fatalf("pool holds %d passes, want 2 (one per model)", len(w.passes))
	}
}

// TestWorkerPassPoolBounded: once the pool hits its cap it resets instead
// of growing without bound (the shape-cache-disabled configuration).
func TestWorkerPassPoolBounded(t *testing.T) {
	f := New(Config{Workers: 1})
	defer f.Close()
	cluster := workload.Testbed()
	w := &workerState{
		scheduler:  sched.NewDEEP(),
		cluster:    cluster,
		effCluster: cluster,
		dig:        newDigester(),
		exec:       sim.NewExec(),
		passes:     make(map[*costmodel.Model]*sched.Pass),
	}
	app := workload.VideoProcessing()
	for i := 0; i < passPoolCap+10; i++ {
		model := costmodel.Compile(app, cluster) // fresh identity each time
		if _, err := f.scheduleOn(w, w.scheduler, app, model); err != nil {
			t.Fatal(err)
		}
		if len(w.passes) > passPoolCap {
			t.Fatalf("pool grew to %d entries, cap is %d", len(w.passes), passPoolCap)
		}
	}
}

// TestShapeCacheDistinguishesAppNames: two structurally identical apps
// under different names must not alias one compiled shape — the simulator
// labels results (and keys jitter) by app name.
func TestShapeCacheDistinguishesAppNames(t *testing.T) {
	build := func(name string) *dag.App {
		app := dag.NewApp(name)
		for _, n := range []string{"a", "b"} {
			if err := app.AddMicroservice(&dag.Microservice{
				Name: n, ImageSize: 10 * units.MB, Req: dag.Requirements{CPU: 100},
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := app.AddDataflow("a", "b", units.MB); err != nil {
			t.Fatal(err)
		}
		return app
	}
	cd := DigestCluster(workload.Testbed())
	if cd.ModelKey(build("alpha")) == cd.ModelKey(build("beta")) {
		t.Fatal("model keys collide across app names")
	}

	f := testFleet(t, Config{Workers: 1, SimOptions: sim.Options{Jitter: 0.05}})
	for _, name := range []string{"alpha", "beta"} {
		resp, err := f.Do(context.Background(), Request{App: build(name)})
		if err != nil || resp.Err != nil {
			t.Fatal(err, resp)
		}
		if resp.Result.App != name {
			t.Fatalf("response for %q carries result for %q (shape aliasing)", name, resp.Result.App)
		}
	}
}

// TestWorkersSimulateOnPrivateClusters: with several workers hammering one
// hot shape cold (ColdCaches opts out of the warm default, so every run
// flushes), every response must be bit-identical to a standalone cold
// sim.Run — shared compiled plans must not share device layer caches across
// workers, or concurrent flush/pull interleavings would make results
// nondeterministic.
func TestWorkersSimulateOnPrivateClusters(t *testing.T) {
	f := testFleet(t, Config{Workers: 8, QueueDepth: 256, ColdCaches: true})
	app := workload.VideoProcessing()

	refCluster := workload.Testbed()
	placement, err := sched.NewDEEP().Schedule(app, refCluster)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(app, refCluster, placement, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		ch, err := f.Submit(Request{App: app})
		if err != nil {
			continue // queue full; coverage doesn't need every request
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp := <-ch
			if resp.Err != nil {
				t.Error(resp.Err)
				return
			}
			if !reflect.DeepEqual(resp.Result, want) {
				t.Errorf("concurrent cold result diverges from standalone sim.Run")
			}
		}()
	}
	wg.Wait()
}

// TestFleetWarmSimResults: a fleet configured with warm caches serves
// steady-state requests whose results match a standalone warm sim.Run on an
// identical cluster — the compiled executor path end to end.
func TestFleetWarmSimResults(t *testing.T) {
	f := testFleet(t, Config{Workers: 1, SimOptions: sim.Options{WarmCaches: true}})
	app := workload.TextProcessing()
	first, err := f.Do(context.Background(), Request{App: app})
	if err != nil || first.Err != nil {
		t.Fatal(err, first)
	}
	second, err := f.Do(context.Background(), Request{App: app})
	if err != nil || second.Err != nil {
		t.Fatal(err, second)
	}

	refCluster := workload.Testbed()
	placement, err := sched.NewDEEP().Schedule(app, refCluster)
	if err != nil {
		t.Fatal(err)
	}
	warmFirst, err := sim.Run(app, refCluster, placement, sim.Options{WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	warmSecond, err := sim.Run(app, refCluster, placement, sim.Options{WarmCaches: true})
	if err != nil {
		t.Fatal(err)
	}
	// First fleet request ran against untouched (empty) caches, as does the
	// first warm standalone run on a fresh cluster; the second is fully hot.
	if !reflect.DeepEqual(first.Result, warmFirst) {
		t.Fatalf("first warm fleet result diverges:\nfleet: %+v\nref:   %+v", first.Result, warmFirst)
	}
	if !reflect.DeepEqual(second.Result, warmSecond) {
		t.Fatalf("steady-state warm fleet result diverges:\nfleet: %+v\nref:   %+v", second.Result, warmSecond)
	}
}
